#include "src/net/network.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace cckvs {

NetworkStats::NetworkStats(int num_nodes)
    : tx_bytes_(static_cast<std::size_t>(num_nodes), 0),
      rx_bytes_(static_cast<std::size_t>(num_nodes), 0) {}

void NetworkStats::OnDelivered(const Packet& p) {
  auto& c = per_class_[static_cast<int>(p.cls)];
  c.packets += 1;
  c.header_bytes += p.header_bytes;
  c.payload_bytes += p.payload_bytes;
  tx_bytes_[p.src] += p.wire_bytes();
  rx_bytes_[p.dst] += p.wire_bytes();
}

std::uint64_t NetworkStats::packets(TrafficClass cls) const {
  return per_class_[static_cast<int>(cls)].packets;
}
std::uint64_t NetworkStats::header_bytes(TrafficClass cls) const {
  return per_class_[static_cast<int>(cls)].header_bytes;
}
std::uint64_t NetworkStats::payload_bytes(TrafficClass cls) const {
  return per_class_[static_cast<int>(cls)].payload_bytes;
}
std::uint64_t NetworkStats::total_bytes(TrafficClass cls) const {
  const auto& c = per_class_[static_cast<int>(cls)];
  return c.header_bytes + c.payload_bytes;
}
std::uint64_t NetworkStats::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& c : per_class_) {
    sum += c.header_bytes + c.payload_bytes;
  }
  return sum;
}
std::uint64_t NetworkStats::total_packets() const {
  std::uint64_t sum = 0;
  for (const auto& c : per_class_) {
    sum += c.packets;
  }
  return sum;
}

void NetworkStats::Reset() {
  for (auto& c : per_class_) {
    c = ClassCounters{};
  }
  std::fill(tx_bytes_.begin(), tx_bytes_.end(), 0);
  std::fill(rx_bytes_.begin(), rx_bytes_.end(), 0);
}

Network::Network(Simulator* sim, const NetConfig& config)
    : sim_(sim),
      config_(config),
      stats_(config.num_nodes),
      tx_wire_(static_cast<std::size_t>(config.num_nodes)),
      port_in_(static_cast<std::size_t>(config.num_nodes)),
      port_out_(static_cast<std::size_t>(config.num_nodes)),
      rx_wire_(static_cast<std::size_t>(config.num_nodes)),
      deliver_(static_cast<std::size_t>(config.num_nodes)) {
  CCKVS_CHECK_GE(config.num_nodes, 2);
  CCKVS_CHECK_GT(config.link_gbps, 0.0);
  CCKVS_CHECK_GT(config.switch_mpps, 0.0);
  CCKVS_CHECK_GT(config.nic_mpps, 0.0);
  ns_per_byte_ = 8.0 / config.link_gbps;  // Gb/s -> ns per byte
  port_ns_ = static_cast<SimTime>(std::llround(1000.0 / config.switch_mpps));
  nic_gap_ns_ = static_cast<SimTime>(std::llround(1000.0 / config.nic_mpps));
}

void Network::SetDeliverHandler(NodeId node, DeliverFn fn) {
  deliver_[node] = std::move(fn);
}

SimTime Network::WireTime(std::uint32_t bytes) const {
  return static_cast<SimTime>(std::llround(ns_per_byte_ * bytes));
}

SimTime Network::PortTime() const { return port_ns_; }

SimTime Network::RouteThroughFabric(const Packet& packet, SimTime tx_done) {
  SimTime t = tx_done;
  if (config_.through_switch) {
    t = port_in_[packet.src].Pass(t, port_ns_);
    t = port_out_[packet.dst].Pass(t, port_ns_);
  }
  t = rx_wire_[packet.dst].Pass(t, WireCost(packet.wire_bytes()));
  return t + config_.propagation_ns;
}

void Network::ScheduleDelivery(const Packet& packet, SimTime at) {
  CCKVS_CHECK(deliver_[packet.dst] != nullptr);
  sim_->At(at, [this, packet]() {
    stats_.OnDelivered(packet);
    deliver_[packet.dst](packet);
  });
}

SimTime Network::Send(const Packet& packet) {
  CCKVS_DCHECK(packet.src != packet.dst);
  const SimTime tx_done =
      tx_wire_[packet.src].Pass(sim_->now(), WireCost(packet.wire_bytes()));
  const SimTime delivered = RouteThroughFabric(packet, tx_done);
  ScheduleDelivery(packet, delivered);
  return delivered;
}

void Network::SendMulticast(const Packet& packet, const std::vector<NodeId>& dsts) {
  CCKVS_CHECK(config_.through_switch);
  // One TX serialization and one ingress-port traversal, then per-destination
  // replication at the egress ports (§6.3: "the sender node transmits a single
  // message to the switch and the switch propagates it to all recipients").
  const SimTime tx_done =
      tx_wire_[packet.src].Pass(sim_->now(), WireCost(packet.wire_bytes()));
  const SimTime ingress_done = port_in_[packet.src].Pass(tx_done, port_ns_);
  const auto replicated_port_ns = static_cast<SimTime>(
      static_cast<double>(port_ns_) * config_.multicast_copy_overhead);
  for (const NodeId dst : dsts) {
    if (dst == packet.src) {
      continue;
    }
    Packet copy = packet;
    copy.dst = dst;
    SimTime t = port_out_[dst].Pass(ingress_done, replicated_port_ns);
    t = rx_wire_[dst].Pass(t, WireCost(copy.wire_bytes()));
    ScheduleDelivery(copy, t + config_.propagation_ns);
  }
}

}  // namespace cckvs
