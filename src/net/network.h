// Simulated rack network fabric (substrate S2).
//
// Models the part of the paper's testbed that the evaluation shows to be the
// bottleneck (§8.4): a 56 Gb InfiniBand rack whose *effective* small-packet
// bandwidth is capped at ~21.5 Gb/s by the switch's per-port packet processing
// rate, while large packets saturate the line rate.
//
// Every packet traverses four stations in series, each a single FIFO resource:
//
//   [src NIC TX wire] -> [switch ingress port (pps)] -> [switch egress port (pps)]
//        -> [dst RX wire]
//
// Wire stations serialize at the line rate; port stations cost 1/pps per packet.
// This tandem-queue model reproduces both regimes of §8.4: for small packets the
// pps stations saturate first (incast onto one node bottlenecks on *its* egress
// port, which is why RDMA multicast does not help, §6.3); for large packets the
// wire stations saturate first.
//
// Multicast support replicates a packet at the switch: the sender pays TX wire and
// ingress once, every receiver pays egress + RX wire.  `through_switch=false`
// models two directly cabled machines (the paper's ib_send_bw validation).

#ifndef CCKVS_NET_NETWORK_H_
#define CCKVS_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace cckvs {

// Message classes, used for the Figure 11 traffic breakdown.
enum class TrafficClass : std::uint8_t {
  kRemoteRequest = 0,  // cache-miss RPC to a remote KVS thread
  kRemoteResponse,     // its reply
  kUpdate,             // consistency update broadcast (SC and Lin)
  kInvalidation,       // Lin phase-1 invalidation
  kAck,                // Lin invalidation acknowledgement
  kCreditUpdate,       // explicit flow-control credit (header-only)
  kCacheFill,          // epoch hot-set installation traffic
  kControl,            // misc: epoch barriers, membership
  kNumClasses,
};

inline const char* ToString(TrafficClass cls) {
  switch (cls) {
    case TrafficClass::kRemoteRequest:
      return "remote_request";
    case TrafficClass::kRemoteResponse:
      return "remote_response";
    case TrafficClass::kUpdate:
      return "update";
    case TrafficClass::kInvalidation:
      return "invalidation";
    case TrafficClass::kAck:
      return "ack";
    case TrafficClass::kCreditUpdate:
      return "credit_update";
    case TrafficClass::kCacheFill:
      return "cache_fill";
    case TrafficClass::kControl:
      return "control";
    default:
      return "?";
  }
}

struct NetConfig {
  int num_nodes = 9;
  // Line rate of each NIC/link.  56 Gb IB FDR carries ~54 Gb/s of data.
  double link_gbps = 54.0;
  // Per-port switch packet processing rate.  §8.4: for small packets the switch
  // pps rate — not the line rate — is the bottleneck, and the paper measures
  // ~21.5 Gb/s effective bandwidth for its small-packet mix (41 B requests +
  // 72 B responses, avg 56.5 B).  47.6 Mpps reproduces exactly that:
  // 47.6 Mpps * 56.5 B * 8 = 21.5 Gb/s, while large packets saturate the wire.
  double switch_mpps = 47.6;
  // NIC message rate cap.  §8.4's validation: two directly cabled machines
  // sustain up to 25% more packets per second than through the switch — i.e.
  // the NIC's own limit sits ~25% above the switch port's.
  double nic_mpps = 59.5;
  // Egress-port processing multiplier for switch-replicated (multicast) copies.
  // §6.3: "using RDMA Multicast slightly decreases ccKVS performance; we
  // attribute this decrease to the switch's multicast implementation
  // overheads."  The paper does not quantify the overhead; 3.0x per replicated
  // copy is calibrated so that the multicast ablation reproduces the measured
  // direction (multicast loses slightly) — with cheap replication, relieving
  // the sender's ingress port would make multicast win in this fabric model.
  double multicast_copy_overhead = 3.0;
  // Fixed propagation + switch pipeline latency per traversal.
  SimTime propagation_ns = 300;
  // When false, src and dst are cabled back-to-back (no pps stations).
  bool through_switch = true;
};

// One network packet.  `header_bytes + payload_bytes` is the on-wire size.  The
// body is opaque to the fabric; the RDMA layer above demultiplexes by dst_qpn and
// deserializes.  Multicast copies share one body buffer.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint16_t src_qpn = 0;
  std::uint16_t dst_qpn = 0;
  std::uint32_t header_bytes = 0;
  std::uint32_t payload_bytes = 0;
  TrafficClass cls = TrafficClass::kControl;
  std::shared_ptr<const std::vector<std::uint8_t>> body;

  std::uint32_t wire_bytes() const { return header_bytes + payload_bytes; }
};

// Aggregate per-class counters, plus per-node byte counts for utilization.
class NetworkStats {
 public:
  explicit NetworkStats(int num_nodes);

  void OnDelivered(const Packet& p);

  std::uint64_t packets(TrafficClass cls) const;
  std::uint64_t header_bytes(TrafficClass cls) const;
  std::uint64_t payload_bytes(TrafficClass cls) const;
  std::uint64_t total_bytes(TrafficClass cls) const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_packets() const;
  std::uint64_t node_tx_bytes(NodeId n) const { return tx_bytes_[n]; }
  std::uint64_t node_rx_bytes(NodeId n) const { return rx_bytes_[n]; }

  void Reset();

 private:
  struct ClassCounters {
    std::uint64_t packets = 0;
    std::uint64_t header_bytes = 0;
    std::uint64_t payload_bytes = 0;
  };
  ClassCounters per_class_[static_cast<int>(TrafficClass::kNumClasses)];
  std::vector<std::uint64_t> tx_bytes_;
  std::vector<std::uint64_t> rx_bytes_;
};

// The fabric.  Send() computes the packet's path through the four stations and
// schedules delivery; the receiver callback runs at delivery time.
class Network {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  Network(Simulator* sim, const NetConfig& config);

  // Registers the receive handler for a node.  Must be set before packets are
  // delivered to that node.
  void SetDeliverHandler(NodeId node, DeliverFn fn);

  // Sends a unicast packet.  Returns the scheduled delivery time.
  SimTime Send(const Packet& packet);

  // Sends one packet to every node in `dsts` via switch replication: the sender
  // pays TX wire + ingress once; each destination pays egress + RX wire.
  void SendMulticast(const Packet& packet, const std::vector<NodeId>& dsts);

  const NetConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }
  NetworkStats& mutable_stats() { return stats_; }

  // Busy time of a node's RX wire / TX wire, for the Figure 13a utilization bars.
  SimTime rx_wire_busy_ns(NodeId n) const { return rx_wire_[n].busy_ns; }
  SimTime tx_wire_busy_ns(NodeId n) const { return tx_wire_[n].busy_ns; }

  // Serialization time of `bytes` at the line rate, in ns.
  SimTime WireTime(std::uint32_t bytes) const;
  // Per-packet switch-port processing time, in ns.
  SimTime PortTime() const;

 private:
  // A single-server FIFO station: tracks when it next frees up.
  struct Station {
    SimTime free_at = 0;
    SimTime busy_ns = 0;

    // Occupies the station for `cost` starting no earlier than `ready`; returns
    // the completion time.
    SimTime Pass(SimTime ready, SimTime cost) {
      const SimTime start = ready > free_at ? ready : free_at;
      const SimTime done = start + cost;
      free_at = done;
      busy_ns += cost;
      return done;
    }
  };

  SimTime RouteThroughFabric(const Packet& packet, SimTime tx_done);
  void ScheduleDelivery(const Packet& packet, SimTime at);
  // A wire station holds a packet for its serialization time or the NIC's
  // per-message gap, whichever is longer.
  SimTime WireCost(std::uint32_t bytes) const {
    const SimTime serialize = WireTime(bytes);
    return serialize > nic_gap_ns_ ? serialize : nic_gap_ns_;
  }

  Simulator* sim_;
  NetConfig config_;
  NetworkStats stats_;
  std::vector<Station> tx_wire_;
  std::vector<Station> port_in_;
  std::vector<Station> port_out_;
  std::vector<Station> rx_wire_;
  std::vector<DeliverFn> deliver_;
  double ns_per_byte_;
  SimTime port_ns_;
  SimTime nic_gap_ns_;
};

}  // namespace cckvs

#endif  // CCKVS_NET_NETWORK_H_
