// The paper's analytical performance model (§8.7, substrate S13).
//
// ccKVS is network-bound, so throughput is the available per-server network
// bandwidth divided by the traffic a request generates:
//
//   (1) TR_CM  = (1-h) (1-1/N) B_RR          cache-miss traffic per request
//   (2) TR_Lin = h w (N-1) B_Lin             Lin consistency traffic per request
//   (3) T_Lin  = N BW / (TR_CM + TR_Lin)
//   (4) TR_SC  = h w (N-1) B_SC              SC consistency traffic per request
//   (5) T_SC   = N BW / (TR_CM + TR_SC)
//   (6) TR_U   = (1-1/N) B_RR                Uniform traffic per request
//   (7) T_U    = N BW / TR_U
//
// §8.7.2 defines the break-even write ratio: the w at which ccKVS throughput
// equals Uniform.  Setting (7)=(5) (resp. (3)) and solving gives the closed
// forms implemented here; note they are independent of the hit ratio h.
//
// Defaults reproduce the paper's validation setup: h = 0.65, B_RR = 113 B,
// B_SC = 83 B, B_Lin = 183 B, BW = 21.5 Gb/s (the measured small-packet
// effective bandwidth, §8.4).

#ifndef CCKVS_MODEL_ANALYTICAL_H_
#define CCKVS_MODEL_ANALYTICAL_H_

#include <cstdint>

namespace cckvs {

struct ModelParams {
  int num_servers = 9;       // N
  double hit_ratio = 0.65;   // h (Figure 3 at alpha=0.99, 0.1% cache)
  double write_ratio = 0.01; // w
  double bw_gbps = 21.5;     // BW: effective per-server network bandwidth
  double b_rr = 113.0;       // bytes: remote request + response
  double b_sc = 83.0;        // bytes: one SC update
  double b_lin = 183.0;      // bytes: invalidation + ack + update
};

// Traffic per request, in bytes (equations 1, 2, 4, 6).
double TrafficCacheMissBytes(const ModelParams& p);
double TrafficLinBytes(const ModelParams& p);
double TrafficScBytes(const ModelParams& p);
double TrafficUniformBytes(const ModelParams& p);

// System throughput, in million requests per second (equations 3, 5, 7).
double ThroughputLinMrps(const ModelParams& p);
double ThroughputScMrps(const ModelParams& p);
double ThroughputUniformMrps(const ModelParams& p);

// Break-even write ratios (§8.7.2): w* = B_RR / (N * B_proto).
double BreakEvenWriteRatioSc(const ModelParams& p);
double BreakEvenWriteRatioLin(const ModelParams& p);

}  // namespace cckvs

#endif  // CCKVS_MODEL_ANALYTICAL_H_
