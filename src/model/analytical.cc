#include "src/model/analytical.h"

#include "src/common/check.h"

namespace cckvs {
namespace {

double RemoteFraction(int n) { return 1.0 - 1.0 / static_cast<double>(n); }

double MrpsFromTraffic(const ModelParams& p, double bytes_per_request) {
  // BW [Gb/s] -> bytes/s = BW * 1e9 / 8; throughput = N * BW / bytes-per-request.
  const double bytes_per_second = p.bw_gbps * 1e9 / 8.0;
  const double per_server = bytes_per_second / bytes_per_request;
  return static_cast<double>(p.num_servers) * per_server / 1e6;
}

}  // namespace

double TrafficCacheMissBytes(const ModelParams& p) {
  CCKVS_CHECK_GE(p.num_servers, 1);
  return (1.0 - p.hit_ratio) * RemoteFraction(p.num_servers) * p.b_rr;  // eq (1)
}

double TrafficLinBytes(const ModelParams& p) {
  return p.hit_ratio * p.write_ratio * (p.num_servers - 1) * p.b_lin;  // eq (2)
}

double TrafficScBytes(const ModelParams& p) {
  return p.hit_ratio * p.write_ratio * (p.num_servers - 1) * p.b_sc;  // eq (4)
}

double TrafficUniformBytes(const ModelParams& p) {
  return RemoteFraction(p.num_servers) * p.b_rr;  // eq (6)
}

double ThroughputLinMrps(const ModelParams& p) {
  return MrpsFromTraffic(p, TrafficCacheMissBytes(p) + TrafficLinBytes(p));  // eq (3)
}

double ThroughputScMrps(const ModelParams& p) {
  return MrpsFromTraffic(p, TrafficCacheMissBytes(p) + TrafficScBytes(p));  // eq (5)
}

double ThroughputUniformMrps(const ModelParams& p) {
  return MrpsFromTraffic(p, TrafficUniformBytes(p));  // eq (7)
}

double BreakEvenWriteRatioSc(const ModelParams& p) {
  // T_U = T_SC  =>  (1-1/N) B_RR = (1-h)(1-1/N) B_RR + h w (N-1) B_SC
  //             =>  w = B_RR / (N B_SC); h cancels.
  return p.b_rr / (static_cast<double>(p.num_servers) * p.b_sc);
}

double BreakEvenWriteRatioLin(const ModelParams& p) {
  return p.b_rr / (static_cast<double>(p.num_servers) * p.b_lin);
}

}  // namespace cckvs
