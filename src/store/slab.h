// Size-class slab allocator for store records (MICA-style value storage).
//
// Records live in geometric size classes carved out of grow-only arenas.  Slab
// memory is never unmapped, which is what makes the seqlock read protocol safe:
// a reader racing with a concurrent free/reuse may copy garbage bytes, but never
// touches unmapped memory, and the seqlock version check discards the torn copy.

#ifndef CCKVS_STORE_SLAB_H_
#define CCKVS_STORE_SLAB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/check.h"

namespace cckvs {

class SlabAllocator {
 public:
  // Reference to an allocated record slot.
  struct Ref {
    std::uint8_t cls = 0;
    std::uint32_t idx = 0;

    friend bool operator==(const Ref&, const Ref&) = default;
  };

  // Size classes: 32, 64, 128, ..., 32 * 2^(kNumClasses-1) bytes.
  static constexpr int kNumClasses = 10;  // up to 16 KiB records
  static constexpr std::size_t kMinClassBytes = 32;

  SlabAllocator() = default;
  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Smallest class that fits `bytes`; CHECKs that one exists.
  static int ClassFor(std::size_t bytes);
  static std::size_t ClassBytes(int cls);

  // Allocates a slot able to hold `bytes`.  Thread-safe.
  Ref Allocate(std::size_t bytes);

  // Returns a slot to its class freelist.  Thread-safe.  The memory stays
  // mapped and may be reused by a later Allocate.
  void Free(Ref ref);

  // Raw record storage; stable for the lifetime of the allocator.  Requires a
  // valid ref (writer paths).
  char* Data(Ref ref);
  const char* Data(Ref ref) const;

  // Tolerant variant for the seqlock read path: a torn bucket read can produce a
  // garbage ref, so out-of-range or unmapped refs return nullptr instead of
  // faulting; the caller's ReadRetry() then discards the attempt.
  const char* TryData(Ref ref) const;

  std::uint64_t allocated_slots() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_slots() const { return freed_.load(std::memory_order_relaxed); }
  std::uint64_t arena_bytes() const {
    return arena_bytes_.load(std::memory_order_relaxed);
  }

  // Point-in-time snapshot of the atomic counters; safe to call from any
  // thread concurrently with Allocate/Free (live-runtime reporting path).
  struct Stats {
    std::uint64_t allocated_slots = 0;
    std::uint64_t freed_slots = 0;
    std::uint64_t live_slots = 0;
    std::uint64_t arena_bytes = 0;
  };
  Stats stats() const {
    Stats s;
    s.allocated_slots = allocated_slots();
    s.freed_slots = freed_slots();
    s.live_slots = s.allocated_slots - s.freed_slots;
    s.arena_bytes = arena_bytes();
    return s;
  }

 private:
  // Slots per arena chunk, per class (kept small so tiny tests stay tiny).
  static constexpr std::uint32_t kChunkSlots = 1024;
  // Hard cap per class: 4096 chunks x 1024 slots = 4M records per class.
  static constexpr std::uint32_t kMaxChunks = 4096;

  struct SizeClass {
    std::mutex mu;
    // Readers resolve Data() through these atomics without taking `mu`; the
    // array is fixed-size so there is no reallocation race.  `owned` keeps the
    // allocations alive and is only touched under `mu`.
    std::atomic<char*> chunk_ptrs[kMaxChunks] = {};
    std::vector<std::unique_ptr<char[]>> owned;
    std::vector<std::uint32_t> freelist;
    std::uint32_t next_unused = 0;  // high-water mark across chunks
  };

  SizeClass classes_[kNumClasses];
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint64_t> arena_bytes_{0};
};

}  // namespace cckvs

#endif  // CCKVS_STORE_SLAB_H_
