#include "src/store/partition.h"

#include <cstring>

#include "src/common/atomic_copy.h"
#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

Partition::Partition(const PartitionConfig& config)
    : config_(config),
      bucket_mask_(RoundUpPow2(config.buckets < 2 ? 2 : config.buckets) - 1),
      buckets_(bucket_mask_ + 1) {}

Partition::~Partition() = default;

Partition::Bucket& Partition::HomeBucket(Key key) const {
  const std::uint64_t h = HashKey(key);
  return const_cast<Bucket&>(buckets_[h & bucket_mask_]);
}

std::uint16_t Partition::TagOf(std::uint64_t hash) const {
  // Never 0 so that a zeroed slot cannot alias a real tag.
  const auto tag = static_cast<std::uint16_t>(hash >> 48);
  return tag == 0 ? 1 : tag;
}

Partition::Bucket* Partition::OverflowBucket(std::uint32_t idx) const {
  const std::uint32_t chunk = idx / kOverflowChunkSize;
  if (chunk >= kMaxOverflowChunks) {
    return nullptr;  // torn read of the overflow index
  }
  Bucket* base = overflow_chunks_[chunk].load(std::memory_order_acquire);
  if (base == nullptr) {
    return nullptr;
  }
  return base + idx % kOverflowChunkSize;
}

void Partition::WriteRecord(SlabAllocator::Ref ref, Key key, const Value& value,
                            Timestamp ts, std::uint8_t flags) {
  char* data = slab_.Data(ref);
  RecordHeader hdr;
  hdr.key = key;
  hdr.clock = ts.clock;
  hdr.len = static_cast<std::uint32_t>(value.size());
  hdr.writer = ts.writer;
  hdr.flags = flags;
  // Relaxed atomic stores: lock-free readers may race with this copy and
  // observe a torn record, which their seqlock version check discards.
  RelaxedCopyToShared(data, &hdr, sizeof(hdr));
  RelaxedCopyToShared(data + sizeof(hdr), value.data(), value.size());
}

bool Partition::Get(Key key, Value* value, Timestamp* ts,
                    bool* cache_resident) const {
  gets_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  const Bucket& head = buckets_[h & bucket_mask_];

  while (true) {
    const std::uint32_t version = head.lock.ReadBegin();
    bool found = false;
    bool found_resident = false;
    Timestamp found_ts{};
    const Bucket* bucket = &head;
    while (bucket != nullptr && !found) {
      for (const AtomicSlot& atomic_slot : bucket->slots) {
        const Slot slot = atomic_slot.load();
        if (slot.used == 0 || slot.tag != tag) {
          continue;
        }
        const char* data = slab_.TryData(slot.ref);
        if (data == nullptr) {
          break;  // torn ref; the retry check below sorts it out
        }
        RecordHeader hdr;
        RelaxedCopyFromShared(&hdr, data, sizeof(hdr));
        if (hdr.key != key) {
          continue;  // tag collision
        }
        const std::size_t capacity =
            SlabAllocator::ClassBytes(slot.ref.cls) - sizeof(RecordHeader);
        const std::size_t len = hdr.len <= capacity ? hdr.len : capacity;
        if (value != nullptr) {
          value->resize(len);
          RelaxedCopyFromShared(value->data(), data + sizeof(hdr), len);
        }
        found_ts = Timestamp{hdr.clock, hdr.writer};
        found_resident = (hdr.flags & kFlagCacheResident) != 0;
        found = true;
        break;
      }
      if (!found) {
        const std::uint32_t next = bucket->overflow.load(std::memory_order_relaxed);
        bucket = next == kNoOverflow ? nullptr : OverflowBucket(next);
      }
    }
    if (head.lock.ReadRetry(version)) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (found) {
      if (ts != nullptr) {
        *ts = found_ts;
      }
      if (cache_resident != nullptr) {
        *cache_resident = found_resident;
      }
      return true;
    }
    break;
  }

  if (cache_resident != nullptr) {
    *cache_resident = false;
  }
  if (config_.synthesize || config_.synthesize_into) {
    synthesized_.fetch_add(1, std::memory_order_relaxed);
    if (value != nullptr) {
      if (config_.synthesize_into) {
        config_.synthesize_into(key, value);  // reuses the caller's capacity
      } else {
        *value = config_.synthesize(key);
      }
    }
    if (ts != nullptr) {
      *ts = Timestamp{};
    }
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Partition::AtomicSlot* Partition::FindSlot(Bucket& head, Key key, std::uint16_t tag) {
  Bucket* bucket = &head;
  while (bucket != nullptr) {
    for (AtomicSlot& atomic_slot : bucket->slots) {
      // Under the bucket writer lock the slot cannot change; the relaxed load
      // just decodes the packed form.
      const Slot slot = atomic_slot.load();
      if (slot.used != 0 && slot.tag == tag) {
        const char* data = slab_.Data(slot.ref);
        RecordHeader hdr;
        RelaxedCopyFromShared(&hdr, data, sizeof(hdr));
        if (hdr.key == key) {
          return &atomic_slot;
        }
      }
    }
    const std::uint32_t next = bucket->overflow.load(std::memory_order_relaxed);
    bucket = next == kNoOverflow ? nullptr : OverflowBucket(next);
  }
  return nullptr;
}

Partition::AtomicSlot* Partition::FreeSlot(Bucket& head) {
  Bucket* bucket = &head;
  while (true) {
    for (AtomicSlot& atomic_slot : bucket->slots) {
      if (atomic_slot.load().used == 0) {
        return &atomic_slot;
      }
    }
    if (bucket->overflow.load(std::memory_order_relaxed) == kNoOverflow) {
      // Extend the chain.  Allocation is serialized by overflow_mu_; linking is
      // covered by the head bucket's writer lock held by our caller.
      std::lock_guard<std::mutex> lock(overflow_mu_);
      const std::uint32_t idx = overflow_count_.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t chunk = idx / kOverflowChunkSize;
      CCKVS_CHECK_LT(chunk, kMaxOverflowChunks);
      if (chunk >= overflow_owned_.size()) {
        overflow_owned_.push_back(std::make_unique<Bucket[]>(kOverflowChunkSize));
        overflow_chunks_[chunk].store(overflow_owned_.back().get(),
                                      std::memory_order_release);
      }
      bucket->overflow.store(idx, std::memory_order_relaxed);
      return &OverflowBucket(idx)->slots[0];
    }
    bucket = OverflowBucket(bucket->overflow.load(std::memory_order_relaxed));
  }
}

void Partition::PutLocked(Bucket& head, Key key, std::uint16_t tag,
                          const Value& value, Timestamp ts, std::uint8_t flags) {
  AtomicSlot* found = FindSlot(head, key, tag);
  if (found != nullptr) {
    Slot slot = found->load();
    const int needed_cls = SlabAllocator::ClassFor(sizeof(RecordHeader) + value.size());
    if (needed_cls == slot.ref.cls) {
      WriteRecord(slot.ref, key, value, ts, flags);
    } else {
      const SlabAllocator::Ref fresh =
          slab_.Allocate(sizeof(RecordHeader) + value.size());
      WriteRecord(fresh, key, value, ts, flags);
      const SlabAllocator::Ref old = slot.ref;
      slot.ref = fresh;
      found->store(slot);
      slab_.Free(old);
    }
    return;
  }
  AtomicSlot* free_slot = FreeSlot(head);
  Slot slot;
  slot.ref = slab_.Allocate(sizeof(RecordHeader) + value.size());
  WriteRecord(slot.ref, key, value, ts, flags);
  slot.tag = tag;
  slot.used = 1;
  free_slot->store(slot);
  live_records_.fetch_add(1, std::memory_order_relaxed);
}

Timestamp Partition::Put(Key key, const Value& value) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  Timestamp ts{1, config_.node_id};
  std::uint8_t flags = 0;
  if (AtomicSlot* found = FindSlot(head, key, tag); found != nullptr) {
    RecordHeader hdr;
    RelaxedCopyFromShared(&hdr, slab_.Data(found->load().ref), sizeof(hdr));
    ts = Timestamp{hdr.clock + 1, config_.node_id};
    flags = hdr.flags;
  }
  PutLocked(head, key, tag, value, ts, flags);
  return ts;
}

bool Partition::TryPut(Key key, const Value& value, Timestamp* ts) {
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  Timestamp fresh{1, config_.node_id};
  if (AtomicSlot* found = FindSlot(head, key, tag); found != nullptr) {
    RecordHeader hdr;
    RelaxedCopyFromShared(&hdr, slab_.Data(found->load().ref), sizeof(hdr));
    if ((hdr.flags & kFlagCacheResident) != 0) {
      return false;  // the hot set owns this key; caller retries the gate
    }
    fresh = Timestamp{hdr.clock + 1, config_.node_id};
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  PutLocked(head, key, tag, value, fresh, 0);
  if (ts != nullptr) {
    *ts = fresh;
  }
  return true;
}

bool Partition::Apply(Key key, const Value& value, Timestamp ts) {
  puts_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  std::uint8_t flags = 0;
  if (AtomicSlot* found = FindSlot(head, key, tag); found != nullptr) {
    RecordHeader hdr;
    RelaxedCopyFromShared(&hdr, slab_.Data(found->load().ref), sizeof(hdr));
    if (Timestamp{hdr.clock, hdr.writer} >= ts) {
      stale_applies_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    flags = hdr.flags;  // applies bypass the gate but must not drop it
  }
  PutLocked(head, key, tag, value, ts, flags);
  return true;
}

Partition::ResidentSnapshot Partition::MarkCacheResident(Key key) {
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  ResidentSnapshot snap;
  if (AtomicSlot* found = FindSlot(head, key, tag); found != nullptr) {
    const char* data = slab_.Data(found->load().ref);
    RecordHeader hdr;
    RelaxedCopyFromShared(&hdr, data, sizeof(hdr));
    snap.value.resize(hdr.len);
    RelaxedCopyFromShared(snap.value.data(), data + sizeof(hdr), hdr.len);
    snap.ts = Timestamp{hdr.clock, hdr.writer};
    hdr.flags |= kFlagCacheResident;
    RelaxedCopyToShared(slab_.Data(found->load().ref), &hdr, sizeof(hdr));
    return snap;
  }
  // Never-written key entering the hot set: materialize its synthetic value so
  // the flag has a record to live on.
  CCKVS_CHECK(config_.synthesize != nullptr);
  snap.value = config_.synthesize(key);
  snap.ts = Timestamp{};
  PutLocked(head, key, tag, snap.value, snap.ts, kFlagCacheResident);
  return snap;
}

void Partition::ClearCacheResident(Key key) {
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  AtomicSlot* found = FindSlot(head, key, tag);
  CCKVS_CHECK(found != nullptr);  // MarkCacheResident materialized the record
  char* data = slab_.Data(found->load().ref);
  RecordHeader hdr;
  RelaxedCopyFromShared(&hdr, data, sizeof(hdr));
  hdr.flags &= static_cast<std::uint8_t>(~kFlagCacheResident);
  RelaxedCopyToShared(data, &hdr, sizeof(hdr));
}

bool Partition::Erase(Key key) {
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  Bucket& head = buckets_[h & bucket_mask_];
  SeqlockWriteGuard guard(head.lock);
  AtomicSlot* found = FindSlot(head, key, tag);
  if (found == nullptr) {
    return false;
  }
  Slot slot = found->load();
  slot.used = 0;
  found->store(slot);
  slab_.Free(slot.ref);
  live_records_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Partition::Contains(Key key) const {
  const std::uint64_t h = HashKey(key);
  const std::uint16_t tag = TagOf(h);
  const Bucket& head = buckets_[h & bucket_mask_];
  while (true) {
    const std::uint32_t version = head.lock.ReadBegin();
    bool found = false;
    const Bucket* bucket = &head;
    while (bucket != nullptr && !found) {
      for (const AtomicSlot& atomic_slot : bucket->slots) {
        const Slot slot = atomic_slot.load();
        if (slot.used != 0 && slot.tag == tag) {
          const char* data = slab_.TryData(slot.ref);
          if (data == nullptr) {
            break;
          }
          RecordHeader hdr;
          RelaxedCopyFromShared(&hdr, data, sizeof(hdr));
          if (hdr.key == key) {
            found = true;
            break;
          }
        }
      }
      if (!found) {
        const std::uint32_t next = bucket->overflow.load(std::memory_order_relaxed);
        bucket = next == kNoOverflow ? nullptr : OverflowBucket(next);
      }
    }
    if (!head.lock.ReadRetry(version)) {
      return found;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

PartitionStats Partition::stats() const {
  PartitionStats s;
  s.gets = gets_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.synthesized_gets = synthesized_.load(std::memory_order_relaxed);
  s.read_retries = retries_.load(std::memory_order_relaxed);
  s.stale_applies = stale_applies_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace cckvs
