// Sequence locks (§6.2).
//
// ccKVS synchronizes CRCW access with seqlocks "which allow lock-free reads
// without starving the writes" (Hemminger/Lameter-style, with the OPTIK-pattern
// version check).  The writer side is a spinlock embedded in the same word; the
// version is odd while a write is in flight.  Readers never write shared state:
// they snapshot the version, copy data out, and retry if the version was odd or
// changed — exactly the algorithm described in the paper.

#ifndef CCKVS_STORE_SEQLOCK_H_
#define CCKVS_STORE_SEQLOCK_H_

#include <atomic>
#include <cstdint>

namespace cckvs {

class Seqlock {
 public:
  Seqlock() = default;
  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  // Reader protocol:
  //   uint32_t v = lock.ReadBegin();
  //   ... copy data out ...
  //   if (lock.ReadRetry(v)) goto again;
  std::uint32_t ReadBegin() const {
    std::uint32_t v = seq_.load(std::memory_order_acquire);
    while (v & 1u) {  // writer in flight: spin until it finishes
      v = seq_.load(std::memory_order_acquire);
    }
    return v;
  }

  bool ReadRetry(std::uint32_t begin_version) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_relaxed) != begin_version;
  }

  // Writer protocol: spin until the version is even and we win the CAS to make
  // it odd; the odd version is the spinlock.
  void WriteLock() {
    std::uint32_t v = seq_.load(std::memory_order_relaxed);
    while (true) {
      if ((v & 1u) == 0 &&
          seq_.compare_exchange_weak(v, v + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        return;
      }
      v = seq_.load(std::memory_order_relaxed);
    }
  }

  void WriteUnlock() { seq_.fetch_add(1, std::memory_order_release); }

  // Current raw version (even = unlocked).
  std::uint32_t version() const { return seq_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::uint32_t> seq_{0};
};

// RAII writer guard.
class SeqlockWriteGuard {
 public:
  explicit SeqlockWriteGuard(Seqlock& lock) : lock_(lock) { lock_.WriteLock(); }
  ~SeqlockWriteGuard() { lock_.WriteUnlock(); }
  SeqlockWriteGuard(const SeqlockWriteGuard&) = delete;
  SeqlockWriteGuard& operator=(const SeqlockWriteGuard&) = delete;

 private:
  Seqlock& lock_;
};

}  // namespace cckvs

#endif  // CCKVS_STORE_SEQLOCK_H_
