// Key-to-node sharding (S12).
//
// The paper shards the dataset "using techniques such as consistent hashing"
// (§1).  Two interchangeable policies are provided: a consistent-hashing ring
// with virtual nodes (realistic, supports smooth resharding) and a plain modulo
// mapping (useful in tests where exact placement must be predictable).

#ifndef CCKVS_STORE_PARTITIONER_H_
#define CCKVS_STORE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cckvs {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual NodeId HomeOf(Key key) const = 0;
  virtual int num_nodes() const = 0;
};

class ModuloPartitioner final : public Partitioner {
 public:
  explicit ModuloPartitioner(int nodes);

  NodeId HomeOf(Key key) const override;
  int num_nodes() const override { return nodes_; }

 private:
  int nodes_;
};

// Consistent-hashing ring (Karger et al.) with `vnodes` virtual nodes per
// server.  HomeOf walks clockwise to the first vnode at or after hash(key).
class ConsistentHashRing final : public Partitioner {
 public:
  ConsistentHashRing(int nodes, int vnodes = 128, std::uint64_t seed = 1);

  NodeId HomeOf(Key key) const override;
  int num_nodes() const override { return nodes_; }

  // Ring surgery, for remapping tests: fraction of keys that move on node
  // add/remove should be ~1/N.
  void AddNode(NodeId node);
  void RemoveNode(NodeId node);

 private:
  struct VNode {
    std::uint64_t point;
    NodeId node;

    friend bool operator<(const VNode& a, const VNode& b) {
      if (a.point != b.point) {
        return a.point < b.point;
      }
      return a.node < b.node;
    }
  };

  void InsertVNodes(NodeId node);

  int nodes_;
  int vnodes_;
  std::uint64_t seed_;
  std::vector<VNode> ring_;
};

}  // namespace cckvs

#endif  // CCKVS_STORE_PARTITIONER_H_
