#include "src/store/partitioner.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {

ModuloPartitioner::ModuloPartitioner(int nodes) : nodes_(nodes) {
  CCKVS_CHECK_GE(nodes, 1);
}

NodeId ModuloPartitioner::HomeOf(Key key) const {
  return static_cast<NodeId>(HashKey(key) % static_cast<std::uint64_t>(nodes_));
}

ConsistentHashRing::ConsistentHashRing(int nodes, int vnodes, std::uint64_t seed)
    : nodes_(nodes), vnodes_(vnodes), seed_(seed) {
  CCKVS_CHECK_GE(nodes, 1);
  CCKVS_CHECK_GE(vnodes, 1);
  ring_.reserve(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(vnodes));
  for (int n = 0; n < nodes; ++n) {
    InsertVNodes(static_cast<NodeId>(n));
  }
  std::sort(ring_.begin(), ring_.end());
}

void ConsistentHashRing::InsertVNodes(NodeId node) {
  for (int v = 0; v < vnodes_; ++v) {
    const std::uint64_t point =
        Mix64(seed_ ^ (static_cast<std::uint64_t>(node) << 32) ^
              static_cast<std::uint64_t>(v));
    ring_.push_back(VNode{point, node});
  }
}

NodeId ConsistentHashRing::HomeOf(Key key) const {
  CCKVS_CHECK(!ring_.empty());
  const std::uint64_t h = HashKey(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), VNode{h, 0});
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around the ring
  }
  return it->node;
}

void ConsistentHashRing::AddNode(NodeId node) {
  InsertVNodes(node);
  std::sort(ring_.begin(), ring_.end());
  if (static_cast<int>(node) >= nodes_) {
    nodes_ = static_cast<int>(node) + 1;
  }
}

void ConsistentHashRing::RemoveNode(NodeId node) {
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [node](const VNode& v) { return v.node == node; }),
              ring_.end());
}

}  // namespace cckvs
