// MICA-derived key-value partition (substrate S5, §6.2).
//
// Each ccKVS node holds one shard of the dataset in a structure of this shape:
// a set-associative bucket index guarded by per-bucket seqlocks, with records in
// a slab allocator.  Under CRCW every KVS thread may touch any bucket (the
// paper's choice, "we implement seqlocks over MICA"); under EREW the cckvs layer
// instantiates one Partition per thread instead, so this class stays agnostic.
//
// Read path: lock-free seqlock copy-out with retry.  Write path: per-bucket
// writer spinlock (the odd seqlock phase).  Both sides move record bytes with
// relaxed atomic copies (src/common/atomic_copy.h), so the deliberate
// reader/writer race of the seqlock algorithm is expressed race-free and the
// live runtime's stress tests run this exact path under ThreadSanitizer.
//
// Lazy materialization: the paper's experiments address 250 M keys.  A synthetic
// default-value function lets GETs of never-written keys answer without
// materializing 250 M records; PUTs always materialize.

#ifndef CCKVS_STORE_PARTITION_H_
#define CCKVS_STORE_PARTITION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/types.h"
#include "src/store/seqlock.h"
#include "src/store/slab.h"

namespace cckvs {

struct PartitionConfig {
  // Number of index buckets (rounded up to a power of two); each holds
  // kWays entries plus overflow chaining.
  std::size_t buckets = 1 << 16;
  // Writer id stamped on plain Put()s (normally the owning node id).
  NodeId node_id = 0;
  // Optional synthesizer: value for keys that were never written.  When set, a
  // GET miss returns Synthesize(key) with a zero timestamp instead of failing.
  std::function<Value(Key)> synthesize;
  // Capacity-reusing variant, preferred by Get when set (the live runtime's
  // zero-alloc hot path): writes the synthetic value into the caller's buffer
  // instead of returning a fresh one.  Set both or neither; internal callers
  // that need an owned Value (MarkCacheResident) use `synthesize`.
  std::function<void(Key, Value*)> synthesize_into;
};

struct PartitionStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t misses = 0;            // GET of absent key, no synthesizer
  std::uint64_t synthesized_gets = 0;  // GET of absent key served synthetically
  std::uint64_t read_retries = 0;      // seqlock retry loops taken
  std::uint64_t stale_applies = 0;     // Apply() rejected by timestamp
};

class Partition {
 public:
  explicit Partition(const PartitionConfig& config);
  ~Partition();
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  // Lock-free read.  On hit copies the value (and timestamp if requested) and
  // returns true.  On miss: synthesizes if configured, else returns false.
  // When `cache_resident` is non-null it receives the record's residency flag
  // (read inside the same seqlock snapshot as the value): true means the hot
  // set owns this key and the shard copy may be stale — direct readers must
  // retry until the epoch machinery clears the flag (see MarkCacheResident).
  bool Get(Key key, Value* value, Timestamp* ts = nullptr,
           bool* cache_resident = nullptr) const;

  // Plain client write at the home node: monotonically bumps the record's
  // Lamport clock and stamps the configured node id.  Returns the timestamp the
  // write got.
  Timestamp Put(Key key, const Value& value);

  // Gated variant of Put for direct cross-thread writers: refuses (returns
  // false) when the record is cache-resident, so a shard write can never race
  // an authoritative cached copy.  On success *ts receives the timestamp.
  bool TryPut(Key key, const Value& value, Timestamp* ts);

  // Header-only seqlock peek: the record's current timestamp and residency
  // flag, with no value copy-out.  The L1 tail's Lin validation path uses
  // this to check a private copy against the home shard on every hit; the
  // miss semantics mirror Get (a never-written key under a configured
  // synthesizer reports the zero timestamp and returns true).
  bool PeekTimestamp(Key key, Timestamp* ts, bool* cache_resident) const {
    return Get(key, nullptr, ts, cache_resident);
  }

  // Timestamped apply, used by write-back flushes from the symmetric cache and
  // by recovery paths: installs (value, ts) iff ts is newer than the stored
  // timestamp (or the key is absent).  Returns true when applied.  Applies are
  // protocol traffic: they bypass the residency gate and preserve the flag.
  bool Apply(Key key, const Value& value, Timestamp ts);

  // --- hot-set residency gate (home node only) ---
  //
  // The live runtime's miss path reads and writes shards directly, so during
  // an epoch transition a shard copy can transiently disagree with the caches.
  // The home node brackets a key's cached lifetime with these two calls:
  // MarkCacheResident when the key enters the hot set (atomically, under the
  // bucket's writer lock, flag the record and snapshot the fill value — any
  // concurrent TryPut lands either entirely before the snapshot or is refused
  // after it), and ClearCacheResident when the key's eviction has settled
  // rack-wide (every write-back and in-flight update has been applied).

  struct ResidentSnapshot {
    Value value;
    Timestamp ts{};
  };
  // Materializes the record if absent (via the synthesizer).
  ResidentSnapshot MarkCacheResident(Key key);
  void ClearCacheResident(Key key);

  // Removes the key.  Returns true if it was present.
  bool Erase(Key key);

  bool Contains(Key key) const;
  std::size_t size() const { return live_records_.load(std::memory_order_relaxed); }

  PartitionStats stats() const;
  // Slab counters backing this shard; thread-safe snapshot.
  SlabAllocator::Stats slab_stats() const { return slab_.stats(); }

 private:
  static constexpr int kWays = 7;
  static constexpr std::uint32_t kNoOverflow = 0xffffffffu;

  // One index slot, decoded view.  The stored form is a single 64-bit word —
  // tag(16) | used(8) | cls(8) | idx(32) — so the lock-free read path can load
  // it with one relaxed atomic access; a torn/garbage word is harmless because
  // the bucket seqlock's version check discards the attempt.
  struct Slot {
    std::uint16_t tag = 0;
    std::uint8_t used = 0;
    SlabAllocator::Ref ref;
  };

  static std::uint64_t PackSlot(const Slot& s) {
    return static_cast<std::uint64_t>(s.tag) << 48 |
           static_cast<std::uint64_t>(s.used) << 40 |
           static_cast<std::uint64_t>(s.ref.cls) << 32 |
           static_cast<std::uint64_t>(s.ref.idx);
  }
  static Slot UnpackSlot(std::uint64_t raw) {
    Slot s;
    s.tag = static_cast<std::uint16_t>(raw >> 48);
    s.used = static_cast<std::uint8_t>(raw >> 40);
    s.ref.cls = static_cast<std::uint8_t>(raw >> 32);
    s.ref.idx = static_cast<std::uint32_t>(raw);
    return s;
  }

  struct AtomicSlot {
    std::atomic<std::uint64_t> raw{0};  // PackSlot form; 0 decodes to used == 0

    Slot load() const { return UnpackSlot(raw.load(std::memory_order_relaxed)); }
    void store(const Slot& s) { raw.store(PackSlot(s), std::memory_order_relaxed); }
  };

  struct Bucket {
    Seqlock lock;
    // Index into overflow chunks or kNoOverflow; read by the lock-free path.
    std::atomic<std::uint32_t> overflow{kNoOverflow};
    AtomicSlot slots[kWays];
  };

  // Record layout inside a slab slot: header then value bytes.
  struct RecordHeader {
    Key key;
    std::uint32_t clock;
    std::uint32_t len;
    NodeId writer;
    std::uint8_t flags;  // kFlagCacheResident
  };
  static constexpr std::uint8_t kFlagCacheResident = 0x1;

  Bucket& HomeBucket(Key key) const;
  std::uint16_t TagOf(std::uint64_t hash) const;

  // Walks bucket + overflow chain; returns the slot holding `key` or nullptr.
  // Writer-side only (called under the bucket lock).
  AtomicSlot* FindSlot(Bucket& head, Key key, std::uint16_t tag);
  // Finds a free slot in the chain, extending it if needed.
  AtomicSlot* FreeSlot(Bucket& head);

  void WriteRecord(SlabAllocator::Ref ref, Key key, const Value& value, Timestamp ts,
                   std::uint8_t flags = 0);
  // Shared put body: writes (value, ts) into the slot found for `key`, or
  // materializes a fresh record.  Caller holds the bucket writer lock.
  void PutLocked(Bucket& head, Key key, std::uint16_t tag, const Value& value,
                 Timestamp ts, std::uint8_t flags);

  PartitionConfig config_;
  std::size_t bucket_mask_;
  std::vector<Bucket> buckets_;
  // Overflow buckets; grown under overflow_mu_, pointers resolved through a
  // fixed atomic array (same pattern as the slab chunks).
  static constexpr std::uint32_t kMaxOverflowChunks = 1024;
  static constexpr std::uint32_t kOverflowChunkSize = 256;
  std::vector<std::unique_ptr<Bucket[]>> overflow_owned_;
  std::atomic<Bucket*> overflow_chunks_[kMaxOverflowChunks] = {};
  std::atomic<std::uint32_t> overflow_count_{0};
  mutable std::mutex overflow_mu_;

  SlabAllocator slab_;
  std::atomic<std::size_t> live_records_{0};

  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> puts_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> synthesized_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> stale_applies_{0};

  Bucket* OverflowBucket(std::uint32_t idx) const;
};

}  // namespace cckvs

#endif  // CCKVS_STORE_PARTITION_H_
