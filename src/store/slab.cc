#include "src/store/slab.h"

namespace cckvs {

int SlabAllocator::ClassFor(std::size_t bytes) {
  std::size_t cls_bytes = kMinClassBytes;
  for (int cls = 0; cls < kNumClasses; ++cls) {
    if (bytes <= cls_bytes) {
      return cls;
    }
    cls_bytes *= 2;
  }
  CCKVS_CHECK(false && "record larger than the largest slab class");
  return -1;
}

std::size_t SlabAllocator::ClassBytes(int cls) {
  CCKVS_DCHECK(cls >= 0 && cls < kNumClasses);
  return kMinClassBytes << cls;
}

SlabAllocator::Ref SlabAllocator::Allocate(std::size_t bytes) {
  const int cls = ClassFor(bytes);
  SizeClass& sc = classes_[cls];
  std::lock_guard<std::mutex> lock(sc.mu);
  std::uint32_t idx;
  if (!sc.freelist.empty()) {
    idx = sc.freelist.back();
    sc.freelist.pop_back();
  } else {
    idx = sc.next_unused++;
    const std::uint32_t chunk = idx / kChunkSlots;
    CCKVS_CHECK_LT(chunk, kMaxChunks);
    if (chunk >= sc.owned.size()) {
      const std::size_t chunk_bytes = ClassBytes(cls) * kChunkSlots;
      sc.owned.push_back(std::make_unique<char[]>(chunk_bytes));
      sc.chunk_ptrs[chunk].store(sc.owned.back().get(), std::memory_order_release);
      arena_bytes_.fetch_add(chunk_bytes, std::memory_order_relaxed);
    }
  }
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return Ref{static_cast<std::uint8_t>(cls), idx};
}

void SlabAllocator::Free(Ref ref) {
  SizeClass& sc = classes_[ref.cls];
  std::lock_guard<std::mutex> lock(sc.mu);
  CCKVS_DCHECK_LT(ref.idx, sc.next_unused);
  sc.freelist.push_back(ref.idx);
  freed_.fetch_add(1, std::memory_order_relaxed);
}

char* SlabAllocator::Data(Ref ref) {
  SizeClass& sc = classes_[ref.cls];
  const std::uint32_t chunk = ref.idx / kChunkSlots;
  const std::uint32_t slot = ref.idx % kChunkSlots;
  char* base = sc.chunk_ptrs[chunk].load(std::memory_order_acquire);
  CCKVS_DCHECK(base != nullptr);
  return base + static_cast<std::size_t>(slot) * ClassBytes(ref.cls);
}

const char* SlabAllocator::Data(Ref ref) const {
  return const_cast<SlabAllocator*>(this)->Data(ref);
}

const char* SlabAllocator::TryData(Ref ref) const {
  if (ref.cls >= kNumClasses) {
    return nullptr;
  }
  const std::uint32_t chunk = ref.idx / kChunkSlots;
  if (chunk >= kMaxChunks) {
    return nullptr;
  }
  const SizeClass& sc = classes_[ref.cls];
  const char* base = sc.chunk_ptrs[chunk].load(std::memory_order_acquire);
  if (base == nullptr) {
    return nullptr;
  }
  const std::uint32_t slot = ref.idx % kChunkSlots;
  return base + static_cast<std::size_t>(slot) * ClassBytes(ref.cls);
}

}  // namespace cckvs
