// Exhaustive model checking of the Lin protocol (§5.2 "Verification", S14).
//
// The paper verified its Lin protocol in Murφ (3 processors, 2 addresses, 2-bit
// timestamps) for safety — the single-writer-multiple-reader and data-value
// invariants — and deadlock freedom.  This checker reproduces that verification
// against the *production* LinEngine code (src/protocol/engine.cc), not an
// abstract re-specification: it instantiates N real engines over real symmetric
// caches, and exhaustively explores every interleaving of
//
//   * write initiations (any node, while a global write budget remains), and
//   * message deliveries (any in-flight message, in any order — UD gives no
//     ordering guarantees, so the in-flight set is a multiset).
//
// Checked properties:
//   I1 data-value: a Valid entry's value is exactly the value written by the
//      write carrying the entry's timestamp.
//   I2 write serialization (logical-time SWMR): a node's entry timestamp never
//      decreases across any transition.
//   I3 real-time ordering (the Lin-specific strengthening): a write starting
//      after some write completed must receive a strictly larger timestamp.
//   I4 deadlock freedom: every state with protocol work outstanding has an
//      enabled transition.
//   I5 convergence: every terminal state is fully quiescent — no in-flight
//      messages, all writes completed, all entries Valid and agreeing on the
//      globally maximal timestamp and its value.
//
// State identity is a canonical encoding of cache contents + in-flight messages
// + budgets; exploration is BFS with replay (states are regenerated from action
// paths, so the engines never need to be copyable).

#ifndef CCKVS_VERIFY_MODEL_CHECKER_H_
#define CCKVS_VERIFY_MODEL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cckvs {

struct ModelCheckerConfig {
  int num_nodes = 3;       // paper: 3 processors
  int total_writes = 3;    // global write budget (paper: 2-bit timestamps)
  int max_clock = 15;      // timestamp bound; CHECKed, never reached in practice
};

struct ModelCheckerResult {
  bool ok = false;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t max_depth = 0;
  std::string failure;  // human-readable description of the first violation
};

// Runs the exhaustive exploration.  Deterministic.
ModelCheckerResult CheckLinProtocol(const ModelCheckerConfig& config);

}  // namespace cckvs

#endif  // CCKVS_VERIFY_MODEL_CHECKER_H_
