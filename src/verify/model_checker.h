// Exhaustive model checking of the Lin protocol (§5.2 "Verification", S14).
//
// The paper verified its Lin protocol in Murφ (3 processors, 2 addresses, 2-bit
// timestamps) for safety — the single-writer-multiple-reader and data-value
// invariants — and deadlock freedom.  This checker reproduces that verification
// against the *production* LinEngine code (src/protocol/engine.cc), not an
// abstract re-specification: it instantiates N real engines over real symmetric
// caches, and exhaustively explores every interleaving of
//
//   * write initiations (any node, while a global write budget remains), and
//   * message deliveries (any in-flight message, in any order — UD gives no
//     ordering guarantees, so the in-flight set is a multiset).
//
// Checked properties:
//   I1 data-value: a Valid entry's value is exactly the value written by the
//      write carrying the entry's timestamp.
//   I2 write serialization (logical-time SWMR): a node's entry timestamp never
//      decreases across any transition.
//   I3 real-time ordering (the Lin-specific strengthening): a write starting
//      after some write completed must receive a strictly larger timestamp.
//   I4 deadlock freedom: every state with protocol work outstanding has an
//      enabled transition.
//   I5 convergence: every terminal state is fully quiescent — no in-flight
//      messages, all writes completed, all entries Valid and agreeing on the
//      globally maximal timestamp and its value.
//
// State identity is a canonical encoding of cache contents + in-flight messages
// + budgets; exploration is BFS with replay (states are regenerated from action
// paths, so the engines never need to be copyable).
//
// A second scope — CheckEpochTransition — extends the same exhaustive method
// to §4's epoch-transition machinery: N real engines + symmetric caches +
// store::Partition shards + topk::HotSetManager instances (driven through the
// same HotSetHost hooks both production hosts use) explore every interleaving
// of announce applications, protocol deliveries (inv/ack/update), fills,
// install-barrier confirmations, client cache ops and gated direct-shard ops
// across one epoch change that evicts one key and admits another.  Messages
// travel per-(src,dst) FIFO lanes — the ordering both transports guarantee
// and the install barrier relies on — while lanes interleave freely.
// Checked: per-key linearizability at every op completion (reads never
// observe below the key's completed-op watermark; writes serialize strictly
// above it) under Lin, data-value/write-atomicity everywhere, per-node
// timestamp monotonicity, deadlock freedom (no op parked forever, nothing
// deferred at quiescence), and terminal convergence (caches agree on the
// admitted key, the evicted key's shard holds its maximal write, every gate
// lifted, every node installed).

#ifndef CCKVS_VERIFY_MODEL_CHECKER_H_
#define CCKVS_VERIFY_MODEL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/protocol/engine.h"

namespace cckvs {

struct ModelCheckerConfig {
  int num_nodes = 3;       // paper: 3 processors
  int total_writes = 3;    // global write budget (paper: 2-bit timestamps)
  int max_clock = 15;      // timestamp bound; CHECKed, never reached in practice
};

struct ModelCheckerResult {
  bool ok = false;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  std::uint64_t max_depth = 0;
  std::string failure;  // human-readable description of the first violation
};

// Runs the exhaustive exploration.  Deterministic.
ModelCheckerResult CheckLinProtocol(const ModelCheckerConfig& config);

// Epoch-transition scope: one epoch change (key 0 evicted, key 1 admitted)
// explored exhaustively against the production engines, caches, shards and
// hot-set managers.  Client load comes from `puts` put templates and `gets`
// get templates spread across nodes and both keys; each op routes exactly as
// the hosts do — own-cache hit through the engine, otherwise a direct shard
// access through the residency gate, parking (and later retrying) when gated.
struct TransitionScopeConfig {
  int num_nodes = 2;
  ConsistencyModel model = ConsistencyModel::kLin;
  int puts = 1;       // put templates (≤ 4)
  int gets = 1;       // get templates (≤ 4)
  int max_clock = 15; // timestamp bound; CHECKed, never reached in practice
};

// Runs the exhaustive transition exploration.  Deterministic.
ModelCheckerResult CheckEpochTransition(const TransitionScopeConfig& config);

}  // namespace cckvs

#endif  // CCKVS_VERIFY_MODEL_CHECKER_H_
