#include "src/verify/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/workload/workload.h"

namespace cckvs {
namespace {

struct TsLess {
  bool operator()(const Timestamp& a, const Timestamp& b) const { return a < b; }
};

std::string Describe(const HistoryOp& op) {
  std::ostringstream os;
  os << ToString(op.type) << "(key=" << op.key << ", session=" << op.session
     << ", ts=" << op.ts << ", t=[" << op.invoke << "," << op.complete << "])";
  return os.str();
}

// Groups operation indices by key.
std::unordered_map<Key, std::vector<std::size_t>> ByKey(
    const std::vector<HistoryOp>& ops) {
  std::unordered_map<Key, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    groups[ops[i].key].push_back(i);
  }
  return groups;
}

// Checks (a) unique write timestamps and (b) reads observe existing writes.
// Returns empty on success.  `write_ts` receives the set of write timestamps.
std::string CheckWitnessBasics(const std::vector<HistoryOp>& ops,
                               const std::vector<std::size_t>& indices,
                               std::set<Timestamp, TsLess>* write_ts) {
  for (const std::size_t i : indices) {
    const HistoryOp& op = ops[i];
    if (op.type == OpType::kPut) {
      if (!write_ts->insert(op.ts).second) {
        return "duplicate write timestamp: " + Describe(op);
      }
    }
  }
  for (const std::size_t i : indices) {
    const HistoryOp& op = ops[i];
    if (op.type == OpType::kGet && op.ts != Timestamp{} &&
        write_ts->count(op.ts) == 0) {
      return "read observed a timestamp never written: " + Describe(op);
    }
  }
  return "";
}

}  // namespace

std::string History::CheckPerKeyLinearizability() const {
  const auto groups = ByKey(ops_);
  for (const auto& [key, indices] : groups) {
    std::set<Timestamp, TsLess> write_ts;
    if (std::string err = CheckWitnessBasics(ops_, indices, &write_ts); !err.empty()) {
      return err;
    }

    // Real-time condition (c): sweep events in time order; maintain the largest
    // effective timestamp among *completed* operations.  An invocation must not
    // observe less (writes: not less-or-equal).
    struct Event {
      SimTime time;
      bool is_invoke;  // invokes processed before completions at equal times
      std::size_t op_index;
    };
    std::vector<Event> events;
    events.reserve(indices.size() * 2);
    for (const std::size_t i : indices) {
      events.push_back(Event{ops_[i].invoke, true, i});
      events.push_back(Event{ops_[i].complete, false, i});
    }
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) {
        return a.time < b.time;
      }
      return a.is_invoke > b.is_invoke;  // invoke first on ties
    });

    Timestamp max_completed{};
    std::size_t max_completed_op = 0;
    bool have_completed = false;
    for (const Event& ev : events) {
      const HistoryOp& op = ops_[ev.op_index];
      if (ev.is_invoke) {
        if (have_completed) {
          const bool strict = op.type == OpType::kPut;
          const bool ok = strict ? op.ts > max_completed : op.ts >= max_completed;
          if (!ok) {
            return "linearizability violation: " + Describe(op) +
                   " observed/wrote ts " + (strict ? "not above " : "below ") +
                   "already-completed " + Describe(ops_[max_completed_op]);
          }
        }
      } else {
        if (!have_completed || op.ts > max_completed) {
          max_completed = op.ts;
          max_completed_op = ev.op_index;
          have_completed = true;
        }
      }
    }
  }
  return "";
}

std::string History::CheckWriteAtomicity() const {
  std::unordered_map<Key, std::unordered_set<std::string>> written;
  for (const HistoryOp& op : ops_) {
    if (op.type == OpType::kPut) {
      written[op.key].insert(op.value);
    }
  }
  for (const HistoryOp& op : ops_) {
    if (op.type != OpType::kGet) {
      continue;
    }
    if (op.value ==
        SynthesizeValue(op.key, static_cast<std::uint32_t>(op.value.size()))) {
      continue;  // the key's initial (never-written) value
    }
    auto it = written.find(op.key);
    if (it == written.end() || it->second.count(op.value) == 0) {
      return "write-atomicity violation: " + Describe(op) +
             " returned a value never written to its key";
    }
  }
  return "";
}

std::string History::CheckPerKeySequentialConsistency() const {
  const auto groups = ByKey(ops_);
  for (const auto& [key, indices] : groups) {
    std::set<Timestamp, TsLess> write_ts;
    if (std::string err = CheckWitnessBasics(ops_, indices, &write_ts); !err.empty()) {
      return err;
    }

    // Per-session monotonicity in session order.  Session order is the order of
    // invocation within a session (sessions are single-threaded clients).
    std::unordered_map<SessionId, std::vector<std::size_t>> by_session;
    for (const std::size_t i : indices) {
      by_session[ops_[i].session].push_back(i);
    }
    for (auto& [session, session_ops] : by_session) {
      std::sort(session_ops.begin(), session_ops.end(),
                [this](std::size_t a, std::size_t b) {
                  return ops_[a].invoke < ops_[b].invoke;
                });
      Timestamp last{};
      bool have_last = false;
      std::size_t last_index = 0;
      for (const std::size_t i : session_ops) {
        const HistoryOp& op = ops_[i];
        if (have_last) {
          const bool strict = op.type == OpType::kPut;
          const bool ok = strict ? op.ts > last : op.ts >= last;
          if (!ok) {
            return "per-key SC violation (session order regressed): " +
                   Describe(op) + " after " + Describe(ops_[last_index]);
          }
        }
        last = op.ts;
        last_index = i;
        have_last = true;
      }
    }
  }
  return "";
}

}  // namespace cckvs
