#include "src/verify/model_checker.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/cache/symmetric_cache.h"
#include "src/common/check.h"
#include "src/protocol/engine.h"
#include "src/store/partition.h"
#include "src/topk/hot_set_host.h"
#include "src/topk/hot_set_manager.h"

namespace cckvs {
namespace {

constexpr Key kKey = 0xcafe;
const char kInitValue[] = "init";

// An in-flight protocol message.  The fabric is modelled as a multiset: UD
// provides no ordering, so any in-flight message may be delivered next.
struct Msg {
  enum class Type : std::uint8_t { kInv = 0, kAck = 1, kUpd = 2 };
  Type type;
  NodeId from;
  NodeId to;
  Timestamp ts;
  std::string value;  // updates only

  // Canonical order, so action enumeration is deterministic across replays.
  friend bool operator<(const Msg& a, const Msg& b) {
    return std::tie(a.type, a.from, a.to, a.ts, a.value) <
           std::tie(b.type, b.from, b.to, b.ts, b.value);
  }
  friend bool operator==(const Msg&, const Msg&) = default;
};

struct Action {
  enum class Kind : std::uint8_t { kStartWrite, kDeliver };
  Kind kind;
  int arg;  // node id for kStartWrite; in-flight index for kDeliver
};

// The complete protocol world: N real engines over N real caches, plus the
// in-flight message multiset and verification bookkeeping.
class World {
 public:
  using ActionType = Action;

  explicit World(const ModelCheckerConfig& config)
      : config_(config), writes_remaining_(config.total_writes) {
    for (int i = 0; i < config.num_nodes; ++i) {
      caches_.push_back(std::make_unique<SymmetricCache>(1));
      caches_.back()->InstallHotSet({kKey});
      caches_.back()->Fill(kKey, kInitValue, Timestamp{0, 0});
      sinks_.push_back(std::make_unique<Sink>(this, static_cast<NodeId>(i)));
      engines_.push_back(std::make_unique<LinEngine>(
          static_cast<NodeId>(i), config.num_nodes, caches_.back().get(),
          sinks_.back().get()));
      writes_issued_by_.push_back(0);
    }
    value_of_ts_[Timestamp{0, 0}] = kInitValue;
  }

  // --- Action enumeration (deterministic) ---
  std::vector<Action> EnabledActions() const {
    std::vector<Action> actions;
    if (writes_remaining_ > 0) {
      for (int i = 0; i < config_.num_nodes; ++i) {
        const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
        if (!entry->write_in_flight) {
          actions.push_back(Action{Action::Kind::kStartWrite, i});
        }
      }
    }
    for (int m = 0; m < static_cast<int>(in_flight_.size()); ++m) {
      actions.push_back(Action{Action::Kind::kDeliver, m});
    }
    return actions;
  }

  // Applies one action; returns false (setting failure_) on invariant breach.
  bool Apply(const Action& action) {
    std::vector<Timestamp> before = SnapshotTimestamps();
    if (action.kind == Action::Kind::kStartWrite) {
      if (!StartWrite(static_cast<NodeId>(action.arg))) {
        return false;
      }
    } else {
      CCKVS_CHECK_LT(static_cast<std::size_t>(action.arg), in_flight_.size());
      const Msg msg = in_flight_[static_cast<std::size_t>(action.arg)];
      in_flight_.erase(in_flight_.begin() + action.arg);
      Deliver(msg);
    }
    // I2: per-node timestamp monotonicity across every transition.
    std::vector<Timestamp> after = SnapshotTimestamps();
    for (int i = 0; i < config_.num_nodes; ++i) {
      if (after[static_cast<std::size_t>(i)] < before[static_cast<std::size_t>(i)]) {
        failure_ = Format("I2 violation: node ", i, " timestamp regressed");
        return false;
      }
    }
    return CheckDataValueInvariant();
  }

  // I1: Valid (and Invalid) entries carry timestamps of known writes; Valid
  // entries hold exactly that write's value.
  bool CheckDataValueInvariant() {
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      auto it = value_of_ts_.find(entry->ts());
      if (it == value_of_ts_.end()) {
        failure_ = Format("I1 violation: node ", i, " holds unknown timestamp");
        return false;
      }
      if (entry->state() == CacheState::kValid && entry->value != it->second) {
        failure_ = Format("I1 violation: node ", i,
                          " Valid value does not match its timestamp's write");
        return false;
      }
    }
    return true;
  }

  // I5: terminal states must be fully converged.
  bool CheckTerminal() {
    if (!in_flight_.empty()) {
      failure_ = "I4 violation: messages in flight but no enabled action";
      return false;
    }
    if (completed_writes_ != total_started_) {
      failure_ = "I4 violation (deadlock): started writes never completed";
      return false;
    }
    Timestamp max_ts{0, 0};
    for (const auto& [ts, value] : value_of_ts_) {
      max_ts = std::max(max_ts, ts);
    }
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      if (entry->state() != CacheState::kValid) {
        failure_ = Format("I5 violation: node ", i, " not Valid at quiescence");
        return false;
      }
      if (entry->ts() != max_ts || entry->value != value_of_ts_[max_ts]) {
        failure_ = Format("I5 violation: node ", i, " did not converge to max write");
        return false;
      }
      if (!engines_[static_cast<std::size_t>(i)]->Quiescent()) {
        failure_ = Format("I5 violation: node ", i, " engine not quiescent");
        return false;
      }
    }
    return true;
  }

  // Canonical state encoding for the visited set.
  std::string Encode() const {
    std::ostringstream os;
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* e = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      os << 'N' << e->header.version << ',' << static_cast<int>(e->header.last_writer)
         << ',' << static_cast<int>(e->header.state) << ','
         << static_cast<int>(e->header.ack_count) << ',' << e->write_in_flight << ','
         << e->superseded << ',' << e->has_shadow << ',' << e->value << ','
         << e->pending_ts << ',' << e->pending_value << ',' << e->shadow_ts << ','
         << e->shadow_value << ';' << writes_issued_by_[static_cast<std::size_t>(i)]
         << ';';
    }
    os << 'B' << writes_remaining_ << ';' << max_completed_ << ';';
    std::vector<Msg> sorted = in_flight_;
    std::sort(sorted.begin(), sorted.end());
    for (const Msg& m : sorted) {
      os << 'M' << static_cast<int>(m.type) << ',' << static_cast<int>(m.from) << ','
         << static_cast<int>(m.to) << ',' << m.ts << ',' << m.value << ';';
    }
    return os.str();
  }

  const std::string& failure() const { return failure_; }
  std::size_t in_flight_count() const { return in_flight_.size(); }

 private:
  class Sink final : public MessageSink {
   public:
    Sink(World* world, NodeId self) : world_(world), self_(self) {}
    void BroadcastUpdate(const UpdateMsg& msg) override {
      for (int j = 0; j < world_->config_.num_nodes; ++j) {
        if (j != self_) {
          world_->in_flight_.push_back(Msg{Msg::Type::kUpd, self_,
                                           static_cast<NodeId>(j), msg.ts, msg.value});
        }
      }
    }
    void BroadcastInvalidate(const InvalidateMsg& msg) override {
      for (int j = 0; j < world_->config_.num_nodes; ++j) {
        if (j != self_) {
          world_->in_flight_.push_back(
              Msg{Msg::Type::kInv, self_, static_cast<NodeId>(j), msg.ts, {}});
        }
      }
    }
    void SendAck(NodeId to, const AckMsg& msg) override {
      world_->in_flight_.push_back(Msg{Msg::Type::kAck, self_, to, msg.ts, {}});
    }

   private:
    World* world_;
    NodeId self_;
  };

  template <typename... Args>
  static std::string Format(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }

  std::vector<Timestamp> SnapshotTimestamps() const {
    std::vector<Timestamp> ts;
    for (int i = 0; i < config_.num_nodes; ++i) {
      ts.push_back(caches_[static_cast<std::size_t>(i)]->Find(kKey)->ts());
    }
    return ts;
  }

  bool StartWrite(NodeId node) {
    CCKVS_CHECK_GT(writes_remaining_, 0);
    --writes_remaining_;
    ++total_started_;
    const int idx = writes_issued_by_[node]++;
    const std::string value =
        Format("w", static_cast<int>(node), ":", idx);
    CacheEntry* entry = caches_[node]->Find(kKey);
    engines_[node]->Write(kKey, value, [this, node]() {
      // I3 bookkeeping: pending_ts still holds the completed write's timestamp
      // when the done callback runs (see LinEngine::CompleteWrite).
      const Timestamp ts = caches_[node]->Find(kKey)->pending_ts;
      max_completed_ = std::max(max_completed_, ts);
      ++completed_writes_;
    });
    const Timestamp assigned = entry->pending_ts;
    // I3: real-time ordering — a write issued now must be timestamped above
    // every already-completed write.
    if (!(assigned > max_completed_)) {
      failure_ = Format("I3 violation: node ", static_cast<int>(node),
                        " issued ts not above a completed write's ts");
      return false;
    }
    if (assigned.clock > static_cast<std::uint32_t>(config_.max_clock)) {
      failure_ = "timestamp bound exceeded";
      return false;
    }
    CCKVS_CHECK(value_of_ts_.emplace(assigned, value).second);
    return true;
  }

  void Deliver(const Msg& msg) {
    CoherenceEngine& engine = *engines_[msg.to];
    switch (msg.type) {
      case Msg::Type::kInv:
        engine.OnInvalidate(msg.from, InvalidateMsg{kKey, msg.ts});
        break;
      case Msg::Type::kAck:
        engine.OnAck(msg.from, AckMsg{kKey, msg.ts});
        break;
      case Msg::Type::kUpd:
        engine.OnUpdate(msg.from, UpdateMsg{kKey, msg.value, msg.ts});
        break;
    }
  }

  struct TimestampHash {
    std::size_t operator()(const Timestamp& t) const {
      return (static_cast<std::size_t>(t.clock) << 8) | t.writer;
    }
  };

  ModelCheckerConfig config_;
  std::vector<std::unique_ptr<SymmetricCache>> caches_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<LinEngine>> engines_;
  std::vector<Msg> in_flight_;
  std::vector<int> writes_issued_by_;
  int writes_remaining_ = 0;
  int total_started_ = 0;
  int completed_writes_ = 0;
  Timestamp max_completed_{0, 0};
  std::unordered_map<Timestamp, std::string, TimestampHash> value_of_ts_;
  std::string failure_;
};

// ===========================================================================
// Epoch-transition scope (§4 machinery under the §5.2 method)
// ===========================================================================

// Two keys: kKeyOut is hot in epoch 0 and evicted by the scope's announce;
// kKeyIn is admitted.  home_of(key) = key % num_nodes, so kKeyOut homes at
// node 0 and kKeyIn at node 1.
constexpr Key kKeyOut = 0;
constexpr Key kKeyIn = 1;
const char kTransitionInit[] = "init";

// One message on a per-(src,dst) FIFO lane.  Both production transports are
// FIFO per peer pair across every class (the live channel by construction,
// the simulated fabric because all classes share the same four stations), and
// the install barrier depends on exactly that; lanes interleave freely.
struct TMsg {
  enum class Type : std::uint8_t { kInv = 0, kAck, kUpd, kFill, kInstalled };
  Type type;
  Key key = 0;
  Timestamp ts{};
  std::string value;        // updates and fills
  std::uint64_t epoch = 0;  // fills and install confirmations
};

struct TAction {
  enum class Kind : std::uint8_t { kAnnounce, kDeliver, kStart, kRetry };
  Kind kind;
  int a = 0;  // node (kAnnounce), src (kDeliver), op index (kStart/kRetry)
  int b = 0;  // dst (kDeliver)
};

// N real engines + caches + shards + hot-set managers, the managers driven
// through the same HotSetHost hooks both production hosts implement.  Client
// ops route exactly as the hosts route them: own-cache hit through the
// engine, otherwise a direct access to the home shard through the residency
// gate, parking while the gate is up.
class TransitionWorld {
 public:
  using ActionType = TAction;

  explicit TransitionWorld(const TransitionScopeConfig& config)
      : config_(config),
        announce_{1, {kKeyIn}},
        lanes_(static_cast<std::size_t>(config.num_nodes) *
               static_cast<std::size_t>(config.num_nodes)) {
    CCKVS_CHECK_GE(config.num_nodes, 2);
    CCKVS_CHECK_LE(config.puts, 4);
    CCKVS_CHECK_LE(config.gets, 4);
    const int n = config.num_nodes;
    for (int i = 0; i < n; ++i) {
      PartitionConfig pc;
      pc.buckets = 16;
      pc.node_id = static_cast<NodeId>(i);
      pc.synthesize = [](Key) { return Value(kTransitionInit); };
      partitions_.push_back(std::make_unique<Partition>(pc));
      caches_.push_back(std::make_unique<SymmetricCache>(2));
      caches_.back()->InstallHotSet({kKeyOut});
      caches_.back()->Fill(kKeyOut, kTransitionInit, Timestamp{0, 0});
      hosts_.push_back(std::make_unique<NodeHost>(this, static_cast<NodeId>(i)));
      if (config.model == ConsistencyModel::kLin) {
        engines_.push_back(std::make_unique<LinEngine>(
            static_cast<NodeId>(i), n, caches_.back().get(), hosts_.back().get()));
      } else {
        CCKVS_CHECK(config.model == ConsistencyModel::kSc);
        engines_.push_back(std::make_unique<ScEngine>(
            static_cast<NodeId>(i), n, caches_.back().get(), hosts_.back().get()));
      }
    }
    for (int i = 0; i < n; ++i) {
      HotSetManagerConfig hc;
      hc.self = static_cast<NodeId>(i);
      hc.num_nodes = n;
      hc.coordinator = false;  // the scope injects the announce itself
      hc.home_of = [n](Key key) {
        return static_cast<NodeId>(key % static_cast<std::uint64_t>(n));
      };
      managers_.push_back(std::make_unique<HotSetManager>(
          hc, caches_[static_cast<std::size_t>(i)].get(),
          engines_[static_cast<std::size_t>(i)].get(),
          hosts_[static_cast<std::size_t>(i)].get()));
    }
    // Epoch-0 steady state: the hot key's shard gate is up at its home,
    // exactly as both hosts bracket a prefilled hot set.
    partitions_[HomeOf(kKeyOut)]->MarkCacheResident(kKeyOut);
    announce_pending_.assign(static_cast<std::size_t>(n), true);
    value_of_[{kKeyOut, Timestamp{0, 0}}] = kTransitionInit;
    value_of_[{kKeyIn, Timestamp{0, 0}}] = kTransitionInit;

    // Client op templates, spread across nodes and both keys.  Which path an
    // op takes (cache, shard, or parked-on-the-gate) depends on when the
    // exploration starts it relative to the transition — that is the point.
    for (int t = 0; t < config.puts; ++t) {
      OpRec op;
      op.is_put = true;
      op.key = t % 2 == 0 ? kKeyOut : kKeyIn;
      op.node = static_cast<NodeId>((n - 1 + t) % n);
      op.value = Format("p", t, "@n", static_cast<int>(op.node));
      ops_.push_back(std::move(op));
    }
    for (int t = 0; t < config.gets; ++t) {
      OpRec op;
      op.is_put = false;
      op.key = t % 2 == 0 ? kKeyOut : kKeyIn;
      op.node = static_cast<NodeId>((n - 1 + t) % n);
      ops_.push_back(std::move(op));
    }
  }

  std::vector<TAction> EnabledActions() const {
    std::vector<TAction> actions;
    for (int i = 0; i < config_.num_nodes; ++i) {
      if (announce_pending_[static_cast<std::size_t>(i)]) {
        actions.push_back(TAction{TAction::Kind::kAnnounce, i, 0});
      }
    }
    for (int src = 0; src < config_.num_nodes; ++src) {
      for (int dst = 0; dst < config_.num_nodes; ++dst) {
        if (src != dst && !Lane(src, dst).empty()) {
          actions.push_back(TAction{TAction::Kind::kDeliver, src, dst});
        }
      }
    }
    for (int idx = 0; idx < static_cast<int>(ops_.size()); ++idx) {
      const OpRec& op = ops_[static_cast<std::size_t>(idx)];
      if (op.st == OpRec::St::kReady) {
        actions.push_back(TAction{TAction::Kind::kStart, idx, 0});
      } else if (op.st == OpRec::St::kParked && RetryEnabled(op)) {
        actions.push_back(TAction{TAction::Kind::kRetry, idx, 0});
      }
    }
    return actions;
  }

  bool Apply(const TAction& action) {
    const std::vector<Timestamp> before = SnapshotCacheTimestamps();
    switch (action.kind) {
      case TAction::Kind::kAnnounce:
        announce_pending_[static_cast<std::size_t>(action.a)] = false;
        managers_[static_cast<std::size_t>(action.a)]->DriveAnnounce(announce_);
        break;
      case TAction::Kind::kDeliver: {
        auto& lane = Lane(action.a, action.b);
        CCKVS_CHECK(!lane.empty());
        const TMsg msg = lane.front();
        lane.pop_front();
        Deliver(static_cast<NodeId>(action.a), static_cast<NodeId>(action.b), msg);
        break;
      }
      case TAction::Kind::kStart:
      case TAction::Kind::kRetry:
        RouteOp(action.a);
        break;
    }
    if (!failure_.empty()) {
      return false;
    }
    return CheckInvariants(before);
  }

  bool CheckTerminal() {
    for (const auto& lane : lanes_) {
      if (!lane.empty()) {
        failure_ = "deadlock: messages in flight but no enabled action";
        return false;
      }
    }
    for (std::size_t idx = 0; idx < ops_.size(); ++idx) {
      if (ops_[idx].st != OpRec::St::kDone) {
        failure_ = Format("deadlock: op ", idx, " never completed (",
                          ops_[idx].st == OpRec::St::kParked
                              ? "parked on a gate that never lifted"
                              : "blocked in the protocol",
                          ")");
        return false;
      }
    }
    const Timestamp want_in = MaxWriteTs(kKeyIn);
    for (int i = 0; i < config_.num_nodes; ++i) {
      const auto n = static_cast<std::size_t>(i);
      if (!engines_[n]->Quiescent()) {
        failure_ = Format("node ", i, " engine not quiescent at termination");
        return false;
      }
      if (managers_[n]->HasDeferred()) {
        failure_ = Format("node ", i, " still holds deferred evictions");
        return false;
      }
      if (managers_[n]->installed_epoch() != announce_.epoch) {
        failure_ = Format("node ", i, " never installed the epoch");
        return false;
      }
      if (managers_[n]->ShardGated(kKeyOut) || managers_[n]->ShardGated(kKeyIn)) {
        failure_ = Format("node ", i, " barrier never settled (gate still pending)");
        return false;
      }
      if (caches_[n]->Find(kKeyOut) != nullptr) {
        failure_ = Format("node ", i, " still caches the evicted key");
        return false;
      }
      const CacheEntry* e = caches_[n]->Find(kKeyIn);
      if (e == nullptr || e->state() != CacheState::kValid) {
        failure_ = Format("node ", i, " admitted key not Valid at quiescence");
        return false;
      }
      if (e->ts() != want_in || e->value != value_of_[{kKeyIn, want_in}]) {
        failure_ = Format("node ", i, " did not converge to the admitted key's ",
                          "maximal write");
        return false;
      }
    }
    // The evicted key's shard is authoritative again: gate down, value = the
    // maximal write any era produced.
    {
      Value v;
      Timestamp ts;
      bool resident = false;
      CCKVS_CHECK(partitions_[HomeOf(kKeyOut)]->Get(kKeyOut, &v, &ts, &resident));
      if (resident) {
        failure_ = "evicted key's residency gate still up at quiescence";
        return false;
      }
      const Timestamp want_out = MaxWriteTs(kKeyOut);
      if (ts != want_out || v != value_of_[{kKeyOut, want_out}]) {
        failure_ = "evicted key's shard did not converge to its maximal write";
        return false;
      }
    }
    // The admitted key's cached era is active: its shard gate must be up.
    {
      Value v;
      Timestamp ts;
      bool resident = false;
      CCKVS_CHECK(partitions_[HomeOf(kKeyIn)]->Get(kKeyIn, &v, &ts, &resident));
      if (!resident) {
        failure_ = "admitted key's residency gate not raised at quiescence";
        return false;
      }
    }
    return true;
  }

  std::string Encode() const {
    std::ostringstream os;
    for (int i = 0; i < config_.num_nodes; ++i) {
      const auto n = static_cast<std::size_t>(i);
      os << 'N' << i << ':';
      for (const Key key : {kKeyOut, kKeyIn}) {
        const CacheEntry* e = caches_[n]->Find(key);
        if (e == nullptr) {
          os << "-;";
          continue;
        }
        os << e->header.version << ',' << static_cast<int>(e->header.last_writer)
           << ',' << static_cast<int>(e->header.state) << ','
           << static_cast<int>(e->header.ack_count) << ',' << e->write_in_flight
           << ',' << e->superseded << ',' << e->has_shadow << ',' << e->value << ','
           << e->value_ts << ',' << e->pending_ts << ',' << e->pending_value << ','
           << e->shadow_ts << ',' << e->shadow_value << ';';
      }
      os << 'M' << managers_[n]->target_epoch() << ','
         << managers_[n]->deferred_evictions() << ','
         << managers_[n]->ShardGated(kKeyOut) << ','
         << managers_[n]->ShardGated(kKeyIn) << ',';
      for (int j = 0; j < config_.num_nodes; ++j) {
        os << managers_[n]->peer_installed_epoch(static_cast<NodeId>(j)) << '/';
      }
      for (const FillMsg& f : managers_[n]->StashedFills()) {
        os << 'S' << f.key << ',' << f.ts << ',' << f.value << ',' << f.epoch << ';';
      }
      for (const HotSetManager::AheadTraffic& a : managers_[n]->SeenAheadTraffic()) {
        os << 'T' << a.key << ',' << a.inv_ts << ',' << a.upd_ts << ','
           << a.upd_value << ';';
      }
      os << 'A' << announce_pending_[n] << ';';
    }
    for (const Key key : {kKeyOut, kKeyIn}) {
      Value v;
      Timestamp ts;
      bool resident = false;
      const Partition& home = *partitions_[HomeOf(key)];
      CCKVS_CHECK(home.Get(key, &v, &ts, &resident));
      os << 'P' << key << ':' << home.Contains(key) << ',' << v << ',' << ts << ','
         << resident << ';';
    }
    for (int src = 0; src < config_.num_nodes; ++src) {
      for (int dst = 0; dst < config_.num_nodes; ++dst) {
        if (src == dst) {
          continue;
        }
        os << 'L' << src << '>' << dst << ':';
        for (const TMsg& m : Lane(src, dst)) {
          os << static_cast<int>(m.type) << ',' << m.key << ',' << m.ts << ','
             << m.value << ',' << m.epoch << '|';
        }
        os << ';';
      }
    }
    for (const OpRec& op : ops_) {
      os << 'O' << static_cast<int>(op.st) << ',' << op.invoked << ','
         << op.ts_known << ',' << op.ts << ',' << op.watermark << ';';
    }
    return os.str();
  }

  const std::string& failure() const { return failure_; }

 private:
  struct OpRec {
    NodeId node = 0;
    Key key = 0;
    bool is_put = false;
    enum class St : std::uint8_t { kReady, kParked, kInFlight, kDone };
    St st = St::kReady;
    std::string value;      // puts: the unique value written
    Timestamp ts{};         // assigned (put) / observed (get)
    bool ts_known = false;
    bool invoked = false;
    Timestamp watermark{};  // per-key completed-op watermark at invocation
  };

  // Lanes + HotSetHost + MessageSink of one node.
  class NodeHost final : public MessageSink, public HotSetHost {
   public:
    NodeHost(TransitionWorld* world, NodeId self) : world_(world), self_(self) {}

    void BroadcastUpdate(const UpdateMsg& msg) override {
      world_->PushToPeers(self_,
                          TMsg{TMsg::Type::kUpd, msg.key, msg.ts, msg.value, 0});
    }
    void BroadcastInvalidate(const InvalidateMsg& msg) override {
      world_->PushToPeers(self_, TMsg{TMsg::Type::kInv, msg.key, msg.ts, {}, 0});
    }
    void SendAck(NodeId to, const AckMsg& msg) override {
      world_->Push(self_, to, TMsg{TMsg::Type::kAck, msg.key, msg.ts, {}, 0});
    }

    void ApplyWriteback(const SymmetricCache::Eviction& ev) override {
      world_->partitions_[self_]->Apply(ev.key, ev.value, ev.ts);
    }
    FillSnapshot GateAndSnapshot(Key key) override {
      const Partition::ResidentSnapshot snap =
          world_->partitions_[self_]->MarkCacheResident(key);
      return FillSnapshot{snap.value, snap.ts};
    }
    void PublishFills(const std::vector<FillMsg>& fills) override {
      for (const FillMsg& f : fills) {
        world_->PushToPeers(self_,
                            TMsg{TMsg::Type::kFill, f.key, f.ts, f.value, f.epoch});
      }
    }
    void PublishInstalled(const EpochInstalledMsg& msg) override {
      world_->PushToPeers(self_,
                          TMsg{TMsg::Type::kInstalled, 0, Timestamp{}, {}, msg.epoch});
    }
    void LiftGate(Key key) override {
      world_->partitions_[self_]->ClearCacheResident(key);
    }

   private:
    TransitionWorld* world_;
    NodeId self_;
  };
  friend class NodeHost;

  template <typename... Args>
  static std::string Format(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }

  NodeId HomeOf(Key key) const {
    return static_cast<NodeId>(key %
                               static_cast<std::uint64_t>(config_.num_nodes));
  }

  std::deque<TMsg>& Lane(int src, int dst) {
    return lanes_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(config_.num_nodes) +
                  static_cast<std::size_t>(dst)];
  }
  const std::deque<TMsg>& Lane(int src, int dst) const {
    return lanes_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(config_.num_nodes) +
                  static_cast<std::size_t>(dst)];
  }

  void Push(NodeId src, NodeId dst, TMsg msg) {
    Lane(src, dst).push_back(std::move(msg));
  }
  void PushToPeers(NodeId src, const TMsg& msg) {
    for (int j = 0; j < config_.num_nodes; ++j) {
      if (j != src) {
        Push(src, static_cast<NodeId>(j), msg);
      }
    }
  }

  void Deliver(NodeId src, NodeId dst, const TMsg& msg) {
    const auto d = static_cast<std::size_t>(dst);
    switch (msg.type) {
      case TMsg::Type::kInv:
        if (caches_[d]->Find(msg.key) == nullptr) {
          managers_[d]->NoteUncachedInvalidate(msg.key, msg.ts);
        }
        engines_[d]->OnInvalidate(src, InvalidateMsg{msg.key, msg.ts});
        break;
      case TMsg::Type::kAck:
        engines_[d]->OnAck(src, AckMsg{msg.key, msg.ts});
        break;
      case TMsg::Type::kUpd:
        // As both hosts route updates: through the engine while the key is
        // cached, into the home shard when homed here (a late write-back),
        // else into the manager's pre-admission record.
        if (caches_[d]->Find(msg.key) != nullptr) {
          engines_[d]->OnUpdate(src, UpdateMsg{msg.key, msg.value, msg.ts});
        } else if (HomeOf(msg.key) == dst) {
          partitions_[d]->Apply(msg.key, msg.value, msg.ts);
        } else {
          managers_[d]->NoteUncachedUpdate(msg.key, msg.value, msg.ts);
        }
        break;
      case TMsg::Type::kFill:
        managers_[d]->ApplyFill(FillMsg{msg.key, msg.value, msg.ts, msg.epoch});
        break;
      case TMsg::Type::kInstalled:
        managers_[d]->DrivePeerInstalled(src, msg.epoch);
        break;
    }
    // Hosts retry deferred evictions on every pump after protocol progress.
    managers_[d]->DriveDeferred();
  }

  // True when re-routing a parked shard op can make progress: the key entered
  // this node's cache, or the home shard's gate is down.  (The live run loop
  // retries unconditionally and re-parks; enabling only productive retries
  // keeps the state space free of self-loops without losing interleavings.)
  bool RetryEnabled(const OpRec& op) const {
    if (caches_[op.node]->Find(op.key) != nullptr) {
      return true;
    }
    Value v;
    Timestamp ts;
    bool resident = false;
    CCKVS_CHECK(partitions_[HomeOf(op.key)]->Get(op.key, &v, &ts, &resident));
    return !resident;
  }

  void RouteOp(int idx) {
    OpRec& op = ops_[static_cast<std::size_t>(idx)];
    if (!op.invoked) {
      op.invoked = true;
      op.watermark = MaxCompletedTs(op.key);
    }
    op.st = OpRec::St::kInFlight;
    const auto n = static_cast<std::size_t>(op.node);
    if (caches_[n]->Find(op.key) != nullptr) {
      if (op.is_put) {
        engines_[n]->Write(op.key, op.value, [this, idx] { CompletePut(idx); });
        SweepStartedPuts();  // capture the started write's timestamp
      } else {
        Value v;
        Timestamp ts;
        const auto result = engines_[n]->Read(
            op.key, &v, &ts, [this, idx](const Value& rv, Timestamp rt) {
              CompleteRead(idx, rv, rt);
            });
        if (result == CoherenceEngine::ReadResult::kHit) {
          CompleteRead(idx, v, ts);
        }
      }
      return;
    }
    // Direct shard access through the residency gate, as the hosts' miss
    // paths do.
    Partition& home = *partitions_[HomeOf(op.key)];
    if (op.is_put) {
      Timestamp ts;
      if (!home.TryPut(op.key, op.value, &ts)) {
        op.st = OpRec::St::kParked;
        return;
      }
      AssignPutTs(idx, ts);
      if (failure_.empty()) {
        CompletePut(idx);
      }
    } else {
      Value v;
      Timestamp ts;
      bool resident = false;
      CCKVS_CHECK(home.Get(op.key, &v, &ts, &resident));
      if (resident) {
        op.st = OpRec::St::kParked;
        return;
      }
      CompleteRead(idx, v, ts);
    }
  }

  void AssignPutTs(int idx, Timestamp ts) {
    OpRec& op = ops_[static_cast<std::size_t>(idx)];
    op.ts = ts;
    op.ts_known = true;
    if (ts.clock > static_cast<std::uint32_t>(config_.max_clock)) {
      failure_ = "timestamp bound exceeded";
      return;
    }
    if (!value_of_.emplace(std::make_pair(op.key, ts), op.value).second) {
      failure_ = Format("duplicate timestamp assigned to key ", op.key,
                        " (two writes share a Lamport timestamp)");
    }
  }

  void CompletePut(int idx) {
    OpRec& op = ops_[static_cast<std::size_t>(idx)];
    if (!op.ts_known) {
      const CacheEntry* e = caches_[static_cast<std::size_t>(op.node)]->Find(op.key);
      if (e == nullptr) {
        failure_ = Format("op ", idx, " completed without a cache entry");
        return;
      }
      // SC completes synchronously with the apply (value_ts is the write's);
      // Lin leaves pending_ts set through the done callback.
      AssignPutTs(idx, config_.model == ConsistencyModel::kLin ? e->pending_ts
                                                               : e->value_ts);
      if (!failure_.empty()) {
        return;
      }
    }
    op.st = OpRec::St::kDone;
    if (config_.model == ConsistencyModel::kLin && !(op.ts > op.watermark)) {
      failure_ = Format("linearizability violation: put ", idx,
                        " serialized at/below the key's completed watermark");
      return;
    }
    NoteCompleted(op.key, op.ts);
  }

  void CompleteRead(int idx, const Value& v, Timestamp ts) {
    OpRec& op = ops_[static_cast<std::size_t>(idx)];
    op.st = OpRec::St::kDone;
    op.ts = ts;
    op.ts_known = true;
    const auto it = value_of_.find({op.key, ts});
    if (it == value_of_.end()) {
      failure_ = Format("read ", idx, " observed an unknown write");
      return;
    }
    if (it->second != v) {
      failure_ = Format("write atomicity violation: read ", idx,
                        " returned a value not matching its timestamp's write");
      return;
    }
    if (config_.model == ConsistencyModel::kLin && ts < op.watermark) {
      failure_ = Format("linearizability violation: read ", idx,
                        " observed below the key's completed watermark");
      return;
    }
    NoteCompleted(op.key, ts);
  }

  Timestamp MaxCompletedTs(Key key) const {
    auto it = max_completed_.find(key);
    return it == max_completed_.end() ? Timestamp{0, 0} : it->second;
  }
  void NoteCompleted(Key key, Timestamp ts) {
    Timestamp& cur = max_completed_[key];
    cur = std::max(cur, ts);
  }
  Timestamp MaxWriteTs(Key key) const {
    Timestamp best{0, 0};
    for (const auto& [key_ts, value] : value_of_) {
      if (key_ts.first == key) {
        best = std::max(best, key_ts.second);
      }
    }
    return best;
  }

  // Lin started writes pick up their timestamp when the engine actually
  // starts them (a queued write starts inside a fill/update/ack delivery).
  void SweepStartedPuts() {
    for (int idx = 0; idx < static_cast<int>(ops_.size()); ++idx) {
      OpRec& op = ops_[static_cast<std::size_t>(idx)];
      if (op.st != OpRec::St::kInFlight || !op.is_put || op.ts_known) {
        continue;
      }
      const CacheEntry* e = caches_[static_cast<std::size_t>(op.node)]->Find(op.key);
      if (e != nullptr && e->write_in_flight && e->pending_value == op.value) {
        AssignPutTs(idx, e->pending_ts);
        if (!failure_.empty()) {
          return;
        }
      }
    }
  }

  std::vector<Timestamp> SnapshotCacheTimestamps() const {
    std::vector<Timestamp> ts;
    for (int i = 0; i < config_.num_nodes; ++i) {
      for (const Key key : {kKeyOut, kKeyIn}) {
        const CacheEntry* e = caches_[static_cast<std::size_t>(i)]->Find(key);
        // Absent and kFilling entries are exempt (a re-admission restarts the
        // visible clock at the fill); sentinel max() marks them.
        ts.push_back(e == nullptr || e->state() == CacheState::kFilling
                         ? Timestamp{0xffffffffu, 0xff}
                         : e->ts());
      }
    }
    return ts;
  }

  bool CheckInvariants(const std::vector<Timestamp>& before) {
    SweepStartedPuts();
    if (!failure_.empty()) {
      return false;
    }
    const std::vector<Timestamp> after = SnapshotCacheTimestamps();
    const Timestamp sentinel{0xffffffffu, 0xff};
    for (std::size_t i = 0; i < after.size(); ++i) {
      if (before[i] != sentinel && after[i] != sentinel && after[i] < before[i]) {
        failure_ = "cache timestamp regressed across a transition";
        return false;
      }
    }
    for (int i = 0; i < config_.num_nodes; ++i) {
      for (const Key key : {kKeyOut, kKeyIn}) {
        const CacheEntry* e = caches_[static_cast<std::size_t>(i)]->Find(key);
        if (e == nullptr || e->state() == CacheState::kFilling) {
          continue;
        }
        if (value_of_.find({key, e->ts()}) == value_of_.end()) {
          failure_ = Format("node ", i, " cache holds an unknown timestamp");
          return false;
        }
        if (e->state() == CacheState::kValid &&
            e->value != value_of_[{key, e->value_ts}]) {
          failure_ = Format("data-value violation: node ", i,
                            " Valid value does not match its timestamp's write");
          return false;
        }
      }
    }
    for (const Key key : {kKeyOut, kKeyIn}) {
      Value v;
      Timestamp ts;
      CCKVS_CHECK(partitions_[HomeOf(key)]->Get(key, &v, &ts));
      const auto it = value_of_.find({key, ts});
      if (it == value_of_.end()) {
        failure_ = Format("shard of key ", key, " holds an unknown timestamp");
        return false;
      }
      if (v != it->second) {
        failure_ = Format("data-value violation: shard of key ", key,
                          " does not match its timestamp's write");
        return false;
      }
    }
    return true;
  }

  TransitionScopeConfig config_;
  HotSetAnnounceMsg announce_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::unique_ptr<SymmetricCache>> caches_;
  std::vector<std::unique_ptr<NodeHost>> hosts_;
  std::vector<std::unique_ptr<CoherenceEngine>> engines_;
  std::vector<std::unique_ptr<HotSetManager>> managers_;
  std::vector<std::deque<TMsg>> lanes_;  // (src * n + dst) FIFO channels
  std::vector<bool> announce_pending_;
  std::vector<OpRec> ops_;
  std::map<std::pair<Key, Timestamp>, std::string> value_of_;
  std::map<Key, Timestamp> max_completed_;
  std::string failure_;
};

// BFS over canonical states; paths are replayed, so the production engines
// never need to be copyable.  Shared by both scopes: a world provides
// ActionType, EnabledActions, Apply, CheckTerminal, Encode and failure().
template <typename WorldT>
ModelCheckerResult ExhaustiveExplore(
    const std::function<std::unique_ptr<WorldT>()>& make_world) {
  using ActionT = typename WorldT::ActionType;
  ModelCheckerResult result;

  std::unordered_set<std::string> visited;
  std::deque<std::vector<ActionT>> frontier;

  {
    auto root = make_world();
    visited.insert(root->Encode());
    frontier.push_back({});
    result.states_explored = 1;
  }

  while (!frontier.empty()) {
    const std::vector<ActionT> path = std::move(frontier.front());
    frontier.pop_front();
    result.max_depth = std::max(result.max_depth,
                                static_cast<std::uint64_t>(path.size()));

    // Rebuild the state at `path` once to enumerate its actions.
    auto base = make_world();
    for (const ActionT& a : path) {
      if (!base->Apply(a)) {
        result.failure = base->failure();
        return result;
      }
    }
    const std::vector<ActionT> actions = base->EnabledActions();
    if (actions.empty()) {
      ++result.terminal_states;
      if (!base->CheckTerminal()) {
        result.failure = base->failure();
        return result;
      }
      continue;
    }

    for (const ActionT& action : actions) {
      ++result.transitions;
      auto world = make_world();
      bool ok = true;
      for (const ActionT& a : path) {
        if (!world->Apply(a)) {
          ok = false;
          break;
        }
      }
      if (ok && !world->Apply(action)) {
        ok = false;
      }
      if (!ok) {
        result.failure = world->failure();
        return result;
      }
      std::string encoded = world->Encode();
      if (visited.insert(std::move(encoded)).second) {
        ++result.states_explored;
        std::vector<ActionT> next = path;
        next.push_back(action);
        frontier.push_back(std::move(next));
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace

ModelCheckerResult CheckLinProtocol(const ModelCheckerConfig& config) {
  return ExhaustiveExplore<World>(
      [&config]() { return std::make_unique<World>(config); });
}

ModelCheckerResult CheckEpochTransition(const TransitionScopeConfig& config) {
  return ExhaustiveExplore<TransitionWorld>(
      [&config]() { return std::make_unique<TransitionWorld>(config); });
}

}  // namespace cckvs
