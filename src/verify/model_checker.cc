#include "src/verify/model_checker.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/cache/symmetric_cache.h"
#include "src/common/check.h"
#include "src/protocol/engine.h"

namespace cckvs {
namespace {

constexpr Key kKey = 0xcafe;
const char kInitValue[] = "init";

// An in-flight protocol message.  The fabric is modelled as a multiset: UD
// provides no ordering, so any in-flight message may be delivered next.
struct Msg {
  enum class Type : std::uint8_t { kInv = 0, kAck = 1, kUpd = 2 };
  Type type;
  NodeId from;
  NodeId to;
  Timestamp ts;
  std::string value;  // updates only

  // Canonical order, so action enumeration is deterministic across replays.
  friend bool operator<(const Msg& a, const Msg& b) {
    return std::tie(a.type, a.from, a.to, a.ts, a.value) <
           std::tie(b.type, b.from, b.to, b.ts, b.value);
  }
  friend bool operator==(const Msg&, const Msg&) = default;
};

struct Action {
  enum class Kind : std::uint8_t { kStartWrite, kDeliver };
  Kind kind;
  int arg;  // node id for kStartWrite; in-flight index for kDeliver
};

// The complete protocol world: N real engines over N real caches, plus the
// in-flight message multiset and verification bookkeeping.
class World {
 public:
  explicit World(const ModelCheckerConfig& config)
      : config_(config), writes_remaining_(config.total_writes) {
    for (int i = 0; i < config.num_nodes; ++i) {
      caches_.push_back(std::make_unique<SymmetricCache>(1));
      caches_.back()->InstallHotSet({kKey});
      caches_.back()->Fill(kKey, kInitValue, Timestamp{0, 0});
      sinks_.push_back(std::make_unique<Sink>(this, static_cast<NodeId>(i)));
      engines_.push_back(std::make_unique<LinEngine>(
          static_cast<NodeId>(i), config.num_nodes, caches_.back().get(),
          sinks_.back().get()));
      writes_issued_by_.push_back(0);
    }
    value_of_ts_[Timestamp{0, 0}] = kInitValue;
  }

  // --- Action enumeration (deterministic) ---
  std::vector<Action> EnabledActions() const {
    std::vector<Action> actions;
    if (writes_remaining_ > 0) {
      for (int i = 0; i < config_.num_nodes; ++i) {
        const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
        if (!entry->write_in_flight) {
          actions.push_back(Action{Action::Kind::kStartWrite, i});
        }
      }
    }
    for (int m = 0; m < static_cast<int>(in_flight_.size()); ++m) {
      actions.push_back(Action{Action::Kind::kDeliver, m});
    }
    return actions;
  }

  // Applies one action; returns false (setting failure_) on invariant breach.
  bool Apply(const Action& action) {
    std::vector<Timestamp> before = SnapshotTimestamps();
    if (action.kind == Action::Kind::kStartWrite) {
      if (!StartWrite(static_cast<NodeId>(action.arg))) {
        return false;
      }
    } else {
      CCKVS_CHECK_LT(static_cast<std::size_t>(action.arg), in_flight_.size());
      const Msg msg = in_flight_[static_cast<std::size_t>(action.arg)];
      in_flight_.erase(in_flight_.begin() + action.arg);
      Deliver(msg);
    }
    // I2: per-node timestamp monotonicity across every transition.
    std::vector<Timestamp> after = SnapshotTimestamps();
    for (int i = 0; i < config_.num_nodes; ++i) {
      if (after[static_cast<std::size_t>(i)] < before[static_cast<std::size_t>(i)]) {
        failure_ = Format("I2 violation: node ", i, " timestamp regressed");
        return false;
      }
    }
    return CheckDataValueInvariant();
  }

  // I1: Valid (and Invalid) entries carry timestamps of known writes; Valid
  // entries hold exactly that write's value.
  bool CheckDataValueInvariant() {
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      auto it = value_of_ts_.find(entry->ts());
      if (it == value_of_ts_.end()) {
        failure_ = Format("I1 violation: node ", i, " holds unknown timestamp");
        return false;
      }
      if (entry->state() == CacheState::kValid && entry->value != it->second) {
        failure_ = Format("I1 violation: node ", i,
                          " Valid value does not match its timestamp's write");
        return false;
      }
    }
    return true;
  }

  // I5: terminal states must be fully converged.
  bool CheckTerminal() {
    if (!in_flight_.empty()) {
      failure_ = "I4 violation: messages in flight but no enabled action";
      return false;
    }
    if (completed_writes_ != total_started_) {
      failure_ = "I4 violation (deadlock): started writes never completed";
      return false;
    }
    Timestamp max_ts{0, 0};
    for (const auto& [ts, value] : value_of_ts_) {
      max_ts = std::max(max_ts, ts);
    }
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* entry = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      if (entry->state() != CacheState::kValid) {
        failure_ = Format("I5 violation: node ", i, " not Valid at quiescence");
        return false;
      }
      if (entry->ts() != max_ts || entry->value != value_of_ts_[max_ts]) {
        failure_ = Format("I5 violation: node ", i, " did not converge to max write");
        return false;
      }
      if (!engines_[static_cast<std::size_t>(i)]->Quiescent()) {
        failure_ = Format("I5 violation: node ", i, " engine not quiescent");
        return false;
      }
    }
    return true;
  }

  // Canonical state encoding for the visited set.
  std::string Encode() const {
    std::ostringstream os;
    for (int i = 0; i < config_.num_nodes; ++i) {
      const CacheEntry* e = caches_[static_cast<std::size_t>(i)]->Find(kKey);
      os << 'N' << e->header.version << ',' << static_cast<int>(e->header.last_writer)
         << ',' << static_cast<int>(e->header.state) << ','
         << static_cast<int>(e->header.ack_count) << ',' << e->write_in_flight << ','
         << e->superseded << ',' << e->has_shadow << ',' << e->value << ','
         << e->pending_ts << ',' << e->pending_value << ',' << e->shadow_ts << ','
         << e->shadow_value << ';' << writes_issued_by_[static_cast<std::size_t>(i)]
         << ';';
    }
    os << 'B' << writes_remaining_ << ';' << max_completed_ << ';';
    std::vector<Msg> sorted = in_flight_;
    std::sort(sorted.begin(), sorted.end());
    for (const Msg& m : sorted) {
      os << 'M' << static_cast<int>(m.type) << ',' << static_cast<int>(m.from) << ','
         << static_cast<int>(m.to) << ',' << m.ts << ',' << m.value << ';';
    }
    return os.str();
  }

  const std::string& failure() const { return failure_; }
  std::size_t in_flight_count() const { return in_flight_.size(); }

 private:
  class Sink final : public MessageSink {
   public:
    Sink(World* world, NodeId self) : world_(world), self_(self) {}
    void BroadcastUpdate(const UpdateMsg& msg) override {
      for (int j = 0; j < world_->config_.num_nodes; ++j) {
        if (j != self_) {
          world_->in_flight_.push_back(Msg{Msg::Type::kUpd, self_,
                                           static_cast<NodeId>(j), msg.ts, msg.value});
        }
      }
    }
    void BroadcastInvalidate(const InvalidateMsg& msg) override {
      for (int j = 0; j < world_->config_.num_nodes; ++j) {
        if (j != self_) {
          world_->in_flight_.push_back(
              Msg{Msg::Type::kInv, self_, static_cast<NodeId>(j), msg.ts, {}});
        }
      }
    }
    void SendAck(NodeId to, const AckMsg& msg) override {
      world_->in_flight_.push_back(Msg{Msg::Type::kAck, self_, to, msg.ts, {}});
    }

   private:
    World* world_;
    NodeId self_;
  };

  template <typename... Args>
  static std::string Format(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }

  std::vector<Timestamp> SnapshotTimestamps() const {
    std::vector<Timestamp> ts;
    for (int i = 0; i < config_.num_nodes; ++i) {
      ts.push_back(caches_[static_cast<std::size_t>(i)]->Find(kKey)->ts());
    }
    return ts;
  }

  bool StartWrite(NodeId node) {
    CCKVS_CHECK_GT(writes_remaining_, 0);
    --writes_remaining_;
    ++total_started_;
    const int idx = writes_issued_by_[node]++;
    const std::string value =
        Format("w", static_cast<int>(node), ":", idx);
    CacheEntry* entry = caches_[node]->Find(kKey);
    engines_[node]->Write(kKey, value, [this, node]() {
      // I3 bookkeeping: pending_ts still holds the completed write's timestamp
      // when the done callback runs (see LinEngine::CompleteWrite).
      const Timestamp ts = caches_[node]->Find(kKey)->pending_ts;
      max_completed_ = std::max(max_completed_, ts);
      ++completed_writes_;
    });
    const Timestamp assigned = entry->pending_ts;
    // I3: real-time ordering — a write issued now must be timestamped above
    // every already-completed write.
    if (!(assigned > max_completed_)) {
      failure_ = Format("I3 violation: node ", static_cast<int>(node),
                        " issued ts not above a completed write's ts");
      return false;
    }
    if (assigned.clock > static_cast<std::uint32_t>(config_.max_clock)) {
      failure_ = "timestamp bound exceeded";
      return false;
    }
    CCKVS_CHECK(value_of_ts_.emplace(assigned, value).second);
    return true;
  }

  void Deliver(const Msg& msg) {
    CoherenceEngine& engine = *engines_[msg.to];
    switch (msg.type) {
      case Msg::Type::kInv:
        engine.OnInvalidate(msg.from, InvalidateMsg{kKey, msg.ts});
        break;
      case Msg::Type::kAck:
        engine.OnAck(msg.from, AckMsg{kKey, msg.ts});
        break;
      case Msg::Type::kUpd:
        engine.OnUpdate(msg.from, UpdateMsg{kKey, msg.value, msg.ts});
        break;
    }
  }

  struct TimestampHash {
    std::size_t operator()(const Timestamp& t) const {
      return (static_cast<std::size_t>(t.clock) << 8) | t.writer;
    }
  };

  ModelCheckerConfig config_;
  std::vector<std::unique_ptr<SymmetricCache>> caches_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<LinEngine>> engines_;
  std::vector<Msg> in_flight_;
  std::vector<int> writes_issued_by_;
  int writes_remaining_ = 0;
  int total_started_ = 0;
  int completed_writes_ = 0;
  Timestamp max_completed_{0, 0};
  std::unordered_map<Timestamp, std::string, TimestampHash> value_of_ts_;
  std::string failure_;
};

}  // namespace

ModelCheckerResult CheckLinProtocol(const ModelCheckerConfig& config) {
  ModelCheckerResult result;

  // BFS over canonical states; paths are replayed, so the production engines
  // never need to be copyable.
  std::unordered_set<std::string> visited;
  std::deque<std::vector<Action>> frontier;

  auto make_world = [&config]() { return std::make_unique<World>(config); };

  {
    auto root = make_world();
    visited.insert(root->Encode());
    frontier.push_back({});
    result.states_explored = 1;
  }

  while (!frontier.empty()) {
    const std::vector<Action> path = std::move(frontier.front());
    frontier.pop_front();
    result.max_depth = std::max(result.max_depth,
                                static_cast<std::uint64_t>(path.size()));

    // Rebuild the state at `path` once to enumerate its actions.
    auto base = make_world();
    for (const Action& a : path) {
      if (!base->Apply(a)) {
        result.failure = base->failure();
        return result;
      }
    }
    const std::vector<Action> actions = base->EnabledActions();
    if (actions.empty()) {
      ++result.terminal_states;
      if (!base->CheckTerminal()) {
        result.failure = base->failure();
        return result;
      }
      continue;
    }

    for (const Action& action : actions) {
      ++result.transitions;
      auto world = make_world();
      bool ok = true;
      for (const Action& a : path) {
        if (!world->Apply(a)) {
          ok = false;
          break;
        }
      }
      if (ok && !world->Apply(action)) {
        ok = false;
      }
      if (!ok) {
        result.failure = world->failure();
        return result;
      }
      std::string encoded = world->Encode();
      if (visited.insert(std::move(encoded)).second) {
        ++result.states_explored;
        std::vector<Action> next = path;
        next.push_back(action);
        frontier.push_back(std::move(next));
      }
    }
  }

  result.ok = true;
  return result;
}

}  // namespace cckvs
