// Consistency checking of execution histories (S14, §5.1).
//
// Integration tests record complete histories of client operations — invocation
// and completion times, and the (value, timestamp) each operation wrote or
// observed — and certify them against the formal models of §5.1:
//
//  * Per-key linearizability.  The protocol tags every write with a unique
//    Lamport timestamp, so the history carries its own witness serialization
//    (the timestamp order).  Certifying against a witness is sound and complete:
//    the history is linearizable w.r.t. that order iff
//      (a) writes are timestamp-unique,
//      (b) every read observes an existing write (or the initial value),
//      (c) an operation invoked after some operation completed never observes
//          a smaller timestamp — strictly larger for writes.
//    Condition (c) is exactly "each call appears to take effect between its
//    invocation and completion" projected onto the witness order.
//
//  * Per-key sequential consistency.  Drops the real-time condition (c) and
//    instead requires per-session monotonicity: the timestamps a session
//    observes/writes for a key never decrease in session order (this encodes
//    both "all sessions agree on the write order" — the witness order — and
//    session-order/read-your-writes).  The Figure 5 behaviour (another session
//    reading the old value after a write completed) passes SC and fails Lin;
//    the Figure 6 behaviour (two sessions disagreeing on write order) fails
//    both.

#ifndef CCKVS_VERIFY_HISTORY_H_
#define CCKVS_VERIFY_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cckvs {

struct HistoryOp {
  SessionId session = 0;
  OpType type = OpType::kGet;
  Key key = 0;
  // For PUT: the written value.  For GET: the value returned.
  Value value;
  // The Lamport timestamp the operation wrote (PUT) or observed (GET).
  Timestamp ts{};
  SimTime invoke = 0;
  SimTime complete = 0;
};

class History {
 public:
  void Record(HistoryOp op) { ops_.push_back(std::move(op)); }
  void Clear() { ops_.clear(); }
  std::size_t size() const { return ops_.size(); }
  const std::vector<HistoryOp>& ops() const { return ops_; }

  // Empty string = history satisfies the model; otherwise a description of the
  // first violation found.
  std::string CheckPerKeyLinearizability() const;
  std::string CheckPerKeySequentialConsistency() const;

  // Write atomicity (§5.1: "a get must return a value written in its entirety
  // by exactly one put — it cannot return a mishmash"): every GET returns
  // either the key's synthesized initial value or the exact value of some PUT
  // to the same key.  Holds even across epoch transitions, where the strict
  // real-time conditions are relaxed (paper §9 leaves migration-time guarantees
  // to future work).
  std::string CheckWriteAtomicity() const;

 private:
  std::vector<HistoryOp> ops_;
};

}  // namespace cckvs

#endif  // CCKVS_VERIFY_HISTORY_H_
