#include "src/topk/hot_set_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace cckvs {

HotSetManager::HotSetManager(const HotSetManagerConfig& config,
                             SymmetricCache* cache, CoherenceEngine* engine,
                             HotSetHost* host)
    : config_(config),
      cache_(cache),
      engine_(engine),
      host_(host),
      installed_(static_cast<std::size_t>(config.num_nodes), 0) {
  CCKVS_CHECK_GE(config_.num_nodes, 1);
  CCKVS_CHECK_LT(config_.self, config_.num_nodes);
  CCKVS_CHECK(config_.home_of != nullptr);
  CCKVS_CHECK(cache_ != nullptr);
  CCKVS_CHECK(engine_ != nullptr);
  if (config_.coordinator) {
    coordinator_ = std::make_unique<EpochCoordinator>(config_.epoch);
  }
}

// ---------------------------------------------------------------------------
// Coordinator role
// ---------------------------------------------------------------------------

std::uint64_t HotSetManager::epochs_closed() const {
  return coordinator_ != nullptr ? coordinator_->epoch() : 0;
}

std::size_t HotSetManager::last_epoch_churn() const {
  return coordinator_ != nullptr ? coordinator_->last_epoch_churn() : 0;
}

std::uint64_t HotSetManager::epoch_requests() const {
  return coordinator_ != nullptr ? coordinator_->requests_per_epoch() : 0;
}

void HotSetManager::SeedPublished(const std::vector<Key>& keys) {
  CCKVS_CHECK(coordinator_ != nullptr);
  published_.clear();
  published_.insert(keys.begin(), keys.end());
}

bool HotSetManager::Sample(Key key) {
  CCKVS_CHECK(coordinator_ != nullptr);
  if (!coordinator_->OnRequest(key)) {
    return false;
  }
  // Publish the fresh top-k, minus keys whose previous eviction has not
  // settled: their home shards are not authoritative yet, so a fill taken now
  // could resurrect a value some cache already moved past.  Settled entries
  // are dropped here so the map stays bounded by in-flight churn.
  const std::uint64_t min_installed = MinInstalled();
  for (auto it = published_evictions_.begin(); it != published_evictions_.end();) {
    it = it->second <= min_installed ? published_evictions_.erase(it) : ++it;
  }
  std::vector<Key> keys;
  keys.reserve(coordinator_->CurrentHotSet().size());
  for (const Key k : coordinator_->CurrentHotSet()) {
    if (published_evictions_.count(k) != 0) {
      continue;  // unsettled; eligible again once every node confirms
    }
    keys.push_back(k);
  }
  const std::uint64_t epoch = coordinator_->epoch();
  for (const Key k : published_) {
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      published_evictions_[k] = epoch;
    }
  }
  published_.clear();
  published_.insert(keys.begin(), keys.end());
  announcement_ = HotSetAnnounceMsg{epoch, std::move(keys)};
  return true;
}

// ---------------------------------------------------------------------------
// Member role — host-driven entry points (the shared transition machine)
// ---------------------------------------------------------------------------

void HotSetManager::Execute(const Transition& t) {
  CCKVS_CHECK(host_ != nullptr);
  // Order matters and is identical on every host.  Write-backs land before
  // fills are snapshotted (an admitted key's snapshot must see any eviction
  // flush this same transition produced).  Fills are applied locally before
  // they are published, so the home cache serves the key from the instant its
  // shard gate goes up.  The install confirmation goes out after the fills so
  // it stays behind them on the FIFO lanes, and gates lift last — our own
  // install can be the final piece of a barrier.
  for (const SymmetricCache::Eviction& ev : t.home_writebacks) {
    host_->ApplyWriteback(ev);
  }
  if (!t.fill_duties.empty()) {
    std::vector<FillMsg> fills;
    fills.reserve(t.fill_duties.size());
    for (const Key key : t.fill_duties) {
      const HotSetHost::FillSnapshot snap = host_->GateAndSnapshot(key);
      FillMsg fill{key, snap.value, snap.ts, target_epoch_};
      ApplyFill(fill);
      fills.push_back(std::move(fill));
    }
    host_->PublishFills(fills);
  }
  if (t.installed_advanced) {
    host_->PublishInstalled(EpochInstalledMsg{t.installed_epoch});
  }
  for (const Key key : t.ungated) {
    host_->LiftGate(key);
  }
}

void HotSetManager::DriveAnnounce(const HotSetAnnounceMsg& msg) {
  Execute(Apply(msg));
}

void HotSetManager::DriveDeferred() {
  if (HasDeferred()) {
    Execute(RetryDeferred());
  }
}

void HotSetManager::DrivePeerInstalled(NodeId peer, std::uint64_t epoch) {
  CCKVS_CHECK(host_ != nullptr);
  for (const Key key : OnPeerInstalled(peer, epoch)) {
    host_->LiftGate(key);
  }
}

std::vector<FillMsg> HotSetManager::StashedFills() const {
  std::vector<FillMsg> fills;
  fills.reserve(fill_stash_.size());
  for (const auto& [key, fill] : fill_stash_) {
    fills.push_back(fill);
  }
  std::sort(fills.begin(), fills.end(),
            [](const FillMsg& a, const FillMsg& b) { return a.key < b.key; });
  return fills;
}

// ---------------------------------------------------------------------------
// Member role — raw transition steps
// ---------------------------------------------------------------------------

void HotSetManager::TryEvict(Key key, Transition* t) {
  if (!engine_->EvictionSafe(key)) {
    deferred_.insert(key);
    return;
  }
  SymmetricCache::Eviction ev;
  const bool dirty = cache_->Evict(key, &ev);
  engine_->OnEvicted(key);
  deferred_.erase(key);
  if (config_.home_of(key) == config_.self) {
    // Only the home flushes (§4); symmetric contents make its copy
    // sufficient once the install barrier has drained in-flight updates.
    if (dirty) {
      t->home_writebacks.push_back(std::move(ev));
    }
    pending_clear_[key] = target_epoch_;
  }
}

void HotSetManager::FinishInstall(Transition* t) {
  if (!deferred_.empty() || installed_[config_.self] >= target_epoch_) {
    return;
  }
  installed_[config_.self] = target_epoch_;
  t->installed_advanced = true;
  t->installed_epoch = target_epoch_;
  // Our own progress can be the last piece of a barrier.
  CollectUngated(&t->ungated);
}

HotSetManager::Transition HotSetManager::Apply(const HotSetAnnounceMsg& msg) {
  Transition t;
  if (msg.epoch <= target_epoch_) {
    return t;  // duplicate or stale announce
  }
  target_epoch_ = msg.epoch;
  target_.clear();
  target_.insert(msg.keys.begin(), msg.keys.end());

  for (const Key key : cache_->Keys()) {
    if (target_.count(key) == 0) {
      TryEvict(key, &t);
    } else {
      deferred_.erase(key);  // re-targeted before its eviction went through
    }
  }
  for (const Key key : msg.keys) {
    if (cache_->Find(key) != nullptr) {
      continue;  // surviving member keeps its value
    }
    cache_->Admit(key);
    // A re-admission supersedes any not-yet-settled eviction of this key: the
    // new cached era owns the shard gate again, so the old era's pending
    // clear must not fire when its (possibly straggling) barrier completes.
    pending_clear_.erase(key);
    if (config_.home_of(key) == config_.self) {
      t.fill_duties.push_back(key);
    } else if (auto it = fill_stash_.find(key); it != fill_stash_.end()) {
      ApplyFill(it->second);  // the fill beat its announce here
      fill_stash_.erase(it);
    }
  }
  // Drop stashed fills this announce did not consume, and pre-admission
  // traffic records for keys the epoch did not admit (keeps both bounded).
  for (auto it = fill_stash_.begin(); it != fill_stash_.end();) {
    it = it->second.epoch <= target_epoch_ ? fill_stash_.erase(it) : ++it;
  }
  for (auto it = seen_ahead_.begin(); it != seen_ahead_.end();) {
    it = target_.count(it->first) == 0 ? seen_ahead_.erase(it) : ++it;
  }
  FinishInstall(&t);
  return t;
}

HotSetManager::Transition HotSetManager::RetryDeferred() {
  Transition t;
  const std::vector<Key> retry(deferred_.begin(), deferred_.end());
  for (const Key key : retry) {
    TryEvict(key, &t);
  }
  FinishInstall(&t);
  return t;
}

bool HotSetManager::ApplyFill(const FillMsg& fill) {
  if (CacheEntry* entry = cache_->Find(fill.key); entry != nullptr) {
    Value value = fill.value;
    Timestamp ts = fill.ts;
    Timestamp promised{};  // a newer write known only by its invalidation
    if (auto it = seen_ahead_.find(fill.key); it != seen_ahead_.end()) {
      // Traffic for this key was dropped before the announce admitted it; the
      // fill must not resurrect a value those messages already moved past.
      // (Settled evictions keep the coordinator from re-admitting a key whose
      // shard lags, so anything newer than the fill is current-era traffic.)
      const AheadRecord r = it->second;
      seen_ahead_.erase(it);
      if (r.upd_ts > ts) {
        value = r.upd_value;
        ts = r.upd_ts;
      }
      if (r.inv_ts > ts) {
        promised = r.inv_ts;
      }
    }
    cache_->Fill(fill.key, value, ts);
    if (promised != Timestamp{} && entry->state() == CacheState::kValid &&
        promised > entry->ts()) {
      // Only the invalidation of a newer write was seen; its update is still
      // in flight.  Leave the entry Invalid at the promised timestamp — the
      // matching update (timestamp equality) will make it Valid, exactly as
      // if the invalidation had hit a cached entry.
      entry->set_ts(promised);
      entry->set_state(CacheState::kInvalid);
    }
    engine_->OnFilled(fill.key);
    return true;
  }
  if (fill.epoch > target_epoch_) {
    // The fill overtook its announce (different senders, unordered lanes):
    // keep it until Apply admits the key, or a newer epoch supersedes it.
    fill_stash_[fill.key] = fill;
  }
  return false;
}

void HotSetManager::NoteUncachedUpdate(Key key, const Value& value, Timestamp ts) {
  AheadRecord& r = seen_ahead_[key];
  if (ts > r.upd_ts) {
    r.upd_ts = ts;
    r.upd_value = value;
  }
}

void HotSetManager::NoteUncachedInvalidate(Key key, Timestamp ts) {
  AheadRecord& r = seen_ahead_[key];
  r.inv_ts = std::max(r.inv_ts, ts);
}

std::vector<HotSetManager::AheadTraffic> HotSetManager::SeenAheadTraffic() const {
  std::vector<AheadTraffic> out;
  out.reserve(seen_ahead_.size());
  for (const auto& [key, r] : seen_ahead_) {
    out.push_back(AheadTraffic{key, r.inv_ts, r.upd_ts, r.upd_value});
  }
  std::sort(out.begin(), out.end(),
            [](const AheadTraffic& a, const AheadTraffic& b) { return a.key < b.key; });
  return out;
}

std::vector<Key> HotSetManager::OnPeerInstalled(NodeId peer, std::uint64_t epoch) {
  CCKVS_CHECK_LT(peer, config_.num_nodes);
  if (epoch > installed_[peer]) {
    installed_[peer] = epoch;
  }
  std::vector<Key> ungated;
  CollectUngated(&ungated);
  return ungated;
}

std::uint64_t HotSetManager::MinInstalled() const {
  return *std::min_element(installed_.begin(), installed_.end());
}

void HotSetManager::CollectUngated(std::vector<Key>* out) {
  const std::uint64_t min_installed = MinInstalled();
  for (auto it = pending_clear_.begin(); it != pending_clear_.end();) {
    if (it->second <= min_installed) {
      out->push_back(it->first);
      it = pending_clear_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cckvs
