// Allocation-free Space-Saving sketch for per-node L1 admission.
//
// The rack-wide hot-set learner (topk/space_saving.h) runs at epoch cadence
// off a sampled stream, so its std::unordered_map index is fine there.  The
// L1 tail's admission sketch is different: it is offered a key on EVERY miss
// completion inside the steady-state window, where the alloc_assert audit
// forbids heap allocation.  This variant keeps the identical Space-Saving
// replacement rule (evict the minimum counter; the newcomer inherits its
// count as error) but stores everything flat and preallocated: an array
// min-heap of counters plus an open-addressing key->heap-position index with
// backward-shift deletion.  After construction no operation allocates.
//
// DecayHalve() ages the sketch for drifting per-node popularity: halving
// every count is monotone, so the heap order is preserved and aging is O(m).

#ifndef CCKVS_TOPK_FLAT_SPACE_SAVING_H_
#define CCKVS_TOPK_FLAT_SPACE_SAVING_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace cckvs {

class FlatSpaceSaving {
 public:
  struct Entry {
    Key key = 0;
    std::uint64_t count = 0;  // estimated frequency (upper bound)
    std::uint64_t error = 0;  // overestimation bound inherited at replacement
  };

  explicit FlatSpaceSaving(std::size_t capacity);

  // Counts one occurrence of `key`; returns its estimated count afterwards.
  // When `guaranteed` is non-null it receives count - error: the number of
  // sightings PROVEN for this key while it was tracked.  Admission gates on
  // the guaranteed count — once the sketch saturates, a replacement victim's
  // inherited minimum makes every one-hit wonder's estimate look large, and
  // admitting on the estimate would churn the L1 with keys that were seen
  // exactly once.  Allocation-free.
  std::uint64_t Offer(Key key, std::uint64_t* guaranteed = nullptr);

  // Halves every count and error (aging for drift).  Allocation-free.
  void DecayHalve();

  // Estimated count of `key`, 0 when untracked.  Allocation-free.
  std::uint64_t EstimateOf(Key key) const;

  // The k highest counters, descending (ties by key).  Allocates — test and
  // diagnostics use only.
  std::vector<Entry> TopK(std::size_t k) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return heap_.size(); }

 private:
  std::size_t IndexHomePos(Key key) const;
  std::size_t FindIndexPos(Key key) const;  // index_.size() when absent
  void IndexInsert(Key key, std::size_t heap_pos);
  void IndexEraseAt(std::size_t pos);
  void SetHeapSlot(std::size_t heap_pos, const Entry& e);
  void SiftUp(std::size_t heap_pos);
  void SiftDown(std::size_t heap_pos);
  void Swap(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::vector<Entry> heap_;  // min-heap by count

  // Open-addressing index: position -> heap position (-1 = free), updated on
  // every heap swap so lookups stay O(probe).
  static constexpr std::int32_t kEmpty = -1;
  std::vector<std::int32_t> index_;
  std::size_t index_mask_;

  // Backlink: heap position -> index position, so a heap Swap is two O(1)
  // index writes instead of two hash probes.  A saturated sketch sifts the
  // replaced root down the whole heap on most tail offers — with probing
  // swaps that is 2·log(m) hash walks on the hot miss path.
  std::vector<std::int32_t> index_pos_of_;
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_FLAT_SPACE_SAVING_H_
