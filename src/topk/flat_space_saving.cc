#include "src/topk/flat_space_saving.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {
namespace {

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

FlatSpaceSaving::FlatSpaceSaving(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1),
      index_(NextPow2(capacity_ * 2), kEmpty),
      index_mask_(index_.size() - 1) {
  heap_.reserve(capacity_);
  index_pos_of_.assign(capacity_, kEmpty);
}

std::size_t FlatSpaceSaving::IndexHomePos(Key key) const {
  return static_cast<std::size_t>(HashKey(key)) & index_mask_;
}

std::size_t FlatSpaceSaving::FindIndexPos(Key key) const {
  std::size_t pos = IndexHomePos(key);
  while (index_[pos] != kEmpty) {
    if (heap_[static_cast<std::size_t>(index_[pos])].key == key) {
      return pos;
    }
    pos = (pos + 1) & index_mask_;
  }
  return index_.size();
}

void FlatSpaceSaving::IndexInsert(Key key, std::size_t heap_pos) {
  std::size_t pos = IndexHomePos(key);
  while (index_[pos] != kEmpty) {
    pos = (pos + 1) & index_mask_;
  }
  index_[pos] = static_cast<std::int32_t>(heap_pos);
  index_pos_of_[heap_pos] = static_cast<std::int32_t>(pos);
}

// Same backward-shift deletion as cache/l1_tail.cc: no tombstones.
void FlatSpaceSaving::IndexEraseAt(std::size_t pos) {
  index_[pos] = kEmpty;
  std::size_t hole = pos;
  std::size_t probe = pos;
  while (true) {
    probe = (probe + 1) & index_mask_;
    if (index_[probe] == kEmpty) {
      return;
    }
    const std::size_t home =
        IndexHomePos(heap_[static_cast<std::size_t>(index_[probe])].key);
    const bool reachable = hole < probe ? (home > hole && home <= probe)
                                        : (home > hole || home <= probe);
    if (!reachable) {
      index_[hole] = index_[probe];
      index_pos_of_[static_cast<std::size_t>(index_[probe])] =
          static_cast<std::int32_t>(hole);
      index_[probe] = kEmpty;
      hole = probe;
    }
  }
}

void FlatSpaceSaving::Swap(std::size_t a, std::size_t b) {
  const std::int32_t pa = index_pos_of_[a];
  const std::int32_t pb = index_pos_of_[b];
  std::swap(heap_[a], heap_[b]);
  index_[static_cast<std::size_t>(pa)] = static_cast<std::int32_t>(b);
  index_[static_cast<std::size_t>(pb)] = static_cast<std::int32_t>(a);
  index_pos_of_[a] = pb;
  index_pos_of_[b] = pa;
}

void FlatSpaceSaving::SiftUp(std::size_t heap_pos) {
  while (heap_pos > 0) {
    const std::size_t parent = (heap_pos - 1) / 2;
    if (heap_[parent].count <= heap_[heap_pos].count) {
      return;
    }
    Swap(parent, heap_pos);
    heap_pos = parent;
  }
}

void FlatSpaceSaving::SiftDown(std::size_t heap_pos) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * heap_pos + 1;
    if (left >= n) {
      return;
    }
    std::size_t smallest = left;
    const std::size_t right = left + 1;
    if (right < n && heap_[right].count < heap_[left].count) {
      smallest = right;
    }
    if (heap_[heap_pos].count <= heap_[smallest].count) {
      return;
    }
    Swap(heap_pos, smallest);
    heap_pos = smallest;
  }
}

std::uint64_t FlatSpaceSaving::Offer(Key key, std::uint64_t* guaranteed) {
  const std::size_t pos = FindIndexPos(key);
  if (pos != index_.size()) {
    const std::size_t hp = static_cast<std::size_t>(index_[pos]);
    Entry& e = heap_[hp];
    const std::uint64_t count = ++e.count;
    if (guaranteed != nullptr) {
      *guaranteed = count - e.error;
    }
    SiftDown(hp);  // count grew: may need to move away from the min root
    return count;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(Entry{key, 1, 0});  // within the reserve: no allocation
    IndexInsert(key, heap_.size() - 1);
    SiftUp(heap_.size() - 1);
    if (guaranteed != nullptr) {
      *guaranteed = 1;
    }
    return 1;
  }
  // Space-Saving replacement: the newcomer takes over the minimum counter
  // and inherits its count as the error bound.
  Entry& min = heap_[0];
  const std::size_t old_pos = static_cast<std::size_t>(index_pos_of_[0]);
  CCKVS_CHECK(index_[old_pos] == 0);
  IndexEraseAt(old_pos);
  min.error = min.count;
  min.count += 1;
  min.key = key;
  IndexInsert(key, 0);
  const std::uint64_t count = min.count;
  if (guaranteed != nullptr) {
    *guaranteed = 1;
  }
  SiftDown(0);
  return count;
}

void FlatSpaceSaving::DecayHalve() {
  // x -> x/2 is monotone, so the heap invariant survives untouched.
  for (Entry& e : heap_) {
    e.count /= 2;
    e.error /= 2;
  }
}

std::uint64_t FlatSpaceSaving::EstimateOf(Key key) const {
  const std::size_t pos = FindIndexPos(key);
  return pos == index_.size()
             ? 0
             : heap_[static_cast<std::size_t>(index_[pos])].count;
}

std::vector<FlatSpaceSaving::Entry> FlatSpaceSaving::TopK(std::size_t k) const {
  std::vector<Entry> sorted = heap_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    return a.count != b.count ? a.count > b.count : a.key < b.key;
  });
  if (sorted.size() > k) {
    sorted.resize(k);
  }
  return sorted;
}

}  // namespace cckvs
