// Epoch-based hot-set learning (§4).
//
// One node acts as the cache coordinator: it samples the request stream into a
// Space-Saving summary and, at each epoch boundary, publishes the new hot set
// (the keys every symmetric cache should hold).  Symmetric caching makes a
// single coordinator sufficient because all nodes observe the same distribution;
// centralizing it "naturally alleviates the burden of reaching a consensus on
// which items are popular".
//
// The class is deliberately transport-agnostic: the ccKVS cluster wires epoch
// publications into cache-fill messages; tests drive it directly.

#ifndef CCKVS_TOPK_EPOCH_COORDINATOR_H_
#define CCKVS_TOPK_EPOCH_COORDINATOR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/topk/space_saving.h"

namespace cckvs {

struct EpochCoordinatorConfig {
  std::size_t hot_set_size = 1000;  // k: cache capacity
  // Track more counters than k so near-boundary keys are ranked accurately.
  double counter_headroom = 4.0;
  // Request sampling probability (§4: "request sampling is used to alleviate
  // the performance impact of updating the frequency counter").
  double sample_probability = 0.01;
  std::uint64_t requests_per_epoch = 1'000'000;
  std::uint64_t seed = 42;

  // Drift-aware pacing: a fixed epoch length is wrong at both extremes — under
  // fast popularity drift the hot set goes stale mid-epoch (hit rate dips until
  // the next announce), while a stable distribution pays transition churn for
  // no information.  last_epoch_churn() is the natural feedback signal: churn
  // at or above churn_shorten_fraction × k halves the next epoch, churn at or
  // below churn_lengthen_fraction × k doubles it, clamped to [min, max].
  bool adaptive = false;
  double churn_shorten_fraction = 0.10;
  double churn_lengthen_fraction = 0.01;
  // Clamps; 0 derives requests_per_epoch / 8 and × 8 respectively.
  std::uint64_t min_requests_per_epoch = 0;
  std::uint64_t max_requests_per_epoch = 0;
};

class EpochCoordinator {
 public:
  explicit EpochCoordinator(const EpochCoordinatorConfig& config);

  // Feeds one request.  Returns true when this request closed an epoch, i.e.
  // CurrentHotSet() was just refreshed.
  bool OnRequest(Key key);

  // The latest published hot set (descending popularity).  Empty before the
  // first epoch closes.
  const std::vector<Key>& CurrentHotSet() const { return hot_set_; }
  std::uint64_t epoch() const { return epoch_; }

  // Difference between the latest hot set and the previous one, for measuring
  // churn ("only a handful of keys removed/added every few seconds", §4).
  std::size_t last_epoch_churn() const { return last_churn_; }

  // The length the *next* epoch will run at; fixed unless config.adaptive.
  std::uint64_t requests_per_epoch() const { return epoch_length_; }

 private:
  void CloseEpoch();
  void AdaptEpochLength();

  EpochCoordinatorConfig config_;
  SpaceSaving summary_;
  Rng rng_;
  std::uint64_t seen_in_epoch_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t epoch_length_;
  std::uint64_t min_length_;
  std::uint64_t max_length_;
  std::size_t last_churn_ = 0;
  std::vector<Key> hot_set_;
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_EPOCH_COORDINATOR_H_
