// The hot-set subsystem: adaptive, protocol-safe epoch transitions (§4).
//
// One HotSetManager per node owns everything about hot-set membership that
// used to be scattered through the rack driver: coordinator sampling, epoch
// publication, installing announced hot sets into the SymmetricCache,
// write-back of dirty evictions, cache fills, and the bookkeeping that makes
// all of it safe against the consistency protocol.  It is the ONE transition
// state machine: the Drive* entry points both decide a transition and execute
// it through the HotSetHost hooks (hot_set_host.h), so the discrete-event
// RackSimulation, the live multithreaded LiveRack and the model checker's
// transition scope all run the identical logic — hosts differ only in how the
// published messages travel (serialized control/fill packets vs. in-process
// channel variants vs. explicit FIFO lanes) and in where ops parked on the
// shard residency gate wait.
//
// Protocol safety has two parts:
//
//  * Engine membership hooks.  Evicting a key with an in-flight Lin write,
//    queued local writes or parked readers would strand engine state (the
//    write could never collect its acks; its session would hang).  The
//    manager asks CoherenceEngine::EvictionSafe first and *defers* unsafe
//    evictions; hosts call RetryDeferred as protocol progress (acks, updates,
//    fills) releases keys.  An epoch counts as installed only when nothing is
//    deferred.
//
//  * The install barrier.  Every node broadcasts EpochInstalledMsg after
//    finishing an install.  Because a node's pre-eviction updates travel the
//    same FIFO lanes as its install confirmation, "all nodes installed epoch
//    E" implies every update to a key evicted in E has reached the key's home
//    node — the home shard is a superset of everything any cache ever held.
//    Homes track their evicted keys in a pending-clear set until the barrier
//    completes; the live runtime keeps the shard's cache-residency gate up
//    (store::Partition::MarkCacheResident) for exactly that window, which is
//    what lets its direct-shard miss path stay per-key SC/Lin through churn.
//    The coordinator uses the same information to never re-admit a key whose
//    eviction has not settled, so fills are always taken from an
//    authoritative shard.

#ifndef CCKVS_TOPK_HOT_SET_MANAGER_H_
#define CCKVS_TOPK_HOT_SET_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/common/types.h"
#include "src/protocol/engine.h"
#include "src/topk/epoch_coordinator.h"
#include "src/topk/hot_set_host.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

struct HotSetManagerConfig {
  NodeId self = 0;
  int num_nodes = 0;
  // This node samples the request stream and closes epochs (one per rack).
  bool coordinator = false;
  EpochCoordinatorConfig epoch;  // coordinator role only
  // Shard homing, so the manager can split write-back/fill duties.
  std::function<NodeId(Key)> home_of;
};

class HotSetManager {
 public:
  // `host` executes transitions (writebacks, gate+fill snapshots, publishing,
  // gate lifts) when the Drive* entry points are used; tests that inspect raw
  // Transitions may pass nullptr and call Apply/RetryDeferred/OnPeerInstalled
  // directly instead.
  HotSetManager(const HotSetManagerConfig& config, SymmetricCache* cache,
                CoherenceEngine* engine, HotSetHost* host = nullptr);

  // ---------------------------------------------------------------------
  // Coordinator role
  // ---------------------------------------------------------------------

  bool coordinator() const { return coordinator_ != nullptr; }

  // Feeds one request into the popularity summary.  Returns true when this
  // request closed an epoch: announcement() is fresh and must be broadcast
  // (and Apply()d locally).  Keys whose previous eviction has not settled
  // rack-wide are withheld from the published set (see header comment).
  bool Sample(Key key);
  const HotSetAnnounceMsg& announcement() const { return announcement_; }

  // Tells the coordinator about a hot set installed out of band (oracle
  // prefill), so keys the first epoch drops from it go through the same
  // eviction-settlement tracking as any published key.
  void SeedPublished(const std::vector<Key>& keys);

  std::uint64_t epochs_closed() const;
  std::size_t last_epoch_churn() const;
  // The next epoch's length in requests (drift-aware pacing moves it).
  std::uint64_t epoch_requests() const;

  // ---------------------------------------------------------------------
  // Member role — host-driven entry points
  // ---------------------------------------------------------------------
  //
  // The ONE shared transition machine: both hosts (sim RackNode, live
  // LiveNode) and the model checker's transition scope call these, and the
  // manager executes every host duty through the HotSetHost hooks.  Hosts no
  // longer interpret Transitions themselves.

  // Installs an announced hot set and executes the resulting transition:
  // write-backs, gate+snapshot+publish for fill duties, the install-barrier
  // confirmation, and gate lifts this node's own progress completed.
  void DriveAnnounce(const HotSetAnnounceMsg& msg);

  // Re-attempts deferred evictions and executes whatever completes; call when
  // protocol progress (acks, updates, fills) may have released keys.
  void DriveDeferred();

  // Barrier progress from a peer; lifts the residency gate (host hook) for
  // every key homed here whose eviction just settled rack-wide.
  void DrivePeerInstalled(NodeId peer, std::uint64_t epoch);

  // ---------------------------------------------------------------------
  // Member role — raw transition steps (unit tests, introspection)
  // ---------------------------------------------------------------------

  // What the host owes the rack after a membership step.
  struct Transition {
    // Dirty evictions homed at this node: apply to the local shard.
    std::vector<SymmetricCache::Eviction> home_writebacks;
    // Keys admitted and homed here: snapshot the shard (live hosts via
    // MarkCacheResident), ApplyFill locally, broadcast the FillMsg.
    std::vector<Key> fill_duties;
    // Keys homed here whose eviction settled rack-wide: the shard is
    // authoritative again (live hosts clear the residency gate; the sim
    // releases any parked shard requests).
    std::vector<Key> ungated;
    // This node finished installing installed_epoch: broadcast
    // EpochInstalledMsg{installed_epoch}.
    bool installed_advanced = false;
    std::uint64_t installed_epoch = 0;
  };

  // Installs an announced hot set (idempotent; stale epochs are no-ops).
  Transition Apply(const HotSetAnnounceMsg& msg);

  // Re-attempts deferred evictions; call when protocol progress may have
  // released keys (acks, updates, fills).
  Transition RetryDeferred();
  bool HasDeferred() const { return !deferred_.empty(); }

  // Installs a fill into the cache (and wakes the engine's parked work).
  // Fills that arrive before their announce are stashed and consumed by
  // Apply; fills for departed keys are dropped.  Returns true when applied.
  // Traffic recorded by NoteUncached* supersedes stale fills (see below).
  bool ApplyFill(const FillMsg& fill);

  // The fill-vs-announce race (found by the model checker's transition
  // scope): a node that has not yet applied an epoch's announce drops
  // consistency traffic for the keys that epoch admits — it neither caches
  // them nor homes them — yet it still acks invalidations, so a writer's Lin
  // write can COMPLETE while this node knows nothing of it.  If the home's
  // fill (snapshotted before that write) then arrives via the stash, the node
  // would install the superseded value as Valid and serve stale reads.
  // Hosts therefore report dropped traffic for uncached keys homed
  // elsewhere; ApplyFill installs the newest update instead of a stale fill,
  // and an invalidation-only record leaves the entry Invalid at the promised
  // timestamp so the in-flight update (same ts) completes it.  Records are
  // pruned on every announce (keys outside the new target set).
  void NoteUncachedUpdate(Key key, const Value& value, Timestamp ts);
  void NoteUncachedInvalidate(Key key, Timestamp ts);

  // Pre-admission traffic records, sorted by key (model-checker encoding).
  struct AheadTraffic {
    Key key = 0;
    Timestamp inv_ts{};
    Timestamp upd_ts{};
    Value upd_value;
  };
  std::vector<AheadTraffic> SeenAheadTraffic() const;

  // Barrier progress from a peer.  Returns newly settled keys homed here
  // (same meaning as Transition::ungated).
  std::vector<Key> OnPeerInstalled(NodeId peer, std::uint64_t epoch);

  // True while shard access to `key` (homed here) must wait for the barrier.
  bool ShardGated(Key key) const { return pending_clear_.count(key) != 0; }
  // The gated keys themselves, each with the epoch whose barrier it awaits.
  // The live node's transition timeline (runtime/tracing.h) opens one
  // gate_closed span per entry and closes it at the LiftGate hook.
  const std::unordered_map<Key, std::uint64_t>& pending_clear() const {
    return pending_clear_;
  }

  std::uint64_t target_epoch() const { return target_epoch_; }
  std::size_t deferred_evictions() const { return deferred_.size(); }

  std::uint64_t installed_epoch() const { return installed_[config_.self]; }
  // Peer view of the barrier (model-checker state encoding).
  std::uint64_t peer_installed_epoch(NodeId node) const { return installed_[node]; }
  // Fills that arrived ahead of their announce (model-checker state encoding;
  // sorted by key).
  std::vector<FillMsg> StashedFills() const;

 private:
  void TryEvict(Key key, Transition* t);
  void FinishInstall(Transition* t);
  // Executes a transition's host duties through the HotSetHost hooks.
  void Execute(const Transition& t);
  std::uint64_t MinInstalled() const;
  void CollectUngated(std::vector<Key>* out);

  HotSetManagerConfig config_;
  SymmetricCache* cache_;
  CoherenceEngine* engine_;
  HotSetHost* host_;

  // Coordinator state.
  std::unique_ptr<EpochCoordinator> coordinator_;
  HotSetAnnounceMsg announcement_;
  std::unordered_set<Key> published_;  // membership of the last announcement
  // Keys dropped from the published set, by the epoch that dropped them;
  // ineligible for re-admission until that epoch settles.
  std::unordered_map<Key, std::uint64_t> published_evictions_;

  // Member state.
  std::uint64_t target_epoch_ = 0;
  std::unordered_set<Key> target_;    // membership this node converges to
  std::unordered_set<Key> deferred_;  // evictions blocked by engine state
  std::unordered_map<Key, FillMsg> fill_stash_;  // fills that beat their announce
  // Dropped pre-admission traffic per key (see NoteUncached*); bounded by the
  // announce-time prune.
  struct AheadRecord {
    Timestamp inv_ts{};
    Timestamp upd_ts{};
    Value upd_value;
  };
  std::unordered_map<Key, AheadRecord> seen_ahead_;
  // Keys homed here evicted in epoch `value`, awaiting the install barrier.
  std::unordered_map<Key, std::uint64_t> pending_clear_;
  std::vector<std::uint64_t> installed_;  // per-node installed epoch, self included
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_HOT_SET_MANAGER_H_
