#include "src/topk/space_saving.h"

#include <algorithm>

namespace cckvs {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  CCKVS_CHECK_GE(capacity, 1u);
  heap_.reserve(capacity);
  index_.reserve(capacity * 2);
}

void SpaceSaving::SwapNodes(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  index_[heap_[a].key] = a;
  index_[heap_[b].key] = b;
}

void SpaceSaving::SiftDown(std::size_t i) {
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < heap_.size() && Less(l, smallest)) {
      smallest = l;
    }
    if (r < heap_.size() && Less(r, smallest)) {
      smallest = r;
    }
    if (smallest == i) {
      return;
    }
    SwapNodes(i, smallest);
    i = smallest;
  }
}

void SpaceSaving::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Less(i, parent)) {
      return;
    }
    SwapNodes(i, parent);
    i = parent;
  }
}

void SpaceSaving::Offer(Key key, std::uint64_t increment) {
  stream_length_ += increment;
  auto it = index_.find(key);
  if (it != index_.end()) {
    heap_[it->second].count += increment;
    SiftDown(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back(Counter{key, increment, 0});
    index_[key] = heap_.size() - 1;
    SiftUp(heap_.size() - 1);
    return;
  }
  // Evict the minimum counter: the newcomer inherits its count as error bound
  // (the Space-Saving replacement rule).
  Counter& victim = heap_[0];
  index_.erase(victim.key);
  const std::uint64_t floor = victim.count;
  victim = Counter{key, floor + increment, floor};
  index_[key] = 0;
  SiftDown(0);
}

void SpaceSaving::DecayHalve() {
  for (Counter& c : heap_) {
    c.count /= 2;
    c.error /= 2;
  }
  stream_length_ /= 2;
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(std::size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(heap_.size());
  for (const Counter& c : heap_) {
    entries.push_back(Entry{c.key, c.count, c.error});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.key < b.key;
  });
  if (entries.size() > k) {
    entries.resize(k);
  }
  return entries;
}

}  // namespace cckvs
