// Epoch-machinery message types (§4), shared by every host of the hot-set
// subsystem: the simulated rack serializes them onto its control QP, the live
// runtime carries them as variants on its in-process channels, and unit tests
// construct them directly.
//
// All three ride *credited* transport lanes so the flow-control bounds of
// §6.3 keep holding, and — critically — so they stay FIFO behind the updates
// a node sent before announcing epoch progress (the install barrier the
// shard-residency gate relies on; see hot_set_manager.h).

#ifndef CCKVS_TOPK_HOT_SET_MESSAGES_H_
#define CCKVS_TOPK_HOT_SET_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace cckvs {

// Coordinator -> everyone: the hot set every symmetric cache should hold from
// `epoch` on.  Keys are in descending popularity.
struct HotSetAnnounceMsg {
  std::uint64_t epoch = 0;
  std::vector<Key> keys;
};

// Home node -> everyone: the value of a key admitted in `epoch`, snapshotted
// from its home shard at admission.
struct FillMsg {
  Key key = 0;
  Value value;
  Timestamp ts{};
  std::uint64_t epoch = 0;
};

// Everyone -> everyone: this node finished installing `epoch` (every eviction
// performed, none deferred).  Once all nodes confirm an epoch, the keys it
// evicted are settled and their home shards become authoritative again.
struct EpochInstalledMsg {
  std::uint64_t epoch = 0;
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_HOT_SET_MESSAGES_H_
