#include "src/topk/epoch_coordinator.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace cckvs {

EpochCoordinator::EpochCoordinator(const EpochCoordinatorConfig& config)
    : config_(config),
      summary_(static_cast<std::size_t>(
          std::ceil(static_cast<double>(config.hot_set_size) * config.counter_headroom))),
      rng_(config.seed),
      epoch_length_(config.requests_per_epoch),
      min_length_(config.min_requests_per_epoch != 0
                      ? config.min_requests_per_epoch
                      : std::max<std::uint64_t>(1, config.requests_per_epoch / 8)),
      max_length_(config.max_requests_per_epoch != 0
                      ? config.max_requests_per_epoch
                      : config.requests_per_epoch * 8) {
  CCKVS_CHECK_GE(config.hot_set_size, 1u);
  CCKVS_CHECK_GT(config.sample_probability, 0.0);
  CCKVS_CHECK_LE(config.sample_probability, 1.0);
  CCKVS_CHECK_GE(config.counter_headroom, 1.0);
  CCKVS_CHECK_GE(config.requests_per_epoch, 1u);
  if (config.adaptive) {
    CCKVS_CHECK_LE(min_length_, max_length_);
    CCKVS_CHECK_GT(config.churn_shorten_fraction, config.churn_lengthen_fraction);
  }
}

bool EpochCoordinator::OnRequest(Key key) {
  if (config_.sample_probability >= 1.0 || rng_.NextBool(config_.sample_probability)) {
    summary_.Offer(key);
  }
  if (++seen_in_epoch_ >= epoch_length_) {
    CloseEpoch();
    return true;
  }
  return false;
}

void EpochCoordinator::CloseEpoch() {
  seen_in_epoch_ = 0;
  ++epoch_;
  const auto entries = summary_.TopK(config_.hot_set_size);
  std::vector<Key> fresh;
  fresh.reserve(entries.size());
  for (const auto& e : entries) {
    fresh.push_back(e.key);
  }
  // Churn = size of the symmetric difference with the previous hot set.
  std::unordered_set<Key> previous(hot_set_.begin(), hot_set_.end());
  std::size_t added = 0;
  for (const Key k : fresh) {
    if (previous.erase(k) == 0) {
      ++added;
    }
  }
  last_churn_ = added + previous.size();
  hot_set_ = std::move(fresh);
  if (config_.adaptive) {
    AdaptEpochLength();
  }
  // Age the summary so the next epoch weights fresh traffic (shifted popularity
  // displaces stale counters within an epoch or two).
  summary_.DecayHalve();
}

void EpochCoordinator::AdaptEpochLength() {
  // Multiplicative steps keep convergence fast from either extreme (a cold
  // start measures churn == k and dives toward min_length_; a settled
  // distribution climbs back toward max_length_ one doubling per epoch).
  const double k = static_cast<double>(config_.hot_set_size);
  const auto churn = static_cast<double>(last_churn_);
  if (churn >= config_.churn_shorten_fraction * k) {
    epoch_length_ = std::max(min_length_, epoch_length_ / 2);
  } else if (churn <= config_.churn_lengthen_fraction * k) {
    epoch_length_ = std::min(max_length_, epoch_length_ * 2);
  }
}

}  // namespace cckvs
