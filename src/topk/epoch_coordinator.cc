#include "src/topk/epoch_coordinator.h"

#include <cmath>

#include "src/common/check.h"

namespace cckvs {

EpochCoordinator::EpochCoordinator(const EpochCoordinatorConfig& config)
    : config_(config),
      summary_(static_cast<std::size_t>(
          std::ceil(static_cast<double>(config.hot_set_size) * config.counter_headroom))),
      rng_(config.seed) {
  CCKVS_CHECK_GE(config.hot_set_size, 1u);
  CCKVS_CHECK_GT(config.sample_probability, 0.0);
  CCKVS_CHECK_LE(config.sample_probability, 1.0);
  CCKVS_CHECK_GE(config.counter_headroom, 1.0);
}

bool EpochCoordinator::OnRequest(Key key) {
  if (config_.sample_probability >= 1.0 || rng_.NextBool(config_.sample_probability)) {
    summary_.Offer(key);
  }
  if (++seen_in_epoch_ >= config_.requests_per_epoch) {
    CloseEpoch();
    return true;
  }
  return false;
}

void EpochCoordinator::CloseEpoch() {
  seen_in_epoch_ = 0;
  ++epoch_;
  const auto entries = summary_.TopK(config_.hot_set_size);
  std::vector<Key> fresh;
  fresh.reserve(entries.size());
  for (const auto& e : entries) {
    fresh.push_back(e.key);
  }
  // Churn = size of the symmetric difference with the previous hot set.
  std::unordered_set<Key> previous(hot_set_.begin(), hot_set_.end());
  std::size_t added = 0;
  for (const Key k : fresh) {
    if (previous.erase(k) == 0) {
      ++added;
    }
  }
  last_churn_ = added + previous.size();
  hot_set_ = std::move(fresh);
  // Age the summary so the next epoch weights fresh traffic (shifted popularity
  // displaces stale counters within an epoch or two).
  summary_.DecayHalve();
}

}  // namespace cckvs
