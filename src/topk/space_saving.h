// Top-k popularity tracking (§4, substrate S7).
//
// The symmetric cache must hold the k most popular keys.  The paper adopts the
// scheme of Li et al. [32]: memory-efficient top-k summaries (Space-Saving,
// Metwally et al. [35]) fed by a sampled request stream, with an epoch-based
// refresh.  Because symmetric caching load-balances requests, every node sees
// the same access distribution, so a single cache coordinator suffices — that
// coordinator lives in epoch_coordinator.h.

#ifndef CCKVS_TOPK_SPACE_SAVING_H_
#define CCKVS_TOPK_SPACE_SAVING_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cckvs {

// Space-Saving stream summary: tracks approximately the `capacity` most frequent
// keys of a stream with O(capacity) memory.  Guarantees: every key with true
// count > N/capacity is present; reported count overestimates by at most the
// minimum counter.
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t capacity);

  void Offer(Key key, std::uint64_t increment = 1);

  // Halves every counter (and error bound).  Applied at epoch boundaries so
  // that the summary weights recent traffic and newly popular keys can displace
  // stale ones — the role of the "frequency counter that keeps track of
  // recently visited keys" in Li et al.'s scheme (§4).  Order-preserving, so
  // the heap invariant survives.
  void DecayHalve();

  struct Entry {
    Key key = 0;
    std::uint64_t count = 0;  // estimated frequency (upper bound)
    std::uint64_t error = 0;  // max overestimation
  };

  // The k heaviest entries, by descending estimated count.
  std::vector<Entry> TopK(std::size_t k) const;

  std::size_t size() const { return heap_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t stream_length() const { return stream_length_; }

 private:
  struct Counter {
    Key key;
    std::uint64_t count;
    std::uint64_t error;
  };

  // Min-heap on count so the victim (minimum counter) is O(1) to find.
  void SiftDown(std::size_t i);
  void SiftUp(std::size_t i);
  bool Less(std::size_t a, std::size_t b) const {
    return heap_[a].count < heap_[b].count;
  }
  void SwapNodes(std::size_t a, std::size_t b);

  std::size_t capacity_;
  std::uint64_t stream_length_ = 0;
  std::vector<Counter> heap_;
  std::unordered_map<Key, std::size_t> index_;  // key -> heap position
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_SPACE_SAVING_H_
