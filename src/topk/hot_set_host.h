// The host half of an epoch transition (§4): what a node owes the rack while
// the HotSetManager installs an announced hot set.
//
// Both hosts — the discrete-event RackSimulation and the live multithreaded
// LiveRack — implement this interface over the same store::Partition
// primitives, and HotSetManager::Drive* executes every transition through it.
// There is exactly ONE transition state machine (hot_set_manager.cc); hosts
// differ only in how the published messages travel (serialized control/fill
// packets on the simulated fabric vs. WireBody variants on the in-process
// channels) and in where ops parked on the residency gate wait (a parked
// request deque in the sim's KVS path, the run loop's parked_gated_ queue in
// the live node, an explicit retry action in the model checker's transition
// scope).
//
// Ordering contract (the install barrier): PublishFills and PublishInstalled
// must ship on the same per-peer FIFO lanes as the consistency updates this
// node sent earlier.  That is what makes "every node installed epoch E" imply
// "every update to a key evicted in E has drained into its home shard", which
// is the fact LiftGate acts on.

#ifndef CCKVS_TOPK_HOT_SET_HOST_H_
#define CCKVS_TOPK_HOT_SET_HOST_H_

#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/common/types.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

class HotSetHost {
 public:
  virtual ~HotSetHost() = default;

  // Flush a dirty eviction homed at this node into its shard: a timestamped
  // apply that installs iff newer and preserves the residency flag.
  virtual void ApplyWriteback(const SymmetricCache::Eviction& ev) = 0;

  struct FillSnapshot {
    Value value;
    Timestamp ts{};
  };
  // Raise the shard residency gate for `key` (homed here) and snapshot the
  // authoritative value the fill is taken from.  Mark and snapshot must be
  // atomic against direct shard writers — Partition::MarkCacheResident
  // provides exactly that contract.
  virtual FillSnapshot GateAndSnapshot(Key key) = 0;

  // Ship one transition's fills (keys homed here) to every peer.  The manager
  // has already applied them to the local cache.
  virtual void PublishFills(const std::vector<FillMsg>& fills) = 0;

  // Broadcast this node's install-barrier confirmation.
  virtual void PublishInstalled(const EpochInstalledMsg& msg) = 0;

  // The install barrier completed for `key` (homed here): every node
  // installed the evicting epoch, so the pre-eviction updates that travelled
  // ahead of their confirmations have all drained into this shard and it is
  // authoritative again.  Hosts clear the residency gate and retry work
  // parked on it.
  virtual void LiftGate(Key key) = 0;
};

}  // namespace cckvs

#endif  // CCKVS_TOPK_HOT_SET_HOST_H_
