// Fully distributed consistency protocols (§5 — the paper's core contribution).
//
// Both protocols serialize writes with Lamport timestamps (clock, writer-id)
// instead of a primary, a sequencer or a directory, so any replica can initiate
// a write (Figure 4c):
//
//  * ScEngine  — per-key Sequential Consistency, after Burckhardt: a put bumps
//    the entry's Lamport clock, applies locally, broadcasts an update and
//    returns immediately (non-blocking).  Receivers apply an update iff its
//    timestamp exceeds the stored one (writer id breaks ties).
//
//  * LinEngine — per-key Linearizability, after Guerraoui et al.'s high
//    throughput atomic storage: a put broadcasts timestamped invalidations,
//    waits for acks from every sharer, and only then broadcasts the update and
//    returns (Figure 7).  One stable state (Valid) and two transient states
//    (Invalid, Write); reads of non-Valid entries block until the entry becomes
//    Valid.  Invalidations are *always* acknowledged — also when stale — which
//    is the deadlock-freedom linchpin verified by the model checker (S14).
//
// Engines are transport-agnostic: outgoing messages go to a MessageSink, and the
// host (rack simulation, unit test, or model checker) feeds incoming messages
// back.  This is what lets the exhaustive checker explore every interleaving of
// the exact production code paths.
//
// Threading model: an engine is single-threaded — the host serializes all
// calls (client ops and message deliveries).  Completion is callback-based:
// Write/Read return immediately and fire WriteDone/ReadDone when the
// operation completes under the model's rules, so a blocking Lin write is
// simply a callback deferred until the last ack.  See docs/ARCHITECTURE.md
// for the full state machine, including the superseded-write and
// update-overtakes-invalidation races.

#ifndef CCKVS_PROTOCOL_ENGINE_H_
#define CCKVS_PROTOCOL_ENGINE_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/common/types.h"
#include "src/protocol/messages.h"

namespace cckvs {

enum class ConsistencyModel : std::uint8_t {
  kNone = 0,  // baselines: no cache, no protocol
  kSc,
  kLin,
};

inline const char* ToString(ConsistencyModel m) {
  switch (m) {
    case ConsistencyModel::kNone:
      return "none";
    case ConsistencyModel::kSc:
      return "SC";
    case ConsistencyModel::kLin:
      return "Lin";
  }
  return "?";
}

// Where engines emit protocol messages.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void BroadcastUpdate(const UpdateMsg& msg) = 0;
  virtual void BroadcastInvalidate(const InvalidateMsg& msg) = 0;
  virtual void SendAck(NodeId to, const AckMsg& msg) = 0;
};

struct EngineStats {
  std::uint64_t writes = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t reads_hit = 0;
  std::uint64_t reads_blocked = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_discarded = 0;
  std::uint64_t invalidations_applied = 0;
  std::uint64_t invalidations_stale = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t writes_superseded = 0;
  std::uint64_t local_writes_queued = 0;
};

class CoherenceEngine {
 public:
  using WriteDone = std::function<void()>;
  // Blocked reads resume with the value and timestamp they finally observed.
  using ReadDone = std::function<void(const Value&, Timestamp)>;

  enum class WriteResult { kCompleted, kPending };
  enum class ReadResult { kHit, kBlocked };

  CoherenceEngine(NodeId self, int num_nodes, SymmetricCache* cache, MessageSink* sink)
      : self_(self), num_nodes_(num_nodes), cache_(cache), sink_(sink) {}
  virtual ~CoherenceEngine() = default;
  CoherenceEngine(const CoherenceEngine&) = delete;
  CoherenceEngine& operator=(const CoherenceEngine&) = delete;

  // A put that hit the cache.  `done` fires when the write completes under the
  // model's rules (SC: immediately; Lin: after all acks + update broadcast).
  virtual WriteResult Write(Key key, const Value& value, WriteDone done) = 0;

  // A get that hit the cache.  kHit: *value/*ts are filled and `done` is not
  // used.  kBlocked (Lin): the entry is in a transient state; `done` fires when
  // it becomes readable.
  virtual ReadResult Read(Key key, Value* value, Timestamp* ts, ReadDone done) = 0;

  // Incoming protocol messages.
  virtual void OnUpdate(NodeId from, const UpdateMsg& msg) = 0;
  virtual void OnInvalidate(NodeId from, const InvalidateMsg& msg) = 0;
  virtual void OnAck(NodeId from, const AckMsg& msg) = 0;

  // The host filled a kFilling entry (epoch machinery): wakes blocked readers
  // and starts writes that queued while the entry awaited its value.
  void OnFilled(Key key) {
    WakeReaders(key);
    StartQueuedWrites(key);
  }

  // --- hot-set membership hooks (epoch machinery) ---
  //
  // The engine owns per-key transient state (in-flight writes, queued local
  // writes, parked readers) that an eviction would strand: a Lin write whose
  // entry disappears can never collect its acks, so its session hangs and
  // Quiescent() stays false forever.  Hosts must therefore ask EvictionSafe
  // before removing a key from the hot set, defer the eviction when it says
  // no, and call OnEvicted right after the entry is gone.

  // True when `key` can leave the hot set without stranding protocol state:
  // no parked readers, no queued local writes and (Lin) no in-flight write.
  virtual bool EvictionSafe(Key key) const;

  // Notification that `key` left the hot set (its cache entry is already
  // gone).  Requires EvictionSafe(key); drops empty per-key bookkeeping.
  virtual void OnEvicted(Key key);

  virtual ConsistencyModel model() const = 0;
  const EngineStats& stats() const { return stats_; }

  // Gives the reused broadcast scratch its value capacity up front.  Without
  // this, the node's FIRST cache-hot write pays the scratch's one string
  // growth — which lands inside the measured window (and trips the zero-alloc
  // audit) whenever warmup happened not to write a hot key, e.g. under
  // node-strided skew where most of a node's writes miss the shared cache.
  void PrewarmScratch(std::size_t value_bytes) {
    update_scratch_.value.reserve(value_bytes);
  }

  // True when no write is in flight and no reader is parked (quiescence; used
  // by tests and the model checker's deadlock detection).
  virtual bool Quiescent() const;

 protected:
  void ParkReader(Key key, ReadDone done) {
    ++stats_.reads_blocked;
    parked_readers_[key].push_back(std::move(done));
  }

  // Delivers the entry's current value to every reader parked on `key`.
  void WakeReaders(Key key);

  // Starts local writes queued behind a kFilling entry (or, Lin, behind an
  // in-flight write) once the entry can accept them.  SC drains the whole
  // queue inline; Lin starts the head and lets its completion chain the rest.
  virtual void StartQueuedWrites(Key key) = 0;

  // Queues (value, done) until StartQueuedWrites releases it.
  void QueueWrite(Key key, const Value& value, WriteDone done) {
    ++stats_.local_writes_queued;
    queued_writes_[key].emplace_back(value, std::move(done));
  }

  NodeId self_;
  int num_nodes_;
  SymmetricCache* cache_;
  MessageSink* sink_;
  EngineStats stats_;
  std::unordered_map<Key, std::vector<ReadDone>> parked_readers_;
  std::unordered_map<Key, std::deque<std::pair<Value, WriteDone>>> queued_writes_;

  // Reused across broadcasts so the value's string capacity survives; building
  // a fresh UpdateMsg per write would allocate on every put (hot path).
  UpdateMsg update_scratch_;
};

// Per-key Sequential Consistency (§5.2, "SC Protocol").
class ScEngine final : public CoherenceEngine {
 public:
  using CoherenceEngine::CoherenceEngine;

  WriteResult Write(Key key, const Value& value, WriteDone done) override;
  ReadResult Read(Key key, Value* value, Timestamp* ts, ReadDone done) override;
  void OnUpdate(NodeId from, const UpdateMsg& msg) override;
  void OnInvalidate(NodeId from, const InvalidateMsg& msg) override;
  void OnAck(NodeId from, const AckMsg& msg) override;

  ConsistencyModel model() const override { return ConsistencyModel::kSc; }

 private:
  void StartQueuedWrites(Key key) override;
  void ApplyWrite(Key key, CacheEntry* entry, const Value& value, WriteDone done);
};

// Per-key Linearizability (§5.2, "Lin Protocol").
class LinEngine final : public CoherenceEngine {
 public:
  using CoherenceEngine::CoherenceEngine;

  WriteResult Write(Key key, const Value& value, WriteDone done) override;
  ReadResult Read(Key key, Value* value, Timestamp* ts, ReadDone done) override;
  void OnUpdate(NodeId from, const UpdateMsg& msg) override;
  void OnInvalidate(NodeId from, const InvalidateMsg& msg) override;
  void OnAck(NodeId from, const AckMsg& msg) override;

  ConsistencyModel model() const override { return ConsistencyModel::kLin; }

  bool Quiescent() const override {
    return CoherenceEngine::Quiescent() && pending_done_.empty();
  }

  bool EvictionSafe(Key key) const override {
    return CoherenceEngine::EvictionSafe(key) && pending_done_.count(key) == 0;
  }

 private:
  void StartQueuedWrites(Key key) override;
  void StartWrite(Key key, CacheEntry* entry, const Value& value, WriteDone done);
  void CompleteWrite(Key key, CacheEntry* entry);

  // done-callbacks of in-flight writes, keyed by key.
  std::unordered_map<Key, WriteDone> pending_done_;
};

}  // namespace cckvs

#endif  // CCKVS_PROTOCOL_ENGINE_H_
