#include "src/protocol/engine.h"

#include <utility>

#include "src/common/check.h"

namespace cckvs {

bool CoherenceEngine::Quiescent() const {
  for (const auto& [key, readers] : parked_readers_) {
    if (!readers.empty()) {
      return false;
    }
  }
  for (const auto& [key, writes] : queued_writes_) {
    if (!writes.empty()) {
      return false;
    }
  }
  return true;
}

bool CoherenceEngine::EvictionSafe(Key key) const {
  if (auto it = parked_readers_.find(key);
      it != parked_readers_.end() && !it->second.empty()) {
    return false;
  }
  if (auto it = queued_writes_.find(key);
      it != queued_writes_.end() && !it->second.empty()) {
    return false;
  }
  return true;
}

void CoherenceEngine::OnEvicted(Key key) {
  CCKVS_DCHECK(EvictionSafe(key));
  parked_readers_.erase(key);
  queued_writes_.erase(key);
}

void CoherenceEngine::WakeReaders(Key key) {
  auto it = parked_readers_.find(key);
  if (it == parked_readers_.end() || it->second.empty()) {
    return;
  }
  CacheEntry* entry = cache_->Find(key);
  if (entry == nullptr || entry->state() != CacheState::kValid) {
    return;  // still not readable; keep them parked
  }
  std::vector<ReadDone> readers = std::move(it->second);
  parked_readers_.erase(it);
  for (ReadDone& done : readers) {
    done(entry->value, entry->ts());
  }
}

// ---------------------------------------------------------------------------
// ScEngine
// ---------------------------------------------------------------------------

CoherenceEngine::WriteResult ScEngine::Write(Key key, const Value& value,
                                             WriteDone done) {
  CacheEntry* entry = cache_->Find(key);
  CCKVS_CHECK(entry != nullptr);
  ++stats_.writes;
  if (entry->state() == CacheState::kFilling) {
    // Writing over an unfilled entry would restart the key's Lamport clock at
    // 1 and could reuse a timestamp from before the key left the hot set;
    // wait for the fill, which carries the clock the shard reached.
    QueueWrite(key, value, std::move(done));
    return WriteResult::kPending;
  }
  ApplyWrite(key, entry, value, std::move(done));
  return WriteResult::kCompleted;
}

void ScEngine::ApplyWrite(Key key, CacheEntry* entry, const Value& value,
                          WriteDone done) {
  // Burckhardt-style: bump the Lamport clock, apply locally, broadcast, return.
  // Writes are asynchronous and reads that follow observe the new value at once.
  const Timestamp ts{entry->header.version + 1, self_};
  entry->value = value;
  entry->value_ts = ts;
  entry->set_ts(ts);
  entry->set_state(CacheState::kValid);
  entry->dirty = true;
  update_scratch_.key = key;
  update_scratch_.value = value;  // copy-assign reuses the scratch's capacity
  update_scratch_.ts = ts;
  sink_->BroadcastUpdate(update_scratch_);
  ++stats_.writes_completed;
  if (done != nullptr) {
    done();
  }
  WakeReaders(key);
}

void ScEngine::StartQueuedWrites(Key key) {
  auto it = queued_writes_.find(key);
  if (it == queued_writes_.end()) {
    return;
  }
  while (!it->second.empty()) {
    auto [value, done] = std::move(it->second.front());
    it->second.pop_front();
    CacheEntry* entry = cache_->Find(key);
    CCKVS_CHECK(entry != nullptr);  // queued writes defer eviction
    ApplyWrite(key, entry, value, std::move(done));
  }
  queued_writes_.erase(key);
}

CoherenceEngine::ReadResult ScEngine::Read(Key key, Value* value, Timestamp* ts,
                                           ReadDone done) {
  CacheEntry* entry = cache_->Find(key);
  CCKVS_CHECK(entry != nullptr);
  if (entry->state() == CacheState::kValid) {
    ++stats_.reads_hit;
    if (value != nullptr) {
      *value = entry->value;
    }
    if (ts != nullptr) {
      *ts = entry->ts();
    }
    return ReadResult::kHit;
  }
  // Only kFilling is reachable under SC (no Invalid/Write states).
  CCKVS_DCHECK(entry->state() == CacheState::kFilling);
  ParkReader(key, std::move(done));
  return ReadResult::kBlocked;
}

void ScEngine::OnUpdate(NodeId from, const UpdateMsg& msg) {
  (void)from;
  CacheEntry* entry = cache_->Find(msg.key);
  if (entry == nullptr) {
    return;  // key left the hot set (epoch churn); nothing to keep consistent
  }
  // Apply iff newer: bigger Lamport clock, writer id as tie-breaker.
  if (msg.ts > entry->ts()) {
    entry->value = msg.value;
    entry->value_ts = msg.ts;
    entry->set_ts(msg.ts);
    entry->set_state(CacheState::kValid);
    entry->dirty = true;
    ++stats_.updates_applied;
    WakeReaders(msg.key);
    // A remote update can be what makes a kFilling entry readable (the fill
    // itself will then be discarded as stale): release queued writes too.
    StartQueuedWrites(msg.key);
  } else {
    ++stats_.updates_discarded;
  }
}

void ScEngine::OnInvalidate(NodeId from, const InvalidateMsg& msg) {
  (void)from;
  (void)msg;
  CCKVS_CHECK(false && "SC protocol has no invalidations");
}

void ScEngine::OnAck(NodeId from, const AckMsg& msg) {
  (void)from;
  (void)msg;
  CCKVS_CHECK(false && "SC protocol has no acks");
}

// ---------------------------------------------------------------------------
// LinEngine
// ---------------------------------------------------------------------------

CoherenceEngine::WriteResult LinEngine::Write(Key key, const Value& value,
                                              WriteDone done) {
  CacheEntry* entry = cache_->Find(key);
  CCKVS_CHECK(entry != nullptr);
  ++stats_.writes;
  if (entry->write_in_flight || entry->state() == CacheState::kFilling) {
    // One in-flight write per key per node; later local writes queue behind it
    // (sessions on this node remain in session order).  Writes over unfilled
    // entries queue too: starting from version 0 would restart the key's
    // Lamport clock and could reuse a timestamp from a previous hot-set era.
    QueueWrite(key, value, std::move(done));
    return WriteResult::kPending;
  }
  StartWrite(key, entry, value, std::move(done));
  return WriteResult::kPending;
}

void LinEngine::StartQueuedWrites(Key key) {
  CacheEntry* entry = cache_->Find(key);
  if (entry == nullptr || entry->write_in_flight ||
      entry->state() == CacheState::kFilling) {
    return;
  }
  auto it = queued_writes_.find(key);
  if (it == queued_writes_.end() || it->second.empty()) {
    return;
  }
  auto [value, done] = std::move(it->second.front());
  it->second.pop_front();
  StartWrite(key, entry, value, std::move(done));
}

void LinEngine::StartWrite(Key key, CacheEntry* entry, const Value& value,
                           WriteDone done) {
  // Transition to the transient Write state and broadcast invalidations carrying
  // the new timestamp (Figure 7, phase 1).
  const Timestamp ts{entry->header.version + 1, self_};
  entry->set_ts(ts);
  entry->set_state(CacheState::kWrite);
  entry->write_in_flight = true;
  entry->pending_ts = ts;
  entry->pending_value = value;
  entry->superseded = false;
  entry->has_shadow = false;
  entry->header.ack_count = 0;
  pending_done_[key] = std::move(done);
  sink_->BroadcastInvalidate(InvalidateMsg{key, ts});
  if (num_nodes_ == 1) {
    CompleteWrite(key, entry);  // no sharers to invalidate
  }
}

void LinEngine::CompleteWrite(Key key, CacheEntry* entry) {
  // Phase 2: all sharers acknowledged; broadcast the value, then the put returns.
  // The old value is now invisible at every replica, which is what makes the
  // early return linearizable.
  update_scratch_.key = key;
  update_scratch_.value = entry->pending_value;  // copy-assign reuses capacity
  update_scratch_.ts = entry->pending_ts;
  sink_->BroadcastUpdate(update_scratch_);
  entry->write_in_flight = false;
  entry->header.ack_count = 0;
  if (!entry->superseded) {
    CCKVS_DCHECK(entry->ts() == entry->pending_ts);
    entry->value = entry->pending_value;
    entry->value_ts = entry->pending_ts;
    entry->set_state(CacheState::kValid);
    entry->dirty = true;
  } else {
    ++stats_.writes_superseded;
    if (entry->has_shadow && entry->shadow_ts == entry->ts()) {
      // The superseding writer's update already arrived; install it.
      entry->value = entry->shadow_value;
      entry->value_ts = entry->shadow_ts;
      entry->set_state(CacheState::kValid);
      entry->dirty = true;
      entry->has_shadow = false;
    } else {
      entry->set_state(CacheState::kInvalid);  // its update is still in flight
    }
  }
  ++stats_.writes_completed;
  auto done_it = pending_done_.find(key);
  CCKVS_CHECK(done_it != pending_done_.end());
  WriteDone done = std::move(done_it->second);
  pending_done_.erase(done_it);
  if (done != nullptr) {
    done();
  }
  if (entry->state() == CacheState::kValid) {
    WakeReaders(key);
  }
  StartQueuedWrites(key);  // next queued local write, if any
}

CoherenceEngine::ReadResult LinEngine::Read(Key key, Value* value, Timestamp* ts,
                                            ReadDone done) {
  CacheEntry* entry = cache_->Find(key);
  CCKVS_CHECK(entry != nullptr);
  if (entry->state() == CacheState::kValid) {
    ++stats_.reads_hit;
    if (value != nullptr) {
      *value = entry->value;
    }
    if (ts != nullptr) {
      *ts = entry->ts();
    }
    return ReadResult::kHit;
  }
  // "A read request under Lin may hit in the cache but it may not succeed, if
  // the key-value pair is in Invalid state" (§6.2) — it waits for the update.
  ParkReader(key, std::move(done));
  return ReadResult::kBlocked;
}

void LinEngine::OnInvalidate(NodeId from, const InvalidateMsg& msg) {
  CacheEntry* entry = cache_->Find(msg.key);
  // Invalidations are acknowledged unconditionally — even when stale or for a
  // key that just left the hot set — otherwise the writer deadlocks.
  sink_->SendAck(from, AckMsg{msg.key, msg.ts});
  if (entry == nullptr) {
    return;
  }
  if (msg.ts > entry->ts()) {
    ++stats_.invalidations_applied;
    entry->set_ts(msg.ts);
    if (entry->state() == CacheState::kWrite) {
      // A concurrent writer with a higher timestamp wins; our in-flight write
      // keeps collecting acks but will yield to the newer write on completion.
      entry->superseded = true;
    } else {
      const bool was_filling = entry->state() == CacheState::kFilling;
      entry->set_state(CacheState::kInvalid);
      if (was_filling) {
        // The entry left kFilling without a fill: its clock is live now, so
        // writes queued behind the fill may start (bumping past msg.ts).
        StartQueuedWrites(msg.key);
      }
    }
  } else {
    ++stats_.invalidations_stale;
  }
}

void LinEngine::OnAck(NodeId from, const AckMsg& msg) {
  (void)from;
  CacheEntry* entry = cache_->Find(msg.key);
  if (entry == nullptr || !entry->write_in_flight || msg.ts != entry->pending_ts) {
    // Ack for a write that is no longer pending (e.g. the key churned out of
    // the hot set mid-write).  Safe to drop.
    return;
  }
  ++stats_.acks_received;
  ++entry->header.ack_count;
  if (entry->header.ack_count == static_cast<std::uint8_t>(num_nodes_ - 1)) {
    CompleteWrite(msg.key, entry);
  }
}

void LinEngine::OnUpdate(NodeId from, const UpdateMsg& msg) {
  (void)from;
  CacheEntry* entry = cache_->Find(msg.key);
  if (entry == nullptr) {
    return;
  }
  if (entry->state() == CacheState::kWrite) {
    // Our own write is mid-flight.  Buffer newer values; install on completion.
    if (msg.ts > entry->ts()) {
      // The update overtook its invalidation (UD gives no ordering).
      entry->set_ts(msg.ts);
      entry->superseded = true;
      entry->shadow_ts = msg.ts;
      entry->shadow_value = msg.value;
      entry->has_shadow = true;
      ++stats_.updates_applied;
    } else if (entry->superseded && msg.ts == entry->ts()) {
      // The update matching the invalidation that superseded us.
      entry->shadow_ts = msg.ts;
      entry->shadow_value = msg.value;
      entry->has_shadow = true;
      ++stats_.updates_applied;
    } else {
      ++stats_.updates_discarded;
    }
    return;
  }
  if ((entry->state() == CacheState::kInvalid && msg.ts == entry->ts()) ||
      msg.ts > entry->ts()) {
    // Either the update we were invalidated for, or a newer one that overtook
    // its invalidation; both install directly.
    entry->value = msg.value;
    entry->value_ts = msg.ts;
    entry->set_ts(msg.ts);
    entry->set_state(CacheState::kValid);
    entry->dirty = true;
    ++stats_.updates_applied;
    WakeReaders(msg.key);
    StartQueuedWrites(msg.key);  // the entry may have been kFilling until now
  } else {
    ++stats_.updates_discarded;
  }
}

}  // namespace cckvs
