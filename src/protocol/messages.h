// Consistency-protocol messages (§5.2) and their wire serialization.

#ifndef CCKVS_PROTOCOL_MESSAGES_H_
#define CCKVS_PROTOCOL_MESSAGES_H_

#include "src/common/types.h"
#include "src/rdma/serialize.h"

namespace cckvs {

// SC and Lin phase-2: carries the new value.  The writer id travels as the
// message source, so only key + clock ride in the payload (see WireFormat).
struct UpdateMsg {
  Key key = 0;
  Value value;
  Timestamp ts{};
};

// Lin phase-1.
struct InvalidateMsg {
  Key key = 0;
  Timestamp ts{};
};

// Lin phase-1 response, unicast back to the writer.
struct AckMsg {
  Key key = 0;
  Timestamp ts{};
};

inline void Serialize(const UpdateMsg& m, Buffer* out) {
  BufferWriter w(out);
  w.PutU64(m.key);
  w.PutU32(m.ts.clock);
  w.PutU8(m.ts.writer);
  w.PutString(m.value);
}

inline UpdateMsg DeserializeUpdate(const Buffer& in) {
  BufferReader r(in);
  UpdateMsg m;
  m.key = r.GetU64();
  m.ts.clock = r.GetU32();
  m.ts.writer = static_cast<NodeId>(r.GetU8());
  m.value = r.GetString();
  return m;
}

inline void Serialize(const InvalidateMsg& m, Buffer* out) {
  BufferWriter w(out);
  w.PutU64(m.key);
  w.PutU32(m.ts.clock);
  w.PutU8(m.ts.writer);
}

inline InvalidateMsg DeserializeInvalidate(const Buffer& in) {
  BufferReader r(in);
  InvalidateMsg m;
  m.key = r.GetU64();
  m.ts.clock = r.GetU32();
  m.ts.writer = static_cast<NodeId>(r.GetU8());
  return m;
}

inline void Serialize(const AckMsg& m, Buffer* out) {
  BufferWriter w(out);
  w.PutU64(m.key);
  w.PutU32(m.ts.clock);
  w.PutU8(m.ts.writer);
}

inline AckMsg DeserializeAck(const Buffer& in) {
  BufferReader r(in);
  AckMsg m;
  m.key = r.GetU64();
  m.ts.clock = r.GetU32();
  m.ts.writer = static_cast<NodeId>(r.GetU8());
  return m;
}

}  // namespace cckvs

#endif  // CCKVS_PROTOCOL_MESSAGES_H_
