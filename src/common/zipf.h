// Zipfian popularity modelling (§2.1 of the paper).
//
// Item popularity follows a power law: the item of rank r is requested with
// probability proportional to r^-alpha.  The paper uses alpha in {0.90, 0.99, 1.01}
// over a 250 M-key dataset.  This module provides:
//
//  * GeneralizedHarmonic  -- H(n, alpha) = sum_{r=1..n} r^-alpha, exact for small n
//    and Euler-Maclaurin-accelerated for huge n (needed for 250 M keys).
//  * ZipfCdf              -- probability mass of the top-k ranks; this is exactly the
//    expected hit rate of a cache holding the k hottest keys (Figure 3).
//  * ZipfSampler          -- O(1) rejection-inversion sampling (Hormann & Derflinger),
//    valid for any alpha > 0 and n up to 2^62.
//  * KeyScrambler         -- a seeded Feistel bijection [0,n) -> [0,n) that maps
//    popularity ranks to key ids, so hot keys land on pseudo-random shards.

#ifndef CCKVS_COMMON_ZIPF_H_
#define CCKVS_COMMON_ZIPF_H_

#include <cstdint>

#include "src/common/rng.h"

namespace cckvs {

// Returns H(n, alpha) = sum_{r=1}^{n} r^-alpha.
//
// Exact summation for n <= 2^20; for larger n the head is summed exactly and the
// tail is approximated with a fourth-order Euler-Maclaurin expansion (relative
// error < 1e-12 for alpha in [0, 4]).
double GeneralizedHarmonic(std::uint64_t n, double alpha);

// P[rank <= k] for a Zipf(alpha) distribution over n ranks.  Equals the expected
// hit rate of a perfect cache of the k hottest items.
double ZipfCdf(std::uint64_t k, std::uint64_t n, double alpha);

// Probability of an individual rank (1-based).
double ZipfPmf(std::uint64_t rank, std::uint64_t n, double alpha);

// Draws ranks in [1, n] with P[r] proportional to r^-alpha.
//
// alpha == 0 degenerates to the uniform distribution.  The sampler owns no RNG;
// the caller passes one in so deterministic replay stays in the caller's control.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  // Returns a rank in [1, n].
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  static double Pow(double x, double y);

  std::uint64_t n_;
  double alpha_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_integral_x1_ = 0.0;
  double h_integral_n_ = 0.0;
  double s_ = 0.0;
};

// Seeded bijection on [0, n): maps popularity rank to key id.
//
// Implemented as a 4-round Feistel network over the smallest even-width binary
// domain covering n, with cycle-walking to stay inside [0, n).  Being a true
// bijection matters: every rank maps to a distinct key, so partition load in
// Figure 1 reflects the hash-sharding of the paper rather than collision noise.
class KeyScrambler {
 public:
  KeyScrambler(std::uint64_t n, std::uint64_t seed);

  // rank is 0-based here; callers adapt from the sampler's 1-based ranks.
  std::uint64_t RankToKey(std::uint64_t rank) const;

  std::uint64_t n() const { return n_; }

 private:
  std::uint64_t FeistelOnce(std::uint64_t x) const;

  std::uint64_t n_;
  int half_bits_;
  std::uint64_t half_mask_;
  std::uint64_t round_keys_[4];
};

}  // namespace cckvs

#endif  // CCKVS_COMMON_ZIPF_H_
