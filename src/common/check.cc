#include "src/common/check.h"

namespace cckvs {
namespace internal {

void CheckFail(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "%s:%d  %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cckvs
