// Hash functions used for sharding and store indexing.

#ifndef CCKVS_COMMON_HASH_H_
#define CCKVS_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace cckvs {

// 64-bit avalanche finalizer (MurmurHash3 fmix64).  Bijective on uint64.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// FNV-1a over arbitrary bytes; used where we hash strings (e.g. ring vnode tags).
inline std::uint64_t Fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

// Canonical key hash used across the KVS, the cache and the partitioners so a
// key maps consistently everywhere.
inline std::uint64_t HashKey(std::uint64_t key) { return Mix64(key); }

}  // namespace cckvs

#endif  // CCKVS_COMMON_HASH_H_
