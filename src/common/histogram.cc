#include "src/common/histogram.h"

#include <algorithm>
#include <bit>

#include "src/common/check.h"

namespace cckvs {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBucketBits;
  const auto sub = static_cast<int>(value >> shift) - kSubBuckets;
  const int index = (shift + 1) * kSubBuckets + sub;
  CCKVS_DCHECK_LT(index, kBucketCount);
  return index;
}

std::uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return static_cast<std::uint64_t>(index);
  }
  const int shift = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets + kSubBuckets;
  return ((static_cast<std::uint64_t>(sub) + 1) << shift) - 1;
}

void Histogram::Record(std::uint64_t value) {
  buckets_[static_cast<std::size_t>(BucketIndex(value))]++;
  ++count_;
  sum_ += value;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void Histogram::Merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  CCKVS_DCHECK(q >= 0.0 && q <= 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= target) {
      return BucketUpperBound(i) < max_ ? BucketUpperBound(i) : max_;
    }
  }
  return max_;
}

}  // namespace cckvs
