#include "src/common/zipf.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {
namespace {

// Threshold below which H(n, alpha) is computed by direct summation.
constexpr std::uint64_t kExactSumLimit = 1u << 20;

// Direct sum of r^-alpha for r in [lo, hi], summed from small terms up for
// numerical stability.
double DirectSum(std::uint64_t lo, std::uint64_t hi, double alpha) {
  double sum = 0.0;
  for (std::uint64_t r = hi; r >= lo; --r) {
    sum += std::pow(static_cast<double>(r), -alpha);
    if (r == lo) {
      break;  // avoid wrap when lo == 0 never happens, but r-- at lo==1 would.
    }
  }
  return sum;
}

// Integral of x^-alpha from a to b.
double PowerIntegral(double a, double b, double alpha) {
  if (alpha == 1.0) {
    return std::log(b) - std::log(a);
  }
  return (std::pow(b, 1.0 - alpha) - std::pow(a, 1.0 - alpha)) / (1.0 - alpha);
}

}  // namespace

double GeneralizedHarmonic(std::uint64_t n, double alpha) {
  CCKVS_CHECK_GE(alpha, 0.0);
  if (n == 0) {
    return 0.0;
  }
  if (alpha == 0.0) {
    return static_cast<double>(n);
  }
  if (n <= kExactSumLimit) {
    return DirectSum(1, n, alpha);
  }
  // Head: exact.  Tail [m+1, n]: Euler-Maclaurin around the integral.
  const std::uint64_t m = kExactSumLimit;
  const double head = DirectSum(1, m, alpha);
  const auto a = static_cast<double>(m + 1);
  const auto b = static_cast<double>(n);
  const double fa = std::pow(a, -alpha);
  const double fb = std::pow(b, -alpha);
  // f'(x) = -alpha x^-(alpha+1)
  const double dfa = -alpha * std::pow(a, -alpha - 1.0);
  const double dfb = -alpha * std::pow(b, -alpha - 1.0);
  // f'''(x) = -alpha(alpha+1)(alpha+2) x^-(alpha+3)
  const double d3fa = -alpha * (alpha + 1.0) * (alpha + 2.0) * std::pow(a, -alpha - 3.0);
  const double d3fb = -alpha * (alpha + 1.0) * (alpha + 2.0) * std::pow(b, -alpha - 3.0);
  double tail = PowerIntegral(a, b, alpha);
  tail += 0.5 * (fa + fb);
  tail += (dfb - dfa) / 12.0;
  tail -= (d3fb - d3fa) / 720.0;
  return head + tail;
}

double ZipfCdf(std::uint64_t k, std::uint64_t n, double alpha) {
  CCKVS_CHECK_GE(n, 1u);
  if (k == 0) {
    return 0.0;
  }
  if (k >= n) {
    return 1.0;
  }
  return GeneralizedHarmonic(k, alpha) / GeneralizedHarmonic(n, alpha);
}

double ZipfPmf(std::uint64_t rank, std::uint64_t n, double alpha) {
  CCKVS_CHECK_GE(rank, 1u);
  CCKVS_CHECK_LE(rank, n);
  return std::pow(static_cast<double>(rank), -alpha) / GeneralizedHarmonic(n, alpha);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  CCKVS_CHECK_GE(n, 1u);
  CCKVS_CHECK_GE(alpha, 0.0);
  if (alpha_ > 0.0) {
    h_integral_x1_ = HIntegral(1.5) - 1.0;
    h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - Pow(2.0, -alpha_));
  }
}

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  // (x^(1-alpha) - 1) / (1 - alpha), continuous at alpha == 1 where it is log x.
  const double t = log_x * (1.0 - alpha_);
  if (std::abs(t) < 1e-8) {
    // Series expansion near alpha == 1 for numerical stability.
    return log_x * (1.0 + t / 2.0 + t * t / 6.0);
  }
  return std::expm1(t) / (1.0 - alpha_);
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) {
    t = -1.0;  // guard against rounding below the domain boundary
  }
  if (std::abs(t) < 1e-8) {
    return std::exp(x * (1.0 - t / 2.0 + t * t / 3.0));
  }
  return std::exp(std::log1p(t) / (1.0 - alpha_));
}

double ZipfSampler::Pow(double x, double y) { return std::exp(y * std::log(x)); }

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (alpha_ == 0.0) {
    return 1 + rng.NextBounded(n_);
  }
  // Rejection-inversion (Hormann & Derflinger 1996), as popularized by the
  // Apache Commons RejectionInversionZipfSampler.
  while (true) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const auto kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= HIntegral(kd + 0.5) - Pow(kd, -alpha_)) {
      return k;
    }
  }
}

KeyScrambler::KeyScrambler(std::uint64_t n, std::uint64_t seed) : n_(n) {
  CCKVS_CHECK_GE(n, 1u);
  // Smallest even bit-width 2w with 2^(2w) >= n.
  int bits = 2;
  while (bits < 64 && n > (1ull << bits)) {
    bits += 2;
  }
  half_bits_ = bits / 2;
  half_mask_ = (half_bits_ == 64) ? ~0ull : ((1ull << half_bits_) - 1);
  std::uint64_t sm = seed ^ 0xa076'1d64'78bd'642full;
  for (auto& rk : round_keys_) {
    rk = SplitMix64(sm);
  }
}

std::uint64_t KeyScrambler::FeistelOnce(std::uint64_t x) const {
  std::uint64_t left = x >> half_bits_;
  std::uint64_t right = x & half_mask_;
  for (const std::uint64_t rk : round_keys_) {
    const std::uint64_t f = Mix64(right ^ rk) & half_mask_;
    const std::uint64_t new_left = right;
    right = left ^ f;
    left = new_left;
  }
  return (left << half_bits_) | right;
}

std::uint64_t KeyScrambler::RankToKey(std::uint64_t rank) const {
  CCKVS_DCHECK_LT(rank, n_);
  // Cycle-walk until the permuted value falls back inside [0, n).  The walk
  // terminates because the Feistel network is a permutation of the cover domain.
  std::uint64_t x = rank;
  do {
    x = FeistelOnce(x);
  } while (x >= n_);
  return x;
}

}  // namespace cckvs
