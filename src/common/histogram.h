// Latency histogram with HDR-style log-linear buckets.
//
// Used by the simulator's client sessions to produce the average / 95th-percentile
// latency series of Figure 13c.  Values are recorded in nanoseconds; relative
// quantization error is bounded by 1/kSubBuckets.

#ifndef CCKVS_COMMON_HISTOGRAM_H_
#define CCKVS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace cckvs {

class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // q in [0, 1]; returns an upper bound of the bucket containing the quantile.
  std::uint64_t Quantile(double q) const;
  std::uint64_t P50() const { return Quantile(0.50); }
  std::uint64_t P95() const { return Quantile(0.95); }
  std::uint64_t P99() const { return Quantile(0.99); }

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per power of two
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Shifts run 0..63-kSubBucketBits inclusive, so BucketIndex can reach
  // (64 - kSubBucketBits + 1) * kSubBuckets - 1 for values near 2^64.
  static constexpr int kBucketCount = (64 - kSubBucketBits + 1) * kSubBuckets;

  static int BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace cckvs

#endif  // CCKVS_COMMON_HISTOGRAM_H_
