// Per-thread heap-allocation counter for the zero-alloc hot-path assertion.
//
// The live runtime's performance claim (docs/PERFORMANCE.md) is that a
// steady-state node thread performs ZERO heap allocations per operation:
// WireBatch slots, codec scratch, channel rings and value buffers are all
// reused.  This tracker makes that claim testable: a thread opt-ins with
// EnableThread(), every global operator new on that thread increments a
// thread-local counter (deletes do not count — freeing during teardown is
// fine), and the run loop asserts ThreadCount() == 0 over the measured
// window when LiveRackParams::alloc_assert is set.
//
// The counting operator new/delete replacements live in alloc_tracker.cc and
// are linked into every binary that pulls in cckvs_common.  They are
// compiled OUT under ASan/TSan (the sanitizers intercept the allocator
// themselves); TrackerAvailable() tells callers whether counts mean anything
// so tests can skip instead of asserting vacuously.

#ifndef CCKVS_COMMON_ALLOC_TRACKER_H_
#define CCKVS_COMMON_ALLOC_TRACKER_H_

#include <cstdint>

namespace cckvs::alloc {

// True when the counting operator new is compiled in (i.e. not a sanitizer
// build).  When false, ThreadCount() is always zero and asserts on it are
// meaningless — skip them.
bool TrackerAvailable();

// Starts counting allocations made by the calling thread.
void EnableThread();

// Stops counting (the counter keeps its value).
void DisableThread();

// Allocations made by the calling thread while enabled, since the last
// ResetThread().
std::uint64_t ThreadCount();

// Zeroes the calling thread's counter.
void ResetThread();

}  // namespace cckvs::alloc

#endif  // CCKVS_COMMON_ALLOC_TRACKER_H_
