// Core value types shared by every ccKVS module.
//
// The sizes mirror the paper's metadata layout (§6.2): 8 B keys, a 4 B Lamport
// clock ("version") and a 1 B writer id together form the Lamport timestamp used
// by both consistency protocols.

#ifndef CCKVS_COMMON_TYPES_H_
#define CCKVS_COMMON_TYPES_H_

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

namespace cckvs {

// Keys are 8 bytes, as in the paper's evaluation (§7.2).
using Key = std::uint64_t;

// Values are opaque byte strings (40 B to 1 KB in the paper's experiments).
using Value = std::string;

// Node (server/machine) identifier.  One byte, like the paper's writer id.
using NodeId = std::uint8_t;

// A client session (§5.1).  Sessions issue gets/puts in session order.
using SessionId = std::uint32_t;

// Simulated time in nanoseconds.
using SimTime = std::uint64_t;

// Lamport timestamp: logical clock plus writer id as the tie-breaker (§5.2).
// Total order: compare clocks first, then writer ids.
struct Timestamp {
  std::uint32_t clock = 0;
  NodeId writer = 0;

  friend auto operator<=>(const Timestamp& a, const Timestamp& b) {
    if (auto c = a.clock <=> b.clock; c != 0) {
      return c;
    }
    return a.writer <=> b.writer;
  }
  friend bool operator==(const Timestamp&, const Timestamp&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Timestamp& ts) {
  return os << ts.clock << ":" << static_cast<int>(ts.writer);
}

// Operation kind for requests flowing through the system.
enum class OpType : std::uint8_t {
  kGet,
  kPut,
};

inline const char* ToString(OpType op) {
  return op == OpType::kGet ? "GET" : "PUT";
}

}  // namespace cckvs

#endif  // CCKVS_COMMON_TYPES_H_
