// Cycle-accurate timestamps for scheduler-noise-free latency measurement.
//
// clock_gettime costs ~20-30ns per call and two of them bracket every op in
// the live run loop; rdtsc costs ~6ns and does not serialize.  The live
// latency histogram (Fig 13c comparability) is fed from CycleNow() deltas
// converted once at completion via CyclesToNs().
//
// Calibration: CyclesPerNs() measures rdtsc against steady_clock over ~10ms
// on first use (function-local static).  Call it once at thread start —
// before any measured window, and before enabling the allocation tracker —
// so the calibration cost never lands inside a measurement.

#ifndef CCKVS_COMMON_CYCLES_H_
#define CCKVS_COMMON_CYCLES_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define CCKVS_HAVE_RDTSC 1
#else
#define CCKVS_HAVE_RDTSC 0
#endif

namespace cckvs {

// Monotonic-enough cycle counter: rdtsc on x86-64 (constant_tsc is assumed,
// as on every production part this decade), steady_clock nanoseconds
// elsewhere (CyclesPerNs() then calibrates to ~1.0 and the math still holds).
inline std::uint64_t CycleNow() {
#if CCKVS_HAVE_RDTSC
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Cycles per nanosecond, calibrated once per process on first call (~10ms).
inline double CyclesPerNs() {
  static const double kCyclesPerNs = [] {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = CycleNow();
    // Busy-wait ~10ms; sleep would let the TSC drift-measure the scheduler.
    while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(10)) {
    }
    const std::uint64_t c1 = CycleNow();
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - t0);
    const double ns = static_cast<double>(elapsed.count());
    const double cycles = static_cast<double>(c1 - c0);
    return ns > 0 && cycles > 0 ? cycles / ns : 1.0;
  }();
  return kCyclesPerNs;
}

inline std::uint64_t CyclesToNs(std::uint64_t cycles) {
  return static_cast<std::uint64_t>(static_cast<double>(cycles) / CyclesPerNs());
}

}  // namespace cckvs

#endif  // CCKVS_COMMON_CYCLES_H_
