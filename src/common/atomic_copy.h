// Relaxed atomic memory copies for seqlock-protected data (§6.2).
//
// A seqlock reader deliberately races with the writer: it copies bytes out
// while a writer may be storing them, then discards the copy when the version
// check fails.  The algorithm is correct, but expressing it with plain
// loads/stores is a data race in the C++ memory model — and ThreadSanitizer
// rightly flags it.  These helpers perform the copy through relaxed atomic
// word accesses instead: same machine code on x86/ARM for the aligned bulk,
// race-free by construction, so the live multithreaded runtime runs the exact
// paper data path under TSan.
//
// Only the *copy* is relaxed; ordering comes from the seqlock's acquire/release
// version accesses, exactly as in the plain formulation.

#ifndef CCKVS_COMMON_ATOMIC_COPY_H_
#define CCKVS_COMMON_ATOMIC_COPY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cckvs {

namespace internal {

inline bool BothAligned8(const void* a, const void* b) {
  return ((reinterpret_cast<std::uintptr_t>(a) |
           reinterpret_cast<std::uintptr_t>(b)) & 7u) == 0;
}

}  // namespace internal

// Copies n bytes from a shared region into private memory with relaxed atomic
// loads.  The result may be torn; callers must validate it (seqlock retry).
inline void RelaxedCopyFromShared(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  if (internal::BothAligned8(d, s)) {
    while (n >= 8) {
      const std::uint64_t word =
          __atomic_load_n(reinterpret_cast<const std::uint64_t*>(s), __ATOMIC_RELAXED);
      std::memcpy(d, &word, 8);
      d += 8;
      s += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    *d = __atomic_load_n(s, __ATOMIC_RELAXED);
    ++d;
    ++s;
    --n;
  }
}

// Copies n bytes from private memory into a shared region with relaxed atomic
// stores.  Writers call this between seqlock WriteLock/WriteUnlock; concurrent
// readers may observe a torn mix, which their version check discards.
inline void RelaxedCopyToShared(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  if (internal::BothAligned8(d, s)) {
    while (n >= 8) {
      std::uint64_t word;
      std::memcpy(&word, s, 8);
      __atomic_store_n(reinterpret_cast<std::uint64_t*>(d), word, __ATOMIC_RELAXED);
      d += 8;
      s += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    __atomic_store_n(d, *s, __ATOMIC_RELAXED);
    ++d;
    ++s;
    --n;
  }
}

}  // namespace cckvs

#endif  // CCKVS_COMMON_ATOMIC_COPY_H_
