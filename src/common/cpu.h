// CPU affinity, spin-hinting and (optional) NUMA helpers for the pinned
// busy-poll run-loop mode.
//
// Everything degrades gracefully: PinCurrentThreadToCore() wraps the
// requested core modulo the online CPU count (a 1-core CI container pins
// everything to core 0 rather than failing), and the NUMA helpers compile to
// reported no-ops when <numa.h> is absent — this repo never links libnuma
// conditionally at configure time, the header probe decides.

#ifndef CCKVS_COMMON_CPU_H_
#define CCKVS_COMMON_CPU_H_

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#if defined(__has_include)
#if __has_include(<numa.h>)
#include <numa.h>
#define CCKVS_HAVE_NUMA 1
#endif
#endif
#ifndef CCKVS_HAVE_NUMA
#define CCKVS_HAVE_NUMA 0
#endif

namespace cckvs {

// Spin-wait hint: tells the core (and a hyper-sibling) that this is a
// busy-poll iteration, not real work.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// True when libnuma headers were present at compile time AND the kernel
// exposes a NUMA topology at runtime.
inline bool NumaAvailable() {
#if CCKVS_HAVE_NUMA
  return numa_available() >= 0;
#else
  return false;
#endif
}

// NUMA node of a CPU core, or -1 when NUMA support is compiled out.
inline int NumaNodeOfCore(int core) {
#if CCKVS_HAVE_NUMA
  return numa_available() >= 0 ? numa_node_of_cpu(core) : -1;
#else
  (void)core;
  return -1;
#endif
}

// Pins the calling thread to `core` (wrapped modulo the online CPU count so
// over-subscribed configs still pin deterministically).  Returns the actual
// core pinned to, or -1 when pinning is unsupported or failed.
inline int PinCurrentThreadToCore(int core) {
#if defined(__linux__)
  const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0 || core < 0) {
    return -1;
  }
  const int target = core % static_cast<int>(ncpu);
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return -1;
  }
  return target;
#else
  (void)core;
  return -1;
#endif
}

}  // namespace cckvs

#endif  // CCKVS_COMMON_CPU_H_
