// Deterministic pseudo-random number generation.
//
// Everything in the repository that needs randomness draws from Rng so that every
// experiment is reproducible from a single seed.  The generator is xoshiro256++
// (Blackman & Vigna), seeded via SplitMix64.

#ifndef CCKVS_COMMON_RNG_H_
#define CCKVS_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace cckvs {

// SplitMix64 step; also useful on its own as a cheap stateless mixer.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256++ generator.  Not thread-safe; give each simulated entity its own
// instance (derived deterministically from the experiment seed).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedull) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.  Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    CCKVS_DCHECK(bound > 0);
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Derives an independent child generator (for per-node / per-session streams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ull); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace cckvs

#endif  // CCKVS_COMMON_RNG_H_
