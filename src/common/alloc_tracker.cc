#include "src/common/alloc_tracker.h"

#include <cstdlib>
#include <new>

// Sanitizer builds intercept malloc/operator new themselves; replacing the
// global operators underneath them breaks their bookkeeping.  Detect both
// GCC's macros and Clang's __has_feature and compile the replacements out.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CCKVS_ALLOC_TRACKER_DISABLED 1
#else
#define CCKVS_ALLOC_TRACKER_DISABLED 0
#endif

namespace cckvs::alloc {
namespace {

// Plain PODs with constant initialization: operator new can run before any
// dynamic initializer, and thread_local construction must not itself
// allocate.
thread_local bool g_enabled = false;
thread_local std::uint64_t g_count = 0;

}  // namespace

bool TrackerAvailable() { return !CCKVS_ALLOC_TRACKER_DISABLED; }

void EnableThread() { g_enabled = true; }

void DisableThread() { g_enabled = false; }

std::uint64_t ThreadCount() { return g_count; }

void ResetThread() { g_count = 0; }

namespace internal {

inline void Note() {
  if (g_enabled) {
    ++g_count;
  }
}

}  // namespace internal
}  // namespace cckvs::alloc

#if !CCKVS_ALLOC_TRACKER_DISABLED

namespace {

void* TrackedAlloc(std::size_t size) {
  cckvs::alloc::internal::Note();
  if (size == 0) {
    size = 1;
  }
  return std::malloc(size);
}

void* TrackedAlignedAlloc(std::size_t size, std::size_t align) {
  cckvs::alloc::internal::Note();
  if (size == 0) {
    size = 1;
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = TrackedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) {
  void* p = TrackedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !CCKVS_ALLOC_TRACKER_DISABLED
