// Lightweight CHECK/DCHECK macros (abort-on-failure invariant checks).
//
// The library does not use exceptions for control flow (Google style); programmer
// errors and broken invariants terminate the process with a diagnostic instead.

#ifndef CCKVS_COMMON_CHECK_H_
#define CCKVS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cckvs {
namespace internal {

// Terminates the process after printing `file:line  msg` to stderr.  Kept
// out-of-line so the fast path of CHECK stays small.
[[noreturn]] void CheckFail(const char* file, int line, const std::string& msg);

// Stringifies two operands for a binary CHECK failure message.
template <typename A, typename B>
std::string CheckOpMessage(const char* expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " (lhs=" << a << ", rhs=" << b << ")";
  return os.str();
}

}  // namespace internal
}  // namespace cckvs

#define CCKVS_CHECK(cond)                                                      \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::cckvs::internal::CheckFail(__FILE__, __LINE__,                         \
                                   "CHECK failed: " #cond);                    \
    }                                                                          \
  } while (0)

#define CCKVS_CHECK_OP(op, a, b)                                               \
  do {                                                                         \
    if (!((a)op(b))) {                                                         \
      ::cckvs::internal::CheckFail(                                            \
          __FILE__, __LINE__,                                                  \
          ::cckvs::internal::CheckOpMessage(#a " " #op " " #b, (a), (b)));     \
    }                                                                          \
  } while (0)

#define CCKVS_CHECK_EQ(a, b) CCKVS_CHECK_OP(==, a, b)
#define CCKVS_CHECK_NE(a, b) CCKVS_CHECK_OP(!=, a, b)
#define CCKVS_CHECK_LT(a, b) CCKVS_CHECK_OP(<, a, b)
#define CCKVS_CHECK_LE(a, b) CCKVS_CHECK_OP(<=, a, b)
#define CCKVS_CHECK_GT(a, b) CCKVS_CHECK_OP(>, a, b)
#define CCKVS_CHECK_GE(a, b) CCKVS_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define CCKVS_DCHECK(cond) \
  do {                     \
  } while (0)
#define CCKVS_DCHECK_EQ(a, b) CCKVS_DCHECK((a) == (b))
#define CCKVS_DCHECK_LT(a, b) CCKVS_DCHECK((a) < (b))
#define CCKVS_DCHECK_LE(a, b) CCKVS_DCHECK((a) <= (b))
#else
#define CCKVS_DCHECK(cond) CCKVS_CHECK(cond)
#define CCKVS_DCHECK_EQ(a, b) CCKVS_CHECK_EQ(a, b)
#define CCKVS_DCHECK_LT(a, b) CCKVS_CHECK_LT(a, b)
#define CCKVS_DCHECK_LE(a, b) CCKVS_CHECK_LE(a, b)
#endif

#endif  // CCKVS_COMMON_CHECK_H_
