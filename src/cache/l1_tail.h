// Node-private L1 tail cache, layered IN FRONT of the shared symmetric tier.
//
// The symmetric cache (§4) only captures keys that are hot EVERYWHERE; a key
// hot at one node but not rack-wide pays the full remote-shard miss (or §6.1
// RPC in ranked racks) on every access.  The L1 tail catches that per-node
// tail: a small fixed-capacity, read-mostly cache of keys hot HERE, fed by a
// per-node Space-Saving sketch (topk/flat_space_saving.h) that subtracts
// global-hot-set membership so the two tiers never overlap.
//
// Consistency posture — write-through-invalidate, never write-back:
//  * Fills come only from authoritative reads (a shard seqlock read or an
//    RPC GET response), storing the exact (value, timestamp) that read
//    returned.
//  * ANY locally observable write to an L1-resident key — a local PUT, an
//    inbound consistency update/invalidation, a hot-set fill, an epoch
//    write-back — invalidates the private copy; the op falls through to the
//    existing shard/RPC path.  The L1 therefore never introduces a value the
//    shard path could not have served, and per-key SC/Lin histories are
//    unchanged (docs/ARCHITECTURE.md, "Hierarchical caching").
//
// Replacement is pluggable (cache/replacement.h): the cache owns the
// key->slot index and slot storage; the policy ranks slots.  Everything is
// preallocated — open-addressing index (backward-shift deletion, no
// tombstones), slot arrays, and Value slots reserved at value_bytes — so a
// warmed L1 runs allocation-free inside the alloc_assert audit.

#ifndef CCKVS_CACHE_L1_TAIL_H_
#define CCKVS_CACHE_L1_TAIL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/replacement.h"
#include "src/common/types.h"

namespace cckvs {

class L1TailCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;           // Get() served a resident key
    std::uint64_t misses = 0;         // Get() probe on a non-resident key
    std::uint64_t fills = 0;          // admissions (insert or refresh)
    std::uint64_t invalidations = 0;  // write-through drops of a resident key
    std::uint64_t evictions = 0;      // capacity evictions (policy victims)
  };

  // value_bytes sizes the per-slot Value reservation; values longer than the
  // reservation still work, they just cost an allocation on first growth.
  L1TailCache(std::size_t capacity, L1Policy policy, std::uint32_t value_bytes);

  // Read probe.  On hit copies the private value/timestamp out (into a
  // caller-owned, typically prewarmed buffer) and notifies the policy.
  bool Get(Key key, Value* value, Timestamp* ts);

  // Membership probe without stats or policy effects (tier-exclusivity
  // checks, tests).
  bool Contains(Key key) const;

  // Timestamp of a resident key without touching policy state; false when
  // absent.  Used by tests to cross-check invalidation behaviour.
  bool PeekTimestamp(Key key, Timestamp* ts) const;

  // Admits (or refreshes) `key` with an authoritative value+timestamp.
  // Evicts the policy's victim when full.
  void Fill(Key key, const Value& value, Timestamp ts);

  // Write-through invalidation: drops the private copy if resident.
  // Returns true when the key was resident (the caller counts those).
  bool Invalidate(Key key);

  // Current residents, unordered (tests; allocates — not hot path).
  std::vector<Key> Keys() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return live_; }
  const char* policy_name() const { return policy_->name(); }
  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::int32_t kEmpty = -1;

  std::size_t IndexHome(Key key) const;
  // Probe position holding `key`, or the table size when absent.
  std::size_t FindIndexPos(Key key) const;
  void IndexInsert(Key key, std::size_t slot);
  void IndexEraseAt(std::size_t pos);
  void EraseSlot(std::size_t slot);

  std::size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;

  // Open-addressing index: position -> slot id (kEmpty = free).  Sized to a
  // power of two >= 2x capacity, so load factor stays <= 0.5.
  std::vector<std::int32_t> index_;
  std::size_t index_mask_;

  // Slot storage; free slots are recycled LIFO through free_.
  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<Timestamp> ts_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;

  Stats stats_;
};

}  // namespace cckvs

#endif  // CCKVS_CACHE_L1_TAIL_H_
