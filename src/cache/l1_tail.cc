#include "src/cache/l1_tail.h"

#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {
namespace {

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

L1TailCache::L1TailCache(std::size_t capacity, L1Policy policy,
                         std::uint32_t value_bytes)
    : capacity_(capacity > 0 ? capacity : 1),
      policy_(MakeReplacementPolicy(policy, capacity_)),
      index_(NextPow2(capacity_ * 2), kEmpty),
      index_mask_(index_.size() - 1),
      keys_(capacity_, 0),
      ts_(capacity_) {
  values_.resize(capacity_);
  free_.reserve(capacity_);
  for (std::size_t s = capacity_; s-- > 0;) {
    // Prewarm every value slot so steady-state fills assign in place.
    values_[s].reserve(value_bytes);
    free_.push_back(static_cast<std::uint32_t>(s));
  }
}

std::size_t L1TailCache::IndexHome(Key key) const {
  return static_cast<std::size_t>(HashKey(key)) & index_mask_;
}

std::size_t L1TailCache::FindIndexPos(Key key) const {
  std::size_t pos = IndexHome(key);
  while (index_[pos] != kEmpty) {
    if (keys_[static_cast<std::size_t>(index_[pos])] == key) {
      return pos;
    }
    pos = (pos + 1) & index_mask_;
  }
  return index_.size();
}

void L1TailCache::IndexInsert(Key key, std::size_t slot) {
  std::size_t pos = IndexHome(key);
  while (index_[pos] != kEmpty) {
    pos = (pos + 1) & index_mask_;
  }
  index_[pos] = static_cast<std::int32_t>(slot);
}

// Linear-probing deletion by backward shift: walk the cluster after `pos`
// and pull back any entry whose home position no longer reaches it through
// the hole.  No tombstones, so probe lengths never degrade under the L1's
// invalidation-heavy workload.
void L1TailCache::IndexEraseAt(std::size_t pos) {
  index_[pos] = kEmpty;
  std::size_t hole = pos;
  std::size_t probe = pos;
  while (true) {
    probe = (probe + 1) & index_mask_;
    if (index_[probe] == kEmpty) {
      return;
    }
    const std::size_t home =
        IndexHome(keys_[static_cast<std::size_t>(index_[probe])]);
    // Move iff `home` is not cyclically inside (hole, probe].
    const bool reachable = hole < probe ? (home > hole && home <= probe)
                                        : (home > hole || home <= probe);
    if (!reachable) {
      index_[hole] = index_[probe];
      index_[probe] = kEmpty;
      hole = probe;
    }
  }
}

void L1TailCache::EraseSlot(std::size_t slot) {
  const std::size_t pos = FindIndexPos(keys_[slot]);
  CCKVS_CHECK(pos < index_.size());
  IndexEraseAt(pos);
  policy_->OnErase(slot);
  values_[slot].clear();  // keeps the reservation; drops the stale bytes
  free_.push_back(static_cast<std::uint32_t>(slot));
  --live_;
}

bool L1TailCache::Get(Key key, Value* value, Timestamp* ts) {
  const std::size_t pos = FindIndexPos(key);
  if (pos == index_.size()) {
    ++stats_.misses;
    return false;
  }
  const std::size_t slot = static_cast<std::size_t>(index_[pos]);
  value->assign(values_[slot]);
  *ts = ts_[slot];
  policy_->OnAccess(slot);
  ++stats_.hits;
  return true;
}

bool L1TailCache::Contains(Key key) const {
  return FindIndexPos(key) != index_.size();
}

bool L1TailCache::PeekTimestamp(Key key, Timestamp* ts) const {
  const std::size_t pos = FindIndexPos(key);
  if (pos == index_.size()) {
    return false;
  }
  *ts = ts_[static_cast<std::size_t>(index_[pos])];
  return true;
}

void L1TailCache::Fill(Key key, const Value& value, Timestamp ts) {
  const std::size_t pos = FindIndexPos(key);
  if (pos != index_.size()) {
    // Refresh in place: a newer authoritative read for an already-resident
    // key (e.g. re-admission racing an invalidation).
    const std::size_t slot = static_cast<std::size_t>(index_[pos]);
    values_[slot].assign(value);
    ts_[slot] = ts;
    policy_->OnAccess(slot);
    ++stats_.fills;
    return;
  }
  if (free_.empty()) {
    const std::size_t victim = policy_->Victim();
    EraseSlot(victim);
    ++stats_.evictions;
  }
  const std::size_t slot = static_cast<std::size_t>(free_.back());
  free_.pop_back();
  keys_[slot] = key;
  values_[slot].assign(value);
  ts_[slot] = ts;
  IndexInsert(key, slot);
  policy_->OnInsert(slot);
  ++live_;
  ++stats_.fills;
}

bool L1TailCache::Invalidate(Key key) {
  const std::size_t pos = FindIndexPos(key);
  if (pos == index_.size()) {
    return false;
  }
  EraseSlot(static_cast<std::size_t>(index_[pos]));
  ++stats_.invalidations;
  return true;
}

std::vector<Key> L1TailCache::Keys() const {
  std::vector<Key> keys;
  keys.reserve(live_);
  for (const std::int32_t slot : index_) {
    if (slot != kEmpty) {
      keys.push_back(keys_[static_cast<std::size_t>(slot)]);
    }
  }
  return keys;
}

}  // namespace cckvs
