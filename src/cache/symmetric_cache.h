// The symmetric cache (§4, §6.2 — substrate S6).
//
// Every node holds an identical cache of the globally hottest keys.  Because
// membership is symmetric, a node learns whether *any* node caches a key by
// probing its own cache — no directory, no sharer tracking.  Caches are
// write-back: hot writes update only the caches; the home KVS shard is updated
// when a dirty key is evicted at an epoch change.
//
// Layout fidelity: each cached object carries the paper's 8-byte metadata header
// (§6.2): consistency state (1 B, Lin only), spinlock (1 B), last writer id
// (1 B), received-ack counter (1 B), version = Lamport clock (4 B).  The extra
// transient-write bookkeeping a real node keeps in thread-private structures
// (pending/shadow values) lives beside the header.
//
// Concurrency: within the rack simulation a node's engine is serialized by the
// event loop, so cache operations here are not internally locked; the CRCW
// seqlock data path the paper measures is implemented (and stress-tested) in
// store::Partition, from which the cache "inherits its structure".

#ifndef CCKVS_CACHE_SYMMETRIC_CACHE_H_
#define CCKVS_CACHE_SYMMETRIC_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace cckvs {

// Consistency state of a cached object (§5.2).  kValid is the only stable
// state; kInvalid and kWrite are the two transient states of the Lin protocol.
// kFilling marks a key admitted to the hot set whose value has not arrived yet.
enum class CacheState : std::uint8_t {
  kValid = 0,
  kInvalid = 1,
  kWrite = 2,
  kFilling = 3,
};

inline const char* ToString(CacheState s) {
  switch (s) {
    case CacheState::kValid:
      return "Valid";
    case CacheState::kInvalid:
      return "Invalid";
    case CacheState::kWrite:
      return "Write";
    case CacheState::kFilling:
      return "Filling";
  }
  return "?";
}

// The 8-byte per-object metadata header of §6.2.
struct CacheEntryHeader {
  std::uint8_t state = static_cast<std::uint8_t>(CacheState::kFilling);
  std::uint8_t lock = 0;       // spinlock byte of the seqlock mechanism
  NodeId last_writer = 0;      // id of the last writer (timestamp tie-break)
  std::uint8_t ack_count = 0;  // received acknowledgements (Lin only)
  std::uint32_t version = 0;   // Lamport clock; doubles as the seqlock version
};
static_assert(sizeof(CacheEntryHeader) == 8, "header must stay 8 bytes (§6.2)");

struct CacheEntry {
  CacheEntryHeader header;
  Value value;
  // Timestamp of `value`.  The header's Lamport clock can run ahead of the
  // installed value while the entry is Invalid/Write (the protocol has already
  // promised a newer write); write-back flushes must pair the value with the
  // timestamp it was written at, never with the promised one.
  Timestamp value_ts{};
  bool dirty = false;  // write-back: home shard is stale until eviction flush

  // --- Lin transient-write bookkeeping (engine-owned) ---
  bool write_in_flight = false;  // this node's write awaits acks
  Timestamp pending_ts{};        // timestamp of the in-flight write
  Value pending_value;           // its value
  bool superseded = false;       // a higher-ts invalidation overtook the write
  bool has_shadow = false;       // a higher-ts update arrived mid-write
  Timestamp shadow_ts{};
  Value shadow_value;

  Timestamp ts() const { return Timestamp{header.version, header.last_writer}; }
  void set_ts(Timestamp t) {
    header.version = t.clock;
    header.last_writer = t.writer;
  }
  CacheState state() const { return static_cast<CacheState>(header.state); }
  void set_state(CacheState s) { header.state = static_cast<std::uint8_t>(s); }
};

struct CacheStats {
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;    // probe found the key in the hot set
  std::uint64_t misses = 0;  // probe did not
  std::uint64_t fills = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
};

class SymmetricCache {
 public:
  explicit SymmetricCache(std::size_t capacity);

  // Hot-set membership probe (counted in stats).
  bool Probe(Key key) const;

  // Entry access; nullptr when the key is not in the hot set.  Does not count
  // as a probe.
  CacheEntry* Find(Key key);
  const CacheEntry* Find(Key key) const;

  // Installs the value of a hot key (initial fill or epoch fill).
  void Fill(Key key, const Value& value, Timestamp ts);

  // A dirty entry evicted from the hot set, to be flushed to its home shard.
  struct Eviction {
    Key key;
    Value value;
    Timestamp ts;
  };

  // Replaces the hot set.  Keys leaving the set are evicted (dirty ones are
  // returned for write-back, §4); keys entering start in kFilling until
  // Fill() provides their value.  Returns the dirty evictions.
  std::vector<Eviction> InstallHotSet(const std::vector<Key>& keys);

  // Per-key membership primitives, used by the epoch machinery
  // (topk::HotSetManager) so protocol-unsafe evictions can be deferred while
  // the rest of a transition proceeds.  Admit does not enforce capacity_: a
  // node holding deferred evictions transiently exceeds it by their count.
  void Admit(Key key);  // no-op if present; enters in kFilling
  // Removes `key` (no-op if absent).  Returns true and fills *dirty_out when
  // the departing entry carried an unflushed write.
  bool Evict(Key key, Eviction* dirty_out);

  // Current membership, unordered.
  std::vector<Key> Keys() const;

  // Keys currently in kFilling state (need a fetch from their home shard).
  std::vector<Key> PendingFills() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return entries_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::unordered_map<Key, CacheEntry> entries_;
  mutable CacheStats stats_;
};

}  // namespace cckvs

#endif  // CCKVS_CACHE_SYMMETRIC_CACHE_H_
