#include "src/cache/replacement.h"

#include "src/common/check.h"

namespace cckvs {

bool ParseL1Policy(const std::string& name, L1Policy* out) {
  if (name == "lru") {
    *out = L1Policy::kLru;
  } else if (name == "clock") {
    *out = L1Policy::kClock;
  } else if (name == "lfu") {
    *out = L1Policy::kLfu;
  } else {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- LruPolicy

LruPolicy::LruPolicy(std::size_t capacity)
    : prev_(capacity, kNil), next_(capacity, kNil) {}

void LruPolicy::Unlink(std::size_t slot) {
  const std::size_t p = prev_[slot];
  const std::size_t n = next_[slot];
  if (p == kNil) {
    head_ = n;
  } else {
    next_[p] = n;
  }
  if (n == kNil) {
    tail_ = p;
  } else {
    prev_[n] = p;
  }
  prev_[slot] = kNil;
  next_[slot] = kNil;
}

void LruPolicy::PushFront(std::size_t slot) {
  prev_[slot] = kNil;
  next_[slot] = head_;
  if (head_ != kNil) {
    prev_[head_] = slot;
  }
  head_ = slot;
  if (tail_ == kNil) {
    tail_ = slot;
  }
}

void LruPolicy::OnInsert(std::size_t slot) { PushFront(slot); }

void LruPolicy::OnAccess(std::size_t slot) {
  if (head_ == slot) {
    return;
  }
  Unlink(slot);
  PushFront(slot);
}

void LruPolicy::OnErase(std::size_t slot) { Unlink(slot); }

std::size_t LruPolicy::Victim() {
  CCKVS_CHECK(tail_ != kNil);
  return tail_;
}

// -------------------------------------------------------------- ClockPolicy

ClockPolicy::ClockPolicy(std::size_t capacity) : ref_(capacity, 0) {}

void ClockPolicy::OnInsert(std::size_t slot) { ref_[slot] = 1; }

void ClockPolicy::OnAccess(std::size_t slot) { ref_[slot] = 1; }

void ClockPolicy::OnErase(std::size_t slot) { ref_[slot] = 0; }

std::size_t ClockPolicy::Victim() {
  // Every slot is live when this runs (the cache checks its free list
  // first), so the sweep terminates within two revolutions.
  while (ref_[hand_] != 0) {
    ref_[hand_] = 0;
    hand_ = (hand_ + 1) % ref_.size();
  }
  const std::size_t victim = hand_;
  hand_ = (hand_ + 1) % ref_.size();
  return victim;
}

// ---------------------------------------------------------------- LfuPolicy

LfuPolicy::LfuPolicy(std::size_t capacity) : count_(capacity, 0) {}

void LfuPolicy::OnInsert(std::size_t slot) { count_[slot] = 1; }

void LfuPolicy::OnAccess(std::size_t slot) { ++count_[slot]; }

void LfuPolicy::OnErase(std::size_t slot) { count_[slot] = 0; }

std::size_t LfuPolicy::Victim() {
  std::size_t victim = 0;
  for (std::size_t s = 1; s < count_.size(); ++s) {
    if (count_[s] < count_[victim]) {
      victim = s;
    }
  }
  return victim;
}

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(L1Policy policy,
                                                         std::size_t capacity) {
  switch (policy) {
    case L1Policy::kLru:
      return std::make_unique<LruPolicy>(capacity);
    case L1Policy::kClock:
      return std::make_unique<ClockPolicy>(capacity);
    case L1Policy::kLfu:
      return std::make_unique<LfuPolicy>(capacity);
  }
  return std::make_unique<LruPolicy>(capacity);
}

}  // namespace cckvs
