// Pluggable replacement for the private L1 tail cache (cache/l1_tail.h).
//
// The repo now has two cache tiers with two very different replacement
// regimes.  The shared symmetric tier replaces WHOLESALE: an epoch
// transition installs a complete new hot set (SymmetricCache::InstallHotSet)
// decided by the rack-wide Space-Saving sketch — replacement is epoch-driven
// and collective, because membership must stay identical on every node.  The
// node-private L1 tail has no such constraint: each node evicts locally, one
// slot at a time, and the interesting question is WHICH slot — so the L1
// makes the per-slot decision pluggable behind this interface and ships the
// three classic policies (LRU, CLOCK, LFU) for ablation
// (bench/abl_design_choices.cpp section (e)).
//
// The contract is slot-based, not key-based: the cache owns the key->slot
// mapping and tells the policy about slot lifecycle events; the policy only
// ranks slots.  Every implementation is fixed-capacity, allocation-free
// after construction (the L1 runs inside the alloc_assert audit), and
// deterministic: the same event sequence always evicts the same slots.

#ifndef CCKVS_CACHE_REPLACEMENT_H_
#define CCKVS_CACHE_REPLACEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cckvs {

// Which replacement policy the L1 tail runs.  Rides the multiproc param
// blob (encoded as one byte) and the bench --l1-policy= flag.
enum class L1Policy : std::uint8_t {
  kLru = 0,
  kClock = 1,
  kLfu = 2,
};

inline const char* ToString(L1Policy p) {
  switch (p) {
    case L1Policy::kLru:
      return "lru";
    case L1Policy::kClock:
      return "clock";
    case L1Policy::kLfu:
      return "lfu";
  }
  return "?";
}

bool ParseL1Policy(const std::string& name, L1Policy* out);

// Slot-ranking strategy.  The cache guarantees: OnInsert(s) only for a free
// slot s; OnAccess/OnErase(s) only for a live slot; Victim() only when every
// slot is live, and the returned slot is erased (OnErase follows).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  virtual void OnInsert(std::size_t slot) = 0;
  virtual void OnAccess(std::size_t slot) = 0;
  virtual void OnErase(std::size_t slot) = 0;
  virtual std::size_t Victim() = 0;
  virtual const char* name() const = 0;
};

// Exact recency order: doubly-linked list over slot indices (array prev/next,
// no nodes allocated).  Victim is the least recently touched slot.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(std::size_t capacity);

  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  void OnErase(std::size_t slot) override;
  std::size_t Victim() override;
  const char* name() const override { return "lru"; }

 private:
  void Unlink(std::size_t slot);
  void PushFront(std::size_t slot);

  // head_/tail_ are capacity-valued sentinels encoded as kNil.
  static constexpr std::size_t kNil = static_cast<std::size_t>(-1);
  std::vector<std::size_t> prev_;
  std::vector<std::size_t> next_;
  std::size_t head_ = kNil;  // most recently used
  std::size_t tail_ = kNil;  // least recently used
};

// Second-chance approximation of LRU: one reference bit per slot and a
// sweeping hand.  Victim clears set bits until it finds a clear one — cheap
// OnAccess (a bit store), slightly coarser ranking.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(std::size_t capacity);

  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  void OnErase(std::size_t slot) override;
  std::size_t Victim() override;
  const char* name() const override { return "clock"; }

 private:
  std::vector<std::uint8_t> ref_;
  std::size_t hand_ = 0;
};

// Frequency ranking: per-slot access counters, victim is the minimum count
// (lowest slot index breaks ties, keeping eviction deterministic).  Linear
// victim scan — fine at L1 sizes (hundreds to a few thousand slots), and the
// scan only runs on insert-when-full, never on hits.
class LfuPolicy final : public ReplacementPolicy {
 public:
  explicit LfuPolicy(std::size_t capacity);

  void OnInsert(std::size_t slot) override;
  void OnAccess(std::size_t slot) override;
  void OnErase(std::size_t slot) override;
  std::size_t Victim() override;
  const char* name() const override { return "lfu"; }

 private:
  std::vector<std::uint64_t> count_;
};

std::unique_ptr<ReplacementPolicy> MakeReplacementPolicy(L1Policy policy,
                                                         std::size_t capacity);

}  // namespace cckvs

#endif  // CCKVS_CACHE_REPLACEMENT_H_
