#include "src/cache/symmetric_cache.h"

#include <unordered_set>

#include "src/common/check.h"

namespace cckvs {

SymmetricCache::SymmetricCache(std::size_t capacity) : capacity_(capacity) {
  CCKVS_CHECK_GE(capacity, 1u);
  entries_.reserve(capacity * 2);
}

bool SymmetricCache::Probe(Key key) const {
  ++stats_.probes;
  if (entries_.count(key) != 0) {
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

CacheEntry* SymmetricCache::Find(Key key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const CacheEntry* SymmetricCache::Find(Key key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void SymmetricCache::Fill(Key key, const Value& value, Timestamp ts) {
  CacheEntry* entry = Find(key);
  CCKVS_CHECK(entry != nullptr);
  // Fills never regress an entry that already advanced past the fill's
  // timestamp (a hot write may have raced ahead of the epoch fill).
  if (entry->state() == CacheState::kFilling) {
    entry->value = value;
    entry->value_ts = ts;
    entry->set_ts(ts);
    entry->set_state(CacheState::kValid);
    ++stats_.fills;
  }
}

std::vector<SymmetricCache::Eviction> SymmetricCache::InstallHotSet(
    const std::vector<Key>& keys) {
  CCKVS_CHECK_LE(keys.size(), capacity_);
  std::unordered_set<Key> fresh(keys.begin(), keys.end());
  std::vector<Eviction> dirty;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (fresh.count(it->first) == 0) {
      ++stats_.evictions;
      if (it->second.dirty) {
        ++stats_.dirty_evictions;
        // Flush the installed (value, value_ts) pair: for entries in transient
        // states the header timestamp may belong to a newer, not-yet-installed
        // write, and pairing it with the old value would corrupt the shard.
        dirty.push_back(Eviction{it->first, it->second.value, it->second.value_ts});
      }
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  for (const Key key : keys) {
    if (entries_.find(key) == entries_.end()) {
      entries_.emplace(key, CacheEntry{});
    }
  }
  return dirty;
}

void SymmetricCache::Admit(Key key) {
  entries_.try_emplace(key);  // default CacheEntry starts in kFilling
}

bool SymmetricCache::Evict(Key key, Eviction* dirty_out) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  ++stats_.evictions;
  const bool dirty = it->second.dirty;
  if (dirty) {
    ++stats_.dirty_evictions;
    // As in InstallHotSet: flush the installed (value, value_ts) pair, never
    // the header timestamp of a transient state.
    *dirty_out = Eviction{key, std::move(it->second.value), it->second.value_ts};
  }
  entries_.erase(it);
  return dirty;
}

std::vector<Key> SymmetricCache::Keys() const {
  std::vector<Key> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

std::vector<Key> SymmetricCache::PendingFills() const {
  std::vector<Key> pending;
  for (const auto& [key, entry] : entries_) {
    if (entry.state() == CacheState::kFilling) {
      pending.push_back(key);
    }
  }
  return pending;
}

}  // namespace cckvs
