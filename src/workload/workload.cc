#include "src/workload/workload.h"

#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace cckvs {
namespace {

constexpr char kWriteMagic = 'W';
constexpr char kSynthMagic = 'S';

}  // namespace

void SynthesizeValueInto(Key key, std::uint32_t value_bytes, Value* out) {
  CCKVS_CHECK_GE(value_bytes, 1u);
  out->resize(value_bytes);
  Value& v = *out;
  v[0] = kSynthMagic;
  // Deterministic pattern derived from the key.
  std::uint64_t state = key ^ 0x5eed;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (i % 8 == 1) {
      state = Mix64(state);
    }
    v[i] = static_cast<char>(state >> ((i % 8) * 8));
  }
}

Value SynthesizeValue(Key key, std::uint32_t value_bytes) {
  Value v;
  SynthesizeValueInto(key, value_bytes, &v);
  return v;
}

void MakeWriteValueInto(std::uint32_t writer_tag, std::uint64_t seq,
                        std::uint32_t value_bytes, Value* out) {
  CCKVS_CHECK_GE(value_bytes, 13u);  // magic + tag + seq(8) must fit
  out->assign(value_bytes, '\0');
  Value& v = *out;
  v[0] = kWriteMagic;
  std::memcpy(&v[1], &writer_tag, sizeof(writer_tag));
  std::memcpy(&v[5], &seq, sizeof(seq));
}

Value MakeWriteValue(std::uint32_t writer_tag, std::uint64_t seq,
                     std::uint32_t value_bytes) {
  Value v;
  MakeWriteValueInto(writer_tag, seq, value_bytes, &v);
  return v;
}

bool ParseWriteValue(const Value& value, std::uint32_t* writer_tag,
                     std::uint64_t* seq) {
  if (value.size() < 13 || value[0] != kWriteMagic) {
    return false;
  }
  if (writer_tag != nullptr) {
    std::memcpy(writer_tag, value.data() + 1, sizeof(*writer_tag));
  }
  if (seq != nullptr) {
    std::memcpy(seq, value.data() + 5, sizeof(*seq));
  }
  return true;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config,
                                     std::uint32_t writer_tag, std::uint64_t seed)
    : config_(config),
      sampler_(config.keyspace, config.zipf_alpha),
      scrambler_(config.keyspace, config.scramble_seed),
      rng_(seed),
      writer_tag_(writer_tag) {
  CCKVS_CHECK_GE(config.keyspace, 1u);
  CCKVS_CHECK_GE(config.write_ratio, 0.0);
  CCKVS_CHECK_LE(config.write_ratio, 1.0);
  if (config.node_rank_stride != 0) {
    rank_offset_ = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(writer_tag) * config.node_rank_stride %
        config.keyspace);
  }
}

Key WorkloadGenerator::KeyOfRankAt(std::uint64_t rank0, std::uint64_t phase) const {
  if (config_.drift_period_ops != 0 && config_.drift_rank_shift != 0) {
    // Rotate ranks through the (bijective) scrambler domain: each phase the
    // top ranks land on keys that were drift_rank_shift ranks deeper before.
    const auto shift = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(phase) * config_.drift_rank_shift %
        config_.keyspace);
    rank0 = (rank0 + shift) % config_.keyspace;
  }
  if (rank_offset_ != 0) {
    // Per-node skew: this generator's rank r is everyone else's rank
    // (r + offset) — the nodes disagree on which keys are hot.
    rank0 = (rank0 + rank_offset_) % config_.keyspace;
  }
  return scrambler_.RankToKey(rank0);
}

std::vector<Key> WorkloadGenerator::HottestKeysAt(std::size_t k,
                                                 std::uint64_t phase) const {
  std::vector<Key> keys;
  keys.reserve(k);
  for (std::uint64_t r = 0; r < k && r < config_.keyspace; ++r) {
    keys.push_back(KeyOfRankAt(r, phase));
  }
  return keys;
}

void WorkloadGenerator::NextInto(Op* op) {
  ++ops_;
  const std::uint64_t rank = sampler_.Sample(rng_);  // 1-based
  op->key = KeyOfRank(rank - 1);
  if (config_.write_ratio > 0.0 && rng_.NextBool(config_.write_ratio)) {
    op->type = OpType::kPut;
    MakeWriteValueInto(writer_tag_, seq_++, config_.value_bytes, &op->value);
  } else {
    op->type = OpType::kGet;
  }
}

Op WorkloadGenerator::Next() {
  Op op;
  NextInto(&op);
  return op;
}

std::uint64_t PerThreadSeed(std::uint64_t seed, std::uint32_t t) {
  return Mix64(seed ^ (0x9e37u + t));
}

std::vector<WorkloadGenerator> MakePerThreadGenerators(const WorkloadConfig& config,
                                                       int threads,
                                                       std::uint64_t seed) {
  std::vector<WorkloadGenerator> gens;
  gens.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    gens.emplace_back(config, /*writer_tag=*/static_cast<std::uint32_t>(t),
                      PerThreadSeed(seed, static_cast<std::uint32_t>(t)));
  }
  return gens;
}

}  // namespace cckvs
