// Workload generation (§7.2, substrate S11).
//
// The paper evaluates YCSB-style workloads: Zipfian key popularity with
// exponents {0.90, 0.99, 1.01} (0.99 is the YCSB default), a 250 M-key dataset,
// 8 B keys, values of 40 B / 256 B / 1 KB, and write ratios from 0 to 5%.
// Popularity ranks map to key ids through a seeded Feistel bijection so hot keys
// scatter across shards, as hashing scatters them in the real system.

#ifndef CCKVS_WORKLOAD_WORKLOAD_H_
#define CCKVS_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/zipf.h"

namespace cckvs {

struct WorkloadConfig {
  std::uint64_t keyspace = 250'000'000;
  double zipf_alpha = 0.99;  // 0 = uniform
  double write_ratio = 0.0;  // fraction of PUTs
  std::uint32_t value_bytes = 40;
  std::uint64_t scramble_seed = 0xcc5eed;  // shared by all generators of a run

  // Non-stationary popularity (drift).  Every drift_period_ops operations a
  // generator advances one drift phase: the rank-to-key mapping rotates by
  // drift_rank_shift ranks, so the keys holding the top ranks change while the
  // Zipf shape stays fixed.  Consecutive phases share max(0, k - shift) of
  // their k hottest keys, making the shift size a churn knob.  Phases are a
  // pure function of a generator's op count, so runs stay deterministic per
  // seed; generators on different nodes drift at their own (closely aligned)
  // paces, as real traffic shifts would reach frontends.  0 = stationary.
  std::uint64_t drift_period_ops = 0;
  std::uint64_t drift_rank_shift = 0;

  // Per-node popularity skew.  Generator with writer tag t samples ranks
  // rotated by t * node_rank_stride, so the nodes agree on the Zipf SHAPE but
  // not on WHICH keys hold the top ranks: local popularity != global
  // popularity, the regime where the node-private L1 tail (cache/l1_tail.h)
  // helps and the purely symmetric hot set cannot.  0 (default) keeps every
  // generator sampling the same ranking — the paper's workload.
  std::uint64_t node_rank_stride = 0;
};

struct Op {
  OpType type = OpType::kGet;
  Key key = 0;
  Value value;  // filled for PUTs
};

// Deterministic default value of a key that was never written (lazy
// materialization; see store::PartitionConfig::synthesize).
Value SynthesizeValue(Key key, std::uint32_t value_bytes);

// Same, writing into *out (resize reuses its capacity — no allocation once the
// buffer has grown to value_bytes; the zero-alloc hot path depends on this).
void SynthesizeValueInto(Key key, std::uint32_t value_bytes, Value* out);

// Builds a PUT payload that encodes (writer_tag, sequence) — globally unique per
// write when writer tags are unique, which is what the consistency checkers key
// on — padded to value_bytes.
Value MakeWriteValue(std::uint32_t writer_tag, std::uint64_t seq,
                     std::uint32_t value_bytes);

// Same, into *out (capacity-reusing; see SynthesizeValueInto).
void MakeWriteValueInto(std::uint32_t writer_tag, std::uint64_t seq,
                        std::uint32_t value_bytes, Value* out);

// Recovers (writer_tag, seq) from a write value; returns false for synthesized
// (never-written) values.
bool ParseWriteValue(const Value& value, std::uint32_t* writer_tag, std::uint64_t* seq);

// Seed for generator `t` of a run seeded with `seed`.  One derivation shared
// by the simulated rack (one generator per node) and the live runtime (one
// generator per node thread), so the two hosts replay identical op streams.
std::uint64_t PerThreadSeed(std::uint64_t seed, std::uint32_t t);

class WorkloadGenerator {
 public:
  // `writer_tag` must be unique per generator in a run (e.g. node id or session
  // id) so PUT payloads are globally unique.
  WorkloadGenerator(const WorkloadConfig& config, std::uint32_t writer_tag,
                    std::uint64_t seed);

  Op Next();

  // Like Next(), but reuses op->value's capacity (zero-alloc hot path).
  void NextInto(Op* op);

  // The key id of popularity rank `rank0` (0-based) at this generator's
  // current drift phase.  All generators of a run agree (same scramble seed)
  // when their phases agree.
  Key KeyOfRank(std::uint64_t rank0) const { return KeyOfRankAt(rank0, drift_phase()); }
  Key KeyOfRankAt(std::uint64_t rank0, std::uint64_t phase) const;

  // The k hottest key ids at the current drift phase (descending popularity):
  // the ground-truth hot set used to pre-fill symmetric caches for
  // steady-state experiments.  Phase 0 is the pre-drift oracle.
  std::vector<Key> HottestKeys(std::size_t k) const {
    return HottestKeysAt(k, drift_phase());
  }
  std::vector<Key> HottestKeysAt(std::size_t k, std::uint64_t phase) const;

  // Number of popularity shifts this generator has gone through.
  std::uint64_t drift_phase() const {
    return config_.drift_period_ops == 0 ? 0 : ops_ / config_.drift_period_ops;
  }

  const WorkloadConfig& config() const { return config_; }
  std::uint64_t ops_generated() const { return ops_; }

 private:
  WorkloadConfig config_;
  ZipfSampler sampler_;
  KeyScrambler scrambler_;
  Rng rng_;
  std::uint32_t writer_tag_;
  std::uint64_t rank_offset_ = 0;  // writer_tag * node_rank_stride mod keyspace
  std::uint64_t seq_ = 0;
  std::uint64_t ops_ = 0;
};

// One generator per concurrent client thread: thread t gets writer tag t (so
// PUT payloads stay globally unique) and PerThreadSeed(seed, t), while all
// share the config's scramble seed and therefore agree on the rank-to-key
// bijection — the property the symmetric hot set depends on.
std::vector<WorkloadGenerator> MakePerThreadGenerators(const WorkloadConfig& config,
                                                       int threads,
                                                       std::uint64_t seed);

}  // namespace cckvs

#endif  // CCKVS_WORKLOAD_WORKLOAD_H_
