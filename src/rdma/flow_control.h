// Credit-based flow control (§6.3, substrate S4).
//
// Two schemes, as in the paper:
//
//  * Implicit credits for request/response traffic: a cache thread holds credits
//    per remote KVS peer and the response itself restores the credit, so no extra
//    messages are needed.
//  * Explicit credits for broadcast (consistency) traffic: updates/invalidations
//    receive no response, so receivers send header-only credit-update messages.
//    To keep that overhead trivial (Figure 11's "flow control" sliver), credit
//    updates are batched: one is sent per `batch` received messages (§6.4).
//
// The receive-queue CHECK in src/rdma/verbs.cc is the correctness backstop: if
// these credits were accounted wrongly, a posted-receive would run out and the
// simulation would abort.

#ifndef CCKVS_RDMA_FLOW_CONTROL_H_
#define CCKVS_RDMA_FLOW_CONTROL_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cckvs {

// Sender-side per-peer credit accounting.
class CreditPool {
 public:
  CreditPool(int num_peers, int credits_per_peer)
      : credits_(static_cast<std::size_t>(num_peers), credits_per_peer),
        initial_(credits_per_peer) {}

  bool TryAcquire(NodeId peer) {
    if (credits_[peer] == 0) {
      return false;
    }
    --credits_[peer];
    return true;
  }

  void Release(NodeId peer, int n = 1) {
    credits_[peer] += n;
    CCKVS_CHECK_LE(credits_[peer], initial_);
  }

  int available(NodeId peer) const { return credits_[peer]; }
  int initial() const { return initial_; }

 private:
  std::vector<int> credits_;
  int initial_;
};

// Receiver-side batcher for explicit credit updates.
class CreditUpdateBatcher {
 public:
  CreditUpdateBatcher(int num_peers, int batch)
      : pending_(static_cast<std::size_t>(num_peers), 0), batch_(batch) {
    CCKVS_CHECK_GE(batch, 1);
  }

  // Counts one received broadcast message from `peer`.  Returns true when a
  // credit update restoring batch() credits should be sent back now.
  bool OnReceived(NodeId peer) {
    if (++pending_[peer] >= batch_) {
      pending_[peer] = 0;
      return true;
    }
    return false;
  }

  int batch() const { return batch_; }
  int pending(NodeId peer) const { return pending_[peer]; }

 private:
  std::vector<int> pending_;
  int batch_;
};

}  // namespace cckvs

#endif  // CCKVS_RDMA_FLOW_CONTROL_H_
