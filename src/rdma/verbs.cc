#include "src/rdma/verbs.h"

#include <utility>

#include "src/common/check.h"

namespace cckvs {

UdQp::UdQp(RdmaEndpoint* endpoint, const QpConfig& config)
    : endpoint_(endpoint), config_(config) {
  CCKVS_CHECK_GE(config.signal_interval, 1);
  CCKVS_CHECK_GE(config.recv_queue_depth, 1);
}

SimTime UdQp::PerWrCost(std::uint32_t payload_bytes) const {
  const NicCostModel& cost = endpoint_->cost();
  SimTime c = payload_bytes <= cost.inline_threshold_bytes ? cost.wqe_inline_ns
                                                           : cost.wqe_ns;
  // Selective signaling: one CQE per signal_interval sends, so each send carries
  // 1/signal_interval of a poll.
  c += cost.cqe_poll_ns / static_cast<SimTime>(config_.signal_interval);
  return c;
}

SimTime UdQp::PostSendBatch(const std::vector<SendWr>& wrs) {
  if (wrs.empty()) {
    return 0;
  }
  SimTime cpu = endpoint_->cost().mmio_doorbell_ns;
  for (const SendWr& wr : wrs) {
    const std::uint32_t payload =
        wr.payload_bytes_override != 0
            ? wr.payload_bytes_override
            : (wr.body ? static_cast<std::uint32_t>(wr.body->size()) : 0);
    cpu += PerWrCost(payload);
    Packet p;
    p.src = endpoint_->node();
    p.dst = wr.dst;
    p.src_qpn = config_.qpn;
    p.dst_qpn = wr.dst_qpn;
    p.header_bytes = wr.header_bytes;
    p.payload_bytes = payload;
    p.cls = wr.cls;
    p.body = wr.body;
    endpoint_->network()->Send(p);
    ++sends_posted_;
  }
  return cpu;
}

SimTime UdQp::PostMulticast(const SendWr& wr, const std::vector<NodeId>& dsts) {
  const std::uint32_t payload =
      wr.payload_bytes_override != 0
          ? wr.payload_bytes_override
          : (wr.body ? static_cast<std::uint32_t>(wr.body->size()) : 0);
  const SimTime cpu = endpoint_->cost().mmio_doorbell_ns + PerWrCost(payload);
  Packet p;
  p.src = endpoint_->node();
  p.src_qpn = config_.qpn;
  p.dst_qpn = wr.dst_qpn;
  p.header_bytes = wr.header_bytes;
  p.payload_bytes = payload;
  p.cls = wr.cls;
  p.body = wr.body;
  endpoint_->network()->SendMulticast(p, dsts);
  sends_posted_ += 1;
  return cpu;
}

SimTime UdQp::PostRecvs(int n) {
  CCKVS_CHECK_GE(n, 0);
  available_recvs_ += n;
  CCKVS_CHECK_LE(available_recvs_, config_.recv_queue_depth);
  return endpoint_->cost().recv_post_ns * static_cast<SimTime>(n);
}

void UdQp::Deliver(const Packet& packet) {
  // An arriving UD message with no posted receive would be silently dropped by
  // real hardware; under correct credit-based flow control it can never happen,
  // so the simulator treats it as a fatal protocol violation.
  CCKVS_CHECK_GT(available_recvs_, 0);
  --available_recvs_;
  if (static_cast<std::uint64_t>(available_recvs_) < min_available_recvs_) {
    min_available_recvs_ = static_cast<std::uint64_t>(available_recvs_);
  }
  ++recvs_consumed_;
  CCKVS_CHECK(recv_handler_ != nullptr);
  Datagram dg;
  dg.src = packet.src;
  dg.src_qpn = packet.src_qpn;
  dg.cls = packet.cls;
  dg.body = packet.body;
  recv_handler_(dg);
}

RdmaEndpoint::RdmaEndpoint(Network* net, NodeId node, const NicCostModel& cost)
    : net_(net), node_(node), cost_(cost) {
  net_->SetDeliverHandler(node, [this](const Packet& p) { OnPacket(p); });
}

UdQp* RdmaEndpoint::CreateQp(const QpConfig& config) {
  auto it = qps_.find(config.qpn);
  if (it != qps_.end()) {
    return it->second.get();
  }
  auto qp = std::unique_ptr<UdQp>(new UdQp(this, config));
  UdQp* raw = qp.get();
  qps_.emplace(config.qpn, std::move(qp));
  return raw;
}

UdQp* RdmaEndpoint::GetQp(std::uint16_t qpn) const {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.get();
}

std::uint64_t RdmaEndpoint::registered_recv_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [qpn, qp] : qps_) {
    bytes += static_cast<std::uint64_t>(qp->config().recv_queue_depth) *
             qp->config().recv_buffer_bytes;
  }
  return bytes;
}

SimTime RdmaEndpoint::PollSweepCost() const {
  // Sweeping one CQ costs ~one poll whether or not it returns a completion; a
  // node's scheduling loop touches every QP.  Amortized over the ~8 messages a
  // loop iteration typically handles.
  return cost_.cqe_poll_ns * static_cast<SimTime>(qps_.size()) / 8;
}

void RdmaEndpoint::OnPacket(const Packet& packet) {
  UdQp* qp = GetQp(packet.dst_qpn);
  CCKVS_CHECK(qp != nullptr);
  qp->Deliver(packet);
}

}  // namespace cckvs
