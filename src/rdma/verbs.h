// Simulated RDMA UD verbs (substrate S3).
//
// ccKVS communicates with two-sided RDMA: RPCs over Unreliable Datagram sends in
// the style of FaSST (§6.3).  This layer reproduces the mechanisms the paper's
// performance story depends on:
//
//  * UD queue pairs addressed by (node, qpn); ccKVS gives each thread separate QPs
//    for remote requests, consistency messages and credit updates (§6.4).
//  * Doorbell batching: a linked list of work requests is posted with one MMIO
//    write; the NIC fetches WQEs in bulk, amortizing PCIe cost (§6.4).
//  * Payload inlining: payloads below the inline threshold (189 B, §6.4) ride in
//    the WQE itself and skip the NIC's second DMA read.
//  * Selective signaling: only every `signal_interval`-th send generates a CQE,
//    cutting completion-polling cost (§6.4).
//  * Posted receives: UD requires a pre-posted receive per incoming message.  An
//    arriving packet with an empty receive queue is a hard failure (CHECK) — this
//    is how the simulator *proves* the credit-based flow control of §6.3 correct,
//    rather than assuming it.
//
// CPU costs are returned to the caller (the node model adds them to thread
// service times); the fabric costs are applied by src/net.

#ifndef CCKVS_RDMA_VERBS_H_
#define CCKVS_RDMA_VERBS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/net/network.h"
#include "src/rdma/serialize.h"

namespace cckvs {

// CPU cost model for NIC interaction, in nanoseconds.  Defaults are in the range
// reported for ConnectX-class NICs by Kalia et al. (Design Guidelines, ATC'16).
struct NicCostModel {
  SimTime mmio_doorbell_ns = 80;   // one MMIO write per posted batch
  SimTime wqe_ns = 25;             // per WR, payload fetched with a second DMA
  SimTime wqe_inline_ns = 15;      // per WR, payload inlined into the WQE
  SimTime cqe_poll_ns = 30;        // per completion reaped
  SimTime recv_post_ns = 10;       // per posted receive (posted in batches)
  std::uint32_t inline_threshold_bytes = 189;  // §6.4
};

struct QpConfig {
  std::uint16_t qpn = 0;
  int send_queue_depth = 128;
  int recv_queue_depth = 1024;
  int signal_interval = 16;               // selective-signaling batch
  std::uint32_t recv_buffer_bytes = 1096;  // registered memory per posted recv
};

// A datagram handed to the application on receive.
struct Datagram {
  NodeId src = 0;
  std::uint16_t src_qpn = 0;
  TrafficClass cls = TrafficClass::kControl;
  std::shared_ptr<const Buffer> body;
};

class RdmaEndpoint;

// An Unreliable Datagram queue pair.
class UdQp {
 public:
  struct SendWr {
    NodeId dst = 0;
    std::uint16_t dst_qpn = 0;
    TrafficClass cls = TrafficClass::kControl;
    std::uint32_t header_bytes = 0;
    std::shared_ptr<const Buffer> body;  // may be null for header-only messages
    // Nominal on-wire payload size.  When nonzero it overrides body->size():
    // the semantic buffers of the simulator are not byte-exact replicas of the
    // paper's wire encoding, but the modelled sizes must be (see WireFormat).
    std::uint32_t payload_bytes_override = 0;
  };

  using RecvHandler = std::function<void(const Datagram&)>;

  // Posts a batch of sends behind a single doorbell.  Returns the CPU time the
  // posting thread spent (doorbell + per-WQE + amortized completion polling).
  SimTime PostSendBatch(const std::vector<SendWr>& wrs);

  // Posts the same payload to each destination via switch multicast (§6.3):
  // one WQE, one doorbell, one TX traversal; the switch replicates.
  SimTime PostMulticast(const SendWr& wr, const std::vector<NodeId>& dsts);

  // Replenishes the receive queue.  Returns the CPU time spent posting.
  SimTime PostRecvs(int n);

  void SetRecvHandler(RecvHandler handler) { recv_handler_ = std::move(handler); }

  const QpConfig& config() const { return config_; }
  int available_recvs() const { return available_recvs_; }
  std::uint64_t sends_posted() const { return sends_posted_; }
  std::uint64_t recvs_consumed() const { return recvs_consumed_; }
  std::uint64_t min_available_recvs() const { return min_available_recvs_; }

 private:
  friend class RdmaEndpoint;

  UdQp(RdmaEndpoint* endpoint, const QpConfig& config);
  void Deliver(const Packet& packet);
  SimTime PerWrCost(std::uint32_t payload_bytes) const;

  RdmaEndpoint* endpoint_;
  QpConfig config_;
  RecvHandler recv_handler_;
  int available_recvs_ = 0;
  std::uint64_t min_available_recvs_ = ~0ull;
  std::uint64_t sends_posted_ = 0;
  std::uint64_t recvs_consumed_ = 0;
  int unsignaled_run_ = 0;
};

// The per-node NIC: owns the node's QPs and demultiplexes arriving packets.
class RdmaEndpoint {
 public:
  RdmaEndpoint(Network* net, NodeId node, const NicCostModel& cost);

  // Creates (or returns the existing) QP with config.qpn.
  UdQp* CreateQp(const QpConfig& config);
  UdQp* GetQp(std::uint16_t qpn) const;

  NodeId node() const { return node_; }
  Network* network() const { return net_; }
  const NicCostModel& cost() const { return cost_; }

  int num_qps() const { return static_cast<int>(qps_.size()); }

  // Registered receive-buffer memory across all QPs, for the §6.4
  // connection-scaling discussion (posted receives scale with connection count).
  std::uint64_t registered_recv_bytes() const;

  // Amortized per-operation CPU overhead of sweeping all CQs for completions.
  // More QPs -> more (mostly empty) queues polled per scheduling loop; this is
  // the mechanism behind the CRCW-over-EREW win of §6.4.
  SimTime PollSweepCost() const;

 private:
  friend class UdQp;
  void OnPacket(const Packet& packet);

  Network* net_;
  NodeId node_;
  NicCostModel cost_;
  std::unordered_map<std::uint16_t, std::unique_ptr<UdQp>> qps_;
};

}  // namespace cckvs

#endif  // CCKVS_RDMA_VERBS_H_
