// Wire-format sizing (§8.7 calibration).
//
// The analytical model in the paper plugs in measured message sizes including
// network headers: B_RR = 113 B (request + response for 40 B values), B_SC = 83 B
// (one SC update) and B_Lin = 183 B (invalidation + ack + update).  The component
// sizes below reproduce those totals exactly:
//
//   header                31   (GRH + UD header + RPC framing)
//   request payload       10   (8 B key + opcode + slot)           -> 41 B
//   response payload   v + 1   (value + status)                    -> 72 B @ v=40
//   update payload    v + 12   (8 B key + 4 B Lamport clock; the writer id is
//                               implied by the packet source)      -> 83 B @ v=40
//   invalidation/ack      19   (key + clock + writer + framing)    -> 50 B each
//
//   B_RR  = 41 + 72       = 113
//   B_SC  = 83
//   B_Lin = 50 + 50 + 83  = 183

#ifndef CCKVS_RDMA_WIRE_FORMAT_H_
#define CCKVS_RDMA_WIRE_FORMAT_H_

#include <cstdint>

namespace cckvs {

struct WireFormat {
  std::uint32_t header_bytes = 31;
  std::uint32_t request_payload = 10;
  std::uint32_t response_base_payload = 1;   // + value size
  std::uint32_t update_base_payload = 12;    // + value size
  std::uint32_t invalidation_payload = 19;
  std::uint32_t ack_payload = 19;
  std::uint32_t credit_update_payload = 0;   // header-only (§6.4)

  std::uint32_t RequestWire() const { return header_bytes + request_payload; }
  std::uint32_t ResponseWire(std::uint32_t value_bytes) const {
    return header_bytes + response_base_payload + value_bytes;
  }
  std::uint32_t UpdateWire(std::uint32_t value_bytes) const {
    return header_bytes + update_base_payload + value_bytes;
  }
  std::uint32_t InvalidationWire() const { return header_bytes + invalidation_payload; }
  std::uint32_t AckWire() const { return header_bytes + ack_payload; }
  std::uint32_t CreditUpdateWire() const {
    return header_bytes + credit_update_payload;
  }

  // The B_* aggregates of §8.7.
  std::uint32_t Brr(std::uint32_t value_bytes) const {
    return RequestWire() + ResponseWire(value_bytes);
  }
  std::uint32_t Bsc(std::uint32_t value_bytes) const { return UpdateWire(value_bytes); }
  std::uint32_t Blin(std::uint32_t value_bytes) const {
    return InvalidationWire() + AckWire() + UpdateWire(value_bytes);
  }
};

}  // namespace cckvs

#endif  // CCKVS_RDMA_WIRE_FORMAT_H_
