// Flat little-endian serialization for RPC and consistency messages.
//
// Messages travel through the simulated fabric as byte buffers, exactly as they
// would through a real UD send: senders serialize, receivers deserialize.  This
// keeps the transport honest (sizes on the wire are real) and gives the tests a
// natural round-trip property to check.

#ifndef CCKVS_RDMA_SERIALIZE_H_
#define CCKVS_RDMA_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace cckvs {

using Buffer = std::vector<std::uint8_t>;

class BufferWriter {
 public:
  explicit BufferWriter(Buffer* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(v); }
  void PutU16(std::uint16_t v) { PutLe(v); }
  void PutU32(std::uint32_t v) { PutLe(v); }
  void PutU64(std::uint64_t v) { PutLe(v); }
  void PutBytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + len);
  }
  void PutString(const std::string& s) {
    CCKVS_CHECK_LE(s.size(), 0xffffffffull);
    PutU32(static_cast<std::uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

 private:
  template <typename T>
  void PutLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Buffer* out_;
};

class BufferReader {
 public:
  explicit BufferReader(const Buffer& in) : in_(in) {}

  std::uint8_t GetU8() { return GetLe<std::uint8_t>(); }
  std::uint16_t GetU16() { return GetLe<std::uint16_t>(); }
  std::uint32_t GetU32() { return GetLe<std::uint32_t>(); }
  std::uint64_t GetU64() { return GetLe<std::uint64_t>(); }
  std::string GetString() {
    const std::uint32_t len = GetU32();
    CCKVS_CHECK_LE(pos_ + len, in_.size());
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return s;
  }
  bool AtEnd() const { return pos_ == in_.size(); }
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  template <typename T>
  T GetLe() {
    CCKVS_CHECK_LE(pos_ + sizeof(T), in_.size());
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(in_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const Buffer& in_;
  std::size_t pos_ = 0;
};

}  // namespace cckvs

#endif  // CCKVS_RDMA_SERIALIZE_H_
