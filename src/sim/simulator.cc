#include "src/sim/simulator.h"

#include <utility>

namespace cckvs {

void Simulator::At(SimTime t, EventFn fn) {
  CCKVS_DCHECK(fn != nullptr);
  CCKVS_CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Simulator::PopAndRun() {
  // The queue stores const refs through top(); move the handler out via a copy of
  // the wrapper to keep the hot path allocation-light for small closures.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return !stopped_;
}

std::uint64_t Simulator::Run() {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    ++executed;
    if (!PopAndRun()) {
      break;
    }
  }
  return executed;
}

std::uint64_t Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    ++executed;
    if (!PopAndRun()) {
      return executed;
    }
  }
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

ServicePool::ServicePool(Simulator* sim, int servers)
    : sim_(sim), servers_(servers) {
  CCKVS_CHECK_GE(servers, 1);
}

void ServicePool::Submit(SimTime service_ns, Simulator::EventFn on_done) {
  if (busy_ < servers_) {
    StartJob(Job{service_ns, std::move(on_done)});
  } else {
    queue_.push(Job{service_ns, std::move(on_done)});
  }
}

void ServicePool::StartJob(Job job) {
  ++busy_;
  busy_time_ += job.service_ns;
  auto done = std::move(job.on_done);
  sim_->After(job.service_ns,
              [this, fn = std::move(done)]() mutable { FinishJob(std::move(fn)); });
}

void ServicePool::FinishJob(Simulator::EventFn on_done) {
  --busy_;
  ++completed_;
  if (!queue_.empty()) {
    Job next = std::move(queue_.front());
    queue_.pop();
    StartJob(std::move(next));
  }
  if (on_done != nullptr) {
    on_done();
  }
}

double ServicePool::Utilization() const {
  const SimTime elapsed = sim_->now();
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(busy_time_) /
         (static_cast<double>(servers_) * static_cast<double>(elapsed));
}

}  // namespace cckvs
