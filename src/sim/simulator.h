// Deterministic discrete-event simulation engine (substrate S1).
//
// The rack experiments of the paper run on 9 physical servers; here the servers,
// their NICs and the switch are actors scheduled by this engine.  Determinism is
// total: identical seeds and configs yield identical event interleavings, which is
// what makes the protocol integration tests and the EXPERIMENTS.md numbers
// reproducible bit-for-bit.
//
// Two building blocks live here:
//   * Simulator   — the event queue itself: At()/After() schedule closures,
//     Run()/RunUntil() drain them in (time, scheduling-order) order.  Nothing
//     here is thread-safe; the whole simulation is single-threaded by design.
//   * ServicePool — a bank of identical servers with one FIFO queue, used to
//     model the CPU thread pools of §6.2 (worker/"cache" threads and KVS
//     threads) and to report their utilization for the §8.4 bottleneck study.

#ifndef CCKVS_SIM_SIMULATOR_H_
#define CCKVS_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cckvs {

class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).  Events scheduled for the same
  // time run in scheduling order (stable tie-break by sequence number).
  void At(SimTime t, EventFn fn);

  // Schedules `fn` `delay` nanoseconds from now.
  void After(SimTime delay, EventFn fn) { At(now_ + delay, std::move(fn)); }

  // Runs events until the queue drains or Stop() is called.  Returns the number
  // of events executed.
  std::uint64_t Run();

  // Runs events with timestamp <= `until`; the clock ends at `until` even if the
  // queue drained earlier.  Returns the number of events executed.
  std::uint64_t RunUntil(SimTime until);

  // Makes Run()/RunUntil() return after the current event finishes.
  void Stop() { stopped_ = true; }

  bool empty() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  bool PopAndRun();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

// A pool of `servers` identical servers with a shared FIFO queue, the building
// block for modelling CPU thread pools ("cache threads" and "KVS threads" of
// §6.2).  Jobs are served in submission order as servers free up; each job holds
// a server for its service time, then its completion callback runs.
class ServicePool {
 public:
  ServicePool(Simulator* sim, int servers);

  // Enqueues a job with the given service time.  on_done may be null.
  void Submit(SimTime service_ns, Simulator::EventFn on_done);

  int servers() const { return servers_; }
  int busy() const { return busy_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t completed() const { return completed_; }
  SimTime busy_time() const { return busy_time_; }

  // Fraction of capacity used over [0, now]: busy_time / (servers * now).
  double Utilization() const;

 private:
  struct Job {
    SimTime service_ns;
    Simulator::EventFn on_done;
  };

  void StartJob(Job job);
  void FinishJob(Simulator::EventFn on_done);

  Simulator* sim_;
  int servers_;
  int busy_ = 0;
  std::uint64_t completed_ = 0;
  SimTime busy_time_ = 0;
  std::queue<Job> queue_;
};

}  // namespace cckvs

#endif  // CCKVS_SIM_SIMULATOR_H_
