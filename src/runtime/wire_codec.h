// WireBatch <-> byte-frame codec for the cross-process transport backends.
//
// The in-process fabric moves WireBatch values directly; the shm-ring and
// socket backends move byte frames, exactly as a real UD send would.  This
// codec is the boundary: little-endian flat encoding via rdma/serialize.h
// (the same writer the simulated fabric uses), one tag byte per message,
// batch framing of
//
//   [u8 src] [u16 count] count x ( [u8 tag] body )
//
// and nothing else — transport-level length prefixes belong to the backend
// (the shm ring and the socket stream each add their own [u32 len]).
//
// Decoding NEVER trusts the buffer: TryDeserializeWireBatch returns false on
// any truncation, trailing garbage, unknown tag or length overflow instead of
// aborting, so a malformed or short frame from a dying peer surfaces as a
// transport error, not corruption (the fault-injection tests drive exactly
// this).  Header fields are endianness-stable by construction — serialize.h
// writes little-endian bytes explicitly, so frames are portable across hosts
// regardless of native byte order.

#ifndef CCKVS_RUNTIME_WIRE_CODEC_H_
#define CCKVS_RUNTIME_WIRE_CODEC_H_

#include <cstdint>
#include <limits>
#include <string>
#include <variant>

#include "src/rdma/serialize.h"
#include "src/runtime/coalescer.h"

namespace cckvs {

// One byte on the wire per message.  Values are load-bearing: they are the
// cross-process ABI, so append — never renumber.
enum class WireTag : std::uint8_t {
  kUpdate = 1,
  kInvalidate = 2,
  kAck = 3,
  kHotSetAnnounce = 4,
  kFill = 5,
  kEpochInstalled = 6,
  kRpcRequest = 7,
  kRpcResponse = 8,
  kTermProbe = 9,
  kTermStatus = 10,
  kTermHalt = 11,
};

// Bounds-checked little-endian reader: every Get returns false instead of
// aborting when the buffer runs out.  The deliberate non-throwing counterpart
// of serialize.h's BufferReader, for frames that cross a trust boundary.
class SafeReader {
 public:
  SafeReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit SafeReader(const Buffer& in) : SafeReader(in.data(), in.size()) {}

  bool GetU8(std::uint8_t* v) { return GetLe(v); }
  bool GetU16(std::uint16_t* v) { return GetLe(v); }
  bool GetU32(std::uint32_t* v) { return GetLe(v); }
  bool GetU64(std::uint64_t* v) { return GetLe(v); }
  bool GetString(std::string* s) {
    std::uint32_t len = 0;
    if (!GetU32(&len) || len > size_ - pos_) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  bool GetLe(T* out) {
    if (sizeof(T) > size_ - pos_) {
      return false;
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    *out = v;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

namespace wire_internal {

inline void PutTs(BufferWriter* w, Timestamp ts) {
  w->PutU32(ts.clock);
  w->PutU8(ts.writer);
}

inline bool GetTs(SafeReader* r, Timestamp* ts) {
  std::uint8_t writer = 0;
  if (!r->GetU32(&ts->clock) || !r->GetU8(&writer)) {
    return false;
  }
  ts->writer = static_cast<NodeId>(writer);
  return true;
}

}  // namespace wire_internal

inline void SerializeWireBody(const WireBody& body, Buffer* out) {
  using wire_internal::PutTs;
  BufferWriter w(out);
  if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kUpdate));
    w.PutU64(upd->key);
    PutTs(&w, upd->ts);
    w.PutString(upd->value);
  } else if (const auto* inv = std::get_if<InvalidateMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kInvalidate));
    w.PutU64(inv->key);
    PutTs(&w, inv->ts);
  } else if (const auto* ack = std::get_if<AckMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kAck));
    w.PutU64(ack->key);
    PutTs(&w, ack->ts);
  } else if (const auto* hot = std::get_if<HotSetAnnounceMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kHotSetAnnounce));
    w.PutU64(hot->epoch);
    w.PutU32(static_cast<std::uint32_t>(hot->keys.size()));
    for (const Key k : hot->keys) {
      w.PutU64(k);
    }
  } else if (const auto* fill = std::get_if<FillMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kFill));
    w.PutU64(fill->key);
    PutTs(&w, fill->ts);
    w.PutU64(fill->epoch);
    w.PutString(fill->value);
  } else if (const auto* inst = std::get_if<EpochInstalledMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kEpochInstalled));
    w.PutU64(inst->epoch);
  } else if (const auto* req = std::get_if<RpcRequest>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kRpcRequest));
    w.PutU32(req->op_id);
    w.PutU8(static_cast<std::uint8_t>(req->op));
    w.PutU64(req->key);
    w.PutString(req->value);
    // Trace context rides last (append-only ABI evolution): the id and the
    // requester-side parent span (runtime/tracing.h), 0/0 when untraced.
    w.PutU64(req->trace_id);
    w.PutU64(req->parent_span);
  } else if (const auto* resp = std::get_if<RpcResponse>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kRpcResponse));
    w.PutU32(resp->op_id);
    PutTs(&w, resp->ts);
    w.PutU8(resp->gated ? 1 : 0);
    w.PutString(resp->value);
    w.PutU64(resp->trace_id);
  } else if (const auto* probe = std::get_if<TermProbeMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kTermProbe));
    w.PutU32(probe->round);
  } else if (const auto* status = std::get_if<TermStatusMsg>(&body)) {
    w.PutU8(static_cast<std::uint8_t>(WireTag::kTermStatus));
    w.PutU32(status->round);
    w.PutU8(status->rank);
    w.PutU8(status->done ? 1 : 0);
    w.PutU64(status->sent);
    w.PutU64(status->processed);
  } else {
    const auto& halt = std::get<TermHaltMsg>(body);
    w.PutU8(static_cast<std::uint8_t>(WireTag::kTermHalt));
    w.PutU32(halt.round);
  }
}

namespace wire_internal {

// Reuses *out's current alternative when it already holds a T (string/vector
// capacity survives), else re-seats the variant.  The zero-alloc receive
// path decodes directly into recycled WireBatch slots this way.
template <typename T>
inline T* SlotAs(WireBody* out) {
  if (auto* p = std::get_if<T>(out)) {
    return p;
  }
  return &out->emplace<T>();
}

}  // namespace wire_internal

// Decodes one tagged message into *out in place.  Returns false on truncation
// or unknown tag (*out's contents are then unspecified but valid).
inline bool TryDeserializeWireBody(SafeReader* r, WireBody* out) {
  using wire_internal::GetTs;
  using wire_internal::SlotAs;
  std::uint8_t tag = 0;
  if (!r->GetU8(&tag)) {
    return false;
  }
  switch (static_cast<WireTag>(tag)) {
    case WireTag::kUpdate: {
      UpdateMsg* m = SlotAs<UpdateMsg>(out);
      return r->GetU64(&m->key) && GetTs(r, &m->ts) && r->GetString(&m->value);
    }
    case WireTag::kInvalidate: {
      InvalidateMsg* m = SlotAs<InvalidateMsg>(out);
      return r->GetU64(&m->key) && GetTs(r, &m->ts);
    }
    case WireTag::kAck: {
      AckMsg* m = SlotAs<AckMsg>(out);
      return r->GetU64(&m->key) && GetTs(r, &m->ts);
    }
    case WireTag::kHotSetAnnounce: {
      HotSetAnnounceMsg* m = SlotAs<HotSetAnnounceMsg>(out);
      std::uint32_t count = 0;
      if (!r->GetU64(&m->epoch) || !r->GetU32(&count) ||
          static_cast<std::size_t>(count) * 8 > r->remaining()) {
        return false;
      }
      m->keys.resize(count);
      for (Key& k : m->keys) {
        if (!r->GetU64(&k)) {
          return false;
        }
      }
      return true;
    }
    case WireTag::kFill: {
      FillMsg* m = SlotAs<FillMsg>(out);
      return r->GetU64(&m->key) && GetTs(r, &m->ts) && r->GetU64(&m->epoch) &&
             r->GetString(&m->value);
    }
    case WireTag::kEpochInstalled: {
      EpochInstalledMsg* m = SlotAs<EpochInstalledMsg>(out);
      return r->GetU64(&m->epoch);
    }
    case WireTag::kRpcRequest: {
      RpcRequest* m = SlotAs<RpcRequest>(out);
      std::uint8_t op = 0;
      if (!r->GetU32(&m->op_id) || !r->GetU8(&op) || op > 1 ||
          !r->GetU64(&m->key) || !r->GetString(&m->value) ||
          !r->GetU64(&m->trace_id) || !r->GetU64(&m->parent_span)) {
        return false;
      }
      m->op = static_cast<OpType>(op);
      return true;
    }
    case WireTag::kRpcResponse: {
      RpcResponse* m = SlotAs<RpcResponse>(out);
      std::uint8_t gated = 0;
      if (!r->GetU32(&m->op_id) || !GetTs(r, &m->ts) || !r->GetU8(&gated) ||
          gated > 1 || !r->GetString(&m->value) || !r->GetU64(&m->trace_id)) {
        return false;
      }
      m->gated = gated != 0;
      return true;
    }
    case WireTag::kTermProbe: {
      TermProbeMsg* m = SlotAs<TermProbeMsg>(out);
      return r->GetU32(&m->round);
    }
    case WireTag::kTermStatus: {
      TermStatusMsg* m = SlotAs<TermStatusMsg>(out);
      std::uint8_t rank = 0;
      std::uint8_t done = 0;
      if (!r->GetU32(&m->round) || !r->GetU8(&rank) || !r->GetU8(&done) ||
          !r->GetU64(&m->sent) || !r->GetU64(&m->processed)) {
        return false;
      }
      m->rank = static_cast<NodeId>(rank);
      m->done = done != 0;
      return true;
    }
    case WireTag::kTermHalt: {
      TermHaltMsg* m = SlotAs<TermHaltMsg>(out);
      return r->GetU32(&m->round);
    }
  }
  return false;  // unknown tag
}

inline void SerializeWireBatch(const WireBatch& batch, Buffer* out) {
  CCKVS_CHECK_LE(batch.size(),
                 static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max()));
  BufferWriter w(out);
  w.PutU8(batch.src);
  w.PutU16(static_cast<std::uint16_t>(batch.size()));
  for (const WireBody& body : batch) {
    SerializeWireBody(body, out);
  }
}

// Strict whole-frame decode: the buffer must contain exactly one batch —
// truncation anywhere and trailing bytes both reject.  Decodes into *out's
// recycled slots (logical clear, in-place bodies), so a warm batch decodes
// allocation-free.
inline bool TryDeserializeWireBatch(const std::uint8_t* data, std::size_t size,
                                    WireBatch* out) {
  SafeReader r(data, size);
  std::uint8_t src = 0;
  std::uint16_t count = 0;
  if (!r.GetU8(&src) || !r.GetU16(&count)) {
    return false;
  }
  out->src = static_cast<NodeId>(src);
  out->clear();
  for (std::uint16_t i = 0; i < count; ++i) {
    if (!TryDeserializeWireBody(&r, &out->AppendSlot())) {
      return false;
    }
  }
  return r.AtEnd();
}

inline bool TryDeserializeWireBatch(const Buffer& in, WireBatch* out) {
  return TryDeserializeWireBatch(in.data(), in.size(), out);
}

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_WIRE_CODEC_H_
