#include "src/runtime/profiler.h"

#include <chrono>

#include "src/common/check.h"

namespace cckvs {
namespace {

ProfilerSample LoadTotals(const WorkerCounters& c, int node, std::uint64_t ts_ms) {
  ProfilerSample s;
  s.ts_ms = ts_ms;
  s.node = node;
  s.ops = c.ops.load(std::memory_order_relaxed);
  s.hits = c.hits.load(std::memory_order_relaxed);
  s.misses = c.misses.load(std::memory_order_relaxed);
  s.rpcs = c.rpcs.load(std::memory_order_relaxed);
  s.msgs_sent = c.msgs_sent.load(std::memory_order_relaxed);
  s.batches_sent = c.batches_sent.load(std::memory_order_relaxed);
  s.flush_size = c.flush_size.load(std::memory_order_relaxed);
  s.flush_boundary = c.flush_boundary.load(std::memory_order_relaxed);
  s.flush_idle = c.flush_idle.load(std::memory_order_relaxed);
  s.flush_deadline = c.flush_deadline.load(std::memory_order_relaxed);
  s.l1_hits = c.l1_hits.load(std::memory_order_relaxed);
  s.l1_invalidations = c.l1_invalidations.load(std::memory_order_relaxed);
  s.l1_fills = c.l1_fills.load(std::memory_order_relaxed);
  s.allocs = c.allocs.load(std::memory_order_relaxed);
  s.inbound_depth = c.inbound_depth.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

const char* ProfilerCsvHeader() {
  return "ts_ms,node,ops,hits,misses,rpcs,msgs_sent,batches_sent,flush_size,"
         "flush_boundary,flush_idle,flush_deadline,l1_hits,l1_invalidations,"
         "l1_fills,allocs,inbound_depth";
}

Profiler::Profiler(const Options& options, const std::vector<WorkerCounters>* counters)
    : options_(options), counters_(counters) {
  CCKVS_CHECK(counters_ != nullptr);
  CCKVS_CHECK_GE(options_.interval_ms, 1u);
  prev_.resize(counters_->size());
}

Profiler::~Profiler() { Stop(); }

void Profiler::Start() {
  CCKVS_CHECK(!started_ && "Profiler::Start is single-shot");
  started_ = true;
  start_ = std::chrono::steady_clock::now();
  if (!options_.csv_path.empty()) {
    csv_ = std::fopen(options_.csv_path.c_str(), "w");
    // A bad path degrades to in-memory samples only; the run itself proceeds.
  }
  if (csv_ != nullptr) {
    std::fprintf(csv_, "%s\n", ProfilerCsvHeader());
  }
  if (options_.to_stderr) {
    std::fprintf(stderr, "[profiler] %s\n", ProfilerCsvHeader());
  }
  thread_ = std::thread([this] { Loop(); });
}

void Profiler::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final partial-interval sample: totals since the last tick, so a run
  // shorter than one interval still yields one row per node.
  const auto now = std::chrono::steady_clock::now();
  const auto ts_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_).count());
  SampleOnce(ts_ms);
  if (csv_ != nullptr) {
    std::fclose(csv_);
    csv_ = nullptr;
  }
}

void Profiler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const bool stopping = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.interval_ms),
        [this] { return stop_requested_; });
    if (stopping) {
      return;  // Stop() takes the final sample after the join
    }
    const auto now = std::chrono::steady_clock::now();
    const auto ts_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
            .count());
    SampleOnce(ts_ms);
  }
}

void Profiler::SampleOnce(std::uint64_t ts_ms) {
  for (std::size_t i = 0; i < counters_->size(); ++i) {
    const ProfilerSample totals =
        LoadTotals((*counters_)[i], static_cast<int>(i), ts_ms);
    ProfilerSample& prev = prev_[i];
    ProfilerSample delta = totals;  // gauges + identity fields carry over
    delta.ops = totals.ops - prev.ops;
    delta.hits = totals.hits - prev.hits;
    delta.misses = totals.misses - prev.misses;
    delta.rpcs = totals.rpcs - prev.rpcs;
    delta.msgs_sent = totals.msgs_sent - prev.msgs_sent;
    delta.batches_sent = totals.batches_sent - prev.batches_sent;
    delta.flush_size = totals.flush_size - prev.flush_size;
    delta.flush_boundary = totals.flush_boundary - prev.flush_boundary;
    delta.flush_idle = totals.flush_idle - prev.flush_idle;
    delta.flush_deadline = totals.flush_deadline - prev.flush_deadline;
    delta.l1_hits = totals.l1_hits - prev.l1_hits;
    delta.l1_invalidations = totals.l1_invalidations - prev.l1_invalidations;
    delta.l1_fills = totals.l1_fills - prev.l1_fills;
    prev = totals;
    samples_.push_back(delta);
    Emit(delta);
  }
}

void Profiler::Emit(const ProfilerSample& s) {
  const auto row = [&](std::FILE* f, const char* prefix) {
    std::fprintf(f,
                 "%s%llu,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
                 "%llu,%llu,%llu,%llu,%llu\n",
                 prefix, static_cast<unsigned long long>(s.ts_ms), s.node,
                 static_cast<unsigned long long>(s.ops),
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses),
                 static_cast<unsigned long long>(s.rpcs),
                 static_cast<unsigned long long>(s.msgs_sent),
                 static_cast<unsigned long long>(s.batches_sent),
                 static_cast<unsigned long long>(s.flush_size),
                 static_cast<unsigned long long>(s.flush_boundary),
                 static_cast<unsigned long long>(s.flush_idle),
                 static_cast<unsigned long long>(s.flush_deadline),
                 static_cast<unsigned long long>(s.l1_hits),
                 static_cast<unsigned long long>(s.l1_invalidations),
                 static_cast<unsigned long long>(s.l1_fills),
                 static_cast<unsigned long long>(s.allocs),
                 static_cast<unsigned long long>(s.inbound_depth));
  };
  if (csv_ != nullptr) {
    row(csv_, "");
  }
  if (options_.to_stderr) {
    row(stderr, "[profiler] ");
  }
}

}  // namespace cckvs
