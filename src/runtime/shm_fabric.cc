// Shared-memory fabric implementation.  Region layout (all offsets 64-byte
// aligned, sized for num_nodes = n):
//
//   ShmHeader                      magic / ready / inflight / geometry
//   ShmDoorbell[n]                 process-shared mutex+cond per consumer
//   CreditCell[n*n]                credits returned to sender i by peer j
//   n*n x { RingHdr, ring_bytes }  SPSC byte ring per (src,dst) lane
//
// Each ring carries length-prefixed frames: [u32 len][serialized WireBatch].
// The producer (owning thread of src, possibly in another process) owns
// tail; the consumer (owning thread of dst) owns head; head/tail are free-
// running byte counters, so full/empty are exact and no slot is wasted.
//
// Lost-wakeup argument (mirrors MpscChannel): the producer publishes tail
// with release order, then takes the consumer's doorbell mutex and signals
// only if `parked` is set.  The consumer sets `parked` under that mutex and
// re-checks every lane before sleeping.  Whichever side takes the mutex
// second sees the other's write — either the producer sees parked=1 and
// signals, or the consumer sees the new tail and never sleeps.  One frame
// signals at most once: wakeup-once-per-batch, as the conformance suite
// demands.
//
// A full ring is the §6.3 backstop, not a steady state (credits bound bytes
// in flight); the producer counts one full_wait and spins with short sleeps
// until the consumer drains.

#include "src/runtime/shm_fabric.h"

#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/wire_codec.h"

namespace cckvs {
namespace {

constexpr std::uint64_t kMagic = 0x63634b56536d3166ull;  // "ccKVSm1f"
constexpr std::size_t kAlign = 64;

struct ShmHeader {
  std::atomic<std::uint64_t> magic;
  std::atomic<std::uint32_t> ready;
  std::atomic<std::uint32_t> attached;
  std::uint32_t num_nodes;
  std::uint32_t pad;
  std::uint64_t ring_bytes;
  std::atomic<std::uint64_t> inflight;
};

struct alignas(kAlign) ShmDoorbell {
  pthread_mutex_t mu;
  pthread_cond_t cv;
  std::uint32_t parked;  // guarded by mu
  std::atomic<std::uint64_t> pushes;
  std::atomic<std::uint64_t> full_waits;
  std::atomic<std::uint64_t> wakeups;
};

struct alignas(kAlign) CreditCell {
  std::atomic<int> v;
};

struct alignas(kAlign) RingHdr {
  std::atomic<std::uint64_t> head;  // consumer-owned
  std::atomic<std::uint64_t> tail;  // producer-owned
};

// Address-free atomics are required for cross-process use.
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<int>::is_always_lock_free);

std::size_t AlignUp(std::size_t x) { return (x + kAlign - 1) & ~(kAlign - 1); }

void CopyIn(std::uint8_t* ring, std::uint64_t cap, std::uint64_t pos,
            const std::uint8_t* src, std::uint64_t n) {
  const std::uint64_t off = pos % cap;
  const std::uint64_t first = std::min(n, cap - off);
  std::memcpy(ring + off, src, first);
  std::memcpy(ring, src + first, n - first);
}

void CopyOut(const std::uint8_t* ring, std::uint64_t cap, std::uint64_t pos,
             std::uint8_t* dst, std::uint64_t n) {
  const std::uint64_t off = pos % cap;
  const std::uint64_t first = std::min(n, cap - off);
  std::memcpy(dst, ring + off, first);
  std::memcpy(dst + first, ring, n - first);
}

std::uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

class ShmFabric final : public TransportFabric {
 public:
  ShmFabric(const FabricConfig& config, const TransportOptions& opts)
      : n_(config.num_nodes),
        ring_bytes_(opts.shm_ring_bytes),
        creator_(opts.rank <= 0),
        name_(opts.shm_name),
        tx_scratch_(static_cast<std::size_t>(config.num_nodes)),
        rx_scratch_(static_cast<std::size_t>(config.num_nodes)) {}

  ~ShmFabric() override {
    if (base_ != nullptr) {
      munmap(base_, size_);
    }
    if (fd_ >= 0) {
      close(fd_);
    }
    if (creator_ && mapped_) {
      shm_unlink(name_.c_str());
    }
  }

  bool Init(int timeout_ms, std::string* error) {
    size_ = TotalSize();
    if (creator_) {
      shm_unlink(name_.c_str());  // clear a stale region from a dead run
      fd_ = shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd_ < 0) {
        *error = "shm_open(create " + name_ + "): " + std::strerror(errno);
        return false;
      }
      if (ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
        *error = "ftruncate(" + name_ + "): " + std::strerror(errno);
        return false;
      }
      if (!Map(error)) {
        return false;
      }
      InitRegion();
      return true;
    }
    // Joiner: the creator may not have called shm_open yet — retry until the
    // object exists, is fully sized, and the ready flag is up.
    const std::uint64_t deadline =
        NowNs() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000ull;
    while (true) {
      fd_ = shm_open(name_.c_str(), O_RDWR, 0600);
      if (fd_ >= 0) {
        struct stat st;
        if (fstat(fd_, &st) == 0 && static_cast<std::size_t>(st.st_size) >= size_) {
          break;
        }
        close(fd_);
        fd_ = -1;
      }
      if (NowNs() > deadline) {
        *error = "timed out attaching shm region " + name_;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!Map(error)) {
      return false;
    }
    while (header()->ready.load(std::memory_order_acquire) == 0) {
      if (NowNs() > deadline) {
        *error = "timed out waiting for shm region " + name_ + " to become ready";
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (header()->magic.load(std::memory_order_acquire) != kMagic ||
        header()->num_nodes != static_cast<std::uint32_t>(n_) ||
        header()->ring_bytes != ring_bytes_) {
      *error = "shm region " + name_ + " has mismatched geometry";
      return false;
    }
    header()->attached.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  void Deliver(NodeId to, WireBatch&& batch) override {
    const NodeId src = batch.src;
    // Per-src serialize scratch: in all-in-one mode every node thread
    // delivers through this one fabric object, each as a distinct src.
    Buffer& buf = tx_scratch_[src];
    buf.clear();
    SerializeWireBatch(batch, &buf);
    batch_pool().Recycle(std::move(batch));  // bytes are out; rewarm the slots
    const std::uint64_t frame = 4 + buf.size();
    CCKVS_CHECK_LT(frame, ring_bytes_);  // a frame must fit the lane
    RingHdr* r = ring_hdr(src, to);
    std::uint8_t* data = ring_data(src, to);
    const std::uint64_t tail = r->tail.load(std::memory_order_relaxed);
    bool counted_full = false;
    while (ring_bytes_ - (tail - r->head.load(std::memory_order_acquire)) < frame) {
      if (!counted_full) {
        counted_full = true;
        doorbell(to)->full_waits.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    std::uint8_t len_le[4];
    const auto len = static_cast<std::uint32_t>(buf.size());
    len_le[0] = static_cast<std::uint8_t>(len);
    len_le[1] = static_cast<std::uint8_t>(len >> 8);
    len_le[2] = static_cast<std::uint8_t>(len >> 16);
    len_le[3] = static_cast<std::uint8_t>(len >> 24);
    CopyIn(data, ring_bytes_, tail, len_le, 4);
    CopyIn(data, ring_bytes_, tail + 4, buf.data(), buf.size());
    r->tail.store(tail + frame, std::memory_order_release);
    ShmDoorbell* d = doorbell(to);
    d->pushes.fetch_add(1, std::memory_order_relaxed);
    pthread_mutex_lock(&d->mu);
    const bool wake = d->parked != 0;
    if (wake) {
      d->wakeups.fetch_add(1, std::memory_order_relaxed);
    }
    pthread_mutex_unlock(&d->mu);
    if (wake) {
      pthread_cond_signal(&d->cv);
    }
  }

  std::size_t Drain(NodeId self, std::vector<WireBatch>* out,
                    std::size_t max) override {
    // Per-self receive scratch: in all-in-one mode every node thread drains
    // through this one fabric object concurrently (each on its own lanes).
    Buffer& scratch = rx_scratch_[self];
    std::size_t moved = 0;
    for (int src = 0; src < n_ && moved < max; ++src) {
      if (src == self) {
        continue;
      }
      RingHdr* r = ring_hdr(static_cast<NodeId>(src), self);
      const std::uint8_t* data = ring_data(static_cast<NodeId>(src), self);
      while (moved < max) {
        const std::uint64_t head = r->head.load(std::memory_order_relaxed);
        const std::uint64_t tail = r->tail.load(std::memory_order_acquire);
        if (tail == head) {
          break;
        }
        std::uint8_t len_le[4];
        CopyOut(data, ring_bytes_, head, len_le, 4);
        const std::uint32_t len = static_cast<std::uint32_t>(len_le[0]) |
                                  (static_cast<std::uint32_t>(len_le[1]) << 8) |
                                  (static_cast<std::uint32_t>(len_le[2]) << 16) |
                                  (static_cast<std::uint32_t>(len_le[3]) << 24);
        // tail is published frame-atomically, so a partial frame here means
        // corruption, not a race.
        CCKVS_CHECK_LE(static_cast<std::uint64_t>(len) + 4, tail - head);
        scratch.resize(len);
        CopyOut(data, ring_bytes_, head + 4, scratch.data(), len);
        r->head.store(head + 4 + len, std::memory_order_release);
        WireBatch batch = batch_pool().Acquire();  // decode into warm slots
        if (!TryDeserializeWireBatch(scratch.data(), len, &batch)) {
          SetError("shm lane " + std::to_string(src) + "->" +
                   std::to_string(static_cast<int>(self)) +
                   ": undecodable frame of " + std::to_string(len) + " bytes");
          batch_pool().Recycle(std::move(batch));
          continue;
        }
        out->push_back(std::move(batch));
        ++moved;
      }
    }
    return moved;
  }

  void Wait(NodeId self, std::chrono::microseconds timeout) override {
    ShmDoorbell* d = doorbell(self);
    timespec abs;
    clock_gettime(CLOCK_MONOTONIC, &abs);
    const std::uint64_t ns = static_cast<std::uint64_t>(abs.tv_nsec) +
                             static_cast<std::uint64_t>(timeout.count()) * 1000ull;
    abs.tv_sec += static_cast<time_t>(ns / 1'000'000'000ull);
    abs.tv_nsec = static_cast<long>(ns % 1'000'000'000ull);
    pthread_mutex_lock(&d->mu);
    d->parked = 1;
    while (!HasInbound(self)) {
      if (pthread_cond_timedwait(&d->cv, &d->mu, &abs) == ETIMEDOUT) {
        break;
      }
    }
    d->parked = 0;
    pthread_mutex_unlock(&d->mu);
  }

  void ReturnCredits(NodeId self, NodeId to, int n) override {
    credit_cell(to, self)->v.fetch_add(n, std::memory_order_release);
  }

  int TakeReturnedCredits(NodeId self, NodeId peer) override {
    return credit_cell(self, peer)->v.exchange(0, std::memory_order_acquire);
  }

  void AddInflight(std::uint64_t n) override {
    header()->inflight.fetch_add(n, std::memory_order_acq_rel);
  }
  void SubInflight(std::uint64_t n) override {
    header()->inflight.fetch_sub(n, std::memory_order_acq_rel);
  }
  std::uint64_t inflight() const override {
    return header()->inflight.load(std::memory_order_acquire);
  }

  FabricStats stats(NodeId self) const override {
    const ShmDoorbell* d = doorbell(self);
    return FabricStats{d->pushes.load(std::memory_order_relaxed),
                       d->full_waits.load(std::memory_order_relaxed),
                       d->wakeups.load(std::memory_order_relaxed)};
  }

  std::uint64_t InboundDepth(NodeId self) const override {
    // Undrained BYTES across self's inbound lanes (the shm bound is bytes,
    // not batches).  Relaxed snapshot — profiler gauge only.
    std::uint64_t bytes = 0;
    for (int src = 0; src < n_; ++src) {
      if (src == self) {
        continue;
      }
      const RingHdr* r = ring_hdr(static_cast<NodeId>(src), self);
      bytes += r->tail.load(std::memory_order_relaxed) -
               r->head.load(std::memory_order_relaxed);
    }
    return bytes;
  }

  std::string error() const override {
    std::lock_guard<std::mutex> lock(error_mu_);
    return error_;
  }

  bool faulted() const override {
    return faulted_.load(std::memory_order_acquire);
  }

 private:
  // --- layout ---
  std::size_t HeaderOff() const { return 0; }
  std::size_t DoorbellOff() const { return AlignUp(sizeof(ShmHeader)); }
  std::size_t CreditOff() const {
    return DoorbellOff() + static_cast<std::size_t>(n_) * sizeof(ShmDoorbell);
  }
  std::size_t RingsOff() const {
    return AlignUp(CreditOff() +
                   static_cast<std::size_t>(n_) * n_ * sizeof(CreditCell));
  }
  std::size_t RingStride() const {
    return AlignUp(sizeof(RingHdr) + ring_bytes_);
  }
  std::size_t TotalSize() const {
    return RingsOff() + static_cast<std::size_t>(n_) * n_ * RingStride();
  }

  ShmHeader* header() const { return reinterpret_cast<ShmHeader*>(base_); }
  ShmDoorbell* doorbell(NodeId id) const {
    return reinterpret_cast<ShmDoorbell*>(base_ + DoorbellOff()) + id;
  }
  CreditCell* credit_cell(NodeId sender, NodeId returner) const {
    return reinterpret_cast<CreditCell*>(base_ + CreditOff()) +
           static_cast<std::size_t>(sender) * n_ + returner;
  }
  std::uint8_t* LaneBase(NodeId src, NodeId dst) const {
    return base_ + RingsOff() +
           (static_cast<std::size_t>(src) * n_ + dst) * RingStride();
  }
  RingHdr* ring_hdr(NodeId src, NodeId dst) const {
    return reinterpret_cast<RingHdr*>(LaneBase(src, dst));
  }
  std::uint8_t* ring_data(NodeId src, NodeId dst) const {
    return LaneBase(src, dst) + AlignUp(sizeof(RingHdr));
  }

  bool HasInbound(NodeId self) const {
    for (int src = 0; src < n_; ++src) {
      if (src == self) {
        continue;
      }
      const RingHdr* r = ring_hdr(static_cast<NodeId>(src), self);
      if (r->tail.load(std::memory_order_acquire) !=
          r->head.load(std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  bool Map(std::string* error) {
    void* p = mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
    if (p == MAP_FAILED) {
      *error = "mmap(" + name_ + "): " + std::strerror(errno);
      return false;
    }
    base_ = static_cast<std::uint8_t*>(p);
    mapped_ = true;
    return true;
  }

  void InitRegion() {
    std::memset(base_, 0, size_);
    ShmHeader* h = header();
    h->num_nodes = static_cast<std::uint32_t>(n_);
    h->ring_bytes = ring_bytes_;
    pthread_mutexattr_t ma;
    pthread_mutexattr_init(&ma);
    pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
    pthread_condattr_t ca;
    pthread_condattr_init(&ca);
    pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
    pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);
    for (int i = 0; i < n_; ++i) {
      ShmDoorbell* d = doorbell(static_cast<NodeId>(i));
      pthread_mutex_init(&d->mu, &ma);
      pthread_cond_init(&d->cv, &ca);
    }
    pthread_mutexattr_destroy(&ma);
    pthread_condattr_destroy(&ca);
    // The ring_bytes/ring-stride geometry above must match on every rank;
    // joiners verify it against the header.
    h->magic.store(kMagic, std::memory_order_release);
    h->attached.store(1, std::memory_order_release);
    h->ready.store(1, std::memory_order_release);
  }

  void SetError(const std::string& e) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_.empty()) {
      error_ = e;
    }
    faulted_.store(true, std::memory_order_release);
  }

  const int n_;
  const std::uint64_t ring_bytes_;
  const bool creator_;
  const std::string name_;
  int fd_ = -1;
  std::size_t size_ = 0;
  std::uint8_t* base_ = nullptr;
  bool mapped_ = false;
  std::atomic<bool> faulted_{false};
  mutable std::mutex error_mu_;
  std::string error_;
  // Reused serialize/deserialize buffers: tx indexed by src (each node thread
  // delivers only as itself), rx indexed by self (each drains only its own).
  std::vector<Buffer> tx_scratch_;
  std::vector<Buffer> rx_scratch_;
};

}  // namespace

std::unique_ptr<TransportFabric> MakeShmFabric(const FabricConfig& config,
                                               const TransportOptions& opts,
                                               std::string* error) {
  auto fabric = std::make_unique<ShmFabric>(config, opts);
  if (!fabric->Init(opts.connect_timeout_ms, error)) {
    return nullptr;
  }
  return fabric;
}

}  // namespace cckvs
