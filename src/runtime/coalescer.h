// Message coalescing for the live fabric: the layer between the consistency
// engines and the MPSC channels (the live analogue of §8.5 request
// coalescing, which the simulator models via RackParams::coalescing).
//
// The live rack's channels are mutex-guarded; without coalescing every
// protocol message pays one lock acquisition at the sender and wakes the
// receiver once.  The paper's insight transfers directly: messages to the
// same destination can share a "packet".  Here the packet is a WireBatch —
// one channel push carrying N WireBody messages and a single source id (the
// live analogue of header amortization: the per-message src byte and the
// per-push lock/notify are paid once per batch).
//
// Send side: SendCoalescer keeps one open batch per peer.  Messages append
// in send order, so per-peer FIFO — which the Lin protocol (invalidation
// before its update) and the hot-set install barrier both depend on — is
// preserved across batch boundaries by construction: batches close in append
// order and the channel itself is FIFO.  Three flush policies:
//
//   * kSize      — the open batch reached max_batch (checked on every append);
//   * kBoundary  — the host's run loop finished one pump iteration (its "op
//                  boundary"): everything the iteration produced — acks for
//                  polled invalidations, updates/invalidations from issued
//                  ops — ships now, bounding message latency to one iteration;
//   * kIdle      — the endpoint is about to sleep in WaitForTraffic; a
//                  backstop so no message can sleep inside an open batch even
//                  if a host forgets its boundary flushes.
//
// With coalescing disabled the same code path runs with an effective
// max_batch of 1: every message closes its own batch, so the uncoalesced
// rack differs only by batch size — which is what makes the on/off benches a
// controlled comparison.
//
// Credit accounting is deliberately NOT batched: credits are acquired per
// message before it enters a batch, and receivers count/return them per
// message (§6.3's bounds are about messages, not packets).  Likewise
// LiveTransport::inflight() counts messages from the moment they enter an
// open batch, so the drain-phase exit condition is unchanged.
//
// Receive side: UpdateRunDemux groups consecutive same-key *updates* in the
// drained stream into a run and forwards only the run's maximum-timestamp
// element.  Both engines apply updates iff-newer, and the host's run loop
// issues no client op mid-poll, so collapsing a run is observationally
// equivalent to applying it element by element.  Only updates collapse:
// every invalidation must produce exactly one ack (the writer counts N-1 of
// them) and every ack must be counted, so those always pass through.

#ifndef CCKVS_RUNTIME_COALESCER_H_
#define CCKVS_RUNTIME_COALESCER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <variant>
#include <vector>

#include "src/cckvs/rpc_messages.h"
#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/protocol/messages.h"
#include "src/runtime/control_messages.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

class Tracer;  // runtime/tracing.h; batch-residence spans are optional

// One message on the live fabric: the consistency protocol's three classes,
// the hot-set subsystem's epoch traffic, the §6.1 RPC miss path (ranked
// cross-process racks can't read a remote rank's shards through a seqlock, so
// remote-homed misses travel as RpcRequest/RpcResponse), and the ranked
// termination handshake (control_messages.h).  Epoch messages ride the same
// credited lanes as broadcasts, which both bounds them under the §6.3 credit
// scheme and keeps them FIFO behind the updates a node sent earlier — the
// ordering the install barrier depends on (hot_set_manager.h).  RPC and Term*
// traffic is uncredited like acks: responses answer requests one-for-one
// (bounded by the requester's session window), and at most one probe/status
// per peer is outstanding per termination round.
using WireBody =
    std::variant<UpdateMsg, InvalidateMsg, AckMsg, HotSetAnnounceMsg, FillMsg,
                 EpochInstalledMsg, RpcRequest, RpcResponse, TermProbeMsg,
                 TermStatusMsg, TermHaltMsg>;

// Credited lanes spend §6.3 broadcast credits; everything else rides implicit
// credits (acks answer invalidations, responses answer requests, Term* is
// bounded per round).  Receivers must count and return credits for exactly
// the credited classes or the sender's pool leaks/overflows.
inline bool IsCredited(const WireBody& body) {
  return std::holds_alternative<UpdateMsg>(body) ||
         std::holds_alternative<InvalidateMsg>(body) ||
         std::holds_alternative<HotSetAnnounceMsg>(body) ||
         std::holds_alternative<FillMsg>(body) ||
         std::holds_alternative<EpochInstalledMsg>(body);
}

// Termination-detection control traffic is excluded from the sent/processed
// counters it is trying to balance (control_messages.h).
inline bool IsTermControl(const WireBody& body) {
  return std::holds_alternative<TermProbeMsg>(body) ||
         std::holds_alternative<TermStatusMsg>(body) ||
         std::holds_alternative<TermHaltMsg>(body);
}

// N same-destination messages sharing one channel push and one source id.
//
// Zero-alloc by design: the slot vector never shrinks.  clear() resets the
// logical count without destroying slots, and the typed Append overloads
// assign INTO an existing slot when its variant already holds the right
// alternative — so a recycled batch whose slot held an UpdateMsg reuses that
// UpdateMsg's string capacity instead of reconstructing it.  Steady-state
// traffic (same message mix every iteration) therefore allocates nothing;
// only growth beyond the high-water mark or an alternative change pays.
class WireBatch {
 public:
  NodeId src = 0;

  // Logical reset: slots (and their string capacity) survive for reuse.
  void clear() { count_ = 0; }

  // Exposes the next slot for in-place construction (wire_codec decodes
  // directly into it).  Grows the slot vector only past the high-water mark.
  WireBody& AppendSlot() {
    if (count_ == slots_.size()) {
      slots_.emplace_back();
    }
    return slots_[count_++];
  }

  // Typed append: assigns into the slot when the alternative matches (string
  // capacity reuse), otherwise re-seats the variant.
  template <typename T>
  void Append(const T& msg) {
    WireBody& slot = AppendSlot();
    if (auto* p = std::get_if<T>(&slot)) {
      *p = msg;
    } else {
      slot.emplace<T>(msg);
    }
  }

  void Append(WireBody&& body) { AppendSlot() = std::move(body); }

  // Pre-pays the growth costs a cold batch would otherwise pay mid-run: grows
  // the slot vector to `slots` entries and reserves `value_bytes` of string
  // capacity in each (slots default to UpdateMsg — the variant's first
  // alternative and the only steady-state value carrier).  Idempotent on a
  // warm batch.  WireBatchPool::Prewarm uses this at fabric init so a
  // measured window never observes first-touch warm-up allocations.
  void Warm(std::size_t slots, std::size_t value_bytes) {
    if (slots_.size() < slots) {
      slots_.reserve(slots);
      while (slots_.size() < slots) {
        slots_.emplace_back();
      }
    }
    for (WireBody& slot : slots_) {
      if (auto* upd = std::get_if<UpdateMsg>(&slot)) {
        upd->value.reserve(value_bytes);
      }
    }
    count_ = 0;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  const WireBody& operator[](std::size_t i) const { return slots_[i]; }
  WireBody& operator[](std::size_t i) { return slots_[i]; }
  const WireBody* begin() const { return slots_.data(); }
  const WireBody* end() const { return slots_.data() + count_; }

  WireBatch() = default;
  WireBatch(const WireBatch&) = default;
  WireBatch& operator=(const WireBatch&) = default;
  // Moved-from batches must read as empty: the slot vector moves away, so a
  // stale count_ would index nothing.
  WireBatch(WireBatch&& other) noexcept
      : src(other.src), slots_(std::move(other.slots_)), count_(other.count_) {
    other.count_ = 0;
  }
  WireBatch& operator=(WireBatch&& other) noexcept {
    src = other.src;
    slots_ = std::move(other.slots_);
    count_ = other.count_;
    other.count_ = 0;
    return *this;
  }

 private:
  std::vector<WireBody> slots_;  // live prefix [0, count_); rest are spares
  std::size_t count_ = 0;
};

// Free list of warm WireBatches, shared by every endpoint of one fabric.
// Batches cross threads (sender fills, receiver drains, receiver recycles),
// so a recycled batch's warmed slot capacity serves whichever sender next
// acquires it.  Mutex-guarded: one Acquire per batch sent and one Recycle per
// batch drained is far off the per-message hot path.
class WireBatchPool {
 public:
  WireBatchPool() { free_.reserve(cap_); }

  WireBatch Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      return WireBatch{};
    }
    WireBatch b = std::move(free_.back());
    free_.pop_back();
    return b;
  }

  void Recycle(WireBatch&& batch) {
    batch.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < cap_) {
      free_.push_back(std::move(batch));
    }
  }

  // Stocks the pool with `count` fully-warm batches (WireBatch::Warm) and
  // raises the retention cap to hold them.  Called once at fabric init,
  // before any node thread starts: with `count` at least the transport's
  // maximum simultaneously-circulating batch count, Acquire never hands out
  // a cold batch and the steady state is allocation-free rather than merely
  // amortized-allocation-free.
  void Prewarm(std::size_t count, std::size_t slots, std::size_t value_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    cap_ = std::max(cap_, count);
    free_.reserve(cap_);
    while (free_.size() < count) {
      WireBatch b;
      b.Warm(slots, value_bytes);
      free_.push_back(std::move(b));
    }
  }

 private:
  std::mutex mu_;
  std::size_t cap_ = 1024;  // retention cap: a full rack's churn fits
  std::vector<WireBatch> free_;
};

enum class FlushCause : std::uint8_t {
  kSize = 0,   // open batch reached max_batch
  kBoundary,   // host run-loop iteration ended (op boundary)
  kIdle,       // endpoint about to sleep; backstop flush
  kDeadline,   // sub-cap batch held to the flush deadline, which expired
  kNumCauses,
};

inline const char* ToString(FlushCause c) {
  switch (c) {
    case FlushCause::kSize:
      return "size";
    case FlushCause::kBoundary:
      return "boundary";
    case FlushCause::kIdle:
      return "idle";
    case FlushCause::kDeadline:
      return "deadline";
    case FlushCause::kNumCauses:
      break;
  }
  return "?";
}

struct CoalescerConfig {
  NodeId self = 0;   // stamped as WireBatch::src
  int num_peers = 0; // peer id space (self's slot stays unused)
  bool enabled = false;
  int max_batch = 16;  // mirrors RackParams::coalesce_max_batch
  // Deadline-based flush (the live analogue of the sim's coalesce_window_ns):
  // when > 0, boundary flushes HOLD sub-cap batches until they have been open
  // this long, trading bounded extra latency for fatter batches.  Size-cap
  // flushes still fire immediately, and the pre-sleep idle path flushes
  // expired batches while capping the sleep to the earliest open deadline.
  std::uint64_t flush_deadline_ns = 0;
  // Monotonic clock, injectable for tests; required when flush_deadline_ns>0.
  std::function<std::uint64_t()> now_ns;
  // When set, Take() swaps in recycled batches from this pool instead of
  // default-constructing (the zero-alloc path).  Null (unit tests) falls back
  // to fresh batches.
  WireBatchPool* pool = nullptr;
  // When warm_slots > 0, the per-peer open batches are pre-warmed at
  // construction (WireBatch::Warm).  Without this the initial open batches
  // start cold and — because the pool is LIFO — keep circulating at its top,
  // paying first-touch growth allocations well into a run.
  std::size_t warm_slots = 0;
  std::size_t warm_value_bytes = 0;
};

// Per-peer send-side batch buffers.  Single-threaded: only the owning node's
// thread appends and takes (the same contract as the engines themselves).
class SendCoalescer {
 public:
  explicit SendCoalescer(const CoalescerConfig& config);

  // Appends one message to the open batch for `to`.  Returns true when the
  // batch just reached max_batch: the caller must Take(to, kSize) and deliver
  // it now, so a batch never exceeds the cap.
  bool Append(NodeId to, WireBody body);

  // Typed append: same contract, but assigns into a recycled slot without
  // constructing a WireBody temporary (the zero-alloc send path).
  template <typename T>
  bool AppendTyped(NodeId to, const T& msg) {
    WireBatch& batch = open_[to];
    if (batch.empty()) {
      StampOpen(to);
    }
    batch.Append(msg);
    return batch.size() >= static_cast<std::size_t>(effective_max_);
  }

  // Closes and returns the open batch for `to` (empty when there is nothing
  // open).  Non-empty takes are recorded in the flush/size stats.
  WireBatch Take(NodeId to, FlushCause cause);

  bool empty(NodeId to) const { return open_[to].empty(); }
  bool AllEmpty() const;
  // Messages sitting in open batches (committed to delivery, not yet pushed).
  std::size_t open_messages() const;

  // --- deadline policy ---
  bool deadline_enabled() const { return config_.flush_deadline_ns > 0; }
  // True when the open batch for `to` has been held past the flush deadline.
  // The `now` overload lets a flush pass read the clock once for all peers.
  bool DeadlineExpired(NodeId to) const;
  bool DeadlineExpired(NodeId to, std::uint64_t now) const;
  std::uint64_t now_ns() const { return config_.now_ns(); }
  // Nanoseconds until the earliest open batch expires (0 when one already
  // has; max() when nothing is open).  For capping the pre-sleep wait.
  std::uint64_t MinRemainingNs() const;

  // --- observability (LiveReport / bench plumbing) ---
  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  // Arms batch-residence tracing (runtime/tracing.h): Take() then emits a
  // decimated kBatchOpen span covering first-append -> flush.  Must be set
  // before the owning node's thread starts; null disarms (the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  std::uint64_t flushes(FlushCause cause) const {
    return flushes_[static_cast<std::size_t>(cause)];
  }
  const Histogram& batch_sizes() const { return batch_sizes_; }

 private:
  // Stamps the deadline clock on the first append to an empty batch.
  void StampOpen(NodeId to);

  CoalescerConfig config_;
  int effective_max_;  // 1 when disabled: every message closes its own batch
  std::vector<WireBatch> open_;  // indexed by peer id
  std::vector<std::uint64_t> open_since_ns_;  // first-append stamp per peer
  std::vector<std::uint64_t> open_cycles_;    // rdtsc first-append stamp (tracing)
  Tracer* tracer_ = nullptr;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t flushes_[static_cast<std::size_t>(FlushCause::kNumCauses)] = {};
  Histogram batch_sizes_;
};

// Streaming receive-side demux: forwards the drained message stream to the
// engine handler, collapsing each run of consecutive same-key updates to its
// maximum-timestamp element (see header comment for why this is safe).
//
// Held pointers reference the caller's drained batch storage, so the stream
// must stay alive until Flush() — Endpoint::Poll drains into a member
// scratch buffer and flushes before returning.  One instance per Poll call;
// the collapsed-update count accumulates into *collapsed.
class UpdateRunDemux {
 public:
  explicit UpdateRunDemux(std::uint64_t* collapsed) : collapsed_(collapsed) {}

  template <typename Handler>
  void OnMessage(NodeId src, const WireBody& body, Handler&& handler) {
    if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
      if (held_ != nullptr && held_->key == upd->key) {
        // Same run: keep whichever update Lamport order says wins.  Updates
        // from one writer are monotonic, so ties cannot occur; across writers
        // the writer id breaks them.
        ++*collapsed_;
        if (upd->ts > held_->ts) {
          held_ = upd;
          held_body_ = &body;
          held_src_ = src;
        }
        return;
      }
      Flush(handler);  // a different key starts a new run
      held_ = upd;
      held_body_ = &body;
      held_src_ = src;
      return;
    }
    // Any non-update ends the current run before it is delivered: an
    // invalidation or epoch message for the held key must not overtake it.
    Flush(handler);
    handler(src, body);
  }

  template <typename Handler>
  void Flush(Handler&& handler) {
    if (held_ == nullptr) {
      return;
    }
    const WireBody* body = held_body_;
    held_ = nullptr;
    held_body_ = nullptr;
    handler(held_src_, *body);
  }

 private:
  std::uint64_t* collapsed_;
  const UpdateMsg* held_ = nullptr;     // view into *held_body_
  const WireBody* held_body_ = nullptr; // points into the caller's drained batches
  NodeId held_src_ = 0;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_COALESCER_H_
