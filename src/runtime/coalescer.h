// Message coalescing for the live fabric: the layer between the consistency
// engines and the MPSC channels (the live analogue of §8.5 request
// coalescing, which the simulator models via RackParams::coalescing).
//
// The live rack's channels are mutex-guarded; without coalescing every
// protocol message pays one lock acquisition at the sender and wakes the
// receiver once.  The paper's insight transfers directly: messages to the
// same destination can share a "packet".  Here the packet is a WireBatch —
// one channel push carrying N WireBody messages and a single source id (the
// live analogue of header amortization: the per-message src byte and the
// per-push lock/notify are paid once per batch).
//
// Send side: SendCoalescer keeps one open batch per peer.  Messages append
// in send order, so per-peer FIFO — which the Lin protocol (invalidation
// before its update) and the hot-set install barrier both depend on — is
// preserved across batch boundaries by construction: batches close in append
// order and the channel itself is FIFO.  Three flush policies:
//
//   * kSize      — the open batch reached max_batch (checked on every append);
//   * kBoundary  — the host's run loop finished one pump iteration (its "op
//                  boundary"): everything the iteration produced — acks for
//                  polled invalidations, updates/invalidations from issued
//                  ops — ships now, bounding message latency to one iteration;
//   * kIdle      — the endpoint is about to sleep in WaitForTraffic; a
//                  backstop so no message can sleep inside an open batch even
//                  if a host forgets its boundary flushes.
//
// With coalescing disabled the same code path runs with an effective
// max_batch of 1: every message closes its own batch, so the uncoalesced
// rack differs only by batch size — which is what makes the on/off benches a
// controlled comparison.
//
// Credit accounting is deliberately NOT batched: credits are acquired per
// message before it enters a batch, and receivers count/return them per
// message (§6.3's bounds are about messages, not packets).  Likewise
// LiveTransport::inflight() counts messages from the moment they enter an
// open batch, so the drain-phase exit condition is unchanged.
//
// Receive side: UpdateRunDemux groups consecutive same-key *updates* in the
// drained stream into a run and forwards only the run's maximum-timestamp
// element.  Both engines apply updates iff-newer, and the host's run loop
// issues no client op mid-poll, so collapsing a run is observationally
// equivalent to applying it element by element.  Only updates collapse:
// every invalidation must produce exactly one ack (the writer counts N-1 of
// them) and every ack must be counted, so those always pass through.

#ifndef CCKVS_RUNTIME_COALESCER_H_
#define CCKVS_RUNTIME_COALESCER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <variant>
#include <vector>

#include "src/cckvs/rpc_messages.h"
#include "src/common/histogram.h"
#include "src/common/types.h"
#include "src/protocol/messages.h"
#include "src/runtime/control_messages.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

// One message on the live fabric: the consistency protocol's three classes,
// the hot-set subsystem's epoch traffic, the §6.1 RPC miss path (ranked
// cross-process racks can't read a remote rank's shards through a seqlock, so
// remote-homed misses travel as RpcRequest/RpcResponse), and the ranked
// termination handshake (control_messages.h).  Epoch messages ride the same
// credited lanes as broadcasts, which both bounds them under the §6.3 credit
// scheme and keeps them FIFO behind the updates a node sent earlier — the
// ordering the install barrier depends on (hot_set_manager.h).  RPC and Term*
// traffic is uncredited like acks: responses answer requests one-for-one
// (bounded by the requester's session window), and at most one probe/status
// per peer is outstanding per termination round.
using WireBody =
    std::variant<UpdateMsg, InvalidateMsg, AckMsg, HotSetAnnounceMsg, FillMsg,
                 EpochInstalledMsg, RpcRequest, RpcResponse, TermProbeMsg,
                 TermStatusMsg, TermHaltMsg>;

// Credited lanes spend §6.3 broadcast credits; everything else rides implicit
// credits (acks answer invalidations, responses answer requests, Term* is
// bounded per round).  Receivers must count and return credits for exactly
// the credited classes or the sender's pool leaks/overflows.
inline bool IsCredited(const WireBody& body) {
  return std::holds_alternative<UpdateMsg>(body) ||
         std::holds_alternative<InvalidateMsg>(body) ||
         std::holds_alternative<HotSetAnnounceMsg>(body) ||
         std::holds_alternative<FillMsg>(body) ||
         std::holds_alternative<EpochInstalledMsg>(body);
}

// Termination-detection control traffic is excluded from the sent/processed
// counters it is trying to balance (control_messages.h).
inline bool IsTermControl(const WireBody& body) {
  return std::holds_alternative<TermProbeMsg>(body) ||
         std::holds_alternative<TermStatusMsg>(body) ||
         std::holds_alternative<TermHaltMsg>(body);
}

// N same-destination messages sharing one channel push and one source id.
struct WireBatch {
  NodeId src = 0;
  std::vector<WireBody> msgs;
};

enum class FlushCause : std::uint8_t {
  kSize = 0,   // open batch reached max_batch
  kBoundary,   // host run-loop iteration ended (op boundary)
  kIdle,       // endpoint about to sleep; backstop flush
  kDeadline,   // sub-cap batch held to the flush deadline, which expired
  kNumCauses,
};

inline const char* ToString(FlushCause c) {
  switch (c) {
    case FlushCause::kSize:
      return "size";
    case FlushCause::kBoundary:
      return "boundary";
    case FlushCause::kIdle:
      return "idle";
    case FlushCause::kDeadline:
      return "deadline";
    case FlushCause::kNumCauses:
      break;
  }
  return "?";
}

struct CoalescerConfig {
  NodeId self = 0;   // stamped as WireBatch::src
  int num_peers = 0; // peer id space (self's slot stays unused)
  bool enabled = false;
  int max_batch = 16;  // mirrors RackParams::coalesce_max_batch
  // Deadline-based flush (the live analogue of the sim's coalesce_window_ns):
  // when > 0, boundary flushes HOLD sub-cap batches until they have been open
  // this long, trading bounded extra latency for fatter batches.  Size-cap
  // flushes still fire immediately, and the pre-sleep idle path flushes
  // expired batches while capping the sleep to the earliest open deadline.
  std::uint64_t flush_deadline_ns = 0;
  // Monotonic clock, injectable for tests; required when flush_deadline_ns>0.
  std::function<std::uint64_t()> now_ns;
};

// Per-peer send-side batch buffers.  Single-threaded: only the owning node's
// thread appends and takes (the same contract as the engines themselves).
class SendCoalescer {
 public:
  explicit SendCoalescer(const CoalescerConfig& config);

  // Appends one message to the open batch for `to`.  Returns true when the
  // batch just reached max_batch: the caller must Take(to, kSize) and deliver
  // it now, so a batch never exceeds the cap.
  bool Append(NodeId to, WireBody body);

  // Closes and returns the open batch for `to` (msgs empty when there is
  // nothing open).  Non-empty takes are recorded in the flush/size stats.
  WireBatch Take(NodeId to, FlushCause cause);

  bool empty(NodeId to) const { return open_[to].msgs.empty(); }
  bool AllEmpty() const;
  // Messages sitting in open batches (committed to delivery, not yet pushed).
  std::size_t open_messages() const;

  // --- deadline policy ---
  bool deadline_enabled() const { return config_.flush_deadline_ns > 0; }
  // True when the open batch for `to` has been held past the flush deadline.
  // The `now` overload lets a flush pass read the clock once for all peers.
  bool DeadlineExpired(NodeId to) const;
  bool DeadlineExpired(NodeId to, std::uint64_t now) const;
  std::uint64_t now_ns() const { return config_.now_ns(); }
  // Nanoseconds until the earliest open batch expires (0 when one already
  // has; max() when nothing is open).  For capping the pre-sleep wait.
  std::uint64_t MinRemainingNs() const;

  // --- observability (LiveReport / bench plumbing) ---
  std::uint64_t batches_sent() const { return batches_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t flushes(FlushCause cause) const {
    return flushes_[static_cast<std::size_t>(cause)];
  }
  const Histogram& batch_sizes() const { return batch_sizes_; }

 private:
  CoalescerConfig config_;
  int effective_max_;  // 1 when disabled: every message closes its own batch
  std::vector<WireBatch> open_;  // indexed by peer id
  std::vector<std::uint64_t> open_since_ns_;  // first-append stamp per peer
  std::uint64_t batches_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t flushes_[static_cast<std::size_t>(FlushCause::kNumCauses)] = {};
  Histogram batch_sizes_;
};

// Streaming receive-side demux: forwards the drained message stream to the
// engine handler, collapsing each run of consecutive same-key updates to its
// maximum-timestamp element (see header comment for why this is safe).
//
// Held pointers reference the caller's drained batch storage, so the stream
// must stay alive until Flush() — Endpoint::Poll drains into a member
// scratch buffer and flushes before returning.  One instance per Poll call;
// the collapsed-update count accumulates into *collapsed.
class UpdateRunDemux {
 public:
  explicit UpdateRunDemux(std::uint64_t* collapsed) : collapsed_(collapsed) {}

  template <typename Handler>
  void OnMessage(NodeId src, const WireBody& body, Handler&& handler) {
    if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
      if (held_ != nullptr && held_->key == upd->key) {
        // Same run: keep whichever update Lamport order says wins.  Updates
        // from one writer are monotonic, so ties cannot occur; across writers
        // the writer id breaks them.
        ++*collapsed_;
        if (upd->ts > held_->ts) {
          held_ = upd;
          held_body_ = &body;
          held_src_ = src;
        }
        return;
      }
      Flush(handler);  // a different key starts a new run
      held_ = upd;
      held_body_ = &body;
      held_src_ = src;
      return;
    }
    // Any non-update ends the current run before it is delivered: an
    // invalidation or epoch message for the held key must not overtake it.
    Flush(handler);
    handler(src, body);
  }

  template <typename Handler>
  void Flush(Handler&& handler) {
    if (held_ == nullptr) {
      return;
    }
    const WireBody* body = held_body_;
    held_ = nullptr;
    held_body_ = nullptr;
    handler(held_src_, *body);
  }

 private:
  std::uint64_t* collapsed_;
  const UpdateMsg* held_ = nullptr;     // view into *held_body_
  const WireBody* held_body_ = nullptr; // points into the caller's drained batches
  NodeId held_src_ = 0;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_COALESCER_H_
