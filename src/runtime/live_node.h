// One live rack node: a real thread owning its shard, cache and engine.
//
// The node thread is the engine's single-threaded host (the contract in
// src/protocol/engine.h): every engine call — client ops and message
// deliveries — happens on this thread, interleaved by the run loop.  Other
// threads interact with the node in exactly two ways:
//
//   * posting protocol messages into its transport endpoint's channel, and
//   * reading/writing its store::Partition shard directly through the CRCW
//     seqlock path — the scale-out-ccNUMA data plane: a cache miss is served
//     by a plain load/store against the home shard, not an RPC.
//
// Client load is closed-loop: `window` sessions per node, each issuing its
// next operation as soon as the previous completes, from a per-thread
// WorkloadGenerator.  Completions are engine callbacks, so a Lin write or a
// blocked read simply leaves its session non-idle until the protocol fires.

#ifndef CCKVS_RUNTIME_LIVE_NODE_H_
#define CCKVS_RUNTIME_LIVE_NODE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/l1_tail.h"
#include "src/cache/symmetric_cache.h"
#include "src/cckvs/rpc_messages.h"
#include "src/common/histogram.h"
#include "src/protocol/engine.h"
#include "src/runtime/control_messages.h"
#include "src/runtime/profiler.h"
#include "src/runtime/stop.h"
#include "src/runtime/tracing.h"
#include "src/runtime/transport.h"
#include "src/store/partition.h"
#include "src/topk/flat_space_saving.h"
#include "src/topk/hot_set_manager.h"
#include "src/verify/history.h"
#include "src/workload/workload.h"

namespace cckvs {

class LiveRack;

class LiveNode final : private HotSetHost {
 public:
  LiveNode(LiveRack* rack, NodeId id, WorkloadGenerator gen);
  LiveNode(const LiveNode&) = delete;
  LiveNode& operator=(const LiveNode&) = delete;

  // Installs + fills the symmetric hot set (before threads start).
  void PrefillHotSet(const std::vector<Key>& hot_keys);

  // Thread body.  Issues ops until the quota (or a stop request), then drains:
  // keeps pumping messages until every node is quiescent and the fabric is
  // empty, so all histories seal.
  void Run(StopToken stop);

  // Shard access; the CRCW seqlock path makes this safe from any thread.
  Partition& partition() { return *partition_; }
  const Partition& partition() const { return *partition_; }

  // --- post-join introspection (owning thread has exited) ---
  struct Counters {
    std::uint64_t completed = 0;
    std::uint64_t hit_completed = 0;
    std::uint64_t miss_completed = 0;
    std::uint64_t l1_hits = 0;       // ops served from the private L1 tail
    std::uint64_t sc_credit_stalls = 0;
    std::uint64_t gate_retries = 0;  // shard ops parked on the residency gate
    std::uint64_t rpcs_sent = 0;     // ranked mode: remote-home misses over RPC
  };
  const Counters& counters() const { return counters_; }
  // Operator-new count inside the steady-state measurement window (0 when
  // params.track_allocs is off or the tracker is compiled out; see
  // common/alloc_tracker.h).
  std::uint64_t hot_path_allocs() const { return hot_path_allocs_; }
  const Histogram& latency() const { return latency_; }
  const std::vector<HistoryOp>& history_ops() const { return history_; }
  const SymmetricCache& cache() const { return *cache_; }
  // Private L1 tail, or nullptr when params.l1_capacity == 0.
  const L1TailCache* l1() const { return l1_.get(); }
  const CoherenceEngine& engine() const { return *engine_; }
  const HotSetManager* hot_set_manager() const { return hot_mgr_.get(); }

 private:
  // How an op completed: the shard/RPC miss path, the shared symmetric cache,
  // or the node-private L1 tail.  kCache and kL1 both count as hierarchy hits.
  enum class Route : std::uint8_t { kMiss, kCache, kL1 };

  struct Session {
    Op op;
    SimTime invoke = 0;               // history clock (record_history runs)
    std::uint64_t invoke_cycles = 0;  // rdtsc stamp; feeds the latency histogram
    SessionId id = 0;
    bool idle = true;
    // --- tracing context (runtime/tracing.h; all 0 when the op is unsampled) ---
    std::uint64_t trace_id = 0;
    std::uint64_t op_span = 0;            // root span; completes in CompleteOp
    std::uint64_t rpc_span = 0;           // open requester-side RPC leg
    std::uint64_t rpc_cycles = 0;         // its send stamp
    std::uint64_t park_cycles = 0;        // first gated-park stamp (gated_wait)
    std::uint64_t credit_park_cycles = 0; // SC credit-park stamp (credit_wait)
  };

  // Fixed-capacity FIFO of parked session slots.  A session is parked at most
  // once, so capacity == session count and push never allocates — the deque
  // it replaces would allocate chunks on the hot path.
  class SlotRing {
   public:
    void Reset(std::size_t capacity) {
      slots_.assign(capacity, 0);
      head_ = tail_ = 0;
    }
    bool empty() const { return head_ == tail_; }
    std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
    std::uint32_t front() const { return slots_[head_ % slots_.size()]; }
    void pop_front() { ++head_; }
    void push_back(std::uint32_t slot) { slots_[tail_++ % slots_.size()] = slot; }

   private:
    std::vector<std::uint32_t> slots_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
  };

  std::size_t PollInbound(std::size_t max);
  // --- ranked (multi-process) mode ---
  // Remote-homed miss: ship the op to the home rank over the §6.1 RPC path
  // (op_id = session slot); the response completes the session.
  void SendRpc(std::uint32_t slot);
  // Serve a peer's RPC against the local shard; parks behind the residency
  // gate exactly like a local miss would.
  void ServeRpc(NodeId src, const RpcRequest& req);
  void OnRpcResponse(const RpcResponse& resp);
  // True when this rank can neither create nor owe any protocol message.
  bool LocallyQuiescent() const;
  // Four-counter termination (control_messages.h).  Returns true when the
  // run loop should exit: either rank 0 certified global quiescence twice in
  // a row and broadcast the halt, or we received the halt.
  bool RankedTermination();
  bool FillIdleSessions();
  void IssueOp(std::uint32_t slot);
  // Routes the slot's already-generated op: cache path on a probe hit, else
  // the direct-shard miss path (parking on the residency gate if it is up).
  void RouteOp(std::uint32_t slot);
  void RouteMissOp(std::uint32_t slot);
  // GET fast path: serve from the private L1 tail if resident (Lin validates
  // the copy against the home shard first).  True when the op completed.
  bool TryServeFromL1(std::uint32_t slot);
  // Admission on authoritative miss reads: offer to the per-node sketch and
  // fill the L1 once the key proves locally hot (and is not globally hot).
  void MaybeAdmitToL1(Key key, const Value& value, Timestamp ts);
  void StartCacheWrite(std::uint32_t slot);
  void RetryParkedScWrites();
  bool RetryGatedOps();
  void CompleteOp(std::uint32_t slot, const Value& read_value, Timestamp ts,
                  Route route);
  bool AllSessionsIdle() const { return idle_sessions_ == sessions_.size(); }
  // Strictly increasing per-thread history clock (ties would make the
  // checkers' per-session invoke sort ambiguous).
  SimTime NowTs();
  // Refreshes this node's WorkerCounters block (relaxed stores; profiler.h).
  void PublishCounters();
  // Opens/closes the steady-state allocation window (track_allocs_ runs).
  void PollAllocWindow();

  // --- hot-set subsystem (online_topk runs) ---
  // HotSetHost: the live half of the shared transition machine in topk/.
  // The manager drives write-backs, gate+fill snapshots, publication and gate
  // lifts through these; parked shard ops are retried by the run loop.
  void ApplyWriteback(const SymmetricCache::Eviction& ev) override;
  FillSnapshot GateAndSnapshot(Key key) override;
  void PublishFills(const std::vector<FillMsg>& fills) override;
  void PublishInstalled(const EpochInstalledMsg& msg) override;
  void LiftGate(Key key) override;
  void MaybeRetryDeferred();

  // --- transition timeline (runtime/tracing.h; no-ops when untraced) ---
  // DriveAnnounce with the timeline around it: an announce instant, the
  // epoch_install span open, and a gate-span sync after the manager ran.
  void DriveAnnounceTraced(const HotSetAnnounceMsg& msg);
  // Opens a gate_closed span for every newly gated key (pending_clear_ grew
  // during DriveAnnounce/DriveDeferred); LiftGate closes them.
  void SyncGateSpans();
  // Emits the barrier_wait span once every peer's install has been seen.
  void MaybeCloseBarrier();

  LiveRack* rack_;
  NodeId id_;
  LiveTransport::Endpoint* ep_;
  WorkerCounters* pub_ = nullptr;  // this node's block in the rack's vector
  Tracer* tracer_ = nullptr;       // rack-owned; null when tracing is off

  std::unique_ptr<Partition> partition_;
  std::unique_ptr<SymmetricCache> cache_;
  std::unique_ptr<CoherenceEngine> engine_;
  std::unique_ptr<HotSetManager> hot_mgr_;  // online_topk runs only
  // --- node-private L1 tail (params.l1_capacity > 0) ---
  std::unique_ptr<L1TailCache> l1_;
  std::unique_ptr<FlatSpaceSaving> l1_sketch_;  // local-popularity admission
  std::uint64_t l1_offers_ = 0;                 // drives the sketch decay cadence
  bool l1_validate_ = false;          // Lin: check each hit against the home shard
  bool l1_admit_local_only_ = false;  // ranked Lin: no shard to validate against
  WorkloadGenerator gen_;

  std::vector<Session> sessions_;
  std::size_t idle_sessions_ = 0;
  SlotRing parked_sc_writes_;
  SlotRing parked_gated_;  // ops waiting out an epoch barrier
  bool retrying_gated_ = false;  // re-parks during RetryGatedOps are not counted
  std::uint64_t quota_ = 0;
  bool halted_ = false;  // stopped issuing new ops
  bool done_ = false;    // locally quiescent, reported to the rack
  bool record_history_ = false;  // cached: skips history-clock reads when off
  bool busy_poll_ = false;

  // --- steady-state allocation window (params.track_allocs) ---
  // Opens once warmup is over (a quarter of the quota completed), closes when
  // the node halts; everything the thread allocates in between is a hot-path
  // allocation.  See common/alloc_tracker.h and docs/PERFORMANCE.md.
  bool track_allocs_ = false;
  bool alloc_window_open_ = false;
  bool alloc_window_done_ = false;
  std::uint64_t hot_path_allocs_ = 0;

  // Reused read buffer for the miss path and cache-read path; the seqlock
  // copy-out and the synthesizer both resize into it, reusing its capacity.
  Value read_scratch_;

  // --- ranked-mode state ---
  bool ranked_ = false;
  bool coordinator_ = false;  // ranked_ && rank 0: runs the termination probe
  bool halt_ = false;         // TermHalt seen (or sent): exit after a flush
  std::vector<std::uint8_t> rpc_waiting_;  // per-slot: op is out on the wire
  std::size_t rpc_outstanding_ = 0;
  // Inbound RPCs parked behind the residency gate, retried by the run loop.
  // Coordinator probe-round state: statuses collected this round, and the
  // previous round's (sent, processed) per rank for the two-identical-rounds
  // stability test.
  std::uint32_t term_round_ = 0;
  bool round_open_ = false;
  std::vector<TermStatusMsg> round_status_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> prev_counts_;
  bool prev_valid_ = false;
  SimTime last_probe_ns_ = 0;

  // --- transition-timeline state (traced online_topk runs only; these maps
  // may allocate, which is fine: the zero-alloc audit runs epochs off) ---
  std::uint64_t install_start_cycles_ = 0;  // open epoch_install span
  std::uint64_t install_epoch_ = 0;
  std::uint64_t barrier_start_cycles_ = 0;  // open barrier_wait span
  std::uint64_t barrier_epoch_ = 0;
  std::unordered_map<Key, std::pair<std::uint64_t, std::uint64_t>>
      gate_spans_;  // gated key -> {raise stamp, epoch}

  Counters counters_;
  Histogram latency_;
  std::vector<HistoryOp> history_;
  SimTime last_ts_ = 0;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_LIVE_NODE_H_
