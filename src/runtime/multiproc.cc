#include "src/runtime/multiproc.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "src/rdma/serialize.h"
#include "src/runtime/wire_codec.h"

namespace cckvs {
namespace {

// Bump when the blob layout changes; decode rejects mismatches outright
// (mixed-version racks would disagree on protocol parameters anyway).
constexpr std::uint8_t kParamsVersion = 4;  // v4: L1 tail + per-node rank skew
constexpr std::uint64_t kArtifactsMagic = 0x63634b565241'01ull;  // "ccKVRA" v1

std::uint64_t DoubleBits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(std::uint64_t u) {
  double d = 0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

std::string ToHex(const Buffer& raw) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string hex;
  hex.reserve(raw.size() * 2);
  for (const std::uint8_t b : raw) {
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xf]);
  }
  return hex;
}

bool FromHex(const std::string& hex, Buffer* raw) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  raw->clear();
  raw->reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    raw->push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

void PutOp(BufferWriter* w, const HistoryOp& op) {
  w->PutU32(op.session);
  w->PutU8(static_cast<std::uint8_t>(op.type));
  w->PutU64(op.key);
  w->PutString(op.value);
  w->PutU32(op.ts.clock);
  w->PutU8(op.ts.writer);
  w->PutU64(op.invoke);
  w->PutU64(op.complete);
}

bool GetOp(SafeReader* r, HistoryOp* op) {
  std::uint8_t type = 0;
  std::uint8_t writer = 0;
  if (!r->GetU32(&op->session) || !r->GetU8(&type) || !r->GetU64(&op->key) ||
      !r->GetString(&op->value) || !r->GetU32(&op->ts.clock) || !r->GetU8(&writer) ||
      !r->GetU64(&op->invoke) || !r->GetU64(&op->complete) || type > 1) {
    return false;
  }
  op->type = static_cast<OpType>(type);
  op->ts.writer = static_cast<NodeId>(writer);
  return true;
}

}  // namespace

std::string EncodeRackParams(const LiveRackParams& p) {
  Buffer raw;
  BufferWriter w(&raw);
  w.PutU8(kParamsVersion);
  w.PutU32(static_cast<std::uint32_t>(p.num_nodes));
  w.PutU8(static_cast<std::uint8_t>(p.consistency));
  w.PutU64(p.workload.keyspace);
  w.PutU64(DoubleBits(p.workload.zipf_alpha));
  w.PutU64(DoubleBits(p.workload.write_ratio));
  w.PutU32(p.workload.value_bytes);
  w.PutU64(p.workload.scramble_seed);
  w.PutU64(p.workload.drift_period_ops);
  w.PutU64(p.workload.drift_rank_shift);
  w.PutU64(p.cache_capacity);
  w.PutU64(p.partition_buckets);
  w.PutU32(static_cast<std::uint32_t>(p.window_per_node));
  w.PutU64(p.ops_per_node);
  w.PutU32(static_cast<std::uint32_t>(p.bcast_credits_per_peer));
  w.PutU32(static_cast<std::uint32_t>(p.credit_update_batch));
  w.PutU8(p.coalescing ? 1 : 0);
  w.PutU32(static_cast<std::uint32_t>(p.coalesce_max_batch));
  w.PutU8(p.coalesce_flush_on_idle ? 1 : 0);
  w.PutU64(p.coalesce_flush_deadline_us);
  w.PutU8(p.prefill_hot_set ? 1 : 0);
  w.PutU8(p.online_topk ? 1 : 0);
  w.PutU64(p.topk_epoch_requests);
  w.PutU64(DoubleBits(p.topk_sample_probability));
  w.PutU8(p.topk_adaptive_epochs ? 1 : 0);
  w.PutU8(p.record_history ? 1 : 0);
  w.PutU64(p.seed);
  w.PutU8(static_cast<std::uint8_t>(p.transport.kind));
  w.PutU32(static_cast<std::uint32_t>(p.transport.rank));  // -1 round-trips
  w.PutString(p.transport.shm_name);
  w.PutU64(p.transport.shm_ring_bytes);
  w.PutString(p.transport.socket_path_base);
  w.PutU32(static_cast<std::uint32_t>(p.transport.tcp_port_base));
  w.PutU32(static_cast<std::uint32_t>(p.transport.connect_timeout_ms));
  w.PutU64(p.clock_epoch_ns);
  w.PutU8(p.pinning ? 1 : 0);
  w.PutU32(static_cast<std::uint32_t>(p.pin_core_base));
  w.PutU32(static_cast<std::uint32_t>(p.pin_stride));
  w.PutU8(p.busy_poll ? 1 : 0);
  w.PutU8(p.profile ? 1 : 0);
  w.PutU64(p.profile_interval_ms);
  w.PutString(p.profile_csv_path);
  w.PutU8(p.profile_to_stderr ? 1 : 0);
  w.PutU8(p.track_allocs ? 1 : 0);
  w.PutU8(p.alloc_assert ? 1 : 0);
  w.PutU8(p.prefill_store ? 1 : 0);
  w.PutString(p.trace_path);
  w.PutU64(p.trace_sample);
  w.PutU64(p.trace_ring_capacity);
  w.PutU64(p.l1_capacity);
  w.PutU8(static_cast<std::uint8_t>(p.l1_policy));
  w.PutU64(p.workload.node_rank_stride);
  return ToHex(raw);
}

bool DecodeRackParams(const std::string& hex, LiveRackParams* out, std::string* error) {
  Buffer raw;
  if (!FromHex(hex, &raw)) {
    *error = "rack params blob is not valid hex";
    return false;
  }
  SafeReader r(raw.data(), raw.size());
  std::uint8_t version = 0;
  if (!r.GetU8(&version) || version != kParamsVersion) {
    *error = "rack params blob version mismatch";
    return false;
  }
  LiveRackParams p;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::uint8_t u8 = 0;
  const bool ok =
      r.GetU32(&u32) && ((p.num_nodes = static_cast<int>(u32)), true) &&
      r.GetU8(&u8) && ((p.consistency = static_cast<ConsistencyModel>(u8)), true) &&
      r.GetU64(&p.workload.keyspace) &&
      r.GetU64(&u64) && ((p.workload.zipf_alpha = BitsDouble(u64)), true) &&
      r.GetU64(&u64) && ((p.workload.write_ratio = BitsDouble(u64)), true) &&
      r.GetU32(&p.workload.value_bytes) && r.GetU64(&p.workload.scramble_seed) &&
      r.GetU64(&p.workload.drift_period_ops) &&
      r.GetU64(&p.workload.drift_rank_shift) &&
      r.GetU64(&u64) && ((p.cache_capacity = u64), true) &&
      r.GetU64(&u64) && ((p.partition_buckets = u64), true) &&
      r.GetU32(&u32) && ((p.window_per_node = static_cast<int>(u32)), true) &&
      r.GetU64(&p.ops_per_node) &&
      r.GetU32(&u32) && ((p.bcast_credits_per_peer = static_cast<int>(u32)), true) &&
      r.GetU32(&u32) && ((p.credit_update_batch = static_cast<int>(u32)), true) &&
      r.GetU8(&u8) && ((p.coalescing = u8 != 0), true) &&
      r.GetU32(&u32) && ((p.coalesce_max_batch = static_cast<int>(u32)), true) &&
      r.GetU8(&u8) && ((p.coalesce_flush_on_idle = u8 != 0), true) &&
      r.GetU64(&p.coalesce_flush_deadline_us) &&
      r.GetU8(&u8) && ((p.prefill_hot_set = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.online_topk = u8 != 0), true) &&
      r.GetU64(&p.topk_epoch_requests) &&
      r.GetU64(&u64) && ((p.topk_sample_probability = BitsDouble(u64)), true) &&
      r.GetU8(&u8) && ((p.topk_adaptive_epochs = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.record_history = u8 != 0), true) &&
      r.GetU64(&p.seed) &&
      r.GetU8(&u8) && ((p.transport.kind = static_cast<TransportKind>(u8)), true) &&
      r.GetU32(&u32) && ((p.transport.rank = static_cast<int>(u32)), true) &&
      r.GetString(&p.transport.shm_name) &&
      r.GetU64(&u64) && ((p.transport.shm_ring_bytes = u64), true) &&
      r.GetString(&p.transport.socket_path_base) &&
      r.GetU32(&u32) && ((p.transport.tcp_port_base = static_cast<int>(u32)), true) &&
      r.GetU32(&u32) && ((p.transport.connect_timeout_ms = static_cast<int>(u32)), true) &&
      r.GetU64(&p.clock_epoch_ns) &&
      r.GetU8(&u8) && ((p.pinning = u8 != 0), true) &&
      r.GetU32(&u32) && ((p.pin_core_base = static_cast<int>(u32)), true) &&
      r.GetU32(&u32) && ((p.pin_stride = static_cast<int>(u32)), true) &&
      r.GetU8(&u8) && ((p.busy_poll = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.profile = u8 != 0), true) &&
      r.GetU64(&p.profile_interval_ms) &&
      r.GetString(&p.profile_csv_path) &&
      r.GetU8(&u8) && ((p.profile_to_stderr = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.track_allocs = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.alloc_assert = u8 != 0), true) &&
      r.GetU8(&u8) && ((p.prefill_store = u8 != 0), true) &&
      r.GetString(&p.trace_path) && r.GetU64(&p.trace_sample) &&
      r.GetU64(&u64) && ((p.trace_ring_capacity = u64), true) &&
      r.GetU64(&u64) && ((p.l1_capacity = u64), true) &&
      r.GetU8(&u8) && u8 <= 2 && ((p.l1_policy = static_cast<L1Policy>(u8)), true) &&
      r.GetU64(&p.workload.node_rank_stride) && r.AtEnd();
  if (!ok) {
    *error = "rack params blob truncated or malformed";
    return false;
  }
  *out = std::move(p);
  return true;
}

bool SaveRankArtifacts(const std::string& path, const RankArtifacts& artifacts,
                       std::string* error) {
  Buffer raw;
  BufferWriter w(&raw);
  w.PutU64(kArtifactsMagic);
  w.PutU64(artifacts.completed);
  w.PutU64(artifacts.rpcs_sent);
  w.PutString(artifacts.transport_error);
  w.PutU64(artifacts.history.size());
  for (const HistoryOp& op : artifacts.history) {
    PutOp(&w, op);
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  f.write(reinterpret_cast<const char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  f.flush();
  if (!f) {
    *error = "short write to " + path;
    return false;
  }
  return true;
}

bool LoadRankArtifacts(const std::string& path, RankArtifacts* out,
                       std::string* error) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  Buffer raw((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  SafeReader r(raw.data(), raw.size());
  std::uint64_t magic = 0;
  RankArtifacts a;
  std::uint64_t count = 0;
  if (!r.GetU64(&magic) || magic != kArtifactsMagic || !r.GetU64(&a.completed) ||
      !r.GetU64(&a.rpcs_sent) || !r.GetString(&a.transport_error) ||
      !r.GetU64(&count)) {
    *error = "artifact file " + path + " truncated or not an artifact file";
    return false;
  }
  // Each op costs ≥ 31 bytes on disk; reject counts the file cannot hold
  // before reserving memory for them.
  if (count > raw.size()) {
    *error = "artifact file " + path + " claims impossible op count";
    return false;
  }
  a.history.resize(count);
  for (HistoryOp& op : a.history) {
    if (!GetOp(&r, &op)) {
      *error = "artifact file " + path + " has a truncated history op";
      return false;
    }
  }
  if (!r.AtEnd()) {
    *error = "artifact file " + path + " has trailing bytes";
    return false;
  }
  *out = std::move(a);
  return true;
}

pid_t SpawnSelf(const std::vector<std::string>& args, std::string* error) {
  std::vector<std::string> argv_storage;
  argv_storage.reserve(args.size() + 1);
  argv_storage.push_back("/proc/self/exe");
  for (const std::string& a : args) {
    argv_storage.push_back(a);
  }
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& a : argv_storage) {
    argv.push_back(a.data());
  }
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    return -1;
  }
  if (pid == 0) {
    execv("/proc/self/exe", argv.data());
    // Only reached on exec failure; _exit avoids running parent atexit hooks.
    _exit(127);
  }
  return pid;
}

bool WaitExit(pid_t pid, int* exit_code, std::string* error) {
  int status = 0;
  while (waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      *error = std::string("waitpid: ") + std::strerror(errno);
      *exit_code = -1;
      return false;
    }
  }
  if (WIFEXITED(status)) {
    *exit_code = WEXITSTATUS(status);
    return true;
  }
  *exit_code = -1;
  if (WIFSIGNALED(status)) {
    *error = "child killed by signal " + std::to_string(WTERMSIG(status));
  } else {
    *error = "child exited abnormally";
  }
  return false;
}

}  // namespace cckvs
