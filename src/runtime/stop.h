// Cooperative stop signalling for live-runtime node threads.
//
// A deliberately tiny std::stop_token-alike (no callbacks, no jthread
// coupling): the rack owns a StopSource; each node thread polls a StopToken
// view of it between batches.  Stopping is always cooperative — a node that
// sees the flag finishes its in-flight operations and participates in the
// rack-wide drain before exiting, so histories are sealed, never truncated.

#ifndef CCKVS_RUNTIME_STOP_H_
#define CCKVS_RUNTIME_STOP_H_

#include <atomic>

namespace cckvs {

class StopToken;

class StopSource {
 public:
  StopSource() = default;
  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_release); }
  bool StopRequested() const { return stop_.load(std::memory_order_acquire); }
  StopToken token() const;

 private:
  std::atomic<bool> stop_{false};
};

class StopToken {
 public:
  StopToken() = default;

  bool StopRequested() const {
    return stop_ != nullptr && stop_->load(std::memory_order_acquire);
  }

 private:
  friend class StopSource;
  explicit StopToken(const std::atomic<bool>* stop) : stop_(stop) {}

  const std::atomic<bool>* stop_ = nullptr;
};

inline StopToken StopSource::token() const { return StopToken(&stop_); }

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_STOP_H_
