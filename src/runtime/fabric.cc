#include "src/runtime/fabric.h"

#include <atomic>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/channel.h"
#include "src/runtime/shm_fabric.h"
#include "src/runtime/socket_fabric.h"

namespace cckvs {
namespace {

// The original single-process transport, behind the interface: one
// MpscChannel per node, a credit matrix of atomics, one shared inflight
// counter.  Batches move by value — no serialization on this path, which is
// what makes inproc the baseline the byte-moving backends are diffed against.
class InprocFabric final : public TransportFabric {
 public:
  explicit InprocFabric(const FabricConfig& config)
      : num_nodes_(config.num_nodes),
        returned_(static_cast<std::size_t>(config.num_nodes) * config.num_nodes) {
    inboxes_.reserve(static_cast<std::size_t>(num_nodes_));
    for (int i = 0; i < num_nodes_; ++i) {
      inboxes_.push_back(
          std::make_unique<MpscChannel<WireBatch>>(config.channel_capacity));
    }
  }

  void Deliver(NodeId to, WireBatch&& batch) override {
    inboxes_[to]->Push(std::move(batch));
  }

  std::size_t Drain(NodeId self, std::vector<WireBatch>* out,
                    std::size_t max) override {
    return inboxes_[self]->TryDrain(out, max);
  }

  void Wait(NodeId self, std::chrono::microseconds timeout) override {
    std::vector<WireBatch> none;
    inboxes_[self]->WaitDrain(&none, /*max=*/0, timeout);  // wakes on arrival
  }

  void ReturnCredits(NodeId self, NodeId to, int n) override {
    // The live analogue of the header-only credit-update message: an atomic
    // add on the sender's (to's) counter for the to->self direction.
    Cell(to, self).fetch_add(n, std::memory_order_release);
  }

  int TakeReturnedCredits(NodeId self, NodeId peer) override {
    return Cell(self, peer).exchange(0, std::memory_order_acquire);
  }

  void AddInflight(std::uint64_t n) override {
    inflight_.fetch_add(n, std::memory_order_acq_rel);
  }
  void SubInflight(std::uint64_t n) override {
    inflight_.fetch_sub(n, std::memory_order_acq_rel);
  }
  std::uint64_t inflight() const override {
    return inflight_.load(std::memory_order_acquire);
  }

  FabricStats stats(NodeId self) const override {
    const MpscChannel<WireBatch>& inbox = *inboxes_[self];
    return FabricStats{inbox.pushes(), inbox.full_waits(), inbox.wakeups()};
  }

  std::uint64_t InboundDepth(NodeId self) const override {
    return inboxes_[self]->size();
  }

 private:
  // Credits peers have returned to `sender`, per returning peer.
  std::atomic<int>& Cell(NodeId sender, NodeId returner) {
    return returned_[static_cast<std::size_t>(sender) * num_nodes_ + returner];
  }

  const int num_nodes_;
  std::vector<std::unique_ptr<MpscChannel<WireBatch>>> inboxes_;
  std::vector<std::atomic<int>> returned_;
  std::atomic<std::uint64_t> inflight_{0};
};

}  // namespace

std::unique_ptr<TransportFabric> MakeFabric(const FabricConfig& config,
                                            const TransportOptions& opts,
                                            std::string* error) {
  CCKVS_CHECK_GE(config.num_nodes, 2);
  switch (opts.kind) {
    case TransportKind::kInproc:
      CCKVS_CHECK_LT(opts.rank, 0);  // inproc cannot span processes
      return std::make_unique<InprocFabric>(config);
    case TransportKind::kShm:
      return MakeShmFabric(config, opts, error);
    case TransportKind::kSocket:
      return MakeSocketFabric(config, opts, error);
  }
  *error = "unknown transport kind";
  return nullptr;
}

}  // namespace cckvs
