// Live-rack transport: credit backpressure + per-peer message coalescing
// (runtime/coalescer.h) over a pluggable delivery fabric (runtime/fabric.h).
//
// Each node owns an Endpoint.  The endpoint implements the consistency
// engines' MessageSink on the send side and exposes a Poll() pump on the
// receive side, so the exact ScEngine/LinEngine production code runs on real
// threads — or real processes — with no changes: the engine still sees a
// single-threaded host (only the owning node's thread calls into it; peers
// only deliver through the fabric).
//
// Fabric traffic is per-batch: outgoing messages append to per-peer
// WireBatch buffers in the SendCoalescer and ship as one Deliver() when a
// flush policy fires (size cap, the host's op-boundary flush, or the
// pre-sleep idle backstop) — the live analogue of §8.5's header
// amortization.  With Config::coalescing off the same path runs with batch
// size 1.  Per-peer FIFO order — the invalidation-then-update order the Lin
// protocol relies on, and the lanes the hot-set install barrier rides — is
// preserved across batch boundaries: batches close in append order, and
// every fabric lane is FIFO (that is the fabric contract, conformance-tested
// per backend).
//
// Flow control stays per-MESSAGE and mirrors §6.3/§6.4 via the simulator's
// own primitives (src/rdma/flow_control.h):
//
//  * Broadcast traffic (updates, invalidations, epoch messages) spends
//    explicit per-peer credits from a CreditPool before entering a batch.
//    With no credit — or with earlier messages already parked — the message
//    queues in a per-peer FIFO ahead of the coalescer, preserving send
//    order.  Receivers count every credited message and return credits in
//    batches (CreditUpdateBatcher); the return rides the fabric's credit
//    path — an atomic add in-process, a credit frame on the wire.
//  * Acks, RPC request/response pairs, and termination control messages ride
//    implicit credits: each is bounded by what it answers (invalidations,
//    the requester's session window, one probe per round), so they bypass
//    the pool — exactly the sim's RackNode::SendAck.
//
// inflight() likewise counts MESSAGES — from the moment one enters an open
// batch (committed to delivery) until its receive handler completes — so the
// rack's drain-phase exit condition is unchanged by batching.  Ranked socket
// racks, where the counter cannot span hosts, terminate via the counting
// protocol in control_messages.h instead (fabric.h: InflightIsGlobal).

#ifndef CCKVS_RUNTIME_TRANSPORT_H_
#define CCKVS_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/histogram.h"
#include "src/protocol/engine.h"
#include "src/protocol/messages.h"
#include "src/rdma/flow_control.h"
#include "src/runtime/coalescer.h"
#include "src/runtime/fabric.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

class LiveTransport {
 public:
  struct Config {
    int num_nodes = 0;
    int bcast_credits_per_peer = 64;
    int credit_update_batch = 8;
    // Per-node inbound bound; LiveRack sizes this from credits + window so
    // that delivery never blocks.  Counts batches, which the message bound
    // dominates (every batch carries at least one message).
    std::size_t channel_capacity = 4096;
    // §8.5 on the live fabric: batch same-destination messages into shared
    // fabric deliveries.  Off = batch size 1 through the same code path.
    bool coalescing = false;
    int coalesce_max_batch = 16;
    // Backstop: WaitForTraffic flushes open batches before sleeping.  The
    // run loop's op-boundary flush normally ships everything first, so this
    // firing (flushes_idle > 0) means a host skipped its boundary flushes.
    bool coalesce_flush_on_idle = true;
    // Deadline-based flush, mirroring the sim's coalesce_window_ns: when > 0,
    // op-boundary flushes hold sub-cap batches until they have been open this
    // many microseconds (size-cap flushes still fire immediately), trading
    // bounded extra latency for fatter batches.  The pre-sleep path flushes
    // expired batches and caps the sleep to the earliest open deadline, so no
    // message is ever held past deadline + one wakeup.
    std::uint64_t coalesce_flush_deadline_us = 0;
    // Monotonic clock for the deadline policy; tests inject a fake.  Defaults
    // to steady_clock when a deadline is set.
    std::function<std::uint64_t()> clock_ns;
    // Stock the fabric's WireBatchPool with this many fully-warm batches
    // (coalesce_max_batch slots, prewarm_value_bytes of string capacity each)
    // at construction.  0 = start cold and warm up through use — fine for
    // correctness (warm-up is one-time per slot), required off for tests that
    // count pool behaviour.  LiveRack sets it for track_allocs runs so the
    // measured window starts past all first-touch allocations.
    std::size_t prewarm_batches = 0;
    std::size_t prewarm_value_bytes = 0;
    // Which fabric carries the batches (inproc | shm | socket), and — for
    // ranked multi-process racks — which endpoint this process owns.
    TransportOptions transport;
  };

  class Endpoint final : public MessageSink {
   public:
    Endpoint(LiveTransport* transport, NodeId self);

    // --- MessageSink (owning node's thread only) ---
    void BroadcastUpdate(const UpdateMsg& msg) override;
    void BroadcastInvalidate(const InvalidateMsg& msg) override;
    void SendAck(NodeId to, const AckMsg& msg) override;

    // --- epoch traffic (owning node's thread only; credited) ---
    void BroadcastHotSet(const HotSetAnnounceMsg& msg);
    void BroadcastFill(const FillMsg& msg);
    void BroadcastEpochInstalled(const EpochInstalledMsg& msg);

    // Uncredited point-to-point send (RPC request/response, termination
    // control): bounded by what it answers, so it bypasses the credit pool
    // like an ack — but still coalesces.  Owning node's thread only.
    void SendDirect(NodeId to, WireBody body);

    // Drains up to `max_batches` inbound batches, invoking
    // handler(NodeId src, const WireBody&) for each message after the
    // receive-side run demux (consecutive same-key updates collapse to the
    // newest; see coalescer.h), then performs per-message credit accounting.
    // Owning node's thread only.  Returns the number of messages processed.
    template <typename Handler>
    std::size_t Poll(std::size_t max_batches, Handler&& handler) {
      scratch_.clear();
      fabric().Drain(self_, &scratch_, max_batches);
      UpdateRunDemux demux(&updates_collapsed_);
      std::size_t processed = 0;
      for (const WireBatch& batch : scratch_) {
        for (const WireBody& body : batch) {
          demux.OnMessage(batch.src, body, handler);
          if (IsCredited(body) && batcher_.OnReceived(batch.src)) {
            // Return a credit batch to the sender (header-only message in the
            // paper; an atomic add or credit frame in the fabric).
            fabric().ReturnCredits(self_, batch.src, batcher_.batch());
            ++credit_returns_;
          }
          if (!IsTermControl(body)) {
            ++data_processed_;
          }
          // A collapsed update may still be held by the demux here; it is
          // applied before Poll returns, and updates trigger no sends, so a
          // racing drain-phase inflight()==0 observation stays sound.
          fabric().SubInflight(1);
          ++processed;
        }
      }
      demux.Flush(handler);  // demux holds pointers into scratch_: flush first
      for (WireBatch& batch : scratch_) {
        fabric().batch_pool().Recycle(std::move(batch));
      }
      messages_received_ += processed;
      return processed;
    }

    // Ships every open batch (the host's op-boundary flush, or a test's
    // explicit policy).  Owning node's thread only.
    void FlushBatches(FlushCause cause);

    // Retries credit-parked broadcasts after harvesting returned credits.
    void FlushPending();

    // True when every peer has at least one broadcast credit (the SC write
    // throttle point, as in RackNode::AllPeersHaveBcastCredit).
    bool AllPeersHaveCredit();

    // True when no broadcast is parked waiting for credits and no message
    // sits in an open batch.
    bool NothingPending() const;

    // Sleeps until a batch arrives or `timeout` elapses (idle backoff).
    // Flushes open batches first when Config::coalesce_flush_on_idle is set,
    // so no message can sleep inside a batch buffer.
    void WaitForTraffic(std::chrono::microseconds timeout);

    // The busy-poll counterpart of WaitForTraffic's pre-sleep flush: applies
    // the same deadline/idle backstop policy WITHOUT sleeping.  A busy-poll
    // run loop never parks, so without this call a sub-cap batch held under
    // coalesce_flush_deadline_us would only ship at the next boundary flush
    // with traffic — or never, on an idle node.  Cheap when nothing is open.
    void PollExpiredDeadlines();

    std::uint64_t messages_received() const { return messages_received_; }
    std::uint64_t batches_received() const { return fabric().stats(self_).pushes; }
    std::uint64_t full_waits() const { return fabric().stats(self_).full_waits; }
    std::uint64_t wakeups() const { return fabric().stats(self_).wakeups; }
    std::uint64_t credit_parks() const { return credit_parks_; }
    std::uint64_t updates_sent() const { return updates_sent_; }
    std::uint64_t invalidations_sent() const { return invalidations_sent_; }
    std::uint64_t acks_sent() const { return acks_sent_; }
    std::uint64_t credit_returns() const { return credit_returns_; }
    std::uint64_t epoch_msgs_sent() const { return epoch_msgs_sent_; }
    std::uint64_t updates_collapsed() const { return updates_collapsed_; }
    // Termination-protocol counters: data (non-Term*) messages this endpoint
    // committed to delivery / finished processing (control_messages.h).
    std::uint64_t data_sent() const { return data_sent_; }
    std::uint64_t data_processed() const { return data_processed_; }
    const SendCoalescer& coalescer() const { return coalescer_; }
    // Arms batch-residence tracing on the send coalescer (runtime/tracing.h).
    // Call before the owning node's thread starts; null disarms.
    void set_tracer(Tracer* tracer) { coalescer_.set_tracer(tracer); }

   private:
    friend class LiveTransport;

    TransportFabric& fabric() const { return *transport_->fabric_; }
    void SendCredited(NodeId to, WireBody body);
    void HarvestCredits(NodeId peer);
    // Commits one message to delivery: counts it in flight, appends it to the
    // peer's open batch, and ships the batch if it hit the size cap.
    void Enqueue(NodeId to, WireBody body);
    void DeliverBatch(NodeId to, WireBatch batch);
    template <typename T>
    void BroadcastCredited(const T& msg, std::uint64_t* counter);

    // Typed Enqueue: assigns the message into a recycled batch slot instead
    // of constructing a WireBody temporary — the zero-alloc fast path for
    // every steady-state send.  Typed sends are never Term* control traffic.
    template <typename T>
    void EnqueueTyped(NodeId to, const T& msg) {
      fabric().AddInflight(1);
      ++data_sent_;
      if (coalescer_.AppendTyped(to, msg)) {
        DeliverBatch(to, coalescer_.Take(to, FlushCause::kSize));
      }
    }

    // Typed SendCredited: same credit protocol as the WireBody overload; only
    // the (rare) credit-parked path still materializes a WireBody.
    template <typename T>
    void SendCreditedTyped(NodeId to, const T& msg) {
      HarvestCredits(to);
      if (!pending_[to].empty() || !bcast_credits_.TryAcquire(to)) {
        ++credit_parks_;
        pending_[to].push_back(WireBody{msg});
        return;
      }
      EnqueueTyped(to, msg);
    }

    LiveTransport* transport_;
    NodeId self_;
    SendCoalescer coalescer_;
    CreditPool bcast_credits_;      // sender side, per peer
    CreditUpdateBatcher batcher_;   // receiver side, per peer
    std::vector<std::deque<WireBody>> pending_;  // per peer, FIFO
    std::vector<WireBatch> scratch_;             // Poll() drain buffer
    std::uint64_t credit_parks_ = 0;
    std::uint64_t updates_sent_ = 0;
    std::uint64_t invalidations_sent_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t credit_returns_ = 0;
    std::uint64_t epoch_msgs_sent_ = 0;
    std::uint64_t messages_received_ = 0;
    std::uint64_t updates_collapsed_ = 0;
    std::uint64_t data_sent_ = 0;
    std::uint64_t data_processed_ = 0;
  };

  // Builds the fabric named by config.transport.  On fabric failure (connect
  // refused, shm attach timeout) the transport constructs EMPTY — ok() is
  // false, init_error() says why, and no endpoints exist — so callers can
  // surface a clean report error instead of aborting.
  explicit LiveTransport(const Config& config);
  ~LiveTransport();

  bool ok() const { return fabric_ != nullptr; }
  const std::string& init_error() const { return init_error_; }

  // In ranked mode only the local rank's endpoint exists.
  Endpoint& endpoint(NodeId id) { return *endpoints_[id]; }
  bool has_endpoint(NodeId id) const {
    return id < endpoints_.size() && endpoints_[id] != nullptr;
  }
  const Config& config() const { return config_; }

  TransportFabric& fabric() { return *fabric_; }
  const TransportFabric& fabric() const { return *fabric_; }

  // Messages enqueued but not yet fully processed (handler completed).  Zero
  // together with all-nodes-quiescent means the rack can produce no further
  // work — the drain-phase exit condition.  Counts messages (including those
  // in open send batches), never batches.  Rack-global unless the fabric says
  // otherwise (ranked socket racks use the counting protocol instead).
  std::uint64_t inflight() const { return fabric_->inflight(); }

 private:
  Config config_;
  std::unique_ptr<TransportFabric> fabric_;
  std::string init_error_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_TRANSPORT_H_
