// In-process transport for the live rack: MPSC channels + credit backpressure.
//
// Each node owns an Endpoint.  The endpoint implements the consistency
// engines' MessageSink on the send side and exposes a Poll() pump on the
// receive side, so the exact ScEngine/LinEngine production code runs on real
// threads with no changes — the engine still sees a single-threaded host
// (only the owning node's thread calls into it; peers only enqueue).
//
// Flow control mirrors §6.3/§6.4 via the simulator's own primitives
// (src/rdma/flow_control.h):
//
//  * Broadcast traffic (updates, invalidations) spends explicit per-peer
//    credits from a CreditPool.  With no credit — or with earlier messages
//    already parked — the message queues in a per-peer FIFO, preserving the
//    invalidation-then-update order the Lin protocol relies on.  Receivers
//    return credits in batches (CreditUpdateBatcher); the return ride is a
//    per-direction atomic counter, the live analogue of the header-only
//    credit-update message.
//  * Acks ride on implicit credits: they answer invalidations one-for-one, so
//    the writer's outstanding invalidations already bound them and they
//    bypass the pool — exactly the sim's RackNode::SendAck.
//
// Channel capacity is sized so that credits + the ack bound keep every
// channel from ever filling; MpscChannel::full_waits() counts violations of
// that invariant (zero in a healthy run).

#ifndef CCKVS_RUNTIME_TRANSPORT_H_
#define CCKVS_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "src/protocol/engine.h"
#include "src/protocol/messages.h"
#include "src/rdma/flow_control.h"
#include "src/runtime/channel.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

// One message on the in-process fabric: the consistency protocol's three
// classes plus the hot-set subsystem's epoch traffic.  Epoch messages ride
// the same credited lanes as broadcasts, which both bounds them under the
// §6.3 credit scheme and keeps them FIFO behind the updates a node sent
// earlier — the ordering the install barrier depends on (hot_set_manager.h).
struct WireMsg {
  NodeId src = 0;
  std::variant<UpdateMsg, InvalidateMsg, AckMsg, HotSetAnnounceMsg, FillMsg,
               EpochInstalledMsg>
      body;
};

class LiveTransport {
 public:
  struct Config {
    int num_nodes = 0;
    int bcast_credits_per_peer = 64;
    int credit_update_batch = 8;
    // Per-node inbound channel bound; LiveRack sizes this from credits +
    // window so that Push never blocks.
    std::size_t channel_capacity = 4096;
  };

  class Endpoint final : public MessageSink {
   public:
    Endpoint(LiveTransport* transport, NodeId self);

    // --- MessageSink (owning node's thread only) ---
    void BroadcastUpdate(const UpdateMsg& msg) override;
    void BroadcastInvalidate(const InvalidateMsg& msg) override;
    void SendAck(NodeId to, const AckMsg& msg) override;

    // --- epoch traffic (owning node's thread only; credited) ---
    void BroadcastHotSet(const HotSetAnnounceMsg& msg);
    void BroadcastFill(const FillMsg& msg);
    void BroadcastEpochInstalled(const EpochInstalledMsg& msg);

    // Drains up to `max` inbound messages, invoking handler(const WireMsg&)
    // for each, then performs receive-side credit accounting.  Owning node's
    // thread only.  Returns the number of messages processed.
    template <typename Handler>
    std::size_t Poll(std::size_t max, Handler&& handler) {
      scratch_.clear();
      inbox_.TryDrain(&scratch_, max);
      for (const WireMsg& msg : scratch_) {
        handler(msg);
        if (!std::holds_alternative<AckMsg>(msg.body) &&
            batcher_.OnReceived(msg.src)) {
          // Return a credit batch to the sender (header-only message in the
          // paper; an atomic add here).
          transport_->endpoints_[msg.src]->returned_[self_].fetch_add(
              batcher_.batch(), std::memory_order_release);
          ++credit_returns_;
        }
        transport_->inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
      return scratch_.size();
    }

    // Retries credit-parked broadcasts after harvesting returned credits.
    void FlushPending();

    // True when every peer has at least one broadcast credit (the SC write
    // throttle point, as in RackNode::AllPeersHaveBcastCredit).
    bool AllPeersHaveCredit();

    // True when no broadcast is parked waiting for credits.
    bool NothingPending() const;

    // Sleeps until a message arrives or `timeout` elapses (idle backoff).
    void WaitForTraffic(std::chrono::microseconds timeout);

    std::uint64_t messages_received() const { return inbox_.pushes(); }
    std::uint64_t full_waits() const { return inbox_.full_waits(); }
    std::uint64_t credit_parks() const { return credit_parks_; }
    std::uint64_t updates_sent() const { return updates_sent_; }
    std::uint64_t invalidations_sent() const { return invalidations_sent_; }
    std::uint64_t acks_sent() const { return acks_sent_; }
    std::uint64_t credit_returns() const { return credit_returns_; }
    std::uint64_t epoch_msgs_sent() const { return epoch_msgs_sent_; }

   private:
    friend class LiveTransport;

    void SendCredited(NodeId to, WireMsg msg);
    void HarvestCredits(NodeId peer);
    void Deliver(NodeId to, WireMsg msg);
    template <typename T>
    void BroadcastCredited(const T& msg, std::uint64_t* counter);

    LiveTransport* transport_;
    NodeId self_;
    MpscChannel<WireMsg> inbox_;
    CreditPool bcast_credits_;      // sender side, per peer
    CreditUpdateBatcher batcher_;   // receiver side, per peer
    // Credits returned by each peer for the self->peer direction; written by
    // the peer's thread, harvested by ours.
    std::vector<std::atomic<int>> returned_;
    std::vector<std::deque<WireMsg>> pending_;  // per peer, FIFO
    std::vector<WireMsg> scratch_;              // Poll() batch buffer
    std::uint64_t credit_parks_ = 0;
    std::uint64_t updates_sent_ = 0;
    std::uint64_t invalidations_sent_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t credit_returns_ = 0;
    std::uint64_t epoch_msgs_sent_ = 0;
  };

  explicit LiveTransport(const Config& config);

  Endpoint& endpoint(NodeId id) { return *endpoints_[id]; }
  const Config& config() const { return config_; }

  // Messages enqueued but not yet fully processed (handler completed).  Zero
  // together with all-nodes-quiescent means the rack can produce no further
  // work — the drain-phase exit condition.
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  Config config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<std::uint64_t> inflight_{0};
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_TRANSPORT_H_
