// In-process transport for the live rack: MPSC channels + credit backpressure
// + per-peer message coalescing (runtime/coalescer.h).
//
// Each node owns an Endpoint.  The endpoint implements the consistency
// engines' MessageSink on the send side and exposes a Poll() pump on the
// receive side, so the exact ScEngine/LinEngine production code runs on real
// threads with no changes — the engine still sees a single-threaded host
// (only the owning node's thread calls into it; peers only enqueue).
//
// Channel traffic is per-batch: outgoing messages append to per-peer
// WireBatch buffers in the SendCoalescer and ship as one channel push when a
// flush policy fires (size cap, the host's op-boundary flush, or the
// pre-sleep idle backstop) — the live analogue of §8.5's header
// amortization.  With Config::coalescing off the same path runs with batch
// size 1.  Per-peer FIFO order — the invalidation-then-update order the Lin
// protocol relies on, and the lanes the hot-set install barrier rides — is
// preserved across batch boundaries: batches close in append order, and the
// channel itself is FIFO.
//
// Flow control stays per-MESSAGE and mirrors §6.3/§6.4 via the simulator's
// own primitives (src/rdma/flow_control.h):
//
//  * Broadcast traffic (updates, invalidations) spends explicit per-peer
//    credits from a CreditPool before entering a batch.  With no credit — or
//    with earlier messages already parked — the message queues in a per-peer
//    FIFO ahead of the coalescer, preserving send order.  Receivers count
//    every received message and return credits in batches
//    (CreditUpdateBatcher); the return ride is a per-direction atomic
//    counter, the live analogue of the header-only credit-update message.
//  * Acks ride on implicit credits: they answer invalidations one-for-one, so
//    the writer's outstanding invalidations already bound them and they
//    bypass the pool — exactly the sim's RackNode::SendAck.
//
// inflight() likewise counts MESSAGES — from the moment one enters an open
// batch (committed to delivery) until its receive handler completes — so the
// rack's drain-phase exit condition is unchanged by batching.
//
// Channel capacity is sized so that credits + the ack bound keep every
// channel from ever filling (batches never outnumber the messages they
// carry); MpscChannel::full_waits() counts violations of that invariant
// (zero in a healthy run).

#ifndef CCKVS_RUNTIME_TRANSPORT_H_
#define CCKVS_RUNTIME_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/histogram.h"
#include "src/protocol/engine.h"
#include "src/protocol/messages.h"
#include "src/rdma/flow_control.h"
#include "src/runtime/channel.h"
#include "src/runtime/coalescer.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

class LiveTransport {
 public:
  struct Config {
    int num_nodes = 0;
    int bcast_credits_per_peer = 64;
    int credit_update_batch = 8;
    // Per-node inbound channel bound; LiveRack sizes this from credits +
    // window so that Push never blocks.  Counts batches, which the message
    // bound dominates (every batch carries at least one message).
    std::size_t channel_capacity = 4096;
    // §8.5 on the live fabric: batch same-destination messages into shared
    // channel pushes.  Off = batch size 1 through the same code path.
    bool coalescing = false;
    int coalesce_max_batch = 16;
    // Backstop: WaitForTraffic flushes open batches before sleeping.  The
    // run loop's op-boundary flush normally ships everything first, so this
    // firing (flushes_idle > 0) means a host skipped its boundary flushes.
    bool coalesce_flush_on_idle = true;
    // Deadline-based flush, mirroring the sim's coalesce_window_ns: when > 0,
    // op-boundary flushes hold sub-cap batches until they have been open this
    // many microseconds (size-cap flushes still fire immediately), trading
    // bounded extra latency for fatter batches.  The pre-sleep path flushes
    // expired batches and caps the sleep to the earliest open deadline, so no
    // message is ever held past deadline + one wakeup.
    std::uint64_t coalesce_flush_deadline_us = 0;
    // Monotonic clock for the deadline policy; tests inject a fake.  Defaults
    // to steady_clock when a deadline is set.
    std::function<std::uint64_t()> clock_ns;
  };

  class Endpoint final : public MessageSink {
   public:
    Endpoint(LiveTransport* transport, NodeId self);

    // --- MessageSink (owning node's thread only) ---
    void BroadcastUpdate(const UpdateMsg& msg) override;
    void BroadcastInvalidate(const InvalidateMsg& msg) override;
    void SendAck(NodeId to, const AckMsg& msg) override;

    // --- epoch traffic (owning node's thread only; credited) ---
    void BroadcastHotSet(const HotSetAnnounceMsg& msg);
    void BroadcastFill(const FillMsg& msg);
    void BroadcastEpochInstalled(const EpochInstalledMsg& msg);

    // Drains up to `max_batches` inbound batches, invoking
    // handler(NodeId src, const WireBody&) for each message after the
    // receive-side run demux (consecutive same-key updates collapse to the
    // newest; see coalescer.h), then performs per-message credit accounting.
    // Owning node's thread only.  Returns the number of messages processed.
    template <typename Handler>
    std::size_t Poll(std::size_t max_batches, Handler&& handler) {
      scratch_.clear();
      inbox_.TryDrain(&scratch_, max_batches);
      UpdateRunDemux demux(&updates_collapsed_);
      std::size_t processed = 0;
      for (const WireBatch& batch : scratch_) {
        for (const WireBody& body : batch.msgs) {
          demux.OnMessage(batch.src, body, handler);
          if (!std::holds_alternative<AckMsg>(body) &&
              batcher_.OnReceived(batch.src)) {
            // Return a credit batch to the sender (header-only message in the
            // paper; an atomic add here).
            transport_->endpoints_[batch.src]->returned_[self_].fetch_add(
                batcher_.batch(), std::memory_order_release);
            ++credit_returns_;
          }
          // A collapsed update may still be held by the demux here; it is
          // applied before Poll returns, and updates trigger no sends, so a
          // racing drain-phase inflight()==0 observation stays sound.
          transport_->inflight_.fetch_sub(1, std::memory_order_acq_rel);
          ++processed;
        }
      }
      demux.Flush(handler);
      messages_received_ += processed;
      return processed;
    }

    // Ships every open batch (the host's op-boundary flush, or a test's
    // explicit policy).  Owning node's thread only.
    void FlushBatches(FlushCause cause);

    // Retries credit-parked broadcasts after harvesting returned credits.
    void FlushPending();

    // True when every peer has at least one broadcast credit (the SC write
    // throttle point, as in RackNode::AllPeersHaveBcastCredit).
    bool AllPeersHaveCredit();

    // True when no broadcast is parked waiting for credits and no message
    // sits in an open batch.
    bool NothingPending() const;

    // Sleeps until a batch arrives or `timeout` elapses (idle backoff).
    // Flushes open batches first when Config::coalesce_flush_on_idle is set,
    // so no message can sleep inside a batch buffer.
    void WaitForTraffic(std::chrono::microseconds timeout);

    std::uint64_t messages_received() const { return messages_received_; }
    std::uint64_t batches_received() const { return inbox_.pushes(); }
    std::uint64_t full_waits() const { return inbox_.full_waits(); }
    std::uint64_t wakeups() const { return inbox_.wakeups(); }
    std::uint64_t credit_parks() const { return credit_parks_; }
    std::uint64_t updates_sent() const { return updates_sent_; }
    std::uint64_t invalidations_sent() const { return invalidations_sent_; }
    std::uint64_t acks_sent() const { return acks_sent_; }
    std::uint64_t credit_returns() const { return credit_returns_; }
    std::uint64_t epoch_msgs_sent() const { return epoch_msgs_sent_; }
    std::uint64_t updates_collapsed() const { return updates_collapsed_; }
    const SendCoalescer& coalescer() const { return coalescer_; }

   private:
    friend class LiveTransport;

    void SendCredited(NodeId to, WireBody body);
    void HarvestCredits(NodeId peer);
    // Commits one message to delivery: counts it in flight, appends it to the
    // peer's open batch, and ships the batch if it hit the size cap.
    void Enqueue(NodeId to, WireBody body);
    void DeliverBatch(NodeId to, WireBatch batch);
    template <typename T>
    void BroadcastCredited(const T& msg, std::uint64_t* counter);

    LiveTransport* transport_;
    NodeId self_;
    MpscChannel<WireBatch> inbox_;
    SendCoalescer coalescer_;
    CreditPool bcast_credits_;      // sender side, per peer
    CreditUpdateBatcher batcher_;   // receiver side, per peer
    // Credits returned by each peer for the self->peer direction; written by
    // the peer's thread, harvested by ours.
    std::vector<std::atomic<int>> returned_;
    std::vector<std::deque<WireBody>> pending_;  // per peer, FIFO
    std::vector<WireBatch> scratch_;             // Poll() drain buffer
    std::uint64_t credit_parks_ = 0;
    std::uint64_t updates_sent_ = 0;
    std::uint64_t invalidations_sent_ = 0;
    std::uint64_t acks_sent_ = 0;
    std::uint64_t credit_returns_ = 0;
    std::uint64_t epoch_msgs_sent_ = 0;
    std::uint64_t messages_received_ = 0;
    std::uint64_t updates_collapsed_ = 0;
  };

  explicit LiveTransport(const Config& config);

  Endpoint& endpoint(NodeId id) { return *endpoints_[id]; }
  const Config& config() const { return config_; }

  // Messages enqueued but not yet fully processed (handler completed).  Zero
  // together with all-nodes-quiescent means the rack can produce no further
  // work — the drain-phase exit condition.  Counts messages (including those
  // in open send batches), never batches.
  std::uint64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

 private:
  Config config_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::atomic<std::uint64_t> inflight_{0};
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_TRANSPORT_H_
