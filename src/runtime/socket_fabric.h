// Socket transport backend: UDS (default) or TCP, the multi-host fabric.
//
// One stream connection per node pair carries length-prefixed frames
// ([u8 type][u32 len][payload]) — batches (wire_codec frames), credit
// returns (the header-only credit-update message made literal), and a HELLO
// that identifies the connecting rank.  A single receive thread per fabric
// polls every inbound side, decodes frames, and feeds per-node MpscChannel
// inboxes, so the consumer-facing semantics (FIFO per lane, wakeup-once-per-
// batch, non-blocking drain) are exactly the in-process ones.
//
// All-in-one mode (rank < 0) wires the pairs with socketpair(2) — the
// conformance suite runs the full serialize/frame/decode path without any
// filesystem or port setup.  Ranked mode (rank >= 0) listens at
// "<socket_path_base>.<rank>" (UDS) or 127.0.0.1:(tcp_port_base+rank) (TCP),
// connects to lower ranks with retry, and accepts higher ranks.
//
// Faults never hang: peer hangup mid-frame, short writes, and undecodable
// frames latch a sticky error() that the rack surfaces as a LiveReport
// error; connect-refused past the deadline fails MakeSocketFabric cleanly.
// Because a stream spans hosts, inflight() is process-local in ranked mode
// (InflightIsGlobal() == false) and ranked racks terminate via the counting
// protocol in control_messages.h.

#ifndef CCKVS_RUNTIME_SOCKET_FABRIC_H_
#define CCKVS_RUNTIME_SOCKET_FABRIC_H_

#include <memory>
#include <string>

#include "src/runtime/fabric.h"

namespace cckvs {

// Wire frame types, shared with the fault-injection tests (which speak the
// protocol over raw sockets to simulate misbehaving peers).
inline constexpr std::uint8_t kSocketFrameHello = 1;
inline constexpr std::uint8_t kSocketFrameBatch = 2;
inline constexpr std::uint8_t kSocketFrameCredit = 3;
inline constexpr std::size_t kSocketFrameHeaderBytes = 5;  // [u8 type][u32 len]
inline constexpr std::uint32_t kSocketMaxFrameBytes = 16u << 20;

std::unique_ptr<TransportFabric> MakeSocketFabric(const FabricConfig& config,
                                                  const TransportOptions& opts,
                                                  std::string* error);

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_SOCKET_FABRIC_H_
