#include "src/runtime/transport.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "src/common/check.h"

namespace cckvs {
namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

CoalescerConfig MakeCoalescerConfig(const LiveTransport::Config& c, NodeId self,
                                    WireBatchPool* pool) {
  CoalescerConfig cc;
  cc.self = self;
  cc.num_peers = c.num_nodes;
  cc.enabled = c.coalescing;
  cc.max_batch = c.coalesce_max_batch;
  if (c.coalescing && c.coalesce_flush_deadline_us > 0) {
    cc.flush_deadline_ns = c.coalesce_flush_deadline_us * 1000;
    cc.now_ns = c.clock_ns != nullptr ? c.clock_ns : SteadyNowNs;
  }
  cc.pool = pool;
  if (c.prewarm_batches > 0) {
    cc.warm_slots = static_cast<std::size_t>(c.coalesce_max_batch);
    cc.warm_value_bytes = c.prewarm_value_bytes;
  }
  return cc;
}

}  // namespace

LiveTransport::LiveTransport(const Config& config) : config_(config) {
  CCKVS_CHECK_GE(config.num_nodes, 2);
  // Stranded-credit bound: a receiver holds back at most batch-1 credits per
  // peer, so the pool must be strictly larger or senders can park forever.
  CCKVS_CHECK_GT(config.bcast_credits_per_peer, config.credit_update_batch);
  CCKVS_CHECK_GE(config.coalesce_max_batch, 1);
  FabricConfig fc;
  fc.num_nodes = config.num_nodes;
  fc.channel_capacity = config.channel_capacity;
  fabric_ = MakeFabric(fc, config.transport, &init_error_);
  if (fabric_ == nullptr) {
    return;  // ok() == false; init_error_ says why
  }
  if (config.prewarm_batches > 0) {
    fabric_->batch_pool().Prewarm(
        config.prewarm_batches,
        static_cast<std::size_t>(config.coalesce_max_batch),
        config.prewarm_value_bytes);
  }
  endpoints_.resize(static_cast<std::size_t>(config.num_nodes));
  const int rank = config.transport.rank;
  for (int i = 0; i < config.num_nodes; ++i) {
    if (rank >= 0 && i != rank) {
      continue;  // ranked: peers live in other processes
    }
    endpoints_[static_cast<std::size_t>(i)] =
        std::make_unique<Endpoint>(this, static_cast<NodeId>(i));
  }
}

LiveTransport::~LiveTransport() {
  if (fabric_ != nullptr) {
    fabric_->Shutdown();  // stop rx machinery before endpoints die
  }
}

LiveTransport::Endpoint::Endpoint(LiveTransport* transport, NodeId self)
    : transport_(transport),
      self_(self),
      coalescer_(MakeCoalescerConfig(transport->config_, self,
                                     &transport->fabric_->batch_pool())),
      bcast_credits_(transport->config_.num_nodes,
                     transport->config_.bcast_credits_per_peer),
      batcher_(transport->config_.num_nodes, transport->config_.credit_update_batch),
      pending_(static_cast<std::size_t>(transport->config_.num_nodes)) {
  // One Drain() can hand back at most a full ring of batches; reserving the
  // drain buffer up front keeps Poll() allocation-free no matter how inbound
  // bursts line up with the measured window.
  scratch_.reserve(transport->config_.channel_capacity);
}

void LiveTransport::Endpoint::Enqueue(NodeId to, WireBody body) {
  // Count before the message becomes visible so inflight() never
  // under-reports a consumable message; the receiver decrements after its
  // handler finishes.  Messages waiting in an open batch are in flight: they
  // are past credit accounting and committed to delivery.
  fabric().AddInflight(1);
  if (!IsTermControl(body)) {
    ++data_sent_;
  }
  if (coalescer_.Append(to, std::move(body))) {
    DeliverBatch(to, coalescer_.Take(to, FlushCause::kSize));
  }
}

void LiveTransport::Endpoint::DeliverBatch(NodeId to, WireBatch batch) {
  if (batch.empty()) {
    return;
  }
  fabric().Deliver(to, std::move(batch));
}

void LiveTransport::Endpoint::FlushBatches(FlushCause cause) {
  const bool by_deadline =
      cause == FlushCause::kBoundary && coalescer_.deadline_enabled();
  // One clock read per flush pass, not one per peer: this runs every
  // run-loop iteration on the hot path.
  const std::uint64_t now = by_deadline ? coalescer_.now_ns() : 0;
  for (int j = 0; j < transport_->config_.num_nodes; ++j) {
    const auto to = static_cast<NodeId>(j);
    if (j == self_ || coalescer_.empty(to)) {
      continue;
    }
    if (by_deadline) {
      // Deadline policy: the op boundary only ships batches that have been
      // held long enough; younger sub-cap batches keep accumulating.
      if (!coalescer_.DeadlineExpired(to, now)) {
        continue;
      }
      DeliverBatch(to, coalescer_.Take(to, FlushCause::kDeadline));
      continue;
    }
    DeliverBatch(to, coalescer_.Take(to, cause));
  }
}

void LiveTransport::Endpoint::HarvestCredits(NodeId peer) {
  const int n = fabric().TakeReturnedCredits(self_, peer);
  if (n > 0) {
    bcast_credits_.Release(peer, n);
  }
}

void LiveTransport::Endpoint::SendCredited(NodeId to, WireBody body) {
  HarvestCredits(to);
  // A non-empty pending queue means this peer's credits ran dry earlier;
  // jumping the queue would reorder invalidation vs. update, so append.
  if (!pending_[to].empty() || !bcast_credits_.TryAcquire(to)) {
    ++credit_parks_;
    pending_[to].push_back(std::move(body));
    return;
  }
  Enqueue(to, std::move(body));
}

template <typename T>
void LiveTransport::Endpoint::BroadcastCredited(const T& msg,
                                                std::uint64_t* counter) {
  for (int j = 0; j < transport_->config_.num_nodes; ++j) {
    if (j != self_) {
      SendCreditedTyped(static_cast<NodeId>(j), msg);
      ++*counter;
    }
  }
}

void LiveTransport::Endpoint::BroadcastUpdate(const UpdateMsg& msg) {
  BroadcastCredited(msg, &updates_sent_);
}

void LiveTransport::Endpoint::BroadcastInvalidate(const InvalidateMsg& msg) {
  BroadcastCredited(msg, &invalidations_sent_);
}

void LiveTransport::Endpoint::BroadcastHotSet(const HotSetAnnounceMsg& msg) {
  BroadcastCredited(msg, &epoch_msgs_sent_);
}

void LiveTransport::Endpoint::BroadcastFill(const FillMsg& msg) {
  BroadcastCredited(msg, &epoch_msgs_sent_);
}

void LiveTransport::Endpoint::BroadcastEpochInstalled(const EpochInstalledMsg& msg) {
  BroadcastCredited(msg, &epoch_msgs_sent_);
}

void LiveTransport::Endpoint::SendAck(NodeId to, const AckMsg& msg) {
  // Implicit credits: acks answer invalidations one-for-one, so the writer's
  // outstanding invalidations bound them (§6.3) — no pool, no parking.  They
  // still coalesce: an iteration that polled a burst of invalidations ships
  // all its acks to one writer as a single batch.
  EnqueueTyped(to, msg);
  ++acks_sent_;
}

void LiveTransport::Endpoint::SendDirect(NodeId to, WireBody body) {
  Enqueue(to, std::move(body));
}

void LiveTransport::Endpoint::FlushPending() {
  for (int j = 0; j < transport_->config_.num_nodes; ++j) {
    if (j == self_ || pending_[j].empty()) {
      continue;
    }
    HarvestCredits(static_cast<NodeId>(j));
    while (!pending_[j].empty() &&
           bcast_credits_.TryAcquire(static_cast<NodeId>(j))) {
      WireBody body = std::move(pending_[j].front());
      pending_[j].pop_front();
      Enqueue(static_cast<NodeId>(j), std::move(body));
    }
  }
}

bool LiveTransport::Endpoint::AllPeersHaveCredit() {
  for (int j = 0; j < transport_->config_.num_nodes; ++j) {
    if (j == self_) {
      continue;
    }
    HarvestCredits(static_cast<NodeId>(j));
    if (bcast_credits_.available(static_cast<NodeId>(j)) == 0) {
      return false;
    }
  }
  return true;
}

bool LiveTransport::Endpoint::NothingPending() const {
  for (const auto& q : pending_) {
    if (!q.empty()) {
      return false;
    }
  }
  return coalescer_.AllEmpty();
}

void LiveTransport::Endpoint::PollExpiredDeadlines() {
  if (coalescer_.AllEmpty()) {
    return;
  }
  if (coalescer_.deadline_enabled()) {
    // Boundary+deadline flush: ships exactly the batches whose hold expired
    // (recorded as kDeadline), keeps younger ones accumulating — the same
    // policy the pre-sleep path applies, minus the sleep.
    FlushBatches(FlushCause::kBoundary);
  } else if (transport_->config_.coalesce_flush_on_idle) {
    FlushBatches(FlushCause::kIdle);
  }
}

void LiveTransport::Endpoint::WaitForTraffic(std::chrono::microseconds timeout) {
  if (!coalescer_.AllEmpty()) {
    if (coalescer_.deadline_enabled()) {
      // The deadline is itself the backstop (independent of the idle-flush
      // knob): ship what already expired, keep holding the rest — but never
      // sleep past the earliest open deadline, so a held batch is flushed
      // within one wakeup of expiring even on an otherwise idle node.
      FlushBatches(FlushCause::kBoundary);  // boundary+deadline: expired only
      const std::uint64_t remaining = coalescer_.MinRemainingNs();
      if (remaining != std::numeric_limits<std::uint64_t>::max()) {
        const auto cap = std::chrono::microseconds(remaining / 1000 + 1);
        timeout = std::min(timeout, cap);
      }
    } else if (transport_->config_.coalesce_flush_on_idle) {
      FlushBatches(FlushCause::kIdle);
    }
  }
  fabric().Wait(self_, timeout);
}

}  // namespace cckvs
