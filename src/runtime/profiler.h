// Live profiling subsystem (ScaleStore-style counter thread).
//
// Every node thread owns a WorkerCounters block and refreshes it once per
// run-loop iteration with relaxed stores — no locks, no allocation, nothing
// the hot path has to wait for.  A single background Profiler thread samples
// all blocks once per interval, turns the flow counters into per-interval
// deltas (ops/s, messages/s, flush causes) and reads the gauges (hot-path
// allocation count, inbound ring occupancy) as-is, then emits one CSV row per
// node per interval.  The samples are also retained in memory and folded into
// LiveReport, so a bench run gets the full time series, not just totals.
//
// Counter taxonomy:
//   flow   — monotonically increasing; the profiler reports interval deltas.
//            ops, hits, misses, rpcs, msgs_sent, batches_sent, flush_*.
//   gauge  — instantaneous; reported verbatim.
//            allocs (operator-new count inside the node's measurement window,
//            see common/alloc_tracker.h), inbound_depth (fabric occupancy:
//            batches for inproc/socket, bytes for shm).
//
// Threading: node threads are the only writers of their block; the profiler
// thread only loads.  All accesses are relaxed — a sample is a snapshot of
// independently-published counters, not a consistent cut, which is all a
// per-second rate display needs.

#ifndef CCKVS_RUNTIME_PROFILER_H_
#define CCKVS_RUNTIME_PROFILER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cckvs {

// One per node thread.  The owning thread calls Publish-style relaxed stores;
// the profiler thread reads.  Atomics make the struct non-movable, so hosts
// size their vector once up front.
struct WorkerCounters {
  // Flow counters (monotonic).
  std::atomic<std::uint64_t> ops{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> rpcs{0};
  std::atomic<std::uint64_t> msgs_sent{0};
  std::atomic<std::uint64_t> batches_sent{0};
  std::atomic<std::uint64_t> flush_size{0};
  std::atomic<std::uint64_t> flush_boundary{0};
  std::atomic<std::uint64_t> flush_idle{0};
  std::atomic<std::uint64_t> flush_deadline{0};
  std::atomic<std::uint64_t> l1_hits{0};
  std::atomic<std::uint64_t> l1_invalidations{0};
  std::atomic<std::uint64_t> l1_fills{0};
  // Gauges (instantaneous).
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> inbound_depth{0};
};

// One row of the time series: node `node` over the interval ending `ts_ms`
// after profiling started.  Flow fields are interval deltas; gauges verbatim.
struct ProfilerSample {
  std::uint64_t ts_ms = 0;
  int node = 0;
  std::uint64_t ops = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t rpcs = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t flush_size = 0;
  std::uint64_t flush_boundary = 0;
  std::uint64_t flush_idle = 0;
  std::uint64_t flush_deadline = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_invalidations = 0;
  std::uint64_t l1_fills = 0;
  std::uint64_t allocs = 0;
  std::uint64_t inbound_depth = 0;
};

// Header matching ProfilerSample's CSV serialization.
const char* ProfilerCsvHeader();

class Profiler {
 public:
  struct Options {
    std::uint64_t interval_ms = 1000;
    std::string csv_path;       // non-empty: stream rows to this file
    bool to_stderr = false;     // mirror rows to stderr as they are taken
  };

  // `counters` must outlive the profiler and hold one block per node.
  Profiler(const Options& options, const std::vector<WorkerCounters>* counters);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void Start();
  // Takes one final sample (so short runs still produce a row per node),
  // joins the thread and closes the CSV stream.  Idempotent.
  void Stop();

  // The retained time series; stable once Stop() returned.
  const std::vector<ProfilerSample>& samples() const { return samples_; }

 private:
  void Loop();
  void SampleOnce(std::uint64_t ts_ms);
  void Emit(const ProfilerSample& s);

  Options options_;
  const std::vector<WorkerCounters>* counters_;
  std::vector<ProfilerSample> prev_;  // previous totals, for flow deltas
  std::vector<ProfilerSample> samples_;
  std::FILE* csv_ = nullptr;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_PROFILER_H_
