// Multi-process rack plumbing: parameter hand-off, per-rank artifact files,
// and a spawn helper.
//
// A ranked rack is N processes running the same binary, each constructing an
// identical LiveRackParams except for transport.rank.  The launcher (rank 0,
// or a driver like tools/run_multiproc.sh) encodes the params once as a hex
// blob, passes it on each child's command line, and collects one artifact
// file per rank afterwards: the rank's completed-op count, its transport
// error (empty = healthy), and — when record_history is on — its sealed
// HistoryOp list, ready to merge into one History for the verify/ checkers.
//
// The blob is little-endian + versioned and decoded with the non-aborting
// SafeReader, so a stale launcher and a new node binary fail with an error
// string instead of a CHECK abort.

#ifndef CCKVS_RUNTIME_MULTIPROC_H_
#define CCKVS_RUNTIME_MULTIPROC_H_

#include <string>
#include <sys/types.h>
#include <vector>

#include "src/runtime/live_rack.h"
#include "src/verify/history.h"

namespace cckvs {

// LiveRackParams <-> printable hex blob (safe for argv / env).  The rank is
// part of the blob; launchers overwrite params.transport.rank per child
// before encoding.  Decode returns false and fills *error on a truncated,
// trailing-garbage or version-mismatched blob.
std::string EncodeRackParams(const LiveRackParams& params);
bool DecodeRackParams(const std::string& hex, LiveRackParams* out, std::string* error);

// What one rank hands back to the launcher.
struct RankArtifacts {
  std::uint64_t completed = 0;
  std::uint64_t rpcs_sent = 0;
  std::string transport_error;       // empty = healthy run
  std::vector<HistoryOp> history;    // empty unless params.record_history
};

bool SaveRankArtifacts(const std::string& path, const RankArtifacts& artifacts,
                       std::string* error);
bool LoadRankArtifacts(const std::string& path, RankArtifacts* out, std::string* error);

// fork + exec /proc/self/exe with the given arguments (argv[0] is supplied by
// the helper).  Returns the child pid, or -1 with *error filled.
pid_t SpawnSelf(const std::vector<std::string>& args, std::string* error);

// waitpid wrapper: true iff the child exited normally; *exit_code receives
// its status (or -1 on signal/abnormal exit, with the reason in *error).
bool WaitExit(pid_t pid, int* exit_code, std::string* error);

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_MULTIPROC_H_
