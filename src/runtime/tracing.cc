#include "src/runtime/tracing.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cckvs {
namespace {

// Cycle stamp -> microseconds on the rack clock (Chrome's ts unit), with
// nanosecond precision kept in the fraction.  Stamps from before the export
// anchor are the normal case; a stamp "after" it (impossible, but clamp
// anyway) maps to the anchor itself.
double StampToUs(std::uint64_t stamp_cycles, const TraceExportOptions& o) {
  const std::uint64_t behind =
      o.now_cycles > stamp_cycles ? o.now_cycles - stamp_cycles : 0;
  const double ns_behind = static_cast<double>(behind) / CyclesPerNs();
  const double ns = static_cast<double>(o.now_ns) - ns_behind;
  return (ns > 0 ? ns : 0) / 1000.0;
}

void AppendEvent(std::vector<std::string>* events, const SpanRecord& rec,
                 const TraceExportOptions& o) {
  const double ts = StampToUs(rec.start_cycles, o);
  const double dur = StampToUs(rec.end_cycles, o) - ts;
  const bool instant = rec.start_cycles == rec.end_cycles;
  char buf[512];
  if (instant) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                  "\"tid\":%d,\"ts\":%.3f,\"args\":{\"trace\":\"0x%" PRIx64
                  "\",\"span\":\"0x%" PRIx64 "\",\"parent\":\"0x%" PRIx64
                  "\",\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                  ToString(rec.kind), o.pid, int{rec.node}, ts, rec.trace_id,
                  rec.span_id, rec.parent_span, rec.arg0, rec.arg1);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace\":\"0x%" PRIx64
                  "\",\"span\":\"0x%" PRIx64 "\",\"parent\":\"0x%" PRIx64
                  "\",\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                  ToString(rec.kind), o.pid, int{rec.node}, ts,
                  dur > 0 ? dur : 0.0, rec.trace_id, rec.span_id,
                  rec.parent_span, rec.arg0, rec.arg1);
  }
  events->emplace_back(buf);
  // Flow events stitch the requester's rpc span to the home's rpc_serve span
  // across processes: same id ("0x<trace_id>") on both halves.
  if (rec.trace_id != 0 &&
      (rec.kind == SpanKind::kRpc || rec.kind == SpanKind::kRpcServe)) {
    const bool start = rec.kind == SpanKind::kRpc;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"rpc_flow\",\"cat\":\"rpc\",\"ph\":\"%s\"%s,"
                  "\"id\":\"0x%" PRIx64 "\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f}",
                  start ? "s" : "f", start ? "" : ",\"bp\":\"e\"", rec.trace_id,
                  o.pid, int{rec.node}, ts + (start ? 0.001 : 0.0));
    events->emplace_back(buf);
  }
}

}  // namespace

bool WriteChromeTrace(const std::string& path,
                      const std::vector<const Tracer*>& tracers,
                      const TraceExportOptions& options, std::string* error) {
  std::vector<std::string> events;
  std::size_t total = 0;
  for (const Tracer* t : tracers) {
    if (t != nullptr) {
      total += t->ring().size();
    }
  }
  events.reserve(total + tracers.size() + 1);

  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  options.pid,
                  options.process_name.empty() ? "cckvs"
                                               : options.process_name.c_str());
    events.emplace_back(buf);
  }
  for (const Tracer* t : tracers) {
    if (t == nullptr) {
      continue;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"node %d\"}}",
                  options.pid, int{t->node()}, int{t->node()});
    events.emplace_back(buf);
    const SpanRing& ring = t->ring();
    for (std::size_t i = 0; i < ring.size(); ++i) {
      AppendEvent(&events, ring[i], options);
    }
  }

  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    if (error != nullptr) {
      *error = "cannot open " + path + " for writing";
    }
    return false;
  }
  f << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    f << events[i] << (i + 1 < events.size() ? ",\n" : "\n");
  }
  f << "]}\n";
  f.flush();
  if (!f) {
    if (error != nullptr) {
      *error = "short write to " + path;
    }
    return false;
  }
  return true;
}

bool MergeChromeTraces(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* error) {
  // WriteChromeTrace's layout is one event per line between a header and a
  // footer line, so the merge is line surgery, not JSON parsing: collect
  // every event line, strip trailing commas, re-emit with fresh commas.
  std::vector<std::string> events;
  for (const std::string& in : inputs) {
    std::ifstream f(in);
    if (!f) {
      if (error != nullptr) {
        *error = "cannot open " + in;
      }
      return false;
    }
    std::string line;
    while (std::getline(f, line)) {
      if (line.empty() || line[0] != '{' ||
          line.rfind("{\"traceEvents\"", 0) == 0) {
        continue;  // header, footer or blank
      }
      if (!line.empty() && line.back() == ',') {
        line.pop_back();
      }
      events.push_back(line);
    }
  }
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open " + out_path + " for writing";
    }
    return false;
  }
  out << "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << events[i] << (i + 1 < events.size() ? ",\n" : "\n");
  }
  out << "]}\n";
  out.flush();
  if (!out) {
    if (error != nullptr) {
      *error = "short write to " + out_path;
    }
    return false;
  }
  return true;
}

}  // namespace cckvs
