// TransportFabric: the pluggable delivery substrate under LiveTransport.
//
// Everything above this interface — SendCoalescer batching, §6.3 credit
// pools, per-peer FIFO parking, the engines, the epoch gate+barrier, the
// SC/Lin checkers — is backend-agnostic.  The fabric owns exactly the five
// cross-endpoint touchpoints the in-process transport used to reach through
// shared memory for:
//
//   * Deliver / Drain / Wait   — move one WireBatch from src to dst, FIFO per
//                                (src, dst) lane, wake a parked consumer at
//                                most once per batch;
//   * ReturnCredits / TakeReturnedCredits — the header-only credit-update
//                                ride (an atomic add in-process, a credit
//                                frame on the wire);
//   * Add/SubInflight          — the message-granular drain-phase counter.
//
// Backends:
//
//   kInproc  — MpscChannel per node + atomic credit matrix; the original
//              single-process transport, now behind the interface.
//   kShm     — one mmap'd region: per-(src,dst) SPSC byte rings carrying
//              serialized frames, process-shared doorbells, credit matrix and
//              inflight counter in the region.  Same-host multi-process.
//   kSocket  — UDS or TCP stream per peer pair carrying length-prefixed
//              frames; a receive thread demuxes into local inboxes.  Ranked
//              mode spans hosts, so inflight() is process-local there and
//              ranked racks terminate via the counting protocol
//              (control_messages.h) instead.
//
// A fabric is "all-in-one" (rank < 0: this process owns every endpoint — the
// conformance tests and classic single-process racks) or "ranked" (rank >= 0:
// this process owns exactly one endpoint and the fabric reaches the rest).
// FIFO per lane and wakeup-once-per-batch are contract, not implementation
// detail: tests/transport_conformance_test.cc executes them against every
// backend.

#ifndef CCKVS_RUNTIME_FABRIC_H_
#define CCKVS_RUNTIME_FABRIC_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/runtime/coalescer.h"

namespace cckvs {

enum class TransportKind : std::uint8_t {
  kInproc = 0,  // MPSC channels, single process
  kShm,         // shared-memory SPSC rings, same-host multi-process
  kSocket,      // UDS/TCP streams, multi-host
};

inline const char* ToString(TransportKind k) {
  switch (k) {
    case TransportKind::kInproc:
      return "inproc";
    case TransportKind::kShm:
      return "shm";
    case TransportKind::kSocket:
      return "socket";
  }
  return "?";
}

// Parses "inproc" | "shm" | "socket"; returns false on anything else.
inline bool ParseTransportKind(const std::string& s, TransportKind* out) {
  if (s == "inproc") {
    *out = TransportKind::kInproc;
  } else if (s == "shm") {
    *out = TransportKind::kShm;
  } else if (s == "socket") {
    *out = TransportKind::kSocket;
  } else {
    return false;
  }
  return true;
}

struct TransportOptions {
  TransportKind kind = TransportKind::kInproc;
  // < 0: all-in-one (this process owns every endpoint).  >= 0: ranked — this
  // process owns endpoint `rank` only; peers live in other processes.
  int rank = -1;
  // kShm: POSIX shm object name ("/cckvs_<id>").  Rank 0 (or the all-in-one
  // process) creates and initializes; other ranks attach and wait for the
  // ready flag.
  std::string shm_name = "/cckvs_rack";
  std::size_t shm_ring_bytes = 1 << 20;  // per (src,dst) lane
  // kSocket: UDS by default — rank r listens at "<socket_path_base>.<r>".
  // When tcp_port_base > 0, TCP on 127.0.0.1:(tcp_port_base + r) instead.
  std::string socket_path_base = "/tmp/cckvs_rack";
  int tcp_port_base = 0;
  int connect_timeout_ms = 10000;
};

struct FabricConfig {
  int num_nodes = 0;
  // Inbox bound, in batches (inproc/socket local inboxes; the shm backend's
  // bound is ring bytes instead and full_waits counts ring-full stalls).
  std::size_t channel_capacity = 4096;
};

// Per-endpoint receive-side counters, same meaning across backends:
// pushes = batches delivered into self's inbox; wakeups = deliveries that
// found the consumer parked (at most one per batch); full_waits = deliveries
// that blocked on a full inbox/ring (zero in a credit-sized healthy run).
struct FabricStats {
  std::uint64_t pushes = 0;
  std::uint64_t full_waits = 0;
  std::uint64_t wakeups = 0;
};

class TransportFabric {
 public:
  virtual ~TransportFabric() = default;

  // Delivers one batch into `to`'s inbox, preserving per-(src,dst) FIFO.
  // Called only by the owning thread of endpoint batch.src (single writer per
  // lane).  May block when the inbox/ring is full (backstop; counted).
  virtual void Deliver(NodeId to, WireBatch&& batch) = 0;

  // Moves up to `max` batches from self's inbox into *out (appended).
  // Non-blocking.  Owning thread of `self` only.
  virtual std::size_t Drain(NodeId self, std::vector<WireBatch>* out,
                            std::size_t max) = 0;

  // Sleeps until a batch lands in self's inbox or `timeout` elapses.  A
  // delivery concurrent with parking must wake the sleeper (no lost wakeup).
  virtual void Wait(NodeId self, std::chrono::microseconds timeout) = 0;

  // Credit-update ride: `self` (receiver) returns `n` broadcast credits to
  // sender `to` for the to->self direction.  Owning thread of `self` only.
  virtual void ReturnCredits(NodeId self, NodeId to, int n) = 0;

  // Harvests credits peers have returned for the self->peer direction
  // (resets the counter).  Owning thread of `self` only.
  virtual int TakeReturnedCredits(NodeId self, NodeId peer) = 0;

  // Message-granular inflight accounting (rack-global for inproc/shm;
  // process-local for ranked socket fabrics — see header comment).
  virtual void AddInflight(std::uint64_t n) = 0;
  virtual void SubInflight(std::uint64_t n) = 0;
  virtual std::uint64_t inflight() const = 0;

  virtual FabricStats stats(NodeId self) const = 0;

  // Batches queued toward `self` and not yet drained (inproc/socket: inbox
  // depth in batches; shm: lane occupancy in bytes).  A gauge for the
  // profiler thread — sampled ~1/s, never on the hot path.
  virtual std::uint64_t InboundDepth(NodeId self) const {
    (void)self;
    return 0;
  }

  // Shared free list of warm WireBatches: senders Acquire on Take, receivers
  // Recycle after Poll dispatches — the arena that makes the steady-state
  // message path allocation-free.
  WireBatchPool& batch_pool() { return batch_pool_; }

  // True when inflight() is a rack-global count usable as the drain-phase
  // exit condition.  Ranked socket fabrics return false; those racks
  // terminate via the counting protocol instead.
  virtual bool InflightIsGlobal() const { return true; }

  // First transport-level fault (peer hangup mid-frame, short write, decode
  // failure), empty when healthy.  Sticky; safe from any thread.
  virtual std::string error() const { return {}; }

  // Lock-free "is error() non-empty" — cheap enough for every run-loop
  // iteration, so a faulted fabric turns into a clean exit, not a hang.
  virtual bool faulted() const { return false; }

  // Stops background machinery (rx threads, doorbell waiters) so endpoints
  // can be torn down.  Idempotent; called before destruction.
  virtual void Shutdown() {}

 private:
  WireBatchPool batch_pool_;
};

// Builds the backend named by `opts.kind`.  Blocks until the fabric is ready
// (ranked backends: all peers attached/connected).  Returns nullptr with
// *error set on failure — connect refused past the deadline, shm create
// failure — so callers can surface a clean LiveReport error instead of
// aborting.
std::unique_ptr<TransportFabric> MakeFabric(const FabricConfig& config,
                                            const TransportOptions& opts,
                                            std::string* error);

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_FABRIC_H_
