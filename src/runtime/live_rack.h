// The live rack: N nodes as real std::threads on an in-process fabric.
//
// Where RackSimulation *models* a 9-node rack on a discrete-event clock,
// LiveRack *executes* the same store/cache/protocol code on real hardware
// threads: per-node store::Partition shards reached cross-thread through the
// CRCW seqlock path, per-node SymmetricCache + Sc/LinEngine driven only by
// the owning thread, and protocol traffic over bounded MPSC channels with
// credit-based backpressure (runtime/transport.h).  This is the "fast as the
// hardware allows" axis the simulator cannot measure — and the concurrency
// stress the TSan CI job exists for.
//
// A run is quota-driven: every node issues closed-loop ops until it has
// completed ops_per_node, then the rack drains to global quiescence (all
// sessions idle, all engines quiescent, fabric empty) so recorded histories
// are complete — ready for the verify/ per-key SC/Lin checkers.
//
// Quickstart:
//
//   LiveRackParams p;
//   p.consistency = ConsistencyModel::kLin;
//   p.record_history = true;
//   LiveRack rack(p);
//   LiveReport r = rack.Run();   // blocks; spawns and joins p.num_nodes threads
//   // r.rack.mrps (live Mops/s), r.rack.hit_rate, r.rack.p99_latency_us, ...
//   // rack.history().CheckPerKeyLinearizability() == ""

#ifndef CCKVS_RUNTIME_LIVE_RACK_H_
#define CCKVS_RUNTIME_LIVE_RACK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/protocol/engine.h"
#include "src/runtime/live_node.h"
#include "src/runtime/profiler.h"
#include "src/runtime/report.h"
#include "src/runtime/stop.h"
#include "src/runtime/transport.h"
#include "src/store/partitioner.h"
#include "src/verify/history.h"
#include "src/workload/workload.h"

namespace cckvs {

struct LiveRackParams {
  int num_nodes = 4;
  ConsistencyModel consistency = ConsistencyModel::kSc;

  // Small keyspaces + small caches maximise hot-key contention, which is what
  // a live stress run is for; scale up for throughput measurements.
  WorkloadConfig workload{.keyspace = 65'536,
                          .zipf_alpha = 0.99,
                          .write_ratio = 0.05,
                          .value_bytes = 16};
  std::size_t cache_capacity = 1024;
  std::size_t partition_buckets = 1 << 12;

  // Node-private L1 tail cache (cache/l1_tail.h) in front of the symmetric
  // tier; 0 = off.  Each node admits keys hot LOCALLY but absent from the
  // global hot set (a per-node Space-Saving sketch gates admission) and
  // invalidates on any locally observable write, so SC/Lin histories are
  // unchanged.  Worth turning on when per-node popularity diverges from the
  // rack-wide ranking (workload.node_rank_stride > 0).
  std::size_t l1_capacity = 0;
  L1Policy l1_policy = L1Policy::kLru;

  int window_per_node = 8;              // concurrent closed-loop sessions
  std::uint64_t ops_per_node = 250'000; // issue quota per node

  // Flow control (§6.3/§6.4); credits must exceed the batch or stranded
  // partial batches could park a sender forever.
  int bcast_credits_per_peer = 64;
  int credit_update_batch = 8;

  // Transport coalescing (§8.5 on the live fabric; runtime/coalescer.h):
  // same-destination messages share one channel push, flushed by size cap,
  // op boundary, and (knob below) the pre-sleep idle backstop.  Credit
  // accounting and inflight() stay per-message either way.
  bool coalescing = false;
  int coalesce_max_batch = 16;       // mirrors RackParams::coalesce_max_batch
  bool coalesce_flush_on_idle = true;
  // Hold sub-cap batches up to this many µs before an op-boundary flush ships
  // them (0 = flush every boundary, the pre-deadline behaviour); mirrors the
  // sim's coalesce_window_ns.  LiveReport::flushes_deadline counts the holds
  // that ran to their deadline.
  std::uint64_t coalesce_flush_deadline_us = 0;

  // Hot-set management.  With prefill_hot_set the run starts in the paper's
  // steady state (oracle top-k installed everywhere); with online_topk node 0
  // additionally runs the epoch coordinator and the rack adapts as popularity
  // drifts (workload.drift_period_ops).  Both may be on: epochs then take
  // over from the oracle seed.
  bool prefill_hot_set = true;
  bool online_topk = false;
  std::uint64_t topk_epoch_requests = 200'000;
  double topk_sample_probability = 0.05;
  // Drift-aware epoch pacing: the coordinator adapts epoch length from the
  // churn the last epoch measured (topk/epoch_coordinator.h).
  bool topk_adaptive_epochs = false;

  bool record_history = false;  // sealed per-key history for the checkers
  std::uint64_t seed = 1;

  // --- hot-path execution mode (docs/PERFORMANCE.md) ---
  // Pin node thread i to core pin_core_base + i*pin_stride (modulo the online
  // CPU count).  NUMA-aware when built with libnuma; a plain affinity mask
  // otherwise.
  bool pinning = false;
  int pin_core_base = 0;
  int pin_stride = 1;
  // Replace the idle park (WaitForTraffic) with a bounded spin: lowest
  // latency, one core at 100% per node.  The coalescer's deadline flush is
  // polled every spin, so held batches still ship on time.
  bool busy_poll = false;

  // --- observability (runtime/profiler.h) ---
  bool profile = false;  // background thread samples WorkerCounters
  std::uint64_t profile_interval_ms = 1000;
  std::string profile_csv_path;   // non-empty: stream samples as CSV
  bool profile_to_stderr = false; // mirror samples to stderr

  // --- distributed per-op tracing (runtime/tracing.h) ---
  // Non-empty: arm a per-node Tracer (sampled spans into a fixed ring, no
  // steady-state allocation) and write a Chrome trace-event JSON here at rack
  // stop.  Ranked racks write trace_path + ".rank<N>" per process; merge with
  // MergeChromeTraces or tools/trace_report.py --merge.
  std::string trace_path;
  std::uint64_t trace_sample = 64;          // 1-in-N deterministic op sampler
  std::size_t trace_ring_capacity = 1 << 16;  // span records per node

  // Count operator-new calls on each node thread between warmup (quota/4
  // completed) and halt; the count lands in LiveReport::hot_path_allocs.
  // With alloc_assert the run CHECK-fails unless that count is zero — the
  // zero-steady-state-allocation invariant, enforceable under SC with a
  // prefilled store (Lin's variant churn and pending-write map allocate by
  // design).  No-op under ASan/TSan, which replace operator new themselves.
  bool track_allocs = false;
  bool alloc_assert = false;
  // Materialize every key of the keyspace in its home shard up front, so
  // steady-state cold-key PUTs overwrite slab slots in place instead of
  // inserting (inserts allocate index/slab growth).  Only sensible for small
  // keyspaces (the zero-alloc benchmark uses 65'536 keys).
  bool prefill_store = false;

  // Which fabric carries protocol traffic (inproc | shm | socket) and — for
  // multi-process racks — which rank this process is (transport.rank >= 0:
  // this process runs exactly one node; peers are other processes).  In
  // ranked mode remote-homed misses travel over the §6.1 RPC path instead of
  // the direct seqlock read, and the rack terminates via the counting
  // protocol in control_messages.h.
  TransportOptions transport;
  // Shared history-clock epoch for ranked racks (CLOCK_MONOTONIC is machine-
  // wide, so ranks agreeing on one epoch get comparable HistoryOp times).
  // 0 = epoch at rack construction, the single-process behaviour.
  std::uint64_t clock_epoch_ns = 0;
};

class LiveRack {
 public:
  explicit LiveRack(const LiveRackParams& params);
  ~LiveRack();
  LiveRack(const LiveRack&) = delete;
  LiveRack& operator=(const LiveRack&) = delete;

  // Spawns one thread per node, runs quotas + drain, joins, and reports.
  // Call once.
  LiveReport Run();

  // Cooperative early stop (safe from any thread, e.g. a watchdog).
  void RequestStop() { stop_.RequestStop(); }

  const LiveRackParams& params() const { return params_; }
  History& history() { return history_; }  // sealed after Run()
  LiveTransport& transport() { return transport_; }
  const LiveNode& node(NodeId id) const { return *nodes_[id]; }

  // Ranked = multi-process: this process owns one node; the fabric reaches
  // the rest.  All-in-one (rank < 0) is the classic single-process rack.
  bool ranked() const { return params_.transport.rank >= 0; }
  bool IsLocal(NodeId id) const {
    return !ranked() || id == static_cast<NodeId>(params_.transport.rank);
  }

  NodeId HomeOf(Key key) const { return partitioner_.HomeOf(key); }
  // Local shards only: in ranked mode a remote home has no Partition in this
  // process (misses go over RPC instead).
  Partition& PartitionOf(Key key) { return nodes_[HomeOf(key)]->partition(); }

  // Monotonic nanoseconds since construction; the live history clock.
  SimTime clock_ns() const {
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // --- node-thread coordination ---
  void OnNodeDone() { nodes_done_.fetch_add(1, std::memory_order_acq_rel); }
  bool AllNodesDone() const {
    return nodes_done_.load(std::memory_order_acquire) == params_.num_nodes;
  }

  // Node `id`'s profiling counter block (valid for the rack's lifetime; the
  // node thread writes it, the profiler thread reads it).
  WorkerCounters& worker_counters(NodeId id) {
    return worker_counters_[static_cast<std::size_t>(id)];
  }

  // Node `id`'s span ring, or nullptr when tracing is off (or the node is
  // remote).  Only the owning node thread records into it.
  Tracer* tracer(NodeId id) {
    return tracers_.empty() ? nullptr
                            : tracers_[static_cast<std::size_t>(id)].get();
  }

 private:
  LiveRackParams params_;
  LiveTransport transport_;
  ModuloPartitioner partitioner_;
  std::vector<WorkerCounters> worker_counters_;  // atomics: sized once, never moved
  std::vector<std::unique_ptr<Tracer>> tracers_;  // empty when tracing is off
  std::vector<std::unique_ptr<LiveNode>> nodes_;
  StopSource stop_;
  std::atomic<int> nodes_done_{0};
  std::chrono::steady_clock::time_point epoch_;
  History history_;
  bool ran_ = false;
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_LIVE_RACK_H_
