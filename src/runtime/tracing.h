// Sampled, steady-state-allocation-free per-op tracing for the live rack.
//
// The profiler (runtime/profiler.h) answers "how fast is each node right
// now"; it cannot answer "where did this p99 op spend its time" or "how long
// was the shard gate closed during epoch N".  This subsystem does: each node
// thread records spans — op lifecycle, §6.1 RPC legs, gated/credit parks,
// batch residence, and every stage of an epoch transition — into a private
// fixed-capacity ring of POD records stamped with the rdtsc clock
// (common/cycles.h).  At rack stop the rings export to Chrome trace-event
// JSON (chrome://tracing, Perfetto) via LiveRackParams::trace_path.
//
// Design constraints, in order:
//
//  * Zero allocation on the hot path.  Emit() is a bounds-free array store
//    into a ring sized at construction; the sampler and id generators are
//    counter arithmetic.  A traced run passes the same alloc_assert audit an
//    untraced run does (tests/tracing_test.cc pins this).
//  * Deterministic sampling.  Ops are sampled 1-in-N by a per-node counter
//    (op 0 always sampled), so two runs with the same seed trace the same
//    ops — and tests can assert on what gets traced.
//  * Cross-process stitching.  Trace ids embed the node id in the high bits,
//    so ids are rack-unique without coordination; the id + parent span ride
//    RpcRequest/RpcResponse through wire_codec.h, and per-rank trace files
//    merge by simple event concatenation (ranks share the machine-wide TSC
//    and the rack's clock epoch, so timestamps are directly comparable).
//
// Overflow policy: the ring keeps the NEWEST spans (head wraps); dropped()
// counts what fell off.  For latency forensics the tail of the run is the
// interesting part, and a bounded ring is what keeps Emit allocation-free.

#ifndef CCKVS_RUNTIME_TRACING_H_
#define CCKVS_RUNTIME_TRACING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/cycles.h"
#include "src/common/types.h"

namespace cckvs {

// One name per span kind; the Chrome event name and the trace_report.py
// aggregation key.  Append only — tests pin the names.
enum class SpanKind : std::uint8_t {
  kOp = 0,         // whole client op: issue -> done (arg0=key, arg1=type bits)
  kShardRead,      // direct seqlock read of a home shard (miss path)
  kShardWrite,     // direct locked write to a home shard (miss path)
  kRpc,            // requester-side §6.1 RPC leg: send -> response (arg1=gated)
  kRpcServe,       // home-side RPC service (stitched to kRpc by trace id)
  kGatedWait,      // op parked on the shard residency gate
  kCreditWait,     // SC write parked at the §6.3 credit throttle
  kBatchOpen,      // coalescer batch: first append -> flush (arg0=peer, arg1=size)
  kEpochInstall,   // announce received -> this node's install published (arg0=epoch)
  kGateClosed,     // an evicted key's gate: raised -> lifted (arg0=key, arg1=epoch)
  kBarrierWait,    // install published -> every peer's install seen (arg0=epoch)
  kAnnounce,       // instant: hot-set announcement driven (arg0=epoch, arg1=|keys|)
  kPeerInstalled,  // instant: peer's install confirmation arrived (arg0=epoch, arg1=src)
  kFillApplied,    // instant: fill landed in the local cache (arg0=key, arg1=epoch)
  kStateDump,      // instant: periodic node state (CCKVS_DEBUG_STATE, structured)
  kL1Hit,          // instant: op served from the node-private L1 tail (arg0=key)
  kNumKinds,
};

inline const char* ToString(SpanKind k) {
  switch (k) {
    case SpanKind::kOp:
      return "op";
    case SpanKind::kShardRead:
      return "shard_read";
    case SpanKind::kShardWrite:
      return "shard_write";
    case SpanKind::kRpc:
      return "rpc";
    case SpanKind::kRpcServe:
      return "rpc_serve";
    case SpanKind::kGatedWait:
      return "gated_wait";
    case SpanKind::kCreditWait:
      return "credit_wait";
    case SpanKind::kBatchOpen:
      return "batch_open";
    case SpanKind::kEpochInstall:
      return "epoch_install";
    case SpanKind::kGateClosed:
      return "gate_closed";
    case SpanKind::kBarrierWait:
      return "barrier_wait";
    case SpanKind::kAnnounce:
      return "announce";
    case SpanKind::kPeerInstalled:
      return "peer_installed";
    case SpanKind::kFillApplied:
      return "fill_applied";
    case SpanKind::kStateDump:
      return "state_dump";
    case SpanKind::kL1Hit:
      return "l1_hit";
    case SpanKind::kNumKinds:
      break;
  }
  return "?";
}

// POD span record: 58 bytes of plain integers, stamped in raw cycles and
// converted to wall time only at export.  start == end marks an instant.
struct SpanRecord {
  std::uint64_t trace_id = 0;     // 0 = standalone (not tied to a sampled op)
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0 = root
  std::uint64_t start_cycles = 0;
  std::uint64_t end_cycles = 0;
  std::uint64_t arg0 = 0;         // kind-specific (see SpanKind comments)
  std::uint64_t arg1 = 0;
  SpanKind kind = SpanKind::kOp;
  NodeId node = 0;
};

// Fixed-capacity overwrite-oldest ring.  Single-writer (the owning node
// thread); readers wait for the thread to exit (the rack joins before
// exporting), so no synchronization is needed or provided.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity)
      : records_(capacity > 0 ? capacity : 1) {}

  void Push(const SpanRecord& rec) {
    records_[total_ % records_.size()] = rec;
    ++total_;
  }

  std::uint64_t recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > records_.size() ? total_ - records_.size() : 0;
  }
  std::size_t size() const {
    return total_ < records_.size() ? static_cast<std::size_t>(total_)
                                    : records_.size();
  }
  std::size_t capacity() const { return records_.size(); }
  // Valid records occupy [0, size()); order is not chronological once the
  // ring has wrapped (Chrome sorts by timestamp, so export doesn't care).
  const SpanRecord& operator[](std::size_t i) const { return records_[i]; }

 private:
  std::vector<SpanRecord> records_;
  std::uint64_t total_ = 0;
};

// Per-node tracer: the sampler, the id wells and the ring.  Owned by the
// rack, used only by the owning node's thread while it runs.  All state is
// preallocated at construction, so every method is allocation-free.
class Tracer {
 public:
  struct Config {
    NodeId node = 0;
    std::uint64_t sample_every = 64;  // trace 1 op in N; 1 = every op
    std::size_t ring_capacity = 1 << 16;
  };

  explicit Tracer(const Config& config)
      : config_(config),
        ring_(config.ring_capacity),
        // Node id in the high bits makes ids rack-unique without any
        // cross-process coordination; +1 keeps node 0's ids nonzero.
        id_base_(static_cast<std::uint64_t>(config.node + 1) << 40) {
    if (config_.sample_every == 0) {
      config_.sample_every = 1;
    }
  }

  NodeId node() const { return config_.node; }
  std::uint64_t sample_every() const { return config_.sample_every; }

  // Deterministic 1-in-N op sampler; the first op is always sampled.
  bool SampleNext() { return op_counter_++ % config_.sample_every == 0; }
  // Independent decimator for non-op streams (batch-residence spans), so a
  // chatty coalescer cannot flush the op spans out of the ring.
  bool SampleAux() { return aux_counter_++ % config_.sample_every == 0; }

  std::uint64_t NewTraceId() { return id_base_ | ++trace_seq_; }
  std::uint64_t NewSpanId() { return id_base_ | ++span_seq_; }

  void Emit(SpanKind kind, std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_span, std::uint64_t start_cycles,
            std::uint64_t end_cycles, std::uint64_t arg0, std::uint64_t arg1) {
    SpanRecord rec;
    rec.trace_id = trace_id;
    rec.span_id = span_id;
    rec.parent_span = parent_span;
    rec.start_cycles = start_cycles;
    rec.end_cycles = end_cycles;
    rec.arg0 = arg0;
    rec.arg1 = arg1;
    rec.kind = kind;
    rec.node = config_.node;
    ring_.Push(rec);
  }

  // Instant event (start == end == now).
  void Instant(SpanKind kind, std::uint64_t trace_id, std::uint64_t parent_span,
               std::uint64_t arg0, std::uint64_t arg1) {
    const std::uint64_t now = CycleNow();
    Emit(kind, trace_id, NewSpanId(), parent_span, now, now, arg0, arg1);
  }

  const SpanRing& ring() const { return ring_; }

 private:
  Config config_;
  SpanRing ring_;
  std::uint64_t id_base_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t aux_counter_ = 0;
  std::uint64_t trace_seq_ = 0;
  std::uint64_t span_seq_ = 0;
};

// Anchors cycle stamps to the rack's shared clock: an event's wall time is
// now_ns - (now_cycles - stamp)/cycles_per_ns.  Ranks share clock_epoch_ns
// and the machine-wide TSC, so per-rank files line up after a merge.
struct TraceExportOptions {
  int pid = 0;                   // rank in ranked racks; 0 single-process
  std::uint64_t now_cycles = 0;  // CycleNow() at export time
  std::uint64_t now_ns = 0;      // rack clock (shared epoch) at export time
  std::string process_name;      // Chrome process_name metadata
};

// Writes one Chrome trace-event JSON file ({"traceEvents":[...]}) from the
// given tracers' rings: "X" complete events for spans, "i" instants, and
// "s"/"f" flow events binding each requester-side rpc span to its home-side
// rpc_serve span by trace id.  One event per line, so MergeChromeTraces can
// splice files from different ranks without a JSON parser.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<const Tracer*>& tracers,
                      const TraceExportOptions& options, std::string* error);

// Concatenates the traceEvents of several WriteChromeTrace files (e.g. the
// per-rank `PATH.rankN` files of a multi-process run) into one valid file.
bool MergeChromeTraces(const std::vector<std::string>& inputs,
                       const std::string& out_path, std::string* error);

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_TRACING_H_
