// Result of a LiveRack run.
//
// The shared report shape (throughput, hit rate, latency percentiles,
// consistency-message counts) lives in the embedded RackReport so live runs
// and simulator runs are directly comparable — bench/live_throughput.cpp
// prints them side by side.  Live-only observables (wall-clock time, channel
// and credit behaviour, transport coalescing, store/slab counters) ride
// alongside.

#ifndef CCKVS_RUNTIME_REPORT_H_
#define CCKVS_RUNTIME_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cckvs/params.h"
#include "src/common/histogram.h"
#include "src/protocol/engine.h"
#include "src/runtime/profiler.h"

namespace cckvs {

struct LiveReport {
  RackReport rack;  // mrps here means measured live Mops/s

  double wall_seconds = 0;
  std::uint64_t completed = 0;

  // Aggregated over all node engines.
  EngineStats engine_totals;

  // Transport behaviour.
  std::uint64_t channel_messages = 0;
  std::uint64_t channel_batches = 0;     // channel pushes; == messages uncoalesced
  std::uint64_t channel_full_waits = 0;  // nonzero = credit sizing was violated
  std::uint64_t credit_parks = 0;        // broadcasts parked waiting for credits
  std::uint64_t sc_credit_stalls = 0;    // SC write-hits parked at the throttle
  std::uint64_t wakeups = 0;             // receiver wakeups (≤ batches pushed)

  // Coalescing subsystem (runtime/coalescer.h).
  std::uint64_t batches_sent = 0;        // == channel_batches, sender view
  std::uint64_t flushes_size = 0;        // batches closed by the max_batch cap
  std::uint64_t flushes_boundary = 0;    // batches closed at an op boundary
  std::uint64_t flushes_idle = 0;        // backstop flushes (0 in a healthy run)
  std::uint64_t flushes_deadline = 0;    // sub-cap batches held to the deadline
  std::uint64_t updates_collapsed = 0;   // receive-side same-key run collapses
  Histogram batch_sizes;                 // messages per shipped batch

  // Hot-set subsystem (online_topk runs; epochs/churn ride in rack.*).
  std::uint64_t epoch_msgs = 0;    // announces + fills + install confirmations
  std::uint64_t gate_retries = 0;  // misses parked on the shard residency gate

  // Store behaviour across all shards (CRCW seqlock path).
  std::uint64_t store_read_retries = 0;
  std::uint64_t slab_live_slots = 0;
  std::uint64_t slab_arena_bytes = 0;

  // Cross-process transport (runtime/fabric.h).  In a ranked rack this
  // report covers the LOCAL rank only (merge across ranks for rack totals).
  // transport_error is empty on a healthy run; a fabric fault (peer hangup
  // mid-frame, connect refused, undecodable frame) lands here instead of
  // hanging the run.
  std::string transport_error;
  std::uint64_t rpcs_sent = 0;  // ranked-mode remote-home misses served by RPC

  // Hot-path allocation audit (params.track_allocs): operator-new calls across
  // all node threads inside their steady-state windows.  0 is the invariant
  // for SC + prefill_store runs; also 0 when the tracker is compiled out.
  std::uint64_t hot_path_allocs = 0;
  // Per-interval per-node time series (params.profile; runtime/profiler.h).
  std::vector<ProfilerSample> profiler_samples;

  // Distributed tracing (params.trace_path; runtime/tracing.h): span records
  // captured / overwritten by ring wraparound across this process's nodes,
  // and the export failure (if any) — a trace failure never fails the run.
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  std::string trace_error;

  bool ok() const { return transport_error.empty(); }
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_REPORT_H_
