// Runtime control-plane messages: distributed termination for ranked racks.
//
// A single-process rack detects global quiescence with one shared atomic
// (LiveTransport::inflight()).  A multi-process rack has no shared memory to
// put that atomic in (the socket backend spans hosts), so ranked runs use a
// counting protocol instead — the classic four-counter termination detection
// over FIFO channels:
//
//   * rank 0, once locally quiescent, broadcasts TermProbeMsg{round};
//   * every rank answers with TermStatusMsg{round, done, sent, processed},
//     where `sent`/`processed` count data messages only (Term* traffic is
//     excluded, or the counts would chase their own tail);
//   * rank 0 declares termination when two consecutive rounds return
//     identical per-rank counts, every rank reports done, and the global
//     sums match (sum sent == sum processed).  With per-peer FIFO lanes a
//     data message still in flight is counted in some sender's `sent` but in
//     no receiver's `processed`, so the sums cannot match twice in a row —
//     and a message processed between the rounds changes the snapshot.
//   * TermHaltMsg releases everyone: histories are sealed, the run is over.
//
// Term messages ride the normal transport lanes uncredited (like acks): at
// most one probe/status per peer is outstanding per round, so the §6.3
// channel bounds still hold with a constant slack.

#ifndef CCKVS_RUNTIME_CONTROL_MESSAGES_H_
#define CCKVS_RUNTIME_CONTROL_MESSAGES_H_

#include <cstdint>

#include "src/common/types.h"

namespace cckvs {

// Rank 0 -> everyone: report your termination counters for `round`.
struct TermProbeMsg {
  std::uint32_t round = 0;
};

// Everyone -> rank 0: local quiescence + data-message counters at receipt of
// the probe for `round`.
struct TermStatusMsg {
  std::uint32_t round = 0;
  NodeId rank = 0;
  bool done = false;
  std::uint64_t sent = 0;       // data messages committed to delivery
  std::uint64_t processed = 0;  // data messages whose handler completed
};

// Rank 0 -> everyone: the rack is globally quiescent; stop pumping.
struct TermHaltMsg {
  std::uint32_t round = 0;  // the round that proved termination
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_CONTROL_MESSAGES_H_
