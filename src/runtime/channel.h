// Bounded MPSC channel: the live runtime's stand-in for a UD queue pair.
//
// Many producer threads (peer nodes posting protocol messages) feed one
// consumer (the owning node's thread), which drains in batches — the live
// analogue of sweeping a completion queue.  The bound plays the role of the
// posted-receive depth in src/rdma/verbs.cc: the credit scheme in
// runtime/transport.h is sized so that a channel never fills, and Push()
// blocking on a full channel is only the correctness backstop (counted in
// full_waits(), which a healthy run keeps at zero).
//
// FIFO: the queue is globally ordered, so per-producer order is preserved —
// the property the Lin protocol needs between an invalidation and its update.
//
// Storage is a fixed ring of `capacity` slots allocated once at construction
// (a deque would deallocate blocks as the consumer drains).  Items move-assign
// into slots and move out again, so the slots themselves — and, for WireBatch,
// their recycled message buffers — never touch the allocator in steady state.

#ifndef CCKVS_RUNTIME_CHANNEL_H_
#define CCKVS_RUNTIME_CHANNEL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace cckvs {

template <typename T>
class MpscChannel {
 public:
  explicit MpscChannel(std::size_t capacity)
      : capacity_(capacity), storage_(capacity) {
    CCKVS_CHECK_GE(capacity, std::size_t{1});
  }
  MpscChannel(const MpscChannel&) = delete;
  MpscChannel& operator=(const MpscChannel&) = delete;

  // Enqueues one item; blocks while the channel is full (backstop only — see
  // the header comment).
  void Push(T item) {
    bool wake = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (Size() >= capacity_) {
        full_waits_.fetch_add(1, std::memory_order_relaxed);
        not_full_.wait(lock, [this] { return Size() < capacity_; });
      }
      storage_[tail_ % capacity_] = std::move(item);
      ++tail_;
      pushes_.fetch_add(1, std::memory_order_relaxed);
      // Notify only when the consumer is actually parked in WaitDrain.  The
      // consumer sets waiting_ under this mutex before sleeping and re-checks
      // its predicate under it, so a skipped notify can never be a lost
      // wakeup — it just spares the syscall on the (common) non-idle path.
      // One push is one potential wakeup, so a coalesced batch of N messages
      // wakes the receiver at most once; wakeups() makes that observable.
      wake = waiting_;
      if (wake) {
        wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (wake) {
      not_empty_.notify_one();
    }
  }

  // Moves up to `max` items into *out (appended).  Non-blocking; returns the
  // number moved.  Single consumer only.
  std::size_t TryDrain(std::vector<T>* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mu_);
    return DrainLocked(out, max);
  }

  // Waits up to `timeout` for at least one item, then drains like TryDrain.
  std::size_t WaitDrain(std::vector<T>* out, std::size_t max,
                        std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    waiting_ = true;
    not_empty_.wait_for(lock, timeout, [this] { return Size() > 0; });
    waiting_ = false;
    return DrainLocked(out, max);
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return Size();
  }

  std::size_t capacity() const { return capacity_; }
  std::uint64_t pushes() const { return pushes_.load(std::memory_order_relaxed); }
  std::uint64_t full_waits() const {
    return full_waits_.load(std::memory_order_relaxed);
  }
  // notify_one calls actually issued (a producer found the consumer parked).
  std::uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t Size() const { return tail_ - head_; }

  std::size_t DrainLocked(std::vector<T>* out, std::size_t max) {
    std::size_t moved = 0;
    const bool was_full = Size() >= capacity_;
    while (Size() > 0 && moved < max) {
      // Moving out leaves the slot empty (no heap to free), so the next
      // Push's move-assign into it deallocates nothing.
      out->push_back(std::move(storage_[head_ % capacity_]));
      ++head_;
      ++moved;
    }
    if (was_full && moved > 0) {
      not_full_.notify_all();  // several producers may be parked
    }
    return moved;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> storage_;    // fixed ring; live range is [head_, tail_)
  std::size_t head_ = 0;      // free-running consumer counter (guarded by mu_)
  std::size_t tail_ = 0;      // free-running producer counter (guarded by mu_)
  bool waiting_ = false;  // consumer parked in WaitDrain (guarded by mu_)
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> full_waits_{0};
  std::atomic<std::uint64_t> wakeups_{0};
};

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_CHANNEL_H_
