#include "src/runtime/live_rack.h"

#include <string>
#include <thread>
#include <utility>

#include "src/cckvs/report_util.h"
#include "src/common/check.h"
#include "src/common/cpu.h"
#include "src/common/cycles.h"
#include "src/runtime/tracing.h"

namespace cckvs {
namespace {

LiveTransport::Config TransportConfig(const LiveRackParams& p) {
  LiveTransport::Config c;
  c.num_nodes = p.num_nodes;
  c.bcast_credits_per_peer = p.bcast_credits_per_peer;
  c.credit_update_batch = p.credit_update_batch;
  // A node's inbound channel holds at most (n-1)*credits credited broadcasts
  // plus (n-1)*window implicit-credit acks (one per outstanding invalidation
  // of at most `window` in-flight local writes), plus — in ranked mode —
  // (n-1)*window inbound RPC requests, `window` responses, and a couple of
  // termination-control messages per peer.  Size to that bound so delivery
  // never blocks; the slack absorbs nothing in theory, everything in practice.
  c.channel_capacity =
      static_cast<std::size_t>(p.num_nodes - 1) *
          static_cast<std::size_t>(p.bcast_credits_per_peer +
                                   2 * p.window_per_node + 2) +
      static_cast<std::size_t>(p.window_per_node) + 64;
  // Coalescing only lowers the push count against the same message bound
  // (every batch carries ≥ 1 message), so the capacity above stays valid.
  c.coalescing = p.coalescing;
  c.coalesce_max_batch = p.coalesce_max_batch;
  c.coalesce_flush_on_idle = p.coalesce_flush_on_idle;
  c.coalesce_flush_deadline_us = p.coalesce_flush_deadline_us;
  c.transport = p.transport;
  if (p.track_allocs) {
    // Zero-alloc audit runs must never hand a cold batch to a node inside
    // its measured window, so stock the pool to the worst-case circulating
    // count: every inbound ring full of batches, plus each endpoint's open
    // per-peer batches and poll scratch.  Cold-start warm-up is one-time per
    // batch slot and therefore harmless in normal runs; in an audited window
    // it reads as a (false) steady-state allocation.
    c.prewarm_batches =
        static_cast<std::size_t>(p.num_nodes) * c.channel_capacity +
        static_cast<std::size_t>(p.num_nodes) *
            static_cast<std::size_t>(p.num_nodes) +
        64;
    c.prewarm_value_bytes = p.workload.value_bytes;
  }
  return c;
}

void AddEngineStats(const EngineStats& from, EngineStats* to) {
  to->writes += from.writes;
  to->writes_completed += from.writes_completed;
  to->reads_hit += from.reads_hit;
  to->reads_blocked += from.reads_blocked;
  to->updates_applied += from.updates_applied;
  to->updates_discarded += from.updates_discarded;
  to->invalidations_applied += from.invalidations_applied;
  to->invalidations_stale += from.invalidations_stale;
  to->acks_received += from.acks_received;
  to->writes_superseded += from.writes_superseded;
  to->local_writes_queued += from.local_writes_queued;
}

}  // namespace

LiveRack::LiveRack(const LiveRackParams& params)
    : params_(params),
      transport_(TransportConfig(params)),
      partitioner_(params.num_nodes),
      worker_counters_(static_cast<std::size_t>(params.num_nodes)),
      epoch_(params.clock_epoch_ns != 0
                 ? std::chrono::steady_clock::time_point(
                       std::chrono::nanoseconds(params.clock_epoch_ns))
                 : std::chrono::steady_clock::now()) {
  CCKVS_CHECK_GE(params_.num_nodes, 2);
  CCKVS_CHECK_GE(params_.window_per_node, 1);
  CCKVS_CHECK_GE(params_.workload.value_bytes, 13u);  // MakeWriteValue floor
  CCKVS_CHECK_LT(params_.transport.rank, params_.num_nodes);

  if (!transport_.ok()) {
    return;  // Run() surfaces init_error as LiveReport::transport_error
  }

  std::vector<WorkloadGenerator> gens =
      MakePerThreadGenerators(params_.workload, params_.num_nodes, params_.seed);
  if (!params_.trace_path.empty()) {
    // One ring per local node, allocated up front (the ring never grows, so
    // recording stays allocation-free in the steady state).  Must exist
    // before the nodes: each LiveNode grabs its tracer in its constructor.
    tracers_.resize(static_cast<std::size_t>(params_.num_nodes));
    for (int i = 0; i < params_.num_nodes; ++i) {
      if (!IsLocal(static_cast<NodeId>(i))) {
        continue;
      }
      Tracer::Config tc;
      tc.node = static_cast<NodeId>(i);
      tc.sample_every = params_.trace_sample;
      tc.ring_capacity = params_.trace_ring_capacity;
      tracers_[static_cast<std::size_t>(i)] = std::make_unique<Tracer>(tc);
    }
  }
  nodes_.resize(static_cast<std::size_t>(params_.num_nodes));
  for (int i = 0; i < params_.num_nodes; ++i) {
    if (!IsLocal(static_cast<NodeId>(i))) {
      continue;  // ranked: that node lives in another process
    }
    nodes_[static_cast<std::size_t>(i)] =
        std::make_unique<LiveNode>(this, static_cast<NodeId>(i),
                                   std::move(gens[static_cast<std::size_t>(i)]));
  }

  if (params_.prefill_store) {
    // Materialize the whole keyspace in its home shards (this process's
    // shards only, in ranked mode) so no steady-state PUT has to insert.
    // Runs before the hot-set prefill: MarkCacheResident below then finds
    // every hot record already present.
    const std::uint32_t vb = params_.workload.value_bytes;
    for (std::uint64_t k = 0; k < params_.workload.keyspace; ++k) {
      const Key key = static_cast<Key>(k);
      if (IsLocal(HomeOf(key))) {
        PartitionOf(key).Apply(key, SynthesizeValue(key, vb), Timestamp{0, 0});
      }
    }
  }

  if (params_.prefill_hot_set) {
    // Symmetric prefill: every node caches the ground-truth (phase-0) hot
    // set, so runs start in the steady state the paper measures.  Every rank
    // runs this same code, so collectively all shards get their gates raised
    // even though each process only touches its local shard.
    WorkloadGenerator probe(params_.workload, /*writer_tag=*/0, /*seed=*/0);
    const std::vector<Key> hot = probe.HottestKeys(params_.cache_capacity);
    if (params_.online_topk) {
      // Epochs will manage membership from here on: raise each key's shard
      // residency gate now, exactly as an epoch admission would have.
      for (const Key key : hot) {
        if (IsLocal(HomeOf(key))) {
          PartitionOf(key).MarkCacheResident(key);
        }
      }
    }
    for (auto& node : nodes_) {
      if (node != nullptr) {
        node->PrefillHotSet(hot);
      }
    }
  }
}

LiveRack::~LiveRack() = default;

LiveReport LiveRack::Run() {
  CCKVS_CHECK(!ran_ && "LiveRack::Run is single-shot");
  ran_ = true;

  if (!transport_.ok()) {
    LiveReport report;
    report.transport_error = transport_.init_error();
    return report;
  }

  Profiler::Options popts;
  popts.interval_ms = params_.profile_interval_ms;
  popts.csv_path = params_.profile_csv_path;
  if (ranked() && !popts.csv_path.empty()) {
    // One file per process: ranks sharing a host must not clobber each other.
    popts.csv_path += ".rank" + std::to_string(params_.transport.rank);
  }
  popts.to_stderr = params_.profile_to_stderr;
  Profiler profiler(popts, &worker_counters_);
  if (params_.profile) {
    profiler.Start();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = nodes_[i];
    if (node == nullptr) {
      continue;
    }
    threads.emplace_back([this, &node, i, token = stop_.token()] {
      if (params_.pinning) {
        // In ranked mode `i` is the global node id, so ranks sharing a host
        // land on distinct cores without coordination.
        PinCurrentThreadToCore(params_.pin_core_base +
                               static_cast<int>(i) * params_.pin_stride);
      }
      node->Run(token);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  if (params_.profile) {
    profiler.Stop();  // takes the final partial-interval sample
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // All node threads have exited: aggregation below reads their state without
  // synchronization concerns.
  LiveReport report;
  report.wall_seconds = wall_seconds;

  std::uint64_t hit = 0;
  std::uint64_t miss = 0;
  Histogram latency;
  for (int i = 0; i < params_.num_nodes; ++i) {
    if (nodes_[static_cast<std::size_t>(i)] == nullptr) {
      continue;  // ranked: remote ranks report from their own process
    }
    const LiveNode& node = *nodes_[static_cast<std::size_t>(i)];
    const LiveNode::Counters& c = node.counters();
    report.completed += c.completed;
    hit += c.hit_completed;
    miss += c.miss_completed;
    report.sc_credit_stalls += c.sc_credit_stalls;
    report.gate_retries += c.gate_retries;
    report.rpcs_sent += c.rpcs_sent;
    report.rack.l1_hits += c.l1_hits;
    if (const L1TailCache* l1 = node.l1(); l1 != nullptr) {
      report.rack.l1_fills += l1->stats().fills;
      report.rack.l1_invalidations += l1->stats().invalidations;
    }
    report.hot_path_allocs += node.hot_path_allocs();
    latency.Merge(node.latency());
    AddEngineStats(node.engine().stats(), &report.engine_totals);

    const LiveTransport::Endpoint& ep = transport_.endpoint(static_cast<NodeId>(i));
    report.channel_messages += ep.messages_received();
    report.channel_batches += ep.batches_received();
    report.channel_full_waits += ep.full_waits();
    report.credit_parks += ep.credit_parks();
    report.wakeups += ep.wakeups();
    report.batches_sent += ep.coalescer().batches_sent();
    report.flushes_size += ep.coalescer().flushes(FlushCause::kSize);
    report.flushes_boundary += ep.coalescer().flushes(FlushCause::kBoundary);
    report.flushes_idle += ep.coalescer().flushes(FlushCause::kIdle);
    report.flushes_deadline += ep.coalescer().flushes(FlushCause::kDeadline);
    report.updates_collapsed += ep.updates_collapsed();
    report.batch_sizes.Merge(ep.coalescer().batch_sizes());
    report.epoch_msgs += ep.epoch_msgs_sent();
    report.rack.updates_sent += ep.updates_sent();
    report.rack.invalidations_sent += ep.invalidations_sent();
    report.rack.acks_sent += ep.acks_sent();
    report.rack.credit_updates_sent += ep.credit_returns();

    const PartitionStats ps = node.partition().stats();
    report.store_read_retries += ps.read_retries;
    const SlabAllocator::Stats ss = node.partition().slab_stats();
    report.slab_live_slots += ss.live_slots;
    report.slab_arena_bytes += ss.arena_bytes;
  }

  report.rack.duration_s = wall_seconds;
  FillThroughput(report.completed, hit, miss, wall_seconds * 1e9, &report.rack);
  FillLatency(latency, &report.rack);

  if (nodes_[0] != nullptr) {
    if (const HotSetManager* coord = nodes_[0]->hot_set_manager(); coord != nullptr) {
      report.rack.epochs = coord->epochs_closed();
      report.rack.hot_set_churn = coord->last_epoch_churn();
    }
  }

  if (params_.record_history) {
    for (auto& node : nodes_) {
      if (node == nullptr) {
        continue;
      }
      for (const HistoryOp& op : node->history_ops()) {
        history_.Record(op);
      }
    }
  }

  if (params_.profile) {
    report.profiler_samples = profiler.samples();
  }

  if (!params_.trace_path.empty() && !tracers_.empty()) {
    std::vector<const Tracer*> tracers;
    for (const auto& t : tracers_) {
      if (t != nullptr) {
        report.spans_recorded += t->ring().recorded();
        report.spans_dropped += t->ring().dropped();
        tracers.push_back(t.get());
      }
    }
    std::string path = params_.trace_path;
    TraceExportOptions topts;
    if (ranked()) {
      // One file per process (the profiler CSV pattern); rank 0 of the
      // launcher merges them by line into one Chrome trace.
      path += ".rank" + std::to_string(params_.transport.rank);
      topts.pid = params_.transport.rank;
      topts.process_name = "rank " + std::to_string(params_.transport.rank);
    }
    // Anchor rdtsc stamps to the shared history clock: ranks agree on
    // clock_epoch_ns and the TSC is machine-wide, so per-rank files align.
    topts.now_cycles = CycleNow();
    topts.now_ns = clock_ns();
    std::string trace_error;
    if (!WriteChromeTrace(path, tracers, topts, &trace_error)) {
      report.trace_error = trace_error;  // diagnostic only; the run succeeded
    }
  }

  report.transport_error = transport_.fabric().error();
  return report;
}

}  // namespace cckvs
