// Shared-memory transport backend: same-host multi-process racks.
//
// One POSIX shm region holds the whole fabric: a per-(src,dst) SPSC byte
// ring for every ordered node pair, a process-shared doorbell per node, the
// §6.3 credit-return matrix, and the rack-global inflight counter.  Batches
// travel as serialized frames ([u32 len][wire_codec batch]), exactly the
// bytes the socket backend would put on a stream — so FIFO per lane is the
// ring's own order, wakeup-once-per-batch is one doorbell signal per frame,
// and inflight() stays rack-global because the counter lives in the region.
//
// The creator (rank 0, or the all-in-one process) initializes the region and
// sets the ready flag; joiners attach and wait for it.  See shm_fabric.cc for
// the layout and the lost-wakeup argument.

#ifndef CCKVS_RUNTIME_SHM_FABRIC_H_
#define CCKVS_RUNTIME_SHM_FABRIC_H_

#include <memory>
#include <string>

#include "src/runtime/fabric.h"

namespace cckvs {

// Creates (rank <= 0) or attaches (rank > 0) the shm fabric.  Blocks until
// the region is ready; returns nullptr with *error set on create/attach
// failure or ready-wait timeout.
std::unique_ptr<TransportFabric> MakeShmFabric(const FabricConfig& config,
                                               const TransportOptions& opts,
                                               std::string* error);

}  // namespace cckvs

#endif  // CCKVS_RUNTIME_SHM_FABRIC_H_
