#include "src/runtime/socket_fabric.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/channel.h"
#include "src/runtime/wire_codec.h"

namespace cckvs {
namespace {

std::uint64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Full write with MSG_NOSIGNAL: a dying peer yields EPIPE, not a signal.
bool WriteAll(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Full read with stream reassembly: short reads (a peer trickling a frame
// byte-by-byte) just loop.  Returns 1 on success, 0 on a clean EOF before
// any byte (an orderly connection close at a frame boundary — benign), and
// -1 on an error or an EOF mid-read (the peer died holding half a frame).
int ReadFull(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (r == 0) {
      return got == 0 ? 0 : -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

void PutU32Le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

bool SendFrame(int fd, std::uint8_t type, const std::uint8_t* payload,
               std::size_t len) {
  std::uint8_t hdr[kSocketFrameHeaderBytes];
  hdr[0] = type;
  PutU32Le(hdr + 1, static_cast<std::uint32_t>(len));
  return WriteAll(fd, hdr, sizeof(hdr)) && (len == 0 || WriteAll(fd, payload, len));
}

class SocketFabric final : public TransportFabric {
 public:
  SocketFabric(const FabricConfig& config, const TransportOptions& opts)
      : n_(config.num_nodes),
        rank_(opts.rank),
        opts_(opts),
        fds_(static_cast<std::size_t>(n_) * n_, -1),
        returned_(static_cast<std::size_t>(n_) * n_),
        tx_scratch_(static_cast<std::size_t>(n_)) {
    inboxes_.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      inboxes_.push_back(
          std::make_unique<MpscChannel<WireBatch>>(config.channel_capacity));
    }
  }

  ~SocketFabric() override {
    Shutdown();
    for (int& fd : fds_) {
      if (fd >= 0) {
        close(fd);
        fd = -1;
      }
    }
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    if (!listen_path_.empty()) {
      unlink(listen_path_.c_str());
    }
  }

  bool Init(std::string* error) {
    if (rank_ < 0) {
      // All-in-one: a socketpair per unordered pair; each end is owned (for
      // writes) by one node and read on its behalf by the rx thread.
      for (int i = 0; i < n_; ++i) {
        for (int j = i + 1; j < n_; ++j) {
          int sv[2];
          if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            *error = std::string("socketpair: ") + std::strerror(errno);
            return false;
          }
          Fd(static_cast<NodeId>(i), static_cast<NodeId>(j)) = sv[0];
          Fd(static_cast<NodeId>(j), static_cast<NodeId>(i)) = sv[1];
        }
      }
    } else {
      if (!SetupRanked(error)) {
        return false;
      }
    }
    rx_thread_ = std::thread([this] { RxLoop(); });
    return true;
  }

  void Deliver(NodeId to, WireBatch&& batch) override {
    const NodeId src = batch.src;
    // Per-src serialize scratch: each node thread delivers only as itself.
    Buffer& buf = tx_scratch_[src];
    buf.clear();
    SerializeWireBatch(batch, &buf);
    batch_pool().Recycle(std::move(batch));  // bytes are out; rewarm the slots
    const int fd = Fd(src, to);
    if (fd < 0) {
      SetError("send to node " + std::to_string(static_cast<int>(to)) +
               ": connection is down");
      return;
    }
    if (!SendFrame(fd, kSocketFrameBatch, buf.data(), buf.size())) {
      SetError("send to node " + std::to_string(static_cast<int>(to)) + ": " +
               std::strerror(errno));
    }
  }

  std::size_t Drain(NodeId self, std::vector<WireBatch>* out,
                    std::size_t max) override {
    return inboxes_[self]->TryDrain(out, max);
  }

  void Wait(NodeId self, std::chrono::microseconds timeout) override {
    std::vector<WireBatch> none;
    inboxes_[self]->WaitDrain(&none, /*max=*/0, timeout);
  }

  void ReturnCredits(NodeId self, NodeId to, int n) override {
    const int fd = Fd(self, to);
    if (fd < 0) {
      return;  // connection gone; the run is already erroring out
    }
    std::uint8_t payload[4];
    PutU32Le(payload, static_cast<std::uint32_t>(n));
    if (!SendFrame(fd, kSocketFrameCredit, payload, sizeof(payload))) {
      SetError("credit return to node " + std::to_string(static_cast<int>(to)) +
               ": " + std::strerror(errno));
    }
  }

  int TakeReturnedCredits(NodeId self, NodeId peer) override {
    return Cell(self, peer).exchange(0, std::memory_order_acquire);
  }

  void AddInflight(std::uint64_t n) override {
    inflight_.fetch_add(n, std::memory_order_acq_rel);
  }
  void SubInflight(std::uint64_t n) override {
    inflight_.fetch_sub(n, std::memory_order_acq_rel);
  }
  std::uint64_t inflight() const override {
    return inflight_.load(std::memory_order_acquire);
  }

  // A stream spans processes: in ranked mode adds and subs land in different
  // processes, so the local counter is not a rack-global drain condition.
  bool InflightIsGlobal() const override { return rank_ < 0; }

  FabricStats stats(NodeId self) const override {
    const MpscChannel<WireBatch>& inbox = *inboxes_[self];
    return FabricStats{inbox.pushes(), inbox.full_waits(), inbox.wakeups()};
  }

  std::uint64_t InboundDepth(NodeId self) const override {
    return inboxes_[self]->size();
  }

  std::string error() const override {
    std::lock_guard<std::mutex> lock(error_mu_);
    return error_;
  }

  bool faulted() const override {
    return faulted_.load(std::memory_order_acquire);
  }

  void Shutdown() override {
    if (shutdown_.exchange(true)) {
      return;
    }
    // Kick the rx thread out of poll()/recv(): shutdown(2) makes every
    // pending and future read return immediately without racing a close.
    for (const int fd : fds_) {
      if (fd >= 0) {
        shutdown(fd, SHUT_RDWR);
      }
    }
    if (listen_fd_ >= 0) {
      shutdown(listen_fd_, SHUT_RDWR);
    }
    if (rx_thread_.joinable()) {
      rx_thread_.join();
    }
  }

 private:
  int& Fd(NodeId owner, NodeId peer) {
    return fds_[static_cast<std::size_t>(owner) * n_ + peer];
  }
  std::atomic<int>& Cell(NodeId sender, NodeId returner) {
    return returned_[static_cast<std::size_t>(sender) * n_ + returner];
  }

  void SetError(const std::string& e) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (error_.empty()) {
      error_ = e;
    }
    faulted_.store(true, std::memory_order_release);
  }

  bool SetupRanked(std::string* error) {
    const std::uint64_t deadline =
        NowNs() + static_cast<std::uint64_t>(opts_.connect_timeout_ms) * 1'000'000ull;
    if (!Listen(error)) {
      return false;
    }
    // Lower ranks listen before we connect (they set up their listener first
    // thing too), but their process may simply not have started yet — retry
    // connect until the shared deadline.
    for (int j = 0; j < rank_; ++j) {
      const int fd = ConnectTo(j, deadline, error);
      if (fd < 0) {
        return false;
      }
      const std::uint8_t hello = static_cast<std::uint8_t>(rank_);
      if (!SendFrame(fd, kSocketFrameHello, &hello, 1)) {
        *error = "hello to rank " + std::to_string(j) + ": " + std::strerror(errno);
        close(fd);
        return false;
      }
      Fd(static_cast<NodeId>(rank_), static_cast<NodeId>(j)) = fd;
    }
    // Higher ranks connect to us and identify themselves with HELLO.
    for (int expected = n_ - 1 - rank_; expected > 0; --expected) {
      const int fd = AcceptOne(deadline, error);
      if (fd < 0) {
        return false;
      }
      std::uint8_t hdr[kSocketFrameHeaderBytes];
      std::uint8_t peer = 0;
      if (ReadFull(fd, hdr, sizeof(hdr)) != 1 || hdr[0] != kSocketFrameHello ||
          GetU32Le(hdr + 1) != 1 || ReadFull(fd, &peer, 1) != 1 || peer <= rank_ ||
          peer >= n_) {
        *error = "malformed hello from an inbound connection";
        close(fd);
        return false;
      }
      if (Fd(static_cast<NodeId>(rank_), peer) >= 0) {
        *error = "duplicate hello from rank " + std::to_string(int{peer});
        close(fd);
        return false;
      }
      Fd(static_cast<NodeId>(rank_), peer) = fd;
    }
    return true;
  }

  bool Listen(std::string* error) {
    if (opts_.tcp_port_base > 0) {
      listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd_ < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
      }
      const int one = 1;
      setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port_base + rank_));
      if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
          listen(listen_fd_, n_) != 0) {
        *error = "bind/listen tcp port " +
                 std::to_string(opts_.tcp_port_base + rank_) + ": " +
                 std::strerror(errno);
        return false;
      }
      return true;
    }
    listen_path_ = opts_.socket_path_base + "." + std::to_string(rank_);
    unlink(listen_path_.c_str());
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (listen_path_.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long: " + listen_path_;
      return false;
    }
    std::strncpy(addr.sun_path, listen_path_.c_str(), sizeof(addr.sun_path) - 1);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        listen(listen_fd_, n_) != 0) {
      *error = "bind/listen " + listen_path_ + ": " + std::strerror(errno);
      return false;
    }
    return true;
  }

  int ConnectTo(int peer, std::uint64_t deadline, std::string* error) {
    while (true) {
      int fd;
      int rc;
      if (opts_.tcp_port_base > 0) {
        fd = socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port_base + peer));
        rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      } else {
        fd = socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = opts_.socket_path_base + "." + std::to_string(peer);
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      }
      if (rc == 0) {
        if (opts_.tcp_port_base > 0) {
          const int one = 1;
          setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        return fd;
      }
      const int err = errno;
      close(fd);
      if (NowNs() > deadline) {
        *error = "connect to rank " + std::to_string(peer) +
                 " refused past deadline: " + std::strerror(err);
        return -1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  int AcceptOne(std::uint64_t deadline, std::string* error) {
    while (true) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const std::uint64_t now = NowNs();
      if (now > deadline) {
        *error = "timed out waiting for inbound rank connections";
        return -1;
      }
      const int timeout_ms = static_cast<int>((deadline - now) / 1'000'000ull) + 1;
      const int rc = poll(&pfd, 1, std::min(timeout_ms, 100));
      if (rc < 0 && errno != EINTR) {
        *error = std::string("poll(listen): ") + std::strerror(errno);
        return -1;
      }
      if (rc > 0 && (pfd.revents & POLLIN) != 0) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          if (opts_.tcp_port_base > 0) {
            const int one = 1;
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          }
          return fd;
        }
      }
    }
  }

  // The fabric's single receive thread: polls every inbound side, reassembles
  // frames, and feeds the per-node inboxes.  One decoded batch is one inbox
  // push — the wakeup-once-per-batch contract rides on MpscChannel as in the
  // in-process backend.
  void RxLoop() {
    std::vector<pollfd> pfds;
    struct LaneRef {
      NodeId owner;  // the local node whose inbox this lane feeds
      NodeId peer;
    };
    std::vector<LaneRef> lanes;
    for (int i = 0; i < n_; ++i) {
      if (rank_ >= 0 && i != rank_) {
        continue;
      }
      for (int j = 0; j < n_; ++j) {
        const int fd = Fd(static_cast<NodeId>(i), static_cast<NodeId>(j));
        if (fd >= 0) {
          pfds.push_back(pollfd{fd, POLLIN, 0});
          lanes.push_back(LaneRef{static_cast<NodeId>(i), static_cast<NodeId>(j)});
        }
      }
    }
    while (!shutdown_.load(std::memory_order_acquire)) {
      const int rc = poll(pfds.data(), pfds.size(), 50);
      if (rc < 0 && errno != EINTR) {
        SetError(std::string("poll: ") + std::strerror(errno));
        return;
      }
      if (rc <= 0) {
        continue;
      }
      for (std::size_t k = 0; k < pfds.size(); ++k) {
        if (pfds[k].fd < 0 ||
            (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
          continue;
        }
        if (!HandleFrame(pfds[k].fd, lanes[k].owner, lanes[k].peer)) {
          pfds[k].fd = -pfds[k].fd - 1;  // stop polling this lane
        }
      }
    }
  }

  // Reads and dispatches one frame; false when the lane is dead.
  bool HandleFrame(int fd, NodeId owner, NodeId peer) {
    std::uint8_t hdr[kSocketFrameHeaderBytes];
    const int hrc = ReadFull(fd, hdr, sizeof(hdr));
    if (hrc <= 0) {
      // A clean close at a frame boundary (hrc == 0) is orderly teardown —
      // the rack-level termination handshake already ran.  Anything else is
      // a peer dying with half a frame on the wire.
      if (hrc < 0 && !shutdown_.load(std::memory_order_acquire)) {
        SetError("peer " + std::to_string(static_cast<int>(peer)) +
                 " hung up mid-frame");
      }
      return false;
    }
    const std::uint8_t type = hdr[0];
    const std::uint32_t len = GetU32Le(hdr + 1);
    if (len > kSocketMaxFrameBytes) {
      SetError("oversized frame (" + std::to_string(len) + " bytes) from peer " +
               std::to_string(static_cast<int>(peer)));
      return false;
    }
    // Member payload buffer: HandleFrame only ever runs on the one rx thread,
    // and resize() past the high-water mark is the only allocation.
    rx_payload_.resize(len);
    if (len > 0 && ReadFull(fd, rx_payload_.data(), len) != 1) {
      if (!shutdown_.load(std::memory_order_acquire)) {
        SetError("peer " + std::to_string(static_cast<int>(peer)) +
                 " hung up mid-frame");
      }
      return false;
    }
    switch (type) {
      case kSocketFrameBatch: {
        WireBatch batch = batch_pool().Acquire();  // decode into warm slots
        if (!TryDeserializeWireBatch(rx_payload_.data(), len, &batch)) {
          SetError("undecodable batch frame from peer " +
                   std::to_string(static_cast<int>(peer)));
          batch_pool().Recycle(std::move(batch));
          return false;
        }
        inboxes_[owner]->Push(std::move(batch));
        return true;
      }
      case kSocketFrameCredit: {
        if (len != 4) {
          SetError("malformed credit frame from peer " +
                   std::to_string(static_cast<int>(peer)));
          return false;
        }
        Cell(owner, peer).fetch_add(
            static_cast<int>(GetU32Le(rx_payload_.data())),
            std::memory_order_release);
        return true;
      }
      case kSocketFrameHello:
        return true;  // late hello: harmless
      default:
        SetError("unknown frame type " + std::to_string(int{type}) +
                 " from peer " + std::to_string(static_cast<int>(peer)));
        return false;
    }
  }

  const int n_;
  const int rank_;
  const TransportOptions opts_;
  std::vector<int> fds_;  // [owner][peer], -1 when absent
  std::vector<std::unique_ptr<MpscChannel<WireBatch>>> inboxes_;
  std::vector<std::atomic<int>> returned_;
  std::atomic<std::uint64_t> inflight_{0};
  int listen_fd_ = -1;
  std::string listen_path_;
  std::vector<Buffer> tx_scratch_;  // per src; each node writes only as itself
  Buffer rx_payload_;               // rx-thread-only frame reassembly buffer
  std::thread rx_thread_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> faulted_{false};
  mutable std::mutex error_mu_;
  std::string error_;
};

}  // namespace

std::unique_ptr<TransportFabric> MakeSocketFabric(const FabricConfig& config,
                                                  const TransportOptions& opts,
                                                  std::string* error) {
  auto fabric = std::make_unique<SocketFabric>(config, opts);
  if (!fabric->Init(error)) {
    return nullptr;
  }
  return fabric;
}

}  // namespace cckvs
