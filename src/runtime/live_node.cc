#include "src/runtime/live_node.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/common/alloc_tracker.h"
#include "src/common/check.h"
#include "src/common/cpu.h"
#include "src/common/cycles.h"
#include "src/runtime/live_rack.h"

namespace cckvs {
namespace {

// Inbound batches drained per pump before giving client ops a turn; keeps one
// flooded channel from starving the node's own sessions.  Counts batches, so
// a pump handles at most kPollBatch * coalesce_max_batch messages.
constexpr std::size_t kPollBatch = 256;

}  // namespace

LiveNode::LiveNode(LiveRack* rack, NodeId id, WorkloadGenerator gen)
    : rack_(rack),
      id_(id),
      ep_(&rack->transport().endpoint(id)),
      gen_(std::move(gen)) {
  const LiveRackParams& p = rack->params();
  quota_ = p.ops_per_node;
  ranked_ = rack->ranked();
  coordinator_ = ranked_ && id == 0;
  tracer_ = rack->tracer(id);
  if (tracer_ != nullptr) {
    ep_->set_tracer(tracer_);  // batch-residence spans (coalescer.h)
  }
  record_history_ = p.record_history;
  busy_poll_ = p.busy_poll;
  track_allocs_ = p.track_allocs;
  if (p.profile) {
    pub_ = &rack->worker_counters(id);
  }
  if (coordinator_) {
    prev_counts_.resize(static_cast<std::size_t>(p.num_nodes));
  }

  PartitionConfig pc;
  pc.buckets = p.partition_buckets;
  pc.node_id = id;
  const std::uint32_t value_bytes = p.workload.value_bytes;
  pc.synthesize = [value_bytes](Key key) { return SynthesizeValue(key, value_bytes); };
  pc.synthesize_into = [value_bytes](Key key, Value* out) {
    SynthesizeValueInto(key, value_bytes, out);
  };
  partition_ = std::make_unique<Partition>(pc);

  cache_ = std::make_unique<SymmetricCache>(p.cache_capacity);
  if (p.l1_capacity > 0) {
    l1_ = std::make_unique<L1TailCache>(p.l1_capacity, p.l1_policy,
                                        p.workload.value_bytes);
    // The sketch needs headroom over the L1 so candidates can out-count
    // residents before one is admitted.
    l1_sketch_ = std::make_unique<FlatSpaceSaving>(p.l1_capacity * 2);
    // Lin hits validate against the home shard's current timestamp; in a
    // ranked rack a remote home is only RPC-reachable, so Lin admission is
    // restricted to self-homed keys.  SC needs neither: a private copy only
    // ever lags, which per-session timestamp monotonicity allows.
    l1_validate_ = p.consistency == ConsistencyModel::kLin;
    l1_admit_local_only_ = ranked_ && l1_validate_;
  }
  if (p.consistency == ConsistencyModel::kLin) {
    engine_ = std::make_unique<LinEngine>(id, p.num_nodes, cache_.get(), ep_);
  } else {
    CCKVS_CHECK(p.consistency == ConsistencyModel::kSc);
    engine_ = std::make_unique<ScEngine>(id, p.num_nodes, cache_.get(), ep_);
  }
  engine_->PrewarmScratch(p.workload.value_bytes);

  if (p.online_topk) {
    HotSetManagerConfig hc;
    hc.self = id;
    hc.num_nodes = p.num_nodes;
    hc.coordinator = id == 0;
    hc.epoch.hot_set_size = p.cache_capacity;
    hc.epoch.requests_per_epoch = p.topk_epoch_requests;
    hc.epoch.sample_probability = p.topk_sample_probability;
    hc.epoch.seed = p.seed ^ 0x70cull;
    hc.epoch.adaptive = p.topk_adaptive_epochs;
    hc.home_of = [rack](Key key) { return rack->HomeOf(key); };
    hot_mgr_ = std::make_unique<HotSetManager>(hc, cache_.get(), engine_.get(),
                                               static_cast<HotSetHost*>(this));
  }

  sessions_.resize(static_cast<std::size_t>(p.window_per_node));
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    // Sessions are pinned to their node, as in the simulator.
    sessions_[s].id = static_cast<SessionId>(id) * 100000u + static_cast<SessionId>(s);
  }
  idle_sessions_ = sessions_.size();
  rpc_waiting_.assign(sessions_.size(), 0);
  parked_sc_writes_.Reset(sessions_.size());
  parked_gated_.Reset(sessions_.size());
}

void LiveNode::PrefillHotSet(const std::vector<Key>& hot_keys) {
  cache_->InstallHotSet(hot_keys);
  for (const Key key : hot_keys) {
    cache_->Fill(key, SynthesizeValue(key, rack_->params().workload.value_bytes),
                 Timestamp{0, 0});
  }
  if (hot_mgr_ != nullptr && hot_mgr_->coordinator()) {
    // Keys the first epoch drops from the oracle set must settle like any
    // published eviction before they are eligible for re-admission.
    hot_mgr_->SeedPublished(hot_keys);
  }
}

SimTime LiveNode::NowTs() {
  SimTime t = rack_->clock_ns();
  if (t <= last_ts_) {
    t = last_ts_ + 1;
  }
  last_ts_ = t;
  return t;
}

void LiveNode::Run(StopToken stop) {
  const bool debug_state = std::getenv("CCKVS_DEBUG_STATE") != nullptr;
  // The same periodic node state feeds two sinks: the CCKVS_DEBUG_STATE
  // stderr dump (env-gated, human-readable) and — whenever tracing is armed —
  // a structured state_dump instant in the trace, so a stuck drain phase is
  // diagnosable from the trace file alone (docs/OBSERVABILITY.md).
  const bool dump_state = debug_state || tracer_ != nullptr;
  std::uint64_t last_dump_cycles = 0;
  std::uint64_t idle_spins = 0;
  // Force the rdtsc→ns calibration (a one-time ~10ms busy-wait behind a
  // function-local static) before the first op is stamped and before the
  // allocation window can open.
  CyclesPerNs();
  const std::uint64_t dump_interval_cycles =
      static_cast<std::uint64_t>(2e9 * CyclesPerNs());
  while (true) {
    if (dump_state) {
      const std::uint64_t now_cycles = CycleNow();
      if (now_cycles - last_dump_cycles > dump_interval_cycles) {
        last_dump_cycles = now_cycles;
        if (tracer_ != nullptr) {
          // arg0 = ops completed; arg1 packs the four queue depths a hang
          // diagnosis needs (16 bits each: gated, parked SC, RPCs out, idle).
          const std::uint64_t a1 =
              (static_cast<std::uint64_t>(parked_gated_.size()) & 0xffff) |
              ((static_cast<std::uint64_t>(parked_sc_writes_.size()) & 0xffff) << 16) |
              ((static_cast<std::uint64_t>(rpc_outstanding_) & 0xffff) << 32) |
              ((static_cast<std::uint64_t>(idle_sessions_) & 0xffff) << 48);
          tracer_->Instant(SpanKind::kStateDump, 0, 0, counters_.completed, a1);
        }
        if (debug_state) {
          std::fprintf(stderr,
                       "[node %d] halted=%d idle=%zu/%zu parked_sc=%zu gated=%zu "
                       "rpc_out=%zu quiesc=%d pending=%d engineq=%d "
                       "completed=%llu sent=%llu proc=%llu round=%u open=%d stat=%zu\n",
                       int{id_}, halted_, idle_sessions_, sessions_.size(),
                       parked_sc_writes_.size(), parked_gated_.size(),
                       rpc_outstanding_,
                       ranked_ ? LocallyQuiescent() : done_, !ep_->NothingPending(),
                       engine_->Quiescent(),
                       static_cast<unsigned long long>(counters_.completed),
                       static_cast<unsigned long long>(ep_->data_sent()),
                       static_cast<unsigned long long>(ep_->data_processed()),
                       term_round_, round_open_, round_status_.size());
        }
      }
    }
    if (rack_->transport().fabric().faulted()) {
      // A fabric fault (peer hangup mid-frame, undecodable frame) cannot heal;
      // bail out so the run reports the error instead of hanging on drain.
      return;
    }
    const std::size_t processed = PollInbound(kPollBatch);
    ep_->FlushPending();       // credits may have come back
    RetryParkedScWrites();
    MaybeRetryDeferred();      // protocol progress may have released evictions
    const bool gated_progress = RetryGatedOps();

    bool issued = false;
    if (!halted_) {
      if (stop.StopRequested() || counters_.completed >= quota_) {
        halted_ = true;
      } else {
        issued = FillIdleSessions();
      }
    }
    PollAllocWindow();

    // Op boundary: everything this iteration produced — acks for the polled
    // invalidations, updates/invalidations/epoch traffic from the ops above —
    // ships now, one batch per peer.  Unconditional, so no message outlives
    // an iteration inside an open batch and the done-check below can trust
    // NothingPending().
    ep_->FlushBatches(FlushCause::kBoundary);

    if (ranked_) {
      // Multi-process: no shared inflight atomic to consult, so global
      // quiescence is certified by the counting protocol instead.
      if (RankedTermination()) {
        return;
      }
    } else {
      if (!done_ && halted_ && AllSessionsIdle() && parked_sc_writes_.empty() &&
          ep_->NothingPending() && engine_->Quiescent()) {
        // Locally quiescent: no client work, no parked protocol work.  This is
        // monotonic — with no local ops, incoming messages can only be updates
        // (no sends) or invalidations (ack rides implicit credits).
        done_ = true;
        rack_->OnNodeDone();
      }
      if (done_ && rack_->AllNodesDone() && rack_->transport().inflight() == 0) {
        // No node can create new messages and none are in flight: the rack is
        // globally quiescent, histories are sealed.
        return;
      }
    }

    PublishCounters();

    if (processed == 0 && !issued && !gated_progress) {
      if (busy_poll_) {
        // Busy-poll mode: spin on the inbound ring instead of parking.  The
        // expired-deadline poll preserves the flush policy the sleeping path
        // applies before parking (a held sub-cap batch still ships within its
        // deadline); the periodic yield keeps oversubscribed hosts — and
        // single-CPU CI — live.
        ep_->PollExpiredDeadlines();
        if (++idle_spins % 64 == 0) {
          std::this_thread::yield();
        }
        CpuRelax();
      } else {
        // Nothing to do right now.  Credit returns are silent (atomic adds),
        // so bound the sleep rather than waiting for a message that may not
        // come.
        const bool settled = ranked_ ? LocallyQuiescent() : done_;
        ep_->WaitForTraffic(std::chrono::microseconds(settled ? 50 : 200));
      }
    }
  }
}

void LiveNode::PollAllocWindow() {
  if (!track_allocs_ || alloc_window_done_) {
    return;
  }
  if (!alloc_window_open_) {
    // Warmup: the first quarter of the quota grows every buffer, pool and
    // freelist to its steady-state capacity; only what comes after counts.
    if (!halted_ && counters_.completed >= quota_ / 4) {
      alloc_window_open_ = true;
      alloc::ResetThread();
      alloc::EnableThread();
    }
    return;
  }
  if (halted_) {
    alloc::DisableThread();
    hot_path_allocs_ = alloc::ThreadCount();
    alloc_window_open_ = false;
    alloc_window_done_ = true;
    if (rack_->params().alloc_assert && alloc::TrackerAvailable()) {
      CCKVS_CHECK_EQ(hot_path_allocs_, 0u);
    }
  }
}

void LiveNode::PublishCounters() {
  if (pub_ == nullptr) {
    return;
  }
  WorkerCounters& w = *pub_;
  const auto relaxed = std::memory_order_relaxed;
  w.ops.store(counters_.completed, relaxed);
  w.hits.store(counters_.hit_completed, relaxed);
  w.misses.store(counters_.miss_completed, relaxed);
  w.rpcs.store(counters_.rpcs_sent, relaxed);
  w.msgs_sent.store(ep_->coalescer().messages_sent(), relaxed);
  w.batches_sent.store(ep_->coalescer().batches_sent(), relaxed);
  w.flush_size.store(ep_->coalescer().flushes(FlushCause::kSize), relaxed);
  w.flush_boundary.store(ep_->coalescer().flushes(FlushCause::kBoundary), relaxed);
  w.flush_idle.store(ep_->coalescer().flushes(FlushCause::kIdle), relaxed);
  w.flush_deadline.store(ep_->coalescer().flushes(FlushCause::kDeadline), relaxed);
  if (l1_ != nullptr) {
    w.l1_hits.store(counters_.l1_hits, relaxed);
    w.l1_invalidations.store(l1_->stats().invalidations, relaxed);
    w.l1_fills.store(l1_->stats().fills, relaxed);
  }
  w.allocs.store(track_allocs_ ? alloc::ThreadCount() : 0, relaxed);
  w.inbound_depth.store(rack_->transport().fabric().InboundDepth(id_), relaxed);
}

std::size_t LiveNode::PollInbound(std::size_t max) {
  return ep_->Poll(max, [this](NodeId src, const WireBody& body) {
    if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
      if (l1_ != nullptr) {
        // Write-through-invalidate: a consistency update proves the key was
        // written somewhere; the private copy must not outlive it.
        l1_->Invalidate(upd->key);
      }
      if (cache_->Find(upd->key) != nullptr) {
        engine_->OnUpdate(src, *upd);
      } else if (rack_->HomeOf(upd->key) == id_) {
        // Key not cached here (possible once hot sets churn): complete the
        // write-back directly into the home shard, as the simulator does.
        partition_->Apply(upd->key, upd->value, upd->ts);
      } else if (hot_mgr_ != nullptr) {
        // Uncached and homed elsewhere: our membership lags an announce in
        // flight.  Remember the update so a stashed fill cannot resurrect an
        // older value (hot_set_manager.h, fill-vs-announce race).
        hot_mgr_->NoteUncachedUpdate(upd->key, upd->value, upd->ts);
      }
    } else if (const auto* inv = std::get_if<InvalidateMsg>(&body)) {
      if (l1_ != nullptr) {
        l1_->Invalidate(inv->key);
      }
      if (hot_mgr_ != nullptr && cache_->Find(inv->key) == nullptr) {
        hot_mgr_->NoteUncachedInvalidate(inv->key, inv->ts);
      }
      engine_->OnInvalidate(src, *inv);  // acks unconditionally
    } else if (const auto* ack = std::get_if<AckMsg>(&body)) {
      engine_->OnAck(src, *ack);
    } else if (const auto* hot = std::get_if<HotSetAnnounceMsg>(&body)) {
      if (hot_mgr_ != nullptr) {
        DriveAnnounceTraced(*hot);
      }
    } else if (const auto* fill = std::get_if<FillMsg>(&body)) {
      if (l1_ != nullptr) {
        // The key is entering the symmetric tier: tier exclusivity.
        l1_->Invalidate(fill->key);
      }
      if (hot_mgr_ != nullptr) {
        hot_mgr_->ApplyFill(*fill);
        if (tracer_ != nullptr) {
          tracer_->Instant(SpanKind::kFillApplied, 0, 0, fill->key, fill->epoch);
        }
      }
    } else if (const auto* installed = std::get_if<EpochInstalledMsg>(&body)) {
      if (hot_mgr_ != nullptr) {
        hot_mgr_->DrivePeerInstalled(src, installed->epoch);
        if (tracer_ != nullptr) {
          tracer_->Instant(SpanKind::kPeerInstalled, 0, 0, installed->epoch, src);
          MaybeCloseBarrier();
        }
      }
    } else if (const auto* req = std::get_if<RpcRequest>(&body)) {
      ServeRpc(src, *req);
    } else if (const auto* resp = std::get_if<RpcResponse>(&body)) {
      OnRpcResponse(*resp);
    } else if (const auto* probe = std::get_if<TermProbeMsg>(&body)) {
      // Answer with this rank's counters *now* — after the probe itself has
      // been counted as processed (Poll increments before this handler runs
      // only for data messages; Term* are excluded on both sides).
      TermStatusMsg status;
      status.round = probe->round;
      status.rank = id_;
      status.done = LocallyQuiescent();
      status.sent = ep_->data_sent();
      status.processed = ep_->data_processed();
      ep_->SendDirect(src, WireBody{status});
    } else if (const auto* status = std::get_if<TermStatusMsg>(&body)) {
      if (coordinator_ && round_open_ && status->round == term_round_) {
        round_status_.push_back(*status);
      }
    } else {
      CCKVS_CHECK(std::holds_alternative<TermHaltMsg>(body));
      halt_ = true;
    }
  });
}

// --- HotSetHost hooks: the live half of the shared transition machine ---

void LiveNode::ApplyWriteback(const SymmetricCache::Eviction& ev) {
  if (l1_ != nullptr) {
    // The write-back may carry a value newer than a private copy taken while
    // the key was still shard-resident.
    l1_->Invalidate(ev.key);
  }
  partition_->Apply(ev.key, ev.value, ev.ts);
}

LiveNode::FillSnapshot LiveNode::GateAndSnapshot(Key key) {
  // Raise the shard residency gate and snapshot the fill atomically: any
  // direct shard write lands entirely before the snapshot or is refused
  // after it, so the cache era starts from an authoritative value.
  const Partition::ResidentSnapshot snap = partition_->MarkCacheResident(key);
  return FillSnapshot{snap.value, snap.ts};
}

void LiveNode::PublishFills(const std::vector<FillMsg>& fills) {
  for (const FillMsg& fill : fills) {
    ep_->BroadcastFill(fill);
  }
}

void LiveNode::PublishInstalled(const EpochInstalledMsg& msg) {
  ep_->BroadcastEpochInstalled(msg);
  if (tracer_ != nullptr) {
    // The install that the announce opened is done on this node: close the
    // epoch_install span, then start waiting on the rack-wide barrier.
    if (install_start_cycles_ != 0 && msg.epoch >= install_epoch_) {
      tracer_->Emit(SpanKind::kEpochInstall, 0, tracer_->NewSpanId(), 0,
                    install_start_cycles_, CycleNow(), msg.epoch,
                    hot_mgr_->deferred_evictions());
      install_start_cycles_ = 0;
    }
    barrier_start_cycles_ = CycleNow();
    barrier_epoch_ = msg.epoch;
    MaybeCloseBarrier();  // peers may already have reported in
  }
}

void LiveNode::LiftGate(Key key) {
  partition_->ClearCacheResident(key);
  if (tracer_ != nullptr) {
    const auto it = gate_spans_.find(key);
    if (it != gate_spans_.end()) {
      tracer_->Emit(SpanKind::kGateClosed, 0, tracer_->NewSpanId(), 0,
                    it->second.first, CycleNow(), key, it->second.second);
      gate_spans_.erase(it);
    }
  }
}

void LiveNode::MaybeRetryDeferred() {
  if (hot_mgr_ != nullptr && hot_mgr_->HasDeferred()) {
    hot_mgr_->DriveDeferred();
    SyncGateSpans();  // deferred evictions can raise fresh gates
  }
}

void LiveNode::DriveAnnounceTraced(const HotSetAnnounceMsg& msg) {
  if (l1_ != nullptr) {
    // Tier exclusivity: any key the rack just promoted to the symmetric hot
    // set leaves the private tail (the symmetric copy becomes authoritative).
    for (const Key key : msg.keys) {
      l1_->Invalidate(key);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanKind::kAnnounce, 0, 0, msg.epoch, msg.keys.size());
    if (install_start_cycles_ == 0 && msg.epoch > install_epoch_) {
      install_start_cycles_ = CycleNow();
      install_epoch_ = msg.epoch;
    }
  }
  hot_mgr_->DriveAnnounce(msg);
  SyncGateSpans();
}

void LiveNode::SyncGateSpans() {
  if (tracer_ == nullptr || hot_mgr_ == nullptr) {
    return;
  }
  // pending_clear() holds every key homed here whose eviction awaits the
  // install barrier; a key not yet in gate_spans_ was gated just now.
  const std::uint64_t now = CycleNow();
  for (const auto& [key, epoch] : hot_mgr_->pending_clear()) {
    gate_spans_.try_emplace(key, now, epoch);
  }
}

void LiveNode::MaybeCloseBarrier() {
  if (tracer_ == nullptr || hot_mgr_ == nullptr || barrier_start_cycles_ == 0) {
    return;
  }
  const int n = rack_->params().num_nodes;
  for (NodeId peer = 0; peer < static_cast<NodeId>(n); ++peer) {
    if (hot_mgr_->peer_installed_epoch(peer) < barrier_epoch_) {
      return;
    }
  }
  tracer_->Emit(SpanKind::kBarrierWait, 0, tracer_->NewSpanId(), 0,
                barrier_start_cycles_, CycleNow(), barrier_epoch_, 0);
  barrier_start_cycles_ = 0;
}

bool LiveNode::RetryGatedOps() {
  if (parked_gated_.empty()) {
    return false;
  }
  retrying_gated_ = true;  // re-parks are not new gate encounters
  bool progress = false;
  const std::size_t n = parked_gated_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = parked_gated_.front();
    parked_gated_.pop_front();
    const std::size_t parked_before = parked_gated_.size();
    RouteOp(slot);  // may re-park at the back
    const bool reparked = parked_gated_.size() != parked_before;
    progress |= !reparked;
    // Un-parked into a path that won't reach CompleteOp soon (a fresh RPC, an
    // SC credit park): the gated wait is over now, so close its span here.
    // When RouteOp completed the op, CompleteOp already closed and cleared it.
    Session& sess = sessions_[slot];
    if (!reparked && sess.park_cycles != 0) {
      tracer_->Emit(SpanKind::kGatedWait, sess.trace_id, tracer_->NewSpanId(),
                    sess.op_span, sess.park_cycles, CycleNow(), sess.op.key, 0);
      sess.park_cycles = 0;
    }
  }
  retrying_gated_ = false;
  return progress;
}

bool LiveNode::FillIdleSessions() {
  if (idle_sessions_ == 0) {
    return false;
  }
  bool issued = false;
  for (std::uint32_t s = 0; s < sessions_.size(); ++s) {
    if (sessions_[s].idle) {
      IssueOp(s);
      issued = true;
    }
  }
  return issued;
}

void LiveNode::IssueOp(std::uint32_t slot) {
  Session& sess = sessions_[slot];
  CCKVS_DCHECK(sess.idle);
  gen_.NextInto(&sess.op);  // reuses the slot's value capacity
  sess.invoke_cycles = CycleNow();
  if (tracer_ != nullptr && tracer_->SampleNext()) {
    // Deterministic 1-in-N op sampling: this op's whole lifecycle — including
    // any RPC legs served by a remote rank — shares this trace id.
    sess.trace_id = tracer_->NewTraceId();
    sess.op_span = tracer_->NewSpanId();
  }
  if (record_history_) {
    // The history clock is only consulted when a history is being recorded;
    // latency always comes from the per-op cycle stamps.
    sess.invoke = NowTs();
  }
  sess.idle = false;
  --idle_sessions_;
  if (hot_mgr_ != nullptr && hot_mgr_->coordinator() &&
      hot_mgr_->Sample(sess.op.key)) {
    const HotSetAnnounceMsg ann = hot_mgr_->announcement();
    ep_->BroadcastHotSet(ann);
    DriveAnnounceTraced(ann);
  }
  RouteOp(slot);
}

void LiveNode::RouteOp(std::uint32_t slot) {
  Session& sess = sessions_[slot];
  const Key key = sess.op.key;
  if (l1_ != nullptr) {
    if (sess.op.type == OpType::kPut) {
      // Write-through-invalidate: drop the private copy up front (even if the
      // write later parks), then take the normal shard/RPC write path.
      l1_->Invalidate(key);
    } else if (TryServeFromL1(slot)) {
      return;
    }
  }
  if (cache_->Probe(key)) {
    if (sess.op.type == OpType::kGet) {
      Timestamp ts;
      const auto result = engine_->Read(key, &read_scratch_, &ts,
                                        [this, slot](const Value& v, Timestamp t) {
                                          CompleteOp(slot, v, t, Route::kCache);
                                        });
      if (result == CoherenceEngine::ReadResult::kHit) {
        CompleteOp(slot, read_scratch_, ts, Route::kCache);
      }
      // kBlocked: the parked-reader callback completes the op.
      return;
    }
    if (engine_->model() == ConsistencyModel::kSc && !ep_->AllPeersHaveCredit()) {
      // SC writes complete as soon as the update broadcast is posted, so
      // posting is the throttle point (§6.3): no credits, the op waits.
      ++counters_.sc_credit_stalls;
      if (sess.trace_id != 0 && sess.credit_park_cycles == 0) {
        sess.credit_park_cycles = CycleNow();
      }
      parked_sc_writes_.push_back(slot);
      return;
    }
    StartCacheWrite(slot);
    return;
  }
  RouteMissOp(slot);
}

bool LiveNode::TryServeFromL1(std::uint32_t slot) {
  Session& sess = sessions_[slot];
  const Key key = sess.op.key;
  Timestamp ts;
  if (!l1_->Get(key, &read_scratch_, &ts)) {
    return false;
  }
  if (l1_validate_) {
    // Lin: a hit only counts if the home shard still holds the exact write we
    // cached — (clock, writer) uniquely identifies a write, so a timestamp
    // match means same value, and the peek instant is the linearization
    // point, exactly as a real shard Get would be.  A resident flag means the
    // symmetric tier owns the key now; either way the private copy dies and
    // the op falls through to the ordinary paths.
    Timestamp home_ts;
    bool resident = false;
    const bool ok = rack_->PartitionOf(key).PeekTimestamp(key, &home_ts, &resident);
    CCKVS_CHECK(ok);
    if (resident || !(home_ts == ts)) {
      l1_->Invalidate(key);
      return false;
    }
  }
  if (sess.trace_id != 0) {
    tracer_->Instant(SpanKind::kL1Hit, sess.trace_id, sess.op_span, key, 0);
  }
  CompleteOp(slot, read_scratch_, ts, Route::kL1);
  return true;
}

void LiveNode::MaybeAdmitToL1(Key key, const Value& value, Timestamp ts) {
  if (l1_admit_local_only_ && rack_->HomeOf(key) != id_) {
    return;
  }
  std::uint64_t guaranteed = 0;
  l1_sketch_->Offer(key, &guaranteed);
  if (++l1_offers_ % (l1_sketch_->capacity() * 8) == 0) {
    // Age the sketch so a key that WAS locally hot cannot squat on a counter
    // forever once per-node popularity drifts.
    l1_sketch_->DecayHalve();
  }
  if (guaranteed < 2) {
    // Gate on PROVEN sightings (count - error), not the estimate: a saturated
    // sketch hands every newcomer the evicted minimum as its estimate, and
    // admitting on that would fill the L1 with one-hit tail keys — churn that
    // evicts the genuinely hot-here entries and burns fill CPU for no reuse.
    return;
  }
  if (cache_->Find(key) != nullptr) {
    return;  // tier exclusivity: the symmetric tier already owns it
  }
  l1_->Fill(key, value, ts);
}

void LiveNode::RouteMissOp(std::uint32_t slot) {
  // Miss: the scale-out-ccNUMA data plane.  Access the home shard directly
  // through the CRCW seqlock path — a remote read is a lock-free copy-out, a
  // remote write takes only the bucket's writer lock.  During an epoch
  // transition the record's residency gate may be up (the hot set still owns
  // the key somewhere in the rack); such ops park and retry until the key is
  // either settled into the shard or admitted into this node's cache.
  Session& sess = sessions_[slot];
  const Key key = sess.op.key;
  if (ranked_ && rack_->HomeOf(key) != id_) {
    // Multi-process rack: the home shard lives in another address space, so
    // the direct load/store is out of reach — fall back to the §6.1 RPC path.
    SendRpc(slot);
    return;
  }
  Partition& home = rack_->PartitionOf(key);
  const std::uint64_t shard_start = sess.trace_id != 0 ? CycleNow() : 0;
  if (sess.op.type == OpType::kGet) {
    Timestamp ts;
    bool resident = false;
    const bool ok = home.Get(key, &read_scratch_, &ts, &resident);
    CCKVS_CHECK(ok);  // the synthesizer guarantees every GET succeeds
    if (resident) {
      if (!retrying_gated_) {
        ++counters_.gate_retries;
      }
      if (sess.trace_id != 0 && sess.park_cycles == 0) {
        sess.park_cycles = shard_start;
      }
      parked_gated_.push_back(slot);
      return;
    }
    if (shard_start != 0) {
      tracer_->Emit(SpanKind::kShardRead, sess.trace_id, tracer_->NewSpanId(),
                    sess.op_span, shard_start, CycleNow(), key, 0);
    }
    CompleteOp(slot, read_scratch_, ts, Route::kMiss);
  } else {
    Timestamp ts;
    if (!home.TryPut(key, sess.op.value, &ts)) {
      if (!retrying_gated_) {
        ++counters_.gate_retries;
      }
      if (sess.trace_id != 0 && sess.park_cycles == 0) {
        sess.park_cycles = shard_start;
      }
      parked_gated_.push_back(slot);
      return;
    }
    if (shard_start != 0) {
      tracer_->Emit(SpanKind::kShardWrite, sess.trace_id, tracer_->NewSpanId(),
                    sess.op_span, shard_start, CycleNow(), key, 0);
    }
    CompleteOp(slot, sess.op.value, ts, Route::kMiss);
  }
}

void LiveNode::StartCacheWrite(std::uint32_t slot) {
  Session& sess = sessions_[slot];
  if (sess.credit_park_cycles != 0) {
    // The SC write sat parked on broadcast credits; the park is over.
    tracer_->Emit(SpanKind::kCreditWait, sess.trace_id, tracer_->NewSpanId(),
                  sess.op_span, sess.credit_park_cycles, CycleNow(),
                  sess.op.key, 0);
    sess.credit_park_cycles = 0;
  }
  const Key key = sess.op.key;
  if (cache_->Find(key) == nullptr) {
    // The key churned out of the hot set while this write sat parked on
    // credits; take the miss path instead.
    RouteMissOp(slot);
    return;
  }
  // [this, slot] fits std::function's small-buffer optimization; capturing
  // `key` too would push the closure past it and heap-allocate per write.
  engine_->Write(key, sessions_[slot].op.value, [this, slot] {
    // For Lin, pending_ts still holds the completed write's timestamp; for SC
    // the entry timestamp is the write's own (done fires synchronously).
    CacheEntry* e = cache_->Find(sessions_[slot].op.key);
    const Timestamp ts =
        (engine_->model() == ConsistencyModel::kLin && e != nullptr) ? e->pending_ts
        : e != nullptr                                               ? e->ts()
                                                                     : Timestamp{};
    CompleteOp(slot, sessions_[slot].op.value, ts, Route::kCache);
  });
}

void LiveNode::RetryParkedScWrites() {
  while (!parked_sc_writes_.empty() && ep_->AllPeersHaveCredit()) {
    const std::uint32_t slot = parked_sc_writes_.front();
    parked_sc_writes_.pop_front();
    StartCacheWrite(slot);
  }
}

// --- ranked (multi-process) mode ---

void LiveNode::SendRpc(std::uint32_t slot) {
  Session& sess = sessions_[slot];
  RpcRequest req;
  req.op_id = slot;  // session slots are stable until the response lands
  req.op = sess.op.type;
  req.key = sess.op.key;
  if (sess.op.type == OpType::kPut) {
    req.value = sess.op.value;
  }
  if (sess.trace_id != 0) {
    // Trace context piggybacks on the wire (wire_codec.h, append-only ABI);
    // the home rank's rpc_serve span stitches to ours through these ids.
    req.trace_id = sess.trace_id;
    req.parent_span = sess.op_span;
    sess.rpc_span = tracer_->NewSpanId();
    sess.rpc_cycles = CycleNow();
  }
  ep_->SendDirect(rack_->HomeOf(sess.op.key), WireBody{std::move(req)});
  rpc_waiting_[slot] = 1;
  ++rpc_outstanding_;
  ++counters_.rpcs_sent;
}

void LiveNode::ServeRpc(NodeId src, const RpcRequest& req) {
  // Same shard semantics as a local miss, except the residency gate bounces
  // instead of parking: the gate clears when the requester's own cache admits
  // the key (hot-set announce in flight), which only the requester can see.
  // Parking here would deadlock a halted rack whose final hot set keeps the
  // key resident forever.  The reply completes (or re-routes) the requester's
  // session; PUT responses echo the commit timestamp.
  CCKVS_DCHECK(rack_->HomeOf(req.key) == id_);
  const std::uint64_t serve_start =
      (tracer_ != nullptr && req.trace_id != 0) ? CycleNow() : 0;
  RpcResponse resp;
  resp.op_id = req.op_id;
  resp.trace_id = req.trace_id;  // echo: response joins the requester's trace
  if (req.op == OpType::kGet) {
    Value value;
    Timestamp ts;
    bool resident = false;
    const bool ok = partition_->Get(req.key, &value, &ts, &resident);
    CCKVS_CHECK(ok);
    if (resident) {
      resp.gated = true;
    } else {
      resp.value = std::move(value);
      resp.ts = ts;
    }
  } else {
    Timestamp ts;
    if (!partition_->TryPut(req.key, req.value, &ts)) {
      resp.gated = true;
    } else {
      if (l1_ != nullptr) {
        // A peer just wrote our shard; the home is the one place that
        // observes it, so invalidate any private copy here.
        l1_->Invalidate(req.key);
      }
      resp.ts = ts;
    }
  }
  if (serve_start != 0) {
    // Home-side engine span: parented on the requester's op span (over the
    // wire), so the merged Chrome trace shows both halves of the miss joined
    // by trace id.  arg1 flags a residency-gate bounce.
    tracer_->Emit(SpanKind::kRpcServe, req.trace_id, tracer_->NewSpanId(),
                  req.parent_span, serve_start, CycleNow(), req.key,
                  resp.gated ? 1 : 0);
  }
  ep_->SendDirect(src, WireBody{std::move(resp)});
}

void LiveNode::OnRpcResponse(const RpcResponse& resp) {
  const std::uint32_t slot = resp.op_id;
  CCKVS_CHECK_LT(slot, sessions_.size());
  CCKVS_CHECK(rpc_waiting_[slot]);
  rpc_waiting_[slot] = 0;
  --rpc_outstanding_;
  Session& sess = sessions_[slot];
  if (sess.rpc_span != 0) {
    // Requester-side RPC leg: send stamp -> response landing.
    tracer_->Emit(SpanKind::kRpc, sess.trace_id, sess.rpc_span, sess.op_span,
                  sess.rpc_cycles, CycleNow(), sess.op.key,
                  resp.gated ? 1 : 0);
    sess.rpc_span = 0;
    sess.rpc_cycles = 0;
  }
  if (resp.gated) {
    // Home shard is behind the residency gate.  Park locally and re-route at
    // the next pump — RouteOp probes the cache first, so once the announce
    // and fill land the op completes as a hit; until then it re-RPCs, paced
    // by the run loop's idle sleep.  Same retry loop the single-process miss
    // path uses, stretched across the wire.
    ++counters_.gate_retries;
    if (sess.trace_id != 0 && sess.park_cycles == 0) {
      sess.park_cycles = CycleNow();
    }
    parked_gated_.push_back(slot);
    return;
  }
  CompleteOp(slot,
             sess.op.type == OpType::kGet ? resp.value : sess.op.value,
             resp.ts, Route::kMiss);
}

bool LiveNode::LocallyQuiescent() const {
  // Outstanding client RPCs keep their sessions non-idle, so AllSessionsIdle
  // covers rpc_outstanding_ too; gated ops bounced back by a home owe a
  // re-route and count as local work.
  return halted_ && AllSessionsIdle() && parked_sc_writes_.empty() &&
         parked_gated_.empty() && ep_->NothingPending() && engine_->Quiescent();
}

bool LiveNode::RankedTermination() {
  if (halt_) {
    // Coordinator certified global quiescence (or told us so): one last flush
    // so our own halt/status bytes are on the wire, then exit.
    ep_->FlushBatches(FlushCause::kBoundary);
    return true;
  }
  if (!coordinator_) {
    return false;
  }
  const int n = rack_->params().num_nodes;
  if (round_open_ && round_status_.size() == static_cast<std::size_t>(n)) {
    // Round complete: evaluate.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts(
        static_cast<std::size_t>(n));
    bool all_done = true;
    std::uint64_t sum_sent = 0;
    std::uint64_t sum_processed = 0;
    for (const TermStatusMsg& s : round_status_) {
      counts[static_cast<std::size_t>(s.rank)] = {s.sent, s.processed};
      all_done &= s.done;
      sum_sent += s.sent;
      sum_processed += s.processed;
    }
    const bool stable = prev_valid_ && counts == prev_counts_;
    prev_counts_ = counts;
    prev_valid_ = true;
    round_open_ = false;
    round_status_.clear();
    if (stable && all_done && sum_sent == sum_processed) {
      // Two identical rounds, everyone done, no data message unaccounted for:
      // the rack is globally quiescent.  Release the peers and exit.
      for (NodeId peer = 0; peer < static_cast<NodeId>(n); ++peer) {
        if (peer != id_) {
          ep_->SendDirect(peer, WireBody{TermHaltMsg{term_round_}});
        }
      }
      ep_->FlushBatches(FlushCause::kBoundary);
      halt_ = true;
      return true;
    }
  }
  if (!round_open_ && LocallyQuiescent()) {
    const SimTime now = rack_->clock_ns();
    if (now - last_probe_ns_ > 200'000) {  // ≥200µs between rounds
      ++term_round_;
      round_open_ = true;
      last_probe_ns_ = now;
      // Seed our own status; peers answer the probe.
      TermStatusMsg self_status;
      self_status.round = term_round_;
      self_status.rank = id_;
      self_status.done = true;
      self_status.sent = ep_->data_sent();
      self_status.processed = ep_->data_processed();
      round_status_.push_back(self_status);
      for (NodeId peer = 1; peer < static_cast<NodeId>(n); ++peer) {
        ep_->SendDirect(peer, WireBody{TermProbeMsg{term_round_}});
      }
      ep_->FlushBatches(FlushCause::kBoundary);
    }
  }
  return false;
}

void LiveNode::CompleteOp(std::uint32_t slot, const Value& read_value, Timestamp ts,
                          Route route) {
  Session& sess = sessions_[slot];
  CCKVS_CHECK(!sess.idle);
  ++counters_.completed;
  if (route == Route::kMiss) {
    ++counters_.miss_completed;
  } else {
    // Hierarchy hit rate: L1 and symmetric hits both avoided the shard/RPC.
    ++counters_.hit_completed;
    if (route == Route::kL1) {
      ++counters_.l1_hits;
    }
  }
  // Per-op latency from raw cycle stamps (rdtsc where available): immune to
  // the history clock's tie-breaking bumps and cheap enough to keep on in
  // busy-poll runs — the Fig 13c-comparable numbers come from this histogram.
  const std::uint64_t done_cycles = CycleNow();
  latency_.Record(CyclesToNs(done_cycles - sess.invoke_cycles));
  if (sess.trace_id != 0) {
    if (sess.park_cycles != 0) {
      tracer_->Emit(SpanKind::kGatedWait, sess.trace_id, tracer_->NewSpanId(),
                    sess.op_span, sess.park_cycles, done_cycles, sess.op.key, 0);
    }
    // The root span: issue -> completion.  arg1 packs op type and route.
    tracer_->Emit(SpanKind::kOp, sess.trace_id, sess.op_span, 0,
                  sess.invoke_cycles, done_cycles, sess.op.key,
                  (sess.op.type == OpType::kPut ? 1u : 0u) |
                      (route == Route::kCache ? 2u : 0u) |
                      (route == Route::kL1 ? 4u : 0u));
    sess.trace_id = 0;
    sess.op_span = 0;
    sess.rpc_span = 0;
    sess.rpc_cycles = 0;
    sess.park_cycles = 0;
    sess.credit_park_cycles = 0;
  }

  if (record_history_) {
    HistoryOp h;
    h.session = sess.id;
    h.type = sess.op.type;
    h.key = sess.op.key;
    h.value = sess.op.type == OpType::kPut ? sess.op.value : read_value;
    h.ts = ts;
    h.invoke = sess.invoke;
    h.complete = NowTs();
    history_.push_back(std::move(h));
  }

  if (l1_ != nullptr && sess.op.type == OpType::kPut) {
    // Invalidate AGAIN at completion, not just at routing: a concurrent
    // session's in-flight GET may have read the shard before this write and
    // refilled the L1 after the routing-time invalidation.  The fabric is
    // FIFO per peer pair, so any such stale response was delivered — and its
    // fill applied — before this write's own response; dropping the key here
    // therefore kills every fill the write could have raced.
    l1_->Invalidate(sess.op.key);
  }
  if (l1_ != nullptr && route == Route::kMiss && sess.op.type == OpType::kGet) {
    // The miss path just produced an authoritative (value, ts) — the only
    // kind of read the L1 admits.
    MaybeAdmitToL1(sess.op.key, read_value, ts);
  }

  sess.idle = true;
  ++idle_sessions_;
  // Closed loop: the next op is issued by the run loop's FillIdleSessions(),
  // never from inside a completion callback (no recursion through the engine).
}

}  // namespace cckvs
