#include "src/runtime/coalescer.h"

#include <limits>

#include "src/common/check.h"

namespace cckvs {

SendCoalescer::SendCoalescer(const CoalescerConfig& config)
    : config_(config),
      effective_max_(config.enabled ? config.max_batch : 1),
      open_(static_cast<std::size_t>(config.num_peers)),
      open_since_ns_(static_cast<std::size_t>(config.num_peers), 0) {
  CCKVS_CHECK_GE(config.num_peers, 1);
  CCKVS_CHECK_GE(effective_max_, 1);
  if (config_.flush_deadline_ns > 0) {
    CCKVS_CHECK(config_.now_ns != nullptr);
  }
  for (WireBatch& b : open_) {
    b.src = config_.self;
  }
}

bool SendCoalescer::Append(NodeId to, WireBody body) {
  CCKVS_DCHECK(to != config_.self);
  WireBatch& batch = open_[to];
  if (batch.msgs.empty() && deadline_enabled()) {
    open_since_ns_[to] = config_.now_ns();
  }
  batch.msgs.push_back(std::move(body));
  return batch.msgs.size() >= static_cast<std::size_t>(effective_max_);
}

bool SendCoalescer::DeadlineExpired(NodeId to) const {
  if (!deadline_enabled() || open_[to].msgs.empty()) {
    return false;
  }
  return DeadlineExpired(to, config_.now_ns());
}

bool SendCoalescer::DeadlineExpired(NodeId to, std::uint64_t now) const {
  if (!deadline_enabled() || open_[to].msgs.empty()) {
    return false;
  }
  return now - open_since_ns_[to] >= config_.flush_deadline_ns;
}

std::uint64_t SendCoalescer::MinRemainingNs() const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  if (!deadline_enabled()) {
    return best;
  }
  const std::uint64_t now = config_.now_ns();
  for (std::size_t to = 0; to < open_.size(); ++to) {
    if (open_[to].msgs.empty()) {
      continue;
    }
    const std::uint64_t age = now - open_since_ns_[to];
    best = std::min(best, age >= config_.flush_deadline_ns
                              ? 0
                              : config_.flush_deadline_ns - age);
  }
  return best;
}

WireBatch SendCoalescer::Take(NodeId to, FlushCause cause) {
  WireBatch& open = open_[to];
  WireBatch taken;
  taken.src = config_.self;
  if (open.msgs.empty()) {
    return taken;
  }
  taken.msgs.swap(open.msgs);
  ++batches_sent_;
  messages_sent_ += taken.msgs.size();
  ++flushes_[static_cast<std::size_t>(cause)];
  batch_sizes_.Record(taken.msgs.size());
  return taken;
}

bool SendCoalescer::AllEmpty() const {
  for (const WireBatch& b : open_) {
    if (!b.msgs.empty()) {
      return false;
    }
  }
  return true;
}

std::size_t SendCoalescer::open_messages() const {
  std::size_t n = 0;
  for (const WireBatch& b : open_) {
    n += b.msgs.size();
  }
  return n;
}

}  // namespace cckvs
