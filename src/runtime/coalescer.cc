#include "src/runtime/coalescer.h"

#include "src/common/check.h"

namespace cckvs {

SendCoalescer::SendCoalescer(const CoalescerConfig& config)
    : config_(config),
      effective_max_(config.enabled ? config.max_batch : 1),
      open_(static_cast<std::size_t>(config.num_peers)) {
  CCKVS_CHECK_GE(config.num_peers, 1);
  CCKVS_CHECK_GE(effective_max_, 1);
  for (WireBatch& b : open_) {
    b.src = config_.self;
  }
}

bool SendCoalescer::Append(NodeId to, WireBody body) {
  CCKVS_DCHECK(to != config_.self);
  WireBatch& batch = open_[to];
  batch.msgs.push_back(std::move(body));
  return batch.msgs.size() >= static_cast<std::size_t>(effective_max_);
}

WireBatch SendCoalescer::Take(NodeId to, FlushCause cause) {
  WireBatch& open = open_[to];
  WireBatch taken;
  taken.src = config_.self;
  if (open.msgs.empty()) {
    return taken;
  }
  taken.msgs.swap(open.msgs);
  ++batches_sent_;
  messages_sent_ += taken.msgs.size();
  ++flushes_[static_cast<std::size_t>(cause)];
  batch_sizes_.Record(taken.msgs.size());
  return taken;
}

bool SendCoalescer::AllEmpty() const {
  for (const WireBatch& b : open_) {
    if (!b.msgs.empty()) {
      return false;
    }
  }
  return true;
}

std::size_t SendCoalescer::open_messages() const {
  std::size_t n = 0;
  for (const WireBatch& b : open_) {
    n += b.msgs.size();
  }
  return n;
}

}  // namespace cckvs
