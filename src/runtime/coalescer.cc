#include "src/runtime/coalescer.h"

#include <limits>

#include "src/common/check.h"
#include "src/common/cycles.h"
#include "src/runtime/tracing.h"

namespace cckvs {

SendCoalescer::SendCoalescer(const CoalescerConfig& config)
    : config_(config),
      effective_max_(config.enabled ? config.max_batch : 1),
      open_(static_cast<std::size_t>(config.num_peers)),
      open_since_ns_(static_cast<std::size_t>(config.num_peers), 0),
      open_cycles_(static_cast<std::size_t>(config.num_peers), 0) {
  CCKVS_CHECK_GE(config.num_peers, 1);
  CCKVS_CHECK_GE(effective_max_, 1);
  if (config_.flush_deadline_ns > 0) {
    CCKVS_CHECK(config_.now_ns != nullptr);
  }
  for (WireBatch& b : open_) {
    b.src = config_.self;
    if (config_.warm_slots > 0) {
      b.Warm(config_.warm_slots, config_.warm_value_bytes);
    }
  }
}

void SendCoalescer::StampOpen(NodeId to) {
  if (deadline_enabled()) {
    open_since_ns_[to] = config_.now_ns();
  }
  if (tracer_ != nullptr) {
    open_cycles_[to] = CycleNow();
  }
}

bool SendCoalescer::Append(NodeId to, WireBody body) {
  CCKVS_DCHECK(to != config_.self);
  WireBatch& batch = open_[to];
  if (batch.empty()) {
    StampOpen(to);
  }
  batch.Append(std::move(body));
  return batch.size() >= static_cast<std::size_t>(effective_max_);
}

bool SendCoalescer::DeadlineExpired(NodeId to) const {
  if (!deadline_enabled() || open_[to].empty()) {
    return false;
  }
  return DeadlineExpired(to, config_.now_ns());
}

bool SendCoalescer::DeadlineExpired(NodeId to, std::uint64_t now) const {
  if (!deadline_enabled() || open_[to].empty()) {
    return false;
  }
  return now - open_since_ns_[to] >= config_.flush_deadline_ns;
}

std::uint64_t SendCoalescer::MinRemainingNs() const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  if (!deadline_enabled()) {
    return best;
  }
  const std::uint64_t now = config_.now_ns();
  for (std::size_t to = 0; to < open_.size(); ++to) {
    if (open_[to].empty()) {
      continue;
    }
    const std::uint64_t age = now - open_since_ns_[to];
    best = std::min(best, age >= config_.flush_deadline_ns
                              ? 0
                              : config_.flush_deadline_ns - age);
  }
  return best;
}

WireBatch SendCoalescer::Take(NodeId to, FlushCause cause) {
  WireBatch& open = open_[to];
  if (open.empty()) {
    WireBatch taken;  // empty takes are free and unrecorded, as before
    taken.src = config_.self;
    return taken;
  }
  // Swap the full batch out against a recycled (or fresh) one, so the open
  // slot's warmed capacity leaves with the taken batch and a previously
  // recycled batch's capacity becomes the new open buffer.
  WireBatch taken = config_.pool != nullptr ? config_.pool->Acquire() : WireBatch{};
  taken.clear();
  std::swap(taken, open);
  open.src = config_.self;
  ++batches_sent_;
  messages_sent_ += taken.size();
  ++flushes_[static_cast<std::size_t>(cause)];
  batch_sizes_.Record(taken.size());
  if (tracer_ != nullptr && tracer_->SampleAux()) {
    // Batch residence: how long the first message sat in the open batch
    // before the flush shipped it (the Fig 13c latency the deadline knob
    // trades against).  arg0 = destination peer, arg1 = messages shipped.
    tracer_->Emit(SpanKind::kBatchOpen, 0, tracer_->NewSpanId(), 0,
                  open_cycles_[to], CycleNow(), to, taken.size());
  }
  return taken;
}

bool SendCoalescer::AllEmpty() const {
  for (const WireBatch& b : open_) {
    if (!b.empty()) {
      return false;
    }
  }
  return true;
}

std::size_t SendCoalescer::open_messages() const {
  std::size_t n = 0;
  for (const WireBatch& b : open_) {
    n += b.size();
  }
  return n;
}

}  // namespace cckvs
