#include "src/cckvs/report_util.h"

#include "src/net/network.h"

namespace cckvs {

void FillThroughput(std::uint64_t completed, std::uint64_t hit_completed,
                    std::uint64_t miss_completed, double duration_ns,
                    RackReport* report) {
  report->completed = completed;
  if (duration_ns <= 0) {
    return;
  }
  report->mrps = static_cast<double>(completed) / duration_ns * 1e3;
  report->hit_mrps = static_cast<double>(hit_completed) / duration_ns * 1e3;
  report->miss_mrps = static_cast<double>(miss_completed) / duration_ns * 1e3;
  report->hit_rate = completed == 0 ? 0.0
                                    : static_cast<double>(hit_completed) /
                                          static_cast<double>(completed);
}

void FillLatency(const Histogram& latency, RackReport* report) {
  report->avg_latency_us = latency.Mean() / 1e3;
  report->p50_latency_us = static_cast<double>(latency.P50()) / 1e3;
  report->p95_latency_us = static_cast<double>(latency.P95()) / 1e3;
  report->p99_latency_us = static_cast<double>(latency.P99()) / 1e3;
}

std::vector<std::pair<std::string, double>> ReportFields(const RackReport& r) {
  std::vector<std::pair<std::string, double>> f;
  f.emplace_back("duration_s", r.duration_s);
  f.emplace_back("completed", static_cast<double>(r.completed));
  f.emplace_back("mrps", r.mrps);
  f.emplace_back("hit_rate", r.hit_rate);
  f.emplace_back("hit_mrps", r.hit_mrps);
  f.emplace_back("miss_mrps", r.miss_mrps);
  f.emplace_back("avg_latency_us", r.avg_latency_us);
  f.emplace_back("p50_latency_us", r.p50_latency_us);
  f.emplace_back("p95_latency_us", r.p95_latency_us);
  f.emplace_back("p99_latency_us", r.p99_latency_us);
  f.emplace_back("tx_gbps_per_node", r.tx_gbps_per_node);
  f.emplace_back("header_gbps_per_node", r.header_gbps_per_node);
  f.emplace_back("payload_gbps_per_node", r.payload_gbps_per_node);
  for (int c = 0; c < static_cast<int>(TrafficClass::kNumClasses); ++c) {
    f.emplace_back(std::string("gbps_") + ToString(static_cast<TrafficClass>(c)),
                   r.class_gbps[c]);
  }
  f.emplace_back("worker_utilization", r.worker_utilization);
  f.emplace_back("kvs_utilization", r.kvs_utilization);
  f.emplace_back("updates_sent", static_cast<double>(r.updates_sent));
  f.emplace_back("invalidations_sent", static_cast<double>(r.invalidations_sent));
  f.emplace_back("acks_sent", static_cast<double>(r.acks_sent));
  f.emplace_back("credit_updates_sent", static_cast<double>(r.credit_updates_sent));
  f.emplace_back("epochs", static_cast<double>(r.epochs));
  f.emplace_back("hot_set_churn", static_cast<double>(r.hot_set_churn));
  f.emplace_back("l1_hits", static_cast<double>(r.l1_hits));
  f.emplace_back("l1_fills", static_cast<double>(r.l1_fills));
  f.emplace_back("l1_invalidations", static_cast<double>(r.l1_invalidations));
  return f;
}

}  // namespace cckvs
