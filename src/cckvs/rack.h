// The ccKVS rack: nodes, baselines and the experiment driver (S9/S10, §6-§7).
//
// A RackSimulation assembles N nodes on the simulated fabric.  Each node owns
//   * a shard of the KVS (store::Partition; one per KVS thread under EREW),
//   * an instance of the symmetric cache plus its consistency engine (kCcKvs),
//   * two CPU pools — worker/"cache" threads and KVS threads (§6.2),
//   * UD queue pairs for remote requests, consistency messages and credit
//     updates (§6.4), with credit-based flow control (§6.3),
//   * closed-loop client sessions (or open-loop Poisson arrivals for latency
//     experiments).
//
// Run(measure, warmup) drives the load, discards the warmup window and returns
// the measured RackReport.  With record_history set, every completed client
// operation lands in a History for the per-key SC/Lin checkers.
//
// Typical use (see examples/quickstart.cpp for the narrated version):
//
//   RackParams p;                       // defaults = the paper's 9-node rack
//   p.kind = SystemKind::kCcKvs;
//   p.consistency = ConsistencyModel::kSc;
//   RackSimulation rack(p);
//   RackReport r = rack.Run(/*measure_ns=*/2'000'000, /*warmup_ns=*/500'000);
//   // r.mrps, r.hit_rate, r.p99_latency_us, per-class traffic, ...
//
// Runs are deterministic in p.seed: identical params give bit-identical
// reports, which is what the figure benches in bench/ rely on.

#ifndef CCKVS_CCKVS_RACK_H_
#define CCKVS_CCKVS_RACK_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/cckvs/params.h"
#include "src/net/network.h"
#include "src/protocol/engine.h"
#include "src/sim/simulator.h"
#include "src/store/partition.h"
#include "src/store/partitioner.h"
#include "src/topk/hot_set_manager.h"
#include "src/verify/history.h"
#include "src/workload/workload.h"

namespace cckvs {

class RackSimulation {
 public:
  explicit RackSimulation(const RackParams& params);
  ~RackSimulation();
  RackSimulation(const RackSimulation&) = delete;
  RackSimulation& operator=(const RackSimulation&) = delete;

  // Runs warmup + measurement and returns the measured-window report.  May be
  // called repeatedly to take consecutive slices of one long run; client load
  // starts on the first call.  When `drain` is true (default), client load
  // stops after the measurement and all in-flight work completes, sealing the
  // recorded history — pass false between consecutive slices.
  RackReport Run(SimTime measure_ns, SimTime warmup_ns = 0, bool drain = true);

  const RackParams& params() const { return params_; }
  Simulator& simulator() { return sim_; }
  History& history() { return history_; }

  // Test access.
  const SymmetricCache* cache(NodeId node) const;
  const CoherenceEngine* engine(NodeId node) const;
  const Partition* partition(NodeId node, int kvs_thread = 0) const;
  // The hot-set subsystem of a node (nullptr unless online_topk); node 0 is
  // the coordinator.
  const HotSetManager* hot_set_manager(NodeId node) const;
  NodeId HomeOf(Key key) const;
  // kCentralCache routing: whether `key` belongs to the (static) hot set held
  // by the dedicated cache node.
  bool IsHotKey(Key key) const { return hot_set_.count(key) != 0; }

 private:
  friend class RackNode;

  RackParams params_;
  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Partitioner> partitioner_;
  std::vector<std::unique_ptr<class RackNode>> nodes_;
  std::unordered_set<Key> hot_set_;  // kCentralCache routing filter
  History history_;

  // Measured-window counters (snapshot-and-delta around warmup).
  struct Counters;
  std::unique_ptr<Counters> at_warmup_;
  bool started_ = false;
};

}  // namespace cckvs

#endif  // CCKVS_CCKVS_RACK_H_
