#include "src/cckvs/rack.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <utility>

#include "src/cache/l1_tail.h"
#include "src/cckvs/report_util.h"
#include "src/cckvs/rpc_messages.h"
#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/protocol/messages.h"
#include "src/rdma/flow_control.h"
#include "src/rdma/verbs.h"
#include "src/topk/flat_space_saving.h"

namespace cckvs {
namespace {

// QP numbers (§6.4: separate QPs for remote requests, consistency messages and
// credit updates).  Under EREW there is one RPC QP per KVS thread.
constexpr std::uint16_t kQpRpcBase = 0;
constexpr std::uint16_t kQpConsistency = 100;
constexpr std::uint16_t kQpCredit = 101;
constexpr std::uint16_t kQpControl = 102;

constexpr SimTime kClientParseNs = 20;  // request ingest before any probe

// Per-message framing bytes inside a coalesced packet (counted as header).
constexpr std::uint32_t kCoalesceFramingBytes = 2;

}  // namespace

// ===========================================================================
// RackNode
// ===========================================================================

class RackNode final : public MessageSink, public HotSetHost {
 public:
  RackNode(RackSimulation* rack, NodeId id);

  void Start();
  void PrefillHotSet(const std::vector<Key>& hot_keys);

  // Stops issuing new client operations; in-flight ones run to completion.
  void StartDraining() { draining_ = true; }

  // --- MessageSink (called by the consistency engine) ---
  void BroadcastUpdate(const UpdateMsg& msg) override;
  void BroadcastInvalidate(const InvalidateMsg& msg) override;
  void SendAck(NodeId to, const AckMsg& msg) override;

  // --- HotSetHost (called by the shared transition machine in topk/) ---
  void ApplyWriteback(const SymmetricCache::Eviction& ev) override;
  FillSnapshot GateAndSnapshot(Key key) override;
  void PublishFills(const std::vector<FillMsg>& fills) override;
  void PublishInstalled(const EpochInstalledMsg& msg) override;
  void LiftGate(Key key) override;

  // --- Epoch machinery (delegates membership to the HotSetManager) ---
  void AnnounceHotSet(const HotSetAnnounceMsg& msg);  // coordinator only
  void ApplyAnnounce(const HotSetAnnounceMsg& msg);
  void MaybeRetryDeferred();
  // Posts `body` to every peer on the control QP; returns the send CPU cost.
  SimTime BroadcastControl(std::shared_ptr<const Buffer> body, TrafficClass cls,
                           std::uint32_t payload_bytes_override = 0);

  // --- Introspection ---
  const SymmetricCache* cache() const { return cache_.get(); }
  const CoherenceEngine* engine() const { return engine_.get(); }
  const HotSetManager* hot_set_manager() const { return hot_mgr_.get(); }
  const Partition* partition(int kvs_thread) const {
    return partitions_[static_cast<std::size_t>(
                           kvs_thread % static_cast<int>(partitions_.size()))]
        .get();
  }

  struct Snapshot {
    std::uint64_t completed = 0;
    std::uint64_t hit_completed = 0;
    std::uint64_t miss_completed = 0;
    std::uint64_t updates_sent = 0;
    std::uint64_t invs_sent = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t credit_updates_sent = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_fills = 0;
    std::uint64_t l1_invalidations = 0;
    SimTime worker_busy = 0;
    SimTime kvs_busy = 0;
  };
  Snapshot TakeSnapshot() const;
  void ResetLatency() { latency_.Reset(); }
  const Histogram& latency() const { return latency_; }

 private:
  struct OpState {
    Op op;
    SimTime start = 0;
    SessionId session = 0;
    bool via_cache = false;
    bool in_use = false;
  };

  struct PendingBcast {
    TrafficClass cls;
    std::uint32_t payload_bytes;
    std::shared_ptr<const Buffer> body;
  };

  struct ReqCoalesceBuf {
    std::vector<RpcRequest> reqs;
    std::uint32_t payload_bytes = 0;
  };
  struct RespCoalesceBuf {
    std::vector<RpcResponse> resps;
    std::uint32_t payload_bytes = 0;
  };

  const RackParams& params() const { return rack_->params_; }
  Simulator& sim() { return rack_->sim_; }

  // Client load.
  std::uint32_t AllocSlot();
  void LaunchClosedLoopSession(std::uint32_t slot);
  void ScheduleOpenLoopArrival();
  void GenerateOp(std::uint32_t slot);
  void ProcessOp(std::uint32_t slot);
  // Node-private L1 tail (cache/l1_tail.h): serve a GET from the private copy
  // when it is provably current.  Under SC a hit needs no validation (local
  // writes invalidate synchronously, so per-session timestamps stay monotone);
  // under Lin every hit revalidates against the home shard's timestamp, which
  // is local because admission is restricted to self-homed keys.
  bool TryServeFromL1(std::uint32_t slot);
  void MaybeAdmitToL1(Key key, const Value& value, Timestamp ts);
  void ExecuteCachePut(std::uint32_t slot);
  void RouteMiss(std::uint32_t slot);
  void CompleteOp(std::uint32_t slot, const Value& read_value, Timestamp ts,
                  bool via_cache);

  // KVS execution.
  int KvsThreadFor(Key key) const;
  ServicePool& KvsPoolFor(Key key);
  Partition& PartitionFor(Key key);
  // Home-side execution: if the key is hot at this (home) node, the operation
  // serializes through the home cache and its consistency protocol; otherwise
  // it goes to the shard through the residency gate (the live rack's
  // MarkCacheResident/TryPut gate): ops hitting a gated record park until the
  // install barrier settles the key or an epoch re-admits it.
  void ExecuteKvsOpAsync(const RpcRequest& req,
                         std::function<void(const RpcResponse&)> respond);
  // Re-routes parked shard ops whose key became serviceable (gate lifted, or
  // the key re-entered this node's cache).
  void RetryGatedShardOps();

  // RPC path.
  void StartRpc(std::uint32_t slot, NodeId home);
  void EnqueueRpc(std::uint32_t slot, NodeId home);
  void FlushRequestBuffer(NodeId dst);
  void RespondRpc(NodeId dst, RpcResponse resp, OpType op_type);
  void FlushResponseBuffer(NodeId dst);
  void DrainPendingRpc(NodeId peer);
  std::uint32_t RequestPayloadBytes(const Op& op) const;
  std::uint32_t RequestPayloadBytes(const RpcRequest& req) const;
  std::uint32_t ResponsePayloadBytes(OpType op) const;

  // Consistency path.
  void SendConsistency(NodeId peer, TrafficClass cls, std::uint32_t payload_bytes,
                       std::shared_ptr<const Buffer> body,
                       std::vector<UdQp::SendWr>* batch);
  void DrainPendingBcast(NodeId peer);
  void MaybeSendCreditUpdate(NodeId peer);
  bool AllPeersHaveBcastCredit() const;
  void RetryParkedScWrites();

  // Receive handlers.
  void OnRpcRecv(const Datagram& dg);
  void OnConsistencyRecv(const Datagram& dg);
  void OnCreditRecv(const Datagram& dg);
  void OnControlRecv(const Datagram& dg);
  void HandleFills(const Datagram& dg);

  RackSimulation* rack_;
  NodeId id_;

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::unique_ptr<SymmetricCache> cache_;
  std::unique_ptr<CoherenceEngine> engine_;
  std::unique_ptr<HotSetManager> hot_mgr_;  // online_topk runs only

  // L1 tail tier (l1_capacity > 0, ccKVS only): node-private cache fed by a
  // per-node Space-Saving sketch, kept disjoint from the symmetric tier.
  std::unique_ptr<L1TailCache> l1_;
  std::unique_ptr<FlatSpaceSaving> l1_sketch_;
  std::uint64_t l1_offers_ = 0;
  std::uint64_t l1_hits_ = 0;  // ops actually served from the L1
  bool l1_validate_ = false;   // Lin: revalidate every hit against the shard

  std::unique_ptr<ServicePool> workers_;
  std::vector<std::unique_ptr<ServicePool>> kvs_pools_;

  std::unique_ptr<RdmaEndpoint> endpoint_;
  std::vector<UdQp*> rpc_qps_;
  UdQp* consistency_qp_ = nullptr;
  UdQp* credit_qp_ = nullptr;
  UdQp* control_qp_ = nullptr;

  CreditPool rpc_credits_;
  CreditPool bcast_credits_;
  CreditUpdateBatcher credit_batcher_;

  WorkloadGenerator gen_;
  Rng rng_;
  std::vector<OpState> ops_;
  std::vector<std::uint32_t> free_slots_;

  // KVS ops (local misses and incoming RPCs) parked on the shard residency
  // gate during an epoch transition; re-routed by RetryGatedShardOps.
  struct ParkedShardOp {
    RpcRequest req;
    std::function<void(const RpcResponse&)> respond;
  };
  std::deque<ParkedShardOp> parked_gated_;

  std::vector<std::deque<std::uint32_t>> pending_rpc_;
  std::vector<std::deque<PendingBcast>> pending_bcast_;
  // SC write-hits parked on broadcast credits (§6.3: a cache thread cannot
  // launch a write's updates without credits; the op waits, throttling writers
  // to the fabric's consistency-message drain rate).
  std::deque<std::uint32_t> parked_sc_writes_;
  std::vector<ReqCoalesceBuf> req_coalesce_;
  std::vector<RespCoalesceBuf> resp_coalesce_;

  std::uint64_t completed_ = 0;
  std::uint64_t hit_completed_ = 0;
  std::uint64_t miss_completed_ = 0;
  std::uint64_t updates_sent_ = 0;
  std::uint64_t invs_sent_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t credit_updates_sent_ = 0;
  bool draining_ = false;
  Histogram latency_;
};

RackNode::RackNode(RackSimulation* rack, NodeId id)
    : rack_(rack),
      id_(id),
      rpc_credits_(rack->params_.num_nodes, rack->params_.rpc_credits_per_peer),
      bcast_credits_(rack->params_.num_nodes, rack->params_.bcast_credits_per_peer),
      credit_batcher_(rack->params_.num_nodes, rack->params_.credit_update_batch),
      gen_(rack->params_.workload, /*writer_tag=*/id,
           /*seed=*/PerThreadSeed(rack->params_.seed, id)),
      rng_(Mix64(rack->params_.seed ^ (0xb0b0u + id))) {
  const RackParams& p = params();

  // KVS shards: one partition per KVS thread under EREW, one shared under CRCW.
  const bool erew = p.kind == SystemKind::kBaseErew || p.kvs_erew;
  const int num_partitions = erew ? p.kvs_threads : 1;
  for (int t = 0; t < num_partitions; ++t) {
    PartitionConfig pc;
    pc.buckets = 1 << 15;
    pc.node_id = id;
    const std::uint32_t value_bytes = p.workload.value_bytes;
    pc.synthesize = [value_bytes](Key key) { return SynthesizeValue(key, value_bytes); };
    partitions_.push_back(std::make_unique<Partition>(pc));
  }

  workers_ = std::make_unique<ServicePool>(&rack->sim_, p.cache_threads);
  if (erew) {
    for (int t = 0; t < p.kvs_threads; ++t) {
      kvs_pools_.push_back(std::make_unique<ServicePool>(&rack->sim_, 1));
    }
  } else {
    kvs_pools_.push_back(std::make_unique<ServicePool>(&rack->sim_, p.kvs_threads));
  }

  // Symmetric cache + consistency engine (ccKVS), or the single dedicated
  // cache of the centralized strawman (cache node 0 only, Figure 2b).  With
  // one copy there are no sharers to invalidate: a LinEngine over a one-node
  // "cluster" completes writes inline and is trivially linearizable.
  if (p.kind == SystemKind::kCcKvs) {
    cache_ = std::make_unique<SymmetricCache>(p.cache_capacity);
    if (p.consistency == ConsistencyModel::kLin) {
      engine_ = std::make_unique<LinEngine>(id, p.num_nodes, cache_.get(), this);
    } else {
      CCKVS_CHECK(p.consistency == ConsistencyModel::kSc);
      engine_ = std::make_unique<ScEngine>(id, p.num_nodes, cache_.get(), this);
    }
  } else if (p.kind == SystemKind::kCentralCache && id == 0) {
    cache_ = std::make_unique<SymmetricCache>(p.cache_capacity);
    engine_ = std::make_unique<LinEngine>(id, /*num_nodes=*/1, cache_.get(), this);
  }

  // Node-private L1 tail in front of the symmetric tier.  The simulator's
  // remote shards are reachable only over RPC (like a ranked live rack), so
  // under Lin — where every hit revalidates against the home shard — only
  // self-homed keys are admitted.
  if (p.kind == SystemKind::kCcKvs && p.l1_capacity > 0) {
    l1_ = std::make_unique<L1TailCache>(p.l1_capacity, p.l1_policy,
                                        p.workload.value_bytes);
    l1_sketch_ = std::make_unique<FlatSpaceSaving>(p.l1_capacity * 2);
    l1_validate_ = p.consistency == ConsistencyModel::kLin;
  }

  // Hot-set subsystem (§4): node 0 doubles as the epoch coordinator; every
  // node runs the member side (install, deferral, fills, install barrier).
  if (p.kind == SystemKind::kCcKvs && p.online_topk) {
    HotSetManagerConfig hc;
    hc.self = id;
    hc.num_nodes = p.num_nodes;
    hc.coordinator = id == 0;
    hc.epoch.hot_set_size = p.cache_capacity;
    hc.epoch.requests_per_epoch = p.topk_epoch_requests;
    hc.epoch.sample_probability = p.topk_sample_probability;
    hc.epoch.seed = p.seed ^ 0x70cull;
    hc.epoch.adaptive = p.topk_adaptive_epochs;
    hc.home_of = [rack](Key key) { return rack->HomeOf(key); };
    hot_mgr_ =
        std::make_unique<HotSetManager>(hc, cache_.get(), engine_.get(), this);
  }

  // RDMA endpoint and QPs.
  endpoint_ = std::make_unique<RdmaEndpoint>(rack->net_.get(), id, p.nic);
  const int peers = p.num_nodes - 1;
  const int rpc_qp_count = erew ? p.kvs_threads : 1;
  for (int q = 0; q < rpc_qp_count; ++q) {
    QpConfig qc;
    qc.qpn = static_cast<std::uint16_t>(kQpRpcBase + q);
    qc.recv_queue_depth = std::max(64, 2 * peers * p.rpc_credits_per_peer);
    UdQp* qp = endpoint_->CreateQp(qc);
    qp->PostRecvs(qc.recv_queue_depth);
    qp->SetRecvHandler([this, qp](const Datagram& dg) {
      qp->PostRecvs(1);  // repost the consumed receive
      OnRpcRecv(dg);
    });
    rpc_qps_.push_back(qp);
  }
  {
    QpConfig qc;
    qc.qpn = kQpConsistency;
    qc.recv_queue_depth = std::max(64, 3 * peers * p.bcast_credits_per_peer);
    consistency_qp_ = endpoint_->CreateQp(qc);
    consistency_qp_->PostRecvs(qc.recv_queue_depth);
    consistency_qp_->SetRecvHandler([this](const Datagram& dg) { OnConsistencyRecv(dg); });
  }
  {
    QpConfig qc;
    qc.qpn = kQpCredit;
    qc.recv_queue_depth =
        std::max(64, peers * (p.bcast_credits_per_peer / p.credit_update_batch + 2));
    credit_qp_ = endpoint_->CreateQp(qc);
    credit_qp_->PostRecvs(qc.recv_queue_depth);
    credit_qp_->SetRecvHandler([this](const Datagram& dg) { OnCreditRecv(dg); });
  }
  {
    QpConfig qc;
    qc.qpn = kQpControl;
    qc.recv_queue_depth = 4096;
    control_qp_ = endpoint_->CreateQp(qc);
    control_qp_->PostRecvs(qc.recv_queue_depth);
    control_qp_->SetRecvHandler([this](const Datagram& dg) { OnControlRecv(dg); });
  }

  pending_rpc_.resize(static_cast<std::size_t>(p.num_nodes));
  pending_bcast_.resize(static_cast<std::size_t>(p.num_nodes));
  req_coalesce_.resize(static_cast<std::size_t>(p.num_nodes));
  resp_coalesce_.resize(static_cast<std::size_t>(p.num_nodes));
}

void RackNode::PrefillHotSet(const std::vector<Key>& hot_keys) {
  if (cache_ == nullptr) {
    return;
  }
  cache_->InstallHotSet(hot_keys);
  for (const Key key : hot_keys) {
    cache_->Fill(key, SynthesizeValue(key, params().workload.value_bytes),
                 Timestamp{0, 0});
  }
  if (hot_mgr_ != nullptr) {
    // Epochs will manage membership from here on: raise the shard residency
    // gate of every prefilled key homed here, exactly as an epoch admission
    // would have (the same bracket the live rack sets in its constructor).
    for (const Key key : hot_keys) {
      if (rack_->HomeOf(key) == id_) {
        PartitionFor(key).MarkCacheResident(key);
      }
    }
  }
  if (hot_mgr_ != nullptr && hot_mgr_->coordinator()) {
    // Keys the first epoch drops from the oracle set must settle like any
    // published eviction before they are eligible for re-admission.
    hot_mgr_->SeedPublished(hot_keys);
  }
}

void RackNode::Start() {
  const RackParams& p = params();
  if (p.open_loop_mrps_per_node > 0.0) {
    ScheduleOpenLoopArrival();
    return;
  }
  for (int i = 0; i < p.window_per_node; ++i) {
    LaunchClosedLoopSession(AllocSlot());
  }
}

std::uint32_t RackNode::AllocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ops_[slot].in_use = true;
    return slot;
  }
  ops_.push_back(OpState{});
  ops_.back().in_use = true;
  const auto slot = static_cast<std::uint32_t>(ops_.size() - 1);
  ops_[slot].session =
      static_cast<SessionId>(id_) * 100000u + slot;  // sessions pinned to a node
  return slot;
}

void RackNode::LaunchClosedLoopSession(std::uint32_t slot) { GenerateOp(slot); }

void RackNode::ScheduleOpenLoopArrival() {
  // Poisson arrivals at open_loop_mrps_per_node.
  const double rate_per_ns = params().open_loop_mrps_per_node * 1e6 / 1e9;
  const double u = std::max(rng_.NextDouble(), 1e-12);
  const auto gap = static_cast<SimTime>(-std::log(u) / rate_per_ns);
  sim().After(std::max<SimTime>(gap, 1), [this] {
    if (draining_) {
      return;
    }
    GenerateOp(AllocSlot());
    ScheduleOpenLoopArrival();
  });
}

void RackNode::GenerateOp(std::uint32_t slot) {
  OpState& st = ops_[slot];
  st.op = gen_.Next();
  st.start = sim().now();
  st.via_cache = false;
  if (hot_mgr_ != nullptr && hot_mgr_->coordinator() && hot_mgr_->Sample(st.op.key)) {
    AnnounceHotSet(hot_mgr_->announcement());
  }
  workers_->Submit(kClientParseNs + params().cpu.cache_probe_ns +
                       endpoint_->PollSweepCost(),
                   [this, slot] { ProcessOp(slot); });
}

void RackNode::ProcessOp(std::uint32_t slot) {
  OpState& st = ops_[slot];
  const RackParams& p = params();
  if (p.kind == SystemKind::kCentralCache && rack_->IsHotKey(st.op.key)) {
    // Figure 2b: all hot traffic funnels to the dedicated cache node.
    if (id_ == 0) {
      st.via_cache = true;
      RpcRequest req;
      req.op_id = slot;
      req.op = st.op.type;
      req.key = st.op.key;
      req.value = st.op.value;
      workers_->Submit(st.op.type == OpType::kGet ? p.cpu.cache_hit_ns
                                                  : p.cpu.cache_write_ns,
                       [this, slot, req] {
                         ExecuteKvsOpAsync(req, [this, slot](const RpcResponse& r) {
                           CompleteOp(slot, r.value, r.ts, true);
                         });
                       });
    } else {
      StartRpc(slot, /*home=*/0);
    }
    return;
  }
  if (l1_ != nullptr) {
    if (st.op.type == OpType::kPut) {
      // Write-through-invalidate: the private copy dies before the write is
      // even routed, so a later read by this node cannot see the old value.
      l1_->Invalidate(st.op.key);
    } else if (TryServeFromL1(slot)) {
      return;
    }
  }
  if (p.kind == SystemKind::kCcKvs && cache_->Probe(st.op.key)) {
    st.via_cache = true;
    if (st.op.type == OpType::kGet) {
      Value value;
      Timestamp ts;
      const auto result = engine_->Read(
          st.op.key, &value, &ts,
          [this, slot](const Value& v, Timestamp t) { CompleteOp(slot, v, t, true); });
      if (result == CoherenceEngine::ReadResult::kHit) {
        workers_->Submit(p.cpu.cache_hit_ns, [this, slot, value, ts] {
          CompleteOp(slot, value, ts, true);
        });
      }
      // kBlocked: the parked-reader callback completes the op.
      return;
    }
    workers_->Submit(p.cpu.cache_write_ns, [this, slot] { ExecuteCachePut(slot); });
    return;
  }
  RouteMiss(slot);
}

bool RackNode::TryServeFromL1(std::uint32_t slot) {
  OpState& st = ops_[slot];
  const Key key = st.op.key;
  Value value;
  Timestamp ts;
  if (!l1_->Get(key, &value, &ts)) {
    return false;
  }
  if (l1_validate_) {
    // Lin: the hit linearizes at the instant the home shard's timestamp is
    // observed to match ((clock, writer) uniquely identifies a write, so a
    // matching timestamp implies a matching value).  Admission restricted the
    // L1 to self-homed keys, so the shard is local.
    Timestamp home_ts;
    bool resident = false;
    if (!PartitionFor(key).PeekTimestamp(key, &home_ts, &resident) || resident ||
        !(home_ts == ts)) {
      l1_->Invalidate(key);
      return false;
    }
  }
  st.via_cache = true;
  workers_->Submit(params().cpu.l1_hit_ns, [this, slot, value, ts] {
    ++l1_hits_;
    CompleteOp(slot, value, ts, true);
  });
  return true;
}

void RackNode::MaybeAdmitToL1(Key key, const Value& value, Timestamp ts) {
  std::uint64_t guaranteed = 0;
  l1_sketch_->Offer(key, &guaranteed);
  if (++l1_offers_ % (l1_sketch_->capacity() * 8) == 0) {
    l1_sketch_->DecayHalve();
  }
  if (guaranteed < 2) {
    // Proven sightings (count - error), not the estimate: a saturated sketch
    // inflates every newcomer to min+1, and admitting on that churns the L1
    // with one-hit tail keys (see live_node.cc's twin of this gate).
    return;
  }
  if (l1_validate_ && rack_->HomeOf(key) != id_) {
    return;  // Lin hits revalidate against the shard, which must be local
  }
  if (cache_->Find(key) != nullptr) {
    return;  // tier exclusivity: the symmetric cache already serves this key
  }
  l1_->Fill(key, value, ts);
}

void RackNode::ExecuteCachePut(std::uint32_t slot) {
  OpState& st = ops_[slot];
  const Key key = st.op.key;
  CacheEntry* entry = cache_->Find(key);
  if (entry == nullptr) {
    // The key churned out of the hot set between probe and execution (online
    // top-k runs only); fall back to the miss path.
    st.via_cache = false;
    RouteMiss(slot);
    return;
  }
  if (engine_->model() == ConsistencyModel::kSc && !AllPeersHaveBcastCredit()) {
    // SC writes complete as soon as the update broadcast is posted, so posting
    // is the throttle point: without credits for every peer the op waits.
    // (Lin writes are inherently throttled by their ack round.)
    parked_sc_writes_.push_back(slot);
    return;
  }
  engine_->Write(key, st.op.value, [this, slot, key] {
    // For Lin, pending_ts still holds the completed write's timestamp; for SC
    // the entry timestamp is the write's own (done fires synchronously).
    CacheEntry* e = cache_->Find(key);
    const Timestamp ts =
        (engine_->model() == ConsistencyModel::kLin && e != nullptr) ? e->pending_ts
        : e != nullptr                                               ? e->ts()
                                                                     : Timestamp{};
    CompleteOp(slot, ops_[slot].op.value, ts, true);
  });
}

void RackNode::RouteMiss(std::uint32_t slot) {
  OpState& st = ops_[slot];
  const NodeId home = rack_->HomeOf(st.op.key);
  if (home == id_) {
    RpcRequest req;
    req.op_id = slot;
    req.op = st.op.type;
    req.key = st.op.key;
    req.value = st.op.value;
    KvsPoolFor(st.op.key).Submit(params().cpu.kvs_op_ns, [this, slot, req] {
      ExecuteKvsOpAsync(req, [this, slot](const RpcResponse& resp) {
        CompleteOp(slot, resp.value, resp.ts, false);
      });
    });
    return;
  }
  StartRpc(slot, home);
}

int RackNode::KvsThreadFor(Key key) const {
  return static_cast<int>(Mix64(key ^ 0x7eadu) %
                          static_cast<std::uint64_t>(params().kvs_threads));
}

ServicePool& RackNode::KvsPoolFor(Key key) {
  if (kvs_pools_.size() == 1) {
    return *kvs_pools_[0];
  }
  return *kvs_pools_[static_cast<std::size_t>(KvsThreadFor(key))];
}

Partition& RackNode::PartitionFor(Key key) {
  if (partitions_.size() == 1) {
    return *partitions_[0];
  }
  return *partitions_[static_cast<std::size_t>(KvsThreadFor(key))];
}

void RackNode::ExecuteKvsOpAsync(const RpcRequest& req,
                                 std::function<void(const RpcResponse&)> respond) {
  if (cache_ != nullptr && cache_->Find(req.key) != nullptr) {
    if (req.op == OpType::kGet) {
      Value value;
      Timestamp ts;
      const auto result = engine_->Read(
          req.key, &value, &ts,
          [op_id = req.op_id, respond](const Value& v, Timestamp t) {
            respond(RpcResponse{op_id, v, t});
          });
      if (result == CoherenceEngine::ReadResult::kHit) {
        respond(RpcResponse{req.op_id, value, ts});
      }
      return;
    }
    engine_->Write(req.key, req.value, [this, key = req.key, op_id = req.op_id,
                                        respond] {
      CacheEntry* e = cache_->Find(key);
      const Timestamp ts =
          (engine_->model() == ConsistencyModel::kLin && e != nullptr)
              ? e->pending_ts
          : e != nullptr ? e->ts()
                         : Timestamp{};
      respond(RpcResponse{op_id, Value{}, ts});
    });
    return;
  }
  // Shard path, through the residency gate (same gate the live rack's direct
  // miss path uses): a record still owned by a hot-set era — evicted here but
  // not yet settled rack-wide — parks the op until the install barrier lifts
  // the gate or an epoch re-admits the key into this cache.
  Partition& part = PartitionFor(req.key);
  RpcResponse resp;
  resp.op_id = req.op_id;
  if (req.op == OpType::kGet) {
    bool resident = false;
    const bool ok = part.Get(req.key, &resp.value, &resp.ts, &resident);
    CCKVS_CHECK(ok);  // the synthesizer guarantees every GET succeeds
    if (resident) {
      parked_gated_.push_back(ParkedShardOp{req, std::move(respond)});
      return;
    }
  } else {
    if (!part.TryPut(req.key, req.value, &resp.ts)) {
      parked_gated_.push_back(ParkedShardOp{req, std::move(respond)});
      return;
    }
    if (l1_ != nullptr) {
      // Home-side shard write: a peer (or this node) just overwrote a key this
      // node may hold privately.
      l1_->Invalidate(req.key);
    }
  }
  respond(resp);
}

void RackNode::RetryGatedShardOps() {
  if (parked_gated_.empty()) {
    return;
  }
  std::deque<ParkedShardOp> parked;
  parked.swap(parked_gated_);
  const RackParams& p = params();
  for (ParkedShardOp& op : parked) {
    const bool cached = cache_ != nullptr && cache_->Find(op.req.key) != nullptr;
    if (!cached && hot_mgr_ != nullptr && hot_mgr_->ShardGated(op.req.key)) {
      parked_gated_.push_back(std::move(op));  // still waiting on the barrier
      continue;
    }
    KvsPoolFor(op.req.key)
        .Submit(p.cpu.kvs_op_ns, [this, req = op.req,
                                  respond = std::move(op.respond)]() mutable {
          ExecuteKvsOpAsync(req, std::move(respond));
        });
  }
}

std::uint32_t RackNode::RequestPayloadBytes(const Op& op) const {
  const WireFormat& wf = params().wire;
  return op.type == OpType::kGet
             ? wf.request_payload
             : wf.request_payload + static_cast<std::uint32_t>(op.value.size());
}

std::uint32_t RackNode::RequestPayloadBytes(const RpcRequest& req) const {
  const WireFormat& wf = params().wire;
  return req.op == OpType::kGet
             ? wf.request_payload
             : wf.request_payload + static_cast<std::uint32_t>(req.value.size());
}

std::uint32_t RackNode::ResponsePayloadBytes(OpType op) const {
  const WireFormat& wf = params().wire;
  return op == OpType::kGet ? wf.response_base_payload + params().workload.value_bytes
                            : wf.response_base_payload;
}

void RackNode::StartRpc(std::uint32_t slot, NodeId home) {
  if (!rpc_credits_.TryAcquire(home)) {
    pending_rpc_[home].push_back(slot);
    return;
  }
  EnqueueRpc(slot, home);
}

void RackNode::EnqueueRpc(std::uint32_t slot, NodeId home) {
  const OpState& st = ops_[slot];
  RpcRequest req;
  req.op_id = slot;
  req.op = st.op.type;
  req.key = st.op.key;
  req.value = st.op.value;

  const RackParams& p = params();
  if (p.coalescing) {
    ReqCoalesceBuf& buf = req_coalesce_[home];
    if (buf.reqs.empty()) {
      sim().After(p.coalesce_window_ns, [this, home] { FlushRequestBuffer(home); });
    }
    buf.payload_bytes += RequestPayloadBytes(req);
    buf.reqs.push_back(std::move(req));
    if (static_cast<int>(buf.reqs.size()) >= p.coalesce_max_batch) {
      FlushRequestBuffer(home);
    }
    return;
  }

  auto body = std::make_shared<Buffer>();
  const std::uint32_t nominal = RequestPayloadBytes(req);
  SerializeBatch(std::vector<RpcRequest>{req}, body.get());
  UdQp::SendWr wr;
  wr.dst = home;
  wr.dst_qpn = static_cast<std::uint16_t>(
      kQpRpcBase + (rpc_qps_.size() > 1 ? KvsThreadFor(req.key) : 0));
  wr.cls = TrafficClass::kRemoteRequest;
  wr.header_bytes = p.wire.header_bytes;
  wr.body = std::move(body);
  wr.payload_bytes_override = nominal;
  const SimTime cpu = rpc_qps_[0]->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
}

void RackNode::FlushRequestBuffer(NodeId dst) {
  ReqCoalesceBuf& buf = req_coalesce_[dst];
  if (buf.reqs.empty()) {
    return;
  }
  auto body = std::make_shared<Buffer>();
  SerializeBatch(buf.reqs, body.get());
  UdQp::SendWr wr;
  wr.dst = dst;
  wr.dst_qpn = kQpRpcBase;
  wr.cls = TrafficClass::kRemoteRequest;
  wr.header_bytes = params().wire.header_bytes +
                    kCoalesceFramingBytes * static_cast<std::uint32_t>(buf.reqs.size());
  wr.body = std::move(body);
  wr.payload_bytes_override = buf.payload_bytes;
  const SimTime cpu = rpc_qps_[0]->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
  buf.reqs.clear();
  buf.payload_bytes = 0;
}

void RackNode::RespondRpc(NodeId dst, RpcResponse resp, OpType op_type) {
  const RackParams& p = params();
  if (p.coalescing) {
    RespCoalesceBuf& buf = resp_coalesce_[dst];
    if (buf.resps.empty()) {
      sim().After(p.coalesce_window_ns, [this, dst] { FlushResponseBuffer(dst); });
    }
    buf.payload_bytes += ResponsePayloadBytes(op_type);
    buf.resps.push_back(std::move(resp));
    if (static_cast<int>(buf.resps.size()) >= p.coalesce_max_batch) {
      FlushResponseBuffer(dst);
    }
    return;
  }
  auto body = std::make_shared<Buffer>();
  const std::uint32_t nominal = ResponsePayloadBytes(op_type);
  SerializeBatch(std::vector<RpcResponse>{resp}, body.get());
  UdQp::SendWr wr;
  wr.dst = dst;
  wr.dst_qpn = kQpRpcBase;
  wr.cls = TrafficClass::kRemoteResponse;
  wr.header_bytes = p.wire.header_bytes;
  wr.body = std::move(body);
  wr.payload_bytes_override = nominal;
  const SimTime cpu = rpc_qps_[0]->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
}

void RackNode::FlushResponseBuffer(NodeId dst) {
  RespCoalesceBuf& buf = resp_coalesce_[dst];
  if (buf.resps.empty()) {
    return;
  }
  auto body = std::make_shared<Buffer>();
  SerializeBatch(buf.resps, body.get());
  UdQp::SendWr wr;
  wr.dst = dst;
  wr.dst_qpn = kQpRpcBase;
  wr.cls = TrafficClass::kRemoteResponse;
  wr.header_bytes = params().wire.header_bytes +
                    kCoalesceFramingBytes * static_cast<std::uint32_t>(buf.resps.size());
  wr.body = std::move(body);
  wr.payload_bytes_override = buf.payload_bytes;
  const SimTime cpu = rpc_qps_[0]->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
  buf.resps.clear();
  buf.payload_bytes = 0;
}

void RackNode::DrainPendingRpc(NodeId peer) {
  while (!pending_rpc_[peer].empty() && rpc_credits_.TryAcquire(peer)) {
    const std::uint32_t slot = pending_rpc_[peer].front();
    pending_rpc_[peer].pop_front();
    EnqueueRpc(slot, peer);
  }
}

void RackNode::CompleteOp(std::uint32_t slot, const Value& read_value, Timestamp ts,
                          bool via_cache) {
  OpState& st = ops_[slot];
  CCKVS_CHECK(st.in_use);
  ++completed_;
  if (via_cache) {
    ++hit_completed_;
  } else {
    ++miss_completed_;
  }
  latency_.Record(sim().now() - st.start);

  if (l1_ != nullptr && st.op.type == OpType::kPut) {
    // Invalidate again at completion (see live_node.cc): a stale in-flight
    // GET response may have refilled the key after the routing-time
    // invalidation; per-pair FIFO delivery guarantees that fill landed
    // before this write's own response, so this drop is ordered last.
    l1_->Invalidate(st.op.key);
  }
  if (l1_ != nullptr && !via_cache && st.op.type == OpType::kGet) {
    // Authoritative miss read: offer it to the sketch and maybe admit.
    MaybeAdmitToL1(st.op.key, read_value, ts);
  }

  if (params().record_history) {
    HistoryOp h;
    h.session = st.session;
    h.type = st.op.type;
    h.key = st.op.key;
    h.value = st.op.type == OpType::kPut ? st.op.value : read_value;
    h.ts = ts;
    h.invoke = st.start;
    h.complete = sim().now();
    rack_->history_.Record(std::move(h));
  }

  if (draining_ || params().open_loop_mrps_per_node > 0.0) {
    st.in_use = false;
    free_slots_.push_back(slot);
    return;
  }
  GenerateOp(slot);  // closed loop: next request for this session
}

// ---------------------------------------------------------------------------
// Consistency traffic
// ---------------------------------------------------------------------------

void RackNode::SendConsistency(NodeId peer, TrafficClass cls,
                               std::uint32_t payload_bytes,
                               std::shared_ptr<const Buffer> body,
                               std::vector<UdQp::SendWr>* batch) {
  if (!bcast_credits_.TryAcquire(peer)) {
    pending_bcast_[peer].push_back(PendingBcast{cls, payload_bytes, std::move(body)});
    return;
  }
  UdQp::SendWr wr;
  wr.dst = peer;
  wr.dst_qpn = kQpConsistency;
  wr.cls = cls;
  wr.header_bytes = params().wire.header_bytes;
  wr.body = std::move(body);
  wr.payload_bytes_override = payload_bytes;
  batch->push_back(std::move(wr));
}

void RackNode::BroadcastUpdate(const UpdateMsg& msg) {
  const RackParams& p = params();
  if (p.kind == SystemKind::kCentralCache) {
    return;  // single cache copy: no sharers to update
  }
  auto body = std::make_shared<Buffer>();
  Serialize(msg, body.get());
  const std::uint32_t payload =
      p.wire.update_base_payload + static_cast<std::uint32_t>(msg.value.size());

  if (p.multicast_updates) {
    // §6.3 ablation: single message to the switch, replicated at egress.  Only
    // taken when every peer has credit; otherwise fall through to unicast.
    bool all_credits = true;
    for (int j = 0; j < p.num_nodes; ++j) {
      if (j != id_ && bcast_credits_.available(static_cast<NodeId>(j)) == 0) {
        all_credits = false;
        break;
      }
    }
    if (all_credits) {
      std::vector<NodeId> dsts;
      for (int j = 0; j < p.num_nodes; ++j) {
        if (j != id_) {
          bcast_credits_.TryAcquire(static_cast<NodeId>(j));
          dsts.push_back(static_cast<NodeId>(j));
        }
      }
      UdQp::SendWr wr;
      wr.dst_qpn = kQpConsistency;
      wr.cls = TrafficClass::kUpdate;
      wr.header_bytes = p.wire.header_bytes;
      wr.body = body;
      wr.payload_bytes_override = payload;
      const SimTime cpu = consistency_qp_->PostMulticast(wr, dsts);
      workers_->Submit(cpu, nullptr);
      updates_sent_ += dsts.size();
      return;
    }
  }

  std::vector<UdQp::SendWr> batch;
  for (int j = 0; j < p.num_nodes; ++j) {
    if (j != id_) {
      SendConsistency(static_cast<NodeId>(j), TrafficClass::kUpdate, payload, body,
                      &batch);
    }
  }
  updates_sent_ += p.num_nodes - 1;
  if (!batch.empty()) {
    const SimTime cpu = consistency_qp_->PostSendBatch(batch);
    workers_->Submit(cpu, nullptr);
  }
}

void RackNode::BroadcastInvalidate(const InvalidateMsg& msg) {
  const RackParams& p = params();
  if (p.kind == SystemKind::kCentralCache) {
    return;  // single cache copy: nothing to invalidate
  }
  auto body = std::make_shared<Buffer>();
  Serialize(msg, body.get());
  std::vector<UdQp::SendWr> batch;
  for (int j = 0; j < p.num_nodes; ++j) {
    if (j != id_) {
      SendConsistency(static_cast<NodeId>(j), TrafficClass::kInvalidation,
                      p.wire.invalidation_payload, body, &batch);
    }
  }
  invs_sent_ += p.num_nodes - 1;
  if (!batch.empty()) {
    const SimTime cpu = consistency_qp_->PostSendBatch(batch);
    workers_->Submit(cpu, nullptr);
  }
}

void RackNode::SendAck(NodeId to, const AckMsg& msg) {
  // Acks are responses to invalidations: the writer's outstanding invalidations
  // bound them, so they ride on implicit credits (§6.3).
  auto body = std::make_shared<Buffer>();
  Serialize(msg, body.get());
  UdQp::SendWr wr;
  wr.dst = to;
  wr.dst_qpn = kQpConsistency;
  wr.cls = TrafficClass::kAck;
  wr.header_bytes = params().wire.header_bytes;
  wr.body = std::move(body);
  wr.payload_bytes_override = params().wire.ack_payload;
  const SimTime cpu = consistency_qp_->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
  ++acks_sent_;
}

void RackNode::DrainPendingBcast(NodeId peer) {
  std::vector<UdQp::SendWr> batch;
  while (!pending_bcast_[peer].empty() && bcast_credits_.TryAcquire(peer)) {
    PendingBcast pb = std::move(pending_bcast_[peer].front());
    pending_bcast_[peer].pop_front();
    UdQp::SendWr wr;
    wr.dst = peer;
    wr.dst_qpn = kQpConsistency;
    wr.cls = pb.cls;
    wr.header_bytes = params().wire.header_bytes;
    wr.body = std::move(pb.body);
    wr.payload_bytes_override = pb.payload_bytes;
    batch.push_back(std::move(wr));
  }
  if (!batch.empty()) {
    const SimTime cpu = consistency_qp_->PostSendBatch(batch);
    workers_->Submit(cpu, nullptr);
  }
}

void RackNode::MaybeSendCreditUpdate(NodeId peer) {
  if (!credit_batcher_.OnReceived(peer)) {
    return;
  }
  UdQp::SendWr wr;
  wr.dst = peer;
  wr.dst_qpn = kQpCredit;
  wr.cls = TrafficClass::kCreditUpdate;
  wr.header_bytes = params().wire.CreditUpdateWire();  // header-only message
  const SimTime cpu = credit_qp_->PostSendBatch({wr});
  workers_->Submit(cpu, nullptr);
  ++credit_updates_sent_;
}

// ---------------------------------------------------------------------------
// Receive handlers
// ---------------------------------------------------------------------------

void RackNode::OnRpcRecv(const Datagram& dg) {
  const RackParams& p = params();
  if (dg.cls == TrafficClass::kRemoteRequest) {
    const auto reqs = DeserializeRequests(*dg.body);
    for (const RpcRequest& req : reqs) {
      KvsPoolFor(req.key).Submit(
          p.cpu.rpc_handle_ns + p.cpu.kvs_op_ns + p.nic.recv_post_ns,
          [this, req, src = dg.src] {
            ExecuteKvsOpAsync(req, [this, src, op = req.op](const RpcResponse& resp) {
              RespondRpc(src, resp, op);
            });
          });
    }
    return;
  }
  CCKVS_CHECK(dg.cls == TrafficClass::kRemoteResponse);
  const auto resps = DeserializeResponses(*dg.body);
  workers_->Submit(
      p.cpu.resp_handle_ns * resps.size() + p.nic.recv_post_ns,
      [this, resps, src = dg.src] {
        for (const RpcResponse& resp : resps) {
          rpc_credits_.Release(src);
          const std::uint32_t slot = resp.op_id;
          CompleteOp(slot, resp.value, resp.ts, false);
        }
        DrainPendingRpc(src);
      });
}

void RackNode::OnConsistencyRecv(const Datagram& dg) {
  const RackParams& p = params();
  consistency_qp_->PostRecvs(1);
  switch (dg.cls) {
    case TrafficClass::kUpdate: {
      workers_->Submit(p.cpu.upd_apply_ns, [this, dg] {
        const UpdateMsg msg = DeserializeUpdate(*dg.body);
        if (l1_ != nullptr) {
          l1_->Invalidate(msg.key);  // a peer wrote: drop the private copy
        }
        if (cache_->Find(msg.key) != nullptr) {
          engine_->OnUpdate(dg.src, msg);
        } else if (rack_->HomeOf(msg.key) == id_) {
          // The key churned out of the hot set mid-write: complete the
          // write-back directly into the home shard.
          PartitionFor(msg.key).Apply(msg.key, msg.value, msg.ts);
        } else if (hot_mgr_ != nullptr) {
          // Uncached and homed elsewhere: our membership lags an announce in
          // flight.  Remember the update so a stashed fill cannot resurrect
          // an older value (hot_set_manager.h, fill-vs-announce race).
          hot_mgr_->NoteUncachedUpdate(msg.key, msg.value, msg.ts);
        }
        MaybeSendCreditUpdate(dg.src);
        MaybeRetryDeferred();
      });
      break;
    }
    case TrafficClass::kInvalidation: {
      workers_->Submit(p.cpu.inv_apply_ns, [this, dg] {
        const InvalidateMsg msg = DeserializeInvalidate(*dg.body);
        if (l1_ != nullptr) {
          l1_->Invalidate(msg.key);
        }
        if (hot_mgr_ != nullptr && cache_->Find(msg.key) == nullptr) {
          hot_mgr_->NoteUncachedInvalidate(msg.key, msg.ts);
        }
        engine_->OnInvalidate(dg.src, msg);  // acks unconditionally, even if cold
        MaybeSendCreditUpdate(dg.src);
      });
      break;
    }
    case TrafficClass::kAck: {
      workers_->Submit(p.cpu.ack_apply_ns, [this, dg] {
        const AckMsg msg = DeserializeAck(*dg.body);
        engine_->OnAck(dg.src, msg);
        MaybeRetryDeferred();  // the ack may have completed a deferring write
      });
      break;
    }
    default:
      CCKVS_CHECK(false && "unexpected class on consistency QP");
  }
}

bool RackNode::AllPeersHaveBcastCredit() const {
  for (int j = 0; j < params().num_nodes; ++j) {
    if (j != id_ && bcast_credits_.available(static_cast<NodeId>(j)) == 0) {
      return false;
    }
  }
  return true;
}

void RackNode::RetryParkedScWrites() {
  while (!parked_sc_writes_.empty() && AllPeersHaveBcastCredit()) {
    const std::uint32_t slot = parked_sc_writes_.front();
    parked_sc_writes_.pop_front();
    ExecuteCachePut(slot);
  }
}

void RackNode::OnCreditRecv(const Datagram& dg) {
  credit_qp_->PostRecvs(1);
  workers_->Submit(params().cpu.credit_handle_ns, [this, src = dg.src] {
    bcast_credits_.Release(src, credit_batcher_.batch());
    DrainPendingBcast(src);
    RetryParkedScWrites();
  });
}

// ---------------------------------------------------------------------------
// Epoch machinery (online top-k)
// ---------------------------------------------------------------------------

SimTime RackNode::BroadcastControl(std::shared_ptr<const Buffer> body,
                                   TrafficClass cls,
                                   std::uint32_t payload_bytes_override) {
  std::vector<UdQp::SendWr> batch;
  for (int j = 0; j < params().num_nodes; ++j) {
    if (j == id_) {
      continue;
    }
    UdQp::SendWr wr;
    wr.dst = static_cast<NodeId>(j);
    wr.dst_qpn = kQpControl;
    wr.cls = cls;
    wr.header_bytes = params().wire.header_bytes;
    wr.body = body;
    wr.payload_bytes_override = payload_bytes_override;
    batch.push_back(std::move(wr));
  }
  return control_qp_->PostSendBatch(batch);
}

void RackNode::AnnounceHotSet(const HotSetAnnounceMsg& msg) {
  // Coordinator broadcast (control class), then local installation.
  auto body = std::make_shared<Buffer>();
  SerializeHotSet(msg, body.get());
  const SimTime cpu = BroadcastControl(std::move(body), TrafficClass::kControl);
  workers_->Submit(cpu, [this, msg] { ApplyAnnounce(msg); });
}

void RackNode::ApplyAnnounce(const HotSetAnnounceMsg& msg) {
  if (hot_mgr_ == nullptr) {
    return;
  }
  if (l1_ != nullptr) {
    // Tier exclusivity: keys entering the symmetric tier leave the L1.
    for (const Key key : msg.keys) {
      l1_->Invalidate(key);
    }
  }
  hot_mgr_->DriveAnnounce(msg);  // executes the transition via the hooks below
  RetryGatedShardOps();          // a re-admission may have unparked shard ops
}

void RackNode::MaybeRetryDeferred() {
  if (hot_mgr_ != nullptr && hot_mgr_->HasDeferred()) {
    hot_mgr_->DriveDeferred();
    RetryGatedShardOps();
  }
}

// --- HotSetHost hooks: the sim half of the shared transition machine ---

void RackNode::ApplyWriteback(const SymmetricCache::Eviction& ev) {
  // §4: "only the node containing the shard with the evicted key needs to ...
  // update the underlying KVS"; symmetric contents make the local copy
  // sufficient.
  if (l1_ != nullptr) {
    l1_->Invalidate(ev.key);  // the write-back may carry a newer value
  }
  PartitionFor(ev.key).Apply(ev.key, ev.value, ev.ts);
}

RackNode::FillSnapshot RackNode::GateAndSnapshot(Key key) {
  const Partition::ResidentSnapshot snap = PartitionFor(key).MarkCacheResident(key);
  return FillSnapshot{snap.value, snap.ts};
}

void RackNode::PublishFills(const std::vector<FillMsg>& fills) {
  const RackParams& p = params();
  constexpr std::size_t kChunk = 32;
  for (std::size_t base = 0; base < fills.size(); base += kChunk) {
    const std::size_t count = std::min(kChunk, fills.size() - base);
    std::vector<FillMsg> chunk(fills.begin() + static_cast<std::ptrdiff_t>(base),
                               fills.begin() + static_cast<std::ptrdiff_t>(base + count));
    auto body = std::make_shared<Buffer>();
    SerializeBatch(chunk, body.get());
    std::uint32_t payload = 0;
    for (const FillMsg& f : chunk) {
      payload += p.wire.update_base_payload + static_cast<std::uint32_t>(f.value.size());
    }
    const SimTime cpu =
        BroadcastControl(std::move(body), TrafficClass::kCacheFill, payload);
    workers_->Submit(cpu, nullptr);
  }
}

void RackNode::PublishInstalled(const EpochInstalledMsg& msg) {
  auto body = std::make_shared<Buffer>();
  SerializeEpochInstalled(msg, body.get());
  const SimTime cpu = BroadcastControl(std::move(body), TrafficClass::kControl);
  workers_->Submit(cpu, nullptr);
}

void RackNode::LiftGate(Key key) {
  PartitionFor(key).ClearCacheResident(key);
}

void RackNode::OnControlRecv(const Datagram& dg) {
  control_qp_->PostRecvs(1);
  if (dg.cls == TrafficClass::kControl) {
    if (PeekControlTag(*dg.body) == kCtrlTagHotSet) {
      workers_->Submit(200, [this, dg] { ApplyAnnounce(DeserializeHotSet(*dg.body)); });
    } else {
      // Barrier confirmations ride the same FIFO fabric lanes as the sender's
      // pre-install updates, and the worker pool starts jobs in delivery
      // order.  Processing a confirmation at (at least) the update-apply cost
      // makes it also *finish* after every earlier-delivered update has been
      // applied, so a lifted gate can never expose a shard read to a value
      // the barrier was waiting to drain.
      workers_->Submit(params().cpu.upd_apply_ns, [this, dg] {
        if (hot_mgr_ == nullptr) {
          return;
        }
        const EpochInstalledMsg msg = DeserializeEpochInstalled(*dg.body);
        hot_mgr_->DrivePeerInstalled(dg.src, msg.epoch);
        RetryGatedShardOps();  // lifted gates release parked shard ops
      });
    }
    return;
  }
  CCKVS_CHECK(dg.cls == TrafficClass::kCacheFill);
  HandleFills(dg);
}

void RackNode::HandleFills(const Datagram& dg) {
  workers_->Submit(params().cpu.upd_apply_ns, [this, dg] {
    if (hot_mgr_ == nullptr) {
      return;
    }
    for (const FillMsg& f : DeserializeFills(*dg.body)) {
      if (l1_ != nullptr) {
        l1_->Invalidate(f.key);  // tier exclusivity on epoch admission
      }
      hot_mgr_->ApplyFill(f);
    }
    MaybeRetryDeferred();   // fills may have released reader-parked evictions
    RetryGatedShardOps();   // a filled key now serves parked ops via the cache
  });
}

RackNode::Snapshot RackNode::TakeSnapshot() const {
  Snapshot s;
  s.completed = completed_;
  s.hit_completed = hit_completed_;
  s.miss_completed = miss_completed_;
  s.updates_sent = updates_sent_;
  s.invs_sent = invs_sent_;
  s.acks_sent = acks_sent_;
  s.credit_updates_sent = credit_updates_sent_;
  if (l1_ != nullptr) {
    s.l1_hits = l1_hits_;
    s.l1_fills = l1_->stats().fills;
    s.l1_invalidations = l1_->stats().invalidations;
  }
  s.worker_busy = workers_->busy_time();
  for (const auto& pool : kvs_pools_) {
    s.kvs_busy += pool->busy_time();
  }
  return s;
}

// ===========================================================================
// RackSimulation
// ===========================================================================

struct RackSimulation::Counters {
  std::vector<RackNode::Snapshot> nodes;
  std::vector<std::uint64_t> class_header_bytes;
  std::vector<std::uint64_t> class_payload_bytes;
  std::uint64_t total_tx_bytes = 0;
  SimTime at = 0;
  std::uint64_t epochs = 0;
};

RackSimulation::RackSimulation(const RackParams& params) : params_(params) {
  CCKVS_CHECK_GE(params.num_nodes, 2);
  NetConfig net_cfg = params_.net;
  net_cfg.num_nodes = params_.num_nodes;
  params_.net = net_cfg;
  net_ = std::make_unique<Network>(&sim_, net_cfg);
  partitioner_ = std::make_unique<ModuloPartitioner>(params_.num_nodes);

  for (int i = 0; i < params_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<RackNode>(this, static_cast<NodeId>(i)));
  }

  if (params_.prefill_hot_set &&
      (params_.kind == SystemKind::kCcKvs ||
       params_.kind == SystemKind::kCentralCache)) {
    WorkloadGenerator probe(params_.workload, 0, 0);
    const std::vector<Key> hot = probe.HottestKeys(params_.cache_capacity);
    if (params_.kind == SystemKind::kCentralCache) {
      hot_set_.insert(hot.begin(), hot.end());
      nodes_[0]->PrefillHotSet(hot);
    } else {
      for (auto& node : nodes_) {
        node->PrefillHotSet(hot);
      }
    }
  }
}

RackSimulation::~RackSimulation() = default;

NodeId RackSimulation::HomeOf(Key key) const { return partitioner_->HomeOf(key); }

const SymmetricCache* RackSimulation::cache(NodeId node) const {
  return nodes_[node]->cache();
}
const CoherenceEngine* RackSimulation::engine(NodeId node) const {
  return nodes_[node]->engine();
}
const Partition* RackSimulation::partition(NodeId node, int kvs_thread) const {
  return nodes_[node]->partition(kvs_thread);
}
const HotSetManager* RackSimulation::hot_set_manager(NodeId node) const {
  return nodes_[node]->hot_set_manager();
}

RackReport RackSimulation::Run(SimTime measure_ns, SimTime warmup_ns, bool drain) {
  if (!started_) {
    for (auto& node : nodes_) {
      node->Start();
    }
    started_ = true;
  }
  sim_.RunUntil(sim_.now() + warmup_ns);

  // Snapshot at the end of warmup.
  at_warmup_ = std::make_unique<Counters>();
  const int num_classes = static_cast<int>(TrafficClass::kNumClasses);
  const HotSetManager* coord = nodes_[0]->hot_set_manager();
  at_warmup_->at = sim_.now();
  at_warmup_->epochs = coord != nullptr ? coord->epochs_closed() : 0;
  for (auto& node : nodes_) {
    at_warmup_->nodes.push_back(node->TakeSnapshot());
    node->ResetLatency();
  }
  for (int c = 0; c < num_classes; ++c) {
    at_warmup_->class_header_bytes.push_back(
        net_->stats().header_bytes(static_cast<TrafficClass>(c)));
    at_warmup_->class_payload_bytes.push_back(
        net_->stats().payload_bytes(static_cast<TrafficClass>(c)));
  }
  at_warmup_->total_tx_bytes = net_->stats().total_bytes();

  sim_.RunUntil(sim_.now() + measure_ns);

  // Build the report from deltas.
  RackReport report;
  const double duration_ns = static_cast<double>(sim_.now() - at_warmup_->at);
  report.duration_s = duration_ns / 1e9;

  Histogram latency;
  RackNode::Snapshot totals;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const RackNode::Snapshot now = nodes_[i]->TakeSnapshot();
    const RackNode::Snapshot& base = at_warmup_->nodes[i];
    totals.completed += now.completed - base.completed;
    totals.hit_completed += now.hit_completed - base.hit_completed;
    totals.miss_completed += now.miss_completed - base.miss_completed;
    totals.updates_sent += now.updates_sent - base.updates_sent;
    totals.invs_sent += now.invs_sent - base.invs_sent;
    totals.acks_sent += now.acks_sent - base.acks_sent;
    totals.credit_updates_sent += now.credit_updates_sent - base.credit_updates_sent;
    totals.l1_hits += now.l1_hits - base.l1_hits;
    totals.l1_fills += now.l1_fills - base.l1_fills;
    totals.l1_invalidations += now.l1_invalidations - base.l1_invalidations;
    totals.worker_busy += now.worker_busy - base.worker_busy;
    totals.kvs_busy += now.kvs_busy - base.kvs_busy;
    latency.Merge(nodes_[i]->latency());
  }

  FillThroughput(totals.completed, totals.hit_completed, totals.miss_completed,
                 duration_ns, &report);
  FillLatency(latency, &report);

  const double n = static_cast<double>(params_.num_nodes);
  double header_bytes = 0;
  double payload_bytes = 0;
  for (int c = 0; c < num_classes; ++c) {
    const double h =
        static_cast<double>(net_->stats().header_bytes(static_cast<TrafficClass>(c)) -
                            at_warmup_->class_header_bytes[static_cast<std::size_t>(c)]);
    const double pl = static_cast<double>(
        net_->stats().payload_bytes(static_cast<TrafficClass>(c)) -
        at_warmup_->class_payload_bytes[static_cast<std::size_t>(c)]);
    report.class_gbps[c] = (h + pl) * 8.0 / duration_ns / n;
    header_bytes += h;
    payload_bytes += pl;
  }
  report.header_gbps_per_node = header_bytes * 8.0 / duration_ns / n;
  report.payload_gbps_per_node = payload_bytes * 8.0 / duration_ns / n;
  report.tx_gbps_per_node =
      static_cast<double>(net_->stats().total_bytes() - at_warmup_->total_tx_bytes) *
      8.0 / duration_ns / n;

  report.worker_utilization = static_cast<double>(totals.worker_busy) /
                              (duration_ns * n * params_.cache_threads);
  report.kvs_utilization = static_cast<double>(totals.kvs_busy) /
                           (duration_ns * n * params_.kvs_threads);

  report.updates_sent = totals.updates_sent;
  report.invalidations_sent = totals.invs_sent;
  report.acks_sent = totals.acks_sent;
  report.credit_updates_sent = totals.credit_updates_sent;
  report.epochs = coord != nullptr ? coord->epochs_closed() - at_warmup_->epochs : 0;
  report.hot_set_churn = coord != nullptr ? coord->last_epoch_churn() : 0;
  report.l1_hits = totals.l1_hits;
  report.l1_fills = totals.l1_fills;
  report.l1_invalidations = totals.l1_invalidations;

  // Drain: stop issuing client operations and let everything in flight finish,
  // so recorded histories are complete and final state is quiescent.  The
  // report above is already sealed; the drain does not affect it.
  if (drain) {
    for (auto& node : nodes_) {
      node->StartDraining();
    }
    sim_.Run();
  }
  return report;
}

}  // namespace cckvs
