// Shared RackReport plumbing.
//
// The simulated rack (cckvs/rack.cc) and the live rack (runtime/live_rack.cc)
// produce the same report shape from the same raw ingredients — completed-op
// counts over a duration and a nanosecond latency histogram.  These helpers
// keep the two paths numerically identical, and provide the flat field view
// the bench binaries serialize into their JSON artifacts.

#ifndef CCKVS_CCKVS_REPORT_UTIL_H_
#define CCKVS_CCKVS_REPORT_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/cckvs/params.h"
#include "src/common/histogram.h"

namespace cckvs {

// Fills completed / mrps / hit_mrps / miss_mrps / hit_rate.  `duration_ns`
// is simulated time for the simulator, wall time for the live rack.
void FillThroughput(std::uint64_t completed, std::uint64_t hit_completed,
                    std::uint64_t miss_completed, double duration_ns,
                    RackReport* report);

// Fills the avg/p50/p95/p99 latency fields from a nanosecond histogram.
void FillLatency(const Histogram& latency, RackReport* report);

// Flat name -> value view of every numeric report field (JSON export).
std::vector<std::pair<std::string, double>> ReportFields(const RackReport& report);

}  // namespace cckvs

#endif  // CCKVS_CCKVS_REPORT_UTIL_H_
