// Configuration and result types for rack experiments (S9/S10).

#ifndef CCKVS_CCKVS_PARAMS_H_
#define CCKVS_CCKVS_PARAMS_H_

#include <cstdint>

#include "src/cache/replacement.h"
#include "src/common/types.h"
#include "src/net/network.h"
#include "src/protocol/engine.h"
#include "src/rdma/verbs.h"
#include "src/rdma/wire_format.h"
#include "src/workload/workload.h"

namespace cckvs {

// The systems of §7.1, plus the §2.2 design-space strawman (Figure 2b).
//
//   kBaseErew     — FaSST-style NUMA abstraction, KVS partitioned per core
//                   (MICA EREW): collapses under skew on the core owning the
//                   hottest keys.
//   kBase         — same, KVS partitioned per server (CRCW): bottlenecked by
//                   the server owning the hottest shard.
//   kCentralCache — one dedicated cache node holds the hot set; every hot
//                   request in the cluster funnels to it (the prior-work
//                   approach of Figure 2b).  Trivially consistent (single
//                   copy) but processing-bound on the cache node.
//   kCcKvs        — Base plus consistent symmetric caches (this paper).
//
// "Uniform" is kBase evaluated under a uniform key distribution (alpha = 0);
// it upper-bounds every cache-less baseline.
enum class SystemKind : std::uint8_t {
  kBaseErew = 0,
  kBase,
  kCentralCache,
  kCcKvs,
};

inline const char* ToString(SystemKind k) {
  switch (k) {
    case SystemKind::kBaseErew:
      return "Base-EREW";
    case SystemKind::kBase:
      return "Base";
    case SystemKind::kCentralCache:
      return "CentralCache";
    case SystemKind::kCcKvs:
      return "ccKVS";
  }
  return "?";
}

// CPU service times, in ns.  Calibrated so that (a) a single core sustains
// ~5 M KVS ops/s, the MICA-class figure that makes Base-EREW hot-core-bound at
// ~95 MRPS on 9 nodes, and (b) CRCW systems stay network-bound, the regime the
// paper demonstrates in §8.4.
struct CpuModel {
  SimTime cache_probe_ns = 20;    // hot-set membership probe
  SimTime cache_hit_ns = 90;      // cache read (seqlock copy-out)
  SimTime l1_hit_ns = 60;         // node-private L1 tail read (no seqlock)
  SimTime cache_write_ns = 140;   // local cache write incl. protocol state
  SimTime kvs_op_ns = 130;        // MICA get/put on the home shard
  SimTime rpc_handle_ns = 50;     // incoming RPC demux before the KVS op
  SimTime resp_handle_ns = 40;    // response matching at the requester
  SimTime upd_apply_ns = 85;      // applying a consistency update
  SimTime inv_apply_ns = 55;      // applying an invalidation (+ack send)
  SimTime ack_apply_ns = 25;      // counting an acknowledgement
  SimTime credit_handle_ns = 15;  // header-only credit update
};

struct RackParams {
  SystemKind kind = SystemKind::kCcKvs;
  ConsistencyModel consistency = ConsistencyModel::kSc;  // used by kCcKvs

  int num_nodes = 9;  // §7.2: 9-server rack

  WorkloadConfig workload;  // defaults: 250M keys, alpha .99, 40B values

  // Symmetric cache: 0.1% of the dataset (§7.1).
  std::size_t cache_capacity = 250'000;
  bool prefill_hot_set = true;  // steady-state experiments pre-install the hot set

  // Node-private L1 tail cache in front of the symmetric tier (0 = off):
  // keys hot HERE but not in the global hot set, admitted by a per-node
  // Space-Saving sketch and invalidated on any locally observable write.
  std::size_t l1_capacity = 0;
  L1Policy l1_policy = L1Policy::kLru;

  // Thread pools (§6.2 thread partitioning).  The paper's nodes have 2x10
  // cores with 2 hyperthreads each; 16 worker ("cache") threads and 8 KVS
  // threads keep CRCW systems network-bound, as measured in §8.4.
  int cache_threads = 16;
  int kvs_threads = 8;
  // EREW KVS (per-core shards) — forced on for kBaseErew; selectable for the
  // §6.4 CRCW-vs-EREW ablation.
  bool kvs_erew = false;

  CpuModel cpu;
  NetConfig net;          // defaults: 54 Gb/s links, 26.9 Mpps switch ports
  WireFormat wire;        // defaults reproduce B_RR/B_SC/B_Lin
  NicCostModel nic;

  // Closed-loop client load: outstanding requests per node.  When
  // open_loop_mrps_per_node > 0, arrivals are Poisson at that rate instead.
  int window_per_node = 512;
  double open_loop_mrps_per_node = 0.0;

  // Flow control (§6.3/6.4).
  int rpc_credits_per_peer = 64;
  int bcast_credits_per_peer = 64;
  int credit_update_batch = 8;

  // Request coalescing (§8.5): misses destined to the same node share a packet.
  bool coalescing = false;
  int coalesce_max_batch = 16;
  SimTime coalesce_window_ns = 800;

  // §6.3 ablation: ship SC updates via switch multicast instead of the
  // software broadcast.
  bool multicast_updates = false;

  // Epoch-based online hot-set learning (§4); when false the hot set is the
  // ground-truth top-k, fixed for the run.
  bool online_topk = false;
  std::uint64_t topk_epoch_requests = 200'000;
  double topk_sample_probability = 0.05;
  // Drift-aware pacing: adapt epoch length from last_epoch_churn() (high
  // churn shortens the next epoch, churn ~0 lengthens it, clamped; see
  // topk/epoch_coordinator.h).
  bool topk_adaptive_epochs = false;

  // Record a full operation history for the consistency checkers (small runs).
  bool record_history = false;

  std::uint64_t seed = 1;
};

struct RackReport {
  double duration_s = 0;       // measured (post-warmup) simulated seconds
  std::uint64_t completed = 0; // ops completed in the measured window
  double mrps = 0;             // aggregate throughput

  // Cache behaviour (kCcKvs only).
  double hit_rate = 0;   // hierarchy hit rate: L1 hits + symmetric hits
  double hit_mrps = 0;   // Figure 9 split
  double miss_mrps = 0;

  // Node-private L1 tail (l1_capacity > 0 runs), summed over nodes.
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_fills = 0;
  std::uint64_t l1_invalidations = 0;

  // Latency (client-observed), microseconds.
  double avg_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;

  // Network, per-node averages over the measured window.
  double tx_gbps_per_node = 0;
  double header_gbps_per_node = 0;   // Figure 13a split
  double payload_gbps_per_node = 0;
  double class_gbps[static_cast<int>(TrafficClass::kNumClasses)] = {};

  // CPU pool utilizations (averaged over nodes).
  double worker_utilization = 0;
  double kvs_utilization = 0;

  // Consistency traffic message counts (measured window).
  std::uint64_t updates_sent = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t credit_updates_sent = 0;

  // Epoch machinery (online_topk runs).
  std::uint64_t epochs = 0;
  std::uint64_t hot_set_churn = 0;
};

}  // namespace cckvs

#endif  // CCKVS_CCKVS_PARAMS_H_
