// RPC request/response formats for the FaSST-style remote KVS access path
// (§6.1): efficient single-key GET/PUT operations over UD sends.
//
// Packets may carry several requests or responses when request coalescing is on
// (§8.5); the count rides first.  The `payload_bytes` put on the simulated wire
// comes from WireFormat (the paper's calibrated sizes), not from the size of
// these semantic buffers.

#ifndef CCKVS_CCKVS_RPC_MESSAGES_H_
#define CCKVS_CCKVS_RPC_MESSAGES_H_

#include <vector>

#include "src/common/types.h"
#include "src/rdma/serialize.h"
#include "src/topk/hot_set_messages.h"

namespace cckvs {

struct RpcRequest {
  std::uint32_t op_id = 0;  // requester-local operation id, echoed in response
  OpType op = OpType::kGet;
  Key key = 0;
  Value value;  // PUT only
  // Distributed-tracing context (runtime/tracing.h): the sampled op's trace
  // id and the requester-side op span, so the home's rpc_serve span stitches
  // into the requester's timeline.  0 = op not sampled.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

struct RpcResponse {
  std::uint32_t op_id = 0;
  Value value;  // GET only
  Timestamp ts{};
  // The home refused to touch the shard because the key is cache-resident
  // (residency gate up during or after an epoch transition).  The requester
  // must re-route the op: by the time the bounce lands, its own cache has
  // usually admitted the key.  The home never parks an RPC — it cannot see
  // the requester's cache catch up, so parking can deadlock a halted rack.
  bool gated = false;
  // Echo of RpcRequest::trace_id (0 = untraced); keeps the wire symmetric so
  // either side of a trace can be reconstructed from a capture.
  std::uint64_t trace_id = 0;
};

inline void SerializeBatch(const std::vector<RpcRequest>& reqs, Buffer* out) {
  BufferWriter w(out);
  w.PutU16(static_cast<std::uint16_t>(reqs.size()));
  for (const RpcRequest& r : reqs) {
    w.PutU32(r.op_id);
    w.PutU8(static_cast<std::uint8_t>(r.op));
    w.PutU64(r.key);
    if (r.op == OpType::kPut) {
      w.PutString(r.value);
    }
  }
}

inline std::vector<RpcRequest> DeserializeRequests(const Buffer& in) {
  BufferReader r(in);
  const std::uint16_t count = r.GetU16();
  std::vector<RpcRequest> reqs(count);
  for (RpcRequest& req : reqs) {
    req.op_id = r.GetU32();
    req.op = static_cast<OpType>(r.GetU8());
    req.key = r.GetU64();
    if (req.op == OpType::kPut) {
      req.value = r.GetString();
    }
  }
  return reqs;
}

inline void SerializeBatch(const std::vector<RpcResponse>& resps, Buffer* out) {
  BufferWriter w(out);
  w.PutU16(static_cast<std::uint16_t>(resps.size()));
  for (const RpcResponse& resp : resps) {
    w.PutU32(resp.op_id);
    w.PutU32(resp.ts.clock);
    w.PutU8(resp.ts.writer);
    w.PutU8(resp.gated ? 1 : 0);
    w.PutString(resp.value);
  }
}

inline std::vector<RpcResponse> DeserializeResponses(const Buffer& in) {
  BufferReader r(in);
  const std::uint16_t count = r.GetU16();
  std::vector<RpcResponse> resps(count);
  for (RpcResponse& resp : resps) {
    resp.op_id = r.GetU32();
    resp.ts.clock = r.GetU32();
    resp.ts.writer = static_cast<NodeId>(r.GetU8());
    resp.gated = r.GetU8() != 0;
    resp.value = r.GetString();
  }
  return resps;
}

// Cache-fill batch (epoch hot-set installation; FillMsg lives in
// src/topk/hot_set_messages.h with the rest of the epoch machinery types).
inline void SerializeBatch(const std::vector<FillMsg>& fills, Buffer* out) {
  BufferWriter w(out);
  w.PutU16(static_cast<std::uint16_t>(fills.size()));
  for (const FillMsg& f : fills) {
    w.PutU64(f.key);
    w.PutU32(f.ts.clock);
    w.PutU8(f.ts.writer);
    w.PutU64(f.epoch);
    w.PutString(f.value);
  }
}

inline std::vector<FillMsg> DeserializeFills(const Buffer& in) {
  BufferReader r(in);
  const std::uint16_t count = r.GetU16();
  std::vector<FillMsg> fills(count);
  for (FillMsg& f : fills) {
    f.key = r.GetU64();
    f.ts.clock = r.GetU32();
    f.ts.writer = static_cast<NodeId>(r.GetU8());
    f.epoch = r.GetU64();
    f.value = r.GetString();
  }
  return fills;
}

// Control-QP messages share TrafficClass::kControl; a leading tag byte
// demultiplexes them.
constexpr std::uint8_t kCtrlTagHotSet = 1;
constexpr std::uint8_t kCtrlTagEpochInstalled = 2;

inline std::uint8_t PeekControlTag(const Buffer& in) {
  CCKVS_CHECK(!in.empty());
  return in[0];
}

// Hot-set announcement from the epoch coordinator.
inline void SerializeHotSet(const HotSetAnnounceMsg& msg, Buffer* out) {
  BufferWriter w(out);
  w.PutU8(kCtrlTagHotSet);
  w.PutU64(msg.epoch);
  w.PutU32(static_cast<std::uint32_t>(msg.keys.size()));
  for (const Key k : msg.keys) {
    w.PutU64(k);
  }
}

inline HotSetAnnounceMsg DeserializeHotSet(const Buffer& in) {
  BufferReader r(in);
  CCKVS_CHECK(r.GetU8() == kCtrlTagHotSet);
  HotSetAnnounceMsg msg;
  msg.epoch = r.GetU64();
  const std::uint32_t count = r.GetU32();
  msg.keys.resize(count);
  for (Key& k : msg.keys) {
    k = r.GetU64();
  }
  return msg;
}

// Install-barrier confirmation (the sender id travels as the message source).
inline void SerializeEpochInstalled(const EpochInstalledMsg& msg, Buffer* out) {
  BufferWriter w(out);
  w.PutU8(kCtrlTagEpochInstalled);
  w.PutU64(msg.epoch);
}

inline EpochInstalledMsg DeserializeEpochInstalled(const Buffer& in) {
  BufferReader r(in);
  CCKVS_CHECK(r.GetU8() == kCtrlTagEpochInstalled);
  return EpochInstalledMsg{r.GetU64()};
}

}  // namespace cckvs

#endif  // CCKVS_CCKVS_RPC_MESSAGES_H_
