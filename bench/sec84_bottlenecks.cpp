// §8.4: system bottleneck analysis.
//
// The paper validates its bottleneck claim with an ib_send_bw-style experiment:
// two machines exchange packets directly and through the switch; the direct
// path sustains up to 25% more packets per second, proving the switch packet
// processing rate — not NIC/CPU/PCIe — limits small-packet workloads.  Large
// packets saturate the line rate instead.  This bench reproduces both probes on
// the simulated fabric plus the resource-utilization summary for a ccKVS run.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace {

// Streams `packets` back-to-back from node 0 to node 1 and returns
// {Mpps, Gbps} at the receiver.
struct ProbeResult {
  double mpps;
  double gbps;
};

ProbeResult Probe(bool through_switch, std::uint32_t wire_bytes, int packets) {
  using namespace cckvs;
  Simulator sim;
  NetConfig cfg;
  cfg.through_switch = through_switch;
  Network net(&sim, cfg);
  std::uint64_t received = 0;
  std::uint64_t bytes = 0;
  net.SetDeliverHandler(1, [&](const Packet& p) {
    ++received;
    bytes += p.wire_bytes();
  });
  for (int i = 0; i < packets; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 1;
    p.header_bytes = 31;
    p.payload_bytes = wire_bytes - 31;
    net.Send(p);
  }
  sim.Run();
  const double duration_ns = static_cast<double>(sim.now());
  return ProbeResult{static_cast<double>(received) * 1e3 / duration_ns,
                     static_cast<double>(bytes) * 8.0 / duration_ns};
}

}  // namespace

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Section 8.4: bottleneck analysis\n\n");
  std::printf("ib_send_bw-style probe (node-to-node packet stream):\n");
  std::printf("%-16s %14s %14s %10s\n", "packet size", "direct Mpps", "switch Mpps",
              "ratio");
  for (const std::uint32_t size : {56u, 72u, 113u, 256u, 1024u}) {
    const ProbeResult direct = Probe(false, size, 30000);
    const ProbeResult switched = Probe(true, size, 30000);
    std::printf("%-16u %14.1f %14.1f %9.2fx\n", size, direct.mpps, switched.mpps,
                direct.mpps / switched.mpps);
  }
  std::printf("\npaper: direct connection sustains up to 25%% higher packet rate;\n"
              "small packets are switch-pps-bound, large packets line-rate-bound\n\n");

  std::printf("effective bandwidth through the switch:\n");
  std::printf("%-16s %12s\n", "packet size", "Gbps");
  for (const std::uint32_t size : {56u, 113u, 256u, 1024u}) {
    std::printf("%-16u %12.1f\n", size, Probe(true, size, 30000).gbps);
  }
  std::printf("\npaper: ~21.5 Gbps effective for the small-packet mix, 54 Gbps line rate\n\n");

  std::printf("resource utilization at peak load (ccKVS read-only, 9 nodes):\n");
  const RackReport r = RunRack(PaperRack(SystemKind::kCcKvs));
  std::printf("  throughput        %8.1f MRPS\n", r.mrps);
  std::printf("  network per node  %8.1f Gbps (of 21.5 effective / 54 line)\n",
              r.tx_gbps_per_node);
  std::printf("  worker threads    %7.0f%% busy\n", 100.0 * r.worker_utilization);
  std::printf("  KVS threads       %7.0f%% busy\n", 100.0 * r.kvs_utilization);
  std::printf("\npaper: CPU/PCIe/memory underutilized; the fabric is the bottleneck\n");
  return 0;
}
