// Figure 13c: average and 95th-percentile latency at various load levels, with
// request coalescing, for read-only ccKVS and 1%-writes ccKVS-SC / ccKVS-Lin.
//
// Paper: even at high load, tail latency stays ~an order of magnitude below the
// 1 ms KVS service target; the read-only and SC tails hug their averages, while
// the Lin tail visibly separates at high load (blocking two-phase writes sit on
// the critical path).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 13c: latency vs offered load, coalescing on, 9 nodes, alpha=0.99\n\n");
  std::printf("%-14s %-12s %10s %10s %10s\n", "system", "load MRPS", "avg us",
              "p95 us", "p99 us");

  struct Config {
    const char* name;
    ConsistencyModel model;
    double write_ratio;
  };
  const std::vector<Config> configs = {
      {"read-only", ConsistencyModel::kSc, 0.0},
      {"SC 1% wr", ConsistencyModel::kSc, 0.01},
      {"Lin 1% wr", ConsistencyModel::kLin, 0.01},
  };

  // Offered load per node, swept toward saturation (aggregate = 9x; the
  // coalesced-ccKVS saturation point sits near ~115 MRPS/node here).
  const std::vector<double> per_node_mrps = {20, 50, 80, 100, 110};

  for (const Config& cfg : configs) {
    for (const double load : per_node_mrps) {
      RackParams p = PaperRack(SystemKind::kCcKvs, cfg.model);
      p.workload.write_ratio = cfg.write_ratio;
      p.coalescing = true;
      p.open_loop_mrps_per_node = load;
      char detail[32];
      std::snprintf(detail, sizeof(detail), "load=%.0f/node", load);
      const RackReport r = RunRack(p, 250'000, 100'000, detail);
      std::printf("%-14s %-12.0f %10.1f %10.1f %10.1f\n", cfg.name, load * 9,
                  r.avg_latency_us, r.p95_latency_us, r.p99_latency_us);
    }
    std::printf("\n");
  }
  std::printf("paper: all curves stay far below the 1 ms target; Lin's p95\n"
              "separates from its average at high load (blocking writes)\n");

  PrintHeaderRule();
  std::printf("live fabric, 8 nodes, 5%% writes: client latency with transport\n"
              "coalescing off/on (batching trades per-message latency for\n"
              "throughput; the boundary flush bounds the cost to one pump)\n\n");
  std::printf("%-8s %-6s %10s %10s %10s\n", "model", "coal", "avg us", "p95 us",
              "p99 us");
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    for (const bool coalesce : {false, true}) {
      const LiveRackParams lp = LiveCoalescingRack(model, coalesce,
                                                   Smoke() ? 15'000 : 150'000);
      char label[64];
      std::snprintf(label, sizeof(label), "live %s latency coalescing=%s",
                    ToString(model), coalesce ? "on" : "off");
      const LiveReport lr = RunLive(lp, label);
      std::printf("%-8s %-6s %10.1f %10.1f %10.1f\n", ToString(model),
                  coalesce ? "on" : "off", lr.rack.avg_latency_us,
                  lr.rack.p95_latency_us, lr.rack.p99_latency_us);
    }
  }
  std::printf("\nlive caveat: closed-loop percentiles include scheduler noise\n"
              "(ROADMAP: busy-poll-pinned mode); compare off-vs-on, not vs sim\n");
  return 0;
}
