// Figure 14: ccKVS scalability study using the analytical model (5-40 servers,
// dashed in the paper) validated against real-system measurements (solid, up to
// 9 servers), at 1% writes and alpha = 0.99.
//
// Paper: Uniform scales almost perfectly linearly; ccKVS-SC/Lin scale
// sublinearly (consistency traffic grows with N); the model tracks the
// measured 9-node throughput within ~2%.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/analytical.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 14: scalability at 1%% writes, alpha=0.99 (MRPS)\n\n");
  std::printf("%-8s %12s %12s %12s %12s %12s %12s\n", "servers", "SC(model)",
              "Lin(model)", "Unif(model)", "SC(sim)", "Lin(sim)", "Unif(sim)");

  for (const int n : {5, 7, 9, 12, 16, 20, 25, 30, 35, 40}) {
    ModelParams mp;
    mp.num_servers = n;
    mp.write_ratio = 0.01;
    mp.hit_ratio = 0.63;  // exact Figure 3 value at 0.1% cache, alpha 0.99
    const double sc_model = ThroughputScMrps(mp);
    const double lin_model = ThroughputLinMrps(mp);
    const double unif_model = ThroughputUniformMrps(mp);

    if (n <= 9) {  // the paper's testbed tops out at 9 machines; so does ours
      RackParams sc = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
      sc.num_nodes = n;
      sc.workload.write_ratio = 0.01;
      RackParams lin = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
      lin.num_nodes = n;
      lin.workload.write_ratio = 0.01;
      RackParams unif = UniformRack();
      unif.num_nodes = n;
      const double sc_sim = RunRack(sc, 400'000, 300'000).mrps;
      const double lin_sim = RunRack(lin, 400'000, 300'000).mrps;
      const double unif_sim = RunRack(unif, 400'000, 300'000).mrps;
      std::printf("%-8d %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n", n, sc_model,
                  lin_model, unif_model, sc_sim, lin_sim, unif_sim);
      if (n == 9) {
        std::printf("         (model-vs-sim at 9 nodes: SC %+.1f%%, Lin %+.1f%%, "
                    "Uniform %+.1f%%; paper: within ~2%%)\n",
                    100.0 * (sc_model - sc_sim) / sc_sim,
                    100.0 * (lin_model - lin_sim) / lin_sim,
                    100.0 * (unif_model - unif_sim) / unif_sim);
      }
    } else {
      std::printf("%-8d %12.1f %12.1f %12.1f %12s %12s %12s\n", n, sc_model,
                  lin_model, unif_model, "-", "-", "-");
    }
  }
  std::printf("\npaper: SC/Lin sublinear (consistency traffic grows with N); Lin\n"
              "scales worse than SC (two-phase protocol)\n");
  return 0;
}
