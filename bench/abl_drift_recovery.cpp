// Extension bench: hit-rate recovery under popularity drift (§4 + §9).
//
// The paper's headline scenario is skew; this bench makes the skew *move*.
// Every drift period the workload rotates its Zipf rank-to-key mapping by a
// configurable number of ranks, so the keys worth caching change while the
// shape of the distribution does not.  Two questions:
//
//  1. Simulator slices: after each popularity shift the hit rate dips (the
//     cached keys went cold) and then recovers as the epoch machinery
//     re-learns — the depth and width of the dip is the adaptivity metric.
//  2. Live rack: the same drifting workload on real threads, adaptive epochs
//     vs. a static oracle prefill of the *initial* hot set.  The static rack
//     decays toward zero hits as drift accumulates; the adaptive rack holds
//     its hit rate, which is the whole point of online hot-set learning.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/live_rack.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Hit-rate recovery under popularity drift\n");
  std::printf("(sim: 9 nodes, 1M keys, 100-key cache; drift rotates the whole\n"
              " hot set every ~3 epochs of coordinator traffic)\n\n");

  // --- simulator: sliced timeline around the shifts ---
  RackParams p = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.workload.keyspace = 1'000'000;
  p.workload.write_ratio = 0.01;
  p.cache_capacity = 100;
  p.prefill_hot_set = false;
  p.online_topk = true;
  // The coordinator samples only its own node's stream (~2.8k ops per 120 us
  // slice), so epochs must close well inside a drift period for the rack to
  // re-learn between shifts.
  p.topk_epoch_requests = Smoke() ? 3'000 : 10'000;
  p.topk_sample_probability = 1.0;
  p.workload.drift_period_ops = Smoke() ? 10'000 : 25'000;
  p.workload.drift_rank_shift = 200;  // > cache_capacity: complete shift

  RackSimulation rack(p);
  std::printf("%-14s %10s %10s %8s %8s\n", "window (us)", "MRPS", "hit rate",
              "epochs", "churn");
  SimTime t = 0;
  const SimTime kSlice = Smoke() ? 120'000 : 300'000;
  const int kSlices = Smoke() ? 8 : 12;
  for (int slice = 0; slice < kSlices; ++slice) {
    const bool last = slice == kSlices - 1;
    const RackReport r = rack.Run(/*measure_ns=*/kSlice, /*warmup_ns=*/0,
                                  /*drain=*/last);
    t += kSlice;
    std::printf("%6llu-%-7llu %9.1f %9.0f%% %8llu %8llu\n",
                static_cast<unsigned long long>((t - kSlice) / 1000),
                static_cast<unsigned long long>(t / 1000), r.mrps,
                100.0 * r.hit_rate, static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.hot_set_churn));
    char label[48];
    std::snprintf(label, sizeof(label), "abl_drift_recovery slice=%d", slice);
    RecordEntry(label, ReportFields(r));
  }
  std::printf("\nexpected: hit rate dips right after each rotation, then the next\n"
              "epoch re-learns the shifted hot set and it recovers\n");

  // --- live rack: adaptive epochs vs. a static oracle under the same drift ---
  std::printf("\nLive rack under drift (4 nodes): adaptive epochs vs. static oracle\n");
  std::printf("%-10s %10s %10s %8s %12s\n", "mode", "Mops/s", "hit rate",
              "epochs", "gate parks");
  for (const bool adaptive : {false, true}) {
    LiveRackParams lp;
    lp.num_nodes = 4;
    lp.consistency = ConsistencyModel::kSc;
    lp.workload.keyspace = 1'000'000;
    lp.workload.write_ratio = 0.01;
    lp.workload.value_bytes = 16;
    lp.workload.drift_period_ops = Smoke() ? 20'000 : 100'000;
    lp.workload.drift_rank_shift = 200;
    lp.cache_capacity = 100;
    lp.prefill_hot_set = true;  // both start with the phase-0 oracle
    lp.online_topk = adaptive;
    lp.topk_epoch_requests = Smoke() ? 5'000 : 20'000;
    lp.topk_sample_probability = 1.0;
    lp.ops_per_node = Smoke() ? 80'000 : 500'000;
    lp.seed = 42;
    LiveRack live(lp);
    const LiveReport lr = live.Run();
    std::printf("%-10s %10.2f %9.1f%% %8llu %12llu\n",
                adaptive ? "adaptive" : "static", lr.rack.mrps,
                100.0 * lr.rack.hit_rate,
                static_cast<unsigned long long>(lr.rack.epochs),
                static_cast<unsigned long long>(lr.gate_retries));
    RecordEntry(std::string("abl_drift_recovery live ") +
                    (adaptive ? "adaptive" : "static"),
                LiveReportFields(lr));
  }
  PrintHeaderRule();
  std::printf("expected: the static oracle's hit rate decays with every shift;\n"
              "the adaptive rack re-learns each one and keeps serving hits\n");
  return 0;
}
