// google-benchmark microbenches for the data-plane components: the MICA-like
// store (single- and multi-threaded CRCW), seqlocks, the Zipf sampler, the
// symmetric cache probe path and the Space-Saving sketch.
//
// These measure the real (wall-clock) cost of the concurrent data structures —
// the part of the system that runs as genuine multithreaded code rather than
// under the deterministic simulator.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>

#include "src/cache/symmetric_cache.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/store/partition.h"
#include "src/store/seqlock.h"
#include "src/topk/space_saving.h"
#include "src/workload/workload.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

void BM_StoreGetHit(benchmark::State& state) {
  PartitionConfig pc;
  pc.buckets = 1 << 16;
  Partition part(pc);
  const int keys = 100'000;
  for (Key k = 0; k < keys; ++k) {
    part.Put(k, SynthesizeValue(k, 40));
  }
  Rng rng(1);
  Value v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.Get(rng.NextBounded(keys), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreGetHit);

void BM_StorePut(benchmark::State& state) {
  PartitionConfig pc;
  pc.buckets = 1 << 16;
  Partition part(pc);
  const int keys = 100'000;
  Rng rng(2);
  const Value v = SynthesizeValue(7, 40);
  for (auto _ : state) {
    part.Put(rng.NextBounded(keys), v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePut);

void BM_StoreGetSynthesized(benchmark::State& state) {
  PartitionConfig pc;
  pc.buckets = 1 << 12;
  pc.synthesize = [](Key key) { return SynthesizeValue(key, 40); };
  Partition part(pc);
  Rng rng(3);
  Value v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.Get(rng.Next(), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreGetSynthesized);

// CRCW: concurrent readers with a 5% writer mix, the §6.2 concurrency model.
void BM_StoreCrcwMixed(benchmark::State& state) {
  static Partition* part = nullptr;
  if (state.thread_index() == 0) {
    PartitionConfig pc;
    pc.buckets = 1 << 16;
    part = new Partition(pc);
    for (Key k = 0; k < 100'000; ++k) {
      part->Put(k, SynthesizeValue(k, 40));
    }
  }
  Rng rng(100 + static_cast<std::uint64_t>(state.thread_index()));
  Value v;
  const Value w = SynthesizeValue(9, 40);
  for (auto _ : state) {
    const Key k = rng.NextBounded(100'000);
    if (rng.NextBool(0.05)) {
      part->Put(k, w);
    } else {
      benchmark::DoNotOptimize(part->Get(k, &v));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete part;
    part = nullptr;
  }
}
BENCHMARK(BM_StoreCrcwMixed)->Threads(1)->Threads(2)->Threads(4);

// ---------------------------------------------------------------------------
// Seqlock
// ---------------------------------------------------------------------------

void BM_SeqlockReadUncontended(benchmark::State& state) {
  Seqlock lock;
  std::uint64_t data = 42;
  for (auto _ : state) {
    std::uint32_t v;
    std::uint64_t copy;
    do {
      v = lock.ReadBegin();
      copy = data;
    } while (lock.ReadRetry(v));
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SeqlockReadUncontended);

void BM_SeqlockWrite(benchmark::State& state) {
  Seqlock lock;
  std::uint64_t data = 0;
  for (auto _ : state) {
    SeqlockWriteGuard guard(lock);
    benchmark::DoNotOptimize(++data);
  }
}
BENCHMARK(BM_SeqlockWrite);

// ---------------------------------------------------------------------------
// Zipf sampling
// ---------------------------------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler sampler(250'000'000, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_KeyScramble(benchmark::State& state) {
  KeyScrambler scrambler(250'000'000, 9);
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scrambler.RankToKey(r++ % 250'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeyScramble);

void BM_WorkloadNext(benchmark::State& state) {
  WorkloadConfig cfg;
  cfg.keyspace = 250'000'000;
  cfg.write_ratio = 0.01;
  WorkloadGenerator gen(cfg, 1, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadNext);

// ---------------------------------------------------------------------------
// Symmetric cache + top-k
// ---------------------------------------------------------------------------

void BM_CacheProbeHit(benchmark::State& state) {
  SymmetricCache cache(250'000);
  std::vector<Key> keys;
  for (Key k = 0; k < 250'000; ++k) {
    keys.push_back(k);
  }
  cache.InstallHotSet(keys);
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Probe(rng.NextBounded(250'000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeHit);

void BM_CacheProbeMiss(benchmark::State& state) {
  SymmetricCache cache(1000);
  std::vector<Key> keys;
  for (Key k = 0; k < 1000; ++k) {
    keys.push_back(k);
  }
  cache.InstallHotSet(keys);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Probe(1'000'000 + rng.Next() % 1'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheProbeMiss);

void BM_SpaceSavingOffer(benchmark::State& state) {
  SpaceSaving ss(4096);
  ZipfSampler sampler(1'000'000, 0.99);
  Rng rng(10);
  for (auto _ : state) {
    ss.Offer(sampler.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingOffer);

}  // namespace
}  // namespace cckvs

BENCHMARK_MAIN();
