// Shared helpers for the figure/table benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs the
// rack simulator (or the analytical model) at the paper's parameters and prints
// the same rows/series the paper reports.  Absolute numbers come from a
// simulator, so EXPERIMENTS.md compares shapes (orderings, ratios, crossovers)
// rather than testbed-specific magnitudes.

#ifndef CCKVS_BENCH_BENCH_UTIL_H_
#define CCKVS_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "src/cckvs/rack.h"

namespace cckvs {
namespace bench {

// The paper's default rack: 9 nodes, 250M keys, 0.1% symmetric cache, 40B
// values, alpha = 0.99 (§7.2).
inline RackParams PaperRack(SystemKind kind,
                            ConsistencyModel model = ConsistencyModel::kSc) {
  RackParams p;
  p.kind = kind;
  p.consistency = model;
  p.num_nodes = 9;
  p.workload.keyspace = 250'000'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.0;
  p.workload.value_bytes = 40;
  p.cache_capacity = 250'000;
  p.seed = 42;
  return p;
}

// Uniform = Base under alpha = 0 (§7.1).
inline RackParams UniformRack() {
  RackParams p = PaperRack(SystemKind::kBase);
  p.workload.zipf_alpha = 0.0;
  return p;
}

struct RunWindows {
  SimTime measure_ns = 250'000;
  SimTime warmup_ns = 150'000;
};

// Base-EREW needs a long warmup: its hot-core queue fills slowly before the
// system settles into the hot-core-bound steady state.  ccKVS runs with writes
// need a long measurement window: hot-key write bursts and credit dynamics make
// short windows noisy.
inline RunWindows WindowsFor(const RackParams& p) {
  RunWindows w;
  if (p.kind == SystemKind::kBaseErew) {
    w.warmup_ns = 3'000'000;
    w.measure_ns = 500'000;
  } else if (p.kind == SystemKind::kCcKvs && p.workload.write_ratio > 0.0) {
    w.warmup_ns = 300'000;
    w.measure_ns = 1'000'000;
  }
  return w;
}

inline RackReport RunRack(const RackParams& p) {
  RackSimulation rack(p);
  const RunWindows w = WindowsFor(p);
  return rack.Run(w.measure_ns, w.warmup_ns);
}

inline RackReport RunRack(const RackParams& p, SimTime measure_ns, SimTime warmup_ns) {
  RackSimulation rack(p);
  return rack.Run(measure_ns, warmup_ns);
}

inline void PrintHeaderRule() {
  std::printf("------------------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace cckvs

#endif  // CCKVS_BENCH_BENCH_UTIL_H_
