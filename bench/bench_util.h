// Shared helpers for the figure/table benches.
//
// Every bench binary regenerates one table or figure of the paper: it runs the
// rack simulator (or the analytical model) at the paper's parameters and prints
// the same rows/series the paper reports.  Absolute numbers come from a
// simulator, so EXPERIMENTS.md compares shapes (orderings, ratios, crossovers)
// rather than testbed-specific magnitudes.

// Every binary accepts:
//   --smoke        tiny simulation windows — seconds instead of minutes; CI's
//                  bench-smoke job uses this to keep every figure runnable on
//                  every PR
//   --json=PATH    write each run's RackReport (plus its labelled params) to
//                  PATH at exit, so runs diff PR-to-PR.  The file is an object
//                  {"meta": {...}, "entries": [...]}: `meta` embeds the git
//                  sha, build type, binary name and smoke flag so uploaded
//                  artifacts are attributable and diffable across PRs
//                  (tools/bench_delta.py consumes this shape).
// Env fallbacks CCKVS_BENCH_SMOKE=1 / CCKVS_BENCH_JSON=PATH work when argv is
// inconvenient (wrapper scripts).

#ifndef CCKVS_BENCH_BENCH_UTIL_H_
#define CCKVS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/cckvs/rack.h"
#include "src/cckvs/report_util.h"
#include "src/runtime/live_rack.h"
#include "src/runtime/report.h"

namespace cckvs {
namespace bench {

// Build-time identity, injected by CMake so every JSON artifact records what
// produced it.
#ifndef CCKVS_GIT_SHA
#define CCKVS_GIT_SHA "unknown"
#endif
#ifndef CCKVS_BUILD_TYPE
#define CCKVS_BUILD_TYPE "unknown"
#endif

struct BenchFlags {
  bool smoke = false;
  std::string json_path;
};

struct JsonEntry {
  std::string label;
  std::vector<std::pair<std::string, double>> fields;
};

struct BenchState {
  BenchFlags flags;
  std::string binary_name;
  std::vector<JsonEntry> entries;
};

inline BenchState& State() {
  static BenchState state;
  return state;
}

inline bool Smoke() { return State().flags.smoke; }

// Records one labelled result row for the JSON artifact.
inline void RecordEntry(std::string label,
                        std::vector<std::pair<std::string, double>> fields) {
  if (!State().flags.json_path.empty()) {
    State().entries.push_back(JsonEntry{std::move(label), std::move(fields)});
  }
}

inline void WriteJson() {
  BenchState& state = State();
  if (state.flags.json_path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(state.flags.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", state.flags.json_path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"meta\": {\"git_sha\": \"%s\", \"build_type\": \"%s\", "
               "\"binary\": \"%s\", \"smoke\": %s},\n  \"entries\": [\n",
               CCKVS_GIT_SHA, CCKVS_BUILD_TYPE, state.binary_name.c_str(),
               state.flags.smoke ? "true" : "false");
  for (std::size_t i = 0; i < state.entries.size(); ++i) {
    const JsonEntry& e = state.entries[i];
    std::fprintf(f, "    {\"label\": \"%s\"", e.label.c_str());
    for (const auto& [name, value] : e.fields) {
      std::fprintf(f, ", \"%s\": %.17g", name.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < state.entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// Call first in every bench main().  Parses flags and registers the JSON
// writer to run at exit (after the bench's normal table output).
inline void Init(int argc, char** argv) {
  BenchFlags& flags = State().flags;
  if (argc > 0 && argv[0] != nullptr) {
    const std::string path = argv[0];
    const std::size_t slash = path.find_last_of('/');
    State().binary_name = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      flags.json_path = argv[i] + 7;
    }
  }
  if (const char* env = std::getenv("CCKVS_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    flags.smoke = true;
  }
  if (const char* env = std::getenv("CCKVS_BENCH_JSON");
      env != nullptr && flags.json_path.empty()) {
    flags.json_path = env;
  }
  std::atexit(WriteJson);
}

// Human-readable label of a rack configuration, for JSON rows.
inline std::string LabelOf(const RackParams& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s%s%s n=%d alpha=%.2f wr=%.2f vb=%u",
                ToString(p.kind),
                p.kind == SystemKind::kCcKvs ? "/" : "",
                p.kind == SystemKind::kCcKvs ? ToString(p.consistency) : "",
                p.num_nodes, p.workload.zipf_alpha, p.workload.write_ratio,
                p.workload.value_bytes);
  return buf;
}

// The paper's default rack: 9 nodes, 250M keys, 0.1% symmetric cache, 40B
// values, alpha = 0.99 (§7.2).
inline RackParams PaperRack(SystemKind kind,
                            ConsistencyModel model = ConsistencyModel::kSc) {
  RackParams p;
  p.kind = kind;
  p.consistency = model;
  p.num_nodes = 9;
  p.workload.keyspace = 250'000'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.0;
  p.workload.value_bytes = 40;
  p.cache_capacity = 250'000;
  p.seed = 42;
  return p;
}

// Uniform = Base under alpha = 0 (§7.1).
inline RackParams UniformRack() {
  RackParams p = PaperRack(SystemKind::kBase);
  p.workload.zipf_alpha = 0.0;
  return p;
}

struct RunWindows {
  SimTime measure_ns = 250'000;
  SimTime warmup_ns = 150'000;
};

// Base-EREW needs a long warmup: its hot-core queue fills slowly before the
// system settles into the hot-core-bound steady state.  ccKVS runs with writes
// need a long measurement window: hot-key write bursts and credit dynamics make
// short windows noisy.  Under --smoke everything shrinks to a fixed tiny
// window: shapes get noisy, but every binary finishes in seconds and still
// exercises its full code path.
inline RunWindows WindowsFor(const RackParams& p) {
  RunWindows w;
  if (Smoke()) {
    w.measure_ns = 60'000;
    w.warmup_ns = 30'000;
    return w;
  }
  if (p.kind == SystemKind::kBaseErew) {
    w.warmup_ns = 3'000'000;
    w.measure_ns = 500'000;
  } else if (p.kind == SystemKind::kCcKvs && p.workload.write_ratio > 0.0) {
    w.warmup_ns = 300'000;
    w.measure_ns = 1'000'000;
  }
  return w;
}

inline RackReport RunRack(const RackParams& p, SimTime measure_ns, SimTime warmup_ns,
                          const char* label_detail = nullptr) {
  RackSimulation rack(p);
  if (Smoke()) {
    const RunWindows w = WindowsFor(p);
    measure_ns = w.measure_ns;
    warmup_ns = w.warmup_ns;
  }
  const RackReport report = rack.Run(measure_ns, warmup_ns);
  std::string label = LabelOf(p);
  if (label_detail != nullptr) {
    label += ' ';
    label += label_detail;
  }
  RecordEntry(std::move(label), ReportFields(report));
  return report;
}

inline RackReport RunRack(const RackParams& p, const char* label_detail = nullptr) {
  const RunWindows w = WindowsFor(p);
  return RunRack(p, w.measure_ns, w.warmup_ns, label_detail);
}

// Flat field view of a LiveReport: the shared RackReport fields plus the
// live-only observables, for the same JSON artifacts.
inline std::vector<std::pair<std::string, double>> LiveReportFields(
    const LiveReport& r) {
  auto fields = ReportFields(r.rack);
  fields.emplace_back("wall_seconds", r.wall_seconds);
  fields.emplace_back("channel_messages", static_cast<double>(r.channel_messages));
  fields.emplace_back("channel_batches", static_cast<double>(r.channel_batches));
  fields.emplace_back("channel_full_waits",
                      static_cast<double>(r.channel_full_waits));
  fields.emplace_back("credit_parks", static_cast<double>(r.credit_parks));
  fields.emplace_back("sc_credit_stalls", static_cast<double>(r.sc_credit_stalls));
  fields.emplace_back("wakeups", static_cast<double>(r.wakeups));
  fields.emplace_back("flushes_size", static_cast<double>(r.flushes_size));
  fields.emplace_back("flushes_boundary", static_cast<double>(r.flushes_boundary));
  fields.emplace_back("flushes_idle", static_cast<double>(r.flushes_idle));
  fields.emplace_back("flushes_deadline", static_cast<double>(r.flushes_deadline));
  fields.emplace_back("updates_collapsed",
                      static_cast<double>(r.updates_collapsed));
  fields.emplace_back("avg_batch_size", r.batch_sizes.count() == 0
                                            ? 0.0
                                            : r.batch_sizes.Mean());
  fields.emplace_back("p99_batch_size",
                      static_cast<double>(r.batch_sizes.P99()));
  fields.emplace_back("epoch_msgs", static_cast<double>(r.epoch_msgs));
  fields.emplace_back("gate_retries", static_cast<double>(r.gate_retries));
  fields.emplace_back("store_read_retries",
                      static_cast<double>(r.store_read_retries));
  fields.emplace_back("hot_path_allocs", static_cast<double>(r.hot_path_allocs));
  fields.emplace_back("spans_recorded", static_cast<double>(r.spans_recorded));
  fields.emplace_back("spans_dropped", static_cast<double>(r.spans_dropped));
  return fields;
}

// Runs a live rack and records its report under `label` (+ optional detail).
inline LiveReport RunLive(const LiveRackParams& p, const std::string& label) {
  LiveRack rack(p);
  LiveReport r = rack.Run();
  RecordEntry(label, LiveReportFields(r));
  return r;
}

// The live counterpart of the fig13 coalescing sections: a config whose
// channel traffic is broadcast-heavy enough for batching to matter (§8.5's
// live analogue batches consistency messages — live misses are direct shard
// loads and never touch the channels).
inline LiveRackParams LiveCoalescingRack(ConsistencyModel model, bool coalescing,
                                         std::uint64_t ops_per_node) {
  LiveRackParams p;
  p.num_nodes = 8;
  p.consistency = model;
  p.workload.keyspace = 1'000'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.05;
  p.workload.value_bytes = 40;
  p.cache_capacity = 1'000;  // 0.1% of the dataset, as in §7.1
  p.window_per_node = 32;    // deep closed-loop window: fat op-boundary batches
  p.ops_per_node = ops_per_node;
  p.coalescing = coalescing;
  p.seed = 42;
  return p;
}

inline void PrintHeaderRule() {
  std::printf("------------------------------------------------------------------------\n");
}

}  // namespace bench
}  // namespace cckvs

#endif  // CCKVS_BENCH_BENCH_UTIL_H_
