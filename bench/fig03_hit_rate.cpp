// Figure 3: effectiveness of caching under popularity skew — expected hit rate
// vs cache size (0 to 0.2% of the dataset) for Zipf exponents 1.01, 0.99, 0.90.
//
// Two series per exponent: the analytically exact Zipf CDF and an empirical
// measurement over sampled requests (they must agree).

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  constexpr std::uint64_t kKeys = 250'000'000;
  const std::vector<double> alphas = {1.01, 0.99, 0.90};
  const std::vector<double> cache_pcts = {0.0,  0.01, 0.025, 0.05, 0.075,
                                          0.10, 0.125, 0.15, 0.175, 0.20};

  std::printf("Figure 3: cache hit rate vs cache size (%% of %llu-key dataset)\n\n",
              static_cast<unsigned long long>(kKeys));
  std::printf("%-10s", "cache %");
  for (const double a : alphas) {
    std::printf("  a=%.2f(exact)  a=%.2f(meas.)", a, a);
  }
  std::printf("\n");

  // Empirical: one sampled request stream per alpha; count hits for each size.
  const int kSamples = bench::Smoke() ? 200'000 : 2'000'000;
  std::vector<std::vector<double>> measured(alphas.size());
  for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
    ZipfSampler sampler(kKeys, alphas[ai]);
    Rng rng(7 + ai);
    std::vector<std::uint64_t> hits(cache_pcts.size(), 0);
    for (int s = 0; s < kSamples; ++s) {
      const std::uint64_t rank = sampler.Sample(rng);
      for (std::size_t ci = 0; ci < cache_pcts.size(); ++ci) {
        const auto cache_keys =
            static_cast<std::uint64_t>(cache_pcts[ci] / 100.0 * kKeys);
        if (rank <= cache_keys) {
          hits[ci]++;
        }
      }
    }
    for (std::size_t ci = 0; ci < cache_pcts.size(); ++ci) {
      measured[ai].push_back(100.0 * static_cast<double>(hits[ci]) / kSamples);
    }
  }

  for (std::size_t ci = 0; ci < cache_pcts.size(); ++ci) {
    std::printf("%-10.3f", cache_pcts[ci]);
    for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
      const auto cache_keys =
          static_cast<std::uint64_t>(cache_pcts[ci] / 100.0 * kKeys);
      const double exact = 100.0 * ZipfCdf(cache_keys, kKeys, alphas[ai]);
      std::printf("  %13.1f  %13.1f", exact, measured[ai][ci]);
    }
    std::printf("\n");
  }

  std::printf("\npaper quotes at 0.1%%: 69%% (a=1.01), 65%% (a=0.99), 46%% (a=0.90)\n");
  std::printf("exact values:          67.5%%, 63.0%%, 42.2%%\n");
  for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
    char label[48];
    std::snprintf(label, sizeof(label), "fig03 hit rate alpha=%.2f", alphas[ai]);
    bench::RecordEntry(label, {{"measured_at_0.1pct", measured[ai][5]},
                               {"exact_at_0.1pct",
                                100.0 * ZipfCdf(kKeys / 1000, kKeys, alphas[ai])}});
  }
  return 0;
}
