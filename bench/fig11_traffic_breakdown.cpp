// Figure 11: network traffic breakdown (% of bytes) for ccKVS-SC and ccKVS-Lin
// at 1% and 5% write ratios, 9 nodes, alpha = 0.99.
//
// Paper: cache-miss RPC traffic dominates; consistency actions (updates for SC;
// updates + invalidations + acks for Lin) claim an increasing share as the
// write ratio grows; credit-update ("flow control") traffic is negligible
// thanks to batching (§6.4).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 11: network traffic breakdown (%% of bytes), 9 nodes, alpha=0.99\n\n");
  std::printf("%-14s %8s %10s %10s %8s %8s %12s\n", "system", "writes", "misses",
              "updates", "invs", "acks", "flow control");

  for (const double w : {0.01, 0.05}) {
    for (const auto model : {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
      RackParams p = PaperRack(SystemKind::kCcKvs, model);
      p.workload.write_ratio = w;
      const RackReport r = RunRack(p);
      const double miss = r.class_gbps[static_cast<int>(TrafficClass::kRemoteRequest)] +
                          r.class_gbps[static_cast<int>(TrafficClass::kRemoteResponse)];
      const double upd = r.class_gbps[static_cast<int>(TrafficClass::kUpdate)];
      const double inv = r.class_gbps[static_cast<int>(TrafficClass::kInvalidation)];
      const double ack = r.class_gbps[static_cast<int>(TrafficClass::kAck)];
      const double fc = r.class_gbps[static_cast<int>(TrafficClass::kCreditUpdate)];
      const double total = miss + upd + inv + ack + fc;
      std::printf("ccKVS-%-8s %7.0f%% %9.1f%% %9.1f%% %7.1f%% %7.1f%% %11.2f%%\n",
                  ToString(model), 100.0 * w, 100.0 * miss / total, 100.0 * upd / total,
                  100.0 * inv / total, 100.0 * ack / total, 100.0 * fc / total);
    }
  }
  std::printf("\npaper: consistency share grows with write ratio; Lin adds inv+ack\n"
              "traffic over SC; flow control is a negligible sliver\n");
  return 0;
}
