// Extension bench: epoch-based online hot-set learning (§4).
//
// The paper's evaluation pre-installs the hot set and argues popularity evolves
// slowly; here we run the full Li-et-al-style machinery — sampled Space-Saving
// at a single coordinator, epoch broadcasts, write-back eviction flushes and
// cache refills — and chart throughput as the caches converge from cold.
// A second section runs the same machinery on the live multithreaded rack
// (real threads, credited channels, shard residency gates) so the learned
// steady state is measured on hardware, not just modelled.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/live_rack.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Hot-set learning: throughput convergence from a cold cache\n");
  std::printf("(9 nodes, alpha=0.99, 1M-key space, 100-key cache, 1%% writes)\n\n");

  RackParams p = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.workload.keyspace = 1'000'000;
  // A 100-key hot set: the popularity gaps between ranks ~100 and ~200 are wide
  // enough for an epoch's sample to rank reliably (the paper's epochs span
  // seconds of traffic; simulated epochs are a few hundred microseconds).
  p.cache_capacity = 100;
  p.workload.write_ratio = 0.01;
  p.prefill_hot_set = false;
  p.online_topk = true;
  p.topk_epoch_requests = 30'000;
  p.topk_sample_probability = 1.0;

  RackSimulation rack(p);
  std::printf("%-14s %10s %10s %8s %8s\n", "window (us)", "MRPS", "hit rate",
              "epochs", "churn");
  SimTime t = 0;
  // Consecutive slices of one long run (RunRack would restart the rack, so
  // this bench drives RackSimulation directly and records entries itself).
  const SimTime kSlice = Smoke() ? 150'000 : 400'000;
  for (int slice = 0; slice < 8; ++slice) {
    const bool last = slice == 7;
    const RackReport r = rack.Run(/*measure_ns=*/kSlice, /*warmup_ns=*/0,
                                  /*drain=*/last);
    t += kSlice;
    std::printf("%6llu-%-7llu %9.1f %9.0f%% %8llu %8llu\n",
                static_cast<unsigned long long>((t - kSlice) / 1000),
                static_cast<unsigned long long>(t / 1000), r.mrps,
                100.0 * r.hit_rate, static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.hot_set_churn));
    char label[48];
    std::snprintf(label, sizeof(label), "abl_hot_set_learning slice=%d", slice);
    RecordEntry(label, ReportFields(r));
  }
  std::printf("\nexpected: hit rate ~0 before the first epoch closes, then jumps\n"
              "toward the Figure-3 steady state; churn settles to a handful of\n"
              "keys per epoch (\"only a handful of keys removed/added\", Section 4)\n");

  // --- live rack: the same cold-start learning on real threads ---
  std::printf("\nLive rack, cold start (4 nodes, online top-k):\n");
  std::printf("%-8s %10s %10s %8s %8s %12s\n", "model", "Mops/s", "hit rate",
              "epochs", "churn", "gate parks");
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams lp;
    lp.num_nodes = 4;
    lp.consistency = model;
    lp.workload.keyspace = 1'000'000;
    lp.workload.write_ratio = 0.01;
    lp.workload.value_bytes = 16;
    lp.cache_capacity = 100;
    lp.prefill_hot_set = false;  // learn from cold, as above
    lp.online_topk = true;
    lp.topk_epoch_requests = 30'000;
    lp.topk_sample_probability = 1.0;
    lp.ops_per_node = Smoke() ? 60'000 : 400'000;
    lp.seed = 42;
    LiveRack live(lp);
    const LiveReport lr = live.Run();
    std::printf("%-8s %10.2f %9.0f%% %8llu %8llu %12llu\n", ToString(model),
                lr.rack.mrps, 100.0 * lr.rack.hit_rate,
                static_cast<unsigned long long>(lr.rack.epochs),
                static_cast<unsigned long long>(lr.rack.hot_set_churn),
                static_cast<unsigned long long>(lr.gate_retries));
    RecordEntry(std::string("abl_hot_set_learning live/") + ToString(model),
                LiveReportFields(lr));
  }
  std::printf("\nexpected: live hit rate lands near the final sim slice (same\n"
              "workload, same learner); SC outruns Lin as in live_throughput\n");
  return 0;
}
