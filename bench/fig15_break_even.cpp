// Figure 15: break-even write ratio — the write ratio at which ccKVS yields the
// same throughput as Uniform — for deployments up to 40 servers (model), with
// real-system validation up to 9 (bisection over simulated write ratios).
//
// Paper: SC breaks even near 8% at 20 servers and ~4% at 40; Lin near 1.7% at
// 40; the measured system sustains slightly *higher* break-even ratios than the
// model predicts because update messages are large, so write-heavy mixes push
// more bytes through the pps-limited switch than the byte-rate model assumes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/analytical.h"

namespace {

// Bisects the write ratio at which the given ccKVS flavour matches Uniform.
double MeasuredBreakEven(cckvs::ConsistencyModel model, int nodes,
                         double uniform_mrps) {
  using namespace cckvs;
  using namespace cckvs::bench;
  double lo = 0.0;
  double hi = 0.30;
  for (int iter = 0; iter < 6; ++iter) {
    const double mid = (lo + hi) / 2;
    RackParams p = PaperRack(SystemKind::kCcKvs, model);
    p.num_nodes = nodes;
    p.workload.write_ratio = mid;
    // Mid-length windows: bisection tolerates some noise, and 6 iterations at
    // full length would dominate the bench's runtime.
    const double mrps = RunRack(p, /*measure_ns=*/500'000, /*warmup_ns=*/200'000).mrps;
    if (mrps > uniform_mrps) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 15: break-even write ratio (%%), alpha=0.99\n\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "servers", "SC(model)", "Lin(model)",
              "SC(sim)", "Lin(sim)");

  for (const int n : {5, 7, 9, 12, 16, 20, 25, 30, 35, 40}) {
    ModelParams mp;
    mp.num_servers = n;
    const double sc_model = 100.0 * BreakEvenWriteRatioSc(mp);
    const double lin_model = 100.0 * BreakEvenWriteRatioLin(mp);
    if (n <= 9) {
      RackParams unif = UniformRack();
      unif.num_nodes = n;
      const double uniform_mrps = RunRack(unif).mrps;
      const double sc_sim =
          100.0 * MeasuredBreakEven(ConsistencyModel::kSc, n, uniform_mrps);
      const double lin_sim =
          100.0 * MeasuredBreakEven(ConsistencyModel::kLin, n, uniform_mrps);
      std::printf("%-8d %12.1f %12.1f %12.1f %12.1f\n", n, sc_model, lin_model,
                  sc_sim, lin_sim);
    } else {
      std::printf("%-8d %12.1f %12.1f %12s %12s\n", n, sc_model, lin_model, "-", "-");
    }
  }
  std::printf("\npaper: break-even falls as deployments grow (consistency traffic\n"
              "scales with N); measured ratios sit at or above the model's\n");
  return 0;
}
