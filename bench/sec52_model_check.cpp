// §5.2 "Verification": exhaustive model checking of the Lin protocol.
//
// The paper expressed its Lin protocol in Murphi and verified safety (the
// single-writer-multiple-reader and data-value invariants) and deadlock freedom
// with 3 processors, 2 addresses and 2-bit timestamps.  This bench runs our
// checker — which explores every interleaving of the *production* LinEngine —
// at and beyond that scale, and prints the explored state-space size.
// (Per-key protocols make keys independent, so one key covers the 2-address
// Murphi configuration; see tests/verify_test.cc.)

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/verify/model_checker.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  std::printf("Section 5.2: exhaustive verification of the Lin protocol\n\n");
  std::printf("%-10s %-8s %12s %14s %10s %8s %8s\n", "nodes", "writes", "states",
              "transitions", "terminals", "depth", "result");

  struct Scope {
    int nodes;
    int writes;
  };
  for (const Scope s : {Scope{2, 2}, Scope{2, 3}, Scope{3, 2}, Scope{3, 3}}) {
    if (bench::Smoke() && s.nodes + s.writes >= 6) {
      continue;  // the 3x3 state space alone dominates the full run
    }
    ModelCheckerConfig cfg;
    cfg.num_nodes = s.nodes;
    cfg.total_writes = s.writes;
    const auto start = std::chrono::steady_clock::now();
    const ModelCheckerResult r = CheckLinProtocol(cfg);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    std::printf("%-10d %-8d %12llu %14llu %10llu %8llu %8s  (%.1fs)\n", s.nodes,
                s.writes, static_cast<unsigned long long>(r.states_explored),
                static_cast<unsigned long long>(r.transitions),
                static_cast<unsigned long long>(r.terminal_states),
                static_cast<unsigned long long>(r.max_depth), r.ok ? "OK" : "FAIL",
                secs);
    if (!r.ok) {
      std::printf("  FAILURE: %s\n", r.failure.c_str());
      return 1;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "sec52 Lin model check n=%d w=%d", s.nodes,
                  s.writes);
    bench::RecordEntry(label,
                       {{"states", static_cast<double>(r.states_explored)},
                        {"transitions", static_cast<double>(r.transitions)},
                        {"terminals", static_cast<double>(r.terminal_states)},
                        {"max_depth", static_cast<double>(r.max_depth)},
                        {"seconds", secs}});
  }
  std::printf("\nverified: data-value invariant, per-node timestamp monotonicity\n"
              "(logical-time SWMR), real-time write ordering, deadlock freedom,\n"
              "and convergence at quiescence — on the production LinEngine code\n");
  return 0;
}
