// §5.2 "Verification": exhaustive model checking of the Lin protocol — and of
// the §4 epoch-transition machinery.
//
// The paper expressed its Lin protocol in Murphi and verified safety (the
// single-writer-multiple-reader and data-value invariants) and deadlock freedom
// with 3 processors, 2 addresses and 2-bit timestamps.  This bench runs our
// checker — which explores every interleaving of the *production* LinEngine —
// at and beyond that scale, and prints the explored state-space size.
// (Per-key protocols make keys independent, so one key covers the 2-address
// Murphi configuration; see tests/verify_test.cc.)
//
// The second table extends the method to epoch transitions: announce, fill,
// write-back, gated direct-shard ops and the install barrier, all against the
// production engines + store::Partition + topk::HotSetManager (the same
// HotSetHost hooks both the simulator and the live rack drive).  Zero
// violations and zero deadlocks across every interleaving of one epoch change
// is the §5.2 claim applied to the transition itself.
//
// JSON entries carry a `violations` field (0 on success); tools/bench_delta.py
// flags any nonzero value — or a shrink in states explored — as a hard
// warning, so CI catches both a broken invariant and an accidentally narrowed
// scope.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/verify/model_checker.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void PrintRow(const char* label, const cckvs::ModelCheckerResult& r, double secs) {
  std::printf("%-26s %12llu %14llu %10llu %8llu %8s  (%.1fs)\n", label,
              static_cast<unsigned long long>(r.states_explored),
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.terminal_states),
              static_cast<unsigned long long>(r.max_depth), r.ok ? "OK" : "FAIL",
              secs);
}

void Record(const char* label, const cckvs::ModelCheckerResult& r, double secs) {
  cckvs::bench::RecordEntry(
      label, {{"states", static_cast<double>(r.states_explored)},
              {"transitions", static_cast<double>(r.transitions)},
              {"terminals", static_cast<double>(r.terminal_states)},
              {"max_depth", static_cast<double>(r.max_depth)},
              {"violations", r.ok ? 0.0 : 1.0},
              {"seconds", secs}});
}

}  // namespace

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  std::printf("Section 5.2: exhaustive verification of the Lin protocol\n\n");
  std::printf("%-26s %12s %14s %10s %8s %8s\n", "scope", "states", "transitions",
              "terminals", "depth", "result");

  struct Scope {
    int nodes;
    int writes;
  };
  for (const Scope s : {Scope{2, 2}, Scope{2, 3}, Scope{3, 2}, Scope{3, 3}}) {
    if (bench::Smoke() && s.nodes + s.writes >= 6) {
      continue;  // the 3x3 state space alone dominates the full run
    }
    ModelCheckerConfig cfg;
    cfg.num_nodes = s.nodes;
    cfg.total_writes = s.writes;
    const auto start = std::chrono::steady_clock::now();
    const ModelCheckerResult r = CheckLinProtocol(cfg);
    const double secs = Seconds(start);
    char label[64];
    std::snprintf(label, sizeof(label), "sec52 Lin model check n=%d w=%d", s.nodes,
                  s.writes);
    PrintRow(label, r, secs);
    Record(label, r, secs);
    if (!r.ok) {
      std::printf("  FAILURE: %s\n", r.failure.c_str());
      return 1;
    }
  }

  std::printf("\nEpoch-transition scopes (announce / fill / write-back / gated "
              "ops / barrier):\n\n");
  std::printf("%-26s %12s %14s %10s %8s %8s\n", "scope", "states", "transitions",
              "terminals", "depth", "result");

  struct TScope {
    int nodes;
    ConsistencyModel model;
    int puts;
    int gets;
  };
  for (const TScope s :
       {TScope{2, ConsistencyModel::kLin, 1, 1},
        TScope{2, ConsistencyModel::kSc, 2, 2},
        TScope{2, ConsistencyModel::kLin, 2, 2},
        TScope{3, ConsistencyModel::kSc, 1, 1},
        TScope{3, ConsistencyModel::kLin, 1, 1},
        TScope{3, ConsistencyModel::kLin, 2, 1}}) {
    // Smoke keeps the bounded 2-node scopes (sub-second) so every CI run
    // model-checks the transition machinery; the 3-node scopes are the full
    // run's depth.
    if (bench::Smoke() && s.nodes >= 3) {
      continue;
    }
    TransitionScopeConfig cfg;
    cfg.num_nodes = s.nodes;
    cfg.model = s.model;
    cfg.puts = s.puts;
    cfg.gets = s.gets;
    const auto start = std::chrono::steady_clock::now();
    const ModelCheckerResult r = CheckEpochTransition(cfg);
    const double secs = Seconds(start);
    char label[80];
    std::snprintf(label, sizeof(label), "sec52 transition %s n=%d p=%d g=%d",
                  ToString(s.model), s.nodes, s.puts, s.gets);
    PrintRow(label, r, secs);
    Record(label, r, secs);
    if (!r.ok) {
      std::printf("  FAILURE: %s\n", r.failure.c_str());
      return 1;
    }
  }

  std::printf(
      "\nverified: data-value invariant, per-node timestamp monotonicity\n"
      "(logical-time SWMR), real-time write ordering, deadlock freedom,\n"
      "and convergence at quiescence — on the production LinEngine code;\n"
      "plus, through every epoch-transition interleaving: per-key\n"
      "linearizability at op completion, gate/barrier settlement, and\n"
      "cache/shard convergence across the hot-set change\n");
  return 0;
}
