// Figure 2: the skew-mitigation design space, executed.
//
//   (a) Baseline, no mitigation      -> Base-EREW (sharded, per-core)
//   (b) Centralized cache            -> CentralCache (one dedicated cache node)
//   (c) NUMA abstraction             -> Base (load-balanced + remote access)
//   (d) Scale-Out ccNUMA             -> ccKVS (symmetric caches + consistency)
//
// The paper argues (a) collapses on the hot shard, (b) is processing-bound on
// the single cache node, (c) is network-bound on remote accesses, and only (d)
// scales cache throughput with the deployment.  This bench measures all four
// under identical load.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 2 (design space): throughput under skew, 9 nodes, alpha=0.99\n\n");
  std::printf("%-28s %10s %10s %10s\n", "architecture", "read-only", "1% writes",
              "hit rate");

  struct Entry {
    const char* label;
    SystemKind kind;
  };
  const Entry entries[] = {
      {"(a) sharded, no mitigation", SystemKind::kBaseErew},
      {"(b) centralized cache", SystemKind::kCentralCache},
      {"(c) NUMA abstraction", SystemKind::kBase},
      {"(d) Scale-Out ccNUMA", SystemKind::kCcKvs},
  };
  for (const Entry& e : entries) {
    RackParams ro = PaperRack(e.kind);
    const RackReport r_ro = RunRack(ro);
    RackParams wr = PaperRack(e.kind);
    wr.workload.write_ratio = 0.01;
    const RackReport r_wr = RunRack(wr);
    std::printf("%-28s %10.1f %10.1f %9.0f%%\n", e.label, r_ro.mrps, r_wr.mrps,
                100.0 * r_ro.hit_rate);
  }
  std::printf("\npaper's argument: (b) cannot scale past one node's processing\n"
              "rate; (c) is network-bound; (d) combines local cache hits with\n"
              "load balance and wins by integer factors\n");
  return 0;
}
