// Figure 12: read-only and 1%-writes throughput while varying object size
// (40B / 256B / 1KB), 9 nodes, alpha = 0.99, no coalescing.
//
// Paper: read-only relative performance is size-independent (ccKVS >3x Base for
// big objects too); with writes, growing the object size shrinks the gap
// between ccKVS-Lin and ccKVS-SC because data payloads dwarf the fixed-size
// invalidation/ack messages.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 12: throughput (MRPS) vs object size, 9 nodes, alpha=0.99\n\n");
  std::printf("%-12s %10s %10s %10s %10s %14s\n", "object", "writes", "Base",
              "ccKVS-SC", "ccKVS-Lin", "Lin/SC ratio");

  for (const double w : {0.0, 0.01}) {
    for (const std::uint32_t size : {40u, 256u, 1024u}) {
      RackParams base = PaperRack(SystemKind::kBase);
      base.workload.value_bytes = size;
      base.workload.write_ratio = w;
      RackParams sc = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
      sc.workload.value_bytes = size;
      sc.workload.write_ratio = w;
      RackParams lin = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
      lin.workload.value_bytes = size;
      lin.workload.write_ratio = w;
      const double base_mrps = RunRack(base).mrps;
      const double sc_mrps = RunRack(sc).mrps;
      const double lin_mrps = RunRack(lin).mrps;
      std::printf("%-12s %9.0f%% %10.1f %10.1f %10.1f %14.3f\n",
                  size == 40 ? "40 B" : size == 256 ? "256 B" : "1 KB", 100.0 * w,
                  base_mrps, sc_mrps, lin_mrps, lin_mrps / sc_mrps);
    }
    std::printf("\n");
  }
  std::printf("paper: with 1%% writes the Lin/SC gap closes as objects grow\n"
              "(invalidations+acks amortize against large payloads)\n");
  return 0;
}
