// Figure 1: load imbalance in a cluster of 128 servers caused by a skewed
// workload with alpha = 0.99 — the server storing the hottest key receives over
// 7x the average load.
//
// Reproduced by sampling the paper's workload (Zipf over 250M keys), sharding
// keys across 128 servers, and reporting per-server load normalized to average.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/store/partitioner.h"
#include "src/workload/workload.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  constexpr int kServers = 128;
  constexpr std::uint64_t kKeys = 250'000'000;
  constexpr double kAlpha = 0.99;
  const int kSamples = bench::Smoke() ? 200'000 : 4'000'000;

  WorkloadConfig wl;
  wl.keyspace = kKeys;
  wl.zipf_alpha = kAlpha;
  WorkloadGenerator gen(wl, 0, 1);
  ModuloPartitioner part(kServers);

  std::vector<std::uint64_t> load(kServers, 0);
  for (int i = 0; i < kSamples; ++i) {
    load[part.HomeOf(gen.Next().key)]++;
  }

  const double avg = static_cast<double>(kSamples) / kServers;
  std::vector<double> normalized;
  normalized.reserve(kServers);
  for (const std::uint64_t l : load) {
    normalized.push_back(static_cast<double>(l) / avg);
  }
  std::sort(normalized.rbegin(), normalized.rend());

  std::printf("Figure 1: load imbalance, %d servers, Zipf alpha=%.2f, %d requests\n",
              kServers, kAlpha, kSamples);
  std::printf("(normalized load, servers sorted by load; paper: hottest > 7x avg)\n\n");
  std::printf("%-24s %12s\n", "servers (sorted)", "norm. load");
  for (int i : {0, 1, 2, 3, 7, 15, 31, 63, 127}) {
    std::printf("server rank %-12d %12.2f\n", i + 1, normalized[static_cast<std::size_t>(i)]);
  }
  std::printf("\nhottest server: %.2fx average (paper: >7x)\n", normalized[0]);
  std::printf("median server:  %.2fx average\n", normalized[kServers / 2]);
  // The hot server's share is p1 + (1-p1)/128 where p1 is the rank-1 mass.
  const double p1 = ZipfPmf(1, kKeys, kAlpha);
  const double predicted = (p1 + (1.0 - p1) / kServers) * kServers;
  std::printf("analytic prediction for hottest: %.2fx average\n", predicted);
  bench::RecordEntry("fig01 load imbalance",
                     {{"hottest_norm_load", normalized[0]},
                      {"median_norm_load", normalized[kServers / 2]},
                      {"predicted_hottest", predicted}});
  return 0;
}
