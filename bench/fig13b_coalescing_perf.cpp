// Figure 13b: performance impact of request coalescing for read-only and 1%
// writes while varying object size.
//
// Paper: with coalescing, small-object (40B) Base reaches ~950 MRPS (>4x its
// uncoalesced self) and ccKVS exceeds 2 BRPS (~3x improvement, >2x coalesced
// Base).  Benefits shrink for large objects (already bandwidth-bound) and on
// the write path (consistency messages are not coalesced).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 13b: throughput (MRPS) with request coalescing, 9 nodes, alpha=0.99\n\n");
  std::printf("%-10s %-10s %10s %12s %12s\n", "writes", "object", "Base", "ccKVS-SC",
              "ccKVS-Lin");

  double base40 = 0;
  double cc40 = 0;
  for (const double w : {0.0, 0.01}) {
    for (const std::uint32_t size : {40u, 256u, 1024u}) {
      RackParams base = PaperRack(SystemKind::kBase);
      base.coalescing = true;
      base.window_per_node = 2048;
      base.workload.value_bytes = size;
      base.workload.write_ratio = w;
      RackParams sc = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
      sc.coalescing = true;
      sc.window_per_node = 2048;
      sc.workload.value_bytes = size;
      sc.workload.write_ratio = w;
      RackParams lin = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
      lin.coalescing = true;
      lin.window_per_node = 2048;
      lin.workload.value_bytes = size;
      lin.workload.write_ratio = w;
      const double base_mrps = RunRack(base).mrps;
      const double sc_mrps = RunRack(sc).mrps;
      const double lin_mrps = RunRack(lin).mrps;
      std::printf("%-10.0f %-10s %10.1f %12.1f %12.1f\n", 100.0 * w,
                  size == 40 ? "40 B" : size == 256 ? "256 B" : "1 KB", base_mrps,
                  sc_mrps, lin_mrps);
      if (w == 0.0 && size == 40) {
        base40 = base_mrps;
        cc40 = sc_mrps;
      }
    }
    std::printf("\n");
  }
  PrintHeaderRule();
  std::printf("read-only 40B: ccKVS/Base = %.2fx (paper: >2x); paper magnitudes:\n"
              "Base ~950 MRPS, ccKVS >2000 MRPS\n", cc40 / base40);
  return 0;
}
