// Figure 13b: performance impact of request coalescing for read-only and 1%
// writes while varying object size.
//
// Paper: with coalescing, small-object (40B) Base reaches ~950 MRPS (>4x its
// uncoalesced self) and ccKVS exceeds 2 BRPS (~3x improvement, >2x coalesced
// Base).  Benefits shrink for large objects (already bandwidth-bound) and on
// the write path (consistency messages are not coalesced).
//
// The live section measures the same on/off axis on the in-process fabric at
// 8 nodes: there the coalesced unit is the consistency broadcast (live misses
// never touch the channels), so the benefit *grows* with write ratio instead
// of shrinking — the inverse of the paper's miss-RPC effect, for the reason
// the paper itself gives (only what rides the fabric can amortize).

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 13b: throughput (MRPS) with request coalescing, 9 nodes, alpha=0.99\n\n");
  std::printf("%-10s %-10s %10s %12s %12s\n", "writes", "object", "Base", "ccKVS-SC",
              "ccKVS-Lin");

  double base40 = 0;
  double cc40 = 0;
  for (const double w : {0.0, 0.01}) {
    for (const std::uint32_t size : {40u, 256u, 1024u}) {
      RackParams base = PaperRack(SystemKind::kBase);
      base.coalescing = true;
      base.window_per_node = 2048;
      base.workload.value_bytes = size;
      base.workload.write_ratio = w;
      RackParams sc = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
      sc.coalescing = true;
      sc.window_per_node = 2048;
      sc.workload.value_bytes = size;
      sc.workload.write_ratio = w;
      RackParams lin = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
      lin.coalescing = true;
      lin.window_per_node = 2048;
      lin.workload.value_bytes = size;
      lin.workload.write_ratio = w;
      const double base_mrps = RunRack(base).mrps;
      const double sc_mrps = RunRack(sc).mrps;
      const double lin_mrps = RunRack(lin).mrps;
      std::printf("%-10.0f %-10s %10.1f %12.1f %12.1f\n", 100.0 * w,
                  size == 40 ? "40 B" : size == 256 ? "256 B" : "1 KB", base_mrps,
                  sc_mrps, lin_mrps);
      if (w == 0.0 && size == 40) {
        base40 = base_mrps;
        cc40 = sc_mrps;
      }
    }
    std::printf("\n");
  }
  PrintHeaderRule();
  std::printf("read-only 40B: ccKVS/Base = %.2fx (paper: >2x); paper magnitudes:\n"
              "Base ~950 MRPS, ccKVS >2000 MRPS\n", cc40 / base40);

  PrintHeaderRule();
  std::printf("live fabric, 8 nodes: transport coalescing on/off (Mops/s)\n\n");
  std::printf("%-10s %-8s %12s %12s %10s\n", "writes", "model", "off", "on",
              "speedup");
  for (const double w : {0.05, 0.20}) {
    for (const ConsistencyModel model :
         {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
      double mops[2] = {};
      for (const bool coalesce : {false, true}) {
        LiveRackParams lp = LiveCoalescingRack(model, coalesce,
                                               Smoke() ? 15'000 : 150'000);
        lp.workload.write_ratio = w;
        char label[64];
        std::snprintf(label, sizeof(label), "live %s wr=%.2f coalescing=%s",
                      ToString(model), w, coalesce ? "on" : "off");
        mops[coalesce ? 1 : 0] = RunLive(lp, label).rack.mrps;
      }
      std::printf("%-10.0f %-8s %12.2f %12.2f %9.2fx\n", 100.0 * w,
                  ToString(model), mops[0], mops[1],
                  mops[0] > 0 ? mops[1] / mops[0] : 0.0);
    }
  }
  std::printf("\nexpected live shape: speedup > 1 and growing with write ratio\n"
              "(more broadcasts per op to amortize); Lin gains most (inv+ack+upd)\n");
  return 0;
}
