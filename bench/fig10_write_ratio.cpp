// Figure 10: sensitivity to write ratio (0-5%), 9 nodes, alpha = 0.99.
//
// Paper: the baselines are write-ratio-insensitive (network-bound either way);
// ccKVS-SC/Lin decline as consistency traffic eats bandwidth but still beat
// Base at 5% writes; at the Facebook-like 0.2% both are within 3% of read-only;
// at 1% writes ccKVS-SC is ~2.5x and ccKVS-Lin ~2.2x Base.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 10: throughput (MRPS) vs write ratio, 9 nodes, alpha=0.99\n\n");
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "write %", "Uniform", "Base-EREW",
              "Base", "ccKVS-SC", "ccKVS-Lin");

  const double uniform = RunRack(UniformRack()).mrps;
  // Baselines are insensitive to the write ratio (same message sizes both
  // directions, §8.2): measure once.
  const double erew = RunRack(PaperRack(SystemKind::kBaseErew)).mrps;
  const double base = RunRack(PaperRack(SystemKind::kBase)).mrps;

  double sc_at_1 = 0;
  double lin_at_1 = 0;
  double sc_at_0 = 0;
  double lin_at_0 = 0;
  for (const double w : {0.0, 0.002, 0.01, 0.02, 0.03, 0.04, 0.05}) {
    RackParams sc = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
    sc.workload.write_ratio = w;
    RackParams lin = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
    lin.workload.write_ratio = w;
    const double sc_mrps = RunRack(sc).mrps;
    const double lin_mrps = RunRack(lin).mrps;
    std::printf("%-10.1f %10.1f %10.1f %10.1f %10.1f %10.1f%s\n", 100.0 * w, uniform,
                erew, base, sc_mrps, lin_mrps,
                w == 0.002 ? "   <- 0.2% (Facebook)" : "");
    if (w == 0.0) {
      sc_at_0 = sc_mrps;
      lin_at_0 = lin_mrps;
    }
    if (w == 0.01) {
      sc_at_1 = sc_mrps;
      lin_at_1 = lin_mrps;
    }
  }

  PrintHeaderRule();
  std::printf("at 1%% writes: SC/Base = %.2fx (paper 2.5x), Lin/Base = %.2fx (paper 2.2x)\n",
              sc_at_1 / base, lin_at_1 / base);
  std::printf("read-only reference: SC %.1f, Lin %.1f MRPS\n", sc_at_0, lin_at_0);
  return 0;
}
