// Live rack vs. simulator: measured Mops/s on real threads next to the
// discrete-event prediction for the same configuration.
//
// The two numbers answer different questions and are NOT expected to match:
// the simulator models a 9-node RDMA rack (54 Gb/s links, NIC and CPU service
// times), while the live rack executes the same store/cache/protocol code
// in-process, where "the network" is a memory channel.  What should line up
// is structure: hit rates agree (same workload, same hot set), SC outruns Lin
// (no invalidation round-trip), and consistency-message ratios match the
// protocol.  Divergence in those shapes — not in absolute Mops — is the
// regression signal; the bench-smoke JSON artifact tracks both PR-to-PR.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/live_rack.h"

int main(int argc, char** argv) {
  using namespace cckvs;
  using namespace cckvs::bench;
  Init(argc, argv);

  const int kNodes = 4;
  WorkloadConfig wl;
  wl.keyspace = 1'000'000;
  wl.zipf_alpha = 0.99;
  wl.write_ratio = 0.05;
  wl.value_bytes = 40;
  const std::size_t kCacheCapacity = 1000;  // 0.1% of the dataset, as in §7.1

  std::printf("Live rack vs. simulator, %d nodes, 1M keys, 0.1%% cache, 5%% writes\n\n",
              kNodes);
  std::printf("%-8s %14s %14s %12s %12s %14s\n", "model", "live Mops/s",
              "sim MRPS", "live hit%", "sim hit%", "live upd+inv");

  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams lp;
    lp.num_nodes = kNodes;
    lp.consistency = model;
    lp.workload = wl;
    lp.cache_capacity = kCacheCapacity;
    lp.ops_per_node = Smoke() ? 40'000 : 500'000;
    lp.seed = 42;
    LiveRack live(lp);
    const LiveReport lr = live.Run();

    RackParams sp;
    sp.kind = SystemKind::kCcKvs;
    sp.consistency = model;
    sp.num_nodes = kNodes;
    sp.workload = wl;
    sp.cache_capacity = kCacheCapacity;
    sp.seed = 42;
    const RackReport sr = RunRack(sp);

    std::printf("%-8s %14.2f %14.2f %11.1f%% %11.1f%% %14llu\n", ToString(model),
                lr.rack.mrps, sr.mrps, 100.0 * lr.rack.hit_rate, 100.0 * sr.hit_rate,
                static_cast<unsigned long long>(lr.rack.updates_sent +
                                                lr.rack.invalidations_sent));

    RecordEntry(std::string("live ccKVS/") + ToString(model), LiveReportFields(lr));
  }

  PrintHeaderRule();
  std::printf("structure checks: SC > Lin live throughput, hit rates within a few\n"
              "points of the sim, updates+invalidations proportional to writes.\n");
  return 0;
}
