// Live rack vs. simulator: measured Mops/s on real threads next to the
// discrete-event prediction for the same configuration — now with the
// transport-coalescing axis (§8.5's live analogue, runtime/coalescer.h).
//
// The two numbers answer different questions and are NOT expected to match:
// the simulator models a 9-node RDMA rack (54 Gb/s links, NIC and CPU service
// times), while the live rack executes the same store/cache/protocol code
// in-process, where "the network" is a memory channel.  What should line up
// is structure: hit rates agree (same workload, same hot set), SC outruns Lin
// (no invalidation round-trip), consistency-message ratios match the
// protocol, and coalescing helps both fabrics — the sim by amortizing packet
// headers, the live rack by amortizing channel pushes and receiver wakeups.
// Divergence in those shapes — not in absolute Mops — is the regression
// signal; the bench-smoke JSON artifact tracks both PR-to-PR.
//
// Flags (besides the bench_util.h standard --smoke/--json=PATH):
//   --coalescing=off|on|both   restrict the live sweep to one coalescing
//                              config (CI runs off and on as separate jobs so
//                              both land in the artifact); default both.
//   --transport=inproc|shm|socket
//                              fabric backend for the live racks (default
//                              inproc).  shm/socket route every cross-node
//                              message through serialized WireBatch frames in
//                              a shared-memory ring / a UDS stream, so the
//                              delta against inproc prices the wire.
//   --pin                      pin each node thread to its own core
//                              (LiveRackParams::pinning; modulo nproc).
//   --busy-poll                spin instead of parking when a node idles
//                              (LiveRackParams::busy_poll).
//   --profile-csv=PATH         run the per-second profiler thread on every
//                              rack and append its per-node counter CSV to
//                              PATH (runtime/profiler.h; CI uploads this as
//                              an artifact next to the JSON).
//   --trace=PATH               run a traced/untraced SC pair after the sweep
//                              (runtime/tracing.h): the traced rack writes a
//                              Chrome trace-event JSON to PATH and the bench
//                              prints the tracing overhead in Mops/s; the JSON
//                              artifact gains a trace_overhead_pct field that
//                              tools/bench_delta.py hard-warns on above 5%.
//                              Also arms tracing inside the zero-alloc audit
//                              (trace written to PATH.zeroalloc), proving the
//                              span rings allocate nothing in steady state.
//   --trace-sample=N           trace 1 op in N (default 64).
//   --l1=off|on|N              arm the per-node L1 tail cache (cache/l1_tail.h)
//                              on every live rack in the sweep: `on` uses 4096
//                              entries, a number sets the capacity directly
//                              (default off).  CI runs off and on as separate
//                              jobs so the artifact pair prices the tier.
//   --l1-policy=lru|clock|lfu  L1 replacement policy (default lru).
//
// Independent of --l1, the bench always runs a per-node-skew L1 pair: a
// 4-process shm rack (the bench re-execs itself with --cckvs-join per rank,
// as tools/run_multiproc.sh does) under a strided workload
// (node_rank_stride rotates each node's zipf ranks, so nodes agree on little
// of their tails) with the L1 off and then on.  Separate processes matter
// here: a shared-cache miss must cost a real serialized RPC into another
// address space — an in-process rack underprices that miss to a function
// call, which no private tier can beat.  The L1-on JSON entry carries both
// racks' whole-rack Mops/s (`rack_mrps`, `l1_off_mrps`), the pair
// tools/bench_delta.py hard-warns on when the tier stops paying for itself.
//
// The final section is the zero-allocation audit (docs/PERFORMANCE.md): an
// SC rack with the whole store prefilled runs with the allocation tracker
// armed and CCKVS_CHECKs that the steady state performed zero operator-new
// calls on any node thread.  It always uses the inproc fabric — the audit is
// about the messaging/run-loop layers, which are shared by all backends.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/live_rack.h"
#include "src/runtime/multiproc.h"

namespace {

// Each rack gets a fresh kernel namespace: shm segments and socket paths must
// not collide across the sweep's racks (teardown unlinks, but stale names from
// a crashed previous run must not bite either).
cckvs::TransportOptions SweepTransport(cckvs::TransportKind kind) {
  static int counter = 0;
  cckvs::TransportOptions t;
  t.kind = kind;
  const std::string ns =
      std::to_string(getpid()) + "_" + std::to_string(counter++);
  t.shm_name = "/cckvs_bench_" + ns;
  t.socket_path_base = "/tmp/cckvs_bench_" + ns;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cckvs;
  using namespace cckvs::bench;
  if (argc == 4 && std::strcmp(argv[1], "--cckvs-join") == 0) {
    // Child rank of the L1 pair's 4-process rack: decode the param blob, run
    // one rank, drop the artifact for the parent.  Same protocol as
    // tests/multiproc_rack_test.cc and tools/run_multiproc.sh.
    LiveRackParams params;
    std::string error;
    if (!DecodeRackParams(argv[2], &params, &error)) {
      std::fprintf(stderr, "join: %s\n", error.c_str());
      return 2;
    }
    LiveRack rack(params);
    const LiveReport report = rack.Run();
    RankArtifacts artifacts;
    artifacts.completed = report.completed;
    artifacts.rpcs_sent = report.rpcs_sent;
    artifacts.transport_error = report.transport_error;
    if (!SaveRankArtifacts(argv[3], artifacts, &error)) {
      std::fprintf(stderr, "join: %s\n", error.c_str());
      return 2;
    }
    return report.ok() ? 0 : 1;
  }
  Init(argc, argv);

  bool run_off = true;
  bool run_on = true;
  bool pin = false;
  bool busy_poll = false;
  std::string profile_csv;
  std::string trace_path;
  std::uint64_t trace_sample = 64;
  std::uint64_t l1_capacity = 0;
  L1Policy l1_policy = L1Policy::kLru;
  TransportKind transport = TransportKind::kInproc;
  const char* transport_name = "inproc";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--coalescing=off") == 0) {
      run_on = false;
    } else if (std::strcmp(argv[i], "--coalescing=on") == 0) {
      run_off = false;
    } else if (std::strcmp(argv[i], "--transport=shm") == 0) {
      transport = TransportKind::kShm;
      transport_name = "shm";
    } else if (std::strcmp(argv[i], "--transport=socket") == 0) {
      transport = TransportKind::kSocket;
      transport_name = "socket";
    } else if (std::strcmp(argv[i], "--transport=inproc") == 0) {
      transport = TransportKind::kInproc;
      transport_name = "inproc";
    } else if (std::strcmp(argv[i], "--pin") == 0) {
      pin = true;
    } else if (std::strcmp(argv[i], "--busy-poll") == 0) {
      busy_poll = true;
    } else if (std::strncmp(argv[i], "--profile-csv=", 14) == 0) {
      profile_csv = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--trace-sample=", 15) == 0) {
      trace_sample = std::strtoull(argv[i] + 15, nullptr, 10);
    } else if (std::strncmp(argv[i], "--l1=", 5) == 0) {
      const char* v = argv[i] + 5;
      if (std::strcmp(v, "off") == 0) {
        l1_capacity = 0;
      } else if (std::strcmp(v, "on") == 0) {
        l1_capacity = 4096;
      } else {
        l1_capacity = std::strtoull(v, nullptr, 10);
      }
    } else if (std::strncmp(argv[i], "--l1-policy=", 12) == 0) {
      if (!ParseL1Policy(argv[i] + 12, &l1_policy)) {
        std::fprintf(stderr, "unknown --l1-policy (want lru|clock|lfu)\n");
        return 2;
      }
    }
  }

  // Applies the run-loop flags to one rack config.  Profiler CSVs get a
  // per-rack suffix so the sweep's racks don't clobber one file.
  int rack_seq = 0;
  const auto ApplyLoopFlags = [&](LiveRackParams* lp) {
    lp->pinning = pin;
    lp->busy_poll = busy_poll;
    lp->l1_capacity = l1_capacity;
    lp->l1_policy = l1_policy;
    if (!profile_csv.empty()) {
      lp->profile = true;
      lp->profile_csv_path = profile_csv + "." + std::to_string(rack_seq++);
    }
  };
  // L1-armed runs get distinct labels so bench_delta.py never diffs a run
  // that has a private tier against one that doesn't.
  const std::string l1_label =
      l1_capacity == 0 ? ""
                       : " l1=" + std::to_string(l1_capacity) + "/" +
                             ToString(l1_policy);

  const int kNodes = 8;
  const std::uint64_t ops = Smoke() ? 25'000 : 400'000;

  std::printf("Live rack, %d nodes, 1M keys, 0.1%% cache, 5%% writes, window 32, "
              "transport=%s%s%s\n", kNodes, transport_name,
              pin ? " pinned" : "", busy_poll ? " busy-poll" : "");
  std::printf("(sim prediction: 9-node RDMA rack at the same workload)\n\n");
  std::printf("%-8s %-6s %12s %10s %10s %10s %10s %10s\n", "model", "coal",
              "live Mops/s", "hit%", "msgs", "batches", "avg B", "wakeups");

  double mops[2][2] = {};  // [model][coalescing]
  int mi = 0;
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    for (const bool coalesce : {false, true}) {
      if ((coalesce && !run_on) || (!coalesce && !run_off)) {
        continue;
      }
      LiveRackParams lp = LiveCoalescingRack(model, coalesce, ops);
      lp.transport = SweepTransport(transport);
      ApplyLoopFlags(&lp);
      // Pin/busy-poll runs get distinct labels so bench_delta.py never
      // compares a parked run against a spinning one.
      const LiveReport lr =
          RunLive(lp, std::string("live ccKVS/") + ToString(model) +
                          " coalescing=" + (coalesce ? "on" : "off") +
                          " transport=" + transport_name + l1_label +
                          (pin ? " pin" : "") + (busy_poll ? " busy-poll" : ""));
      mops[mi][coalesce ? 1 : 0] = lr.rack.mrps;
      std::printf("%-8s %-6s %12.2f %9.1f%% %10llu %10llu %10.1f %10llu\n",
                  ToString(model), coalesce ? "on" : "off", lr.rack.mrps,
                  100.0 * lr.rack.hit_rate,
                  static_cast<unsigned long long>(lr.channel_messages),
                  static_cast<unsigned long long>(lr.channel_batches),
                  lr.batch_sizes.count() == 0 ? 0.0 : lr.batch_sizes.Mean(),
                  static_cast<unsigned long long>(lr.wakeups));
    }
    ++mi;
  }

  PrintHeaderRule();
  std::printf("sim prediction at the same workload (9 nodes, coalescing on/off):\n");
  std::printf("%-8s %-6s %12s %10s\n", "model", "coal", "sim MRPS", "hit%");
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    for (const bool coalesce : {false, true}) {
      if ((coalesce && !run_on) || (!coalesce && !run_off)) {
        continue;  // keep the CI artifacts disjoint: one sim config per flag
      }
      RackParams sp;
      sp.kind = SystemKind::kCcKvs;
      sp.consistency = model;
      sp.num_nodes = 9;
      sp.workload.keyspace = 1'000'000;
      sp.workload.zipf_alpha = 0.99;
      sp.workload.write_ratio = 0.05;
      sp.workload.value_bytes = 40;
      sp.cache_capacity = 1'000;
      sp.coalescing = coalesce;
      sp.seed = 42;
      const RackReport sr = RunRack(sp, coalesce ? "coalescing=on" : "coalescing=off");
      std::printf("%-8s %-6s %12.2f %9.1f%%\n", ToString(model),
                  coalesce ? "on" : "off", sr.mrps, 100.0 * sr.hit_rate);
    }
  }

  if (run_on) {
    // Deadline-based flush sweep (ROADMAP "adaptive coalescing flush"): hold
    // sub-cap batches up to N µs past the op boundary.  Expect avg batch size
    // to grow with the deadline while Mops/s trades against op latency.
    PrintHeaderRule();
    std::printf("deadline-flush sweep (SC, coalescing on; 0 = flush every boundary):\n");
    std::printf("%-12s %12s %10s %10s %12s %12s\n", "deadline_us", "live Mops/s",
                "avg B", "p99 us", "fl_deadline", "fl_boundary");
    for (const std::uint64_t deadline_us : {0ull, 5ull, 20ull, 50ull}) {
      LiveRackParams lp = LiveCoalescingRack(ConsistencyModel::kSc, true, ops);
      lp.transport = SweepTransport(transport);
      ApplyLoopFlags(&lp);
      lp.coalesce_flush_deadline_us = deadline_us;
      char label[128];
      std::snprintf(label, sizeof(label),
                    "live ccKVS/SC coalescing=on deadline_us=%llu transport=%s%s%s%s",
                    static_cast<unsigned long long>(deadline_us), transport_name,
                    l1_label.c_str(), pin ? " pin" : "",
                    busy_poll ? " busy-poll" : "");
      const LiveReport lr = RunLive(lp, label);
      std::printf("%-12llu %12.2f %10.1f %10.1f %12llu %12llu\n",
                  static_cast<unsigned long long>(deadline_us), lr.rack.mrps,
                  lr.batch_sizes.count() == 0 ? 0.0 : lr.batch_sizes.Mean(),
                  lr.rack.p99_latency_us,
                  static_cast<unsigned long long>(lr.flushes_deadline),
                  static_cast<unsigned long long>(lr.flushes_boundary));
    }
  }

  {
    // Per-node-skew L1 pair (tentpole measurement, docs/ARCHITECTURE.md
    // "hierarchical caching").  node_rank_stride rotates each node's zipf
    // rank order, so the nodes agree on the global head (which the shared
    // symmetric cache keeps) but each has a private warm tail the shared tier
    // cannot hold for everyone.  The L1 absorbs exactly that tail.
    //
    // The pair runs FOUR PROCESSES over shm (ranks re-exec this binary with
    // --cckvs-join), busy-polling, because that is where the tier's economics
    // are real: a shared-cache miss serializes a WireBatch into another
    // address space and waits for the owner process to poll, decode, and
    // answer.  An in-process rack on the sweep's fabric underprices that
    // miss to a few cache-line reads, which no private tier can beat.
    // Off → on at the same workload prices the tier; the on-entry's JSON
    // carries both whole-rack rates (`rack_mrps`, `l1_off_mrps`) so
    // tools/bench_delta.py can hard-warn the moment the tier stops winning.
    PrintHeaderRule();
    const std::uint64_t l1_cap = l1_capacity == 0 ? 4096 : l1_capacity;
    const int pair_nodes = 4;
    const std::uint64_t pair_ops = Smoke() ? 40'000 : 100'000;
    std::printf("per-node-skew L1 pair (4-process shm rack, busy-poll, "
                "stride-rotated zipf ranks, L1 %llu/%s):\n",
                static_cast<unsigned long long>(l1_cap), ToString(l1_policy));
    std::printf("%-6s %12s %10s %10s %10s %10s %10s\n", "l1",
                "rack Mops/s", "r0 hit%", "l1 hits", "l1 fills", "l1 inval",
                "r0 rpcs");
    double off_mrps = 0.0;
    for (const bool l1_on : {false, true}) {
      LiveRackParams lp;
      lp.num_nodes = pair_nodes;
      lp.consistency = ConsistencyModel::kSc;
      // A tighter keyspace than the sweep's 1M: each node's private warm
      // tail must be revisited often enough to earn its L1 slots (admission
      // wants two proven sightings) within the run.
      lp.workload.keyspace = 100'000;
      lp.workload.zipf_alpha = 0.99;
      lp.workload.write_ratio = 0.05;
      lp.workload.value_bytes = 40;
      lp.workload.node_rank_stride = lp.workload.keyspace / 16;
      lp.cache_capacity = 1'000;
      lp.window_per_node = 32;
      lp.ops_per_node = pair_ops;
      lp.coalescing = true;
      lp.seed = 42;
      lp.busy_poll = true;  // parked 4-proc racks measure wakeup chains
      lp.l1_capacity = l1_on ? l1_cap : 0;
      lp.l1_policy = l1_policy;
      lp.transport = SweepTransport(TransportKind::kShm);
      lp.clock_epoch_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
      std::vector<pid_t> children;
      std::vector<std::string> artifacts;
      bool spawn_ok = true;
      for (int rank = 1; rank < pair_nodes && spawn_ok; ++rank) {
        LiveRackParams child = lp;
        child.transport.rank = rank;
        std::string error;
        artifacts.push_back(lp.transport.socket_path_base + ".rank" +
                            std::to_string(rank) + ".bin");
        const pid_t pid = SpawnSelf(
            {"--cckvs-join", EncodeRackParams(child), artifacts.back()},
            &error);
        if (pid < 0) {
          std::fprintf(stderr, "l1 pair: spawn failed: %s\n", error.c_str());
          spawn_ok = false;
          break;
        }
        children.push_back(pid);
      }
      lp.transport.rank = 0;
      LiveRack rack(lp);
      const LiveReport lr = rack.Run();
      bool ranks_ok = spawn_ok && lr.ok();
      for (const pid_t pid : children) {
        int code = -1;
        std::string error;
        if (!WaitExit(pid, &code, &error) || code != 0) {
          ranks_ok = false;
        }
      }
      for (const std::string& path : artifacts) {
        ::unlink(path.c_str());
      }
      if (!ranks_ok) {
        std::fprintf(stderr, "l1 pair: rack unhealthy, skipping entry\n");
        continue;
      }
      // Whole-rack rate: every rank runs the same quota and termination is
      // collective, so rank 0's wall clock covers all four ranks' ops.
      const double rack_mrps =
          lr.wall_seconds > 0.0
              ? static_cast<double>(pair_nodes) * static_cast<double>(pair_ops) /
                    lr.wall_seconds / 1e6
              : 0.0;
      char label[128];
      std::snprintf(label, sizeof(label),
                    "live ccKVS/SC node-skew 4proc-shm l1=%s/%s",
                    l1_on ? "on" : "off", ToString(l1_policy));
      auto fields = LiveReportFields(lr);
      fields.emplace_back("rack_mrps", rack_mrps);
      if (l1_on) {
        fields.emplace_back("l1_off_mrps", off_mrps);
      } else {
        off_mrps = rack_mrps;
      }
      RecordEntry(label, std::move(fields));
      std::printf("%-6s %12.2f %9.1f%% %10llu %10llu %10llu %10llu\n",
                  l1_on ? "on" : "off", rack_mrps, 100.0 * lr.rack.hit_rate,
                  static_cast<unsigned long long>(lr.rack.l1_hits),
                  static_cast<unsigned long long>(lr.rack.l1_fills),
                  static_cast<unsigned long long>(lr.rack.l1_invalidations),
                  static_cast<unsigned long long>(lr.rpcs_sent));
    }
    if (off_mrps > 0.0) {
      std::printf("(l1_off_mrps recorded on the on-entry; bench_delta.py "
                  "hard-warns if on < off)\n");
    }
  }

  if (!trace_path.empty()) {
    // Tracing overhead: the same SC coalescing rack back to back, untraced
    // then traced.  Emit() is a sampled ring store, so the delta should sit
    // well under bench_delta.py's 5% hard-warning threshold; the traced run's
    // span file doubles as the inspectable artifact (tools/trace_report.py).
    PrintHeaderRule();
    LiveRackParams base = LiveCoalescingRack(ConsistencyModel::kSc, true, ops);
    base.transport = SweepTransport(transport);
    base.pinning = pin;
    base.busy_poll = busy_poll;
    LiveRackParams traced = base;
    traced.transport = SweepTransport(transport);
    traced.trace_path = trace_path;
    traced.trace_sample = trace_sample;
    const LiveReport lr_off = RunLive(base, "live ccKVS/SC trace-pair untraced");
    const LiveReport lr_on = RunLive(traced, "live ccKVS/SC trace-pair traced");
    const double overhead_pct =
        lr_off.rack.mrps > 0.0
            ? 100.0 * (lr_off.rack.mrps - lr_on.rack.mrps) / lr_off.rack.mrps
            : 0.0;
    std::printf("tracing overhead (SC, coalescing on, sample 1/%llu):\n",
                static_cast<unsigned long long>(trace_sample));
    std::printf("  untraced %.2f Mops/s, traced %.2f Mops/s, overhead %.1f%%\n",
                lr_off.rack.mrps, lr_on.rack.mrps, overhead_pct);
    std::printf("  spans recorded %llu (dropped %llu), trace: %s\n",
                static_cast<unsigned long long>(lr_on.spans_recorded),
                static_cast<unsigned long long>(lr_on.spans_dropped),
                trace_path.c_str());
    if (!lr_on.trace_error.empty()) {
      std::fprintf(stderr, "trace export: %s\n", lr_on.trace_error.c_str());
    }
    RecordEntry("live ccKVS/SC tracing overhead",
                {{"trace_overhead_pct", overhead_pct},
                 {"mrps_untraced", lr_off.rack.mrps},
                 {"mrps_traced", lr_on.rack.mrps},
                 {"spans_recorded", static_cast<double>(lr_on.spans_recorded)},
                 {"spans_dropped", static_cast<double>(lr_on.spans_dropped)}});
  }

  {
    // Zero-allocation steady-state audit.  SC only: Lin's pending-write map
    // churns per write by design.  prefill_store materializes all 64K keys up
    // front so no steady-state PUT inserts, and track_allocs arms the
    // per-thread operator-new counter inside each node's steady-state window
    // (opened at quota/4, closed at quiescence).  alloc_assert turns a nonzero
    // count into a CCKVS_CHECK failure — the bench aborts rather than print a
    // regressed row.  The profiler runs too so the audit also exercises the
    // counter-publishing path it claims is allocation-free.
    PrintHeaderRule();
    LiveRackParams lp;
    lp.num_nodes = 4;
    lp.consistency = ConsistencyModel::kSc;
    lp.workload.keyspace = 65'536;  // small enough to prefill in milliseconds
    lp.workload.zipf_alpha = 0.99;
    lp.workload.write_ratio = 0.05;
    lp.workload.value_bytes = 40;
    lp.cache_capacity = 1'000;
    lp.window_per_node = 32;
    lp.ops_per_node = Smoke() ? 25'000 : 200'000;
    lp.coalescing = true;
    lp.seed = 42;
    lp.transport.kind = TransportKind::kInproc;  // audit targets shared layers
    // The L1 tier and its admission sketch run inside the audited window —
    // strided ranks make the tier actually fill and serve, so a hot-path
    // allocation hiding in the probe/fill/invalidate paths aborts the bench.
    lp.l1_capacity = 128;
    lp.l1_policy = l1_policy;
    lp.workload.node_rank_stride = 1'000;
    lp.prefill_store = true;
    lp.track_allocs = true;
    lp.alloc_assert = true;
    lp.profile = true;
    lp.profile_interval_ms = Smoke() ? 20 : 250;
    if (!profile_csv.empty()) {
      lp.profile_csv_path = profile_csv + ".zeroalloc";
    }
    if (!trace_path.empty()) {
      // Tracing inside the audited window: alloc_assert proves the span
      // rings and sampler allocate nothing in the steady state.
      lp.trace_path = trace_path + ".zeroalloc";
      lp.trace_sample = trace_sample;
    }
    lp.pinning = pin;
    lp.busy_poll = busy_poll;
    const LiveReport lr = RunLive(
        lp, std::string("live ccKVS/SC zero-alloc audit") +
                (pin ? " pin" : "") + (busy_poll ? " busy-poll" : ""));
    std::printf("zero-alloc audit (SC, inproc, prefilled store, L1 armed, "
                "%llu ops/node):\n",
                static_cast<unsigned long long>(lp.ops_per_node));
    std::printf("  steady-state hot-path allocs: %llu (invariant: 0), "
                "l1 hits inside the window: %llu\n",
                static_cast<unsigned long long>(lr.hot_path_allocs),
                static_cast<unsigned long long>(lr.rack.l1_hits));
    std::printf("  profiler samples: %zu, live Mops/s: %.2f, p99: %.1f us\n",
                lr.profiler_samples.size(), lr.rack.mrps,
                lr.rack.p99_latency_us);
  }

  PrintHeaderRule();
  if (run_off && run_on) {
    std::printf("coalescing speedup: SC %.2fx, Lin %.2fx (sim predicts both gain;\n"
                "live gain comes from push/wakeup amortization, not headers)\n",
                mops[0][0] > 0 ? mops[0][1] / mops[0][0] : 0.0,
                mops[1][0] > 0 ? mops[1][1] / mops[1][0] : 0.0);
  }
  std::printf("structure checks: SC > Lin live throughput, hit rates within a few\n"
              "points of the sim, updates+invalidations proportional to writes.\n");
  return 0;
}
