// Ablations for the design choices the paper discusses but does not chart:
//
//  (a) CRCW vs EREW KVS inside ccKVS (§6.4: CRCW wins ~10% by cutting the
//      cache-thread/KVS-thread connection count).
//  (b) RDMA multicast vs software broadcast for SC updates (§6.3: multicast
//      does not help — the receive side, not the send side, is the bottleneck).
//  (c) Credit-update batching (§6.4: batched header-only credits make flow
//      control negligible).
//  (d) Symmetric-cache size sweep (how much cache buys how much throughput).
//  (e) L1 tail-cache replacement policy (LRU vs CLOCK vs LFU) on the live
//      rack under per-node-skewed zipf — which policy holds each node's
//      private warm tail best (docs/ARCHITECTURE.md "hierarchical caching").

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Design-choice ablations, 9 nodes, alpha=0.99\n\n");

  {
    // The EREW penalty is extra connections: every remote cache thread needs a
    // QP per KVS thread, and the wider CQ sweep costs CPU (§6.4).  The effect
    // shows where CPU headroom matters, so measure with coalescing on (the
    // network-bound uncoalesced regime hides any CPU-side difference).
    std::printf("(a) KVS concurrency model inside ccKVS (read-only, coalescing):\n");
    RackParams crcw = PaperRack(SystemKind::kCcKvs);
    crcw.coalescing = true;
    RackParams erew = crcw;
    erew.kvs_erew = true;
    const double crcw_mrps = RunRack(crcw).mrps;
    const double erew_mrps = RunRack(erew).mrps;
    std::printf("    CRCW %.1f MRPS | EREW %.1f MRPS | CRCW/EREW = %.2fx "
                "(paper: ~1.10x from fewer connections)\n\n",
                crcw_mrps, erew_mrps, crcw_mrps / erew_mrps);
  }

  {
    // Deep window so both variants run at capacity rather than being paced by
    // closed-loop latency; the question is whether multicast raises capacity.
    std::printf("(b) SC update broadcast mechanism (5%% writes):\n");
    RackParams unicast = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
    unicast.workload.write_ratio = 0.05;
    unicast.window_per_node = 1024;
    RackParams multicast = unicast;
    multicast.multicast_updates = true;
    const double uni = RunRack(unicast).mrps;
    const double multi = RunRack(multicast).mrps;
    std::printf("    software broadcast %.1f MRPS | RDMA multicast %.1f MRPS "
                "(paper: no benefit / slight decrease; the receive side and the\n"
                "    switch's multicast replication overhead bind)\n\n",
                uni, multi);
  }

  {
    std::printf("(c) credit-update batching (Lin, 5%% writes):\n");
    for (const int batch : {1, 4, 8, 16}) {
      RackParams p = PaperRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
      p.workload.write_ratio = 0.05;
      p.credit_update_batch = batch;
      const RackReport r = RunRack(p);
      const double fc_share =
          r.class_gbps[static_cast<int>(TrafficClass::kCreditUpdate)] /
          r.tx_gbps_per_node;
      std::printf("    batch %2d: %.1f MRPS, flow control = %.2f%% of traffic\n",
                  batch, r.mrps, 100.0 * fc_share);
    }
    std::printf("\n");
  }

  {
    std::printf("(d) symmetric cache size (read-only):\n");
    for (const std::size_t cap : {25'000ull, 100'000ull, 250'000ull, 500'000ull}) {
      RackParams p = PaperRack(SystemKind::kCcKvs);
      p.cache_capacity = cap;
      const RackReport r = RunRack(p);
      std::printf("    %7llu keys (%.3f%% of data): %.1f MRPS, hit rate %.0f%%\n",
                  static_cast<unsigned long long>(cap),
                  100.0 * static_cast<double>(cap) / 250e6, r.mrps,
                  100.0 * r.hit_rate);
    }
    std::printf("\n");
  }

  {
    // All three policies watch the identical node-skewed stream through the
    // identical admission sketch; only the eviction rule differs.  The L1 is
    // deliberately small (512 slots against a ~6k-key per-node warm tail):
    // a generously sized tier retires nothing and every policy looks alike —
    // capacity pressure is what makes the eviction rule matter.  Zipf tails
    // are recency-friendly (recently seen tail keys recur soon) but have a
    // long one-hit fringe, so the interesting question is whether CLOCK's
    // second-chance bit or LFU's frequency buckets beat plain LRU at keeping
    // the fringe out.  Live run: the L1 probe/fill/evict work is on the real
    // op path, so a policy with better hit rate but a pricier touch would
    // show up here and not in a trace-driven comparison.
    std::printf("(e) L1 replacement policy (live 4-node rack, node-skewed zipf, "
                "L1 512):\n");
    const std::uint64_t ops = Smoke() ? 30'000 : 200'000;
    for (const L1Policy policy :
         {L1Policy::kLru, L1Policy::kClock, L1Policy::kLfu}) {
      LiveRackParams lp;
      lp.num_nodes = 4;
      lp.consistency = ConsistencyModel::kSc;
      lp.workload.keyspace = 100'000;
      lp.workload.zipf_alpha = 0.99;
      lp.workload.write_ratio = 0.05;
      lp.workload.value_bytes = 40;
      lp.workload.node_rank_stride = lp.workload.keyspace / 16;
      lp.cache_capacity = 1'000;
      lp.window_per_node = 32;
      lp.ops_per_node = ops;
      lp.coalescing = true;
      lp.seed = 42;
      lp.l1_capacity = 512;
      lp.l1_policy = policy;
      const LiveReport r = RunLive(
          lp, std::string("live L1 policy=") + ToString(policy) + " node-skew");
      const double total = static_cast<double>(r.completed);
      std::printf("    %-5s: %.2f Mops/s, l1 hits %6llu (%.1f%% of ops), "
                  "fills %6llu, inval %4llu\n",
                  ToString(policy), r.rack.mrps,
                  static_cast<unsigned long long>(r.rack.l1_hits),
                  total > 0 ? 100.0 * static_cast<double>(r.rack.l1_hits) / total
                            : 0.0,
                  static_cast<unsigned long long>(r.rack.l1_fills),
                  static_cast<unsigned long long>(r.rack.l1_invalidations));
    }
    std::printf("    (policies share the admission sketch; the delta is pure "
                "eviction quality)\n");
  }
  return 0;
}
