// Figure 13a: per-node network utilization of a read-only ccKVS workload with
// and without request coalescing, split into packet headers and data payload.
//
// Paper: without coalescing, small objects are stuck near the effective
// small-packet limit (~21.5 Gb/s) with headers claiming a large share; with
// coalescing the system approaches the real line-rate limit and headers shrink.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 13a: per-node network utilization, ccKVS read-only, 9 nodes\n");
  std::printf("(solid = payload Gbps, stripes = header Gbps in the paper)\n\n");
  std::printf("%-12s %-16s %10s %10s %10s\n", "object", "coalescing", "payload",
              "headers", "total");

  for (const std::uint32_t size : {40u, 256u, 1024u}) {
    for (const bool coalesce : {false, true}) {
      RackParams p = PaperRack(SystemKind::kCcKvs);
      p.workload.value_bytes = size;
      p.coalescing = coalesce;
      p.window_per_node = 2048;
      const RackReport r = RunRack(p);
      std::printf("%-12s %-16s %10.1f %10.1f %10.1f\n",
                  size == 40 ? "40 B" : size == 256 ? "256 B" : "1024 B",
                  coalesce ? "with" : "without", r.payload_gbps_per_node,
                  r.header_gbps_per_node, r.tx_gbps_per_node);
    }
  }
  std::printf("\nnet B/W limit: 54 Gbps line rate; ~21.5 Gbps effective for the\n"
              "uncoalesced small-packet mix (switch pps bound, Section 8.4)\n");
  return 0;
}
