// Figure 13a: per-node network utilization of a read-only ccKVS workload with
// and without request coalescing, split into packet headers and data payload.
//
// Paper: without coalescing, small objects are stuck near the effective
// small-packet limit (~21.5 Gb/s) with headers claiming a large share; with
// coalescing the system approaches the real line-rate limit and headers shrink.
//
// The live section measures the same amortization on the in-process fabric
// (runtime/coalescer.h): the per-push lock/notify and the batch's single
// source id play the role of the packet header, so the "header share" becomes
// channel pushes per message.  Live misses are direct shard loads (no
// messages), so the live rows use a 5%-write workload — it is the consistency
// broadcasts that coalesce.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 13a: per-node network utilization, ccKVS read-only, 9 nodes\n");
  std::printf("(solid = payload Gbps, stripes = header Gbps in the paper)\n\n");
  std::printf("%-12s %-16s %10s %10s %10s\n", "object", "coalescing", "payload",
              "headers", "total");

  for (const std::uint32_t size : {40u, 256u, 1024u}) {
    for (const bool coalesce : {false, true}) {
      RackParams p = PaperRack(SystemKind::kCcKvs);
      p.workload.value_bytes = size;
      p.coalescing = coalesce;
      p.window_per_node = 2048;
      const RackReport r = RunRack(p);
      std::printf("%-12s %-16s %10.1f %10.1f %10.1f\n",
                  size == 40 ? "40 B" : size == 256 ? "256 B" : "1024 B",
                  coalesce ? "with" : "without", r.payload_gbps_per_node,
                  r.header_gbps_per_node, r.tx_gbps_per_node);
    }
  }
  std::printf("\nnet B/W limit: 54 Gbps line rate; ~21.5 Gbps effective for the\n"
              "uncoalesced small-packet mix (switch pps bound, Section 8.4)\n");

  PrintHeaderRule();
  std::printf("live fabric analogue: channel pushes per message (8 nodes, ccKVS-SC,\n"
              "5%% writes; a push's lock+notify is the live \"header\")\n\n");
  std::printf("%-16s %12s %12s %12s %14s %10s\n", "coalescing", "messages",
              "pushes", "avg batch", "push/msg", "wakeups");
  for (const bool coalesce : {false, true}) {
    const LiveRackParams lp = LiveCoalescingRack(
        ConsistencyModel::kSc, coalesce, Smoke() ? 20'000 : 200'000);
    const LiveReport lr = RunLive(
        lp, std::string("live SC 5%wr coalescing=") + (coalesce ? "on" : "off"));
    std::printf("%-16s %12llu %12llu %12.1f %14.3f %10llu\n",
                coalesce ? "with" : "without",
                static_cast<unsigned long long>(lr.channel_messages),
                static_cast<unsigned long long>(lr.channel_batches),
                lr.batch_sizes.count() == 0 ? 0.0 : lr.batch_sizes.Mean(),
                lr.channel_messages == 0
                    ? 0.0
                    : static_cast<double>(lr.channel_batches) /
                          static_cast<double>(lr.channel_messages),
                static_cast<unsigned long long>(lr.wakeups));
  }
  std::printf("\nexpected shape, as in the paper: coalescing drops the per-message\n"
              "overhead share (push/msg < 1) where the uncoalesced fabric pins it at 1\n");
  return 0;
}
