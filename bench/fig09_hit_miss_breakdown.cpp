// Figure 9: break-down of completed ccKVS requests into cache hits and misses
// for a read-only workload with varying skew.
//
// Paper findings: cache-miss throughput equals Uniform's *entire* throughput and
// stays constant across skews (both are network-bound); cache-hit throughput
// grows with the hit rate.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 9: ccKVS completed-request breakdown (MRPS), read-only, 9 nodes\n\n");
  const double uniform = RunRack(UniformRack()).mrps;
  std::printf("Uniform total (reference line): %.1f MRPS\n\n", uniform);
  std::printf("%-12s %12s %12s %12s %10s\n", "alpha", "hits", "misses", "total",
              "hit rate");

  for (const double alpha : {0.90, 0.99, 1.01}) {
    RackParams cc = PaperRack(SystemKind::kCcKvs);
    cc.workload.zipf_alpha = alpha;
    const RackReport r = RunRack(cc);
    std::printf("%-12.2f %12.1f %12.1f %12.1f %9.0f%%\n", alpha, r.hit_mrps,
                r.miss_mrps, r.mrps, 100.0 * r.hit_rate);
  }
  std::printf("\npaper: miss throughput ~= Uniform total at every alpha "
              "(network-bound); hit throughput rises with skew\n");
  return 0;
}
