// Figure 8: throughput comparison for a read-only workload with varying skew
// (alpha = 0.90, 0.99, 1.01) on 9 nodes.
//
// Paper: Base-EREW ~95 MRPS, Base ~215 MRPS, Uniform ~240 MRPS, ccKVS ~690 MRPS
// (3.2x Base, 2.85x Uniform) at alpha = 0.99, with similar results across skews.

#include <cstdio>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  cckvs::bench::Init(argc, argv);
  using namespace cckvs;
  using namespace cckvs::bench;

  std::printf("Figure 8: read-only throughput (MRPS), 9 nodes, 40B values\n\n");
  std::printf("%-12s %12s %12s %12s %12s\n", "alpha", "Uniform", "Base-EREW", "Base",
              "ccKVS");

  // Uniform is skew-independent: one run.
  const double uniform = RunRack(UniformRack()).mrps;

  for (const double alpha : {0.90, 0.99, 1.01}) {
    RackParams erew = PaperRack(SystemKind::kBaseErew);
    erew.workload.zipf_alpha = alpha;
    RackParams base = PaperRack(SystemKind::kBase);
    base.workload.zipf_alpha = alpha;
    RackParams cc = PaperRack(SystemKind::kCcKvs);
    cc.workload.zipf_alpha = alpha;
    const double erew_mrps = RunRack(erew).mrps;
    const double base_mrps = RunRack(base).mrps;
    const RackReport cc_report = RunRack(cc);
    std::printf("%-12.2f %12.1f %12.1f %12.1f %12.1f\n", alpha, uniform, erew_mrps,
                base_mrps, cc_report.mrps);
    if (alpha == 0.99) {
      PrintHeaderRule();
      std::printf("at alpha=0.99: ccKVS/Base = %.2fx (paper: 3.2x), "
                  "ccKVS/Uniform = %.2fx (paper: 2.85x), hit rate = %.0f%%\n",
                  cc_report.mrps / base_mrps, cc_report.mrps / uniform,
                  100.0 * cc_report.hit_rate);
      PrintHeaderRule();
    }
  }
  return 0;
}
