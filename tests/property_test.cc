// Parameterized property-style suites sweeping invariants across configuration
// space: Zipf math identities, partition durability under random op mixes,
// protocol convergence across node counts and models, wire-format identities,
// and rack-level conservation laws.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/cckvs/rack.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/model/analytical.h"
#include "src/protocol/engine.h"
#include "src/rdma/wire_format.h"
#include "src/store/partition.h"
#include "src/verify/model_checker.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Zipf properties across (n, alpha)
// ---------------------------------------------------------------------------

class ZipfProperty : public testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfProperty, CdfIsMonotoneAndNormalized) {
  const auto [n, alpha] = GetParam();
  double prev = 0.0;
  for (std::uint64_t k = 0; k <= n; k += std::max<std::uint64_t>(1, n / 7)) {
    const double cdf = ZipfCdf(k, n, alpha);
    ASSERT_GE(cdf, prev);
    ASSERT_LE(cdf, 1.0 + 1e-12);
    prev = cdf;
  }
  EXPECT_NEAR(ZipfCdf(n, n, alpha), 1.0, 1e-12);
}

TEST_P(ZipfProperty, PmfDecreasesWithRank) {
  const auto [n, alpha] = GetParam();
  if (alpha == 0.0) {
    GTEST_SKIP() << "uniform: flat pmf";
  }
  double prev = 1.0;
  for (std::uint64_t r = 1; r <= n; r += std::max<std::uint64_t>(1, n / 9)) {
    const double p = ZipfPmf(r, n, alpha);
    ASSERT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST_P(ZipfProperty, SamplerTracksCdf) {
  const auto [n, alpha] = GetParam();
  ZipfSampler sampler(n, alpha);
  Rng rng(17);
  const std::uint64_t k = std::max<std::uint64_t>(1, n / 10);
  int hits = 0;
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) {
    if (sampler.Sample(rng) <= k) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, ZipfCdf(k, n, alpha), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfProperty,
    testing::Combine(testing::Values<std::uint64_t>(10, 1000, 1u << 21),
                     testing::Values(0.0, 0.5, 0.9, 0.99, 1.0, 1.01, 1.3)));

// ---------------------------------------------------------------------------
// Partition durability under random op mixes (vs a std::map oracle)
// ---------------------------------------------------------------------------

class PartitionOracle : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionOracle, MatchesMapSemantics) {
  const auto [buckets, keyspace] = GetParam();
  PartitionConfig pc;
  pc.buckets = static_cast<std::size_t>(buckets);
  pc.node_id = 1;
  Partition part(pc);
  std::map<Key, Value> oracle;
  Rng rng(static_cast<std::uint64_t>(buckets * 31 + keyspace));
  for (int i = 0; i < 20000; ++i) {
    const Key k = rng.NextBounded(static_cast<std::uint64_t>(keyspace));
    const double dice = rng.NextDouble();
    if (dice < 0.55) {  // get
      Value v;
      const bool present = part.Get(k, &v);
      const auto it = oracle.find(k);
      ASSERT_EQ(present, it != oracle.end()) << "key " << k;
      if (present) {
        ASSERT_EQ(v, it->second);
      }
    } else if (dice < 0.9) {  // put
      const Value v = "v" + std::to_string(i);
      part.Put(k, v);
      oracle[k] = v;
    } else {  // erase
      const bool erased = part.Erase(k);
      ASSERT_EQ(erased, oracle.erase(k) > 0) << "key " << k;
    }
  }
  ASSERT_EQ(part.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    Value got;
    ASSERT_TRUE(part.Get(k, &got));
    ASSERT_EQ(got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionOracle,
                         testing::Combine(testing::Values(4, 64, 1024),
                                          testing::Values(50, 1000, 20000)));

// ---------------------------------------------------------------------------
// Protocol convergence across (nodes, writes, model)
// ---------------------------------------------------------------------------

struct ProtocolCase {
  int nodes;
  int writes;
  ConsistencyModel model;
};

class ProtocolConvergence : public testing::TestWithParam<ProtocolCase> {};

TEST_P(ProtocolConvergence, RandomDeliveryAlwaysConverges) {
  const ProtocolCase c = GetParam();
  // Local fabric mirroring the one in protocol_test: deliver in random order.
  struct Fabric {
    struct Msg {
      int type;  // 0 upd, 1 inv, 2 ack
      NodeId from, to;
      UpdateMsg upd;
      InvalidateMsg inv;
      AckMsg ack;
    };
    class Sink final : public MessageSink {
     public:
      Sink(Fabric* f, NodeId self, int n) : f_(f), self_(self), n_(n) {}
      void BroadcastUpdate(const UpdateMsg& m) override {
        for (int j = 0; j < n_; ++j) {
          if (j != self_) {
            f_->queue.push_back({0, self_, static_cast<NodeId>(j), m, {}, {}});
          }
        }
      }
      void BroadcastInvalidate(const InvalidateMsg& m) override {
        for (int j = 0; j < n_; ++j) {
          if (j != self_) {
            f_->queue.push_back({1, self_, static_cast<NodeId>(j), {}, m, {}});
          }
        }
      }
      void SendAck(NodeId to, const AckMsg& m) override {
        f_->queue.push_back({2, self_, to, {}, {}, m});
      }
      Fabric* f_;
      NodeId self_;
      int n_;
    };
    std::vector<Msg> queue;
  };

  Fabric fabric;
  std::vector<std::unique_ptr<SymmetricCache>> caches;
  std::vector<std::unique_ptr<Fabric::Sink>> sinks;
  std::vector<std::unique_ptr<CoherenceEngine>> engines;
  const Key key = 5;
  for (int i = 0; i < c.nodes; ++i) {
    caches.push_back(std::make_unique<SymmetricCache>(1));
    caches.back()->InstallHotSet({key});
    caches.back()->Fill(key, "init", Timestamp{0, 0});
    sinks.push_back(std::make_unique<Fabric::Sink>(&fabric, static_cast<NodeId>(i),
                                                   c.nodes));
  }
  for (int i = 0; i < c.nodes; ++i) {
    if (c.model == ConsistencyModel::kSc) {
      engines.push_back(std::make_unique<ScEngine>(static_cast<NodeId>(i), c.nodes,
                                                   caches[static_cast<std::size_t>(i)].get(),
                                                   sinks[static_cast<std::size_t>(i)].get()));
    } else {
      engines.push_back(std::make_unique<LinEngine>(static_cast<NodeId>(i), c.nodes,
                                                    caches[static_cast<std::size_t>(i)].get(),
                                                    sinks[static_cast<std::size_t>(i)].get()));
    }
  }

  Rng rng(static_cast<std::uint64_t>(c.nodes * 1000 + c.writes * 10 +
                                     static_cast<int>(c.model)));
  int completed = 0;
  for (int w = 0; w < c.writes; ++w) {
    const auto node = static_cast<std::size_t>(rng.NextBounded(
        static_cast<std::uint64_t>(c.nodes)));
    engines[node]->Write(key, "w" + std::to_string(w), [&] { ++completed; });
    // Interleave some deliveries.
    for (int d = 0; d < 3 && !fabric.queue.empty(); ++d) {
      if (rng.NextBool(0.6)) {
        const auto idx = rng.NextBounded(fabric.queue.size());
        const Fabric::Msg m = fabric.queue[idx];
        fabric.queue.erase(fabric.queue.begin() + static_cast<std::ptrdiff_t>(idx));
        if (m.type == 0) {
          engines[m.to]->OnUpdate(m.from, m.upd);
        } else if (m.type == 1) {
          engines[m.to]->OnInvalidate(m.from, m.inv);
        } else {
          engines[m.to]->OnAck(m.from, m.ack);
        }
      }
    }
  }
  while (!fabric.queue.empty()) {
    const auto idx = rng.NextBounded(fabric.queue.size());
    const Fabric::Msg m = fabric.queue[idx];
    fabric.queue.erase(fabric.queue.begin() + static_cast<std::ptrdiff_t>(idx));
    if (m.type == 0) {
      engines[m.to]->OnUpdate(m.from, m.upd);
    } else if (m.type == 1) {
      engines[m.to]->OnInvalidate(m.from, m.inv);
    } else {
      engines[m.to]->OnAck(m.from, m.ack);
    }
  }

  EXPECT_EQ(completed, c.writes);
  const CacheEntry* first = caches[0]->Find(key);
  for (int i = 0; i < c.nodes; ++i) {
    const CacheEntry* e = caches[static_cast<std::size_t>(i)]->Find(key);
    ASSERT_EQ(e->state(), CacheState::kValid) << "node " << i;
    ASSERT_EQ(e->ts(), first->ts()) << "node " << i;
    ASSERT_EQ(e->value, first->value) << "node " << i;
    ASSERT_TRUE(engines[static_cast<std::size_t>(i)]->Quiescent());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolConvergence,
    testing::Values(ProtocolCase{2, 4, ConsistencyModel::kSc},
                    ProtocolCase{2, 4, ConsistencyModel::kLin},
                    ProtocolCase{3, 6, ConsistencyModel::kSc},
                    ProtocolCase{3, 6, ConsistencyModel::kLin},
                    ProtocolCase{5, 8, ConsistencyModel::kSc},
                    ProtocolCase{5, 8, ConsistencyModel::kLin},
                    ProtocolCase{9, 12, ConsistencyModel::kSc},
                    ProtocolCase{9, 12, ConsistencyModel::kLin}));

// ---------------------------------------------------------------------------
// Wire-format identities across value sizes
// ---------------------------------------------------------------------------

class WireProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(WireProperty, AggregatesAreComponentSums) {
  const std::uint32_t v = GetParam();
  const WireFormat wf;
  EXPECT_EQ(wf.Brr(v), wf.RequestWire() + wf.ResponseWire(v));
  EXPECT_EQ(wf.Blin(v), wf.InvalidationWire() + wf.AckWire() + wf.UpdateWire(v));
  EXPECT_EQ(wf.Bsc(v), wf.UpdateWire(v));
  EXPECT_GT(wf.Blin(v), wf.Bsc(v));  // Lin always costs more per write
}

INSTANTIATE_TEST_SUITE_P(Sweep, WireProperty,
                         testing::Values(1u, 40u, 256u, 1024u, 4096u));

// ---------------------------------------------------------------------------
// Model identities across the (N, h, w) space
// ---------------------------------------------------------------------------

class ModelProperty
    : public testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(ModelProperty, OrderingsAndPositivity) {
  const auto [n, h, w] = GetParam();
  ModelParams p;
  p.num_servers = n;
  p.hit_ratio = h;
  p.write_ratio = w;
  const double sc = ThroughputScMrps(p);
  const double lin = ThroughputLinMrps(p);
  const double uni = ThroughputUniformMrps(p);
  ASSERT_GT(sc, 0.0);
  ASSERT_GT(lin, 0.0);
  ASSERT_GT(uni, 0.0);
  // Lin never beats SC (B_Lin > B_SC).
  ASSERT_LE(lin, sc + 1e-9);
  // Below both break-even points, ccKVS beats Uniform; above, it loses.
  const double be_sc = BreakEvenWriteRatioSc(p);
  if (w < be_sc - 1e-9) {
    ASSERT_GT(sc, uni);
  } else if (w > be_sc + 1e-9) {
    ASSERT_LT(sc, uni);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModelProperty,
                         testing::Combine(testing::Values(3, 9, 20, 40),
                                          testing::Values(0.4, 0.63, 0.9),
                                          testing::Values(0.0, 0.005, 0.02, 0.1)));

// ---------------------------------------------------------------------------
// Rack conservation laws across systems
// ---------------------------------------------------------------------------

struct RackCase {
  SystemKind kind;
  ConsistencyModel model;
  double write_ratio;
};

class RackConservation : public testing::TestWithParam<RackCase> {};

TEST_P(RackConservation, CountsAddUpAndHistoriesHold) {
  const RackCase c = GetParam();
  RackParams p;
  p.kind = c.kind;
  p.consistency = c.model;
  p.num_nodes = 4;
  p.workload.keyspace = 20'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = c.write_ratio;
  p.cache_capacity = 64;
  p.window_per_node = 16;
  p.record_history = true;
  p.seed = 11;
  RackSimulation rack(p);
  const RackReport r = rack.Run(250'000, 50'000);

  // Conservation: hits + misses == completed; rates consistent.
  EXPECT_NEAR(r.hit_mrps + r.miss_mrps, r.mrps, 1e-6);
  EXPECT_GT(r.completed, 0u);
  if (c.kind != SystemKind::kCcKvs) {
    EXPECT_EQ(r.hit_mrps, 0.0);
    EXPECT_EQ(r.updates_sent + r.invalidations_sent + r.acks_sent, 0u);
  } else if (c.write_ratio > 0) {
    EXPECT_GT(r.updates_sent, 0u);
    if (c.model == ConsistencyModel::kLin) {
      // Every inv gets exactly one ack, eventually (drained at run end).
      EXPECT_GT(r.invalidations_sent, 0u);
    } else {
      EXPECT_EQ(r.invalidations_sent, 0u);
    }
  }

  // Every system must at minimum preserve write atomicity; the cached systems
  // must satisfy their advertised model in steady state.
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
  if (c.kind == SystemKind::kCcKvs && c.model == ConsistencyModel::kLin) {
    EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  }
  if (c.kind == SystemKind::kCcKvs) {
    EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RackConservation,
    testing::Values(RackCase{SystemKind::kBase, ConsistencyModel::kNone, 0.0},
                    RackCase{SystemKind::kBase, ConsistencyModel::kNone, 0.1},
                    RackCase{SystemKind::kBaseErew, ConsistencyModel::kNone, 0.05},
                    RackCase{SystemKind::kCcKvs, ConsistencyModel::kSc, 0.0},
                    RackCase{SystemKind::kCcKvs, ConsistencyModel::kSc, 0.05},
                    RackCase{SystemKind::kCcKvs, ConsistencyModel::kSc, 0.2},
                    RackCase{SystemKind::kCcKvs, ConsistencyModel::kLin, 0.05},
                    RackCase{SystemKind::kCcKvs, ConsistencyModel::kLin, 0.2}));

// ---------------------------------------------------------------------------
// Model checker sanity across scopes (cheap scopes only; the heavyweight run
// lives in bench/sec52_model_check)
// ---------------------------------------------------------------------------

class CheckerScope : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CheckerScope, AllInvariantsHold) {
  const auto [nodes, writes] = GetParam();
  ModelCheckerConfig cfg;
  cfg.num_nodes = nodes;
  cfg.total_writes = writes;
  const ModelCheckerResult r = CheckLinProtocol(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckerScope,
                         testing::Combine(testing::Values(2, 3, 4),
                                          testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Epoch-transition scopes (cheap bounded scopes; the larger sweeps live in
// bench/sec52_model_check).  Every interleaving of announce / fill /
// write-back / gated shard op / install-barrier traffic across one epoch
// change must stay consistent and deadlock-free.
// ---------------------------------------------------------------------------

struct TransitionCase {
  ConsistencyModel model;
  int puts;
  int gets;
};

class TransitionScope : public testing::TestWithParam<TransitionCase> {};

TEST_P(TransitionScope, ExhaustiveAndViolationFree) {
  const TransitionCase c = GetParam();
  TransitionScopeConfig cfg;
  cfg.num_nodes = 2;
  cfg.model = c.model;
  cfg.puts = c.puts;
  cfg.gets = c.gets;
  const ModelCheckerResult r = CheckEpochTransition(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.states_explored, 20u);
  EXPECT_GT(r.terminal_states, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransitionScope,
    testing::Values(TransitionCase{ConsistencyModel::kLin, 0, 1},
                    TransitionCase{ConsistencyModel::kLin, 1, 1},
                    TransitionCase{ConsistencyModel::kSc, 1, 1},
                    TransitionCase{ConsistencyModel::kSc, 2, 1}));

}  // namespace
}  // namespace cckvs
