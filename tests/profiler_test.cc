// Profiling subsystem (runtime/profiler.h), the zero-alloc audit
// (common/alloc_tracker.h + LiveRackParams::track_allocs/alloc_assert), and
// the run-loop knobs (pinning, busy_poll) the profiler observes.
//
// The sampling contract under test: flow counters are published monotonically
// by worker threads and the profiler reports per-interval DELTAS, so summing
// every interval's delta for a node must reproduce that node's final total
// exactly — no sample may be lost or double-counted, no matter how the
// sampling instants interleave with the increments.

#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/alloc_tracker.h"
#include "src/runtime/live_rack.h"
#include "src/runtime/multiproc.h"
#include "src/runtime/profiler.h"

namespace cckvs {
namespace {

TEST(ProfilerTest, DeltasSumToTotalsUnderConcurrentIncrements) {
  constexpr int kNodes = 3;
  constexpr std::uint64_t kOpsPerNode = 200'000;
  std::vector<WorkerCounters> counters(kNodes);

  Profiler::Options opts;
  opts.interval_ms = 1;  // sample as often as possible while writers run
  Profiler profiler(opts, &counters);
  profiler.Start();

  std::vector<std::thread> writers;
  for (int n = 0; n < kNodes; ++n) {
    writers.emplace_back([&counters, n] {
      for (std::uint64_t i = 1; i <= kOpsPerNode; ++i) {
        counters[static_cast<std::size_t>(n)].ops.store(
            i, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(n)].msgs_sent.store(
            2 * i, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(n)].inbound_depth.store(
            i % 7, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  profiler.Stop();

  // Stop() takes a final sample after the writers finished, so the deltas
  // must account for every increment.
  std::vector<std::uint64_t> ops_sum(kNodes, 0);
  std::vector<std::uint64_t> msgs_sum(kNodes, 0);
  for (const ProfilerSample& s : profiler.samples()) {
    ASSERT_GE(s.node, 0);
    ASSERT_LT(s.node, kNodes);
    ops_sum[static_cast<std::size_t>(s.node)] += s.ops;
    msgs_sum[static_cast<std::size_t>(s.node)] += s.msgs_sent;
    EXPECT_LT(s.inbound_depth, 7u) << "gauges are reported verbatim";
  }
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(ops_sum[static_cast<std::size_t>(n)], kOpsPerNode) << "node " << n;
    EXPECT_EQ(msgs_sum[static_cast<std::size_t>(n)], 2 * kOpsPerNode)
        << "node " << n;
  }
}

TEST(ProfilerTest, StopWithoutStartIsANoOpAndStopIsIdempotent) {
  std::vector<WorkerCounters> counters(1);
  Profiler profiler(Profiler::Options{}, &counters);
  profiler.Stop();  // never started: nothing to join, no samples
  EXPECT_TRUE(profiler.samples().empty());

  Profiler p2(Profiler::Options{}, &counters);
  p2.Start();
  p2.Stop();
  const std::size_t n = p2.samples().size();
  p2.Stop();  // second stop must not add samples or double-join
  EXPECT_EQ(p2.samples().size(), n);
  EXPECT_EQ(n, 1u) << "final sample: one row per node even on a short run";
}

TEST(ProfilerTest, CsvFileGetsHeaderAndOneRowPerSample) {
  const std::string path =
      ::testing::TempDir() + "/profiler_test_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + ".csv";
  std::vector<WorkerCounters> counters(2);
  Profiler::Options opts;
  opts.csv_path = path;
  Profiler profiler(opts, &counters);
  profiler.Start();
  counters[0].ops.store(5, std::memory_order_relaxed);
  counters[1].ops.store(9, std::memory_order_relaxed);
  profiler.Stop();

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_EQ(std::string(line), std::string(ProfilerCsvHeader()) + "\n");
  std::size_t rows = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++rows;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(rows, profiler.samples().size());
  EXPECT_EQ(rows, 2u);  // final sample: one row per node
}

// The acceptance invariant of the zero-alloc messaging work: an SC rack with
// the store prefilled performs no heap allocation inside any node's
// steady-state window.  Skipped under sanitizers, where the counting
// operator new is compiled out (TrackerAvailable() == false).
TEST(ProfilerTest, SteadyStateScRunIsAllocationFree) {
  if (!alloc::TrackerAvailable()) {
    GTEST_SKIP() << "allocation tracker compiled out (sanitizer build)";
  }
  LiveRackParams p;
  p.num_nodes = 3;
  p.consistency = ConsistencyModel::kSc;
  p.workload.keyspace = 20'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.05;
  p.workload.value_bytes = 40;
  p.cache_capacity = 200;
  p.l1_capacity = 128;  // the L1 tail + admission sketch run inside the audit
  p.workload.node_rank_stride = 1'000;  // make the L1 actually fill and serve
  p.window_per_node = 16;
  p.ops_per_node = 30'000;
  p.coalescing = true;
  p.seed = 7;
  p.prefill_store = true;
  p.track_allocs = true;
  p.alloc_assert = true;  // a nonzero count aborts the test binary
  p.profile = true;       // exercise counter publishing inside the window
  p.profile_interval_ms = 10;

  LiveRack rack(p);
  const LiveReport r = rack.Run();
  EXPECT_TRUE(r.ok()) << r.transport_error;
  EXPECT_GE(r.completed, 3u * 30'000u);  // quota is a floor: drain finishes
                                         // whatever was in flight at quota
  EXPECT_EQ(r.hot_path_allocs, 0u);
  EXPECT_FALSE(r.profiler_samples.empty());
  EXPECT_GT(r.rack.l1_hits, 0u) << "the audit should cover a SERVING L1";
}

TEST(ProfilerTest, RunLoopAndProfilingParamsRoundTripThroughBlob) {
  // Ranked multi-process racks ship their params to child processes as a hex
  // blob (runtime/multiproc.h); every knob this PR added must survive it.
  LiveRackParams p;
  p.num_nodes = 4;
  p.pinning = true;
  p.pin_core_base = 3;
  p.pin_stride = 2;
  p.busy_poll = true;
  p.profile = true;
  p.profile_interval_ms = 125;
  p.profile_csv_path = "/tmp/prof.csv";
  p.profile_to_stderr = true;
  p.track_allocs = true;
  p.alloc_assert = true;
  p.prefill_store = true;
  p.l1_capacity = 256;
  p.l1_policy = L1Policy::kClock;
  p.workload.node_rank_stride = 4'096;

  const std::string blob = EncodeRackParams(p);
  LiveRackParams out;
  std::string error;
  ASSERT_TRUE(DecodeRackParams(blob, &out, &error)) << error;
  EXPECT_TRUE(out.pinning);
  EXPECT_EQ(out.pin_core_base, 3);
  EXPECT_EQ(out.pin_stride, 2);
  EXPECT_TRUE(out.busy_poll);
  EXPECT_TRUE(out.profile);
  EXPECT_EQ(out.profile_interval_ms, 125u);
  EXPECT_EQ(out.profile_csv_path, "/tmp/prof.csv");
  EXPECT_TRUE(out.profile_to_stderr);
  EXPECT_TRUE(out.track_allocs);
  EXPECT_TRUE(out.alloc_assert);
  EXPECT_TRUE(out.prefill_store);
  EXPECT_EQ(out.l1_capacity, 256u);
  EXPECT_EQ(out.l1_policy, L1Policy::kClock);
  EXPECT_EQ(out.workload.node_rank_stride, 4'096u);

  // The defaults must round-trip as defaults (v2 fields absent ≠ garbage).
  LiveRackParams defaults;
  LiveRackParams out2;
  ASSERT_TRUE(DecodeRackParams(EncodeRackParams(defaults), &out2, &error))
      << error;
  EXPECT_FALSE(out2.pinning);
  EXPECT_FALSE(out2.busy_poll);
  EXPECT_FALSE(out2.profile);
  EXPECT_FALSE(out2.track_allocs);
  EXPECT_FALSE(out2.prefill_store);
  EXPECT_EQ(out2.l1_capacity, 0u);
  EXPECT_EQ(out2.l1_policy, L1Policy::kLru);
}

TEST(ProfilerTest, BusyPollRackCompletesAndRecordsLatency) {
  // Busy-poll replaces the parking wait with spin-then-yield; the run must
  // still terminate (drain + quiesce) and produce per-op rdtsc latencies.
  LiveRackParams p;
  p.num_nodes = 2;
  p.consistency = ConsistencyModel::kSc;
  p.workload.keyspace = 5'000;
  p.workload.write_ratio = 0.05;
  p.workload.value_bytes = 40;
  p.cache_capacity = 100;
  p.window_per_node = 8;
  p.ops_per_node = 5'000;
  p.coalescing = true;
  p.busy_poll = true;
  p.pinning = true;  // modulo nproc: must be safe on any core count
  p.seed = 11;
  LiveRack rack(p);
  const LiveReport r = rack.Run();
  EXPECT_TRUE(r.ok()) << r.transport_error;
  EXPECT_GE(r.completed, 2u * 5'000u);
  EXPECT_GT(r.rack.p50_latency_us, 0.0);
}

}  // namespace
}  // namespace cckvs
