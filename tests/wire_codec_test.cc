// Wire-format property tests (runtime/wire_codec.h).
//
// The cross-process backends trust these bytes completely: a frame that
// round-trips wrong corrupts protocol state silently, and a decoder that
// aborts (or reads past the end) on a truncated frame turns a flaky peer
// into a crashed node.  So the codec gets the full property treatment:
// randomized round-trips over every message variant, rejection at EVERY
// truncation point, trailing-garbage rejection, and byte-level pins of the
// little-endian header layout (the on-wire ABI must not drift with the
// host's endianness or a refactor).

#include <cstdint>
#include <random>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/wire_codec.h"

namespace cckvs {
namespace {

std::string RandomString(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string s(len_dist(rng), '\0');
  for (char& c : s) {
    c = static_cast<char>(byte_dist(rng));
  }
  return s;
}

Timestamp RandomTs(std::mt19937_64& rng) {
  return Timestamp{static_cast<std::uint32_t>(rng()),
                   static_cast<NodeId>(rng() % 9)};
}

// One random message of each variant per call; the index picks the type.
WireBody RandomBody(std::mt19937_64& rng, int variant) {
  switch (variant) {
    case 0:
      return UpdateMsg{rng(), RandomString(rng, 64), RandomTs(rng)};
    case 1:
      return InvalidateMsg{rng(), RandomTs(rng)};
    case 2:
      return AckMsg{rng(), RandomTs(rng)};
    case 3: {
      HotSetAnnounceMsg hot;
      hot.epoch = rng();
      hot.keys.resize(rng() % 32);
      for (Key& k : hot.keys) {
        k = rng();
      }
      return hot;
    }
    case 4: {
      FillMsg fill;
      fill.key = rng();
      fill.ts = RandomTs(rng);
      fill.epoch = rng();
      fill.value = RandomString(rng, 64);
      return fill;
    }
    case 5:
      return EpochInstalledMsg{rng()};
    case 6: {
      RpcRequest req;
      req.op_id = static_cast<std::uint32_t>(rng());
      req.op = rng() % 2 == 0 ? OpType::kGet : OpType::kPut;
      req.key = rng();
      req.value = req.op == OpType::kPut ? RandomString(rng, 64) : "";
      req.trace_id = rng();  // piggybacked trace context (runtime/tracing.h)
      req.parent_span = rng();
      return req;
    }
    case 7: {
      RpcResponse resp;
      resp.op_id = static_cast<std::uint32_t>(rng());
      resp.ts = RandomTs(rng);
      resp.gated = rng() % 2 == 0;
      resp.value = RandomString(rng, 64);
      resp.trace_id = rng();
      return resp;
    }
    case 8:
      return TermProbeMsg{static_cast<std::uint32_t>(rng())};
    case 9: {
      TermStatusMsg s;
      s.round = static_cast<std::uint32_t>(rng());
      s.rank = static_cast<NodeId>(rng() % 9);
      s.done = rng() % 2 == 0;
      s.sent = rng();
      s.processed = rng();
      return s;
    }
    default:
      return TermHaltMsg{static_cast<std::uint32_t>(rng())};
  }
}

constexpr int kVariants = 11;

bool SameBody(const WireBody& a, const WireBody& b) {
  if (a.index() != b.index()) {
    return false;
  }
  Buffer ba;
  Buffer bb;
  SerializeWireBody(a, &ba);
  SerializeWireBody(b, &bb);
  return ba == bb;  // the codec is canonical: equal bytes <=> equal values
}

TEST(WireCodec, BodyRoundTripAllVariantsRandomized) {
  std::mt19937_64 rng(0xc0dec);
  for (int iter = 0; iter < 200; ++iter) {
    for (int v = 0; v < kVariants; ++v) {
      const WireBody body = RandomBody(rng, v);
      Buffer raw;
      SerializeWireBody(body, &raw);

      SafeReader r(raw.data(), raw.size());
      WireBody decoded;
      ASSERT_TRUE(TryDeserializeWireBody(&r, &decoded)) << "variant " << v;
      ASSERT_TRUE(r.AtEnd()) << "variant " << v << " left trailing bytes";
      EXPECT_TRUE(SameBody(body, decoded)) << "variant " << v;
      EXPECT_EQ(decoded.index(), body.index());
    }
  }
}

TEST(WireCodec, BatchRoundTripRandomized) {
  std::mt19937_64 rng(0xba7c4);
  for (int iter = 0; iter < 100; ++iter) {
    WireBatch batch;
    batch.src = static_cast<NodeId>(rng() % 9);
    const std::size_t count = rng() % 17;
    for (std::size_t i = 0; i < count; ++i) {
      batch.Append(RandomBody(rng, static_cast<int>(rng() % kVariants)));
    }

    Buffer raw;
    SerializeWireBatch(batch, &raw);
    WireBatch decoded;
    ASSERT_TRUE(TryDeserializeWireBatch(raw, &decoded));
    ASSERT_EQ(decoded.src, batch.src);
    ASSERT_EQ(decoded.size(), batch.size());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_TRUE(SameBody(batch[i], decoded[i])) << "msg " << i;
    }
  }
}

// Every proper prefix of a valid frame must be rejected — no abort, no
// over-read, just `false`.  This is the property that turns a peer's short
// write into a clean transport error.
TEST(WireCodec, TruncatedBodyRejectedAtEveryPrefixLength) {
  std::mt19937_64 rng(0x7256);
  for (int v = 0; v < kVariants; ++v) {
    const WireBody body = RandomBody(rng, v);
    Buffer raw;
    SerializeWireBody(body, &raw);
    for (std::size_t len = 0; len < raw.size(); ++len) {
      SafeReader r(raw.data(), len);
      WireBody decoded;
      EXPECT_FALSE(TryDeserializeWireBody(&r, &decoded))
          << "variant " << v << " accepted a " << len << "/" << raw.size()
          << "-byte prefix";
    }
  }
}

TEST(WireCodec, TruncatedBatchRejectedAtEveryPrefixLength) {
  std::mt19937_64 rng(0x7257);
  WireBatch batch;
  batch.src = 3;
  for (int v = 0; v < kVariants; ++v) {
    batch.Append(RandomBody(rng, v));
  }
  Buffer raw;
  SerializeWireBatch(batch, &raw);
  for (std::size_t len = 0; len < raw.size(); ++len) {
    WireBatch decoded;
    EXPECT_FALSE(TryDeserializeWireBatch(raw.data(), len, &decoded))
        << "accepted a " << len << "/" << raw.size() << "-byte prefix";
  }
}

TEST(WireCodec, TrailingGarbageRejected) {
  WireBatch batch;
  batch.src = 2;
  batch.Append(WireBody{TermHaltMsg{7}});
  Buffer raw;
  SerializeWireBatch(batch, &raw);
  WireBatch decoded;
  ASSERT_TRUE(TryDeserializeWireBatch(raw, &decoded));
  raw.push_back(0xee);
  EXPECT_FALSE(TryDeserializeWireBatch(raw, &decoded));
}

TEST(WireCodec, UnknownTagRejected) {
  Buffer raw;
  raw.push_back(200);  // far past every assigned tag
  raw.push_back(0);
  SafeReader r(raw.data(), raw.size());
  WireBody decoded;
  EXPECT_FALSE(TryDeserializeWireBody(&r, &decoded));
}

TEST(WireCodec, MalformedRpcOpRejected) {
  RpcRequest req;
  req.op = OpType::kPut;
  req.value = "x";
  Buffer raw;
  SerializeWireBody(WireBody{req}, &raw);
  raw[5] = 9;  // the op byte: [tag u8][op_id u32][op u8]...
  SafeReader r(raw.data(), raw.size());
  WireBody decoded;
  EXPECT_FALSE(TryDeserializeWireBody(&r, &decoded));
}

TEST(WireCodec, MalformedRpcGatedFlagRejected) {
  RpcResponse resp;
  resp.value = "x";
  Buffer raw;
  SerializeWireBody(WireBody{resp}, &raw);
  raw[10] = 7;  // the gated byte: [tag u8][op_id u32][clock u32][writer u8][gated u8]
  SafeReader r(raw.data(), raw.size());
  WireBody decoded;
  EXPECT_FALSE(TryDeserializeWireBody(&r, &decoded));
}

// Byte-level ABI pins: the wire layout is little-endian regardless of host,
// and field order is part of the contract (append-only evolution).
TEST(WireCodec, HeaderFieldsAreEndiannessStable) {
  UpdateMsg upd;
  upd.key = 0x1122334455667788ull;
  upd.ts = Timestamp{0xaabbccdd, 5};
  upd.value = "AB";
  Buffer raw;
  SerializeWireBody(WireBody{upd}, &raw);

  const std::uint8_t expect[] = {
      0x01,                                            // WireTag::kUpdate
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // key, little-endian
      0xdd, 0xcc, 0xbb, 0xaa,                          // ts.clock, little-endian
      0x05,                                            // ts.writer
      0x02, 0x00, 0x00, 0x00,                          // value length u32 le
      'A', 'B',
  };
  ASSERT_EQ(raw.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(raw[i], expect[i]) << "byte " << i;
  }
}

// The RPC bodies carry the piggybacked trace context LAST (append-only ABI
// evolution): these pins freeze the full layouts so neither a field reorder
// nor a width change can slip through, and prove untraced peers interoperate
// (trace fields serialize as zeros, never as absent bytes).
TEST(WireCodec, RpcRequestLayoutWithTraceContextIsPinned) {
  RpcRequest req;
  req.op_id = 0x0a0b0c0d;
  req.op = OpType::kPut;
  req.key = 0x1122334455667788ull;
  req.value = "V";
  req.trace_id = 0x0102030405060708ull;
  req.parent_span = 0x1112131415161718ull;
  Buffer raw;
  SerializeWireBody(WireBody{req}, &raw);

  const std::uint8_t expect[] = {
      0x07,                                            // WireTag::kRpcRequest
      0x0d, 0x0c, 0x0b, 0x0a,                          // op_id u32 le
      0x01,                                            // op (kPut)
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // key u64 le
      0x01, 0x00, 0x00, 0x00,                          // value length u32 le
      'V',
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // trace_id u64 le
      0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,  // parent_span u64 le
  };
  ASSERT_EQ(raw.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(raw[i], expect[i]) << "byte " << i;
  }
}

TEST(WireCodec, RpcResponseLayoutWithTraceContextIsPinned) {
  RpcResponse resp;
  resp.op_id = 0x0a0b0c0d;
  resp.ts = Timestamp{0xaabbccdd, 3};
  resp.gated = true;
  resp.value = "W";
  resp.trace_id = 0x0102030405060708ull;
  Buffer raw;
  SerializeWireBody(WireBody{resp}, &raw);

  const std::uint8_t expect[] = {
      0x08,                                            // WireTag::kRpcResponse
      0x0d, 0x0c, 0x0b, 0x0a,                          // op_id u32 le
      0xdd, 0xcc, 0xbb, 0xaa,                          // ts.clock u32 le
      0x03,                                            // ts.writer
      0x01,                                            // gated
      0x01, 0x00, 0x00, 0x00,                          // value length u32 le
      'W',
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // trace_id u64 le
  };
  ASSERT_EQ(raw.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(raw[i], expect[i]) << "byte " << i;
  }
}

TEST(WireCodec, BatchHeaderIsEndiannessStable) {
  WireBatch batch;
  batch.src = 7;
  batch.Append(WireBody{TermProbeMsg{0x01020304}});
  Buffer raw;
  SerializeWireBatch(batch, &raw);

  const std::uint8_t expect[] = {
      0x07,                    // src
      0x01, 0x00,              // count u16 le
      0x09,                    // WireTag::kTermProbe
      0x04, 0x03, 0x02, 0x01,  // round u32 le
  };
  ASSERT_EQ(raw.size(), sizeof(expect));
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    EXPECT_EQ(raw[i], expect[i]) << "byte " << i;
  }
}

}  // namespace
}  // namespace cckvs
