// Unit tests for the discrete-event engine and service pools.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace cckvs {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  SimTime fired_at = 0;
  sim.At(100, [&] {
    sim.After(50, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) {
      sim.After(1, chain);
    }
  };
  sim.After(0, chain);
  const std::uint64_t executed = sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(20, [&] { ++fired; });
  sim.At(30, [&] { ++fired; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.At(5, [] {});
  sim.RunUntil(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.At(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.At(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(50, [] {}), "CHECK");
}

// ---------------------------------------------------------------------------
// ServicePool
// ---------------------------------------------------------------------------

TEST(ServicePool, SingleServerSerializes) {
  Simulator sim;
  ServicePool pool(&sim, 1);
  std::vector<SimTime> done_at;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(10, [&] { done_at.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(pool.completed(), 3u);
}

TEST(ServicePool, MultiServerRunsInParallel) {
  Simulator sim;
  ServicePool pool(&sim, 3);
  std::vector<SimTime> done_at;
  for (int i = 0; i < 3; ++i) {
    pool.Submit(10, [&] { done_at.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(done_at, (std::vector<SimTime>{10, 10, 10}));
}

TEST(ServicePool, QueueDrainsInFifoOrder) {
  Simulator sim;
  ServicePool pool(&sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    pool.Submit(7, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ServicePool, MixedServiceTimes) {
  // Two servers: job A (100ns) and B (10ns) start together; C (5ns) runs on
  // whichever frees first (B's server at t=10), finishing at 15.
  Simulator sim;
  ServicePool pool(&sim, 2);
  std::vector<std::pair<char, SimTime>> done;
  pool.Submit(100, [&] { done.push_back({'A', sim.now()}); });
  pool.Submit(10, [&] { done.push_back({'B', sim.now()}); });
  pool.Submit(5, [&] { done.push_back({'C', sim.now()}); });
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair<char, SimTime>{'B', 10}));
  EXPECT_EQ(done[1], (std::pair<char, SimTime>{'C', 15}));
  EXPECT_EQ(done[2], (std::pair<char, SimTime>{'A', 100}));
}

TEST(ServicePool, UtilizationAccounting) {
  Simulator sim;
  ServicePool pool(&sim, 2);
  pool.Submit(100, nullptr);
  pool.Submit(100, nullptr);
  sim.Run();
  // Both servers busy for the whole 100ns run.
  EXPECT_DOUBLE_EQ(pool.Utilization(), 1.0);
}

TEST(ServicePool, ThroughputMatchesServiceRate) {
  // c servers with service time s sustain c/s jobs per ns.
  Simulator sim;
  ServicePool pool(&sim, 4);
  int completed = 0;
  const int jobs = 1000;
  for (int i = 0; i < jobs; ++i) {
    pool.Submit(25, [&] { ++completed; });
  }
  sim.Run();
  EXPECT_EQ(completed, jobs);
  // 1000 jobs * 25ns / 4 servers = 6250ns makespan.
  EXPECT_EQ(sim.now(), 6250u);
}

TEST(ServicePool, ZeroServiceTimeJobs) {
  Simulator sim;
  ServicePool pool(&sim, 1);
  int done = 0;
  pool.Submit(0, [&] { ++done; });
  pool.Submit(0, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(sim.now(), 0u);
}

TEST(ServicePool, CompletionCanSubmitMore) {
  Simulator sim;
  ServicePool pool(&sim, 1);
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) {
      pool.Submit(3, next);
    }
  };
  pool.Submit(3, next);
  sim.Run();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(sim.now(), 30u);
}

}  // namespace
}  // namespace cckvs
