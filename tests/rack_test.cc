// Integration tests: full rack simulations of every system kind, including
// end-to-end consistency checking of recorded histories.

#include <gtest/gtest.h>

#include <memory>

#include "src/cckvs/rack.h"
#include "src/model/analytical.h"

namespace cckvs {
namespace {

RackParams SmallRack(SystemKind kind, ConsistencyModel model = ConsistencyModel::kSc) {
  RackParams p;
  p.kind = kind;
  p.consistency = model;
  p.num_nodes = 4;
  p.workload.keyspace = 100'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.0;
  p.workload.value_bytes = 40;
  p.cache_capacity = 100;  // 0.1%
  p.window_per_node = 32;
  p.seed = 7;
  return p;
}

TEST(RackSmoke, BaseServesReads) {
  RackParams p = SmallRack(SystemKind::kBase);
  RackSimulation rack(p);
  const RackReport r = rack.Run(/*measure_ns=*/200'000, /*warmup_ns=*/50'000);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.mrps, 1.0);
  EXPECT_EQ(r.hit_mrps, 0.0);  // no cache in Base
}

TEST(RackSmoke, BaseErewServesReads) {
  RackParams p = SmallRack(SystemKind::kBaseErew);
  RackSimulation rack(p);
  const RackReport r = rack.Run(200'000, 50'000);
  EXPECT_GT(r.completed, 500u);
}

TEST(RackSmoke, CcKvsScReadOnly) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  RackSimulation rack(p);
  const RackReport r = rack.Run(200'000, 50'000);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.hit_rate, 0.20);  // ~36% expected at this scale
  EXPECT_GT(r.hit_mrps, 0.0);
}

TEST(RackSmoke, CcKvsLinWithWrites) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.write_ratio = 0.05;
  RackSimulation rack(p);
  const RackReport r = rack.Run(300'000, 50'000);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_GT(r.invalidations_sent, 0u);
  EXPECT_GT(r.acks_sent, 0u);
  EXPECT_GT(r.updates_sent, 0u);
}

TEST(RackSmoke, CcKvsScWithWritesSendsUpdatesOnly) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.workload.write_ratio = 0.05;
  RackSimulation rack(p);
  const RackReport r = rack.Run(300'000, 50'000);
  EXPECT_GT(r.updates_sent, 0u);
  EXPECT_EQ(r.invalidations_sent, 0u);
  EXPECT_EQ(r.acks_sent, 0u);
}

TEST(RackHistory, ScHistorySatisfiesPerKeySc) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.workload.keyspace = 500;   // hot, contended
  p.cache_capacity = 50;
  p.workload.write_ratio = 0.2;
  p.window_per_node = 8;
  p.record_history = true;
  RackSimulation rack(p);
  rack.Run(400'000, 0);
  ASSERT_GT(rack.history().size(), 1000u);
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
}

TEST(RackHistory, LinHistorySatisfiesPerKeyLinearizability) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.keyspace = 500;
  p.cache_capacity = 50;
  p.workload.write_ratio = 0.2;
  p.window_per_node = 8;
  p.record_history = true;
  RackSimulation rack(p);
  rack.Run(400'000, 0);
  ASSERT_GT(rack.history().size(), 1000u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
}

TEST(RackHistory, BaseHistoryIsLinearizable) {
  // Without caching every key has a single copy at its home shard, so the
  // baseline is trivially linearizable.
  RackParams p = SmallRack(SystemKind::kBase);
  p.workload.keyspace = 500;
  p.workload.write_ratio = 0.2;
  p.window_per_node = 8;
  p.record_history = true;
  RackSimulation rack(p);
  rack.Run(400'000, 0);
  ASSERT_GT(rack.history().size(), 500u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
}

TEST(RackComparison, CcKvsBeatsBaseOnSkewedReads) {
  RackParams base = SmallRack(SystemKind::kBase);
  RackParams cc = SmallRack(SystemKind::kCcKvs);
  RackSimulation base_rack(base);
  RackSimulation cc_rack(cc);
  const RackReport rb = base_rack.Run(300'000, 100'000);
  const RackReport rc = cc_rack.Run(300'000, 100'000);
  EXPECT_GT(rc.mrps, rb.mrps * 1.2);
}

TEST(RackComparison, ErewSuffersUnderSkew) {
  RackParams erew = SmallRack(SystemKind::kBaseErew);
  RackParams crcw = SmallRack(SystemKind::kBase);
  // Strong skew concentrated on one core.
  erew.workload.zipf_alpha = 1.2;
  crcw.workload.zipf_alpha = 1.2;
  RackSimulation erew_rack(erew);
  RackSimulation crcw_rack(crcw);
  const RackReport re = erew_rack.Run(300'000, 100'000);
  const RackReport rc = crcw_rack.Run(300'000, 100'000);
  EXPECT_GT(rc.mrps, re.mrps * 1.3);
}

TEST(RackLatency, OpenLoopLatencyRisesWithLoad) {
  RackParams p = SmallRack(SystemKind::kCcKvs);
  p.open_loop_mrps_per_node = 1.0;
  RackSimulation light(p);
  const RackReport rl = light.Run(300'000, 50'000);
  p.open_loop_mrps_per_node = 15.0;
  RackSimulation heavy(p);
  const RackReport rh = heavy.Run(300'000, 50'000);
  EXPECT_GT(rl.completed, 0u);
  EXPECT_GT(rh.completed, rl.completed);
  EXPECT_GE(rh.p95_latency_us, rl.p95_latency_us);
}

TEST(RackTraffic, WriteRatioGrowsConsistencyTraffic) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.write_ratio = 0.01;
  RackSimulation low(p);
  const RackReport rl = low.Run(300'000, 50'000);
  p.workload.write_ratio = 0.05;
  RackSimulation high(p);
  const RackReport rh = high.Run(300'000, 50'000);
  const int upd = static_cast<int>(TrafficClass::kUpdate);
  const int inv = static_cast<int>(TrafficClass::kInvalidation);
  EXPECT_GT(rh.class_gbps[upd], rl.class_gbps[upd]);
  EXPECT_GT(rh.class_gbps[inv], rl.class_gbps[inv]);
}

TEST(RackEpochs, OnlineTopKConvergesAndStaysLinearizable) {
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.keyspace = 2000;
  p.cache_capacity = 64;
  p.prefill_hot_set = false;  // learn the hot set online, from a cold cache
  p.online_topk = true;
  p.topk_epoch_requests = 3000;
  p.topk_sample_probability = 0.5;
  p.workload.write_ratio = 0.05;
  p.record_history = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(2'000'000, 0);
  EXPECT_GT(r.epochs, 0u);
  // After the first epoch the caches serve hits.
  EXPECT_GT(r.hit_rate, 0.05);
  // The simulator's RPC path runs the same shard residency gate and install
  // barrier as the live rack, so epoch transitions — evictions, write-back
  // flushes, refills, first epoch included — are part of the verified
  // protocol: the FULL per-key checkers must pass, not just write atomicity.
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
}

TEST(RackEpochs, SteadyHotSetKeepsLinearizability) {
  // Online learning over a stable distribution: epochs after the first change
  // nothing, and the whole run — including the initial transition, which used
  // to be excluded by a write-atomicity-only relaxation — is linearizable.
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.keyspace = 2000;
  p.cache_capacity = 64;
  p.online_topk = true;
  p.topk_epoch_requests = 5000;
  p.topk_sample_probability = 0.5;
  p.workload.write_ratio = 0.05;
  p.record_history = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(1'500'000, 0);
  EXPECT_GT(r.epochs, 0u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
}

TEST(RackEpochs, DriftingHotSetStaysLinearizable) {
  // Non-stationary skew: the Zipf rank→key mapping rotates mid-run, so epochs
  // churn the hot set while clients keep writing.  Transitions overlap client
  // load and each other; the gate + barrier must keep every recorded history
  // fully per-key linearizable.
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kLin);
  p.workload.keyspace = 2000;
  p.cache_capacity = 64;
  p.workload.drift_period_ops = 20'000;
  p.workload.drift_rank_shift = 16;
  p.online_topk = true;
  p.topk_epoch_requests = 2500;
  p.topk_sample_probability = 0.5;
  p.workload.write_ratio = 0.1;
  p.record_history = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(2'000'000, 0);
  EXPECT_GT(r.epochs, 1u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
}

TEST(RackEpochs, DriftingHotSetScStaysSequentiallyConsistent) {
  // The SC engine under the same drift: updates-only protocol, same gate and
  // barrier.  Per-key SC (and write atomicity) must hold across transitions.
  RackParams p = SmallRack(SystemKind::kCcKvs, ConsistencyModel::kSc);
  p.workload.keyspace = 2000;
  p.cache_capacity = 64;
  p.workload.drift_period_ops = 20'000;
  p.workload.drift_rank_shift = 16;
  p.online_topk = true;
  p.topk_epoch_requests = 2500;
  p.topk_sample_probability = 0.5;
  p.workload.write_ratio = 0.1;
  p.record_history = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(2'000'000, 0);
  EXPECT_GT(r.epochs, 1u);
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
}

}  // namespace
}  // namespace cckvs
