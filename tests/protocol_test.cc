// Unit tests for the SC and Lin coherence engines, driven through a scripted
// message fabric that can delay and reorder deliveries arbitrarily (UD gives no
// ordering guarantees).

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/common/rng.h"
#include "src/protocol/engine.h"

namespace cckvs {
namespace {

constexpr Key kKey = 77;

// A fabric connecting N engines; messages queue per destination and are
// delivered under test control (in order, reordered, or selectively).
class FakeFabric {
 public:
  explicit FakeFabric(int n, ConsistencyModel model) : n_(n) {
    for (int i = 0; i < n; ++i) {
      caches_.push_back(std::make_unique<SymmetricCache>(4));
      caches_.back()->InstallHotSet({kKey});
      caches_.back()->Fill(kKey, "init", Timestamp{0, 0});
      sinks_.push_back(std::make_unique<Sink>(this, static_cast<NodeId>(i)));
    }
    for (int i = 0; i < n; ++i) {
      if (model == ConsistencyModel::kSc) {
        engines_.push_back(std::make_unique<ScEngine>(static_cast<NodeId>(i), n,
                                                      caches_[static_cast<std::size_t>(i)].get(),
                                                      sinks_[static_cast<std::size_t>(i)].get()));
      } else {
        engines_.push_back(std::make_unique<LinEngine>(static_cast<NodeId>(i), n,
                                                       caches_[static_cast<std::size_t>(i)].get(),
                                                       sinks_[static_cast<std::size_t>(i)].get()));
      }
    }
  }

  struct Msg {
    enum class Type { kUpd, kInv, kAck } type;
    NodeId from;
    NodeId to;
    UpdateMsg upd;
    InvalidateMsg inv;
    AckMsg ack;
  };

  CoherenceEngine& engine(int i) { return *engines_[static_cast<std::size_t>(i)]; }
  SymmetricCache& cache(int i) { return *caches_[static_cast<std::size_t>(i)]; }
  CacheEntry& entry(int i) {
    return *caches_[static_cast<std::size_t>(i)]->Find(kKey);
  }
  CacheEntry& entryOf(int i, Key key) {
    return *caches_[static_cast<std::size_t>(i)]->Find(key);
  }
  std::deque<Msg>& queue() { return queue_; }

  void DeliverOne(std::size_t index = 0) {
    Msg m = queue_[index];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
    switch (m.type) {
      case Msg::Type::kUpd:
        engine(m.to).OnUpdate(m.from, m.upd);
        break;
      case Msg::Type::kInv:
        engine(m.to).OnInvalidate(m.from, m.inv);
        break;
      case Msg::Type::kAck:
        engine(m.to).OnAck(m.from, m.ack);
        break;
    }
  }

  void DeliverAllInOrder() {
    while (!queue_.empty()) {
      DeliverOne(0);
    }
  }

  void DeliverAllRandomOrder(Rng& rng) {
    while (!queue_.empty()) {
      DeliverOne(rng.NextBounded(queue_.size()));
    }
  }

 private:
  class Sink final : public MessageSink {
   public:
    Sink(FakeFabric* fabric, NodeId self) : fabric_(fabric), self_(self) {}
    void BroadcastUpdate(const UpdateMsg& msg) override {
      for (int j = 0; j < fabric_->n_; ++j) {
        if (j != self_) {
          Msg m;
          m.type = Msg::Type::kUpd;
          m.from = self_;
          m.to = static_cast<NodeId>(j);
          m.upd = msg;
          fabric_->queue_.push_back(m);
        }
      }
    }
    void BroadcastInvalidate(const InvalidateMsg& msg) override {
      for (int j = 0; j < fabric_->n_; ++j) {
        if (j != self_) {
          Msg m;
          m.type = Msg::Type::kInv;
          m.from = self_;
          m.to = static_cast<NodeId>(j);
          m.inv = msg;
          fabric_->queue_.push_back(m);
        }
      }
    }
    void SendAck(NodeId to, const AckMsg& msg) override {
      Msg m;
      m.type = Msg::Type::kAck;
      m.from = self_;
      m.to = to;
      m.ack = msg;
      fabric_->queue_.push_back(m);
    }

   private:
    FakeFabric* fabric_;
    NodeId self_;
  };

  int n_;
  std::vector<std::unique_ptr<SymmetricCache>> caches_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::vector<std::unique_ptr<CoherenceEngine>> engines_;
  std::deque<Msg> queue_;
};

// ---------------------------------------------------------------------------
// SC protocol
// ---------------------------------------------------------------------------

TEST(ScProtocol, WriteAppliesLocallyImmediately) {
  FakeFabric f(3, ConsistencyModel::kSc);
  bool done = false;
  const auto r = f.engine(0).Write(kKey, "new", [&] { done = true; });
  EXPECT_EQ(r, CoherenceEngine::WriteResult::kCompleted);
  EXPECT_TRUE(done);  // SC writes are non-blocking
  EXPECT_EQ(f.entry(0).value, "new");
  EXPECT_EQ(f.entry(0).ts(), (Timestamp{1, 0}));
  // Peers have not applied yet (updates still in flight) — SC permits this.
  EXPECT_EQ(f.entry(1).value, "init");
  EXPECT_EQ(f.queue().size(), 2u);
}

TEST(ScProtocol, UpdatePropagatesToAll) {
  FakeFabric f(3, ConsistencyModel::kSc);
  f.engine(0).Write(kKey, "new", nullptr);
  f.DeliverAllInOrder();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.entry(i).value, "new");
    EXPECT_EQ(f.entry(i).ts(), (Timestamp{1, 0}));
  }
}

TEST(ScProtocol, ConcurrentWritesConvergeByTimestamp) {
  FakeFabric f(3, ConsistencyModel::kSc);
  f.engine(0).Write(kKey, "from-0", nullptr);  // ts {1,0}
  f.engine(1).Write(kKey, "from-1", nullptr);  // ts {1,1} — wins the tie-break
  f.DeliverAllInOrder();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.entry(i).value, "from-1") << "node " << i;
    EXPECT_EQ(f.entry(i).ts(), (Timestamp{1, 1}));
  }
}

TEST(ScProtocol, StaleUpdateDiscarded) {
  FakeFabric f(2, ConsistencyModel::kSc);
  f.engine(0).Write(kKey, "w1", nullptr);
  f.DeliverAllInOrder();
  // A replayed/late update with an old timestamp must not regress the entry.
  f.engine(1).OnUpdate(0, UpdateMsg{kKey, "old", Timestamp{0, 0}});
  EXPECT_EQ(f.entry(1).value, "w1");
  const auto& stats = f.engine(1).stats();
  EXPECT_EQ(stats.updates_discarded, 1u);
}

TEST(ScProtocol, RandomizedConvergence) {
  // Many concurrent writes delivered in random order: all replicas converge on
  // the max-timestamp value (write serialization via Lamport clocks).
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    FakeFabric f(4, ConsistencyModel::kSc);
    for (int w = 0; w < 6; ++w) {
      const int node = static_cast<int>(rng.NextBounded(4));
      f.engine(node).Write(kKey, "w" + std::to_string(w), nullptr);
      if (rng.NextBool(0.5) && !f.queue().empty()) {
        f.DeliverOne(rng.NextBounded(f.queue().size()));
      }
    }
    f.DeliverAllRandomOrder(rng);
    const Timestamp ts0 = f.entry(0).ts();
    const Value v0 = f.entry(0).value;
    for (int i = 1; i < 4; ++i) {
      ASSERT_EQ(f.entry(i).ts(), ts0) << "round " << round;
      ASSERT_EQ(f.entry(i).value, v0) << "round " << round;
    }
  }
}

TEST(ScProtocol, ReadsAlwaysHitValidEntries) {
  FakeFabric f(2, ConsistencyModel::kSc);
  Value v;
  Timestamp ts;
  EXPECT_EQ(f.engine(0).Read(kKey, &v, &ts, nullptr),
            CoherenceEngine::ReadResult::kHit);
  EXPECT_EQ(v, "init");
}

// ---------------------------------------------------------------------------
// Lin protocol
// ---------------------------------------------------------------------------

TEST(LinProtocol, WriteBlocksUntilAllAcks) {
  FakeFabric f(3, ConsistencyModel::kLin);
  bool done = false;
  const auto r = f.engine(0).Write(kKey, "new", [&] { done = true; });
  EXPECT_EQ(r, CoherenceEngine::WriteResult::kPending);
  EXPECT_FALSE(done);
  EXPECT_EQ(f.entry(0).state(), CacheState::kWrite);
  EXPECT_EQ(f.queue().size(), 2u);  // two invalidations
  f.DeliverOne(0);                  // inv at node 1 -> ack queued
  EXPECT_FALSE(done);
  EXPECT_EQ(f.entry(1).state(), CacheState::kInvalid);
  f.DeliverAllInOrder();  // second inv, both acks, then updates
  EXPECT_TRUE(done);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.entry(i).state(), CacheState::kValid);
    EXPECT_EQ(f.entry(i).value, "new");
  }
}

TEST(LinProtocol, ReadBlocksOnInvalidEntry) {
  FakeFabric f(3, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "new", nullptr);
  f.DeliverOne(0);  // node 1 invalidated
  Value read_value;
  bool resumed = false;
  const auto r = f.engine(1).Read(kKey, nullptr, nullptr,
                                  [&](const Value& v, Timestamp) {
                                    resumed = true;
                                    read_value = v;
                                  });
  EXPECT_EQ(r, CoherenceEngine::ReadResult::kBlocked);
  f.DeliverAllInOrder();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(read_value, "new");  // the blocked read observes the new value
}

TEST(LinProtocol, ReadBlocksAtWriterDuringWrite) {
  // Lin condition: a get may return a value only after the put returned, so
  // even the writer's own node must not serve the new value early.
  FakeFabric f(3, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "new", nullptr);
  bool resumed = false;
  const auto r =
      f.engine(0).Read(kKey, nullptr, nullptr, [&](const Value&, Timestamp) {
        resumed = true;
      });
  EXPECT_EQ(r, CoherenceEngine::ReadResult::kBlocked);
  f.DeliverAllInOrder();
  EXPECT_TRUE(resumed);
}

TEST(LinProtocol, StaleInvalidationStillAcked) {
  // Deadlock freedom hinges on unconditional acks.
  FakeFabric f(2, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "w", nullptr);
  f.DeliverAllInOrder();
  const auto acks_before = f.queue().size();
  f.engine(1).OnInvalidate(0, InvalidateMsg{kKey, Timestamp{0, 0}});  // stale
  EXPECT_EQ(f.queue().size(), acks_before + 1);  // ack queued anyway
  EXPECT_EQ(f.entry(1).state(), CacheState::kValid);  // but no state change
  EXPECT_GE(f.engine(1).stats().invalidations_stale, 1u);
}

TEST(LinProtocol, ConcurrentWritersHigherTimestampWins) {
  FakeFabric f(3, ConsistencyModel::kLin);
  bool done0 = false;
  bool done1 = false;
  f.engine(0).Write(kKey, "w0", [&] { done0 = true; });  // ts {1,0}
  f.engine(1).Write(kKey, "w1", [&] { done1 = true; });  // ts {1,1}
  f.DeliverAllInOrder();
  EXPECT_TRUE(done0);
  EXPECT_TRUE(done1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(f.entry(i).state(), CacheState::kValid) << "node " << i;
    EXPECT_EQ(f.entry(i).value, "w1") << "node " << i;
    EXPECT_EQ(f.entry(i).ts(), (Timestamp{1, 1}));
  }
  EXPECT_EQ(f.engine(0).stats().writes_superseded, 1u);
}

TEST(LinProtocol, UpdateOvertakingInvalidationIsSafe) {
  // UD reorders: deliver node 1's messages update-first.
  FakeFabric f(2, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "w", nullptr);
  // queue: [inv->1]; deliver it, collect ack, produce update.
  f.DeliverOne(0);                       // inv -> node 1 (acks)
  // queue: [ack->0]; deliver ack, update is broadcast.
  f.DeliverOne(0);
  // Now simulate the update arriving at a node that never saw the inv: a fresh
  // write from node 1 proceeds with a *newer* ts while node 0's update is in
  // flight; then deliver out of order.
  f.engine(1).Write(kKey, "w2", nullptr);
  // Deliver in reverse: the last message first.
  while (!f.queue().empty()) {
    f.DeliverOne(f.queue().size() - 1);
  }
  EXPECT_EQ(f.entry(0).value, "w2");
  EXPECT_EQ(f.entry(1).value, "w2");
  EXPECT_EQ(f.entry(0).state(), CacheState::kValid);
  EXPECT_EQ(f.entry(1).state(), CacheState::kValid);
}

TEST(LinProtocol, LocalWritesQueuePerKey) {
  FakeFabric f(2, ConsistencyModel::kLin);
  std::vector<int> completion_order;
  f.engine(0).Write(kKey, "first", [&] { completion_order.push_back(1); });
  f.engine(0).Write(kKey, "second", [&] { completion_order.push_back(2); });
  EXPECT_EQ(f.engine(0).stats().local_writes_queued, 1u);
  f.DeliverAllInOrder();
  EXPECT_EQ(completion_order, (std::vector<int>{1, 2}));
  EXPECT_EQ(f.entry(0).value, "second");
  EXPECT_EQ(f.entry(1).value, "second");
}

TEST(LinProtocol, SingleNodeDegeneratesToLocalWrite) {
  FakeFabric f(1, ConsistencyModel::kLin);
  bool done = false;
  f.engine(0).Write(kKey, "solo", [&] { done = true; });
  EXPECT_TRUE(done);  // no sharers: completes inline
  EXPECT_EQ(f.entry(0).state(), CacheState::kValid);
  EXPECT_EQ(f.entry(0).value, "solo");
}

TEST(LinProtocol, RandomizedConvergenceAndCompletion) {
  // Arbitrary write mix with random delivery order: every write's done callback
  // must fire (deadlock freedom) and all replicas converge to the max-ts value.
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    FakeFabric f(3, ConsistencyModel::kLin);
    int completed = 0;
    int issued = 0;
    for (int w = 0; w < 5; ++w) {
      const int node = static_cast<int>(rng.NextBounded(3));
      ++issued;
      f.engine(node).Write(kKey, "w" + std::to_string(w), [&] { ++completed; });
      for (int d = 0; d < 2 && !f.queue().empty(); ++d) {
        if (rng.NextBool(0.7)) {
          f.DeliverOne(rng.NextBounded(f.queue().size()));
        }
      }
    }
    f.DeliverAllRandomOrder(rng);
    ASSERT_EQ(completed, issued) << "round " << round;
    const Timestamp ts0 = f.entry(0).ts();
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(f.entry(i).state(), CacheState::kValid) << "round " << round;
      ASSERT_EQ(f.entry(i).ts(), ts0);
      ASSERT_EQ(f.entry(i).value, f.entry(0).value);
    }
  }
}

TEST(LinProtocol, ValueTsTracksInstalledValueNotPromisedOne) {
  // While node 1 is Invalid for ts {1,0}, its installed value is still the
  // initial one; value_ts must say so (write-back flush correctness).
  FakeFabric f(2, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "w", nullptr);
  f.DeliverOne(0);  // inv at node 1
  EXPECT_EQ(f.entry(1).state(), CacheState::kInvalid);
  EXPECT_EQ(f.entry(1).ts(), (Timestamp{1, 0}));       // promised
  EXPECT_EQ(f.entry(1).value_ts, (Timestamp{0, 0}));   // installed
  EXPECT_EQ(f.entry(1).value, "init");
  f.DeliverAllInOrder();
  EXPECT_EQ(f.entry(1).value_ts, (Timestamp{1, 0}));
}

// ---------------------------------------------------------------------------
// Cross-model checks
// ---------------------------------------------------------------------------

TEST(Protocols, ScAllowsStaleReadLinDoesNot) {
  // The Figure 5 scenario: session A writes, session B (other node) reads.
  // SC: B may read the old value.  Lin: B must block until the write reaches it.
  {
    FakeFabric f(2, ConsistencyModel::kSc);
    f.engine(0).Write(kKey, "new", nullptr);
    Value v;
    EXPECT_EQ(f.engine(1).Read(kKey, &v, nullptr, nullptr),
              CoherenceEngine::ReadResult::kHit);
    EXPECT_EQ(v, "init");  // stale read allowed under SC
  }
  {
    FakeFabric f(2, ConsistencyModel::kLin);
    f.engine(0).Write(kKey, "new", nullptr);
    f.DeliverOne(0);  // invalidation reaches node 1 before the read
    Value observed;
    bool resumed = false;
    const auto r = f.engine(1).Read(kKey, nullptr, nullptr,
                                    [&](const Value& v, Timestamp) {
                                      resumed = true;
                                      observed = v;
                                    });
    EXPECT_EQ(r, CoherenceEngine::ReadResult::kBlocked);
    f.DeliverAllInOrder();
    EXPECT_TRUE(resumed);
    EXPECT_EQ(observed, "new");  // never the stale value
  }
}

// ---------------------------------------------------------------------------
// Hot-set membership hooks (epoch machinery)
// ---------------------------------------------------------------------------

TEST(MembershipHooks, EvictionSafeTracksLinWriteLifecycle) {
  FakeFabric f(3, ConsistencyModel::kLin);
  EXPECT_TRUE(f.engine(0).EvictionSafe(kKey));
  f.engine(0).Write(kKey, "w", nullptr);
  // Evicting mid-write would strand the pending-ack state: unsafe until the
  // ack round completes, at every stage of it.
  EXPECT_FALSE(f.engine(0).EvictionSafe(kKey));
  f.DeliverAllInOrder();  // invalidations, acks, then the update broadcast
  EXPECT_TRUE(f.engine(0).EvictionSafe(kKey));
  EXPECT_TRUE(f.engine(0).Quiescent());
}

TEST(MembershipHooks, EvictionSafeFalseWithParkedReader) {
  FakeFabric f(2, ConsistencyModel::kLin);
  f.engine(0).Write(kKey, "w", nullptr);
  f.DeliverOne();  // the invalidation reaches node 1
  Value got;
  f.engine(1).Read(kKey, nullptr, nullptr,
                   [&got](const Value& v, Timestamp) { got = v; });
  EXPECT_FALSE(f.engine(1).EvictionSafe(kKey));  // reader parked on Invalid
  f.DeliverAllInOrder();                         // ack, then the update
  EXPECT_EQ(got, "w");
  EXPECT_TRUE(f.engine(1).EvictionSafe(kKey));
}

TEST(MembershipHooks, OnEvictedDropsPerKeyBookkeeping) {
  FakeFabric f(2, ConsistencyModel::kLin);
  f.DeliverAllInOrder();
  ASSERT_TRUE(f.engine(0).EvictionSafe(kKey));
  SymmetricCache::Eviction ev;
  f.cache(0).Evict(kKey, &ev);
  f.engine(0).OnEvicted(kKey);
  EXPECT_TRUE(f.engine(0).Quiescent());
}

TEST(MembershipHooks, ScWriteToFillingEntryQueuesUntilFill) {
  FakeFabric f(2, ConsistencyModel::kSc);
  constexpr Key kFresh = 500;
  f.cache(0).Admit(kFresh);
  f.cache(1).Admit(kFresh);

  bool done = false;
  const auto result = f.engine(0).Write(kFresh, "queued", [&done] { done = true; });
  EXPECT_EQ(result, CoherenceEngine::WriteResult::kPending);
  EXPECT_FALSE(done);
  EXPECT_EQ(f.engine(0).stats().local_writes_queued, 1u);
  EXPECT_FALSE(f.engine(0).EvictionSafe(kFresh));  // queued write pins the key
  EXPECT_TRUE(f.queue().empty());                  // nothing broadcast yet

  // The epoch fill arrives with the clock the shard reached (7): the queued
  // write must continue that clock, not restart at 1 — a restart could reuse
  // a timestamp from before the key last left the hot set.
  f.cache(0).Fill(kFresh, "filled", Timestamp{7, 1});
  f.engine(0).OnFilled(kFresh);
  EXPECT_TRUE(done);
  EXPECT_EQ(f.cache(0).Find(kFresh)->ts(), (Timestamp{8, 0}));
  EXPECT_TRUE(f.engine(0).EvictionSafe(kFresh));
  f.DeliverAllInOrder();
  EXPECT_EQ(f.cache(1).Find(kFresh)->value, "queued");
}

TEST(MembershipHooks, LinWriteToFillingEntryQueuesUntilFill) {
  FakeFabric f(2, ConsistencyModel::kLin);
  constexpr Key kFresh = 501;
  f.cache(0).Admit(kFresh);
  f.cache(1).Admit(kFresh);

  bool done = false;
  f.engine(0).Write(kFresh, "queued", [&done] { done = true; });
  EXPECT_FALSE(done);
  EXPECT_TRUE(f.queue().empty());  // no invalidations until the fill

  f.cache(0).Fill(kFresh, "filled", Timestamp{7, 1});
  f.engine(0).OnFilled(kFresh);
  EXPECT_FALSE(done);              // now a normal in-flight Lin write
  EXPECT_FALSE(f.queue().empty()); // its invalidation is on the wire
  f.DeliverAllInOrder();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.cache(0).Find(kFresh)->ts(), (Timestamp{8, 0}));
  EXPECT_EQ(f.cache(1).Find(kFresh)->value, "queued");
}

TEST(MembershipHooks, RemoteTrafficReleasesFillingQueuedWrite) {
  // A remote write's invalidation (not the fill) can be what moves a kFilling
  // entry onto a live clock; the queued local write must start then.
  FakeFabric f(2, ConsistencyModel::kLin);
  constexpr Key kFresh = 502;
  f.cache(0).Admit(kFresh);
  f.cache(1).Admit(kFresh);
  f.cache(1).Fill(kFresh, "filled", Timestamp{3, 1});
  f.engine(1).OnFilled(kFresh);

  bool done = false;
  f.engine(0).Write(kFresh, "mine", [&done] { done = true; });  // queued
  f.engine(1).Write(kFresh, "theirs", nullptr);
  f.DeliverAllInOrder();  // inv releases node 0's queued write; rounds drain
  EXPECT_TRUE(done);
  EXPECT_TRUE(f.engine(0).Quiescent());
  EXPECT_TRUE(f.engine(1).Quiescent());
  // Node 0's write carries the higher timestamp, so both converge on "mine".
  EXPECT_EQ(f.entryOf(0, kFresh).value, f.entryOf(1, kFresh).value);
}

TEST(Protocols, QuiescentAfterDrain) {
  for (auto model : {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    FakeFabric f(3, model);
    f.engine(0).Write(kKey, "a", nullptr);
    f.engine(2).Write(kKey, "b", nullptr);
    f.DeliverAllInOrder();
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(f.engine(i).Quiescent()) << ToString(model) << " node " << i;
    }
  }
}

}  // namespace
}  // namespace cckvs
