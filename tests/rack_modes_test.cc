// Integration tests for optional rack mechanisms: request coalescing, RDMA
// multicast updates, EREW mode, open-loop load, RPC message round-trips and
// wire-accounting identities.

#include <gtest/gtest.h>

#include "src/cckvs/rack.h"
#include "src/cckvs/rpc_messages.h"

namespace cckvs {
namespace {

RackParams ModeRack(ConsistencyModel model = ConsistencyModel::kSc) {
  RackParams p;
  p.kind = SystemKind::kCcKvs;
  p.consistency = model;
  p.num_nodes = 4;
  p.workload.keyspace = 50'000;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.05;
  p.cache_capacity = 64;
  p.window_per_node = 24;
  p.record_history = true;
  p.seed = 23;
  return p;
}

// ---------------------------------------------------------------------------
// RPC message round-trips
// ---------------------------------------------------------------------------

TEST(RpcMessages, RequestBatchRoundTrip) {
  std::vector<RpcRequest> reqs;
  reqs.push_back(RpcRequest{1, OpType::kGet, 42, ""});
  reqs.push_back(RpcRequest{2, OpType::kPut, 43, "value-bytes"});
  reqs.push_back(RpcRequest{900, OpType::kGet, ~0ull, ""});
  Buffer buf;
  SerializeBatch(reqs, &buf);
  const auto out = DeserializeRequests(buf);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].op_id, 1u);
  EXPECT_EQ(out[0].op, OpType::kGet);
  EXPECT_EQ(out[1].value, "value-bytes");
  EXPECT_EQ(out[2].key, ~0ull);
}

TEST(RpcMessages, ResponseBatchRoundTrip) {
  std::vector<RpcResponse> resps;
  resps.push_back(RpcResponse{7, "payload", Timestamp{9, 3}});
  resps.push_back(RpcResponse{8, "", Timestamp{0, 0}});
  Buffer buf;
  SerializeBatch(resps, &buf);
  const auto out = DeserializeResponses(buf);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].op_id, 7u);
  EXPECT_EQ(out[0].value, "payload");
  EXPECT_EQ(out[0].ts, (Timestamp{9, 3}));
  EXPECT_EQ(out[1].value, "");
}

TEST(RpcMessages, FillBatchRoundTrip) {
  std::vector<FillMsg> fills;
  fills.push_back(FillMsg{11, "hot-value", Timestamp{4, 1}, /*epoch=*/9});
  Buffer buf;
  SerializeBatch(fills, &buf);
  const auto out = DeserializeFills(buf);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 11u);
  EXPECT_EQ(out[0].value, "hot-value");
  EXPECT_EQ(out[0].ts, (Timestamp{4, 1}));
  EXPECT_EQ(out[0].epoch, 9u);
}

TEST(RpcMessages, HotSetRoundTrip) {
  const HotSetAnnounceMsg msg{/*epoch=*/3, {5, 7, 11, ~0ull}};
  Buffer buf;
  SerializeHotSet(msg, &buf);
  EXPECT_EQ(PeekControlTag(buf), kCtrlTagHotSet);
  const HotSetAnnounceMsg out = DeserializeHotSet(buf);
  EXPECT_EQ(out.epoch, 3u);
  EXPECT_EQ(out.keys, msg.keys);
}

TEST(RpcMessages, EpochInstalledRoundTrip) {
  Buffer buf;
  SerializeEpochInstalled(EpochInstalledMsg{42}, &buf);
  EXPECT_EQ(PeekControlTag(buf), kCtrlTagEpochInstalled);
  EXPECT_EQ(DeserializeEpochInstalled(buf).epoch, 42u);
}

// ---------------------------------------------------------------------------
// Coalescing
// ---------------------------------------------------------------------------

TEST(RackModes, CoalescingPreservesLinearizability) {
  RackParams p = ModeRack(ConsistencyModel::kLin);
  p.coalescing = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 50'000);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
}

TEST(RackModes, CoalescingReducesHeaderShare) {
  RackParams off = ModeRack();
  off.workload.write_ratio = 0.0;
  RackParams on = off;
  on.coalescing = true;
  RackSimulation rack_off(off);
  RackSimulation rack_on(on);
  const RackReport r_off = rack_off.Run(300'000, 100'000);
  const RackReport r_on = rack_on.Run(300'000, 100'000);
  const double share_off = r_off.header_gbps_per_node / r_off.tx_gbps_per_node;
  const double share_on = r_on.header_gbps_per_node / r_on.tx_gbps_per_node;
  EXPECT_LT(share_on, share_off);
}

TEST(RackModes, CoalescingImprovesSmallObjectThroughput) {
  RackParams off = ModeRack();
  off.workload.write_ratio = 0.0;
  off.window_per_node = 256;
  RackParams on = off;
  on.coalescing = true;
  RackSimulation rack_off(off);
  RackSimulation rack_on(on);
  const double mrps_off = rack_off.Run(300'000, 100'000).mrps;
  const double mrps_on = rack_on.Run(300'000, 100'000).mrps;
  EXPECT_GT(mrps_on, mrps_off);
}

// ---------------------------------------------------------------------------
// Multicast updates
// ---------------------------------------------------------------------------

TEST(RackModes, MulticastUpdatesPreserveSc) {
  RackParams p = ModeRack(ConsistencyModel::kSc);
  p.multicast_updates = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 50'000);
  EXPECT_GT(r.updates_sent, 0u);
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
}

TEST(RackModes, MulticastDoesNotBeatUnicastMaterially) {
  // §6.3: the receive side is the bottleneck, so multicast gives no real win.
  RackParams uni = ModeRack(ConsistencyModel::kSc);
  uni.workload.write_ratio = 0.1;
  uni.window_per_node = 128;
  RackParams multi = uni;
  multi.multicast_updates = true;
  RackSimulation rack_uni(uni);
  RackSimulation rack_multi(multi);
  const double m_uni = rack_uni.Run(300'000, 100'000).mrps;
  const double m_multi = rack_multi.Run(300'000, 100'000).mrps;
  EXPECT_LT(m_multi, m_uni * 1.15);  // within noise: no big multicast win
}

// ---------------------------------------------------------------------------
// EREW mode
// ---------------------------------------------------------------------------

TEST(RackModes, ErewKvsKeepsLinearizability) {
  RackParams p = ModeRack(ConsistencyModel::kLin);
  p.kvs_erew = true;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 50'000);
  EXPECT_GT(r.completed, 1000u);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
}

TEST(RackModes, ErewCreatesMoreQps) {
  // Indirectly observable through the §6.4 memory argument: EREW registers
  // more receive-buffer memory.  Exercised via the rack running cleanly and
  // the partition split below.
  RackParams p = ModeRack();
  p.kvs_erew = true;
  RackSimulation rack(p);
  rack.Run(100'000, 0);
  // Each KVS thread has its own partition under EREW.
  EXPECT_NE(rack.partition(0, 0), rack.partition(0, 1));
  RackParams crcw = ModeRack();
  RackSimulation rack2(crcw);
  rack2.Run(100'000, 0);
  EXPECT_EQ(rack2.partition(0, 0), rack2.partition(0, 1));
}

// ---------------------------------------------------------------------------
// Centralized cache (Figure 2b strawman)
// ---------------------------------------------------------------------------

TEST(CentralCache, ServesHotKeysAndStaysLinearizable) {
  RackParams p = ModeRack();
  p.kind = SystemKind::kCentralCache;
  p.workload.write_ratio = 0.1;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 50'000);
  EXPECT_GT(r.completed, 1000u);
  // The single cache copy is trivially linearizable.
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  // No consistency traffic: one copy, nothing to keep coherent.
  EXPECT_EQ(r.invalidations_sent, 0u);
  EXPECT_EQ(r.updates_sent, 0u);
}

TEST(CentralCache, OnlyCacheNodeCountsHits) {
  RackParams p = ModeRack();
  p.kind = SystemKind::kCentralCache;
  p.workload.write_ratio = 0.0;
  RackSimulation rack(p);
  const RackReport r = rack.Run(300'000, 50'000);
  // Hits are ops the cache node itself generated and served locally: roughly
  // hit-fraction / num_nodes of all traffic.
  EXPECT_GT(r.hit_mrps, 0.0);
  EXPECT_LT(r.hit_rate, 0.35);
}

TEST(CentralCache, LosesToSymmetricCachingUnderSkew) {
  // The paper's scalability argument (Section 2.2): the dedicated cache node
  // saturates while symmetric caches scale with the deployment.
  RackParams central = ModeRack();
  central.kind = SystemKind::kCentralCache;
  central.window_per_node = 128;
  RackParams cc = ModeRack();
  cc.window_per_node = 128;
  RackSimulation central_rack(central);
  RackSimulation cc_rack(cc);
  const double central_mrps = central_rack.Run(300'000, 100'000).mrps;
  const double cc_mrps = cc_rack.Run(300'000, 100'000).mrps;
  EXPECT_GT(cc_mrps, central_mrps * 1.3);
}

// ---------------------------------------------------------------------------
// Wire accounting
// ---------------------------------------------------------------------------

TEST(RackAccounting, ReadOnlyTrafficMatchesBrr) {
  // In a read-only Base run every completed remote op moves exactly B_RR bytes;
  // local ops move none.  Check the measured bytes-per-op against (1-1/N)*B_RR.
  RackParams p;
  p.kind = SystemKind::kBase;
  p.num_nodes = 4;
  p.workload.keyspace = 100'000;
  p.workload.zipf_alpha = 0.0;  // uniform: clean remote fraction
  p.window_per_node = 64;
  p.seed = 5;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 100'000);
  const double bytes_per_op =
      (r.tx_gbps_per_node * p.num_nodes / 8.0) * 1e9 / (r.mrps * 1e6);
  const WireFormat wf;
  const double expected = (1.0 - 1.0 / p.num_nodes) * wf.Brr(40);
  EXPECT_NEAR(bytes_per_op, expected, 0.05 * expected);
}

TEST(RackAccounting, LinWriteTrafficMatchesBlin) {
  // Consistency bytes per completed cache write must equal (N-1) * B_Lin
  // (invalidation + ack + update to every peer).
  RackParams p = ModeRack(ConsistencyModel::kLin);
  p.workload.write_ratio = 0.10;
  RackSimulation rack(p);
  const RackReport r = rack.Run(400'000, 100'000);
  const WireFormat wf;
  const double consistency_gbps =
      r.class_gbps[static_cast<int>(TrafficClass::kUpdate)] +
      r.class_gbps[static_cast<int>(TrafficClass::kInvalidation)] +
      r.class_gbps[static_cast<int>(TrafficClass::kAck)];
  const double consistency_bytes_per_s = consistency_gbps * p.num_nodes / 8.0 * 1e9;
  const double hot_writes_per_s = r.hit_rate > 0
                                      ? r.mrps * 1e6 * p.workload.write_ratio * r.hit_rate
                                      : 0.0;
  ASSERT_GT(hot_writes_per_s, 0.0);
  const double measured = consistency_bytes_per_s / hot_writes_per_s;
  const double expected = (p.num_nodes - 1) * wf.Blin(40);
  EXPECT_NEAR(measured, expected, 0.15 * expected);
}

// ---------------------------------------------------------------------------
// Open loop
// ---------------------------------------------------------------------------

TEST(RackModes, OpenLoopDeliversOfferedLoad) {
  RackParams p = ModeRack();
  p.workload.write_ratio = 0.0;
  p.record_history = false;
  p.open_loop_mrps_per_node = 3.0;
  RackSimulation rack(p);
  const RackReport r = rack.Run(500'000, 100'000);
  // Below saturation the system must complete ~the offered load.
  EXPECT_NEAR(r.mrps, 3.0 * p.num_nodes, 0.15 * 3.0 * p.num_nodes);
}

TEST(RackModes, DeterministicGivenSeed) {
  RackParams p = ModeRack(ConsistencyModel::kLin);
  RackSimulation a(p);
  RackSimulation b(p);
  const RackReport ra = a.Run(200'000, 50'000);
  const RackReport rb = b.Run(200'000, 50'000);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.updates_sent, rb.updates_sent);
  EXPECT_EQ(ra.invalidations_sent, rb.invalidations_sent);
  EXPECT_EQ(a.history().size(), b.history().size());
}

TEST(RackModes, SeedChangesExecution) {
  RackParams p = ModeRack();
  RackParams q = p;
  q.seed = p.seed + 1;
  RackSimulation a(p);
  RackSimulation b(q);
  const RackReport ra = a.Run(200'000, 50'000);
  const RackReport rb = b.Run(200'000, 50'000);
  EXPECT_NE(ra.completed, rb.completed);
}

}  // namespace
}  // namespace cckvs
