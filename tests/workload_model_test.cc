// Unit tests for workload generation and the analytical model (§8.7).

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "src/common/zipf.h"
#include "src/model/analytical.h"
#include "src/workload/workload.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

WorkloadConfig SmallWorkload() {
  WorkloadConfig cfg;
  cfg.keyspace = 10000;
  cfg.zipf_alpha = 0.99;
  cfg.write_ratio = 0.1;
  cfg.value_bytes = 40;
  return cfg;
}

TEST(Workload, OpsHaveRequestedShape) {
  WorkloadGenerator gen(SmallWorkload(), 1, 42);
  int puts = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Op op = gen.Next();
    ASSERT_LT(op.key, 10000u);
    if (op.type == OpType::kPut) {
      ++puts;
      ASSERT_EQ(op.value.size(), 40u);
    } else {
      ASSERT_TRUE(op.value.empty());
    }
  }
  EXPECT_NEAR(static_cast<double>(puts) / n, 0.1, 0.01);
}

TEST(Workload, HottestKeysMatchEmpiricalFrequency) {
  WorkloadConfig cfg = SmallWorkload();
  cfg.write_ratio = 0;
  WorkloadGenerator gen(cfg, 1, 7);
  const auto hottest = gen.HottestKeys(10);
  std::unordered_set<Key> hot(hottest.begin(), hottest.end());
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (hot.count(gen.Next().key)) {
      ++hits;
    }
  }
  const double expected = ZipfCdf(10, cfg.keyspace, cfg.zipf_alpha);
  EXPECT_NEAR(static_cast<double>(hits) / n, expected, 0.01);
}

TEST(Workload, DriftRotatesHotSetDeterministically) {
  WorkloadConfig cfg = SmallWorkload();
  cfg.drift_period_ops = 1000;
  cfg.drift_rank_shift = 7;
  WorkloadGenerator gen(cfg, 1, 7);

  // Phase is a pure function of the op count: after one period the mapping
  // shifts by drift_rank_shift ranks, so consecutive phases overlap in
  // exactly k - shift of their k hottest keys.
  const auto phase0 = gen.HottestKeysAt(10, 0);
  const auto phase1 = gen.HottestKeysAt(10, 1);
  EXPECT_NE(phase0, phase1);
  for (std::size_t r = 0; r + 7 < phase0.size(); ++r) {
    EXPECT_EQ(phase0[r + 7], phase1[r]);  // rank r+shift slides to rank r
  }

  EXPECT_EQ(gen.drift_phase(), 0u);
  for (int i = 0; i < 1000; ++i) {
    gen.Next();
  }
  EXPECT_EQ(gen.drift_phase(), 1u);
  EXPECT_EQ(gen.HottestKeys(10), phase1);

  // Two generators with identical config replay identical drifting streams.
  WorkloadGenerator a(cfg, 1, 7);
  WorkloadGenerator b(cfg, 1, 7);
  for (int i = 0; i < 2500; ++i) {
    EXPECT_EQ(a.Next().key, b.Next().key);
  }
}

TEST(Workload, StationaryConfigNeverDrifts) {
  WorkloadConfig cfg = SmallWorkload();
  WorkloadGenerator gen(cfg, 1, 7);
  const auto hottest = gen.HottestKeys(10);
  for (int i = 0; i < 5000; ++i) {
    gen.Next();
  }
  EXPECT_EQ(gen.drift_phase(), 0u);
  EXPECT_EQ(gen.HottestKeys(10), hottest);
}

TEST(Workload, GeneratorsAgreeOnKeyMapping) {
  // Different nodes (seeds, tags) must map ranks to the same key ids.
  WorkloadGenerator a(SmallWorkload(), 1, 1);
  WorkloadGenerator b(SmallWorkload(), 2, 999);
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.KeyOfRank(r), b.KeyOfRank(r));
  }
}

TEST(Workload, PerThreadGeneratorsAreDistinctButAligned) {
  // The live runtime gives each node thread its own generator.  They must
  // agree on the rank->key bijection (symmetric hot set), carry distinct
  // writer tags and seeds (unique PUT payloads, decorrelated streams), and
  // match the simulator's per-node derivation exactly.
  auto gens = MakePerThreadGenerators(SmallWorkload(), 4, /*seed=*/9);
  ASSERT_EQ(gens.size(), 4u);
  for (std::uint64_t r = 0; r < 50; ++r) {
    for (const auto& g : gens) {
      EXPECT_EQ(g.KeyOfRank(r), gens[0].KeyOfRank(r));
    }
  }
  WorkloadGenerator sim_node2(SmallWorkload(), /*writer_tag=*/2, PerThreadSeed(9, 2));
  for (int i = 0; i < 200; ++i) {
    const Op a = gens[2].Next();
    const Op b = sim_node2.Next();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.value, b.value);
  }
  // Different threads produce different streams.
  int diff = 0;
  for (int i = 0; i < 100; ++i) {
    if (gens[0].Next().key != gens[1].Next().key) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(Workload, WriteValuesGloballyUnique) {
  WorkloadGenerator a(SmallWorkload(), 1, 5);
  WorkloadGenerator b(SmallWorkload(), 2, 5);
  std::unordered_set<std::string> values;
  for (int i = 0; i < 5000; ++i) {
    const Op opa = a.Next();
    if (opa.type == OpType::kPut) {
      ASSERT_TRUE(values.insert(opa.value).second);
    }
    const Op opb = b.Next();
    if (opb.type == OpType::kPut) {
      ASSERT_TRUE(values.insert(opb.value).second);
    }
  }
}

TEST(Workload, WriteValueRoundTrip) {
  const Value v = MakeWriteValue(42, 1234567, 64);
  EXPECT_EQ(v.size(), 64u);
  std::uint32_t tag = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(ParseWriteValue(v, &tag, &seq));
  EXPECT_EQ(tag, 42u);
  EXPECT_EQ(seq, 1234567u);
}

TEST(Workload, SynthesizedValuesAreDeterministicAndDistinct) {
  EXPECT_EQ(SynthesizeValue(5, 40), SynthesizeValue(5, 40));
  EXPECT_NE(SynthesizeValue(5, 40), SynthesizeValue(6, 40));
  EXPECT_FALSE(ParseWriteValue(SynthesizeValue(5, 40), nullptr, nullptr));
  EXPECT_EQ(SynthesizeValue(5, 1024).size(), 1024u);
}

TEST(Workload, UniformAlphaZero) {
  WorkloadConfig cfg = SmallWorkload();
  cfg.zipf_alpha = 0.0;
  cfg.write_ratio = 0.0;
  WorkloadGenerator gen(cfg, 1, 3);
  std::unordered_set<Key> distinct;
  for (int i = 0; i < 20000; ++i) {
    distinct.insert(gen.Next().key);
  }
  // Uniform over 10k keys: ~8650 distinct expected in 20k draws.
  EXPECT_GT(distinct.size(), 8000u);
}

// ---------------------------------------------------------------------------
// Analytical model (§8.7)
// ---------------------------------------------------------------------------

TEST(Model, PaperValidationPoint) {
  // §8.7.1: with N=9, h=0.65, w=1%, B_RR=113, B_SC=83, B_Lin=183, BW=21.5Gbps:
  // "ccKVS-SC and ccKVS-Lin are estimated to achieve 628 MRPS and 554 MRPS."
  // Evaluating the equations exactly as printed gives 612.8 / 541.5 — within
  // 2.5% of the quoted numbers (which match h≈0.66); assert both readings.
  ModelParams p;  // defaults are exactly that configuration
  EXPECT_NEAR(ThroughputScMrps(p), 628.0, 628.0 * 0.03);
  EXPECT_NEAR(ThroughputLinMrps(p), 554.0, 554.0 * 0.03);
  EXPECT_NEAR(ThroughputScMrps(p), 612.8, 1.0);
  EXPECT_NEAR(ThroughputLinMrps(p), 541.5, 1.0);
}

TEST(Model, UniformMatchesMeasuredBaseline) {
  // Uniform at 9 nodes: ~240 MRPS (§8.1).
  ModelParams p;
  EXPECT_NEAR(ThroughputUniformMrps(p), 240.0, 6.0);
}

TEST(Model, TrafficFormulas) {
  ModelParams p;
  p.num_servers = 9;
  p.hit_ratio = 0.65;
  p.write_ratio = 0.01;
  // eq (1): (1-h)(1-1/N)B_RR = 0.35 * (8/9) * 113
  EXPECT_NEAR(TrafficCacheMissBytes(p), 0.35 * 8.0 / 9.0 * 113.0, 1e-9);
  // eq (2): h*w*(N-1)*B_Lin = 0.65 * 0.01 * 8 * 183
  EXPECT_NEAR(TrafficLinBytes(p), 0.65 * 0.01 * 8 * 183.0, 1e-9);
  // eq (4)
  EXPECT_NEAR(TrafficScBytes(p), 0.65 * 0.01 * 8 * 83.0, 1e-9);
  // eq (6)
  EXPECT_NEAR(TrafficUniformBytes(p), 8.0 / 9.0 * 113.0, 1e-9);
}

TEST(Model, ReadOnlyCcKvsBeatsUniformByHitRate) {
  ModelParams p;
  p.write_ratio = 0.0;
  // With w=0 the throughput ratio is exactly 1/(1-h).
  EXPECT_NEAR(ThroughputScMrps(p) / ThroughputUniformMrps(p), 1.0 / 0.35, 1e-9);
  EXPECT_NEAR(ThroughputLinMrps(p), ThroughputScMrps(p), 1e-9);
}

TEST(Model, ThroughputDecreasesWithWrites) {
  ModelParams p;
  double prev_sc = 1e18;
  double prev_lin = 1e18;
  for (double w : {0.0, 0.01, 0.02, 0.05}) {
    p.write_ratio = w;
    EXPECT_LT(ThroughputScMrps(p), prev_sc);
    EXPECT_LT(ThroughputLinMrps(p), prev_lin);
    EXPECT_LE(ThroughputLinMrps(p), ThroughputScMrps(p));
    prev_sc = ThroughputScMrps(p);
    prev_lin = ThroughputLinMrps(p);
  }
}

TEST(Model, UniformScalesLinearly) {
  ModelParams p;
  p.num_servers = 10;
  const double t10 = ThroughputUniformMrps(p);
  p.num_servers = 40;
  const double t40 = ThroughputUniformMrps(p);
  // §8.7.1 calls Uniform "almost perfectly linear": T_U ∝ N²/(N-1), so the
  // 10→40 ratio is (1600/39)/(100/9) ≈ 3.69 — linear shape, slope settling as
  // the remote fraction (1-1/N) approaches 1.
  EXPECT_NEAR(t40 / t10, 3.69, 0.05);
  EXPECT_GT(t40, 3.5 * t10);
}

TEST(Model, CcKvsScalesSublinearlyWithWrites) {
  ModelParams p;
  p.write_ratio = 0.01;
  p.num_servers = 10;
  const double t10 = ThroughputScMrps(p);
  p.num_servers = 40;
  const double t40 = ThroughputScMrps(p);
  EXPECT_LT(t40 / t10, 3.5);  // §8.7.1: consistency traffic grows with N
  EXPECT_GT(t40 / t10, 1.5);
}

TEST(Model, BreakEvenMatchesPaper) {
  ModelParams p;
  // §8.7.2: "With 40 servers, the break-even write ratio is almost 4% for
  // ccKVS-SC and 1.7% for ccKVS-Lin."
  p.num_servers = 40;
  EXPECT_NEAR(BreakEvenWriteRatioSc(p), 0.034, 0.006);
  EXPECT_NEAR(BreakEvenWriteRatioLin(p), 0.0154, 0.003);
  // "a ccKVS-SC deployment with 20 servers ... at a write ratio of 8%"
  // (the closed form gives ~6.8%; the paper reads its chart generously).
  p.num_servers = 20;
  EXPECT_NEAR(BreakEvenWriteRatioSc(p), 0.068, 0.015);
}

TEST(Model, BreakEvenIsConsistentWithThroughputCurves) {
  // At w = w_break_even the SC curve must cross Uniform.
  ModelParams p;
  p.num_servers = 24;
  p.write_ratio = BreakEvenWriteRatioSc(p);
  EXPECT_NEAR(ThroughputScMrps(p), ThroughputUniformMrps(p),
              1e-6 * ThroughputUniformMrps(p));
  p.write_ratio = BreakEvenWriteRatioLin(p);
  EXPECT_NEAR(ThroughputLinMrps(p), ThroughputUniformMrps(p),
              1e-6 * ThroughputUniformMrps(p));
}

TEST(Model, BreakEvenIndependentOfHitRatio) {
  ModelParams a;
  ModelParams b;
  a.hit_ratio = 0.4;
  b.hit_ratio = 0.9;
  EXPECT_DOUBLE_EQ(BreakEvenWriteRatioSc(a), BreakEvenWriteRatioSc(b));
}

}  // namespace
}  // namespace cckvs
