// Unit tests for the node-private L1 tail tier: the pluggable replacement
// policies, the L1TailCache itself, the flat Space-Saving admission sketch,
// and the Partition::PeekTimestamp hook the Lin validation path relies on.

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "src/cache/l1_tail.h"
#include "src/cache/replacement.h"
#include "src/store/partition.h"
#include "src/topk/flat_space_saving.h"
#include "src/workload/workload.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Replacement policies
// ---------------------------------------------------------------------------

TEST(ReplacementPolicy, ParseRoundTripsAllNames) {
  for (const L1Policy p : {L1Policy::kLru, L1Policy::kClock, L1Policy::kLfu}) {
    L1Policy parsed;
    ASSERT_TRUE(ParseL1Policy(ToString(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  L1Policy parsed;
  EXPECT_FALSE(ParseL1Policy("mru", &parsed));
}

TEST(ReplacementPolicy, LruEvictsLeastRecentlyTouched) {
  LruPolicy lru(3);
  lru.OnInsert(0);
  lru.OnInsert(1);
  lru.OnInsert(2);
  EXPECT_EQ(lru.Victim(), 0u);  // oldest insert
  lru.OnAccess(0);              // 0 becomes MRU; 1 is now coldest
  EXPECT_EQ(lru.Victim(), 1u);
  lru.OnErase(1);
  lru.OnInsert(1);  // reinserted slot is MRU again
  EXPECT_EQ(lru.Victim(), 2u);
}

TEST(ReplacementPolicy, ClockGivesSecondChanceToReferencedSlots) {
  ClockPolicy clock(3);
  clock.OnInsert(0);
  clock.OnInsert(1);
  clock.OnInsert(2);
  // All referenced: the hand sweeps 0,1,2 clearing bits, wraps, and takes 0.
  EXPECT_EQ(clock.Victim(), 0u);
  // 1 and 2 now have clear bits; a fresh access protects 1, so the hand
  // (parked past 0) takes 2.
  clock.OnAccess(1);
  clock.OnErase(0);
  clock.OnInsert(0);
  EXPECT_EQ(clock.Victim(), 2u);
}

TEST(ReplacementPolicy, LfuEvictsMinimumCountLowestSlot) {
  LfuPolicy lfu(3);
  lfu.OnInsert(0);
  lfu.OnInsert(1);
  lfu.OnInsert(2);
  lfu.OnAccess(0);
  lfu.OnAccess(0);
  lfu.OnAccess(2);
  EXPECT_EQ(lfu.Victim(), 1u);  // counts: 3, 1, 2
  lfu.OnAccess(1);
  // Tie between slots 1 and 2 at count 2: lowest slot index wins.
  EXPECT_EQ(lfu.Victim(), 1u);
}

TEST(ReplacementPolicy, SameEventSequenceEvictsSameSlots) {
  for (const L1Policy kind : {L1Policy::kLru, L1Policy::kClock, L1Policy::kLfu}) {
    auto a = MakeReplacementPolicy(kind, 4);
    auto b = MakeReplacementPolicy(kind, 4);
    for (std::size_t s = 0; s < 4; ++s) {
      a->OnInsert(s);
      b->OnInsert(s);
    }
    for (int round = 0; round < 16; ++round) {
      const auto touch = static_cast<std::size_t>((round * 7 + 3) % 4);
      a->OnAccess(touch);
      b->OnAccess(touch);
      const std::size_t va = a->Victim();
      ASSERT_EQ(va, b->Victim()) << ToString(kind) << " round " << round;
      a->OnErase(va);
      b->OnErase(va);
      a->OnInsert(va);
      b->OnInsert(va);
    }
  }
}

// ---------------------------------------------------------------------------
// L1TailCache
// ---------------------------------------------------------------------------

TEST(L1TailCache, FillGetInvalidate) {
  L1TailCache l1(4, L1Policy::kLru, 16);
  EXPECT_EQ(l1.size(), 0u);
  EXPECT_STREQ(l1.policy_name(), "lru");

  l1.Fill(7, "seven", Timestamp{3, 1});
  Value v;
  Timestamp ts;
  ASSERT_TRUE(l1.Get(7, &v, &ts));
  EXPECT_EQ(v, "seven");
  EXPECT_EQ(ts, (Timestamp{3, 1}));
  EXPECT_FALSE(l1.Get(8, &v, &ts));

  EXPECT_TRUE(l1.Invalidate(7));
  EXPECT_FALSE(l1.Invalidate(7));  // already gone
  EXPECT_FALSE(l1.Get(7, &v, &ts));

  EXPECT_EQ(l1.stats().hits, 1u);
  EXPECT_EQ(l1.stats().misses, 2u);
  EXPECT_EQ(l1.stats().fills, 1u);
  EXPECT_EQ(l1.stats().invalidations, 1u);
  EXPECT_EQ(l1.stats().evictions, 0u);
}

TEST(L1TailCache, RefillRefreshesInPlace) {
  L1TailCache l1(2, L1Policy::kLru, 8);
  l1.Fill(1, "old", Timestamp{1, 0});
  l1.Fill(1, "new", Timestamp{2, 0});
  EXPECT_EQ(l1.size(), 1u);
  EXPECT_EQ(l1.stats().fills, 2u);
  Value v;
  Timestamp ts;
  ASSERT_TRUE(l1.Get(1, &v, &ts));
  EXPECT_EQ(v, "new");
  EXPECT_EQ(ts, (Timestamp{2, 0}));
}

TEST(L1TailCache, CapacityEvictionFollowsLruOrder) {
  L1TailCache l1(2, L1Policy::kLru, 8);
  l1.Fill(1, "a", Timestamp{1, 0});
  l1.Fill(2, "b", Timestamp{1, 0});
  Value v;
  Timestamp ts;
  ASSERT_TRUE(l1.Get(1, &v, &ts));       // 1 becomes MRU
  l1.Fill(3, "c", Timestamp{1, 0});      // full: evicts 2, the LRU
  EXPECT_TRUE(l1.Contains(1));
  EXPECT_FALSE(l1.Contains(2));
  EXPECT_TRUE(l1.Contains(3));
  EXPECT_EQ(l1.stats().evictions, 1u);
  EXPECT_EQ(l1.size(), 2u);
}

TEST(L1TailCache, KeysAndPeekTimestamp) {
  L1TailCache l1(4, L1Policy::kClock, 8);
  l1.Fill(10, "x", Timestamp{5, 2});
  l1.Fill(11, "y", Timestamp{6, 3});
  const std::vector<Key> keys = l1.Keys();
  const std::unordered_set<Key> set(keys.begin(), keys.end());
  EXPECT_EQ(set, (std::unordered_set<Key>{10, 11}));

  Timestamp ts;
  ASSERT_TRUE(l1.PeekTimestamp(10, &ts));
  EXPECT_EQ(ts, (Timestamp{5, 2}));
  EXPECT_FALSE(l1.PeekTimestamp(12, &ts));
  // Peeks are policy-invisible: stats unchanged.
  EXPECT_EQ(l1.stats().hits, 0u);
  EXPECT_EQ(l1.stats().misses, 0u);
}

TEST(L1TailCache, SurvivesChurnAcrossAllPolicies) {
  // Deletion uses backward-shift open addressing; hammer insert/erase cycles
  // well past capacity to exercise wrap-around and slot recycling.
  for (const L1Policy kind : {L1Policy::kLru, L1Policy::kClock, L1Policy::kLfu}) {
    L1TailCache l1(8, kind, 8);
    for (Key k = 0; k < 512; ++k) {
      l1.Fill(k, std::to_string(k), Timestamp{static_cast<std::uint32_t>(k), 0});
      if (k % 3 == 0) {
        l1.Invalidate(k / 2);
      }
      Value v;
      Timestamp ts;
      if (l1.Get(k, &v, &ts)) {
        EXPECT_EQ(v, std::to_string(k));
      }
      ASSERT_LE(l1.size(), 8u);
    }
    // Every surviving resident still round-trips.
    for (const Key k : l1.Keys()) {
      Value v;
      Timestamp ts;
      ASSERT_TRUE(l1.Get(k, &v, &ts));
      EXPECT_EQ(v, std::to_string(k));
    }
  }
}

// ---------------------------------------------------------------------------
// FlatSpaceSaving
// ---------------------------------------------------------------------------

TEST(FlatSpaceSaving, CountsAndRanksHeavyHitters) {
  FlatSpaceSaving sketch(4);
  for (int i = 0; i < 10; ++i) sketch.Offer(1);
  for (int i = 0; i < 6; ++i) sketch.Offer(2);
  sketch.Offer(3);
  EXPECT_EQ(sketch.EstimateOf(1), 10u);
  EXPECT_EQ(sketch.EstimateOf(2), 6u);
  EXPECT_EQ(sketch.EstimateOf(3), 1u);
  EXPECT_EQ(sketch.EstimateOf(99), 0u);

  const auto top = sketch.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(FlatSpaceSaving, ReplacementInheritsMinimumCount) {
  FlatSpaceSaving sketch(2);
  for (int i = 0; i < 5; ++i) sketch.Offer(1);
  for (int i = 0; i < 3; ++i) sketch.Offer(2);
  // Full: a newcomer evicts the minimum (key 2, count 3) and inherits
  // count+1 with error = evicted count — the classic Space-Saving rule.
  const std::uint64_t est = sketch.Offer(7);
  EXPECT_EQ(est, 4u);
  EXPECT_EQ(sketch.EstimateOf(7), 4u);
  EXPECT_EQ(sketch.EstimateOf(2), 0u);  // evicted
  EXPECT_EQ(sketch.size(), 2u);
}

TEST(FlatSpaceSaving, DecayHalvesEstimates) {
  FlatSpaceSaving sketch(4);
  for (int i = 0; i < 8; ++i) sketch.Offer(1);
  for (int i = 0; i < 3; ++i) sketch.Offer(2);
  sketch.DecayHalve();
  EXPECT_EQ(sketch.EstimateOf(1), 4u);
  EXPECT_EQ(sketch.EstimateOf(2), 1u);
  // Order is preserved (halving is monotone): key 1 still ranks first.
  const auto top = sketch.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 1u);
}

TEST(FlatSpaceSaving, ChurnKeepsIndexConsistent) {
  FlatSpaceSaving sketch(16);
  for (Key k = 0; k < 4096; ++k) {
    sketch.Offer(k % 61);  // more distinct keys than capacity
    if (k % 97 == 0) {
      sketch.DecayHalve();
    }
  }
  ASSERT_EQ(sketch.size(), 16u);
  // Every tracked entry is findable through the index at its heap count.
  for (const auto& e : sketch.TopK(16)) {
    EXPECT_EQ(sketch.EstimateOf(e.key), e.count);
  }
}

// ---------------------------------------------------------------------------
// Partition::PeekTimestamp (the Lin hit-validation hook)
// ---------------------------------------------------------------------------

TEST(PartitionPeek, MatchesPutAndTracksResidency) {
  PartitionConfig pc;
  pc.buckets = 64;
  pc.node_id = 3;
  pc.synthesize = [](Key key) { return SynthesizeValue(key, 8); };
  Partition part(pc);

  const Timestamp wrote = part.Put(42, "hello");
  Timestamp ts;
  bool resident = true;
  ASSERT_TRUE(part.PeekTimestamp(42, &ts, &resident));
  EXPECT_EQ(ts, wrote);
  EXPECT_FALSE(resident);

  // A never-written key under a synthesizer peeks as the zero timestamp —
  // the same answer a full Get would return.
  ASSERT_TRUE(part.PeekTimestamp(7, &ts, &resident));
  EXPECT_EQ(ts, (Timestamp{0, 0}));

  // Residency is visible through the peek, so a Lin validation cannot trust
  // a shard copy the hot set owns.
  part.MarkCacheResident(42);
  ASSERT_TRUE(part.PeekTimestamp(42, &ts, &resident));
  EXPECT_TRUE(resident);
  part.ClearCacheResident(42);
  ASSERT_TRUE(part.PeekTimestamp(42, &ts, &resident));
  EXPECT_FALSE(resident);
}

}  // namespace
}  // namespace cckvs
