// Unit tests for src/common: Zipf math, RNG, scrambler, histogram, hashing,
// timestamps and CHECK macros.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/common/zipf.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// GeneralizedHarmonic
// ---------------------------------------------------------------------------

double NaiveHarmonic(std::uint64_t n, double alpha) {
  double s = 0;
  for (std::uint64_t r = n; r >= 1; --r) {
    s += std::pow(static_cast<double>(r), -alpha);
  }
  return s;
}

TEST(GeneralizedHarmonic, MatchesNaiveSmall) {
  for (double alpha : {0.0, 0.5, 0.9, 0.99, 1.0, 1.01, 1.5, 2.0}) {
    for (std::uint64_t n : {1ull, 2ull, 10ull, 1000ull, 100000ull}) {
      EXPECT_NEAR(GeneralizedHarmonic(n, alpha), NaiveHarmonic(n, alpha),
                  1e-9 * NaiveHarmonic(n, alpha))
          << "n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(GeneralizedHarmonic, EulerMaclaurinMatchesNaiveLarge) {
  // 5M crosses the exact-summation threshold (2^20), exercising the E-M tail.
  const std::uint64_t n = 5'000'000;
  for (double alpha : {0.9, 0.99, 1.0, 1.01}) {
    const double exact = NaiveHarmonic(n, alpha);
    EXPECT_NEAR(GeneralizedHarmonic(n, alpha), exact, 1e-9 * exact)
        << "alpha=" << alpha;
  }
}

TEST(GeneralizedHarmonic, MonotoneInN) {
  EXPECT_LT(GeneralizedHarmonic(10, 0.99), GeneralizedHarmonic(11, 0.99));
  EXPECT_LT(GeneralizedHarmonic(1u << 21, 0.99), GeneralizedHarmonic((1u << 21) + 1000, 0.99));
}

TEST(GeneralizedHarmonic, AlphaZeroIsN) {
  EXPECT_DOUBLE_EQ(GeneralizedHarmonic(12345, 0.0), 12345.0);
}

// ---------------------------------------------------------------------------
// ZipfCdf: the Figure 3 hit-rate claims
// ---------------------------------------------------------------------------

TEST(ZipfCdf, PaperFigure3HitRates) {
  // §7.1: with a cache of 0.1% of a 250M-key dataset the paper quotes expected
  // hit ratios of 46%, 65%, 69% for alpha = 0.9, 0.99, 1.01 (read off Figure 3).
  // The analytically exact values for those parameters are 42.2%, 63.0%, 67.5%;
  // we assert agreement with the paper within 4 percentage points.
  const std::uint64_t n = 250'000'000;
  const std::uint64_t k = 250'000;  // 0.1%
  EXPECT_NEAR(ZipfCdf(k, n, 0.90), 0.46, 0.04);
  EXPECT_NEAR(ZipfCdf(k, n, 0.99), 0.65, 0.04);
  EXPECT_NEAR(ZipfCdf(k, n, 1.01), 0.69, 0.04);
  // Pin the exact values so regressions in the harmonic math are caught tightly.
  EXPECT_NEAR(ZipfCdf(k, n, 0.90), 0.4224, 0.002);
  EXPECT_NEAR(ZipfCdf(k, n, 0.99), 0.6304, 0.002);
  EXPECT_NEAR(ZipfCdf(k, n, 1.01), 0.6754, 0.002);
}

TEST(ZipfCdf, Extremes) {
  EXPECT_DOUBLE_EQ(ZipfCdf(0, 100, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(ZipfCdf(100, 100, 0.99), 1.0);
  EXPECT_DOUBLE_EQ(ZipfCdf(200, 100, 0.99), 1.0);
}

TEST(ZipfPmf, SumsToOne) {
  const std::uint64_t n = 1000;
  double sum = 0;
  for (std::uint64_t r = 1; r <= n; ++r) {
    sum += ZipfPmf(r, n, 0.99);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfPmf, HottestKeyShareAt250M) {
  // The rank-1 probability at alpha=0.99/250M keys is ~4.5%; this drives the
  // Figure 1 imbalance (hottest of 128 servers gets ~7x the average load).
  const double p1 = ZipfPmf(1, 250'000'000, 0.99);
  EXPECT_GT(p1, 0.040);
  EXPECT_LT(p1, 0.055);
}

// ---------------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------------

TEST(ZipfSampler, RanksInRange) {
  ZipfSampler sampler(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t r = sampler.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 1000u);
  }
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  const std::uint64_t n = 100;
  ZipfSampler sampler(n, 0.99);
  Rng rng(42);
  const int draws = 400000;
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < draws; ++i) {
    counts[sampler.Sample(rng)]++;
  }
  for (std::uint64_t r : {1ull, 2ull, 5ull, 10ull, 50ull}) {
    const double expected = ZipfPmf(r, n, 0.99);
    const double got = static_cast<double>(counts[r]) / draws;
    EXPECT_NEAR(got, expected, 0.15 * expected + 0.001) << "rank " << r;
  }
}

TEST(ZipfSampler, EmpiricalCdfTopK) {
  // Empirical hit rate of the top 1% must track ZipfCdf.
  const std::uint64_t n = 100000;
  ZipfSampler sampler(n, 0.99);
  Rng rng(7);
  const int draws = 300000;
  int hits = 0;
  const std::uint64_t k = n / 100;
  for (int i = 0; i < draws; ++i) {
    if (sampler.Sample(rng) <= k) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / draws, ZipfCdf(k, n, 0.99), 0.01);
}

TEST(ZipfSampler, AlphaZeroUniform) {
  const std::uint64_t n = 10;
  ZipfSampler sampler(n, 0.0);
  Rng rng(3);
  std::vector<int> counts(n + 1, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    counts[sampler.Sample(rng)]++;
  }
  for (std::uint64_t r = 1; r <= n; ++r) {
    EXPECT_NEAR(counts[r] * 10.0 / draws, 1.0, 0.05);
  }
}

TEST(ZipfSampler, DeterministicAcrossRuns) {
  ZipfSampler sampler(1 << 20, 0.99);
  Rng rng1(99), rng2(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.Sample(rng1), sampler.Sample(rng2));
  }
}

TEST(ZipfSampler, HugeDomain) {
  // 250M keys as in the paper; draws must stay in range and skew to low ranks.
  const std::uint64_t n = 250'000'000;
  ZipfSampler sampler(n, 0.99);
  Rng rng(5);
  int top_million = 0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t r = sampler.Sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, n);
    if (r <= 1'000'000) {
      ++top_million;
    }
  }
  const double expected = ZipfCdf(1'000'000, n, 0.99);
  EXPECT_NEAR(static_cast<double>(top_million) / draws, expected, 0.02);
}

// ---------------------------------------------------------------------------
// KeyScrambler
// ---------------------------------------------------------------------------

TEST(KeyScrambler, BijectiveSmallDomain) {
  for (std::uint64_t n : {1ull, 2ull, 3ull, 17ull, 256ull, 1000ull}) {
    KeyScrambler scrambler(n, 0xabcdef);
    std::unordered_set<std::uint64_t> seen;
    for (std::uint64_t r = 0; r < n; ++r) {
      const std::uint64_t k = scrambler.RankToKey(r);
      ASSERT_LT(k, n);
      ASSERT_TRUE(seen.insert(k).second) << "collision in domain " << n;
    }
  }
}

TEST(KeyScrambler, SeedChangesPermutation) {
  KeyScrambler a(1000, 1), b(1000, 2);
  int diffs = 0;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    if (a.RankToKey(r) != b.RankToKey(r)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 900);
}

TEST(KeyScrambler, StableForFixedSeed) {
  KeyScrambler a(1 << 16, 77), b(1 << 16, 77);
  for (std::uint64_t r = 0; r < 1024; ++r) {
    EXPECT_EQ(a.RankToKey(r), b.RankToKey(r));
  }
}

TEST(KeyScrambler, SpreadsHotRanks) {
  // The 10 hottest ranks should land in well-separated key ids, not clustered.
  const std::uint64_t n = 1 << 20;
  KeyScrambler scrambler(n, 123);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t r = 0; r < 10; ++r) {
    keys.push_back(scrambler.RankToKey(r));
  }
  // All distinct and not all in the same 1/16th of the domain.
  std::unordered_set<std::uint64_t> buckets;
  for (std::uint64_t k : keys) {
    buckets.insert(k / (n / 16));
  }
  EXPECT_GE(buckets.size(), 4u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, BoundedStaysInBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, DeterministicSeeding) {
  Rng a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ForkIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 2);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(123);
  std::vector<int> counts(8, 0);
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    counts[rng.NextBounded(8)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 8 / 10);
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BasicStats) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(Histogram, QuantilesExactForSmallValues) {
  // Values below 64 are exact buckets.
  Histogram h;
  for (std::uint64_t v = 0; v < 60; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.P50(), 29u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 59u);
}

TEST(Histogram, QuantileWithinRelativeError) {
  Histogram h;
  Rng rng(4);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = 100 + rng.NextBounded(1000000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  const std::uint64_t exact_p95 = values[static_cast<std::size_t>(0.95 * (values.size() - 1))];
  const std::uint64_t approx = h.P95();
  EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact_p95),
              0.03 * static_cast<double>(exact_p95));
}

TEST(Histogram, MergeAddsUp) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, HandlesHugeValues) {
  Histogram h;
  h.Record(~0ull);
  h.Record(1ull << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_GE(h.Quantile(1.0), 1ull << 62);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    ASSERT_TRUE(seen.insert(Mix64(i)).second);
  }
}

TEST(Hash, Fnv1aDiffersByContent) {
  EXPECT_NE(Fnv1a("node-1#0"), Fnv1a("node-1#1"));
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  EXPECT_EQ(Fnv1a("same"), Fnv1a("same"));
}

TEST(Hash, KeyHashSpreadsLowBits) {
  // Sequential keys must not map to sequential shards.
  int same_as_prev = 0;
  for (std::uint64_t k = 1; k < 1000; ++k) {
    if (HashKey(k) % 9 == HashKey(k - 1) % 9) {
      ++same_as_prev;
    }
  }
  EXPECT_LT(same_as_prev, 250);
}

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

TEST(Timestamp, TotalOrder) {
  const Timestamp a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (Timestamp{1, 0}));
  EXPECT_NE(a, b);
}

TEST(Timestamp, ClockDominatesWriter) {
  const Timestamp low_clock_high_writer{1, 200}, high_clock_low_writer{2, 0};
  EXPECT_LT(low_clock_high_writer, high_clock_low_writer);
}

// ---------------------------------------------------------------------------
// CHECK macros
// ---------------------------------------------------------------------------

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CCKVS_CHECK(1 == 2), "CHECK failed");
}

TEST(CheckDeathTest, CheckEqPrintsOperands) {
  EXPECT_DEATH(CCKVS_CHECK_EQ(3, 4), "lhs=3, rhs=4");
}

TEST(Check, PassingChecksAreSilent) {
  CCKVS_CHECK(true);
  CCKVS_CHECK_EQ(1, 1);
  CCKVS_CHECK_LT(1, 2);
  CCKVS_CHECK_GE(2, 2);
}

}  // namespace
}  // namespace cckvs
