// Live multithreaded rack (src/runtime/): real threads running the production
// store/cache/engine code, certified by the verify/ checkers.
//
// These are the tests the CI sanitizer matrix exists for: under TSan they
// exercise the CRCW seqlock path, the MPSC channels and the credit scheme
// with genuine concurrency.  Op counts scale down under sanitizers (and up
// via CCKVS_LIVE_OPS) — a plain Release run covers millions of operations.

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/runtime/live_rack.h"
#include "src/verify/history.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CCKVS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CCKVS_SANITIZED 1
#endif
#endif

namespace cckvs {
namespace {

std::uint64_t OpsPerNode(std::uint64_t release_default, std::uint64_t sanitized) {
  if (const char* env = std::getenv("CCKVS_LIVE_OPS"); env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
#ifdef CCKVS_SANITIZED
  (void)release_default;
  return sanitized;
#else
  (void)sanitized;
  return release_default;
#endif
}

LiveRackParams StressParams(ConsistencyModel model) {
  LiveRackParams p;
  p.num_nodes = 4;
  p.consistency = model;
  // Small keyspace + small cache: maximal hot-key contention, a healthy miss
  // stream through the CRCW shards, and lots of protocol traffic.
  p.workload.keyspace = 16'384;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.2;
  p.workload.value_bytes = 16;  // SSO-sized: histories of millions of ops stay cheap
  p.cache_capacity = 512;
  p.partition_buckets = 1 << 10;
  p.window_per_node = 8;
  p.record_history = true;
  p.seed = 7;
  return p;
}

void ExpectHealthyRun(const LiveRackParams& p, const LiveReport& r) {
  EXPECT_GE(r.completed, p.ops_per_node * static_cast<std::uint64_t>(p.num_nodes));
  EXPECT_GT(r.rack.hit_rate, 0.0);
  EXPECT_LT(r.rack.hit_rate, 1.0);  // the keyspace tail misses
  // The credit sizing must have kept every channel below its bound.
  EXPECT_EQ(r.channel_full_waits, 0u);
  // Transport invariants that hold with and without coalescing: the fabric
  // drained completely, every sent message arrived, and a receiver was only
  // ever woken by an actual push.
  EXPECT_EQ(r.channel_batches, r.batches_sent);
  EXPECT_LE(r.wakeups, r.channel_batches);
  if (p.coalescing) {
    EXPECT_GT(r.channel_messages, r.channel_batches)
        << "coalescing on but no batch ever carried two messages";
  } else {
    EXPECT_EQ(r.channel_messages, r.channel_batches);
  }
}

TEST(LiveRackTest, ScStressHistoriesAreSequentiallyConsistent) {
  LiveRackParams p = StressParams(ConsistencyModel::kSc);
  p.ops_per_node = OpsPerNode(250'000, 30'000);
  LiveRack rack(p);
  const LiveReport r = rack.Run();
  ExpectHealthyRun(p, r);
  EXPECT_GT(r.engine_totals.writes, 0u);
  EXPECT_GT(r.rack.updates_sent, 0u);
  EXPECT_EQ(r.rack.invalidations_sent, 0u);  // SC has no invalidation phase

  EXPECT_EQ(rack.history().size(), r.completed);
  EXPECT_EQ(rack.history().CheckPerKeySequentialConsistency(), "");
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
}

TEST(LiveRackTest, LinStressHistoriesAreLinearizable) {
  LiveRackParams p = StressParams(ConsistencyModel::kLin);
  p.ops_per_node = OpsPerNode(250'000, 30'000);
  LiveRack rack(p);
  const LiveReport r = rack.Run();
  ExpectHealthyRun(p, r);
  EXPECT_GT(r.rack.invalidations_sent, 0u);
  EXPECT_GT(r.rack.acks_sent, 0u);
  // Every invalidation is acknowledged — the deadlock-freedom linchpin.
  EXPECT_EQ(r.rack.acks_sent, r.rack.invalidations_sent);

  EXPECT_EQ(rack.history().size(), r.completed);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
  EXPECT_EQ(rack.history().CheckWriteAtomicity(), "");
}

// A deliberately vicious interleaving mill: nearly every key is hot, a third
// of ops are writes, so concurrent writers collide on the same entries
// constantly (superseded writes, update-overtakes-invalidation, queued local
// writes all trigger).
TEST(LiveRackTest, HotContentionBothModels) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.workload.keyspace = 512;
    p.workload.write_ratio = 0.3;
    p.cache_capacity = 128;
    p.ops_per_node = OpsPerNode(50'000, 10'000);
    p.seed = 11;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
  }
}

// Adaptive epochs under a drifting workload: node 0 learns the hot set
// online, every epoch transition churns cache membership while writes are in
// flight, and the workload keeps shifting popularity so transitions never
// stop.  This exercises the whole hot-set subsystem — coordinator sampling,
// announce/fill/install-barrier traffic on the credited channels, deferred
// protocol-safe evictions, and the shard residency gate that keeps the
// direct-miss data plane consistent — and the sealed histories must still
// pass the full per-key SC/Lin checkers, not just write atomicity.
TEST(LiveRackTest, EpochChurnUnderDriftStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.workload.keyspace = 8'192;
    p.workload.drift_period_ops = 15'000;
    p.workload.drift_rank_shift = 64;
    p.cache_capacity = 256;
    p.prefill_hot_set = false;  // learn from cold
    p.online_topk = true;
    p.topk_epoch_requests = 5'000;
    p.topk_sample_probability = 1.0;
    p.ops_per_node = OpsPerNode(60'000, 15'000);
    p.seed = 13;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    EXPECT_GT(r.rack.epochs, 1u) << "epochs must keep closing";
    EXPECT_GT(r.epoch_msgs, 0u);
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
  }
}

// The full stress matrix with transport coalescing on: batched channel
// traffic must leave the sealed histories exactly as checker-clean as the
// per-message fabric.  This is the TSan/ASan target for the coalescer — the
// per-peer FIFO across batch boundaries and message-granular credits are
// load-bearing here, not simulated.
TEST(LiveRackTest, CoalescedStressStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.coalescing = true;
    p.coalesce_max_batch = 8;
    p.ops_per_node = OpsPerNode(150'000, 20'000);
    p.seed = 17;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
    if (model == ConsistencyModel::kLin) {
      EXPECT_EQ(r.rack.acks_sent, r.rack.invalidations_sent);
    }
  }
}

// Deadline-held batches (coalesce_flush_deadline_us) must not disturb the
// checkers either: sub-cap batches now outlive op boundaries, so protocol
// messages can sit in an open batch across many pump iterations before the
// deadline ships them — FIFO, credits and the drain exit must all survive.
TEST(LiveRackTest, DeadlineFlushStressStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.coalescing = true;
    p.coalesce_max_batch = 16;
    p.coalesce_flush_deadline_us = 20;
    p.ops_per_node = OpsPerNode(100'000, 15'000);
    p.seed = 23;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    EXPECT_GT(r.flushes_deadline, 0u) << "the hold policy never fired";
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
  }
}

// Coalescing composed with the hot-set subsystem under drift: epoch traffic
// (announce/fill/install barrier) rides the same batched lanes as the
// protocol messages it must stay FIFO with.
TEST(LiveRackTest, CoalescedEpochChurnUnderDriftStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.coalescing = true;
    p.coalesce_max_batch = 16;
    p.workload.keyspace = 8'192;
    p.workload.drift_period_ops = 15'000;
    p.workload.drift_rank_shift = 64;
    p.cache_capacity = 256;
    p.prefill_hot_set = false;
    p.online_topk = true;
    p.topk_epoch_requests = 5'000;
    p.topk_sample_probability = 1.0;
    p.topk_adaptive_epochs = true;  // drift-aware pacing rides along
    p.ops_per_node = OpsPerNode(60'000, 15'000);
    p.seed = 19;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    EXPECT_GT(r.rack.epochs, 1u);
    EXPECT_GT(r.epoch_msgs, 0u);
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
  }
}

// Oracle prefill composed with online epochs: the run starts in the steady
// state and the epoch machinery takes membership over from there.
TEST(LiveRackTest, PrefilledOnlineTopkStaysConsistent) {
  LiveRackParams p = StressParams(ConsistencyModel::kLin);
  p.online_topk = true;
  p.topk_epoch_requests = 10'000;
  p.topk_sample_probability = 1.0;
  p.ops_per_node = OpsPerNode(40'000, 10'000);
  LiveRack rack(p);
  const LiveReport r = rack.Run();
  ExpectHealthyRun(p, r);
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
}

// The node-private L1 tail in front of the symmetric tier: per-node rank
// skew (node_rank_stride) makes each node's locally-hot keys diverge from
// the global hot set, so the L1 actually fills and serves.  The sealed
// histories must stay exactly as checker-clean as without the L1 — the
// write-through-invalidate posture's whole claim — and the two tiers must
// never hold the same key (tier exclusivity).
TEST(LiveRackTest, L1TailStressStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    for (const L1Policy policy : {L1Policy::kLru, L1Policy::kLfu}) {
      LiveRackParams p = StressParams(model);
      p.l1_capacity = 256;
      p.l1_policy = policy;
      p.workload.node_rank_stride = 1'024;  // per-node popularity divergence
      p.ops_per_node = OpsPerNode(120'000, 20'000);
      p.seed = 29;
      LiveRack rack(p);
      const LiveReport r = rack.Run();
      ExpectHealthyRun(p, r);
      EXPECT_GT(r.rack.l1_fills, 0u) << "L1 never admitted a key";
      EXPECT_GT(r.rack.l1_hits, 0u) << "L1 never served a hit";
      EXPECT_GT(r.rack.l1_invalidations, 0u) << "writes never invalidated";
      for (NodeId n = 0; n < static_cast<NodeId>(p.num_nodes); ++n) {
        const L1TailCache* l1 = rack.node(n).l1();
        ASSERT_NE(l1, nullptr);
        for (const Key key : l1->Keys()) {
          EXPECT_EQ(rack.node(n).cache().Find(key), nullptr)
              << "key " << key << " resident in both tiers on node "
              << static_cast<int>(n);
        }
      }
      const std::string err = model == ConsistencyModel::kSc
                                  ? rack.history().CheckPerKeySequentialConsistency()
                                  : rack.history().CheckPerKeyLinearizability();
      EXPECT_EQ(err, "") << "model=" << ToString(model)
                         << " policy=" << ToString(policy);
      EXPECT_EQ(rack.history().CheckWriteAtomicity(), "")
          << "model=" << ToString(model) << " policy=" << ToString(policy);
    }
  }
}

// L1 composed with epoch churn: keys promoted into the symmetric tier by an
// announce must leave every node's L1 (the announce hook), and the residency
// gate must keep Lin validation honest while shard copies are transiently
// stale.
TEST(LiveRackTest, L1TailUnderEpochChurnStaysConsistent) {
  for (const ConsistencyModel model :
       {ConsistencyModel::kSc, ConsistencyModel::kLin}) {
    LiveRackParams p = StressParams(model);
    p.l1_capacity = 128;
    p.l1_policy = L1Policy::kClock;
    p.workload.keyspace = 8'192;
    p.workload.node_rank_stride = 512;
    p.workload.drift_period_ops = 15'000;
    p.workload.drift_rank_shift = 64;
    p.cache_capacity = 256;
    p.prefill_hot_set = false;
    p.online_topk = true;
    p.topk_epoch_requests = 5'000;
    p.topk_sample_probability = 1.0;
    p.ops_per_node = OpsPerNode(60'000, 15'000);
    p.seed = 31;
    LiveRack rack(p);
    const LiveReport r = rack.Run();
    ExpectHealthyRun(p, r);
    EXPECT_GT(r.rack.epochs, 1u);
    const std::string err = model == ConsistencyModel::kSc
                                ? rack.history().CheckPerKeySequentialConsistency()
                                : rack.history().CheckPerKeyLinearizability();
    EXPECT_EQ(err, "") << "model=" << ToString(model);
    EXPECT_EQ(rack.history().CheckWriteAtomicity(), "") << "model=" << ToString(model);
  }
}

// The cooperative stop token halts issuing early but still drains to global
// quiescence, so the sealed history stays checker-clean.
TEST(LiveRackTest, EarlyStopStillSealsHistories) {
  LiveRackParams p = StressParams(ConsistencyModel::kLin);
  p.ops_per_node = 100'000'000;  // unreachable: the stop token ends the run
  LiveRack rack(p);
  std::thread stopper([&rack] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    rack.RequestStop();
  });
  const LiveReport r = rack.Run();
  stopper.join();
  EXPECT_GT(r.completed, 0u);
  EXPECT_LT(r.completed, p.ops_per_node * static_cast<std::uint64_t>(p.num_nodes));
  EXPECT_EQ(rack.history().CheckPerKeyLinearizability(), "");
}

}  // namespace
}  // namespace cckvs
