// Transport batching invariants (runtime/coalescer.h + runtime/transport.h).
//
// The live rack's correctness rests on properties the coalescing subsystem
// must not disturb: per-peer FIFO order across batch boundaries (the Lin
// invalidation-then-update order and the install barrier both ride it),
// per-message credit accounting (§6.3's bounds are about messages, not
// packets), and a message-granular inflight() (the drain-phase exit
// condition).  These tests drive endpoints directly from one thread — the
// owning-thread contract only requires that calls are serialized, so a
// single test thread may play every node in turn.

#include <chrono>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/transport.h"

namespace cckvs {
namespace {

LiveTransport::Config SmallConfig(int nodes, bool coalescing, int max_batch = 4) {
  LiveTransport::Config c;
  c.num_nodes = nodes;
  c.bcast_credits_per_peer = 4;
  c.credit_update_batch = 2;
  c.channel_capacity = 256;
  c.coalescing = coalescing;
  c.coalesce_max_batch = max_batch;
  return c;
}

UpdateMsg Upd(Key key, std::uint32_t clock, NodeId writer = 0) {
  return UpdateMsg{key, "v" + std::to_string(clock), Timestamp{clock, writer}};
}

// Drains everything currently deliverable at `ep`, recording message order.
struct Drained {
  std::vector<Key> keys;
  std::vector<Timestamp> update_ts;
  std::size_t messages = 0;
};

Drained DrainAll(LiveTransport::Endpoint& ep) {
  Drained d;
  d.messages = ep.Poll(1024, [&d](NodeId, const WireBody& body) {
    if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
      d.keys.push_back(upd->key);
      d.update_ts.push_back(upd->ts);
    } else if (const auto* inv = std::get_if<InvalidateMsg>(&body)) {
      d.keys.push_back(inv->key);
    } else if (const auto* ack = std::get_if<AckMsg>(&body)) {
      d.keys.push_back(ack->key);
    }
  });
  return d;
}

// --------------------------------------------------------------------------
// SendCoalescer unit behaviour
// --------------------------------------------------------------------------

TEST(SendCoalescerTest, SizeCapClosesBatchesAndCausesAreCounted) {
  CoalescerConfig cc;
  cc.self = 0;
  cc.num_peers = 2;
  cc.enabled = true;
  cc.max_batch = 3;
  SendCoalescer co(cc);

  EXPECT_FALSE(co.Append(1, WireBody{Upd(7, 1)}));
  EXPECT_FALSE(co.Append(1, WireBody{Upd(7, 2)}));
  EXPECT_TRUE(co.Append(1, WireBody{Upd(7, 3)}));  // hit the cap
  WireBatch b = co.Take(1, FlushCause::kSize);
  EXPECT_EQ(b.src, 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(co.AllEmpty());

  co.Append(1, WireBody{Upd(8, 1)});
  EXPECT_EQ(co.open_messages(), 1u);
  EXPECT_EQ(co.Take(1, FlushCause::kBoundary).size(), 1u);
  // Taking an empty batch records nothing.
  EXPECT_TRUE(co.Take(1, FlushCause::kIdle).empty());

  EXPECT_EQ(co.batches_sent(), 2u);
  EXPECT_EQ(co.messages_sent(), 4u);
  EXPECT_EQ(co.flushes(FlushCause::kSize), 1u);
  EXPECT_EQ(co.flushes(FlushCause::kBoundary), 1u);
  EXPECT_EQ(co.flushes(FlushCause::kIdle), 0u);
  EXPECT_EQ(co.batch_sizes().count(), 2u);
  EXPECT_EQ(co.batch_sizes().max(), 3u);
}

TEST(SendCoalescerTest, DisabledMeansEveryMessageClosesItsOwnBatch) {
  CoalescerConfig cc;
  cc.self = 0;
  cc.num_peers = 2;
  cc.enabled = false;
  cc.max_batch = 16;  // ignored when disabled
  SendCoalescer co(cc);
  EXPECT_TRUE(co.Append(1, WireBody{Upd(1, 1)}));
  EXPECT_EQ(co.Take(1, FlushCause::kSize).size(), 1u);
}

// --------------------------------------------------------------------------
// FIFO across batch boundaries
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, PerPeerFifoAcrossBatchBoundaries) {
  // max_batch 4 and 10 messages: two size-closed batches plus a boundary
  // remainder — order must read 1..10 at the receiver regardless.
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/4));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  std::uint32_t clock = 0;
  for (int i = 0; i < 3; ++i) {
    ep0.BroadcastUpdate(Upd(42, ++clock));
  }
  ep0.FlushBatches(FlushCause::kBoundary);  // mid-stream boundary: batch of 3
  for (int i = 0; i < 7; ++i) {
    // Credits run dry at 4 outstanding; the rest park in the pending FIFO.
    ep0.BroadcastUpdate(Upd(42, ++clock));
  }
  ep0.FlushBatches(FlushCause::kBoundary);

  std::vector<Timestamp> seen;
  while (seen.size() < 10) {
    // A demux run would collapse consecutive same-key updates — poll one
    // batch at a time is not enough to defeat that, so observe via ts order
    // of what *is* forwarded plus credit-driven redelivery below.
    const Drained d = DrainAll(ep1);
    for (const Timestamp& ts : d.update_ts) {
      seen.push_back(ts);
    }
    ep0.FlushPending();  // polled credits release parked messages
    ep0.FlushBatches(FlushCause::kBoundary);
    if (d.messages == 0 && ep0.NothingPending()) {
      break;
    }
  }
  // The run demux collapses same-key runs to their newest element, so the
  // forwarded stream is a subsequence of 1..10 that must stay strictly
  // increasing and end on the last message — any batch-boundary reorder
  // would break monotonicity.
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
  EXPECT_EQ(seen.back().clock, 10u);
  EXPECT_EQ(t.inflight(), 0u);
}

TEST(TransportBatchingTest, DistinctKeysDeliverOneToOneInOrder) {
  // Distinct keys defeat the run demux entirely: all 10 messages must arrive,
  // in send order, across size-closed and boundary-closed batches.
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/3));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  std::vector<Key> sent;
  std::vector<Key> seen;
  std::uint32_t clock = 0;
  int launched = 0;
  while (launched < 10 || !ep0.NothingPending()) {
    if (launched < 10) {
      const Key key = 100 + static_cast<Key>(launched);
      ep0.BroadcastUpdate(Upd(key, ++clock));
      sent.push_back(key);
      ++launched;
    }
    ep0.FlushPending();
    ep0.FlushBatches(FlushCause::kBoundary);
    const Drained d = DrainAll(ep1);
    seen.insert(seen.end(), d.keys.begin(), d.keys.end());
  }
  ep0.FlushBatches(FlushCause::kBoundary);
  const Drained d = DrainAll(ep1);
  seen.insert(seen.end(), d.keys.begin(), d.keys.end());
  EXPECT_EQ(seen, sent);
  EXPECT_EQ(t.inflight(), 0u);
}

// --------------------------------------------------------------------------
// Credit accounting stays per-message under batched delivery
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, CreditAccountingExactUnderBatchedDelivery) {
  const auto config = SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8);
  LiveTransport t(config);
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  // Send exactly the credit pool's worth: all four ride in ONE batch, yet
  // four credits must be gone — per-message accounting, per-batch traffic.
  for (std::uint32_t i = 1; i <= 4; ++i) {
    ep0.BroadcastUpdate(Upd(200 + i, i));
  }
  EXPECT_FALSE(ep0.AllPeersHaveCredit());
  ep0.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(ep1.batches_received(), 1u);

  // A fifth message must park: the pool is empty even though the channel saw
  // only one push.
  ep0.BroadcastUpdate(Upd(205, 1));
  EXPECT_EQ(ep0.credit_parks(), 1u);
  EXPECT_FALSE(ep0.NothingPending());

  // Receiver processes 4 messages; with credit_update_batch == 2 it returns
  // two batches of 2 — all four credits come home and the parked message
  // flows.
  const Drained d = DrainAll(ep1);
  EXPECT_EQ(d.messages, 4u);
  EXPECT_EQ(ep1.credit_returns(), 2u);
  ep0.FlushPending();
  ep0.FlushBatches(FlushCause::kBoundary);
  EXPECT_TRUE(ep0.NothingPending());
  EXPECT_EQ(DrainAll(ep1).messages, 1u);
  // 4 - 5 spent + 4 returned = 3 available.
  EXPECT_TRUE(ep0.AllPeersHaveCredit());
  EXPECT_EQ(t.inflight(), 0u);
}

TEST(TransportBatchingTest, AcksBypassCreditsButStillCoalesce) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  // Far more acks than the broadcast credit pool: none park, and they share
  // one push after the boundary flush.
  for (std::uint32_t i = 1; i <= 6; ++i) {
    ep1.SendAck(0, AckMsg{300, Timestamp{i, 1}});
  }
  EXPECT_EQ(ep1.credit_parks(), 0u);
  ep1.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(ep0.batches_received(), 1u);
  EXPECT_EQ(DrainAll(ep0).messages, 6u);
  EXPECT_EQ(ep1.acks_sent(), 6u);
}

// --------------------------------------------------------------------------
// inflight() counts messages, never batches
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, InflightCountsMessagesThroughBatchLifecycle) {
  LiveTransport t(SmallConfig(3, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);

  // Broadcast to two peers: 2 messages per call, still in open batches.
  ep0.BroadcastUpdate(Upd(400, 1));
  ep0.BroadcastUpdate(Upd(401, 2));
  EXPECT_EQ(t.inflight(), 4u) << "open-batch messages are in flight";
  EXPECT_FALSE(ep0.NothingPending());

  ep0.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(t.inflight(), 4u) << "shipping a batch must not change the count";
  EXPECT_TRUE(ep0.NothingPending());

  EXPECT_EQ(DrainAll(t.endpoint(1)).messages, 2u);
  EXPECT_EQ(t.inflight(), 2u);
  EXPECT_EQ(DrainAll(t.endpoint(2)).messages, 2u);
  EXPECT_EQ(t.inflight(), 0u) << "drain-phase exit condition";
}

// --------------------------------------------------------------------------
// Flush-on-idle backstop
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, WaitForTrafficFlushesOpenBatches) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  ep0.BroadcastUpdate(Upd(500, 1));
  EXPECT_EQ(ep1.batches_received(), 0u);
  // No boundary flush: the pre-sleep backstop must ship the batch.
  ep0.WaitForTraffic(std::chrono::microseconds(1));
  EXPECT_EQ(ep1.batches_received(), 1u);
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kIdle), 1u);
  EXPECT_EQ(DrainAll(ep1).messages, 1u);
  EXPECT_EQ(t.inflight(), 0u);
}

// --------------------------------------------------------------------------
// Receive-side run demux
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, ConsecutiveSameKeyUpdatesCollapseToNewest) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  ep0.BroadcastUpdate(Upd(600, 1));
  ep0.BroadcastUpdate(Upd(600, 2));
  ep0.BroadcastUpdate(Upd(600, 3));
  ep0.BroadcastUpdate(Upd(601, 1));
  ep0.FlushBatches(FlushCause::kBoundary);

  const Drained d = DrainAll(ep1);
  EXPECT_EQ(d.messages, 4u) << "accounting sees every message";
  ASSERT_EQ(d.update_ts.size(), 2u) << "the engine sees one update per run";
  EXPECT_EQ(d.keys, (std::vector<Key>{600, 601}));
  EXPECT_EQ(d.update_ts[0].clock, 3u) << "a run forwards its newest element";
  EXPECT_EQ(ep1.updates_collapsed(), 2u);
  EXPECT_EQ(t.inflight(), 0u);
}

TEST(TransportBatchingTest, NonUpdateMessagesEndARunInOrder) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  ep0.BroadcastUpdate(Upd(700, 1));
  ep0.BroadcastInvalidate(InvalidateMsg{700, Timestamp{2, 0}});
  ep0.BroadcastUpdate(Upd(700, 2));
  ep0.FlushBatches(FlushCause::kBoundary);

  std::vector<std::string> order;
  ep1.Poll(16, [&order](NodeId, const WireBody& body) {
    if (std::holds_alternative<UpdateMsg>(body)) {
      order.push_back("upd");
    } else if (std::holds_alternative<InvalidateMsg>(body)) {
      order.push_back("inv");
    }
  });
  // The invalidation may not overtake the update before it, and the update
  // after it starts a fresh run.
  EXPECT_EQ(order, (std::vector<std::string>{"upd", "inv", "upd"}));
  EXPECT_EQ(ep1.updates_collapsed(), 0u);
}

// --------------------------------------------------------------------------
// Receiver wakeups
// --------------------------------------------------------------------------

TEST(TransportBatchingTest, NoWakeupsWithoutAParkedConsumer) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ep0.BroadcastUpdate(Upd(800 + i, i));
  }
  ep0.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(t.endpoint(1).wakeups(), 0u)
      << "pushes with no sleeping receiver must skip the notify";
  DrainAll(t.endpoint(1));
}

TEST(TransportBatchingTest, OneBatchWakesASleepingReceiverOnce) {
  LiveTransport t(SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8));
  auto& ep0 = t.endpoint(0);
  auto& ep1 = t.endpoint(1);

  std::thread sleeper([&ep1] {
    // Long timeout: only a producer wakeup ends this early.
    ep1.WaitForTraffic(std::chrono::seconds(10));
  });
  // Give the sleeper time to park, then ship one batch of three messages.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ep0.BroadcastUpdate(Upd(900 + i, i));
  }
  ep0.FlushBatches(FlushCause::kBoundary);
  sleeper.join();
  EXPECT_EQ(ep1.wakeups(), 1u) << "N coalesced messages, one wakeup";
  EXPECT_EQ(DrainAll(ep1).messages, 3u);
}

// --------------------------------------------------------------------------
// Deadline-based flush (coalesce_flush_deadline_us; fake clock injected)
// --------------------------------------------------------------------------

TEST(SendCoalescerTest, DeadlineExpiryIsMeasuredFromFirstAppend) {
  std::uint64_t now = 1'000'000;
  CoalescerConfig cc;
  cc.self = 0;
  cc.num_peers = 3;
  cc.enabled = true;
  cc.max_batch = 8;
  cc.flush_deadline_ns = 5'000;
  cc.now_ns = [&now] { return now; };
  SendCoalescer co(cc);

  EXPECT_FALSE(co.Append(1, WireBody{Upd(1, 1)}));
  now += 3'000;
  EXPECT_FALSE(co.Append(1, WireBody{Upd(1, 2)}));  // later appends don't restamp
  EXPECT_FALSE(co.Append(2, WireBody{Upd(2, 1)}));
  EXPECT_FALSE(co.DeadlineExpired(1));
  EXPECT_EQ(co.MinRemainingNs(), 2'000u);  // peer 1 opened first
  now += 2'000;
  EXPECT_TRUE(co.DeadlineExpired(1));
  EXPECT_FALSE(co.DeadlineExpired(2));
  EXPECT_EQ(co.MinRemainingNs(), 0u);
  // Take resets the batch; a fresh append restamps.
  EXPECT_EQ(co.Take(1, FlushCause::kDeadline).size(), 2u);
  EXPECT_FALSE(co.Append(1, WireBody{Upd(1, 3)}));
  EXPECT_FALSE(co.DeadlineExpired(1));
}

TEST(TransportBatchingTest, BoundaryFlushHoldsSubCapBatchesUntilDeadline) {
  std::uint64_t now = 0;
  LiveTransport::Config c = SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8);
  c.coalesce_flush_deadline_us = 10;  // 10'000 ns
  c.clock_ns = [&now] { return now; };
  LiveTransport t(c);
  auto& ep0 = t.endpoint(0);

  ep0.BroadcastUpdate(Upd(5, 1));
  ep0.FlushBatches(FlushCause::kBoundary);  // young: held
  EXPECT_EQ(t.endpoint(1).batches_received(), 0u);
  EXPECT_FALSE(ep0.NothingPending());  // the message sits in the open batch

  now += 4'000;
  ep0.BroadcastUpdate(Upd(9, 2));  // distinct key: the receive demux keeps both
  ep0.FlushBatches(FlushCause::kBoundary);  // still young: held
  EXPECT_EQ(t.endpoint(1).batches_received(), 0u);

  now += 6'000;  // 10'000 ns since the first append
  ep0.FlushBatches(FlushCause::kBoundary);  // expired: ships as kDeadline
  EXPECT_EQ(t.endpoint(1).batches_received(), 1u);
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kDeadline), 1u);
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kBoundary), 0u);
  EXPECT_TRUE(ep0.NothingPending());
  const Drained d = DrainAll(t.endpoint(1));
  EXPECT_EQ(d.messages, 2u);
  ASSERT_EQ(d.keys.size(), 2u);
  EXPECT_EQ(d.keys[0], 5u);
  EXPECT_EQ(d.keys[1], 9u) << "FIFO preserved through the hold";
}

TEST(TransportBatchingTest, SizeCapStillShipsImmediatelyUnderDeadline) {
  std::uint64_t now = 0;
  LiveTransport::Config c = SmallConfig(2, /*coalescing=*/true, /*max_batch=*/3);
  c.coalesce_flush_deadline_us = 1'000'000;  // effectively infinite
  c.clock_ns = [&now] { return now; };
  LiveTransport t(c);
  auto& ep0 = t.endpoint(0);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    ep0.BroadcastUpdate(Upd(6, i));
  }
  EXPECT_EQ(t.endpoint(1).batches_received(), 1u) << "cap flush ignores the deadline";
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kSize), 1u);
  DrainAll(t.endpoint(1));
}

TEST(TransportBatchingTest, PreSleepFlushShipsExpiredBatchesUnderDeadline) {
  // The deadline backstop must hold with either setting of the idle-flush
  // knob: it is its own flush policy, not a variant of the idle one.
  for (const bool flush_on_idle : {true, false}) {
    std::uint64_t now = 0;
    LiveTransport::Config c = SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8);
    c.coalesce_flush_deadline_us = 10;
    c.coalesce_flush_on_idle = flush_on_idle;
    c.clock_ns = [&now] { return now; };
    LiveTransport t(c);
    auto& ep0 = t.endpoint(0);

    ep0.BroadcastUpdate(Upd(7, 1));
    now += 20'000;  // expired while the node was busy elsewhere
    ep0.WaitForTraffic(std::chrono::microseconds(1));
    EXPECT_EQ(t.endpoint(1).batches_received(), 1u)
        << "the pre-sleep path must not hold an expired batch (flush_on_idle="
        << flush_on_idle << ")";
    EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kDeadline), 1u);
    DrainAll(t.endpoint(1));
  }
}

TEST(TransportBatchingTest, BusyPollHonorsFlushDeadlineWithoutSleeping) {
  // The busy-poll run loop never reaches WaitForTraffic, so its idle branch
  // calls PollExpiredDeadlines() instead — which must apply the same
  // deadline policy as the pre-sleep path: ship exactly the batches whose
  // hold expired, keep younger ones accumulating.
  std::uint64_t now = 0;
  LiveTransport::Config c = SmallConfig(3, /*coalescing=*/true, /*max_batch=*/8);
  c.coalesce_flush_deadline_us = 10;  // 10'000 ns
  c.clock_ns = [&now] { return now; };
  LiveTransport t(c);
  auto& ep0 = t.endpoint(0);

  ep0.SendAck(1, AckMsg{4, Timestamp{1, 0}});
  now += 8'000;
  ep0.SendAck(2, AckMsg{5, Timestamp{1, 0}});  // peer 2's batch is younger

  ep0.PollExpiredDeadlines();  // neither expired yet
  EXPECT_EQ(t.endpoint(1).batches_received(), 0u);
  EXPECT_EQ(t.endpoint(2).batches_received(), 0u);

  now += 2'000;  // peer 1's batch is 10'000 ns old; peer 2's only 2'000
  ep0.PollExpiredDeadlines();
  EXPECT_EQ(t.endpoint(1).batches_received(), 1u);
  EXPECT_EQ(t.endpoint(2).batches_received(), 0u) << "young batch must be held";
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kDeadline), 1u);

  now += 8'000;
  ep0.PollExpiredDeadlines();
  EXPECT_EQ(t.endpoint(2).batches_received(), 1u);
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kDeadline), 2u);
  DrainAll(t.endpoint(1));
  DrainAll(t.endpoint(2));
}

TEST(TransportBatchingTest, BusyPollIdleFlushBackstopWithoutDeadline) {
  // Without a deadline policy, PollExpiredDeadlines falls back to the idle
  // backstop so no message can sit in an open batch while the node spins.
  LiveTransport::Config c = SmallConfig(2, /*coalescing=*/true, /*max_batch=*/8);
  LiveTransport t(c);
  auto& ep0 = t.endpoint(0);
  ep0.BroadcastUpdate(Upd(3, 1));
  EXPECT_EQ(t.endpoint(1).batches_received(), 0u);
  ep0.PollExpiredDeadlines();
  EXPECT_EQ(t.endpoint(1).batches_received(), 1u);
  EXPECT_EQ(ep0.coalescer().flushes(FlushCause::kIdle), 1u);
  DrainAll(t.endpoint(1));
}

}  // namespace
}  // namespace cckvs
