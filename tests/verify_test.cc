// Tests for the verification substrate itself: the exhaustive Lin model checker
// (the paper's Murphi substitute, §5.2) and the history checkers (§5.1).

#include <gtest/gtest.h>

#include "src/verify/history.h"
#include "src/verify/model_checker.h"
#include "src/workload/workload.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Model checker
// ---------------------------------------------------------------------------

TEST(ModelChecker, TwoNodesTwoWrites) {
  ModelCheckerConfig cfg;
  cfg.num_nodes = 2;
  cfg.total_writes = 2;
  const ModelCheckerResult r = CheckLinProtocol(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.states_explored, 10u);
  EXPECT_GT(r.terminal_states, 0u);
}

TEST(ModelChecker, ThreeNodesTwoWrites) {
  ModelCheckerConfig cfg;
  cfg.num_nodes = 3;
  cfg.total_writes = 2;
  const ModelCheckerResult r = CheckLinProtocol(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.states_explored, 100u);
}

TEST(ModelChecker, PaperScaleThreeNodesThreeWrites) {
  // The paper's Murphi run used 3 processors and 2-bit timestamps; three writes
  // per key exhaust a 2-bit clock.  This is the heavyweight exhaustive case.
  ModelCheckerConfig cfg;
  cfg.num_nodes = 3;
  cfg.total_writes = 3;
  const ModelCheckerResult r = CheckLinProtocol(cfg);
  EXPECT_TRUE(r.ok) << r.failure;
  EXPECT_GT(r.states_explored, 1000u);
  EXPECT_GT(r.max_depth, 10u);
}

TEST(ModelChecker, Deterministic) {
  ModelCheckerConfig cfg;
  cfg.num_nodes = 2;
  cfg.total_writes = 2;
  const ModelCheckerResult a = CheckLinProtocol(cfg);
  const ModelCheckerResult b = CheckLinProtocol(cfg);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.terminal_states, b.terminal_states);
}

// ---------------------------------------------------------------------------
// History checkers: hand-crafted histories from the paper's Figures 5 and 6
// ---------------------------------------------------------------------------

HistoryOp Put(SessionId s, Key k, const char* v, Timestamp ts, SimTime t0, SimTime t1) {
  return HistoryOp{s, OpType::kPut, k, v, ts, t0, t1};
}
HistoryOp Get(SessionId s, Key k, const char* v, Timestamp ts, SimTime t0, SimTime t1) {
  return HistoryOp{s, OpType::kGet, k, v, ts, t0, t1};
}

TEST(HistoryCheck, Figure5StaleReadPassesScFailsLin) {
  // Session A: PUT(K,1) at t0, GET->1 at t1.  Session B: GET->0 at t2.
  // "Session B seeing the old value is a violation of Lin, but not SC."
  History h;
  h.Record(Put(1, 5, "1", Timestamp{1, 0}, 0, 10));
  h.Record(Get(1, 5, "1", Timestamp{1, 0}, 20, 30));
  h.Record(Get(2, 5, "0", Timestamp{0, 0}, 40, 50));  // stale read after the put
  EXPECT_EQ(h.CheckPerKeySequentialConsistency(), "");
  EXPECT_NE(h.CheckPerKeyLinearizability(), "");
}

TEST(HistoryCheck, Figure6DisagreementFailsBoth) {
  // Two sessions observe the two puts in opposite orders: SC violation (and
  // hence a Lin violation).  Timestamp disagreement shows up as a session
  // observing a regressing timestamp.
  History h;
  h.Record(Put(1, 9, "1", Timestamp{1, 0}, 0, 100));
  h.Record(Put(4, 9, "2", Timestamp{2, 3}, 0, 100));
  // Session B sees put1 then put2 — fine.
  h.Record(Get(2, 9, "1", Timestamp{1, 0}, 110, 120));
  h.Record(Get(2, 9, "2", Timestamp{2, 3}, 130, 140));
  // Session C sees put2 then put1 — disagreement.
  h.Record(Get(3, 9, "2", Timestamp{2, 3}, 110, 120));
  h.Record(Get(3, 9, "1", Timestamp{1, 0}, 130, 140));
  EXPECT_NE(h.CheckPerKeySequentialConsistency(), "");
  EXPECT_NE(h.CheckPerKeyLinearizability(), "");
}

TEST(HistoryCheck, CleanLinearizableHistoryPassesEverything) {
  History h;
  h.Record(Put(1, 2, "a", Timestamp{1, 0}, 0, 10));
  h.Record(Get(2, 2, "a", Timestamp{1, 0}, 20, 30));
  h.Record(Put(2, 2, "b", Timestamp{2, 1}, 40, 50));
  h.Record(Get(1, 2, "b", Timestamp{2, 1}, 60, 70));
  EXPECT_EQ(h.CheckPerKeyLinearizability(), "");
  EXPECT_EQ(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, ConcurrentOpsAreUnconstrained) {
  // Overlapping intervals: either order is linearizable.
  History h;
  h.Record(Put(1, 3, "x", Timestamp{1, 0}, 0, 100));
  h.Record(Get(2, 3, "init", Timestamp{0, 0}, 50, 60));  // overlaps the put
  EXPECT_EQ(h.CheckPerKeyLinearizability(), "");
}

TEST(HistoryCheck, WritesMustHaveUniqueTimestamps) {
  History h;
  h.Record(Put(1, 4, "a", Timestamp{1, 0}, 0, 10));
  h.Record(Put(2, 4, "b", Timestamp{1, 0}, 20, 30));
  EXPECT_NE(h.CheckPerKeyLinearizability(), "");
  EXPECT_NE(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, ReadOfUnknownTimestampRejected) {
  History h;
  h.Record(Get(1, 6, "ghost", Timestamp{9, 9}, 0, 10));
  EXPECT_NE(h.CheckPerKeyLinearizability(), "");
}

TEST(HistoryCheck, WriteWriteRealTimeOrderEnforced) {
  // w2 starts after w1 completed but got a smaller timestamp: Lin violation.
  History h;
  h.Record(Put(1, 7, "w1", Timestamp{5, 0}, 0, 10));
  h.Record(Put(2, 7, "w2", Timestamp{3, 1}, 20, 30));
  EXPECT_NE(h.CheckPerKeyLinearizability(), "");
  // But per-key SC tolerates it (different sessions, no shared order observed).
  EXPECT_EQ(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, SessionOrderViolationCaughtBySc) {
  // One session reads ts 2 then ts 1: regression in session order.
  History h;
  h.Record(Put(1, 8, "a", Timestamp{1, 0}, 0, 10));
  h.Record(Put(1, 8, "b", Timestamp{2, 0}, 20, 30));
  h.Record(Get(2, 8, "b", Timestamp{2, 0}, 40, 50));
  h.Record(Get(2, 8, "a", Timestamp{1, 0}, 60, 70));
  EXPECT_NE(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, ReadYourWritesEnforcedBySc) {
  // A session reads an older timestamp than its own completed write.
  History h;
  h.Record(Put(3, 11, "mine", Timestamp{4, 2}, 0, 10));
  h.Record(Get(3, 11, "stale", Timestamp{2, 1}, 20, 30));
  h.Record(Put(9, 11, "stale", Timestamp{2, 1}, 0, 5));  // the older write
  EXPECT_NE(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, PerKeyIndependence) {
  // Cross-key reordering never violates per-key models.
  History h;
  h.Record(Put(1, 100, "a", Timestamp{1, 0}, 0, 10));
  h.Record(Put(1, 200, "b", Timestamp{1, 0}, 20, 30));  // same ts, different key
  h.Record(Get(2, 200, "b", Timestamp{1, 0}, 40, 50));
  h.Record(Get(2, 100, "a", Timestamp{1, 0}, 60, 70));
  EXPECT_EQ(h.CheckPerKeyLinearizability(), "");
  EXPECT_EQ(h.CheckPerKeySequentialConsistency(), "");
}

TEST(HistoryCheck, WriteAtomicityDetectsMishmash) {
  History h;
  h.Record(Put(1, 12, "written-value", Timestamp{1, 0}, 0, 10));
  h.Record(Get(2, 12, "mishmash-value", Timestamp{1, 0}, 20, 30));
  EXPECT_NE(h.CheckWriteAtomicity(), "");
}

TEST(HistoryCheck, WriteAtomicityAcceptsWritesAndSynthesizedValues) {
  History h;
  const Value synth = SynthesizeValue(13, 40);
  h.Record(Get(1, 13, synth.c_str(), Timestamp{0, 0}, 0, 10));
  // The raw value must round-trip exactly: rebuild from a std::string copy.
  HistoryOp get;
  get.session = 1;
  get.type = OpType::kGet;
  get.key = 13;
  get.value = synth;
  get.invoke = 0;
  get.complete = 10;
  History h2;
  h2.Record(get);
  HistoryOp put;
  put.session = 2;
  put.type = OpType::kPut;
  put.key = 13;
  put.value = MakeWriteValue(7, 1, 40);
  put.ts = Timestamp{1, 0};
  put.invoke = 20;
  put.complete = 30;
  h2.Record(put);
  HistoryOp get2 = get;
  get2.value = put.value;
  get2.ts = put.ts;
  get2.invoke = 40;
  get2.complete = 50;
  h2.Record(get2);
  EXPECT_EQ(h2.CheckWriteAtomicity(), "");
}

TEST(HistoryCheck, EmptyHistoryPasses) {
  History h;
  EXPECT_EQ(h.CheckPerKeyLinearizability(), "");
  EXPECT_EQ(h.CheckPerKeySequentialConsistency(), "");
  EXPECT_EQ(h.CheckWriteAtomicity(), "");
}

}  // namespace
}  // namespace cckvs
