// Transport-backend conformance suite (runtime/fabric.h).
//
// One contract, three backends: every invariant the engines, the epoch
// gate+barrier and the SC/Lin checkers rely on is executed here against the
// in-process channels, the shared-memory rings and the socket streams — the
// same code, parameterized by TransportKind.  The invariants:
//
//   * per-peer FIFO across batch boundaries AND through credit parking
//     (a parked broadcast may not be overtaken by a later send to the peer);
//   * exact per-message credit accounting (§6.3 counts messages, never
//     batches, and every credit comes back);
//   * message-granular inflight() that drains to zero;
//   * idle- and deadline-flush backstops (no message sleeps in an open batch);
//   * wakeup-once-per-batch (wakeups ≤ batches pushed; zero without parking).
//
// The shm and socket backends deliver asynchronously (ring + doorbell,
// rx thread), so assertions about arrival poll with a deadline instead of
// assuming synchronous delivery.

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/transport.h"

namespace cckvs {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::chrono::seconds kDeadline{10};

UpdateMsg Upd(Key key, std::uint32_t clock, NodeId writer = 0) {
  return UpdateMsg{key, "v" + std::to_string(clock), Timestamp{clock, writer}};
}

class ConformanceTest : public ::testing::TestWithParam<TransportKind> {
 protected:
  LiveTransport::Config Cfg(int nodes, bool coalescing = false, int max_batch = 4) {
    LiveTransport::Config c;
    c.num_nodes = nodes;
    c.bcast_credits_per_peer = 4;
    c.credit_update_batch = 2;
    c.channel_capacity = 256;
    c.coalescing = coalescing;
    c.coalesce_max_batch = max_batch;
    c.transport.kind = GetParam();
    // Unique per test process + instantiation: concurrent ctest jobs must not
    // attach to each other's regions.
    static int counter = 0;
    c.transport.shm_name = "/cckvs_conf_" + std::to_string(getpid()) + "_" +
                           std::to_string(counter++);
    c.transport.shm_ring_bytes = 1 << 16;
    return c;
  }

  // Polls `ep` until `n` messages arrive (appending keys in delivery order)
  // or the deadline expires.  Async backends need the retry loop.
  std::vector<Key> CollectKeys(LiveTransport::Endpoint& ep, std::size_t n) {
    std::vector<Key> keys;
    const auto deadline = Clock::now() + kDeadline;
    while (keys.size() < n && Clock::now() < deadline) {
      ep.Poll(64, [&keys](NodeId, const WireBody& body) {
        if (const auto* upd = std::get_if<UpdateMsg>(&body)) {
          keys.push_back(upd->key);
        } else if (const auto* inv = std::get_if<InvalidateMsg>(&body)) {
          keys.push_back(inv->key);
        } else if (const auto* ack = std::get_if<AckMsg>(&body)) {
          keys.push_back(ack->key);
        } else if (const auto* req = std::get_if<RpcRequest>(&body)) {
          keys.push_back(req->key);
        }
      });
      if (keys.size() < n) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    return keys;
  }

  // Spins until `cond` holds or the deadline expires; returns the verdict.
  template <typename Cond>
  bool Eventually(Cond&& cond) {
    const auto deadline = Clock::now() + kDeadline;
    while (!cond()) {
      if (Clock::now() >= deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return true;
  }
};

TEST_P(ConformanceTest, FabricConstructs) {
  LiveTransport t(Cfg(3));
  ASSERT_TRUE(t.ok()) << t.init_error();
  EXPECT_TRUE(t.fabric().error().empty());
  EXPECT_FALSE(t.fabric().faulted());
}

// FIFO per (src, dst) lane must survive batch boundaries: messages split
// across two shipped batches arrive in send order.
TEST_P(ConformanceTest, FifoAcrossBatchBoundaries) {
  LiveTransport::Config c = Cfg(2, /*coalescing=*/true, /*max_batch=*/3);
  c.bcast_credits_per_peer = 16;  // the credit pool is not under test here
  LiveTransport t(c);
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);

  // 7 messages at cap 3: batches of 3+3 ship on the size cap, the seventh on
  // the explicit boundary flush — three batches, one lane.
  for (std::uint32_t i = 0; i < 7; ++i) {
    sender.BroadcastUpdate(Upd(100 + i, i + 1));
  }
  sender.FlushBatches(FlushCause::kBoundary);

  const std::vector<Key> keys = CollectKeys(t.endpoint(1), 7);
  ASSERT_EQ(keys.size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(keys[i], 100 + i) << "position " << i;
  }
}

// A broadcast parked on exhausted credits must not be overtaken by anything
// sent to that peer later — parked traffic keeps its place in the lane.
TEST_P(ConformanceTest, FifoThroughCreditParking) {
  LiveTransport t(Cfg(2));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);
  auto& receiver = t.endpoint(1);

  // Exhaust the 4 credits, then park two more broadcasts behind them.
  for (std::uint32_t i = 0; i < 6; ++i) {
    sender.BroadcastUpdate(Upd(200 + i, i + 1));
  }
  sender.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(sender.credit_parks(), 2u);

  // Drain the first four; their credit returns release the parked two.
  std::vector<Key> keys = CollectKeys(receiver, 4);
  ASSERT_TRUE(Eventually([&] {
    sender.FlushPending();
    sender.FlushBatches(FlushCause::kBoundary);
    return sender.NothingPending();
  }));

  const std::vector<Key> rest = CollectKeys(receiver, 2);
  keys.insert(keys.end(), rest.begin(), rest.end());
  ASSERT_EQ(keys.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(keys[i], 200 + i) << "position " << i;
  }
}

// §6.3 accounting is per message: after every message is drained, every
// credit must be back home — the sender can broadcast at full rate again.
TEST_P(ConformanceTest, ExactPerMessageCreditAccounting) {
  LiveTransport t(Cfg(2, /*coalescing=*/true, /*max_batch=*/4));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);
  auto& receiver = t.endpoint(1);

  // Two rounds of 4 (the full pool) — 8 credited messages in coalesced
  // batches; batching must not change the credit math.
  for (int round = 0; round < 2; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      sender.BroadcastUpdate(Upd(300 + i, static_cast<std::uint32_t>(round * 4 + i + 1)));
    }
    sender.FlushBatches(FlushCause::kBoundary);
    ASSERT_EQ(CollectKeys(receiver, 4).size(), 4u);
    // credit_update_batch = 2: 4 drained messages return credits in two
    // batched updates; the pool refills completely (async for sockets).
    ASSERT_TRUE(Eventually([&] { return sender.AllPeersHaveCredit(); }));
  }
  EXPECT_EQ(receiver.credit_returns(), 4u);  // 8 messages / batch of 2
  EXPECT_EQ(sender.credit_parks(), 0u);
}

// inflight() counts messages — not batches — and drains to exactly zero.
TEST_P(ConformanceTest, InflightIsMessageGranular) {
  LiveTransport t(Cfg(3, /*coalescing=*/true, /*max_batch=*/8));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);

  sender.BroadcastUpdate(Upd(1, 1));  // 2 messages (one per peer)
  sender.SendAck(1, AckMsg{42, Timestamp{1, 0}});
  EXPECT_EQ(t.inflight(), 3u);  // counted while still in open batches
  sender.FlushBatches(FlushCause::kBoundary);
  EXPECT_EQ(t.inflight(), 3u);  // shipping does not complete a message

  ASSERT_EQ(CollectKeys(t.endpoint(1), 2).size(), 2u);
  ASSERT_TRUE(Eventually([&] { return t.inflight() == 1u; }));
  ASSERT_EQ(CollectKeys(t.endpoint(2), 1).size(), 1u);
  ASSERT_TRUE(Eventually([&] { return t.inflight() == 0u; }));
}

// The pre-sleep idle flush: a message in an open batch must ship before the
// sender's WaitForTraffic sleep — no message sleeps in a batch buffer.
TEST_P(ConformanceTest, IdleFlushBackstop) {
  LiveTransport t(Cfg(2, /*coalescing=*/true, /*max_batch=*/16));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);

  sender.BroadcastUpdate(Upd(7, 1));
  EXPECT_FALSE(sender.NothingPending());  // sits in the open batch
  sender.WaitForTraffic(std::chrono::microseconds(1));
  EXPECT_TRUE(sender.NothingPending());

  EXPECT_EQ(CollectKeys(t.endpoint(1), 1).size(), 1u);
  EXPECT_EQ(sender.coalescer().flushes(FlushCause::kIdle), 1u);
}

// The deadline flush: with a hold window, boundary flushes keep sub-cap
// batches open until the deadline expires, then ship them.
TEST_P(ConformanceTest, DeadlineFlushBackstop) {
  LiveTransport::Config c = Cfg(2, /*coalescing=*/true, /*max_batch=*/16);
  c.coalesce_flush_deadline_us = 1000;
  std::uint64_t fake_now = 0;
  c.clock_ns = [&fake_now] { return fake_now; };
  LiveTransport t(c);
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);

  sender.BroadcastUpdate(Upd(9, 1));
  sender.FlushBatches(FlushCause::kBoundary);  // held: deadline not reached
  EXPECT_FALSE(sender.NothingPending());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::size_t early = 0;
  t.endpoint(1).Poll(64, [&early](NodeId, const WireBody&) { ++early; });
  EXPECT_EQ(early, 0u);  // nothing shipped while held

  fake_now = 2'000'000;  // 2ms later: past the 1ms hold
  sender.FlushBatches(FlushCause::kBoundary);
  EXPECT_TRUE(sender.NothingPending());
  EXPECT_EQ(CollectKeys(t.endpoint(1), 1).size(), 1u);
  EXPECT_EQ(sender.coalescer().flushes(FlushCause::kDeadline), 1u);
}

// Wakeups are per delivered batch, and only when the consumer is parked:
// a drain loop that never sleeps sees zero; a parked consumer is woken by
// one batch exactly once (wakeups ≤ batches pushed, and the sleeper returns
// well before its timeout).
TEST_P(ConformanceTest, WakeupOncePerBatch) {
  LiveTransport t(Cfg(2, /*coalescing=*/true, /*max_batch=*/8));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);
  auto& receiver = t.endpoint(1);

  // Never parked: deliveries must not count wakeups.
  for (std::uint32_t i = 0; i < 4; ++i) {
    sender.BroadcastUpdate(Upd(400 + i, i + 1));
  }
  sender.FlushBatches(FlushCause::kBoundary);
  ASSERT_EQ(CollectKeys(receiver, 4).size(), 4u);
  EXPECT_EQ(receiver.wakeups(), 0u);

  // Parked: one coalesced batch (4 messages) wakes the sleeper once.
  std::thread waiter([&receiver] {
    receiver.WaitForTraffic(std::chrono::seconds(30));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // let it park
  const auto t0 = Clock::now();
  for (std::uint32_t i = 0; i < 4; ++i) {
    sender.BroadcastUpdate(Upd(500 + i, i + 1));
  }
  sender.FlushBatches(FlushCause::kBoundary);
  waiter.join();
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(10)) << "lost wakeup";
  ASSERT_EQ(CollectKeys(receiver, 4).size(), 4u);
  EXPECT_LE(receiver.wakeups(), receiver.batches_received());
  EXPECT_LE(receiver.wakeups(), 1u);  // one batch, at most one wakeup
}

// Mixed-type traffic (credited updates/invalidates, uncredited acks and
// direct sends) shares one lane and stays in order end to end.
TEST_P(ConformanceTest, MixedTrafficStaysOrdered) {
  LiveTransport t(Cfg(2, /*coalescing=*/true, /*max_batch=*/3));
  ASSERT_TRUE(t.ok()) << t.init_error();
  auto& sender = t.endpoint(0);

  sender.BroadcastInvalidate(InvalidateMsg{600, Timestamp{1, 0}});
  sender.SendAck(1, AckMsg{601, Timestamp{1, 0}});
  sender.BroadcastUpdate(Upd(602, 2));
  RpcRequest rpc;
  rpc.op_id = 1;
  rpc.key = 603;
  sender.SendDirect(1, WireBody{std::move(rpc)});
  sender.FlushBatches(FlushCause::kBoundary);

  const std::vector<Key> keys = CollectKeys(t.endpoint(1), 4);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys, (std::vector<Key>{600, 601, 602, 603}));
}

INSTANTIATE_TEST_SUITE_P(Backends, ConformanceTest,
                         ::testing::Values(TransportKind::kInproc,
                                           TransportKind::kShm,
                                           TransportKind::kSocket),
                         [](const ::testing::TestParamInfo<TransportKind>& info) {
                           return std::string(ToString(info.param));
                         });

}  // namespace
}  // namespace cckvs
