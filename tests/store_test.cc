// Unit tests for the MICA-like store: seqlocks, slab allocation, partition
// operations, concurrency (real threads) and sharding.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/store/partition.h"
#include "src/store/partitioner.h"
#include "src/store/seqlock.h"
#include "src/store/slab.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// Seqlock
// ---------------------------------------------------------------------------

TEST(Seqlock, ReadSeesNoWriterMeansNoRetry) {
  Seqlock lock;
  const std::uint32_t v = lock.ReadBegin();
  EXPECT_FALSE(lock.ReadRetry(v));
}

TEST(Seqlock, WriteForcesRetry) {
  Seqlock lock;
  const std::uint32_t v = lock.ReadBegin();
  {
    SeqlockWriteGuard guard(lock);
  }
  EXPECT_TRUE(lock.ReadRetry(v));
}

TEST(Seqlock, VersionIsEvenWhenUnlocked) {
  Seqlock lock;
  EXPECT_EQ(lock.version() % 2, 0u);
  lock.WriteLock();
  EXPECT_EQ(lock.version() % 2, 1u);
  lock.WriteUnlock();
  EXPECT_EQ(lock.version() % 2, 0u);
}

TEST(Seqlock, ConcurrentReadersNeverSeeTornData) {
  // The canonical seqlock test: a writer alternates two complementary patterns;
  // readers must always observe one of them, never a mix.
  Seqlock lock;
  std::uint64_t data[4] = {0, 0, 0, 0};
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread writer([&] {
    std::uint64_t pattern = 0;
    for (int i = 0; i < 200000; ++i) {
      pattern = ~pattern;
      lock.WriteLock();
      for (auto& d : data) {
        d = pattern;
      }
      lock.WriteUnlock();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t copy[4];
        std::uint32_t v;
        do {
          v = lock.ReadBegin();
          std::memcpy(copy, data, sizeof(copy));
        } while (lock.ReadRetry(v));
        if (!(copy[0] == copy[1] && copy[1] == copy[2] && copy[2] == copy[3])) {
          torn.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------------
// SlabAllocator
// ---------------------------------------------------------------------------

TEST(Slab, ClassSizing) {
  EXPECT_EQ(SlabAllocator::ClassFor(1), 0);
  EXPECT_EQ(SlabAllocator::ClassFor(32), 0);
  EXPECT_EQ(SlabAllocator::ClassFor(33), 1);
  EXPECT_EQ(SlabAllocator::ClassFor(64), 1);
  EXPECT_EQ(SlabAllocator::ClassBytes(0), 32u);
  EXPECT_EQ(SlabAllocator::ClassBytes(3), 256u);
}

TEST(SlabDeathTest, OversizeRecordAborts) {
  EXPECT_DEATH(SlabAllocator::ClassFor(1 << 20), "CHECK");
}

TEST(Slab, AllocateWriteReadBack) {
  SlabAllocator slab;
  const auto ref = slab.Allocate(100);
  std::memset(slab.Data(ref), 0xab, 100);
  EXPECT_EQ(static_cast<unsigned char>(slab.Data(ref)[99]), 0xabu);
  EXPECT_EQ(slab.allocated_slots(), 1u);
}

TEST(Slab, FreeReusesSlots) {
  SlabAllocator slab;
  const auto a = slab.Allocate(40);
  slab.Free(a);
  const auto b = slab.Allocate(40);
  EXPECT_EQ(a, b);  // LIFO freelist reuse
  EXPECT_EQ(slab.freed_slots(), 1u);
}

TEST(Slab, DistinctClassesDistinctArenas) {
  SlabAllocator slab;
  const auto small = slab.Allocate(10);
  const auto large = slab.Allocate(1000);
  EXPECT_NE(small.cls, large.cls);
  EXPECT_NE(slab.Data(small), slab.Data(large));
}

TEST(Slab, TryDataRejectsGarbageRefs) {
  SlabAllocator slab;
  SlabAllocator::Ref bogus;
  bogus.cls = 200;  // out of range
  EXPECT_EQ(slab.TryData(bogus), nullptr);
  bogus.cls = 0;
  bogus.idx = 0xffffff00;  // unmapped chunk
  EXPECT_EQ(slab.TryData(bogus), nullptr);
  const auto real = slab.Allocate(8);
  EXPECT_NE(slab.TryData(real), nullptr);
}

TEST(Slab, ConcurrentAllocFree) {
  SlabAllocator slab;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> ops{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&slab, &ops, t] {
      Rng rng(static_cast<std::uint64_t>(t));
      std::vector<SlabAllocator::Ref> mine;
      for (int i = 0; i < 20000; ++i) {
        if (mine.empty() || rng.NextBool(0.5)) {
          mine.push_back(slab.Allocate(16 + rng.NextBounded(200)));
        } else {
          slab.Free(mine.back());
          mine.pop_back();
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
      for (const auto& ref : mine) {
        slab.Free(ref);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(slab.allocated_slots(), slab.freed_slots());
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

PartitionConfig SmallConfig() {
  PartitionConfig pc;
  pc.buckets = 64;
  pc.node_id = 3;
  return pc;
}

TEST(Partition, GetMissWithoutSynthesizer) {
  Partition part(SmallConfig());
  Value v;
  EXPECT_FALSE(part.Get(42, &v));
  EXPECT_EQ(part.stats().misses, 1u);
}

TEST(Partition, PutThenGet) {
  Partition part(SmallConfig());
  const Timestamp ts = part.Put(42, "hello");
  EXPECT_EQ(ts, (Timestamp{1, 3}));
  Value v;
  Timestamp got_ts;
  ASSERT_TRUE(part.Get(42, &v, &got_ts));
  EXPECT_EQ(v, "hello");
  EXPECT_EQ(got_ts, ts);
  EXPECT_EQ(part.size(), 1u);
}

TEST(Partition, PutBumpsClockMonotonically) {
  Partition part(SmallConfig());
  EXPECT_EQ(part.Put(1, "a").clock, 1u);
  EXPECT_EQ(part.Put(1, "b").clock, 2u);
  EXPECT_EQ(part.Put(1, "c").clock, 3u);
  Value v;
  part.Get(1, &v);
  EXPECT_EQ(v, "c");
  EXPECT_EQ(part.size(), 1u);
}

TEST(Partition, ValueResizeAcrossSizeClasses) {
  Partition part(SmallConfig());
  part.Put(7, "tiny");
  part.Put(7, std::string(500, 'x'));
  Value v;
  ASSERT_TRUE(part.Get(7, &v));
  EXPECT_EQ(v.size(), 500u);
  part.Put(7, "small-again");
  ASSERT_TRUE(part.Get(7, &v));
  EXPECT_EQ(v, "small-again");
}

TEST(Partition, ApplyRespectsTimestamps) {
  Partition part(SmallConfig());
  EXPECT_TRUE(part.Apply(9, "v5", Timestamp{5, 1}));
  EXPECT_FALSE(part.Apply(9, "v3", Timestamp{3, 2}));  // stale
  EXPECT_FALSE(part.Apply(9, "v5b", Timestamp{5, 1}));  // equal is stale too
  EXPECT_TRUE(part.Apply(9, "v5c", Timestamp{5, 2}));   // writer id breaks tie
  Value v;
  Timestamp ts;
  part.Get(9, &v, &ts);
  EXPECT_EQ(v, "v5c");
  EXPECT_EQ(ts, (Timestamp{5, 2}));
  EXPECT_EQ(part.stats().stale_applies, 2u);
}

TEST(Partition, PutAfterApplyContinuesClock) {
  Partition part(SmallConfig());
  part.Apply(4, "flushed", Timestamp{42, 7});
  const Timestamp ts = part.Put(4, "fresh");
  EXPECT_EQ(ts.clock, 43u);
  EXPECT_EQ(ts.writer, 3);
}

TEST(Partition, EraseRemovesAndFreesSlab) {
  Partition part(SmallConfig());
  part.Put(11, "gone-soon");
  EXPECT_TRUE(part.Erase(11));
  EXPECT_FALSE(part.Erase(11));
  Value v;
  EXPECT_FALSE(part.Get(11, &v));
  EXPECT_EQ(part.size(), 0u);
}

TEST(Partition, SynthesizerServesColdReads) {
  PartitionConfig pc = SmallConfig();
  pc.synthesize = [](Key key) { return "synth-" + std::to_string(key); };
  Partition part(pc);
  Value v;
  Timestamp ts;
  ASSERT_TRUE(part.Get(123, &v, &ts));
  EXPECT_EQ(v, "synth-123");
  EXPECT_EQ(ts, (Timestamp{0, 0}));
  EXPECT_EQ(part.stats().synthesized_gets, 1u);
  EXPECT_EQ(part.size(), 0u);  // synthesis does not materialize
  // A write materializes and then wins over synthesis.
  part.Put(123, "real");
  ASSERT_TRUE(part.Get(123, &v, &ts));
  EXPECT_EQ(v, "real");
}

TEST(Partition, ManyKeysForceOverflowChains) {
  // 64 buckets x 7 ways = 448 direct slots; 5000 keys exercise the chains.
  Partition part(SmallConfig());
  for (Key k = 0; k < 5000; ++k) {
    part.Put(k, "v" + std::to_string(k));
  }
  EXPECT_EQ(part.size(), 5000u);
  for (Key k = 0; k < 5000; ++k) {
    Value v;
    ASSERT_TRUE(part.Get(k, &v)) << "key " << k;
    ASSERT_EQ(v, "v" + std::to_string(k));
  }
}

TEST(Partition, EraseFromOverflowChain) {
  Partition part(SmallConfig());
  for (Key k = 0; k < 3000; ++k) {
    part.Put(k, "x");
  }
  for (Key k = 0; k < 3000; k += 3) {
    EXPECT_TRUE(part.Erase(k));
  }
  for (Key k = 0; k < 3000; ++k) {
    EXPECT_EQ(part.Contains(k), k % 3 != 0) << "key " << k;
  }
}

TEST(Partition, ConcurrentReadersWithWriter) {
  // CRCW: one writer updates two keys with matching values; readers must never
  // observe a value inconsistent with the key (copy integrity under seqlock).
  Partition part(SmallConfig());
  part.Put(1, "val-0000");
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    for (int i = 1; i <= 50000; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "val-%04d", i % 10000);
      part.Put(1, buf);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Value v;
      while (!stop.load(std::memory_order_relaxed)) {
        if (part.Get(1, &v)) {
          if (v.size() != 8 || v.compare(0, 4, "val-") != 0) {
            bad.fetch_add(1);
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0);
}

TEST(Partition, ConcurrentWritersDistinctKeys) {
  Partition part(SmallConfig());
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&part, t] {
      for (int i = 0; i < 10000; ++i) {
        part.Put(static_cast<Key>(t * 100000 + i % 500), std::to_string(i));
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  EXPECT_EQ(part.size(), 4u * 500u);
}

// ---------------------------------------------------------------------------
// Cache-residency gate (hot-set epoch machinery)
// ---------------------------------------------------------------------------

TEST(Partition, MarkCacheResidentSnapshotsAndGates) {
  Partition part(SmallConfig());
  const Timestamp wts = part.Put(42, "hot-value");

  const Partition::ResidentSnapshot snap = part.MarkCacheResident(42);
  EXPECT_EQ(snap.value, "hot-value");
  EXPECT_EQ(snap.ts, wts);

  // Reads still succeed but report residency inside the same snapshot.
  Value v;
  Timestamp ts;
  bool resident = false;
  ASSERT_TRUE(part.Get(42, &v, &ts, &resident));
  EXPECT_TRUE(resident);
  EXPECT_EQ(v, "hot-value");

  // Direct writes are refused while the hot set owns the key.
  EXPECT_FALSE(part.TryPut(42, "bypass", &ts));
  ASSERT_TRUE(part.Get(42, &v, nullptr, nullptr));
  EXPECT_EQ(v, "hot-value");

  part.ClearCacheResident(42);
  ASSERT_TRUE(part.Get(42, &v, &ts, &resident));
  EXPECT_FALSE(resident);
  ASSERT_TRUE(part.TryPut(42, "after-clear", &ts));
  EXPECT_EQ(ts, (Timestamp{wts.clock + 1, 3}));
}

TEST(Partition, MarkCacheResidentMaterializesAbsentKeys) {
  PartitionConfig pc = SmallConfig();
  pc.synthesize = [](Key key) { return "synth-" + std::to_string(key); };
  Partition part(pc);

  const Partition::ResidentSnapshot snap = part.MarkCacheResident(7);
  EXPECT_EQ(snap.value, "synth-7");
  EXPECT_EQ(snap.ts, Timestamp{});
  EXPECT_EQ(part.size(), 1u);  // the flag needed a record to live on

  bool resident = false;
  Value v;
  ASSERT_TRUE(part.Get(7, &v, nullptr, &resident));
  EXPECT_TRUE(resident);
  EXPECT_EQ(v, "synth-7");
}

TEST(Partition, ApplyBypassesGateAndPreservesFlag) {
  Partition part(SmallConfig());
  part.Put(42, "v1");
  part.MarkCacheResident(42);

  // Protocol traffic (write-backs, late updates) lands while the gate is up
  // and must not drop it.
  EXPECT_TRUE(part.Apply(42, "write-back", Timestamp{9, 1}));
  bool resident = false;
  Value v;
  ASSERT_TRUE(part.Get(42, &v, nullptr, &resident));
  EXPECT_EQ(v, "write-back");
  EXPECT_TRUE(resident);

  // Plain Put (home-node client path, used by the simulator) preserves too.
  part.Put(42, "v2");
  ASSERT_TRUE(part.Get(42, &v, nullptr, &resident));
  EXPECT_TRUE(resident);
}

TEST(Partition, TryPutOnAbsentKeyIsUngated) {
  Partition part(SmallConfig());
  Timestamp ts;
  ASSERT_TRUE(part.TryPut(42, "first", &ts));
  EXPECT_EQ(ts, (Timestamp{1, 3}));
  Value v;
  ASSERT_TRUE(part.Get(42, &v));
  EXPECT_EQ(v, "first");
}

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

TEST(ModuloPartitioner, CoversAllNodesEvenly) {
  ModuloPartitioner part(9);
  std::vector<int> counts(9, 0);
  for (Key k = 0; k < 90000; ++k) {
    const NodeId n = part.HomeOf(k);
    ASSERT_LT(n, 9);
    counts[n]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 400);
  }
}

TEST(ConsistentHashRing, Deterministic) {
  ConsistentHashRing a(9, 128, 5), b(9, 128, 5);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.HomeOf(k), b.HomeOf(k));
  }
}

TEST(ConsistentHashRing, ReasonableBalance) {
  ConsistentHashRing ring(9, 256, 1);
  std::vector<int> counts(9, 0);
  for (Key k = 0; k < 90000; ++k) {
    counts[ring.HomeOf(k)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 5000);   // no node starved
    EXPECT_LT(c, 16000);  // no node doubled
  }
}

TEST(ConsistentHashRing, MinimalRemappingOnNodeRemoval) {
  ConsistentHashRing ring(9, 128, 2);
  std::unordered_map<Key, NodeId> before;
  for (Key k = 0; k < 20000; ++k) {
    before[k] = ring.HomeOf(k);
  }
  ring.RemoveNode(4);
  int moved = 0;
  for (const auto& [k, home] : before) {
    const NodeId now = ring.HomeOf(k);
    if (home == 4) {
      EXPECT_NE(now, 4);  // must move somewhere
    } else if (now != home) {
      ++moved;  // keys not on node 4 should almost never move
    }
  }
  EXPECT_EQ(moved, 0);
}

TEST(ConsistentHashRing, AddNodeTakesFairShare) {
  ConsistentHashRing ring(8, 128, 9);
  ring.AddNode(8);
  int on_new = 0;
  const int total = 30000;
  for (Key k = 0; k < static_cast<Key>(total); ++k) {
    if (ring.HomeOf(k) == 8) {
      ++on_new;
    }
  }
  EXPECT_NEAR(static_cast<double>(on_new) / total, 1.0 / 9.0, 0.04);
}

}  // namespace
}  // namespace cckvs
