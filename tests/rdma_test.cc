// Unit tests for the simulated RDMA verbs layer, serialization and credit-based
// flow control.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/rdma/flow_control.h"
#include "src/rdma/serialize.h"
#include "src/rdma/verbs.h"
#include "src/rdma/wire_format.h"
#include "src/sim/simulator.h"

namespace cckvs {
namespace {

struct TestRack {
  Simulator sim;
  NetConfig net_cfg;
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<RdmaEndpoint>> endpoints;

  explicit TestRack(int nodes = 3) {
    net_cfg.num_nodes = nodes;
    net = std::make_unique<Network>(&sim, net_cfg);
    for (int i = 0; i < nodes; ++i) {
      endpoints.push_back(std::make_unique<RdmaEndpoint>(net.get(), static_cast<NodeId>(i),
                                                         NicCostModel{}));
    }
  }
};

UdQp::SendWr MakeWr(NodeId dst, std::uint16_t dst_qpn, std::size_t payload_size) {
  UdQp::SendWr wr;
  wr.dst = dst;
  wr.dst_qpn = dst_qpn;
  wr.cls = TrafficClass::kRemoteRequest;
  wr.header_bytes = 31;
  auto body = std::make_shared<Buffer>(payload_size, std::uint8_t{0xab});
  wr.body = std::move(body);
  return wr;
}

// ---------------------------------------------------------------------------
// Wire format: the paper's byte accounting
// ---------------------------------------------------------------------------

TEST(WireFormat, MatchesPaperByteCounts) {
  const WireFormat wf;
  EXPECT_EQ(wf.Brr(40), 113u);   // §8.7: B_RR = 113 B
  EXPECT_EQ(wf.Bsc(40), 83u);    // §8.7: B_SC = 83 B
  EXPECT_EQ(wf.Blin(40), 183u);  // §8.7: B_Lin = 183 B
}

TEST(WireFormat, ScalesWithValueSize) {
  const WireFormat wf;
  EXPECT_EQ(wf.ResponseWire(1024) - wf.ResponseWire(40), 984u);
  EXPECT_EQ(wf.UpdateWire(256), wf.UpdateWire(40) + 216u);
  EXPECT_EQ(wf.CreditUpdateWire(), wf.header_bytes);  // header-only
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripScalars) {
  Buffer buf;
  BufferWriter w(&buf);
  w.PutU8(0x12);
  w.PutU16(0x3456);
  w.PutU32(0x789abcde);
  w.PutU64(0x1122334455667788ull);
  BufferReader r(buf);
  EXPECT_EQ(r.GetU8(), 0x12);
  EXPECT_EQ(r.GetU16(), 0x3456);
  EXPECT_EQ(r.GetU32(), 0x789abcdeu);
  EXPECT_EQ(r.GetU64(), 0x1122334455667788ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, RoundTripString) {
  Buffer buf;
  BufferWriter w(&buf);
  w.PutString("hello world");
  w.PutString("");
  w.PutU8(7);
  BufferReader r(buf);
  EXPECT_EQ(r.GetString(), "hello world");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetU8(), 7);
}

TEST(Serialize, LittleEndianLayout) {
  Buffer buf;
  BufferWriter w(&buf);
  w.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerializeDeathTest, OverreadAborts) {
  Buffer buf;
  BufferWriter w(&buf);
  w.PutU8(1);
  BufferReader r(buf);
  r.GetU8();
  EXPECT_DEATH(r.GetU32(), "CHECK");
}

// ---------------------------------------------------------------------------
// Verbs
// ---------------------------------------------------------------------------

TEST(Verbs, SendIsDeliveredToRightQp) {
  TestRack rack;
  QpConfig cfg;
  cfg.qpn = 7;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(cfg);
  rx->PostRecvs(4);
  int got = 0;
  rx->SetRecvHandler([&](const Datagram& dg) {
    EXPECT_EQ(dg.src, 0);
    EXPECT_EQ(dg.src_qpn, 7);
    ASSERT_TRUE(dg.body != nullptr);
    EXPECT_EQ(dg.body->size(), 10u);
    ++got;
  });
  tx->PostSendBatch({MakeWr(1, 7, 10)});
  rack.sim.Run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rx->recvs_consumed(), 1u);
  EXPECT_EQ(rx->available_recvs(), 3);
}

TEST(Verbs, BatchedPostCostsOneDoorbell) {
  TestRack rack;
  QpConfig cfg;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(cfg);
  rx->PostRecvs(64);
  rx->SetRecvHandler([](const Datagram&) {});
  const NicCostModel cost;
  std::vector<UdQp::SendWr> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(MakeWr(1, 0, 10));
  }
  const SimTime batched = tx->PostSendBatch(batch);
  SimTime unbatched = 0;
  for (int i = 0; i < 8; ++i) {
    unbatched += tx->PostSendBatch({MakeWr(1, 0, 10)});
  }
  // 8 posts = 8 doorbells vs 1: saving is exactly 7 doorbells.
  EXPECT_EQ(unbatched - batched, 7 * cost.mmio_doorbell_ns);
  rack.sim.Run();
}

TEST(Verbs, InliningCutsPerWrCost) {
  TestRack rack;
  QpConfig cfg;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(cfg);
  rx->PostRecvs(16);
  rx->SetRecvHandler([](const Datagram&) {});
  const SimTime small = tx->PostSendBatch({MakeWr(1, 0, 100)});   // inlined
  const SimTime large = tx->PostSendBatch({MakeWr(1, 0, 1000)});  // DMA fetch
  EXPECT_LT(small, large);
  rack.sim.Run();
}

TEST(Verbs, SelectiveSignalingReducesPollCost) {
  TestRack rack;
  QpConfig every;
  every.qpn = 1;
  every.signal_interval = 1;
  QpConfig sparse;
  sparse.qpn = 2;
  sparse.signal_interval = 32;
  UdQp* tx_every = rack.endpoints[0]->CreateQp(every);
  UdQp* tx_sparse = rack.endpoints[0]->CreateQp(sparse);
  UdQp* rx1 = rack.endpoints[1]->CreateQp(every);
  UdQp* rx2 = rack.endpoints[1]->CreateQp(sparse);
  rx1->PostRecvs(8);
  rx2->PostRecvs(8);
  rx1->SetRecvHandler([](const Datagram&) {});
  rx2->SetRecvHandler([](const Datagram&) {});
  const SimTime expensive = tx_every->PostSendBatch({MakeWr(1, 1, 10)});
  const SimTime cheap = tx_sparse->PostSendBatch({MakeWr(1, 2, 10)});
  EXPECT_LT(cheap, expensive);
  rack.sim.Run();
}

TEST(VerbsDeathTest, RecvQueueUnderflowIsFatal) {
  // A message arriving with no posted receive means flow control is broken;
  // the simulator must abort loudly rather than silently drop.
  TestRack rack;
  QpConfig cfg;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(cfg);
  rx->SetRecvHandler([](const Datagram&) {});
  tx->PostSendBatch({MakeWr(1, 0, 10)});
  EXPECT_DEATH(rack.sim.Run(), "CHECK");
}

TEST(Verbs, MulticastDeliversToAllButSender) {
  TestRack rack(4);
  QpConfig cfg;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  int got = 0;
  for (int n = 1; n < 4; ++n) {
    UdQp* rx = rack.endpoints[static_cast<std::size_t>(n)]->CreateQp(cfg);
    rx->PostRecvs(4);
    rx->SetRecvHandler([&](const Datagram&) { ++got; });
  }
  // Sender also has a QP but should not receive its own multicast.
  tx->PostRecvs(4);
  tx->SetRecvHandler([&](const Datagram&) { FAIL() << "loopback delivery"; });
  tx->PostMulticast(MakeWr(0, 0, 52), {0, 1, 2, 3});
  rack.sim.Run();
  EXPECT_EQ(got, 3);
}

TEST(Verbs, RegisteredRecvMemoryScalesWithQps) {
  TestRack rack;
  QpConfig cfg;
  cfg.recv_queue_depth = 100;
  cfg.recv_buffer_bytes = 1000;
  rack.endpoints[0]->CreateQp(cfg);
  EXPECT_EQ(rack.endpoints[0]->registered_recv_bytes(), 100'000u);
  cfg.qpn = 1;
  rack.endpoints[0]->CreateQp(cfg);
  EXPECT_EQ(rack.endpoints[0]->registered_recv_bytes(), 200'000u);
  EXPECT_EQ(rack.endpoints[0]->num_qps(), 2);
}

TEST(Verbs, PollSweepCostGrowsWithConnections) {
  TestRack rack;
  QpConfig cfg;
  for (std::uint16_t q = 0; q < 4; ++q) {
    cfg.qpn = q;
    rack.endpoints[0]->CreateQp(cfg);
  }
  const SimTime four = rack.endpoints[0]->PollSweepCost();
  for (std::uint16_t q = 4; q < 32; ++q) {
    cfg.qpn = q;
    rack.endpoints[0]->CreateQp(cfg);
  }
  const SimTime thirty_two = rack.endpoints[0]->PollSweepCost();
  EXPECT_GT(thirty_two, four);
}

TEST(Verbs, MinAvailableRecvsTracksHighWater) {
  TestRack rack;
  QpConfig cfg;
  UdQp* tx = rack.endpoints[0]->CreateQp(cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(cfg);
  rx->PostRecvs(3);
  rx->SetRecvHandler([](const Datagram&) {});
  tx->PostSendBatch({MakeWr(1, 0, 4), MakeWr(1, 0, 4)});
  rack.sim.Run();
  EXPECT_EQ(rx->min_available_recvs(), 1u);
}

// ---------------------------------------------------------------------------
// Flow control
// ---------------------------------------------------------------------------

TEST(CreditPool, AcquireAndRelease) {
  CreditPool pool(3, 2);
  EXPECT_TRUE(pool.TryAcquire(1));
  EXPECT_TRUE(pool.TryAcquire(1));
  EXPECT_FALSE(pool.TryAcquire(1));
  EXPECT_EQ(pool.available(1), 0);
  EXPECT_TRUE(pool.TryAcquire(2));  // peers independent
  pool.Release(1);
  EXPECT_TRUE(pool.TryAcquire(1));
}

TEST(CreditPoolDeathTest, OverReleaseAborts) {
  CreditPool pool(2, 1);
  EXPECT_DEATH(pool.Release(0), "CHECK");
}

TEST(CreditUpdateBatcher, FiresEveryBatch) {
  CreditUpdateBatcher batcher(2, 3);
  EXPECT_FALSE(batcher.OnReceived(0));
  EXPECT_FALSE(batcher.OnReceived(0));
  EXPECT_TRUE(batcher.OnReceived(0));
  EXPECT_EQ(batcher.pending(0), 0);
  // Independent per peer.
  EXPECT_FALSE(batcher.OnReceived(1));
  EXPECT_FALSE(batcher.OnReceived(0));
}

TEST(CreditFlow, EndToEndNeverUnderflowsRecvQueue) {
  // Sender respects a credit pool sized to the receiver's posted receives and
  // reposts happen on credit-update receipt: the DCHECK in verbs must hold.
  TestRack rack;
  const int kCredits = 4;
  const int kMessages = 100;
  QpConfig data_cfg;
  data_cfg.qpn = 0;
  data_cfg.recv_queue_depth = kCredits;
  QpConfig credit_cfg;
  credit_cfg.qpn = 1;
  UdQp* tx = rack.endpoints[0]->CreateQp(data_cfg);
  UdQp* tx_credit_rx = rack.endpoints[0]->CreateQp(credit_cfg);
  UdQp* rx = rack.endpoints[1]->CreateQp(data_cfg);
  UdQp* rx_credit_tx = rack.endpoints[1]->CreateQp(credit_cfg);
  rx->PostRecvs(kCredits);
  tx_credit_rx->PostRecvs(64);

  CreditPool credits(2, kCredits);
  CreditUpdateBatcher batcher(2, 2);
  int sent = 0;
  int received = 0;

  std::function<void()> pump = [&] {
    while (sent < kMessages && credits.TryAcquire(1)) {
      tx->PostSendBatch({MakeWr(1, 0, 8)});
      ++sent;
    }
  };
  rx->SetRecvHandler([&](const Datagram& dg) {
    ++received;
    rx->PostRecvs(1);  // repost immediately; credit returns via batched update
    if (batcher.OnReceived(dg.src)) {
      UdQp::SendWr credit_wr;
      credit_wr.dst = dg.src;
      credit_wr.dst_qpn = 1;
      credit_wr.cls = TrafficClass::kCreditUpdate;
      credit_wr.header_bytes = 31;
      rx_credit_tx->PostSendBatch({credit_wr});
    }
  });
  tx_credit_rx->SetRecvHandler([&](const Datagram& dg) {
    credits.Release(dg.src, batcher.batch());
    pump();
  });
  pump();
  rack.sim.Run();
  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(sent, kMessages);
}

}  // namespace
}  // namespace cckvs
