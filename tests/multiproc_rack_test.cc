// Multi-process live rack stress (runtime/multiproc.h + cross-process
// fabrics): 4 OS processes, one node each, over shm rings and UDS sockets,
// with online epochs and popularity drift — the full production protocol
// stack across address-space boundaries — certified by the per-key SC/Lin
// checkers over the merged histories.
//
// The test binary re-execs itself for the child ranks: invoked as
//   <binary> --cckvs-join <params-hex> <artifact-path>
// it runs one rank and writes its artifact file instead of running gtest.
// Op counts scale down under sanitizers (each child inherits the sanitizer
// runtime, so a 4-process TSan rack is 4x the usual slowdown).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/live_rack.h"
#include "src/runtime/multiproc.h"
#include "src/runtime/tracing.h"
#include "src/verify/history.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CCKVS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CCKVS_SANITIZED 1
#endif
#endif

namespace cckvs {
namespace {

std::uint64_t OpsPerRank() {
#ifdef CCKVS_SANITIZED
  return 4'000;
#else
  return 25'000;
#endif
}

LiveRackParams MultiprocParams(TransportKind kind, ConsistencyModel model,
                               const std::string& run_tag) {
  LiveRackParams p;
  p.num_nodes = 4;
  p.consistency = model;
  p.ops_per_node = OpsPerRank();
  // Hot-key contention + a real miss stream, as in live_rack_test, but with
  // every cross-node byte travelling through a real kernel/shm boundary.
  p.workload.keyspace = 8'192;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.2;
  p.workload.value_bytes = 16;
  p.cache_capacity = 256;
  p.partition_buckets = 1 << 10;
  p.window_per_node = 4;
  p.record_history = true;
  p.seed = 11;
  // Online epochs + drift: hot-set churn happens WHILE ranks exchange RPCs
  // and updates — the hardest consistency surface this repo has.
  p.online_topk = true;
  p.topk_epoch_requests = OpsPerRank() / 2;
  p.workload.drift_period_ops = OpsPerRank() / 2;
  p.workload.drift_rank_shift = 16;

  p.transport.kind = kind;
  const std::string ns = std::to_string(getpid()) + "_" + run_tag;
  p.transport.shm_name = "/cckvs_mpt_" + ns;
  p.transport.socket_path_base = "/tmp/cckvs_mpt_" + ns;
  p.clock_epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return p;
}

std::string ArtifactPath(const std::string& run_tag, int rank) {
  return "/tmp/cckvs_mpt_" + std::to_string(getpid()) + "_" + run_tag + ".rank" +
         std::to_string(rank) + ".bin";
}

// Spawns ranks 1..3 as child processes, runs rank 0 in-process, merges all
// histories and runs the full checkers.
void RunAndCertify(TransportKind kind, ConsistencyModel model,
                   const std::string& run_tag, bool with_l1 = false) {
  LiveRackParams params = MultiprocParams(kind, model, run_tag);
  if (with_l1) {
    // Node-private L1 tail in every rank, with per-node rank skew so each
    // process actually fills its private tier.  The blob carries the L1
    // knobs to the child ranks; the merged histories must stay as
    // checker-clean as without the L1.
    params.l1_capacity = 128;
    params.l1_policy = L1Policy::kLru;
    params.workload.node_rank_stride = 512;
  }

  std::vector<pid_t> children;
  for (int rank = 1; rank < params.num_nodes; ++rank) {
    LiveRackParams child = params;
    child.transport.rank = rank;
    std::string error;
    const pid_t pid = SpawnSelf(
        {"--cckvs-join", EncodeRackParams(child), ArtifactPath(run_tag, rank)},
        &error);
    ASSERT_GE(pid, 0) << error;
    children.push_back(pid);
  }

  params.transport.rank = 0;
  LiveRack rack(params);
  const LiveReport report = rack.Run();
  EXPECT_TRUE(report.ok()) << report.transport_error;
  EXPECT_GE(report.completed, params.ops_per_node);
  EXPECT_GT(report.rpcs_sent, 0u) << "no remote-homed miss ever took the RPC path";

  History merged;
  for (const HistoryOp& op : rack.history().ops()) {
    merged.Record(op);
  }
  std::uint64_t total_completed = report.completed;

  for (std::size_t i = 0; i < children.size(); ++i) {
    int code = -1;
    std::string error;
    EXPECT_TRUE(WaitExit(children[i], &code, &error)) << error;
    EXPECT_EQ(code, 0) << "rank " << i + 1 << " failed";
  }
  for (int rank = 1; rank < params.num_nodes; ++rank) {
    RankArtifacts a;
    std::string error;
    ASSERT_TRUE(LoadRankArtifacts(ArtifactPath(run_tag, rank), &a, &error)) << error;
    EXPECT_TRUE(a.transport_error.empty()) << a.transport_error;
    EXPECT_GE(a.completed, params.ops_per_node);
    total_completed += a.completed;
    for (HistoryOp& op : a.history) {
      merged.Record(std::move(op));
    }
    std::remove(ArtifactPath(run_tag, rank).c_str());
  }

  // Every completed op everywhere is in the merged history — nothing lost in
  // an address-space crossing.
  EXPECT_EQ(merged.size(), total_completed);

  // The full verify/ battery over the merged multi-process run.
  if (model == ConsistencyModel::kLin) {
    EXPECT_EQ(merged.CheckPerKeyLinearizability(), "");
  } else {
    EXPECT_EQ(merged.CheckPerKeySequentialConsistency(), "");
  }
  EXPECT_EQ(merged.CheckWriteAtomicity(), "");
}

TEST(MultiprocRack, ShmFourRanksLinUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kLin, "shm_lin");
}

TEST(MultiprocRack, ShmFourRanksScUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kSc, "shm_sc");
}

TEST(MultiprocRack, ShmFourRanksScWithL1Tail) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kSc, "shm_sc_l1",
                /*with_l1=*/true);
}

TEST(MultiprocRack, ShmFourRanksLinWithL1Tail) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kLin, "shm_lin_l1",
                /*with_l1=*/true);
}

TEST(MultiprocRack, SocketFourRanksLinUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kSocket, ConsistencyModel::kLin, "uds_lin");
}

TEST(MultiprocRack, SocketFourRanksScUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kSocket, ConsistencyModel::kSc, "uds_sc");
}

// Scans one exported per-rank trace file line by line (one event per line,
// by construction) and collects the trace ids of requester-side `rpc` spans
// and home-side `rpc_serve` spans, plus which transition kinds appeared.
struct TraceScan {
  std::set<std::string> rpc_traces;
  std::set<std::string> serve_traces;
  bool saw_epoch_install = false;
  bool saw_barrier_wait = false;
  bool saw_gate_closed = false;
  std::size_t events = 0;
};

std::string TraceIdOf(const std::string& line) {
  const std::string key = "\"trace\":\"";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) {
    return "";
  }
  const std::size_t begin = at + key.size();
  const std::size_t end = line.find('"', begin);
  return end == std::string::npos ? "" : line.substr(begin, end - begin);
}

void ScanTraceFile(const std::string& path, TraceScan* scan) {
  std::ifstream f(path);
  ASSERT_TRUE(f) << "missing per-rank trace file " << path;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] != '{' ||
        line.rfind("{\"traceEvents\"", 0) == 0) {
      continue;
    }
    ++scan->events;
    // The trailing comma disambiguates "rpc" from "rpc_serve"/"rpc_flow".
    const std::string trace = TraceIdOf(line);
    if (line.find("\"name\":\"rpc\",") != std::string::npos) {
      if (!trace.empty() && trace != "0x0") {
        scan->rpc_traces.insert(trace);
      }
    } else if (line.find("\"name\":\"rpc_serve\",") != std::string::npos) {
      if (!trace.empty() && trace != "0x0") {
        scan->serve_traces.insert(trace);
      }
    } else if (line.find("\"name\":\"epoch_install\",") != std::string::npos) {
      scan->saw_epoch_install = true;
    } else if (line.find("\"name\":\"barrier_wait\",") != std::string::npos) {
      scan->saw_barrier_wait = true;
    } else if (line.find("\"name\":\"gate_closed\",") != std::string::npos) {
      scan->saw_gate_closed = true;
    }
  }
}

// The tracing acceptance scenario: a traced 4-rank shm rack with online
// epochs produces per-rank span files whose requester-side `rpc` spans join
// home-side `rpc_serve` spans from OTHER processes by trace id, records the
// epoch-transition timeline, and the per-rank files merge into one valid
// Chrome trace.
TEST(MultiprocRack, TracedShmRackStitchesRpcSpansAcrossRanks) {
  const std::string run_tag = "trace";
  LiveRackParams params =
      MultiprocParams(TransportKind::kShm, ConsistencyModel::kLin, run_tag);
  params.record_history = false;  // certification is the other tests' job
  params.trace_path =
      "/tmp/cckvs_mpt_" + std::to_string(getpid()) + "_trace.json";
  params.trace_sample = 1;            // every op: stitching must be abundant
  params.trace_ring_capacity = 1 << 17;

  std::vector<pid_t> children;
  for (int rank = 1; rank < params.num_nodes; ++rank) {
    LiveRackParams child = params;
    child.transport.rank = rank;
    std::string error;
    const pid_t pid = SpawnSelf(
        {"--cckvs-join", EncodeRackParams(child), ArtifactPath(run_tag, rank)},
        &error);
    ASSERT_GE(pid, 0) << error;
    children.push_back(pid);
  }

  params.transport.rank = 0;
  LiveRack rack(params);
  const LiveReport report = rack.Run();
  EXPECT_TRUE(report.ok()) << report.transport_error;
  EXPECT_TRUE(report.trace_error.empty()) << report.trace_error;
  EXPECT_GT(report.spans_recorded, 0u);

  for (std::size_t i = 0; i < children.size(); ++i) {
    int code = -1;
    std::string error;
    EXPECT_TRUE(WaitExit(children[i], &code, &error)) << error;
    EXPECT_EQ(code, 0) << "rank " << i + 1 << " failed";
    std::remove(ArtifactPath(run_tag, i + 1).c_str());
  }

  // Every rank exported its own span file; scan them all.
  TraceScan scan;
  std::vector<std::string> rank_files;
  for (int rank = 0; rank < params.num_nodes; ++rank) {
    rank_files.push_back(params.trace_path + ".rank" + std::to_string(rank));
    ScanTraceFile(rank_files.back(), &scan);
  }
  EXPECT_GT(scan.events, 0u);

  // The stitching invariant: a sampled remote miss leaves an `rpc` span in
  // the requester's file and an `rpc_serve` span with the SAME trace id in
  // the home rank's file — a different process.
  EXPECT_FALSE(scan.rpc_traces.empty()) << "no sampled rpc spans recorded";
  EXPECT_FALSE(scan.serve_traces.empty()) << "no rpc_serve spans recorded";
  std::set<std::string> joined;
  for (const std::string& t : scan.rpc_traces) {
    if (scan.serve_traces.count(t) != 0) {
      joined.insert(t);
    }
  }
  EXPECT_FALSE(joined.empty())
      << "no rpc span joins an rpc_serve span by trace id across ranks";

  // The epoch-transition timeline made it into the spans.
  EXPECT_TRUE(scan.saw_epoch_install) << "no epoch_install span recorded";
  EXPECT_TRUE(scan.saw_barrier_wait) << "no barrier_wait span recorded";
  EXPECT_TRUE(scan.saw_gate_closed) << "no gate_closed span recorded";

  // And the per-rank files splice into one well-formed trace.
  std::string error;
  ASSERT_TRUE(MergeChromeTraces(rank_files, params.trace_path, &error)) << error;
  std::ifstream merged(params.trace_path);
  ASSERT_TRUE(merged);
  std::string text((std::istreambuf_iterator<char>(merged)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(text.find("{\"traceEvents\"", 1), std::string::npos)
      << "per-rank header leaked into the merged trace";
  EXPECT_NE(text.find("\"name\":\"rpc_serve\""), std::string::npos);

  std::remove(params.trace_path.c_str());
  for (const std::string& f : rank_files) {
    std::remove(f.c_str());
  }
}

// Params survive the argv hand-off bit-exactly (doubles included).
TEST(MultiprocRack, ParamsRoundTripThroughHexBlob) {
  LiveRackParams p = MultiprocParams(TransportKind::kSocket, ConsistencyModel::kSc,
                                     "roundtrip");
  p.transport.rank = 2;
  p.coalescing = true;
  p.coalesce_flush_deadline_us = 77;
  p.l1_capacity = 333;
  p.l1_policy = L1Policy::kLfu;
  p.workload.node_rank_stride = 1'234;
  const std::string hex = EncodeRackParams(p);
  LiveRackParams q;
  std::string error;
  ASSERT_TRUE(DecodeRackParams(hex, &q, &error)) << error;
  EXPECT_EQ(EncodeRackParams(q), hex);
  EXPECT_EQ(q.transport.rank, 2);
  EXPECT_EQ(q.consistency, ConsistencyModel::kSc);
  EXPECT_EQ(q.transport.kind, TransportKind::kSocket);
  EXPECT_EQ(q.workload.zipf_alpha, p.workload.zipf_alpha);
  EXPECT_EQ(q.clock_epoch_ns, p.clock_epoch_ns);
  EXPECT_EQ(q.l1_capacity, 333u);
  EXPECT_EQ(q.l1_policy, L1Policy::kLfu);
  EXPECT_EQ(q.workload.node_rank_stride, 1'234u);

  LiveRackParams bad;
  EXPECT_FALSE(DecodeRackParams(hex.substr(0, hex.size() - 4), &bad, &error));
  EXPECT_FALSE(DecodeRackParams("zz" + hex, &bad, &error));
}

}  // namespace
}  // namespace cckvs

// Child mode: one rank of a multi-process rack, then exit — no gtest.
int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--cckvs-join") {
    cckvs::LiveRackParams params;
    std::string error;
    if (!cckvs::DecodeRackParams(argv[2], &params, &error)) {
      std::fprintf(stderr, "child: %s\n", error.c_str());
      return 2;
    }
    cckvs::LiveRack rack(params);
    const cckvs::LiveReport report = rack.Run();
    cckvs::RankArtifacts artifacts;
    artifacts.completed = report.completed;
    artifacts.rpcs_sent = report.rpcs_sent;
    artifacts.transport_error = report.transport_error;
    artifacts.history = rack.history().ops();
    if (!cckvs::SaveRankArtifacts(argv[3], artifacts, &error)) {
      std::fprintf(stderr, "child: %s\n", error.c_str());
      return 2;
    }
    return report.ok() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
