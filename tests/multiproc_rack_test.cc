// Multi-process live rack stress (runtime/multiproc.h + cross-process
// fabrics): 4 OS processes, one node each, over shm rings and UDS sockets,
// with online epochs and popularity drift — the full production protocol
// stack across address-space boundaries — certified by the per-key SC/Lin
// checkers over the merged histories.
//
// The test binary re-execs itself for the child ranks: invoked as
//   <binary> --cckvs-join <params-hex> <artifact-path>
// it runs one rank and writes its artifact file instead of running gtest.
// Op counts scale down under sanitizers (each child inherits the sanitizer
// runtime, so a 4-process TSan rack is 4x the usual slowdown).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/live_rack.h"
#include "src/runtime/multiproc.h"
#include "src/verify/history.h"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CCKVS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CCKVS_SANITIZED 1
#endif
#endif

namespace cckvs {
namespace {

std::uint64_t OpsPerRank() {
#ifdef CCKVS_SANITIZED
  return 4'000;
#else
  return 25'000;
#endif
}

LiveRackParams MultiprocParams(TransportKind kind, ConsistencyModel model,
                               const std::string& run_tag) {
  LiveRackParams p;
  p.num_nodes = 4;
  p.consistency = model;
  p.ops_per_node = OpsPerRank();
  // Hot-key contention + a real miss stream, as in live_rack_test, but with
  // every cross-node byte travelling through a real kernel/shm boundary.
  p.workload.keyspace = 8'192;
  p.workload.zipf_alpha = 0.99;
  p.workload.write_ratio = 0.2;
  p.workload.value_bytes = 16;
  p.cache_capacity = 256;
  p.partition_buckets = 1 << 10;
  p.window_per_node = 4;
  p.record_history = true;
  p.seed = 11;
  // Online epochs + drift: hot-set churn happens WHILE ranks exchange RPCs
  // and updates — the hardest consistency surface this repo has.
  p.online_topk = true;
  p.topk_epoch_requests = OpsPerRank() / 2;
  p.workload.drift_period_ops = OpsPerRank() / 2;
  p.workload.drift_rank_shift = 16;

  p.transport.kind = kind;
  const std::string ns = std::to_string(getpid()) + "_" + run_tag;
  p.transport.shm_name = "/cckvs_mpt_" + ns;
  p.transport.socket_path_base = "/tmp/cckvs_mpt_" + ns;
  p.clock_epoch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return p;
}

std::string ArtifactPath(const std::string& run_tag, int rank) {
  return "/tmp/cckvs_mpt_" + std::to_string(getpid()) + "_" + run_tag + ".rank" +
         std::to_string(rank) + ".bin";
}

// Spawns ranks 1..3 as child processes, runs rank 0 in-process, merges all
// histories and runs the full checkers.
void RunAndCertify(TransportKind kind, ConsistencyModel model,
                   const std::string& run_tag) {
  LiveRackParams params = MultiprocParams(kind, model, run_tag);

  std::vector<pid_t> children;
  for (int rank = 1; rank < params.num_nodes; ++rank) {
    LiveRackParams child = params;
    child.transport.rank = rank;
    std::string error;
    const pid_t pid = SpawnSelf(
        {"--cckvs-join", EncodeRackParams(child), ArtifactPath(run_tag, rank)},
        &error);
    ASSERT_GE(pid, 0) << error;
    children.push_back(pid);
  }

  params.transport.rank = 0;
  LiveRack rack(params);
  const LiveReport report = rack.Run();
  EXPECT_TRUE(report.ok()) << report.transport_error;
  EXPECT_GE(report.completed, params.ops_per_node);
  EXPECT_GT(report.rpcs_sent, 0u) << "no remote-homed miss ever took the RPC path";

  History merged;
  for (const HistoryOp& op : rack.history().ops()) {
    merged.Record(op);
  }
  std::uint64_t total_completed = report.completed;

  for (std::size_t i = 0; i < children.size(); ++i) {
    int code = -1;
    std::string error;
    EXPECT_TRUE(WaitExit(children[i], &code, &error)) << error;
    EXPECT_EQ(code, 0) << "rank " << i + 1 << " failed";
  }
  for (int rank = 1; rank < params.num_nodes; ++rank) {
    RankArtifacts a;
    std::string error;
    ASSERT_TRUE(LoadRankArtifacts(ArtifactPath(run_tag, rank), &a, &error)) << error;
    EXPECT_TRUE(a.transport_error.empty()) << a.transport_error;
    EXPECT_GE(a.completed, params.ops_per_node);
    total_completed += a.completed;
    for (HistoryOp& op : a.history) {
      merged.Record(std::move(op));
    }
    std::remove(ArtifactPath(run_tag, rank).c_str());
  }

  // Every completed op everywhere is in the merged history — nothing lost in
  // an address-space crossing.
  EXPECT_EQ(merged.size(), total_completed);

  // The full verify/ battery over the merged multi-process run.
  if (model == ConsistencyModel::kLin) {
    EXPECT_EQ(merged.CheckPerKeyLinearizability(), "");
  } else {
    EXPECT_EQ(merged.CheckPerKeySequentialConsistency(), "");
  }
  EXPECT_EQ(merged.CheckWriteAtomicity(), "");
}

TEST(MultiprocRack, ShmFourRanksLinUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kLin, "shm_lin");
}

TEST(MultiprocRack, ShmFourRanksScUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kShm, ConsistencyModel::kSc, "shm_sc");
}

TEST(MultiprocRack, SocketFourRanksLinUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kSocket, ConsistencyModel::kLin, "uds_lin");
}

TEST(MultiprocRack, SocketFourRanksScUnderEpochsAndDrift) {
  RunAndCertify(TransportKind::kSocket, ConsistencyModel::kSc, "uds_sc");
}

// Params survive the argv hand-off bit-exactly (doubles included).
TEST(MultiprocRack, ParamsRoundTripThroughHexBlob) {
  LiveRackParams p = MultiprocParams(TransportKind::kSocket, ConsistencyModel::kSc,
                                     "roundtrip");
  p.transport.rank = 2;
  p.coalescing = true;
  p.coalesce_flush_deadline_us = 77;
  const std::string hex = EncodeRackParams(p);
  LiveRackParams q;
  std::string error;
  ASSERT_TRUE(DecodeRackParams(hex, &q, &error)) << error;
  EXPECT_EQ(EncodeRackParams(q), hex);
  EXPECT_EQ(q.transport.rank, 2);
  EXPECT_EQ(q.consistency, ConsistencyModel::kSc);
  EXPECT_EQ(q.transport.kind, TransportKind::kSocket);
  EXPECT_EQ(q.workload.zipf_alpha, p.workload.zipf_alpha);
  EXPECT_EQ(q.clock_epoch_ns, p.clock_epoch_ns);

  LiveRackParams bad;
  EXPECT_FALSE(DecodeRackParams(hex.substr(0, hex.size() - 4), &bad, &error));
  EXPECT_FALSE(DecodeRackParams("zz" + hex, &bad, &error));
}

}  // namespace
}  // namespace cckvs

// Child mode: one rank of a multi-process rack, then exit — no gtest.
int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--cckvs-join") {
    cckvs::LiveRackParams params;
    std::string error;
    if (!cckvs::DecodeRackParams(argv[2], &params, &error)) {
      std::fprintf(stderr, "child: %s\n", error.c_str());
      return 2;
    }
    cckvs::LiveRack rack(params);
    const cckvs::LiveReport report = rack.Run();
    cckvs::RankArtifacts artifacts;
    artifacts.completed = report.completed;
    artifacts.rpcs_sent = report.rpcs_sent;
    artifacts.transport_error = report.transport_error;
    artifacts.history = rack.history().ops();
    if (!cckvs::SaveRankArtifacts(argv[3], artifacts, &error)) {
      std::fprintf(stderr, "child: %s\n", error.c_str());
      return 2;
    }
    return report.ok() ? 0 : 1;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
