// Unit tests for the simulated network fabric: serialization, switch packet-rate
// caps, incast behaviour, multicast semantics and traffic accounting.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace cckvs {
namespace {

NetConfig SmallRack() {
  NetConfig cfg;
  cfg.num_nodes = 4;
  cfg.link_gbps = 8.0;      // 1 B/ns: easy mental math
  cfg.switch_mpps = 100.0;  // 10 ns per packet per port
  cfg.nic_mpps = 1000.0;    // effectively uncapped: tests isolate the switch
  cfg.propagation_ns = 5;
  return cfg;
}

Packet MakePacket(NodeId src, NodeId dst, std::uint32_t header, std::uint32_t payload,
                  TrafficClass cls = TrafficClass::kRemoteRequest) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.header_bytes = header;
  p.payload_bytes = payload;
  p.cls = cls;
  return p;
}

TEST(Network, WireAndPortTimes) {
  Simulator sim;
  Network net(&sim, SmallRack());
  EXPECT_EQ(net.WireTime(100), 100u);  // 8 Gb/s = 1 B/ns
  EXPECT_EQ(net.PortTime(), 10u);
}

TEST(Network, SingleSmallPacketLatency) {
  Simulator sim;
  Network net(&sim, SmallRack());
  SimTime delivered_at = 0;
  net.SetDeliverHandler(1, [&](const Packet&) { delivered_at = sim.now(); });
  // 50B packet: 50ns TX wire + 10 ingress + 10 egress + 50 RX wire + 5 prop = 125.
  net.Send(MakePacket(0, 1, 10, 40));
  sim.Run();
  EXPECT_EQ(delivered_at, 125u);
}

TEST(Network, DirectCableSkipsSwitch) {
  Simulator sim;
  NetConfig cfg = SmallRack();
  cfg.through_switch = false;
  Network net(&sim, cfg);
  SimTime delivered_at = 0;
  net.SetDeliverHandler(1, [&](const Packet&) { delivered_at = sim.now(); });
  net.Send(MakePacket(0, 1, 10, 40));
  sim.Run();
  EXPECT_EQ(delivered_at, 105u);  // no 2x10ns port stations
}

TEST(Network, BigPacketsAreBandwidthBound) {
  // Packets large enough that wire time (1000ns) >> port time (10ns): the
  // sustained rate must equal the line rate.
  Simulator sim;
  Network net(&sim, SmallRack());
  int received = 0;
  net.SetDeliverHandler(1, [&](const Packet&) { ++received; });
  const int kPackets = 100;
  for (int i = 0; i < kPackets; ++i) {
    net.Send(MakePacket(0, 1, 40, 960));  // 1000 B -> 1000 ns serialization
  }
  sim.Run();
  EXPECT_EQ(received, kPackets);
  // Pipeline: TX wire is the bottleneck station at 1000ns/packet.
  const double ns_per_packet = static_cast<double>(sim.now()) / kPackets;
  EXPECT_NEAR(ns_per_packet, 1000.0, 30.0);
}

TEST(Network, SmallPacketsArePpsBound) {
  // 20 B packets: wire time 20ns < port time 10ns... wire still dominates; use
  // tiny packets (5 B -> 5 ns wire) so the 10 ns ports dominate at 10ns/packet.
  Simulator sim;
  Network net(&sim, SmallRack());
  int received = 0;
  net.SetDeliverHandler(1, [&](const Packet&) { ++received; });
  const int kPackets = 200;
  for (int i = 0; i < kPackets; ++i) {
    net.Send(MakePacket(0, 1, 5, 0));
  }
  sim.Run();
  EXPECT_EQ(received, kPackets);
  const double ns_per_packet = static_cast<double>(sim.now()) / kPackets;
  EXPECT_NEAR(ns_per_packet, 10.0, 1.0);
}

TEST(Network, EffectiveSmallPacketBandwidthMatchesPaper) {
  // §8.4: with the default calibration, the ccKVS small-packet mix (41 B
  // requests + 72 B responses) must sustain about 21.5 Gb/s per port even
  // though the line rate is 54 Gb/s — the switch pps limit binds.
  Simulator sim;
  NetConfig cfg;  // defaults: 54 Gb/s, 47.6 Mpps
  Network net(&sim, cfg);
  std::uint64_t received_bytes = 0;
  net.SetDeliverHandler(1, [&](const Packet& p) { received_bytes += p.wire_bytes(); });
  const int kPairs = 20000;
  for (int i = 0; i < kPairs; ++i) {
    net.Send(MakePacket(0, 1, 31, 10));  // 41 B request
    net.Send(MakePacket(0, 1, 31, 41));  // 72 B response
  }
  sim.Run();
  const double gbps =
      static_cast<double>(received_bytes) * 8.0 / static_cast<double>(sim.now());
  EXPECT_NEAR(gbps, 21.5, 0.8);

  // Large packets from a second run must instead approach the line rate.
  Simulator sim2;
  Network net2(&sim2, cfg);
  std::uint64_t bytes2 = 0;
  net2.SetDeliverHandler(1, [&](const Packet& p) { bytes2 += p.wire_bytes(); });
  for (int i = 0; i < 5000; ++i) {
    net2.Send(MakePacket(0, 1, 31, 1024));
  }
  sim2.Run();
  const double gbps2 = static_cast<double>(bytes2) * 8.0 / static_cast<double>(sim2.now());
  EXPECT_NEAR(gbps2, 54.0, 2.0);
}

TEST(Network, IncastBottlenecksOnReceiverPort) {
  // All other nodes blast one receiver with tiny packets; aggregate delivery
  // rate is capped by the single egress port, not by the three senders.
  Simulator sim;
  Network net(&sim, SmallRack());
  int received = 0;
  net.SetDeliverHandler(0, [&](const Packet&) { ++received; });
  const int kEach = 100;
  for (int i = 0; i < kEach; ++i) {
    for (NodeId src : {1, 2, 3}) {
      net.Send(MakePacket(src, 0, 5, 0));
    }
  }
  sim.Run();
  EXPECT_EQ(received, 3 * kEach);
  // Egress port: 10ns/packet -> 300 packets take ~3000ns (not ~1000ns).
  EXPECT_GE(sim.now(), 2900u);
}

TEST(Network, DistinctReceiversScaleOut) {
  // Same offered load spread over 3 receivers: ~3x faster than incast.
  Simulator sim;
  Network net(&sim, SmallRack());
  int received = 0;
  for (NodeId n : {1, 2, 3}) {
    net.SetDeliverHandler(n, [&](const Packet&) { ++received; });
  }
  const int kEach = 100;
  for (int i = 0; i < kEach; ++i) {
    for (NodeId dst : {1, 2, 3}) {
      net.Send(MakePacket(0, dst, 5, 0));
    }
  }
  sim.Run();
  EXPECT_EQ(received, 3 * kEach);
  // Sender ingress port is now the shared bottleneck: 300 packets * 10ns.
  EXPECT_NEAR(static_cast<double>(sim.now()), 3000.0, 150.0);
}

TEST(Network, MulticastPaysSenderOnce) {
  // Unicast to 3 receivers costs 3 TX serializations; multicast costs one.
  Simulator sim;
  Network net(&sim, SmallRack());
  int received = 0;
  for (NodeId n : {1, 2, 3}) {
    net.SetDeliverHandler(n, [&](const Packet&) { ++received; });
  }
  Packet p = MakePacket(0, 0, 40, 960, TrafficClass::kUpdate);
  net.SendMulticast(p, {1, 2, 3});
  sim.Run();
  EXPECT_EQ(received, 3);
  EXPECT_EQ(net.tx_wire_busy_ns(0), 1000u);  // one serialization, not three
  // Each receiver still pays its own RX serialization.
  for (NodeId n : {1, 2, 3}) {
    EXPECT_EQ(net.rx_wire_busy_ns(n), 1000u);
  }
}

TEST(Network, MulticastSkipsSender) {
  Simulator sim;
  Network net(&sim, SmallRack());
  int self_delivered = 0;
  int other_delivered = 0;
  net.SetDeliverHandler(0, [&](const Packet&) { ++self_delivered; });
  net.SetDeliverHandler(1, [&](const Packet&) { ++other_delivered; });
  Packet p = MakePacket(0, 0, 10, 10, TrafficClass::kUpdate);
  net.SendMulticast(p, {0, 1});
  sim.Run();
  EXPECT_EQ(self_delivered, 0);
  EXPECT_EQ(other_delivered, 1);
}

TEST(NetworkStats, PerClassAccounting) {
  Simulator sim;
  Network net(&sim, SmallRack());
  net.SetDeliverHandler(1, [](const Packet&) {});
  net.Send(MakePacket(0, 1, 31, 10, TrafficClass::kRemoteRequest));
  net.Send(MakePacket(0, 1, 31, 41, TrafficClass::kRemoteResponse));
  net.Send(MakePacket(0, 1, 31, 0, TrafficClass::kCreditUpdate));
  sim.Run();
  const NetworkStats& s = net.stats();
  EXPECT_EQ(s.packets(TrafficClass::kRemoteRequest), 1u);
  EXPECT_EQ(s.header_bytes(TrafficClass::kRemoteRequest), 31u);
  EXPECT_EQ(s.payload_bytes(TrafficClass::kRemoteRequest), 10u);
  EXPECT_EQ(s.total_bytes(TrafficClass::kRemoteResponse), 72u);
  EXPECT_EQ(s.total_bytes(TrafficClass::kCreditUpdate), 31u);
  EXPECT_EQ(s.total_packets(), 3u);
  EXPECT_EQ(s.total_bytes(), 41u + 72u + 31u);
  EXPECT_EQ(s.node_tx_bytes(0), s.total_bytes());
  EXPECT_EQ(s.node_rx_bytes(1), s.total_bytes());
}

TEST(NetworkStats, ResetZeroes) {
  Simulator sim;
  Network net(&sim, SmallRack());
  net.SetDeliverHandler(1, [](const Packet&) {});
  net.Send(MakePacket(0, 1, 31, 10));
  sim.Run();
  net.mutable_stats().Reset();
  EXPECT_EQ(net.stats().total_packets(), 0u);
  EXPECT_EQ(net.stats().total_bytes(), 0u);
}

TEST(Network, NicMessageRateCapsDirectPath) {
  // §8.4 validation: with the switch bypassed, tiny packets are limited by the
  // NIC's own message rate, which sits 25% above the switch port's.
  Simulator sim;
  NetConfig cfg;  // defaults: nic 59.5 Mpps, switch 47.6 Mpps
  cfg.through_switch = false;
  Network net(&sim, cfg);
  int received = 0;
  net.SetDeliverHandler(1, [&](const Packet&) { ++received; });
  const int kPackets = 10000;
  for (int i = 0; i < kPackets; ++i) {
    net.Send(MakePacket(0, 1, 31, 10));
  }
  sim.Run();
  const double mpps = static_cast<double>(received) * 1e3 / static_cast<double>(sim.now());
  EXPECT_NEAR(mpps, 59.5, 1.5);

  Simulator sim2;
  cfg.through_switch = true;
  Network net2(&sim2, cfg);
  int received2 = 0;
  net2.SetDeliverHandler(1, [&](const Packet&) { ++received2; });
  for (int i = 0; i < kPackets; ++i) {
    net2.Send(MakePacket(0, 1, 31, 10));
  }
  sim2.Run();
  const double mpps2 =
      static_cast<double>(received2) * 1e3 / static_cast<double>(sim2.now());
  EXPECT_NEAR(mpps2, 47.6, 1.5);
  EXPECT_NEAR(mpps / mpps2, 1.25, 0.05);  // "up to 25% higher" when direct
}

TEST(Network, DeliveryOrderPreservedPerPath) {
  // Two packets from the same source to the same destination must arrive in
  // send order (the stations are FIFO).
  Simulator sim;
  Network net(&sim, SmallRack());
  std::vector<std::uint32_t> sizes;
  net.SetDeliverHandler(1, [&](const Packet& p) { sizes.push_back(p.payload_bytes); });
  net.Send(MakePacket(0, 1, 10, 100));
  net.Send(MakePacket(0, 1, 10, 1));
  sim.Run();
  EXPECT_EQ(sizes, (std::vector<std::uint32_t>{100, 1}));
}

}  // namespace
}  // namespace cckvs
