// Unit tests for the symmetric cache and the top-k popularity machinery.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/cache/symmetric_cache.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/topk/epoch_coordinator.h"
#include "src/topk/space_saving.h"

namespace cckvs {
namespace {

// ---------------------------------------------------------------------------
// SymmetricCache
// ---------------------------------------------------------------------------

TEST(SymmetricCache, HeaderIsEightBytes) {
  // §6.2: "Each key-value pair stored in the cache has an 8B header."
  static_assert(sizeof(CacheEntryHeader) == 8);
  CacheEntryHeader h;
  h.state = static_cast<std::uint8_t>(CacheState::kValid);
  h.version = 0xdeadbeef;
  h.last_writer = 5;
  h.ack_count = 7;
  EXPECT_EQ(sizeof(h), 8u);
}

TEST(SymmetricCache, ProbeCountsHitsAndMisses) {
  SymmetricCache cache(10);
  cache.InstallHotSet({1, 2, 3});
  EXPECT_TRUE(cache.Probe(1));
  EXPECT_FALSE(cache.Probe(99));
  EXPECT_EQ(cache.stats().probes, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SymmetricCache, FillMakesEntryValid) {
  SymmetricCache cache(4);
  cache.InstallHotSet({5});
  CacheEntry* e = cache.Find(5);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state(), CacheState::kFilling);
  cache.Fill(5, "value", Timestamp{3, 1});
  EXPECT_EQ(e->state(), CacheState::kValid);
  EXPECT_EQ(e->value, "value");
  EXPECT_EQ(e->ts(), (Timestamp{3, 1}));
  EXPECT_EQ(e->value_ts, (Timestamp{3, 1}));
}

TEST(SymmetricCache, FillDoesNotRegressAdvancedEntry) {
  // A hot write can race ahead of the epoch fill; the late fill must lose.
  SymmetricCache cache(4);
  cache.InstallHotSet({5});
  CacheEntry* e = cache.Find(5);
  e->value = "written";
  e->set_ts(Timestamp{10, 2});
  e->set_state(CacheState::kValid);
  cache.Fill(5, "stale-fill", Timestamp{1, 0});
  EXPECT_EQ(e->value, "written");
  EXPECT_EQ(e->ts(), (Timestamp{10, 2}));
}

TEST(SymmetricCache, InstallEvictsDepartingKeys) {
  SymmetricCache cache(4);
  cache.InstallHotSet({1, 2});
  cache.Fill(1, "one", Timestamp{1, 0});
  cache.Fill(2, "two", Timestamp{1, 0});
  const auto dirty = cache.InstallHotSet({2, 3});
  EXPECT_TRUE(dirty.empty());  // nothing dirty yet
  EXPECT_EQ(cache.Find(1), nullptr);
  EXPECT_NE(cache.Find(2), nullptr);
  EXPECT_NE(cache.Find(3), nullptr);
  EXPECT_EQ(cache.Find(2)->value, "two");  // surviving keys keep their value
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SymmetricCache, DirtyEvictionsReturnedForWriteBack) {
  SymmetricCache cache(4);
  cache.InstallHotSet({1, 2});
  cache.Fill(1, "one", Timestamp{1, 0});
  cache.Fill(2, "two", Timestamp{1, 0});
  CacheEntry* e = cache.Find(1);
  e->value = "one-updated";
  e->value_ts = Timestamp{5, 3};
  e->set_ts(Timestamp{5, 3});
  e->dirty = true;
  const auto dirty = cache.InstallHotSet({2});
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].key, 1u);
  EXPECT_EQ(dirty[0].value, "one-updated");
  EXPECT_EQ(dirty[0].ts, (Timestamp{5, 3}));
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(SymmetricCache, DirtyEvictionUsesInstalledValueTs) {
  // Invalid entry: header ts promised a newer write than the installed value.
  SymmetricCache cache(4);
  cache.InstallHotSet({1});
  cache.Fill(1, "installed", Timestamp{2, 0});
  CacheEntry* e = cache.Find(1);
  e->dirty = true;
  e->set_ts(Timestamp{7, 1});  // promised by an in-flight write
  e->set_state(CacheState::kInvalid);
  const auto dirty = cache.InstallHotSet({});
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0].value, "installed");
  EXPECT_EQ(dirty[0].ts, (Timestamp{2, 0}));  // never the promised timestamp
}

TEST(SymmetricCache, PendingFillsListsUnfilledKeys) {
  SymmetricCache cache(8);
  cache.InstallHotSet({1, 2, 3});
  cache.Fill(2, "x", Timestamp{1, 0});
  const auto pending = cache.PendingFills();
  const std::unordered_set<Key> set(pending.begin(), pending.end());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(1));
  EXPECT_TRUE(set.count(3));
}

TEST(SymmetricCacheDeathTest, OverCapacityInstallAborts) {
  SymmetricCache cache(2);
  EXPECT_DEATH(cache.InstallHotSet({1, 2, 3}), "CHECK");
}

// ---------------------------------------------------------------------------
// SpaceSaving
// ---------------------------------------------------------------------------

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  for (int i = 0; i < 5; ++i) {
    ss.Offer(1);
  }
  ss.Offer(2);
  const auto top = ss.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 2u);
}

TEST(SpaceSaving, EvictsMinimumCounter) {
  SpaceSaving ss(2);
  ss.Offer(1, 10);
  ss.Offer(2, 5);
  ss.Offer(3);  // evicts key 2 (min), inherits count 5
  const auto top = ss.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[1].count, 6u);
  EXPECT_EQ(top[1].error, 5u);
}

TEST(SpaceSaving, CountsNeverUnderestimate) {
  // Space-Saving guarantee: estimate >= true count.
  SpaceSaving ss(20);
  Rng rng(5);
  std::vector<int> truth(200, 0);
  ZipfSampler sampler(200, 1.0);
  for (int i = 0; i < 20000; ++i) {
    const Key k = sampler.Sample(rng);
    truth[k - 1]++;
    ss.Offer(k);
  }
  for (const auto& e : ss.TopK(20)) {
    EXPECT_GE(e.count, static_cast<std::uint64_t>(truth[e.key - 1]));
  }
}

TEST(SpaceSaving, RecallsTrueTopKOnZipf) {
  // Capacity must push the noise floor (stream/capacity) below the true count
  // of the ranks we want recalled: rank 8 of Zipf(0.99) gets ~1% of a 300k
  // stream (~2.9k), so capacity 256 (floor ~1.2k) suffices.
  const std::size_t k = 16;
  SpaceSaving ss(256);
  Rng rng(11);
  ZipfSampler sampler(100000, 0.99);
  for (int i = 0; i < 300000; ++i) {
    ss.Offer(sampler.Sample(rng));
  }
  const auto top = ss.TopK(k);
  std::unordered_set<Key> reported;
  for (const auto& e : top) {
    reported.insert(e.key);
  }
  // The true top-8 ranks (keys 1..8) must all be reported within the top-16.
  int found = 0;
  for (Key rank = 1; rank <= 8; ++rank) {
    if (reported.count(rank)) {
      ++found;
    }
  }
  EXPECT_GE(found, 7);
}

TEST(SpaceSaving, StreamLengthTracksOffers) {
  SpaceSaving ss(4);
  for (int i = 0; i < 7; ++i) {
    ss.Offer(static_cast<Key>(i));
  }
  EXPECT_EQ(ss.stream_length(), 7u);
  EXPECT_EQ(ss.size(), 4u);  // capacity-bounded
}

// ---------------------------------------------------------------------------
// EpochCoordinator
// ---------------------------------------------------------------------------

TEST(EpochCoordinator, PublishesAfterEpoch) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 4;
  cfg.requests_per_epoch = 100;
  cfg.sample_probability = 1.0;
  EpochCoordinator coord(cfg);
  EXPECT_TRUE(coord.CurrentHotSet().empty());
  bool closed = false;
  for (int i = 0; i < 100; ++i) {
    closed = coord.OnRequest(static_cast<Key>(i % 8));
  }
  EXPECT_TRUE(closed);
  EXPECT_EQ(coord.epoch(), 1u);
  EXPECT_EQ(coord.CurrentHotSet().size(), 4u);
}

TEST(EpochCoordinator, LearnsZipfHotSet) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 10;
  cfg.requests_per_epoch = 50000;
  cfg.sample_probability = 0.5;
  cfg.seed = 3;
  EpochCoordinator coord(cfg);
  Rng rng(8);
  ZipfSampler sampler(10000, 0.99);
  for (int i = 0; i < 50000; ++i) {
    coord.OnRequest(sampler.Sample(rng));
  }
  ASSERT_EQ(coord.epoch(), 1u);
  const auto& hot = coord.CurrentHotSet();
  std::unordered_set<Key> set(hot.begin(), hot.end());
  // Ranks 1..5 are each >1.5% of the stream; sampling at 50% finds them.
  for (Key rank = 1; rank <= 5; ++rank) {
    EXPECT_TRUE(set.count(rank)) << "missing hot rank " << rank;
  }
}

TEST(EpochCoordinator, StableDistributionLowChurn) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 8;
  cfg.requests_per_epoch = 30000;
  cfg.sample_probability = 1.0;
  EpochCoordinator coord(cfg);
  Rng rng(2);
  ZipfSampler sampler(1000, 1.2);  // heavy skew: clear-cut hot set
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 30000; ++i) {
      coord.OnRequest(sampler.Sample(rng));
    }
  }
  EXPECT_EQ(coord.epoch(), 3u);
  // §4: "we expect the set of most popular keys to evolve slowly, with only a
  // handful of keys removed/added every few seconds."
  EXPECT_LE(coord.last_epoch_churn(), 2u);
}

TEST(EpochCoordinator, DetectsPopularityShift) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 4;
  cfg.requests_per_epoch = 20000;
  cfg.sample_probability = 1.0;
  EpochCoordinator coord(cfg);
  for (int i = 0; i < 20000; ++i) {
    coord.OnRequest(static_cast<Key>(i % 4 + 1));  // keys 1..4 hot
  }
  const auto first = coord.CurrentHotSet();
  for (int i = 0; i < 20000; ++i) {
    coord.OnRequest(static_cast<Key>(i % 4 + 101));  // keys 101..104 take over
  }
  const auto second = coord.CurrentHotSet();
  std::unordered_set<Key> set(second.begin(), second.end());
  int newly_hot = 0;
  for (Key k = 101; k <= 104; ++k) {
    newly_hot += set.count(k) ? 1 : 0;
  }
  EXPECT_GE(newly_hot, 3);
  EXPECT_NE(first, second);
}

// Drift-aware pacing: high churn halves the next epoch, churn ~0 doubles it,
// and both directions respect their clamps.
TEST(EpochCoordinator, AdaptivePacingTracksChurn) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 8;
  cfg.requests_per_epoch = 1'024;
  cfg.sample_probability = 1.0;
  cfg.adaptive = true;
  cfg.min_requests_per_epoch = 256;
  cfg.max_requests_per_epoch = 4'096;
  EpochCoordinator coord(cfg);
  EXPECT_EQ(coord.requests_per_epoch(), 1'024u);

  // Fast drift: a stream of fresh keys every epoch churns the whole top-k,
  // so the length halves per epoch and pins at the min clamp.
  Key base = 0;
  for (int epoch = 0; epoch < 4; ++epoch) {
    base += 1'000'000;
    bool closed = false;
    std::uint64_t i = 0;
    while (!closed) {
      closed = coord.OnRequest(base + static_cast<Key>(i++));
    }
  }
  EXPECT_EQ(coord.requests_per_epoch(), 256u);

  // Stable distribution: once the drift residue decays out of the summary
  // (one transition epoch) churn drops to 0, the length doubles per epoch
  // and pins at the max clamp.
  for (int epoch = 0; epoch < 10; ++epoch) {
    bool closed = false;
    std::uint64_t i = 0;
    while (!closed) {
      closed = coord.OnRequest(9'000'000 + static_cast<Key>(i++ % 8));
    }
  }
  EXPECT_EQ(coord.last_epoch_churn(), 0u);
  EXPECT_EQ(coord.requests_per_epoch(), 4'096u);
}

// The default clamps derive from the configured epoch length, so adaptivity
// is safe to flip on without retuning.
TEST(EpochCoordinator, AdaptivePacingDefaultClamps) {
  EpochCoordinatorConfig cfg;
  cfg.hot_set_size = 4;
  cfg.requests_per_epoch = 800;
  cfg.sample_probability = 1.0;
  cfg.adaptive = true;
  EpochCoordinator coord(cfg);
  // Every epoch sees a fresh hot set: churn stays high, length dives.
  for (int epoch = 0; epoch < 6; ++epoch) {
    bool closed = false;
    while (!closed) {
      closed = coord.OnRequest(static_cast<Key>(coord.epoch()) * 100 +
                               static_cast<Key>(coord.epoch() % 4));
    }
  }
  EXPECT_EQ(coord.requests_per_epoch(), 100u) << "clamped at requests/8";
}

}  // namespace
}  // namespace cckvs
