// Unit tests for the hot-set subsystem (topk::HotSetManager): protocol-safe
// epoch transitions, deferred evictions, the fill stash, the install barrier
// and the coordinator's unsettled-key filter.  The manager is driven directly
// with a real cache and engine; outgoing protocol messages land in a
// recording sink, as in protocol_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/symmetric_cache.h"
#include "src/protocol/engine.h"
#include "src/topk/hot_set_manager.h"

namespace cckvs {
namespace {

// Collects broadcasts; the test feeds acks back by hand.
class RecordingSink : public MessageSink {
 public:
  void BroadcastUpdate(const UpdateMsg& msg) override { updates.push_back(msg); }
  void BroadcastInvalidate(const InvalidateMsg& msg) override {
    invalidations.push_back(msg);
  }
  void SendAck(NodeId to, const AckMsg& msg) override {
    (void)to;
    acks.push_back(msg);
  }

  std::vector<UpdateMsg> updates;
  std::vector<InvalidateMsg> invalidations;
  std::vector<AckMsg> acks;
};

// Two-"node" world from node 0's perspective: keys with even ids home at 0.
constexpr int kNodes = 2;
NodeId HomeOf(Key key) { return static_cast<NodeId>(key % kNodes); }

struct Harness {
  explicit Harness(ConsistencyModel model, bool coordinator = false,
                   std::uint64_t requests_per_epoch = 4,
                   std::size_t hot_set_size = 8) {
    cache = std::make_unique<SymmetricCache>(hot_set_size);
    if (model == ConsistencyModel::kLin) {
      engine = std::make_unique<LinEngine>(0, kNodes, cache.get(), &sink);
    } else {
      engine = std::make_unique<ScEngine>(0, kNodes, cache.get(), &sink);
    }
    HotSetManagerConfig hc;
    hc.self = 0;
    hc.num_nodes = kNodes;
    hc.coordinator = coordinator;
    hc.epoch.hot_set_size = hot_set_size;
    hc.epoch.requests_per_epoch = requests_per_epoch;
    hc.epoch.sample_probability = 1.0;
    hc.home_of = HomeOf;
    mgr = std::make_unique<HotSetManager>(hc, cache.get(), engine.get());
  }

  void Seed(std::initializer_list<Key> keys) {
    cache->InstallHotSet(std::vector<Key>(keys));
    for (const Key k : keys) {
      cache->Fill(k, "seed", Timestamp{1, 1});
    }
  }

  RecordingSink sink;
  std::unique_ptr<SymmetricCache> cache;
  std::unique_ptr<CoherenceEngine> engine;
  std::unique_ptr<HotSetManager> mgr;
};

TEST(HotSetManager, ApplySplitsEvictionsAdmissionsAndDuties) {
  Harness h(ConsistencyModel::kSc);
  h.Seed({2, 3, 4});
  h.cache->Find(2)->dirty = true;  // pretend a hot write landed

  const auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {4, 6, 7}});
  // Key 2: evicted, dirty, homed here -> write-back + gate; key 3: evicted,
  // clean, homed at the peer -> dropped.
  ASSERT_EQ(t.home_writebacks.size(), 1u);
  EXPECT_EQ(t.home_writebacks[0].key, 2u);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_FALSE(h.mgr->ShardGated(3));
  EXPECT_EQ(h.cache->Find(2), nullptr);
  EXPECT_EQ(h.cache->Find(3), nullptr);
  // Key 4 survives with its value; 6 and 7 enter kFilling; only 6 homes here.
  EXPECT_EQ(h.cache->Find(4)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(6)->state(), CacheState::kFilling);
  EXPECT_EQ(t.fill_duties, std::vector<Key>{6});
  // Nothing deferred: the install completed.
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_EQ(t.installed_epoch, 1u);
  EXPECT_EQ(h.mgr->installed_epoch(), 1u);
}

TEST(HotSetManager, BarrierLiftsGateOnlyAfterAllPeersInstall) {
  Harness h(ConsistencyModel::kSc);
  h.Seed({2});
  auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {3}});
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_TRUE(t.ungated.empty());  // peer has not confirmed epoch 1

  const auto ungated = h.mgr->OnPeerInstalled(1, 1);
  EXPECT_EQ(ungated, std::vector<Key>{2});
  EXPECT_FALSE(h.mgr->ShardGated(2));
}

TEST(HotSetManager, LinWriteInFlightDefersEviction) {
  Harness h(ConsistencyModel::kLin);
  h.Seed({2});
  h.engine->Write(2, "w", nullptr);  // invalidations out, acks pending
  ASSERT_EQ(h.sink.invalidations.size(), 1u);

  auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {4}});
  EXPECT_TRUE(h.mgr->HasDeferred());
  EXPECT_FALSE(t.installed_advanced);  // the epoch is not installed yet
  EXPECT_NE(h.cache->Find(2), nullptr);
  EXPECT_FALSE(h.mgr->ShardGated(2));  // not evicted, so not pending a clear

  // The ack completes the write; the deferred eviction can now go through.
  h.engine->OnAck(1, AckMsg{2, h.sink.invalidations[0].ts});
  t = h.mgr->RetryDeferred();
  EXPECT_FALSE(h.mgr->HasDeferred());
  EXPECT_TRUE(t.installed_advanced);
  ASSERT_EQ(t.home_writebacks.size(), 1u);  // the completed write is dirty
  EXPECT_EQ(t.home_writebacks[0].key, 2u);
  EXPECT_TRUE(h.mgr->ShardGated(2));
  EXPECT_EQ(h.cache->Find(2), nullptr);
}

TEST(HotSetManager, ParkedReaderDefersEvictionUntilFill) {
  Harness h(ConsistencyModel::kSc);
  auto t0 = h.mgr->Apply(HotSetAnnounceMsg{1, {3}});  // admitted, kFilling
  (void)t0;
  bool read_done = false;
  Value read_value;
  h.engine->Read(3, nullptr, nullptr, [&](const Value& v, Timestamp) {
    read_done = true;
    read_value = v;
  });
  EXPECT_FALSE(read_done);  // parked on the unfilled entry

  auto t = h.mgr->Apply(HotSetAnnounceMsg{2, {5}});  // epoch churns 3 out
  EXPECT_TRUE(h.mgr->HasDeferred());
  EXPECT_FALSE(t.installed_advanced);

  // The fill (sent when the home installed epoch 1) wakes the reader...
  h.mgr->ApplyFill(FillMsg{3, "filled", Timestamp{2, 1}, 1});
  EXPECT_TRUE(read_done);
  EXPECT_EQ(read_value, "filled");
  // ...and the deferred eviction drains.
  t = h.mgr->RetryDeferred();
  EXPECT_FALSE(h.mgr->HasDeferred());
  EXPECT_TRUE(t.installed_advanced);
  EXPECT_EQ(h.cache->Find(3), nullptr);
}

TEST(HotSetManager, FillThatBeatsItsAnnounceIsStashed) {
  Harness h(ConsistencyModel::kSc);
  // Epoch 1's announce has not arrived, but the home's fill has.
  EXPECT_FALSE(h.mgr->ApplyFill(FillMsg{5, "early", Timestamp{3, 1}, 1}));
  EXPECT_EQ(h.cache->Find(5), nullptr);

  h.mgr->Apply(HotSetAnnounceMsg{1, {5}});
  ASSERT_NE(h.cache->Find(5), nullptr);
  EXPECT_EQ(h.cache->Find(5)->state(), CacheState::kValid);
  EXPECT_EQ(h.cache->Find(5)->value, "early");
}

TEST(HotSetManager, StaleFillIsDropped) {
  Harness h(ConsistencyModel::kSc);
  h.mgr->Apply(HotSetAnnounceMsg{2, {7}});
  // A fill from epoch 1 for a key that is no longer (or never was) targeted.
  EXPECT_FALSE(h.mgr->ApplyFill(FillMsg{9, "stale", Timestamp{1, 1}, 1}));
  h.mgr->Apply(HotSetAnnounceMsg{3, {9}});
  // The stale fill must not have survived to satisfy epoch 3's admission.
  EXPECT_EQ(h.cache->Find(9)->state(), CacheState::kFilling);
}

TEST(HotSetManager, CoordinatorWithholdsUnsettledReadmissions) {
  // hot_set_size 1, epochs every 2 requests: publications are predictable.
  Harness h(ConsistencyModel::kSc, /*coordinator=*/true,
            /*requests_per_epoch=*/2, /*hot_set_size=*/1);
  EXPECT_FALSE(h.mgr->Sample(1));
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 1: {1}
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{1});
  h.mgr->Apply(h.mgr->announcement());

  h.mgr->Sample(2);
  ASSERT_TRUE(h.mgr->Sample(2));  // epoch 2: {2}, key 1 dropped
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{2});
  // Do NOT apply epoch 2 yet: key 1's eviction is unsettled rack-wide.

  h.mgr->Sample(1);
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 3: key 1 is hottest again...
  for (const Key k : h.mgr->announcement().keys) {
    EXPECT_NE(k, 1u) << "unsettled key must not be re-admitted";
  }

  // Settle: this node installs epoch 3 (evicting 2...), the peer confirms.
  h.mgr->Apply(h.mgr->announcement());
  h.mgr->OnPeerInstalled(1, h.mgr->announcement().epoch);
  h.mgr->Sample(1);
  ASSERT_TRUE(h.mgr->Sample(1));  // epoch 4: key 1 is eligible again
  EXPECT_EQ(h.mgr->announcement().keys, std::vector<Key>{1});
}

TEST(HotSetManager, ReadmissionCancelsPendingGateClear) {
  // Key 2 (homed here) is evicted in epoch 1 and re-admitted in epoch 2
  // before the epoch-1 barrier completes.  The straggling install
  // confirmation must NOT clear the gate: the new cached era owns it.
  Harness h(ConsistencyModel::kSc);
  h.Seed({2});
  h.mgr->Apply(HotSetAnnounceMsg{1, {4}});
  EXPECT_TRUE(h.mgr->ShardGated(2));
  const auto t = h.mgr->Apply(HotSetAnnounceMsg{2, {2, 4}});
  EXPECT_EQ(t.fill_duties, std::vector<Key>{2});
  EXPECT_FALSE(h.mgr->ShardGated(2));  // no stale pending clear remains

  const auto ungated = h.mgr->OnPeerInstalled(1, 1);  // epoch-1 straggler
  EXPECT_TRUE(ungated.empty()) << "the re-admitted key's gate must stay up";
}

TEST(HotSetManager, StaleAnnounceIsIgnored) {
  Harness h(ConsistencyModel::kSc);
  h.mgr->Apply(HotSetAnnounceMsg{2, {4}});
  const auto t = h.mgr->Apply(HotSetAnnounceMsg{1, {6}});
  EXPECT_TRUE(t.fill_duties.empty());
  EXPECT_EQ(h.cache->Find(6), nullptr);
  EXPECT_NE(h.cache->Find(4), nullptr);
}

}  // namespace
}  // namespace cckvs
